// Golden-trace regression test.
//
// Runs the canonical fig-4(a) passive-target workload (2 nodes x 1 user +
// 1 ghost, Cray XC30 model, Casper layer, seed 0) with the recorder
// attached and compares the stable text export byte-for-byte against the
// committed golden file. The trace contains only virtual times and symbolic
// ids, so any divergence is a semantic change to op routing, epoch
// translation, or scheduling — never ASLR or host noise.
//
//   test_trace_golden            compare against tests/golden/fig4a_trace.txt
//   test_trace_golden --update   rewrite the golden file (review the diff!)
//
// Use scripts/update_golden_trace.sh for the rebuild-and-update loop.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "obs/record.hpp"

#ifndef CASPER_GOLDEN_DIR
#error "CASPER_GOLDEN_DIR must point at the tests/golden directory"
#endif

using namespace casper;

namespace {

// The fig-4(a) inner loop at wait = 4 us, shortened to 4 iterations so the
// golden file stays reviewable.
void workload(mpi::Env& env) {
  mpi::Comm w = env.world();
  void* base = nullptr;
  mpi::Win win = env.win_allocate(sizeof(double), sizeof(double), mpi::Info{},
                                  w, &base);
  const int iters = 4;
  for (int it = 0; it < iters; ++it) {
    env.barrier(w);
    if (env.rank(w) == 0) {
      env.win_lock_all(0, win);
      double v = 1.0;
      env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
      env.win_unlock_all(win);
    } else {
      env.compute(sim::us(4));
    }
  }
  env.win_free(win);
}

std::string canonical_trace() {
  obs::Recorder rec;
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 2;  // 1 user + 1 ghost per node
  rc.seed = 0;
  rc.recorder = &rec;
  core::Config cc;
  cc.ghosts_per_node = 1;
  mpi::exec(rc, workload, core::layer(cc));
  std::ostringstream os;
  rec.trace().export_text(os);
  return os.str();
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    *ok = false;
    return {};
  }
  *ok = true;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// First line where the traces differ, with a little context from both.
void report_diff(const std::string& got, const std::string& want) {
  std::istringstream gs(got), ws(want);
  std::string gl, wl;
  int line = 0;
  while (true) {
    const bool gok = static_cast<bool>(std::getline(gs, gl));
    const bool wok = static_cast<bool>(std::getline(ws, wl));
    ++line;
    if (!gok && !wok) return;  // only trailing bytes differ
    if (gok != wok || gl != wl) {
      std::fprintf(stderr, "first divergence at line %d:\n", line);
      std::fprintf(stderr, "  golden: %s\n", wok ? wl.c_str() : "<eof>");
      std::fprintf(stderr, "  got:    %s\n", gok ? gl.c_str() : "<eof>");
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!obs::kTraceCompiled) {
    std::fprintf(stderr,
                 "built with CASPER_TRACE=0: no trace to compare, skipping\n");
    return 0;
  }
  const std::string golden_path =
      std::string(CASPER_GOLDEN_DIR) + "/fig4a_trace.txt";
  const std::string got = canonical_trace();

  if (argc > 1 && std::strcmp(argv[1], "--update") == 0) {
    std::ofstream f(golden_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", golden_path.c_str());
      return 1;
    }
    f << got;
    std::fprintf(stderr, "updated %s (%zu bytes)\n", golden_path.c_str(),
                 got.size());
    return 0;
  }

  bool ok = false;
  const std::string want = read_file(golden_path, &ok);
  if (!ok) {
    std::fprintf(stderr,
                 "missing golden file %s\n"
                 "generate it with: test_trace_golden --update\n",
                 golden_path.c_str());
    return 1;
  }
  if (got == want) {
    std::fprintf(stderr, "golden trace OK (%zu bytes)\n", got.size());
    return 0;
  }
  std::fprintf(stderr,
               "trace deviates from golden (%zu bytes vs %zu golden)\n",
               got.size(), want.size());
  report_diff(got, want);
  std::fprintf(stderr,
               "if the change is intentional, refresh with "
               "scripts/update_golden_trace.sh and review the diff\n");
  return 1;
}
