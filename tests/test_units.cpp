// Unit tests for the small substrates: network profiles & topology,
// datatypes (pack/unpack/reduce), the report table printer, and the Casper
// epochs_used hint parser.
#include <gtest/gtest.h>

#include <sstream>

#include "core/casper.hpp"
#include "core/layer_impl.hpp"
#include "mpi/datatype.hpp"
#include "net/profile.hpp"
#include "net/topology.hpp"
#include "report/table.hpp"

namespace {

using namespace casper;

// ------------------------------------------------------------- topology --

TEST(Topology, RankPlacement) {
  net::Topology t;
  t.nodes = 3;
  t.cores_per_node = 4;
  EXPECT_EQ(t.nranks(), 12);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 1);
  EXPECT_EQ(t.core_of(7), 3);
  EXPECT_TRUE(t.same_node(4, 7));
  EXPECT_FALSE(t.same_node(3, 4));
}

TEST(Topology, NumaMapping) {
  net::Topology t;
  t.nodes = 1;
  t.cores_per_node = 8;
  t.numa_per_node = 2;
  EXPECT_EQ(t.numa_of(0), 0);
  EXPECT_EQ(t.numa_of(3), 0);
  EXPECT_EQ(t.numa_of(4), 1);
  EXPECT_EQ(t.numa_of(7), 1);
}

TEST(Profile, LatencyModel) {
  auto p = net::cray_xc30_regular();
  EXPECT_GT(p.latency(false, 0), p.latency(true, 0));  // net > shm base
  EXPECT_GT(p.latency(false, 4096), p.latency(false, 8));
  EXPECT_GT(p.handling(4096), p.handling(8));
}

TEST(Profile, HardwareCapabilityMatrix) {
  EXPECT_FALSE(net::cray_xc30_regular().hw_contig_put);
  EXPECT_TRUE(net::cray_xc30_dmapp().hw_contig_put);
  EXPECT_TRUE(net::cray_xc30_dmapp().hw_lock);
  EXPECT_TRUE(net::fusion_mvapich().hw_contig_put);
  EXPECT_FALSE(net::fusion_mvapich().hw_contig_acc);
}

TEST(Profile, BusyFactorScalesWithCores) {
  auto p = net::cray_xc30_regular();
  EXPECT_DOUBLE_EQ(p.busy_factor(1), 1.0);
  EXPECT_GT(p.busy_factor(16), p.busy_factor(8));
}

// ------------------------------------------------------------ datatypes --

TEST(Datatype, SizesAndSpans) {
  using namespace mpi;
  EXPECT_EQ(dt_size(Dt::Byte), 1u);
  EXPECT_EQ(dt_size(Dt::Int), 4u);
  EXPECT_EQ(dt_size(Dt::Double), 8u);
  auto c = contig(Dt::Double);
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(data_bytes(4, c), 32u);
  EXPECT_EQ(span_bytes(4, c), 32u);
  auto v = vector_of(Dt::Double, 2, 5);
  EXPECT_FALSE(v.contiguous());
  EXPECT_EQ(data_bytes(3, v), 48u);           // 3 blocks x 2 elems x 8
  EXPECT_EQ(span_bytes(3, v), (2 * 5 + 2) * 8u);  // 2 strides + last block
  EXPECT_EQ(span_bytes(0, v), 0u);
}

TEST(Datatype, PackUnpackRoundTripContig) {
  std::vector<double> src = {1, 2, 3, 4};
  auto packed = mpi::pack(src.data(), 4, mpi::contig(mpi::Dt::Double));
  std::vector<double> dst(4, 0);
  mpi::unpack(dst.data(), 4, mpi::contig(mpi::Dt::Double), packed);
  EXPECT_EQ(src, dst);
}

class DatatypeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DatatypeRoundTrip, PackUnpackStrided) {
  auto [count, blocklen, stride] = GetParam();
  const auto dt = mpi::vector_of(mpi::Dt::Double, blocklen, stride);
  std::vector<double> buf(
      static_cast<std::size_t>(mpi::span_bytes(count, dt) / 8 + 4), -1.0);
  // fill the strided positions with recognizable values
  for (int b = 0; b < count; ++b) {
    for (int e = 0; e < blocklen; ++e) {
      buf[static_cast<std::size_t>(b * stride + e)] = b * 100.0 + e;
    }
  }
  auto packed = mpi::pack(buf.data(), count, dt);
  EXPECT_EQ(packed.size(), mpi::data_bytes(count, dt));

  std::vector<double> out(buf.size(), -1.0);
  mpi::unpack(out.data(), count, dt, packed);
  for (int b = 0; b < count; ++b) {
    for (int e = 0; e < blocklen; ++e) {
      EXPECT_EQ(out[static_cast<std::size_t>(b * stride + e)],
                b * 100.0 + e);
    }
  }
  // gaps untouched
  if (stride > blocklen && count > 1) {
    EXPECT_EQ(out[static_cast<std::size_t>(blocklen)], -1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DatatypeRoundTrip,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 1, 2),
                      std::make_tuple(3, 2, 5), std::make_tuple(8, 3, 3),
                      std::make_tuple(2, 7, 11)));

TEST(Datatype, ReduceOps) {
  std::vector<double> dst = {1, 5, 3};
  std::vector<double> src = {4, 2, 3};
  mpi::reduce_contig(dst.data(), src.data(), 3, mpi::Dt::Double,
                     mpi::AccOp::Sum);
  EXPECT_EQ(dst, (std::vector<double>{5, 7, 6}));
  mpi::reduce_contig(dst.data(), src.data(), 3, mpi::Dt::Double,
                     mpi::AccOp::Min);
  EXPECT_EQ(dst, (std::vector<double>{4, 2, 3}));
  mpi::reduce_contig(dst.data(), src.data(), 3, mpi::Dt::Double,
                     mpi::AccOp::Max);
  EXPECT_EQ(dst, (std::vector<double>{4, 2, 3}));
  std::vector<double> rep = {9, 9, 9};
  mpi::reduce_contig(dst.data(), rep.data(), 3, mpi::Dt::Double,
                     mpi::AccOp::Replace);
  EXPECT_EQ(dst, (std::vector<double>{9, 9, 9}));
  mpi::reduce_contig(dst.data(), src.data(), 3, mpi::Dt::Double,
                     mpi::AccOp::NoOp);
  EXPECT_EQ(dst, (std::vector<double>{9, 9, 9}));
}

TEST(Datatype, ReduceIntoStrided) {
  std::vector<double> dst(10, 1.0);
  std::vector<double> payload = {10, 20, 30};
  auto dt = mpi::vector_of(mpi::Dt::Double, 1, 3);
  mpi::reduce_into(dst.data(), 3, dt,
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(payload.data()),
                       24),
                   mpi::AccOp::Sum);
  EXPECT_EQ(dst[0], 11.0);
  EXPECT_EQ(dst[3], 21.0);
  EXPECT_EQ(dst[6], 31.0);
  EXPECT_EQ(dst[1], 1.0);
}

// --------------------------------------------------------------- report --

TEST(Report, AlignedTable) {
  report::Table t({"a", "longer"});
  t.row({"x", "1"});
  t.row({"yy", "22"});
  std::ostringstream os;
  t.print(os, false);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
}

TEST(Report, CsvMode) {
  report::Table t({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print(os, true);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, Fmt) {
  EXPECT_EQ(report::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(report::fmt(1.0, 0), "1");
  EXPECT_EQ(report::fmt_count(42), "42");
}

// ------------------------------------------------------------ epoch hint --

TEST(EpochsUsed, ParseVariants) {
  using namespace casper::core;
  mpi::Info none;
  EXPECT_EQ(parse_epochs(none), kEpochAll);

  mpi::Info lock;
  lock.set(kEpochsUsedKey, "lock");
  EXPECT_EQ(parse_epochs(lock), kEpochLock);

  mpi::Info multi;
  multi.set(kEpochsUsedKey, "fence,lockall");
  EXPECT_EQ(parse_epochs(multi),
            static_cast<unsigned>(kEpochFence | kEpochLockAll));

  mpi::Info all;
  all.set(kEpochsUsedKey, "fence,pscw,lock,lockall");
  EXPECT_EQ(parse_epochs(all), kEpochAll);
}

TEST(GhostPlacement, CountMatchesConfig) {
  net::Topology t;
  t.nodes = 4;
  t.cores_per_node = 6;
  t.numa_per_node = 2;
  for (int g = 1; g <= 3; ++g) {
    core::Config cc;
    cc.ghosts_per_node = g;
    int total = 0;
    for (int r = 0; r < t.nranks(); ++r) {
      if (core::is_ghost_rank(t, cc, r)) ++total;
    }
    EXPECT_EQ(total, 4 * g) << "g=" << g;
    EXPECT_EQ(core::user_ranks(t, cc), 4 * (6 - g));
  }
}

TEST(GhostPlacement, NonTopologyAwareUsesLastCores) {
  net::Topology t;
  t.nodes = 1;
  t.cores_per_node = 8;
  core::Config cc;
  cc.ghosts_per_node = 2;
  cc.topology_aware = false;
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(core::is_ghost_rank(t, cc, r), r >= 6) << "rank " << r;
  }
}

}  // namespace
