// Adaptive progress control (DESIGN.md §15).
//
// The controller's contract, enforced here:
//   * decisions are pure functions of sealed virtual-time counter boards, so
//     the decision digest, item→slot map, effective policy, and every
//     adapt.* counter are EXACTLY identical across perturbed fiber schedules
//     and across engine shard counts;
//   * a rebind invalidates the route-plan cache through the existing
//     per-origin generation bump;
//   * adaptive runs stay shadow-oracle / race-analyzer clean, and produce
//     byte-identical window contents to the same program with the
//     controller off (routing must never change results);
//   * the KV store linearizes under adaptive control with the same final
//     table fingerprint as the static run;
//   * a ghost kill composes: replicated decision state never reads death
//     state (slot→ghost falls back at issue time), so a kill mid-rebind
//     leaves one agreed map and an oracle-clean history.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/linear.hpp"
#include "core/casper.hpp"
#include "core/layer_impl.hpp"
#include "kv/kv.hpp"
#include "kv/traffic.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "obs/record.hpp"

using namespace casper;

namespace {

core::CasperLayer& layer_of(mpi::Env& env) {
  return dynamic_cast<core::CasperLayer&>(env.runtime().layer());
}

/// Everything a decision-invariance run exposes: the replicated controller
/// state of origin 0 plus the adapt.* counter totals.
struct Observed {
  std::uint64_t digest = 0;
  std::vector<int> map;
  int policy = -1;
  std::map<std::string, std::uint64_t> counters;  ///< adapt.* only
};

mpi::RunConfig base_rc(int nodes, int cpn, std::uint64_t perturb, int shards,
                       obs::Recorder* rec) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = nodes;
  rc.machine.topo.cores_per_node = cpn;
  rc.seed = 12345;
  rc.perturb_seed = perturb;
  rc.shards = shards;
  rc.recorder = rec;
  return rc;
}

void harvest(obs::Recorder& rec, Observed& out) {
  rec.merge_shards();
  for (const auto& [name, v] : rec.metrics().counters()) {
    if (name.rfind("adapt.", 0) == 0) out.counters[name] = v;
  }
}

/// Segment-rebind workload: 8 nodes x (2 users + 2 ghosts), every origin
/// hammers user 0 of the next node — that rank's segment is exactly one node
/// chunk, so the skew forces a remap of its subchunks across both ghosts.
Observed run_seg(std::uint64_t perturb, int shards) {
  obs::Recorder rec;
  rec.set_shards(shards);
  core::Config cc;
  cc.ghosts_per_node = 2;
  cc.binding = core::Binding::Segment;
  cc.adaptive.enabled = true;
  Observed out;
  mpi::exec(
      base_rc(8, 4, perturb, shards, &rec),
      [&out](mpi::Env& env) {
        mpi::Comm w = env.world();
        const int me = env.rank(w);
        const int p = env.size(w);
        const int hot = 2 * ((me / 2 + 1) % (p / 2));  // next node's user 0
        void* base = nullptr;
        mpi::Win win = env.win_allocate(128 * sizeof(double), sizeof(double),
                                        mpi::Info{}, w, &base);
        env.win_lock_all(0, win);
        env.barrier(w);
        // 16 PUTs/origin/round: with 2 origins aiming at each hot node the
        // per-node sample clears the controller's cold gate every round.
        std::vector<double> v(8, 1.0);
        for (int r = 0; r < 5; ++r) {
          for (int i = 0; i < 16; ++i) {
            env.put(v.data(), 8, hot, static_cast<std::size_t>(i) * 8, win);
          }
          env.win_flush_all(win);
          env.barrier(w);  // epoch boundary: seal + replicated decide
        }
        if (me == 0) {
          auto& L = layer_of(env);
          out.digest = L.adapt_digest(win);
          out.map = L.adapt_map(win);
          out.policy = L.adapt_policy(win);
        }
        env.win_unlock_all(win);
        env.win_free(win);
      },
      core::layer(cc));
  harvest(rec, out);
  return out;
}

/// Policy-switch workload: Rank binding + dynamic Random, one 2 KiB PUT per
/// round against a spray of single-double PUTs — the byte mix the controller
/// must answer with a switch to byte-counting.
Observed run_dyn(std::uint64_t perturb, int shards) {
  obs::Recorder rec;
  rec.set_shards(shards);
  core::Config cc;
  cc.ghosts_per_node = 2;
  cc.binding = core::Binding::Rank;
  cc.dynamic = core::DynamicLb::Random;
  cc.adaptive.enabled = true;
  Observed out;
  mpi::exec(
      base_rc(2, 4, perturb, shards, &rec),
      [&out](mpi::Env& env) {
        mpi::Comm w = env.world();
        const int me = env.rank(w);
        const int other = me < 2 ? 2 : 0;  // other node's first user
        void* base = nullptr;
        mpi::Win win = env.win_allocate(256 * sizeof(double), sizeof(double),
                                        mpi::Info{}, w, &base);
        env.win_lock_all(0, win);
        env.barrier(w);
        std::vector<double> big(256, 1.0);
        double one = 1.0;
        for (int r = 0; r < 6; ++r) {
          env.put(big.data(), 256, other, 0, win);
          for (int i = 0; i < 8; ++i) {
            env.put(&one, 1, other + 1, static_cast<std::size_t>(i), win);
          }
          env.accumulate(&one, 1, other, 255, mpi::AccOp::Sum, win);
          env.win_flush_all(win);
          env.barrier(w);
        }
        if (me == 0) {
          auto& L = layer_of(env);
          out.digest = L.adapt_digest(win);
          out.map = L.adapt_map(win);
          out.policy = L.adapt_policy(win);
        }
        env.win_unlock_all(win);
        env.win_free(win);
      },
      core::layer(cc));
  harvest(rec, out);
  return out;
}

void expect_same(const Observed& ref, const Observed& got,
                 const std::string& what) {
  EXPECT_EQ(ref.digest, got.digest) << what;
  EXPECT_EQ(ref.map, got.map) << what;
  EXPECT_EQ(ref.policy, got.policy) << what;
  if (obs::kTraceCompiled) {
    EXPECT_EQ(ref.counters, got.counters) << what;
  }
}

}  // namespace

TEST(AdaptiveDecisions, SegmentRebindInvariantAcrossSchedulesAndShards) {
  const Observed ref = run_seg(0, 1);
  ASSERT_FALSE(ref.map.empty());
  if (obs::kTraceCompiled) {
    EXPECT_GE(ref.counters.at("adapt.rounds"), 5u);
    EXPECT_GE(ref.counters.at("adapt.rebinds"), 1u)
        << "the hot-chunk skew never triggered a remap";
  }
  for (std::uint64_t s = 1; s < 8; ++s) {
    expect_same(ref, run_seg(s, 1), "schedule " + std::to_string(s));
  }
  for (int sh : {2, 4, 8}) {
    // Sharded engines reject perturb_seed; schedule freedom there comes from
    // the worker-thread interleaving itself.
    expect_same(ref, run_seg(0, sh), "shards " + std::to_string(sh));
  }
}

TEST(AdaptiveDecisions, PolicySwitchInvariantAcrossSchedulesAndShards) {
  const Observed ref = run_dyn(0, 1);
  EXPECT_EQ(ref.policy, static_cast<int>(core::DynamicLb::ByteCounting))
      << "2 KiB hot PUTs against single-double spray must switch the "
         "policy to byte-counting";
  if (obs::kTraceCompiled) {
    EXPECT_GE(ref.counters.at("adapt.policy_switches"), 1u);
  }
  for (std::uint64_t s = 1; s < 8; ++s) {
    expect_same(ref, run_dyn(s, 1), "schedule " + std::to_string(s));
  }
  expect_same(ref, run_dyn(0, 2), "shards 2");
}

TEST(AdaptiveRebind, BumpsPlanGenerationAndChangesMap) {
  core::Config cc;
  cc.ghosts_per_node = 2;
  cc.binding = core::Binding::Segment;
  cc.adaptive.enabled = true;
  std::uint64_t gen_before = 0, gen_after = 0;
  std::vector<int> map_before, map_after;
  mpi::exec(
      base_rc(2, 4, 0, 1, nullptr),
      [&](mpi::Env& env) {
        mpi::Comm w = env.world();
        const int me = env.rank(w);
        const int hot = me < 2 ? 2 : 0;
        void* base = nullptr;
        mpi::Win win = env.win_allocate(128 * sizeof(double), sizeof(double),
                                        mpi::Info{}, w, &base);
        env.win_lock_all(0, win);
        env.barrier(w);  // round with an all-cold board: no remap yet
        if (me == 0) {
          auto& L = layer_of(env);
          gen_before = L.plan_generation(win, 0);
          map_before = L.adapt_map(win);
        }
        std::vector<double> v(8, 1.0);
        for (int r = 0; r < 3; ++r) {
          for (int i = 0; i < 16; ++i) {
            env.put(v.data(), 8, hot, static_cast<std::size_t>(i) * 8, win);
          }
          env.win_flush_all(win);
          env.barrier(w);
        }
        if (me == 0) {
          auto& L = layer_of(env);
          gen_after = L.plan_generation(win, 0);
          map_after = L.adapt_map(win);
        }
        env.win_unlock_all(win);
        env.win_free(win);
      },
      core::layer(cc));
  EXPECT_GT(gen_after, gen_before)
      << "rebind must invalidate cached split plans via the generation bump";
  EXPECT_NE(map_before, map_after);
}

TEST(AdaptiveConformance, OracleRaceCleanAndContentsMatchStatic) {
  int content_compared = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    check::FuzzCase on = check::make_case(seed, /*reduced=*/true);
    on.adaptive = true;
    check::FuzzCase off = on;
    off.adaptive = false;
    for (int s = 0; s < 3; ++s) {
      const std::uint64_t p = check::perturb_for(seed, s);
      const check::RunOutcome got = check::run_case(on, p);
      EXPECT_TRUE(got.oracle_clean())
          << "seed " << seed << " schedule " << s << ": "
          << got.divergences.size() << " divergence(s), "
          << got.atomicity_violations << " atomicity violation(s)";
      EXPECT_TRUE(got.races_clean()) << "seed " << seed << " schedule " << s;
      if (!on.order_sensitive) {
        // Adaptive routing must never change what the program computes.
        const check::RunOutcome ref = check::run_case(off, p);
        EXPECT_EQ(got.content_hash, ref.content_hash)
            << "seed " << seed << " schedule " << s;
        ++content_compared;
      }
    }
  }
  EXPECT_GT(content_compared, 0);
}

namespace {

/// One adaptive-vs-static comparable KV run: Zipfian s=0.99 traffic steered
/// onto server 0 (the bench's adversarial placement, miniaturized) with
/// batched barriers so the controller gets epoch boundaries to decide at.
struct KvOut {
  std::uint64_t fingerprint = 0;
  std::uint64_t ops = 0;
  std::uint64_t recorded = 0;
  bool clean = false;
};

KvOut run_kv(bool adaptive) {
  kv::TrafficConfig tc;
  tc.nkeys = 24;
  tc.zipf_s = 0.99;
  tc.read_pct = 50;
  tc.ops_per_client = 40;
  tc.think_mean = 0;
  tc.seed = 909;
  kv::KvConfig kc;
  kc.nbuckets = 8;
  kc.assoc = 4;
  core::Config cc;
  cc.ghosts_per_node = 2;
  cc.binding = core::Binding::Segment;
  cc.adaptive.enabled = adaptive;
  mpi::RunConfig rc = base_rc(2, 4, 0, 1, nullptr);
  check::LinearChecker checker;
  KvOut out;
  mpi::Runtime rt(
      rc,
      [&](mpi::Env& env) {
        mpi::Comm w = env.world();
        const int me = env.rank(w);
        const int nclients = env.size(w);
        std::vector<kv::KvOp> ops = kv::make_ops(tc, nclients);
        kv::KvStore store(env, kc, w);
        store.set_sink(&checker);
        for (kv::KvOp& op : ops) {
          const std::uint64_t z = op.key - 1;
          op.key = store.key_for(0, static_cast<int>(z % 8),
                                 static_cast<int>(z / 8));
        }
        store.open();
        env.barrier(w);
        env.compute(sim::ns(1637) * static_cast<sim::Time>(me + 1));
        const std::size_t batch = static_cast<std::size_t>(nclients) * 10;
        std::size_t done = 0;
        for (const kv::KvOp& op : ops) {
          if (op.client == me) {
            if (op.kind == 1) {
              store.put(op.key, op.val);
            } else {
              store.get(op.key);
            }
          }
          ++done;
          if (done % batch == 0 && done != ops.size()) env.barrier(w);
        }
        store.close();
        if (me == 0) {
          out.fingerprint = store.fingerprint();
          out.ops = store.global_stats().ops();
        }
      },
      core::layer(cc));
  rt.add_observer(&checker);
  rt.run();
  out.clean = checker.clean();
  out.recorded = checker.ops_recorded();
  return out;
}

}  // namespace

TEST(AdaptiveKv, ZipfTrafficLinearizesAndReplaysDeterministically) {
  const KvOut st = run_kv(false);
  const KvOut ad = run_kv(true);
  EXPECT_TRUE(st.clean);
  EXPECT_TRUE(ad.clean) << "adaptive run must stay linearizable";
  EXPECT_GT(ad.recorded, 0u);
  // Op counts are workload-determined, so routing must not change them.
  EXPECT_EQ(ad.ops, st.ops);
  // Same seed + same config replays bit-identically, controller included.
  // (Adaptive vs. static fingerprints may legitimately differ: concurrent
  // PUTs to one key commit in timing-dependent order.)
  const KvOut again = run_kv(true);
  EXPECT_EQ(again.fingerprint, ad.fingerprint);
  EXPECT_EQ(again.recorded, ad.recorded);
  EXPECT_EQ(again.ops, ad.ops);
}

namespace {

/// Chaos case: fence epochs (a replicated decide inside every fence), every
/// origin PUTs into its own exclusive slot on hot target 0 (rebind
/// pressure on node 0's chunk) plus commutative accumulates — then a ghost
/// on the hot node dies mid-run.
check::FuzzCase chaos_case(std::uint64_t seed) {
  check::FuzzCase fc;
  fc.seed = seed;
  fc.nodes = 2;
  fc.users_per_node = 2;
  fc.ghosts = 2;
  fc.binding = core::Binding::Segment;
  fc.epoch = check::EpochStyle::Fence;
  fc.rounds = 3;
  fc.hint_exact = true;
  fc.adaptive = true;
  fc.acc_dt = mpi::Dt::Double;
  fc.acc_op = mpi::AccOp::Sum;
  fc.slot_bytes = 64;
  const int nu = fc.nusers();
  const std::size_t acc_base =
      static_cast<std::size_t>(nu) * fc.slot_bytes;
  for (int r = 0; r < fc.rounds; ++r) {
    for (int o = 0; o < nu; ++o) {
      for (int i = 0; i < 6; ++i) {
        check::OpRec op;
        op.kind = mpi::OpKind::Put;
        op.origin = o;
        op.target = 0;
        op.round = r;
        op.disp = static_cast<std::size_t>(o) * fc.slot_bytes +
                  static_cast<std::size_t>(i) * 8;
        op.count = 1;
        op.tdt = mpi::contig(mpi::Dt::Double);
        op.val = 100 * (r + 1) + 10 * o + i;
        fc.ops.push_back(op);
      }
      check::OpRec acc;
      acc.kind = mpi::OpKind::Acc;
      acc.aop = mpi::AccOp::Sum;
      acc.origin = o;
      acc.target = (o + r) % nu;
      acc.round = r;
      acc.disp = acc_base + static_cast<std::size_t>(o) * 8;
      acc.count = 1;
      acc.tdt = mpi::contig(mpi::Dt::Double);
      acc.val = 1 + o;
      fc.ops.push_back(acc);
    }
  }
  return fc;
}

std::uint64_t stat(const check::RunOutcome& out, const char* key) {
  auto it = out.fault_stats.find(key);
  return it == out.fault_stats.end() ? 0 : it->second;
}

}  // namespace

TEST(AdaptiveChaos, GhostKillDuringRebindsStaysClean) {
  // World ranks of node 0's ghosts for the 2x(2+2) shape.
  net::Topology topo;
  topo.nodes = 2;
  topo.cores_per_node = 4;
  core::Config cc;
  cc.ghosts_per_node = 2;
  std::vector<int> ghosts;
  for (int r = 0; r < 4; ++r) {
    if (core::is_ghost_rank(topo, cc, r)) ghosts.push_back(r);
  }
  ASSERT_EQ(ghosts.size(), 2u);

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check::FuzzCase fc = chaos_case(seed);
    const int victim = ghosts[seed % 2];
    const sim::Time at = sim::us(15 + 10 * (seed % 4));
    fc.fault_plan.kills.push_back({victim, at});
    const check::RunOutcome out =
        check::run_case(fc, check::perturb_for(seed, static_cast<int>(seed) % 3));
    EXPECT_TRUE(out.oracle_clean())
        << "seed " << seed << ": " << out.divergences.size()
        << " divergence(s) after killing ghost " << victim;
    EXPECT_TRUE(out.races_clean()) << "seed " << seed;
    EXPECT_EQ(stat(out, "fault.kills"), 1u) << "seed " << seed;
    EXPECT_EQ(stat(out, "recovery.ghost_dead"), 1u) << "seed " << seed;
    EXPECT_EQ(stat(out, "recovery.degraded"), 0u)
        << "a surviving ghost must keep the node redirected (seed " << seed
        << ")";
  }
}
