// Unit tests for the discrete-event engine: determinism, ordering, virtual
// time, compute penalties, and events.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace {

using namespace casper;
using sim::Engine;
using sim::Time;

Engine::Options opts(int n) {
  Engine::Options o;
  o.nranks = n;
  return o;
}

TEST(SimEngine, SingleRankAdvancesClock) {
  Time final_t = 0;
  Engine e(opts(1), [&](sim::Context& ctx) {
    EXPECT_EQ(ctx.now(), 0u);
    ctx.advance(sim::us(5));
    EXPECT_EQ(ctx.now(), sim::us(5));
    ctx.compute(sim::us(10));
    final_t = ctx.now();
  });
  e.run();
  EXPECT_EQ(final_t, sim::us(15));
  EXPECT_EQ(e.horizon(), sim::us(15));
}

TEST(SimEngine, RanksInterleaveByVirtualTime) {
  // Rank 0 takes small steps, rank 1 one large step; the recorded global
  // order must follow virtual time, not creation order.
  std::vector<std::pair<int, Time>> order;
  Engine e(opts(2), [&](sim::Context& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        ctx.advance(sim::us(10));
        order.emplace_back(0, ctx.now());
      }
    } else {
      ctx.advance(sim::us(25));
      order.emplace_back(1, ctx.now());
    }
  });
  e.run();
  ASSERT_EQ(order.size(), 4u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i].second, order[i - 1].second);
  }
  // rank 1 at t=25 lands between rank 0's t=20 and t=30 steps
  EXPECT_EQ(order[2].first, 1);
}

TEST(SimEngine, EventsRunAtTheirTimestamp) {
  std::vector<Time> fired;
  Engine* ep = nullptr;
  Engine e(opts(1), [&](sim::Context& ctx) {
    ep->post_event(sim::us(7), [&] { fired.push_back(sim::us(7)); });
    ep->post_event(sim::us(3), [&] { fired.push_back(sim::us(3)); });
    ctx.advance(sim::us(10));
  });
  ep = &e;
  e.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], sim::us(3));
  EXPECT_EQ(fired[1], sim::us(7));
}

TEST(SimEngine, BlockAndWake) {
  Engine* ep = nullptr;
  Time woke_at = 0;
  Engine e(opts(2), [&](sim::Context& ctx) {
    if (ctx.rank() == 0) {
      ep->block_self();
      woke_at = ctx.now();
    } else {
      ctx.advance(sim::us(42));
      ep->wake(0, ctx.now());
    }
  });
  ep = &e;
  e.run();
  EXPECT_EQ(woke_at, sim::us(42));
}

TEST(SimEngine, ComputePenaltyExtendsComputation) {
  // An "interrupt" at t=10us steals 5us from a 100us computation.
  Engine* ep = nullptr;
  Time end_t = 0;
  Engine e(opts(1), [&](sim::Context& ctx) {
    ep->post_event(sim::us(10), [&] {
      EXPECT_TRUE(ep->rank_computing(0));
      ep->add_compute_penalty(0, sim::us(5));
    });
    ctx.compute(sim::us(100));
    end_t = ctx.now();
  });
  ep = &e;
  e.run();
  EXPECT_EQ(end_t, sim::us(105));
}

TEST(SimEngine, ComputeScaleModelsOversubscription) {
  Engine* ep = nullptr;
  Time end_t = 0;
  Engine e(opts(1), [&](sim::Context& ctx) {
    ep->set_compute_scale(0, 2.0);
    ctx.compute(sim::us(50));
    end_t = ctx.now();
  });
  ep = &e;
  e.run();
  EXPECT_EQ(end_t, sim::us(100));
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<std::uint64_t> trace;
    Engine::Options o;
    o.nranks = 4;
    o.seed = seed;
    Engine e(o, [&](sim::Context& ctx) {
      for (int i = 0; i < 10; ++i) {
        ctx.advance(sim::ns(ctx.rng().next_below(1000) + 1));
        trace.push_back((static_cast<std::uint64_t>(ctx.rank()) << 48) ^
                        ctx.now());
      }
    });
    e.run();
    return trace;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimEngine, ManyRanksSmallStacks) {
  Engine::Options o;
  o.nranks = 512;
  o.stack_bytes = 64 * 1024;
  int done = 0;
  Engine e(o, [&](sim::Context& ctx) {
    ctx.advance(sim::ns(static_cast<std::uint64_t>(ctx.rank()) + 1));
    ++done;
  });
  e.run();
  EXPECT_EQ(done, 512);
}

TEST(SimEngine, DestroyWithoutRunDoesNotHang) {
  // Regression: the pthread engine joined rank threads in ~Engine; an engine
  // whose ranks never ran (or never finished) could hang on a token that was
  // never handed over. Fiber stacks are reclaimed deterministically instead.
  for (int n : {1, 8, 64}) {
    Engine e(opts(n), [](sim::Context&) { FAIL() << "must never run"; });
    // destroyed here without run()
  }
  SUCCEED();
}

// A seeded multi-rank workload exercising every scheduler edge: random
// advances, compute with penalties, block/wake pairs, same-time events, and
// stats counters. Returns a full observable snapshot of the run.
struct RunSnapshot {
  Time horizon = 0;
  std::vector<Time> clocks;
  std::map<std::string, std::uint64_t> stats;
  std::vector<std::uint64_t> trace;
  bool operator==(const RunSnapshot&) const = default;
};

RunSnapshot run_mixed_workload(std::uint64_t seed, std::size_t stack_bytes) {
  RunSnapshot snap;
  Engine::Options o;
  o.nranks = 8;
  o.seed = seed;
  o.stack_bytes = stack_bytes;
  Engine e(o, [&](sim::Context& ctx) {
    Engine& eng = ctx.engine();
    const int me = ctx.rank();
    for (int i = 0; i < 50; ++i) {
      ctx.advance(sim::ns(ctx.rng().next_below(500) + 1));
      eng.stats().counter("advances") += 1;
      if (i % 7 == me % 7) {
        // Post an event at our own current time: it must run before we
        // resume (events precede ranks at equal timestamps).
        eng.post_event(ctx.now(), [&eng] { eng.stats().counter("events") += 1; });
        ctx.yield();
      }
      if (i % 11 == 3 && me + 1 < ctx.size()) {
        eng.wake(me + 1, ctx.now());
      }
      if (i % 13 == 5) {
        eng.post_event(ctx.now() + sim::ns(10),
                       [&eng, me] { eng.wake(me, 0); });
        eng.block_self();
      }
      ctx.compute(sim::ns(ctx.rng().next_below(200)));
      snap.trace.push_back((static_cast<std::uint64_t>(me) << 48) ^ ctx.now());
    }
  });
  e.run();
  snap.horizon = e.horizon();
  for (int r = 0; r < e.nranks(); ++r) snap.clocks.push_back(e.rank_now(r));
  snap.stats = e.stats().all();
  return snap;
}

TEST(SimEngine, DeterministicAcrossRunsAndStackSizes) {
  // The guard that the fiber rewrite preserved scheduling order: identical
  // horizon, per-rank clocks, stats counters, and full execution trace
  // across repeated runs and across different fiber stack sizes.
  const auto a = run_mixed_workload(42, 64 * 1024);
  const auto b = run_mixed_workload(42, 64 * 1024);
  const auto c = run_mixed_workload(42, 512 * 1024);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  const auto d = run_mixed_workload(43, 64 * 1024);
  EXPECT_NE(a.trace, d.trace);
}

TEST(SimEngine, RngStreamsAreDecorrelated) {
  sim::Rng a(1, 0), b(1, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
