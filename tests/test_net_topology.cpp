// Unit tests for net::Topology: block rank placement, node/core/NUMA
// arithmetic, and the shapes used throughout the paper's experiments.
#include <gtest/gtest.h>

#include "net/topology.hpp"

using namespace casper;

TEST(Topology, BlockPlacement) {
  net::Topology t;
  t.nodes = 3;
  t.cores_per_node = 4;
  EXPECT_EQ(t.nranks(), 12);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.node_of(11), 2);
  EXPECT_EQ(t.core_of(0), 0);
  EXPECT_EQ(t.core_of(5), 1);
  EXPECT_EQ(t.core_of(11), 3);
}

TEST(Topology, SameNode) {
  net::Topology t;
  t.nodes = 2;
  t.cores_per_node = 8;
  EXPECT_TRUE(t.same_node(0, 7));
  EXPECT_FALSE(t.same_node(7, 8));
  EXPECT_TRUE(t.same_node(8, 15));
  EXPECT_TRUE(t.same_node(3, 3));
}

TEST(Topology, NumaSplitsCoresEvenly) {
  net::Topology t;
  t.nodes = 1;
  t.cores_per_node = 8;
  t.numa_per_node = 2;
  // 4 cores per NUMA domain.
  EXPECT_EQ(t.numa_of(0), 0);
  EXPECT_EQ(t.numa_of(3), 0);
  EXPECT_EQ(t.numa_of(4), 1);
  EXPECT_EQ(t.numa_of(7), 1);
}

TEST(Topology, NumaRoundsUpOddSplit) {
  net::Topology t;
  t.nodes = 1;
  t.cores_per_node = 5;
  t.numa_per_node = 2;
  // ceil(5/2) = 3 cores in domain 0, the rest in domain 1.
  EXPECT_EQ(t.numa_of(0), 0);
  EXPECT_EQ(t.numa_of(2), 0);
  EXPECT_EQ(t.numa_of(3), 1);
  EXPECT_EQ(t.numa_of(4), 1);
}

TEST(Topology, NumaOnSecondNodeUsesLocalCore) {
  net::Topology t;
  t.nodes = 2;
  t.cores_per_node = 4;
  t.numa_per_node = 2;
  // Rank 5 is core 1 of node 1 -> NUMA domain 0 of that node.
  EXPECT_EQ(t.numa_of(5), 0);
  EXPECT_EQ(t.numa_of(7), 1);
}

TEST(Topology, Paper16CoreNode) {
  // The paper's Cray XC30 nodes: 16 cores, 2 sockets — the deployment
  // Table I reasons about when carving ghost cores out of a node.
  net::Topology t;
  t.nodes = 4;
  t.cores_per_node = 16;
  t.numa_per_node = 2;
  EXPECT_EQ(t.nranks(), 64);
  EXPECT_EQ(t.node_of(31), 1);
  EXPECT_EQ(t.numa_of(8), 1);
  EXPECT_EQ(t.numa_of(24), 1);  // core 8 of node 1
  t.validate();  // must not abort
}

TEST(Topology, DefaultIsValid) {
  net::Topology t;
  t.validate();
  EXPECT_EQ(t.nranks(), 1);
  EXPECT_EQ(t.numa_of(0), 0);
}
