// Tests for the online RMA race analyzer (check/race.hpp): the deterministic
// interval treap, the per-epoch legality matrix across all four epoch styles,
// diagnostics, and the two invariance contracts — verdict groups must not
// depend on the fiber schedule or on the engine shard count.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "check/race.hpp"
#include "mpi/observe.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "obs/record.hpp"

using namespace casper;

namespace {

mpi::RunConfig small_rc(int nodes, int cores) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = nodes;
  rc.machine.topo.cores_per_node = cores;
  return rc;
}

check::Access mk(std::size_t lo, std::size_t hi, int origin, std::uint64_t seq,
                 check::AccessKind kind = check::AccessKind::Put,
                 int epoch = 0) {
  check::Access a;
  a.lo = lo;
  a.hi = hi;
  a.origin = origin;
  a.seq = seq;
  a.kind = kind;
  a.epoch = epoch;
  return a;
}

/// Canonical text form of the group view: sorted, fully determined by the
/// verdict SET. Two runs agree iff their canon strings are equal.
std::string canon(const std::vector<check::RaceAnalyzer::Group>& gs) {
  std::vector<std::string> lines;
  for (const auto& g : gs) {
    std::ostringstream os;
    os << "w" << g.win_id << " t" << g.target << " " << g.origin_a << "~"
       << g.origin_b << ":";
    for (const auto& [lo, hi] : g.ranges) os << " [" << lo << "," << hi << ")";
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace

// ---- interval tree ---------------------------------------------------------

TEST(IntervalTree, InsertAndQueryOverlap) {
  check::IntervalTree t;
  t.insert(mk(0, 8, 0, 0));
  t.insert(mk(8, 16, 1, 0));
  t.insert(mk(4, 12, 2, 0));
  EXPECT_EQ(t.size(), 3u);

  std::vector<int> hit;
  t.query(6, 7, [&](const check::Access& a) { hit.push_back(a.origin); });
  std::sort(hit.begin(), hit.end());
  ASSERT_EQ(hit.size(), 2u);  // [0,8) and [4,12); [8,16) does not touch [6,7)
  EXPECT_EQ(hit[0], 0);
  EXPECT_EQ(hit[1], 2);

  hit.clear();  // half-open: [8,16) must not match a query ending at 8
  t.query(0, 8, [&](const check::Access& a) { hit.push_back(a.origin); });
  std::sort(hit.begin(), hit.end());
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[1], 2);

  hit.clear();
  t.query(16, 32, [&](const check::Access& a) { hit.push_back(a.origin); });
  EXPECT_TRUE(hit.empty());
}

TEST(IntervalTree, CoalesceMergesOnlyIdenticalIdentity) {
  check::IntervalTree t;
  check::Access a = mk(0, 8, 0, 0);
  t.insert(a);

  // Adjacent, same identity (origin/epoch/kind/op/dt/flush gen): merges and
  // keeps the earliest seq.
  check::Access b = mk(8, 16, 0, 5);
  EXPECT_TRUE(t.coalesce(b));
  EXPECT_EQ(t.size(), 1u);
  std::size_t n = 0;
  t.query(0, 64, [&](const check::Access& e) {
    ++n;
    EXPECT_EQ(e.lo, 0u);
    EXPECT_EQ(e.hi, 16u);
    EXPECT_EQ(e.seq, 0u);
  });
  EXPECT_EQ(n, 1u);

  // Different origin: refuses even though the range is adjacent.
  EXPECT_FALSE(t.coalesce(mk(16, 24, 1, 1)));
  // Different epoch: refuses.
  EXPECT_FALSE(t.coalesce(mk(16, 24, 0, 2, check::AccessKind::Put, 1)));
  // Different kind: refuses.
  EXPECT_FALSE(t.coalesce(mk(16, 24, 0, 3, check::AccessKind::Get)));
  // Same identity but a gap in between: refuses.
  EXPECT_FALSE(t.coalesce(mk(20, 24, 0, 4)));
  EXPECT_EQ(t.size(), 1u);

  // Overlapping same-identity widens, recursively absorbing neighbours.
  t.insert(mk(24, 32, 0, 6));
  EXPECT_TRUE(t.coalesce(mk(12, 26, 0, 7)));
  n = 0;
  t.query(0, 64, [&](const check::Access& e) {
    ++n;
    EXPECT_EQ(e.lo, 0u);
    EXPECT_EQ(e.hi, 32u);
  });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(t.size(), 1u);
}

// The treap's shape is a pure function of the entry set, so traversal order
// (and therefore every query callback sequence) is insertion-order
// independent — the property the invariance contracts lean on.
TEST(IntervalTree, TraversalIsInsertionOrderIndependent) {
  std::vector<check::Access> entries;
  for (int i = 0; i < 40; ++i) {
    const auto lo = static_cast<std::size_t>((i * 13) % 64);
    entries.push_back(mk(lo, lo + 1 + static_cast<std::size_t>(i % 9), i % 5,
                         static_cast<std::uint64_t>(i)));
  }
  auto run = [&](bool reversed) {
    check::IntervalTree t;
    if (reversed) {
      for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        t.insert(*it);
    } else {
      for (const auto& e : entries) t.insert(e);
    }
    std::vector<std::tuple<std::size_t, std::size_t, int, std::uint64_t>> seen;
    t.query(0, 1 << 10, [&](const check::Access& a) {
      seen.emplace_back(a.lo, a.hi, a.origin, a.seq);
    });
    return seen;
  };
  const auto fwd = run(false);
  const auto rev = run(true);
  ASSERT_EQ(fwd.size(), entries.size());
  EXPECT_EQ(fwd, rev);  // identical ORDER, not just identical sets
}

// ---- conflict detection on native runs -------------------------------------

TEST(RaceAnalyzer, PutVsGetOverlapIsFlagged) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  check::RaceAnalyzer race;
  int win_id = -1;
  mpi::Runtime rt(small_rc(1, 3), [&win_id](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    win_id = win->id();
    env.win_lock_all(0, win);
    double v[2] = {1.0, 2.0};
    if (me == 0) {
      env.put(v, 1, 2, 0, win);    // bytes [0,8) of rank 2
      env.put(v, 1, 2, 16, win);   // bytes [16,24): disjoint from rank 1
    } else if (me == 1) {
      env.get(v, 1, 2, 0, win);    // races the PUT on [0,8)
      env.get(v, 1, 2, 32, win);   // bytes [32,40): disjoint from rank 0
    }
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  rt.add_observer(&race);
  rt.run();

  EXPECT_FALSE(race.clean());
  EXPECT_GE(race.accesses_recorded(), 4u);
  EXPECT_TRUE(race.flags(win_id, 2, 0, 1, 0, 8));
  EXPECT_TRUE(race.flags(win_id, 2, 1, 0, 0, 8));  // origin order irrelevant
  EXPECT_FALSE(race.flags(win_id, 2, 0, 1, 16, 40));  // disjoint ops stay clean
  const auto gs = race.groups();
  ASSERT_EQ(gs.size(), 1u);
  EXPECT_EQ(gs[0].target, 2);
  EXPECT_EQ(gs[0].origin_a, 0);
  EXPECT_EQ(gs[0].origin_b, 1);
  ASSERT_EQ(gs[0].ranges.size(), 1u);
  EXPECT_EQ(gs[0].ranges[0].first, 0u);
  EXPECT_EQ(gs[0].ranges[0].second, 8u);
  EXPECT_EQ(race.conflict_pairs(), 1u);
  EXPECT_EQ(race.conflict_bytes(), 8u);
}

// Overlapping accumulate-class ops on one basic datatype are element-wise
// atomic, hence legal by default; strict_same_op applies the letter of the
// MPI-3 same-op rule and flags mixed ops. Attaching the oracle plus two
// analyzers to ONE runtime is also the observer fan-out regression: every
// observer must see the same op stream.
TEST(RaceAnalyzer, AccVsAccLegalityAndObserverFanOut) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  check::ShadowOracle oracle;
  check::RaceAnalyzer relaxed;
  check::RaceOptions so;
  so.strict_same_op = true;
  check::RaceAnalyzer strict(so);
  int win_id = -1;
  mpi::Runtime rt(small_rc(1, 3), [&win_id](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    win_id = win->id();
    env.win_lock_all(0, win);
    const double v = 2.0;
    if (me == 0) {
      env.accumulate(&v, 1, 2, 0, mpi::AccOp::Sum, win);
    } else if (me == 1) {
      env.accumulate(&v, 1, 2, 0, mpi::AccOp::Replace, win);
    }
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  rt.add_observer(&oracle);
  rt.add_observer(&relaxed);
  rt.add_observer(&strict);
  rt.run();

  // Fan-out: all three observers rode the same run.
  EXPECT_TRUE(oracle.clean());
  EXPECT_GE(oracle.commits_seen(), 2u);
  EXPECT_EQ(relaxed.accesses_recorded(), strict.accesses_recorded());
  EXPECT_GE(relaxed.accesses_recorded(), 2u);

  // Same basic datatype: legal by default, illegal under strict same-op.
  EXPECT_TRUE(relaxed.clean());
  EXPECT_FALSE(strict.clean());
  EXPECT_TRUE(strict.flags(win_id, 2, 0, 1, 0, 8));
}

TEST(RaceAnalyzer, LocalStoreVsPutConflictsLocalLocalLegal) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  check::RaceAnalyzer race;
  int win_id = -1;
  mpi::Runtime rt(small_rc(1, 2), [&win_id](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    win_id = win->id();
    env.win_lock_all(0, win);
    const double v = 7.0;
    if (me == 0) {
      env.put(&v, 1, 1, 0, win);  // bytes [0,8) of rank 1
    } else {
      // Program-order store to the exposed segment while the PUT is in
      // flight: the load/store-vs-RMA conflict class.
      env.local_store(&v, 0, 8, win);
      // Two overlapping local accesses are same-origin program order: legal.
      env.local_store(&v, 32, 8, win);
      double r = 0;
      env.local_load(&r, 32, 8, win);
    }
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  rt.add_observer(&race);
  rt.run();

  EXPECT_FALSE(race.clean());
  EXPECT_TRUE(race.flags(win_id, 1, 0, 1, 0, 8));
  ASSERT_EQ(race.groups().size(), 1u);  // the local-local pair stayed clean
  EXPECT_EQ(race.conflict_bytes(), 8u);
}

// ---- per-epoch reset across the four epoch styles ---------------------------
// The same overlapping pair is LEGAL when the two accesses sit in different
// epochs and a CONFLICT when they share one.

namespace {

/// Run `body` on a fresh 3-rank runtime with an analyzer attached; return the
/// analyzer verdict via `race`.
void run3(check::RaceAnalyzer& race,
          const std::function<void(mpi::Env&)>& body) {
  mpi::Runtime rt(small_rc(1, 3), body);
  rt.add_observer(&race);
  rt.run();
}

}  // namespace

TEST(RaceAnalyzer, FenceEpochsResetConflicts) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  // Different fence rounds: the collective generation numbers differ.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      env.win_fence(0, win);
      if (me == 0) env.put(&v, 1, 2, 0, win);
      env.win_fence(0, win);
      if (me == 1) env.put(&v, 1, 2, 0, win);
      env.win_fence(0, win);
      env.win_free(win);
    });
    EXPECT_TRUE(race.clean()) << canon(race.groups());
    EXPECT_GE(race.epochs_opened(), 2u);
  }
  // Same fence round: same generation, conflict.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      env.win_fence(0, win);
      if (me == 0 || me == 1) env.put(&v, 1, 2, 0, win);
      env.win_fence(0, win);
      env.win_free(win);
    });
    EXPECT_FALSE(race.clean());
    EXPECT_EQ(race.conflict_bytes(), 8u);
  }
}

TEST(RaceAnalyzer, PscwEpochsResetConflicts) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  auto body = [](bool same_round, mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    const double v = 1.0;
    const mpi::Group origins({0, 1});
    const mpi::Group targets({2});
    for (int round = 0; round < 2; ++round) {
      if (me == 2) {
        env.win_post(origins, 0, win);
        env.win_wait(win);
      } else {
        env.win_start(targets, 0, win);
        const bool write = same_round || (round == me);
        if (write) env.put(&v, 1, 2, 0, win);
        env.win_complete(win);
      }
      env.barrier(w);
    }
    env.win_free(win);
  };
  {
    check::RaceAnalyzer race;
    run3(race, [&](mpi::Env& env) { body(false, env); });
    EXPECT_TRUE(race.clean()) << canon(race.groups());
  }
  {
    check::RaceAnalyzer race;
    run3(race, [&](mpi::Env& env) { body(true, env); });
    EXPECT_FALSE(race.clean());
    EXPECT_TRUE(race.flags(/*win_id=*/race.groups()[0].win_id, 2, 0, 1, 0, 8));
  }
}

TEST(RaceAnalyzer, LockEpochsResetConflicts) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  // Barrier-separated shared-lock epochs never overlap in virtual time.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      if (me == 0) {
        env.win_lock(mpi::LockType::Shared, 2, 0, win);
        env.put(&v, 1, 2, 0, win);
        env.win_unlock(2, win);
      }
      env.barrier(w);
      env.compute(sim::us(1));
      if (me == 1) {
        env.win_lock(mpi::LockType::Shared, 2, 0, win);
        env.put(&v, 1, 2, 0, win);
        env.win_unlock(2, win);
      }
      env.barrier(w);
      env.win_free(win);
    });
    EXPECT_TRUE(race.clean()) << canon(race.groups());
  }
  // Concurrent shared locks genuinely overlap: conflict.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      if (me == 0 || me == 1) {
        env.win_lock(mpi::LockType::Shared, 2, 0, win);
        env.put(&v, 1, 2, 0, win);
        env.win_unlock(2, win);
      }
      env.barrier(w);
      env.win_free(win);
    });
    EXPECT_FALSE(race.clean());
    EXPECT_EQ(race.conflict_bytes(), 8u);
  }
  // Concurrent EXCLUSIVE locks are serialized by the target's lock manager —
  // call-time overlap is not a race.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      if (me == 0 || me == 1) {
        env.win_lock(mpi::LockType::Exclusive, 2, 0, win);
        env.put(&v, 1, 2, 0, win);
        env.win_unlock(2, win);
      }
      env.barrier(w);
      env.win_free(win);
    });
    EXPECT_TRUE(race.clean()) << canon(race.groups());
  }
}

TEST(RaceAnalyzer, LockAllEpochsResetConflicts) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  // Barrier-separated lock_all epochs: legal.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      for (int turn = 0; turn < 2; ++turn) {
        if (me == turn) {
          env.win_lock_all(0, win);
          env.put(&v, 1, 2, 0, win);
          env.win_unlock_all(win);
        }
        env.barrier(w);
        env.compute(sim::us(1));
      }
      env.win_free(win);
    });
    EXPECT_TRUE(race.clean()) << canon(race.groups());
  }
  // One shared lock_all epoch: conflict.
  {
    check::RaceAnalyzer race;
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      env.win_lock_all(0, win);
      if (me == 0 || me == 1) env.put(&v, 1, 2, 0, win);
      env.win_unlock_all(win);
      env.barrier(w);
      env.win_free(win);
    });
    EXPECT_FALSE(race.clean());
  }
}

// A flush splits one passive epoch into ordered same-origin generations, but
// does NOT legalize cross-origin overlap.
TEST(RaceAnalyzer, FlushOrdersSameOriginOnly) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  check::RaceAnalyzer race;
  run3(race, [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    const double v = 1.0;
    env.win_lock_all(0, win);
    if (me == 0) {
      env.put(&v, 1, 2, 0, win);  // same-origin overlap, split by a flush:
      env.win_flush(2, win);      // ordered, so legal
      env.put(&v, 1, 2, 0, win);
    }
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  EXPECT_TRUE(race.clean()) << canon(race.groups());
  EXPECT_GE(race.accesses_recorded(), 2u);
}

// ---- diagnostics ------------------------------------------------------------

TEST(RaceAnalyzer, DiagnosticsCarryVirtualTimesAndTraceTail) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  obs::Recorder rec;
  check::RaceAnalyzer race;
  race.set_recorder(&rec);
  mpi::RunConfig rc = small_rc(1, 3);
  rc.recorder = &rec;
  mpi::Runtime rt(rc, [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    const double v = 1.0;
    env.win_lock_all(0, win);
    if (me == 0) env.put(&v, 1, 2, 0, win);
    if (me == 1) env.get(const_cast<double*>(&v), 1, 2, 0, win);
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  rt.add_observer(&race);
  rt.run();

  ASSERT_FALSE(race.conflicts().empty());
  const check::RaceConflict& c = race.conflicts()[0];
  EXPECT_EQ(c.target, 2);
  EXPECT_EQ(c.lo, 0u);
  EXPECT_EQ(c.hi, 8u);
  // Both sides carry their issue virtual times; detection happens when the
  // later access arrives.
  EXPECT_GT(c.a.acc.t, 0);
  EXPECT_GT(c.b.acc.t, 0);
  EXPECT_EQ(c.t_detect, c.b.acc.t);
  EXPECT_GE(c.b.acc.t, c.a.acc.t);
  // The one-line diagnostic names both access kinds and the byte range.
  EXPECT_NE(c.diag.find("put"), std::string::npos);
  EXPECT_NE(c.diag.find("get"), std::string::npos);
  EXPECT_NE(c.diag.find("[0,8)"), std::string::npos);
  if (obs::kTraceCompiled) {
    EXPECT_FALSE(c.trace_tail.empty());
    EXPECT_LE(c.trace_tail.size(), 32u);
  }
}

// ---- invariance contracts ---------------------------------------------------

// The group view of a racy fuzz case is identical across eight perturbed
// fiber schedules, and every planted race is flagged in each of them.
TEST(RaceAnalyzer, VerdictsAreScheduleInvariant) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  for (std::uint64_t seed : {11u, 23u, 37u}) {
    const check::FuzzCase fc = check::make_racy_case(seed, true, 2);
    ASSERT_EQ(fc.planted.size(), 2u);
    std::string ref;
    std::uint64_t ref_bytes = 0;
    for (int s = 0; s < 8; ++s) {
      const check::RunOutcome out =
          check::run_case(fc, check::perturb_for(seed, s));
      for (const auto& pr : fc.planted) {
        EXPECT_TRUE(check::planted_flagged(out, pr))
            << "seed " << seed << " schedule " << s;
      }
      const std::string got = canon(out.race_groups);
      if (s == 0) {
        ref = got;
        ref_bytes = out.race_conflict_bytes;
        EXPECT_FALSE(ref.empty());
      } else {
        EXPECT_EQ(got, ref) << "seed " << seed << " schedule " << s;
        EXPECT_EQ(out.race_conflict_bytes, ref_bytes);
      }
    }
  }
}

// The group view and the invariant counters are identical across engine shard
// counts (the analyzer is concurrent_safe and its verdicts are canonical).
TEST(RaceAnalyzer, VerdictsAreShardInvariant) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  struct Verdict {
    std::string groups;
    std::uint64_t pairs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t accesses = 0;
    std::uint64_t epochs = 0;
  };
  auto run = [](int shards) {
    mpi::RunConfig rc = small_rc(8, 1);
    rc.shards = shards;
    check::RaceAnalyzer race;
    mpi::Runtime rt(rc, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      const int p = env.size(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(256, 1, mpi::Info{}, w, &base);
      env.win_lock_all(0, win);
      const double v = 1.0 * me;
      if (me != 0) {
        // Everyone writes rank 0's first slot: all origin pairs conflict.
        env.put(&v, 1, 0, 0, win);
        // ... and an exclusive 8-byte slot: no extra conflicts.
        env.put(&v, 1, 0, static_cast<std::size_t>(8 * me), win);
      }
      env.put(&v, 1, (me + 1) % p, static_cast<std::size_t>(128), win);
      env.win_unlock_all(win);
      env.barrier(w);
      env.win_free(win);
    });
    rt.add_observer(&race);
    rt.run();
    Verdict out;
    out.groups = canon(race.groups());
    out.pairs = race.conflict_pairs();
    out.bytes = race.conflict_bytes();
    out.accesses = race.accesses_recorded();
    out.epochs = race.epochs_opened();
    return out;
  };
  const Verdict ref = run(1);
  EXPECT_EQ(ref.pairs, 21u);  // C(7,2) pairs of writers into slot 0
  EXPECT_EQ(ref.bytes, 21u * 8u);
  EXPECT_EQ(ref.epochs, 8u);
  EXPECT_FALSE(ref.groups.empty());
  for (int shards : {2, 4, 8}) {
    const Verdict got = run(shards);
    EXPECT_EQ(got.groups, ref.groups) << "shards=" << shards;
    EXPECT_EQ(got.pairs, ref.pairs) << "shards=" << shards;
    EXPECT_EQ(got.bytes, ref.bytes) << "shards=" << shards;
    EXPECT_EQ(got.accesses, ref.accesses) << "shards=" << shards;
    EXPECT_EQ(got.epochs, ref.epochs) << "shards=" << shards;
  }
}

// reset() really drops everything: the same analyzer object reused across two
// runs reports only the second run's verdicts.
TEST(RaceAnalyzer, ResetClearsAllState) {
  if (!mpi::kRaceObsCompiled) GTEST_SKIP() << "built with CASPER_RACE=0";
  check::RaceAnalyzer race;
  auto racy_run = [&race]() {
    run3(race, [](mpi::Env& env) {
      mpi::Comm w = env.world();
      const int me = env.rank(w);
      void* base = nullptr;
      mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
      const double v = 1.0;
      env.win_lock_all(0, win);
      if (me == 0 || me == 1) env.put(&v, 1, 2, 0, win);
      env.win_unlock_all(win);
      env.barrier(w);
      env.win_free(win);
    });
  };
  racy_run();
  ASSERT_FALSE(race.clean());
  race.reset();
  EXPECT_TRUE(race.clean());
  EXPECT_EQ(race.accesses_recorded(), 0u);
  EXPECT_TRUE(race.groups().empty());
  racy_run();
  EXPECT_FALSE(race.clean());
  EXPECT_EQ(race.conflict_pairs(), 1u);
}
