// Property-style parameterized sweeps: data integrity of Casper's
// redirection must hold across every combination of binding policy, dynamic
// load-balancing policy, ghost count, epoch type, and operation mix — and
// the atomicity checker must stay silent throughout.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "check/fuzz.hpp"
#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

enum class EpochStyle { Fence, Pscw, Lock, LockAll };

using Param = std::tuple<core::Binding, core::DynamicLb, int /*ghosts*/,
                         EpochStyle>;

class CasperIntegrity : public ::testing::TestWithParam<Param> {};

// Every rank accumulates a known pattern into every other rank and writes a
// put pattern to its own slot on every rank; verify the final array.
void integrity_body(mpi::Env& env, EpochStyle style) {
  Comm w = env.world();
  const int p = env.size(w);
  const int me = env.rank(w);
  const int elems = 8;
  // p slots for per-origin put signatures + one slot for accumulates
  // (disjoint, so put/acc never overlap — overlapping them in one epoch
  // would be an MPI usage error).
  void* base = nullptr;
  Win win = env.win_allocate(
      static_cast<std::size_t>((p + 1) * elems) * sizeof(double),
      sizeof(double), Info{}, w, &base);

  std::vector<double> acc_v(static_cast<std::size_t>(elems), 1.0);
  std::vector<double> put_v(static_cast<std::size_t>(elems), me + 100.0);

  auto issue_all = [&]() {
    for (int t = 0; t < p; ++t) {
      // everyone accumulates ones into the shared accumulate slot
      env.accumulate(acc_v.data(), elems, t,
                     static_cast<std::size_t>(p * elems), AccOp::Sum, win);
      // everyone puts its signature into its own slot on every rank
      env.put(put_v.data(), elems, t,
              static_cast<std::size_t>(me * elems), win);
    }
  };

  switch (style) {
    case EpochStyle::Fence:
      env.win_fence(mpi::kModeNoPrecede, win);
      issue_all();
      env.win_fence(mpi::kModeNoSucceed, win);
      break;
    case EpochStyle::Pscw: {
      std::vector<int> everyone;
      for (int t = 0; t < p; ++t) everyone.push_back(t);
      mpi::Group g(everyone);
      env.win_post(g, 0, win);
      env.win_start(g, 0, win);
      issue_all();
      env.win_complete(win);
      env.win_wait(win);
      break;
    }
    case EpochStyle::Lock:
      for (int t = 0; t < p; ++t) {
        env.win_lock(LockType::Shared, t, 0, win);
      }
      issue_all();
      for (int t = 0; t < p; ++t) {
        env.win_unlock(t, win);
      }
      break;
    case EpochStyle::LockAll:
      env.win_lock_all(0, win);
      issue_all();
      env.win_flush_all(win);
      env.win_unlock_all(win);
      break;
  }
  env.barrier(w);

  auto* d = static_cast<double*>(base);
  for (int s = 0; s < p; ++s) {
    for (int e = 0; e < elems; ++e) {
      EXPECT_EQ(d[s * elems + e], s + 100.0)
          << "slot " << s << " elem " << e;
    }
  }
  for (int e = 0; e < elems; ++e) {
    EXPECT_EQ(d[p * elems + e], static_cast<double>(p))
        << "acc elem " << e;
  }
  EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
  env.win_free(win);

  // Pure accumulate window for the exact-sum check.
  void* base2 = nullptr;
  Win win2 =
      env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base2);
  env.win_lock_all(0, win2);
  double one = 1.0;
  for (int t = 0; t < p; ++t) {
    env.accumulate(&one, 1, t, 0, AccOp::Sum, win2);
  }
  env.win_flush_all(win2);
  env.win_unlock_all(win2);
  env.barrier(w);
  EXPECT_EQ(*static_cast<double*>(base2), static_cast<double>(p));
  env.win_free(win2);
}

TEST_P(CasperIntegrity, AllBindingsAllEpochs) {
  auto [binding, dynamic, ghosts, style] = GetParam();
  RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 3 + ghosts;
  core::Config cc;
  cc.ghosts_per_node = ghosts;
  cc.binding = binding;
  cc.dynamic = dynamic;
  mpi::exec(rc, [style](mpi::Env& env) { integrity_body(env, style); },
            core::layer(cc));
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& info) {
  const auto b = std::get<0>(info.param);
  const auto d = std::get<1>(info.param);
  const auto g = std::get<2>(info.param);
  const auto e = std::get<3>(info.param);
  std::string s;
  s += b == core::Binding::Rank ? "Rank" : "Segment";
  s += d == core::DynamicLb::None         ? "None"
       : d == core::DynamicLb::Random     ? "Random"
       : d == core::DynamicLb::OpCounting ? "OpCount"
                                          : "ByteCount";
  s += std::to_string(g) + "g";
  s += e == EpochStyle::Fence  ? "Fence"
       : e == EpochStyle::Pscw ? "Pscw"
       : e == EpochStyle::Lock ? "Lock"
                               : "LockAll";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CasperIntegrity,
    ::testing::Combine(
        ::testing::Values(core::Binding::Rank, core::Binding::Segment),
        ::testing::Values(core::DynamicLb::None, core::DynamicLb::Random,
                          core::DynamicLb::OpCounting,
                          core::DynamicLb::ByteCounting),
        ::testing::Values(1, 2, 3),
        ::testing::Values(EpochStyle::Fence, EpochStyle::Pscw,
                          EpochStyle::Lock, EpochStyle::LockAll)),
    sweep_name);

// Strided (noncontiguous) accumulates through segment binding with several
// ghost counts: element-exact results, no torn elements.
class CasperStrided : public ::testing::TestWithParam<int> {};

TEST_P(CasperStrided, SegmentSplitKeepsElementsIntact) {
  const int ghosts = GetParam();
  RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 1;
  rc.machine.topo.cores_per_node = 2 + ghosts;
  core::Config cc;
  cc.ghosts_per_node = ghosts;
  cc.binding = core::Binding::Segment;
  mpi::exec(rc, [](mpi::Env& env) {
    Comm w = env.world();
    const std::size_t n = 48;
    void* base = nullptr;
    Win win = env.win_allocate(2 * n * sizeof(double), sizeof(double),
                               Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    if (env.rank(w) == 1) {
      // accumulate into every other element of rank 0's window
      std::vector<double> v(n, 2.5);
      auto vec = mpi::vector_of(Dt::Double, 1, 2);
      for (int round = 0; round < 3; ++round) {
        env.accumulate(v.data(), static_cast<int>(n),
                       mpi::contig(Dt::Double), 0, 0, static_cast<int>(n),
                       vec, AccOp::Sum, win);
      }
    }
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto* d = static_cast<double*>(base);
      for (std::size_t i = 0; i < 2 * n; ++i) {
        EXPECT_EQ(d[i], (i % 2 == 0) ? 7.5 : 0.0) << "elem " << i;
      }
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    env.win_free(win);
  }, core::layer(cc));
}

INSTANTIATE_TEST_SUITE_P(GhostCounts, CasperStrided,
                         ::testing::Values(1, 2, 4));

// Dynamic binding is a pure routing decision: whichever ghost executes an
// op, the bytes land in the same window locations. Running the SAME seeded
// op stream (the conformance fuzzer's generated programs) under every
// load-balancing policy must therefore produce bit-identical final window
// contents — and a clean shadow oracle under each.
TEST(CasperBindings, DynamicPoliciesProduceIdenticalContents) {
  const core::DynamicLb policies[] = {
      core::DynamicLb::None, core::DynamicLb::Random,
      core::DynamicLb::OpCounting, core::DynamicLb::ByteCounting};
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    check::FuzzCase fc = check::make_case(seed, true);
    if (fc.order_sensitive) continue;  // content is schedule/route-defined
    std::vector<std::uint64_t> baseline;
    for (core::DynamicLb lb : policies) {
      fc.dynamic = lb;
      const check::RunOutcome out = check::run_case(fc, 0);
      ASSERT_TRUE(out.oracle_clean())
          << "seed " << seed << " policy " << static_cast<int>(lb);
      if (baseline.empty()) {
        baseline = out.content_hash;
      } else {
        EXPECT_EQ(out.content_hash, baseline)
            << "seed " << seed << " policy " << static_cast<int>(lb);
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
