// Tests for the Casper layer: ghost deployment, window mapping, operation
// redirection, asynchronous progress, binding policies, epoch translation,
// and the epochs_used hint.
#include <gtest/gtest.h>

#include <vector>

#include "core/casper.hpp"
#include "core/layer_impl.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn,
              net::Profile prof = net::cray_xc30_regular()) {
  RunConfig c;
  c.machine.profile = std::move(prof);
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

core::Config csp(int ghosts, core::Binding b = core::Binding::Rank,
                 core::DynamicLb d = core::DynamicLb::None) {
  core::Config c;
  c.ghosts_per_node = ghosts;
  c.binding = b;
  c.dynamic = d;
  return c;
}

core::CasperLayer& layer_of(mpi::Env& env) {
  return dynamic_cast<core::CasperLayer&>(env.runtime().layer());
}

TEST(CasperSetup, GhostCarvingAndUserWorld) {
  auto rc = cfg(2, 4);
  auto cc = csp(1);
  EXPECT_EQ(core::user_ranks(rc.machine.topo, cc), 6);
  int user_mains = 0;
  mpi::exec(rc,
            [&](mpi::Env& env) {
              ++user_mains;
              Comm w = env.world();
              EXPECT_EQ(w->size(), 6);
              // ghosts never appear in the user world
              auto& L = layer_of(env);
              for (int r : w->members()) {
                EXPECT_FALSE(L.ghost_rank(r));
              }
            },
            core::layer(cc));
  EXPECT_EQ(user_mains, 6);
}

TEST(CasperSetup, TopologyAwareGhostPlacementSpreadsNuma) {
  // 8-core node, 2 NUMA domains, 2 ghosts: one ghost per domain.
  net::Topology topo;
  topo.nodes = 1;
  topo.cores_per_node = 8;
  topo.numa_per_node = 2;
  auto cc = csp(2);
  std::vector<int> ghosts;
  for (int r = 0; r < 8; ++r) {
    if (core::is_ghost_rank(topo, cc, r)) ghosts.push_back(r);
  }
  ASSERT_EQ(ghosts.size(), 2u);
  EXPECT_NE(topo.numa_of(ghosts[0]), topo.numa_of(ghosts[1]));
}

TEST(CasperRma, FencePutGetThroughGhosts) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(4 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.win_fence(mpi::kModeNoPrecede, win);
    const int me = env.rank(w);
    const int next = (me + 1) % w->size();
    std::vector<double> v = {me + 1.0, me + 2.0};
    env.put(v.data(), 2, next, 0, win);
    env.win_fence(0, win);
    const int prev = (me + w->size() - 1) % w->size();
    auto* d = static_cast<double*>(base);
    EXPECT_EQ(d[0], prev + 1.0);
    EXPECT_EQ(d[1], prev + 2.0);
    // read it back with get
    std::vector<double> r(2, 0);
    env.get(r.data(), 2, prev, 0, win);
    env.win_fence(mpi::kModeNoSucceed, win);
    EXPECT_EQ(r[0], (prev + w->size() - 1) % w->size() + 1.0);
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperRma, AsynchronousProgressWhileTargetComputes) {
  // The headline behaviour: a software-path accumulate completes while the
  // target user process is stuck in computation, because the ghost makes the
  // progress. Without Casper (see MpiRma.SoftwareOpWaitsForTargetProgress)
  // the same pattern waits for the target.
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      double v = 2.5;
      env.win_lock_all(0, win);
      env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      env.win_unlock_all(win);
      EXPECT_LT(env.now(), sim::us(150));  // did NOT wait for the target
    } else if (env.rank(w) == 1) {
      env.compute(sim::us(1000));
    }
    env.barrier(w);
    if (env.rank(w) == 1) {
      EXPECT_EQ(*static_cast<double*>(base), 2.5);
    }
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperRma, LockPutUnlockRedirected) {
  mpi::exec(cfg(2, 3), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(2 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      double v = 9.0;
      env.win_lock(LockType::Exclusive, 3, 0, win);
      env.put(&v, 1, 3, 1, win);
      env.win_unlock(3, win);
    }
    env.barrier(w);
    if (env.rank(w) == 3) {
      EXPECT_EQ(static_cast<double*>(base)[1], 9.0);
    }
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperRma, ConcurrentAccumulatesRankBindingExact) {
  // All users accumulate into user 0 concurrently under lockall with 2
  // ghosts; static rank binding must keep atomicity: the sum is exact and
  // no violation is detected.
  mpi::exec(cfg(2, 4), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double one = 1.0;
    for (int i = 0; i < 10; ++i) {
      env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
    }
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      // 2 nodes x (4 cores - 2 ghosts) = 4 users, 10 accumulates each.
      EXPECT_EQ(*static_cast<double*>(base), 40.0);
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    env.win_free(win);
  }, core::layer(csp(2)));
}

TEST(CasperRma, SegmentBindingSplitsAndStaysCorrect) {
  // One user exposes a larger window; ops spanning multiple segments are
  // split between ghosts along the byte->segment-owner map (one processing
  // entity per byte, so accumulate atomicity holds); data must be exact.
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    Comm w = env.world();
    const std::size_t n = 64;
    void* base = nullptr;
    Win win = env.win_allocate(env.rank(w) == 0 ? n * sizeof(double) : 16,
                               sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    if (env.rank(w) != 0) {
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
      env.put(v.data(), static_cast<int>(n), 0, 0, win);
      env.win_flush(0, win);
      std::vector<double> ones(n, 1.0);
      env.accumulate(ones.data(), static_cast<int>(n), 0, 0, AccOp::Sum, win);
      env.win_flush(0, win);
      std::vector<double> back(n, -1.0);
      env.get(back.data(), static_cast<int>(n), 0, 0, win);
      env.win_flush(0, win);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(back[i], static_cast<double>(i) + 1.0) << "element " << i;
      }
    }
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto* d = static_cast<double*>(base);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(d[i], static_cast<double>(i) + 1.0) << "element " << i;
      }
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    EXPECT_GT(env.runtime().stats().get("casper_split_subops"), 0u);
    env.win_free(win);
  }, core::layer(csp(2, core::Binding::Segment)));
}

TEST(CasperRma, DynamicRandomSpreadsPuts) {
  mpi::exec(cfg(2, 4), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    if (env.rank(w) == 1) {
      double v = 1.5;
      for (int i = 0; i < 8; ++i) {
        env.put(&v, 1, 0, static_cast<std::size_t>(i), win);
      }
    }
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto* d = static_cast<double*>(base);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(d[i], 1.5);
    }
    EXPECT_GT(env.runtime().stats().get("casper_dynamic_ops"), 0u);
    env.win_free(win);
  }, core::layer(csp(2, core::Binding::Rank, core::DynamicLb::Random)));
}

TEST(CasperRma, PscwTranslationCompletes) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    if (env.rank(w) == 0) {
      env.win_start(mpi::Group({1}), 0, win);
      double v = 6.0;
      env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      env.win_complete(win);
    } else if (env.rank(w) == 1) {
      env.win_post(mpi::Group({0}), 0, win);
      env.win_wait(win);
      EXPECT_EQ(*static_cast<double*>(base), 6.0);
    }
    env.barrier(w);
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperHints, EpochsUsedControlsWindowCount) {
  // Default: one overlapping window per local user + the global window.
  mpi::exec(cfg(2, 4), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    auto& L = layer_of(env);
    EXPECT_EQ(L.internal_window_count(win), 3 + 1);  // 3 local users + global
    env.win_free(win);

    Info lockonly;
    lockonly.set(core::kEpochsUsedKey, "lock");
    Win win2 =
        env.win_allocate(sizeof(double), sizeof(double), lockonly, w, &base);
    EXPECT_EQ(L.internal_window_count(win2), 3);  // no global window
    env.win_free(win2);

    Info lockall_only;
    lockall_only.set(core::kEpochsUsedKey, "lockall");
    Win win3 = env.win_allocate(sizeof(double), sizeof(double), lockall_only,
                                w, &base);
    EXPECT_EQ(L.internal_window_count(win3), 1);  // single global window
    env.win_free(win3);
  }, core::layer(csp(1)));
}

TEST(CasperRma, SelfOpsExecuteLocally) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.win_lock(LockType::Exclusive, env.rank(w), 0, win);
    double v = 4.25;
    env.put(&v, 1, env.rank(w), 0, win);
    EXPECT_EQ(*static_cast<double*>(base), 4.25);
    env.win_unlock(env.rank(w), win);
    EXPECT_GT(env.runtime().stats().get("casper_self_ops"), 0u);
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperRma, FetchAndOpThroughGhost) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double add = 1.0, old = -1.0;
    env.fetch_and_op(&add, &old, Dt::Double, 0, 0, AccOp::Sum, win);
    env.win_flush(0, win);
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 2.0);  // both users added 1
    }
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperRma, MultipleWindowsCoexist) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void *b1 = nullptr, *b2 = nullptr;
    Win w1 = env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &b1);
    Win w2 = env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &b2);
    env.barrier(w);
    env.win_lock_all(0, w1);
    env.win_lock_all(0, w2);
    double x = 1.0, y = 10.0;
    env.accumulate(&x, 1, 0, 0, AccOp::Sum, w1);
    env.accumulate(&y, 1, 0, 0, AccOp::Sum, w2);
    env.win_unlock_all(w1);
    env.win_unlock_all(w2);
    env.barrier(w);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(b1), 2.0);
      EXPECT_EQ(*static_cast<double*>(b2), 20.0);
    }
    env.win_free(w2);
    env.win_free(w1);
  }, core::layer(csp(1)));
}

TEST(CasperRma, StridedAccumulateThroughGhost) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    if (env.rank(w) == 1) {
      std::vector<double> v = {1, 2, 3, 4};
      auto vec = mpi::vector_of(Dt::Double, 1, 2);
      env.accumulate(v.data(), 4, mpi::contig(Dt::Double), 0, 0, 4, vec,
                     AccOp::Sum, win);
    }
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto* d = static_cast<double*>(base);
      EXPECT_EQ(d[0], 1);
      EXPECT_EQ(d[2], 2);
      EXPECT_EQ(d[4], 3);
      EXPECT_EQ(d[6], 4);
      EXPECT_EQ(d[1], 0);
    }
    env.win_free(win);
  }, core::layer(csp(1)));
}

}  // namespace
