// Tests for the conformance harness itself: the shadow-memory oracle, the
// schedule-perturbation hook, the fuzzer's case generator, and the repro
// round-trip. The harness is only trustworthy if it (a) stays silent on
// correct executions and (b) provably fires on injected bugs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

using namespace casper;

namespace {

mpi::RunConfig small_rc(int nodes, int cores) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = nodes;
  rc.machine.topo.cores_per_node = cores;
  return rc;
}

}  // namespace

// A correct RMA exchange must never trip the oracle, and every committed op
// must have been observed.
TEST(ShadowOracle, CleanOnCorrectExecution) {
  check::ShadowOracle oracle;
  mpi::Runtime rt(small_rc(1, 2), [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    const double v = 3.5;
    if (me == 0) {
      env.put(&v, 1, mpi::contig(mpi::Dt::Double), 1, 0, 1,
              mpi::contig(mpi::Dt::Double), win);
      env.accumulate(&v, 1, mpi::contig(mpi::Dt::Double), 1, 8, 1,
                     mpi::contig(mpi::Dt::Double), mpi::AccOp::Sum, win);
    }
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  rt.add_observer(&oracle);
  rt.run();
  EXPECT_TRUE(oracle.clean());
  EXPECT_GE(oracle.commits_seen(), 2u);
  EXPECT_GE(oracle.syncs_seen(), 2u);
  EXPECT_GE(oracle.validations(), 2u);
  EXPECT_GE(oracle.bytes_tracked(), 128u);
}

// Scribbling on window memory behind the runtime's back is exactly the class
// of corruption the oracle exists to see; the next sync must report it.
TEST(ShadowOracle, DetectsOutOfBandCorruption) {
  check::ShadowOracle oracle;
  mpi::Runtime rt(small_rc(1, 2), [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64, 1, mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    const double v = 1.0;
    if (me == 0) {
      env.put(&v, 1, mpi::contig(mpi::Dt::Double), 1, 0, 1,
              mpi::contig(mpi::Dt::Double), win);
    }
    env.win_flush_all(win);
    if (me == 0) static_cast<unsigned char*>(base)[8] ^= 0xff;
    env.win_unlock_all(win);
    env.barrier(w);
    env.win_free(win);
  });
  rt.add_observer(&oracle);
  rt.run();
  ASSERT_FALSE(oracle.clean());
  EXPECT_EQ(oracle.divergences()[0].nbytes, 1u);
  EXPECT_EQ(oracle.divergences()[0].span_off % 64, 8u);
}

// Generated cases are deterministic in the seed and structurally sane.
TEST(Fuzzer, CaseGenerationIsDeterministicAndSane) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const check::FuzzCase a = check::make_case(seed, true);
    const check::FuzzCase b = check::make_case(seed, true);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    ASSERT_GE(a.nusers(), 2);
    ASSERT_FALSE(a.ops.empty());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
      EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
      EXPECT_EQ(a.ops[i].disp, b.ops[i].disp);
      EXPECT_EQ(a.ops[i].val, b.ops[i].val);
      ASSERT_LT(a.ops[i].origin, a.nusers());
      ASSERT_LT(a.ops[i].target, a.nusers());
      // Every op fits inside the target segment.
      ASSERT_LE(a.ops[i].disp +
                    mpi::span_bytes(a.ops[i].count, a.ops[i].tdt),
                a.seg_bytes());
    }
  }
}

// A handful of corpus seeds run clean under the classic schedule.
TEST(Fuzzer, CorpusSeedsRunClean) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const check::FuzzCase fc = check::make_case(seed, true);
    const check::RunOutcome out = check::run_case(fc, 0);
    EXPECT_TRUE(out.oracle_clean())
        << "seed " << seed << ": " << out.divergences.size()
        << " divergence(s), " << out.atomicity_violations << " violation(s)";
    EXPECT_GT(out.commits, 0u) << "seed " << seed;
  }
}

// Schedule perturbation must (a) be reproducible for equal seeds, (b)
// actually change the interleaving for some case, and (c) never change the
// final window contents of a schedule-invariant program.
TEST(Fuzzer, PerturbedSchedulesAreReproducibleAndEquivalent) {
  bool any_trace_changed = false;
  int invariant_checked = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const check::FuzzCase fc = check::make_case(seed, true);
    const check::RunOutcome base = check::run_case(fc, 0);
    for (int s = 1; s < 3; ++s) {
      const std::uint64_t p = check::perturb_for(seed, s);
      ASSERT_NE(p, 0u);
      const check::RunOutcome a = check::run_case(fc, p);
      const check::RunOutcome b = check::run_case(fc, p);
      EXPECT_TRUE(a.oracle_clean()) << "seed " << seed << " perturb " << p;
      // Bit-reproducible: same program + same perturb seed = same schedule.
      ASSERT_EQ(a.trace.size(), b.trace.size());
      for (std::size_t i = 0; i < a.trace.size(); ++i) {
        ASSERT_EQ(a.trace[i].t, b.trace[i].t);
        ASSERT_EQ(a.trace[i].rank, b.trace[i].rank);
      }
      if (a.trace.size() != base.trace.size()) {
        any_trace_changed = true;
      } else {
        for (std::size_t i = 0; i < a.trace.size(); ++i) {
          if (a.trace[i].rank != base.trace[i].rank) {
            any_trace_changed = true;
            break;
          }
        }
      }
      if (!fc.order_sensitive) {
        ++invariant_checked;
        EXPECT_EQ(a.content_hash, base.content_hash)
            << "seed " << seed << " perturb " << p;
      }
    }
  }
  EXPECT_TRUE(any_trace_changed)
      << "perturbation never altered any schedule";
  EXPECT_GT(invariant_checked, 0);
}

// The deliberately flipped segment->ghost binding (core::Config::Fault) must
// be caught by the oracle on some corpus case — this is the harness's proof
// of life.
TEST(Fuzzer, InjectedBindingBugIsCaught) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const check::FuzzCase fc = check::make_case(seed, true);
    if (fc.binding != core::Binding::Segment || fc.ghosts < 2) continue;
    for (int s = 0; s < 4; ++s) {
      const check::RunOutcome out =
          check::run_case(fc, check::perturb_for(seed, s), true);
      if (!out.oracle_clean()) {
        SUCCEED();
        return;
      }
    }
  }
  FAIL() << "flipped segment binding was never detected";
}

TEST(Fuzzer, MinimizePrefixFindsSmallestFailing) {
  int calls = 0;
  const int k = check::minimize_prefix(40, [&](int n) {
    ++calls;
    return n >= 17;
  });
  EXPECT_EQ(k, 17);
  EXPECT_LE(calls, 10);
  EXPECT_EQ(check::minimize_prefix(5, [](int n) { return n >= 1; }), 1);
  // Nothing fails: falls back to total.
  EXPECT_EQ(check::minimize_prefix(5, [](int) { return false; }), 5);
}

// write_repro -> parse_repro -> replay round-trips the failure.
TEST(Fuzzer, ReproFileRoundTrips) {
  // Find one fault-injected failing case (same hunt as the fault proof).
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const check::FuzzCase fc = check::make_case(seed, true);
    if (fc.binding != core::Binding::Segment || fc.ghosts < 2) continue;
    for (int s = 0; s < 4; ++s) {
      const std::uint64_t p = check::perturb_for(seed, s);
      const check::RunOutcome out = check::run_case(fc, p, true);
      if (out.oracle_clean()) continue;

      check::Repro rp;
      rp.seed = seed;
      rp.perturb = p;
      rp.prefix_ops = static_cast<int>(fc.ops.size());
      rp.reduced = true;
      rp.fault = true;
      rp.kind = "oracle-divergence";
      const std::string path =
          check::write_repro(rp, fc, out, testing::TempDir());
      ASSERT_FALSE(path.empty());
      check::Repro back;
      ASSERT_TRUE(check::parse_repro(path, back));
      EXPECT_EQ(back.seed, rp.seed);
      EXPECT_EQ(back.perturb, rp.perturb);
      EXPECT_EQ(back.prefix_ops, rp.prefix_ops);
      EXPECT_EQ(back.reduced, rp.reduced);
      EXPECT_EQ(back.fault, rp.fault);
      EXPECT_EQ(back.kind, rp.kind);
      EXPECT_TRUE(check::replay(back));
      std::remove(path.c_str());
      return;
    }
  }
  FAIL() << "no fault-injected failure found to round-trip";
}

