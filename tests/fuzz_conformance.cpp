// Conformance fuzzer driver (not a gtest binary).
//
// Default run (what ctest invokes): a reduced corpus of seeded programs, each
// executed under several perturbed fiber schedules with the shadow oracle
// attached, followed by a fault-proof phase that injects the deliberate
// segment-binding bug and REQUIRES the harness to catch it and produce a
// replayable repro. Exits non-zero on any real failure — including the
// injected bug going undetected, which would mean the harness lost its teeth.
//
//   fuzz_conformance [--cases N] [--schedules N] [--base-seed N] [--full]
//                    [--faults] [--races N] [--out DIR] [--no-fault-proof]
//                    [--verbose]
//   fuzz_conformance --replay FILE      # re-run a recorded repro
//
// --faults additionally subjects every case to a seed-derived lossy network
// (dropped / duplicated / delayed-reordered AMs and dropped acks): the
// reliable AM layer must keep the oracle clean under every mix, and any
// failure's repro file embeds the triggering FaultPlan.
//
// --races N switches to racy mode: every case is generated with N planted
// same-epoch conflicting access pairs and the run fails unless the race
// analyzer flags every planted pair in every schedule ("race-miss" repro
// otherwise). The default clean corpus doubles as the analyzer's
// false-positive gate: any conflict there is a "race-conflict" failure.
//
// --kv N switches to KV mode: N seeded KV-store workloads (Zipfian op mixes
// over the RMA-backed store, all three progress modes) are replayed under
// perturbed schedules with the linearizability checker riding as the
// store's history sink and the shadow oracle attached. Any violation is
// minimized to a global op prefix and written as a "kv-violation" repro.
// Afterwards, kv_proof plants the skip-unlock-flush store bug under a
// delay-heavy network and REQUIRES the checker to catch it (the
// fault-proof analogue; skipped with --no-fault-proof). --faults composes:
// each KV case additionally runs under a seed-derived lossy network.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/fuzz.hpp"
#include "check/kvfuzz.hpp"

using namespace casper;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_conformance [--cases N] [--schedules N] "
               "[--base-seed N] [--full] [--faults] [--races N] [--kv N] "
               "[--adaptive] [--out DIR] [--no-fault-proof] [--verbose] | "
               "--replay FILE\n");
  return 2;
}

/// Inject the flipped segment->ghost binding into suitable cases until one
/// run trips the oracle; write and replay the repro. Returns true when the
/// bug was caught AND the repro reproduces it.
bool fault_proof(std::uint64_t base_seed, int schedules, bool reduced,
                 const std::string& out_dir, bool verbose) {
  for (std::uint64_t seed = base_seed; seed < base_seed + 500; ++seed) {
    check::FuzzCase fc = check::make_case(seed, reduced);
    // The fault only has a surface when segment binding actually spreads one
    // target over >= 2 ghosts; adaptive cases resolve through the
    // controller's map instead of the flippable static owner function.
    if (fc.binding != core::Binding::Segment || fc.ghosts < 2 ||
        fc.adaptive) {
      continue;
    }
    for (int s = 0; s < schedules; ++s) {
      const std::uint64_t p = check::perturb_for(seed, s);
      const check::RunOutcome out =
          check::run_case(fc, p, /*inject_flip_fault=*/true);
      if (out.oracle_clean()) continue;

      const int k = check::minimize_prefix(
          static_cast<int>(fc.ops.size()), [&](int n) {
            check::FuzzCase t = fc;
            t.ops.resize(static_cast<std::size_t>(n));
            return !check::run_case(t, p, true).oracle_clean();
          });
      check::FuzzCase t = fc;
      t.ops.resize(static_cast<std::size_t>(k));
      const check::RunOutcome rerun = check::run_case(t, p, true);
      check::Repro rp;
      rp.seed = seed;
      rp.perturb = p;
      rp.prefix_ops = k;
      rp.reduced = reduced;
      rp.fault = true;
      rp.kind = "oracle-divergence";
      const std::string path = check::write_repro(rp, fc, rerun, out_dir);
      if (path.empty()) {
        std::fprintf(stderr, "fault-proof: could not write repro file\n");
        return false;
      }
      check::Repro back;
      if (!check::parse_repro(path, back)) {
        std::fprintf(stderr, "fault-proof: could not parse %s\n",
                     path.c_str());
        return false;
      }
      if (!check::replay(back)) {
        std::fprintf(stderr,
                     "fault-proof: repro %s did not reproduce on replay\n",
                     path.c_str());
        return false;
      }
      if (verbose) {
        std::fprintf(stderr,
                     "fault-proof: injected binding bug caught (seed %" PRIu64
                     ", schedule %d, minimized to %d op(s)), repro %s "
                     "replays\n",
                     seed, s, k, path.c_str());
      }
      return true;
    }
  }
  std::fprintf(stderr,
               "fault-proof: injected binding bug was NOT detected in any "
               "candidate case\n");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  check::CampaignOptions opt;
  opt.cases = 200;
  opt.schedules = 4;
  opt.reduced = true;
  bool do_fault_proof = true;
  int kv_cases = 0;
  const char* replay_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--cases") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.cases = std::atoi(v);
    } else if (a == "--schedules") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.schedules = std::atoi(v);
    } else if (a == "--base-seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.base_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.repro_dir = v;
    } else if (a == "--full") {
      opt.reduced = false;
    } else if (a == "--faults") {
      opt.net_faults = true;
    } else if (a == "--races") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.planted_races = std::atoi(v);
      if (opt.planted_races <= 0) return usage();
    } else if (a == "--kv") {
      const char* v = next();
      if (v == nullptr) return usage();
      kv_cases = std::atoi(v);
      if (kv_cases <= 0) return usage();
    } else if (a == "--adaptive") {
      // Force the online progress controller on for every generated case
      // (instead of the seed stream's ~25%). The fault-proof phase keeps
      // drawing its own candidates: the injected static-binding bug has no
      // surface under the controller's map.
      opt.force_adaptive = true;
    } else if (a == "--no-fault-proof") {
      do_fault_proof = false;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--replay") {
      replay_path = next();
      if (replay_path == nullptr) return usage();
    } else {
      return usage();
    }
  }

  if (replay_path != nullptr && check::is_kv_repro(replay_path)) {
    check::KvRepro r;
    if (!check::parse_kv_repro(replay_path, r)) {
      std::fprintf(stderr, "replay: cannot parse %s\n", replay_path);
      return 2;
    }
    const bool reproduced = check::replay_kv(r);
    std::printf("replay %s: %s (%s, seed %" PRIu64 ", perturb %" PRIu64
                ", %d op prefix)\n",
                replay_path, reproduced ? "REPRODUCED" : "did not reproduce",
                r.kind.c_str(), r.seed, r.perturb, r.prefix_ops);
    return reproduced ? 0 : 1;
  }
  if (replay_path != nullptr) {
    check::Repro r;
    if (!check::parse_repro(replay_path, r)) {
      std::fprintf(stderr, "replay: cannot parse %s\n", replay_path);
      return 2;
    }
    const bool reproduced = check::replay(r);
    std::printf("replay %s: %s (%s, seed %" PRIu64 ", perturb %" PRIu64
                ", %d op prefix)\n",
                replay_path, reproduced ? "REPRODUCED" : "did not reproduce",
                r.kind.c_str(), r.seed, r.perturb, r.prefix_ops);
    return reproduced ? 0 : 1;
  }

  if (kv_cases > 0) {
    check::KvCampaignOptions kopt;
    kopt.base_seed = opt.base_seed;
    kopt.cases = kv_cases;
    kopt.schedules = opt.schedules;
    kopt.reduced = opt.reduced;
    kopt.net_faults = opt.net_faults;
    kopt.repro_dir = opt.repro_dir;
    kopt.verbose = opt.verbose;
    const check::KvCampaignResult kres = check::run_kv_campaign(kopt);
    std::printf("fuzz_conformance [--kv]%s: %d case(s) x %d schedule(s) = "
                "%d run(s), %" PRIu64 " checked KV op(s), %zu failure(s)\n",
                kopt.net_faults ? " [--faults]" : "", kres.cases_run,
                kopt.schedules, kres.runs, kres.total_ops,
                kres.failures.size());
    for (const auto& f : kres.failures) {
      std::fprintf(stderr,
                   "FAILURE seed %" PRIu64 " perturb %" PRIu64
                   " kind %s minimized %d op(s) repro %s\n",
                   f.seed, f.perturb, f.kind.c_str(), f.minimized_ops,
                   f.repro_path.c_str());
    }
    bool kv_ok = kres.failures.empty();
    // KV's positive gate: the planted skip-unlock-flush store bug must be
    // caught, minimized, and replayable.
    if (do_fault_proof) {
      kv_ok = check::kv_proof(kopt.base_seed, kopt.schedules, kopt.repro_dir,
                              kopt.verbose || true) &&
              kv_ok;
    }
    return kv_ok ? 0 : 1;
  }

  const check::CampaignResult res = check::run_campaign(opt);
  std::printf("fuzz_conformance%s%s%s: %d case(s) x %d schedule(s) = %d "
              "run(s), %" PRIu64 " observed commits, %zu failure(s)\n",
              opt.net_faults ? " [--faults]" : "",
              opt.planted_races > 0 ? " [--races]" : "",
              opt.force_adaptive ? " [--adaptive]" : "", res.cases_run,
              opt.schedules, res.runs, res.total_commits,
              res.failures.size());
  for (const auto& f : res.failures) {
    std::fprintf(stderr,
                 "FAILURE seed %" PRIu64 " perturb %" PRIu64
                 " kind %s minimized %d op(s) repro %s\n",
                 f.seed, f.perturb, f.kind.c_str(), f.minimized_ops,
                 f.repro_path.c_str());
  }

  bool ok = res.failures.empty();
  // Fault-proof is an oracle self-test; racy mode judges the race analyzer
  // and planted races would muddy the injected-bug detection.
  if (opt.planted_races > 0) do_fault_proof = false;
  if (do_fault_proof) {
    ok = fault_proof(opt.base_seed, opt.schedules, opt.reduced, opt.repro_dir,
                     opt.verbose || true) &&
         ok;
  }
  return ok ? 0 : 1;
}
