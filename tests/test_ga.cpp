// Tests for mini-GA: distribution, patch get/put/acc (contiguous and
// strided), shared counter, and correctness under both plain MPI and Casper.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ccsd/ccsd.hpp"
#include "core/casper.hpp"
#include "ga/global_array.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using ga::GlobalArray;
using ga::SharedCounter;
using mpi::Comm;
using mpi::RunConfig;

RunConfig cfg(int nodes, int cpn,
              net::Profile prof = net::cray_xc30_regular()) {
  RunConfig c;
  c.machine.profile = std::move(prof);
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

void ga_roundtrip_body(mpi::Env& env) {
  Comm w = env.world();
  GlobalArray a(env, w, 16, 8);
  // rank 0 writes the whole array with put patches; everyone reads back.
  if (env.rank(w) == 0) {
    std::vector<double> buf(16 * 8);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<double>(i);
    }
    a.put(env, 0, 16, 0, 8, buf.data());
    a.flush(env);
  }
  a.sync(env);
  std::vector<double> r(4 * 8, -1);
  a.get(env, 4, 8, 0, 8, r.data());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], static_cast<double>(4 * 8 + i));
  }
  // strided patch: columns 2..5 of rows 1..3
  std::vector<double> s(2 * 3, -1);
  a.get(env, 1, 3, 2, 5, s.data());
  EXPECT_EQ(s[0], 1 * 8 + 2.0);
  EXPECT_EQ(s[1], 1 * 8 + 3.0);
  EXPECT_EQ(s[3], 2 * 8 + 2.0);
  a.destroy(env);
}

TEST(Ga, PatchRoundTripPlainMpi) {
  mpi::exec(cfg(2, 2), ga_roundtrip_body);
}

TEST(Ga, PatchRoundTripUnderCasper) {
  core::Config cc;
  cc.ghosts_per_node = 1;
  mpi::exec(cfg(2, 3), ga_roundtrip_body, core::layer(cc));
}

void ga_acc_body(mpi::Env& env) {
  Comm w = env.world();
  GlobalArray a(env, w, 8, 4);
  std::vector<double> ones(2 * 4, 1.0);
  // every rank accumulates into rows 2..4
  a.acc(env, 2, 4, 0, 4, ones.data());
  a.sync(env);
  auto [lo, hi] = a.my_rows(env);
  const double want = static_cast<double>(env.size(w));
  for (std::int64_t r = std::max<std::int64_t>(lo, 2);
       r < std::min<std::int64_t>(hi, 4); ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(a.local()[(r - lo) * 4 + c], want);
    }
  }
  EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
  a.destroy(env);
}

TEST(Ga, ConcurrentAccumulateExactPlainMpi) {
  mpi::exec(cfg(1, 4), ga_acc_body);
}

TEST(Ga, ConcurrentAccumulateExactUnderCasper) {
  core::Config cc;
  cc.ghosts_per_node = 2;
  mpi::exec(cfg(2, 4), ga_acc_body, core::layer(cc));
}

TEST(Ga, PatchSpanningMultipleOwners) {
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    Comm w = env.world();
    GlobalArray a(env, w, 16, 4);  // 4 rows per rank
    EXPECT_EQ(a.rows_per_rank(), 4);
    if (env.rank(w) == 0) {
      std::vector<double> buf(10 * 4, 3.5);
      a.put(env, 2, 12, 0, 4, buf.data());  // spans ranks 0,1,2
      a.flush(env);
    }
    a.sync(env);
    std::vector<double> r(10 * 4, 0);
    a.get(env, 2, 12, 0, 4, r.data());
    for (double v : r) EXPECT_EQ(v, 3.5);
    a.destroy(env);
  });
}

void counter_body(mpi::Env& env) {
  Comm w = env.world();
  SharedCounter c(env, w);
  const int per_rank = 5;
  std::vector<std::int64_t> got;
  for (int i = 0; i < per_rank; ++i) got.push_back(c.next(env));
  // All values across ranks must be a permutation of 0..N*per_rank-1:
  // check sum (sufficient with exactness of doubles in this range).
  double mysum = 0;
  for (auto v : got) mysum += static_cast<double>(v);
  double total = 0;
  env.allreduce(&mysum, &total, 1, mpi::Dt::Double, mpi::AccOp::Sum, w);
  const double n = static_cast<double>(env.size(w) * per_rank);
  EXPECT_EQ(total, n * (n - 1) / 2);
  c.destroy(env);
}

TEST(Ga, SharedCounterUniquePlainMpi) { mpi::exec(cfg(2, 2), counter_body); }

TEST(Ga, SharedCounterUniqueUnderCasper) {
  core::Config cc;
  cc.ghosts_per_node = 1;
  mpi::exec(cfg(2, 3), counter_body, core::layer(cc));
}

TEST(Ccsd, VerifySmallPlainMpi) {
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    auto p = casper::ccsd::ccsd_profile(16);
    p.tile = 8;
    EXPECT_TRUE(casper::ccsd::verify_small(env, env.world(), p));
  });
}

TEST(Ccsd, VerifySmallUnderCasper) {
  core::Config cc;
  cc.ghosts_per_node = 1;
  mpi::exec(cfg(2, 3), [](mpi::Env& env) {
    auto p = casper::ccsd::ccsd_profile(16);
    p.tile = 8;
    EXPECT_TRUE(casper::ccsd::verify_small(env, env.world(), p));
  }, core::layer(cc));
}

TEST(Ccsd, PhaseRunsAndBalances) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    auto p = casper::ccsd::ccsd_profile(32);
    p.tile = 8;
    auto r = casper::ccsd::run_phase(env, env.world(), p);
    EXPECT_GT(r.wall, 0u);
    // dynamic load balancing: every rank should run some tasks
    EXPECT_GT(r.tasks_run, 0);
  });
}

}  // namespace
