// Hot-path allocation guard + route-plan cache semantics.
//
// The zero-allocation claim of the RMA fast path is enforced here, not just
// benchmarked: global operator new/delete are replaced with counting
// wrappers, a passive-target PUT/ACC loop is warmed until every pool
// (payload arena, event slots, inbox rings, plan cache, scheduler heap) has
// reached steady state, and then a 1k-op measured window must perform ZERO
// heap allocations end to end — origin issue, ghost-side processing, and
// completion acks included.
//
// The plan-cache tests pin the invalidation contract: cached split plans
// survive flushes under lockall (no binding transition), are shared across
// op kinds with the same (target, disp, count, datatype) key, and are
// invalidated by every lock/unlock transition and by the flush that opens a
// static-binding-free (rebinding) interval under a per-target lock.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "obs/record.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n != 0 ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace casper;

namespace {

// 2 nodes x (1 user + 1 ghost), all-software Cray profile: every op takes
// the full redirect -> ghost AM -> commit -> ack path.
mpi::RunConfig casper_config(obs::Recorder* rec = nullptr) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 2;
  rc.seed = 12345;
  rc.recorder = rec;
  return rc;
}

core::Config one_ghost() {
  core::Config cc;
  cc.ghosts_per_node = 1;
  return cc;
}

TEST(HotPathAlloc, ZeroSteadyStateAllocationsInPutAccLoop) {
  std::uint64_t measured = ~std::uint64_t{0};
  auto workload = [&measured](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64 * sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    env.win_lock_all(0, win);
    env.barrier(w);
    double v = 1.0;
    // Alternating contiguous PUT/ACC to the peer, flushed every 16 ops so
    // queue depths in the measured window repeat the warm-up's exactly.
    auto batch = [&](int ops) {
      for (int i = 0; i < ops; ++i) {
        const auto slot = static_cast<std::size_t>(i % 16);
        if ((i & 1) == 0) {
          env.put(&v, 1, 1, slot, win);
        } else {
          env.accumulate(&v, 1, 1, 32 + slot, mpi::AccOp::Sum, win);
        }
        if ((i & 15) == 15) env.win_flush_all(win);
      }
      env.win_flush_all(win);
    };
    if (me == 0) {
      batch(256);  // warm every pool and cache on the path
      const std::uint64_t before = alloc_count();
      batch(1000);  // steady state: must not touch the heap at all
      measured = alloc_count() - before;
    }
    env.barrier(w);
    env.win_unlock_all(win);
    env.win_free(win);
  };
  mpi::exec(casper_config(), workload, core::layer(one_ghost()));
  EXPECT_EQ(measured, 0u)
      << "steady-state PUT/ACC fast path performed heap allocations";
}

std::uint64_t counter_or_zero(const obs::Recorder& rec, const char* name) {
  const auto& c = rec.metrics().counters();
  auto it = c.find(name);
  return it == c.end() ? 0 : it->second;
}

TEST(HotPathAlloc, PlanCacheHitsAndLockallInvalidation) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with CASPER_TRACE=0";
  obs::Recorder rec;
  auto workload = [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64 * sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    double v = 1.0;
    if (me == 0) {
      env.win_lock_all(0, win);
      for (int i = 0; i < 8; ++i) env.put(&v, 1, 1, 0, win);  // miss 1, hit 7
      // Same (target, disp, count, dt) key: the plan is shared across op
      // kinds — an accumulate reuses the put's cached split.
      env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);  // hit 1
      for (int i = 0; i < 4; ++i) {
        env.accumulate(&v, 1, 1, 8, mpi::AccOp::Sum, win);  // miss 1, hit 3
      }
      env.win_flush_all(win);            // lockall: NOT a binding transition
      env.put(&v, 1, 1, 0, win);         // hit 1 (plan survived the flush)
      env.win_unlock_all(win);           // invalidates
      env.win_lock_all(0, win);          // invalidates
      env.put(&v, 1, 1, 0, win);         // miss 1
      env.put(&v, 1, 1, 0, win);         // hit 1
      env.win_unlock_all(win);
    }
    env.barrier(w);
    env.win_free(win);
  };
  mpi::exec(casper_config(&rec), workload, core::layer(one_ghost()));
  EXPECT_EQ(counter_or_zero(rec, "casper.plan_cache_miss"), 3u);
  EXPECT_EQ(counter_or_zero(rec, "casper.plan_cache_hit"), 13u);
}

TEST(HotPathAlloc, PlanCacheInvalidatedByLockEpochsAndRebindingFlush) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with CASPER_TRACE=0";
  obs::Recorder rec;
  auto workload = [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(64 * sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    double v = 1.0;
    if (me == 0) {
      env.win_lock(mpi::LockType::Shared, 1, 0, win);
      for (int i = 0; i < 3; ++i) env.put(&v, 1, 1, 0, win);  // miss 1, hit 2
      // First flush under a per-target lock opens the static-binding-free
      // (rebinding) interval — plans cached before it are stale.
      env.win_flush(1, win);
      for (int i = 0; i < 2; ++i) env.put(&v, 1, 1, 0, win);  // miss 1, hit 1
      env.win_flush(1, win);      // already binding-free: no transition
      env.put(&v, 1, 1, 0, win);  // hit 1
      env.win_unlock(1, win);     // invalidates
      env.win_lock(mpi::LockType::Shared, 1, 0, win);  // invalidates
      env.put(&v, 1, 1, 0, win);  // miss 1
      env.win_unlock(1, win);
    }
    env.barrier(w);
    env.win_free(win);
  };
  mpi::exec(casper_config(&rec), workload, core::layer(one_ghost()));
  EXPECT_EQ(counter_or_zero(rec, "casper.plan_cache_miss"), 3u);
  EXPECT_EQ(counter_or_zero(rec, "casper.plan_cache_hit"), 4u);
}

// Regression: the injected flip fault (core::Config::Fault) must be scoped
// per window, not process-global. With flip_only_seq = 0 only the first
// allocated window takes the uncached fault path (contributing neither hits
// nor misses); a co-resident unfaulted window must keep its plan cache fully
// hot. The unscoped default (flip_only_seq = -1) bypasses caching on both.
TEST(HotPathAlloc, FlipFaultScopedPerWindowKeepsOtherCachesHot) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with CASPER_TRACE=0";
  auto workload = [](mpi::Env& env) {
    mpi::Comm w = env.world();
    const int me = env.rank(w);
    void* a_base = nullptr;
    void* b_base = nullptr;
    // Allocation order fixes the per-rank window seq: win_a = 0, win_b = 1.
    mpi::Win win_a = env.win_allocate(64 * sizeof(double), sizeof(double),
                                      mpi::Info{}, w, &a_base);
    mpi::Win win_b = env.win_allocate(64 * sizeof(double), sizeof(double),
                                      mpi::Info{}, w, &b_base);
    double v = 1.0;
    if (me == 0) {
      env.win_lock_all(0, win_a);
      env.win_lock_all(0, win_b);
      // Identical op streams on both windows.
      for (int i = 0; i < 8; ++i) env.put(&v, 1, 1, 0, win_a);
      for (int i = 0; i < 8; ++i) env.put(&v, 1, 1, 0, win_b);
      env.win_unlock_all(win_b);
      env.win_unlock_all(win_a);
    }
    env.barrier(w);
    env.win_free(win_b);
    env.win_free(win_a);
  };

  core::Config faulted = one_ghost();
  faulted.fault.flip_segment_binding = true;
  faulted.fault.flip_only_seq = 0;  // scope the flip to win_a only
  obs::Recorder scoped;
  mpi::exec(casper_config(&scoped), workload, core::layer(faulted));
  // win_a's 8 puts all bypass the cache; win_b still warms and hits.
  EXPECT_EQ(counter_or_zero(scoped, "casper.plan_cache_miss"), 1u)
      << "fault bypass leaked into the unfaulted window's plan cache";
  EXPECT_EQ(counter_or_zero(scoped, "casper.plan_cache_hit"), 7u);

  faulted.fault.flip_only_seq = -1;  // default: every window is faulted
  obs::Recorder global;
  mpi::exec(casper_config(&global), workload, core::layer(faulted));
  EXPECT_EQ(counter_or_zero(global, "casper.plan_cache_miss"), 0u);
  EXPECT_EQ(counter_or_zero(global, "casper.plan_cache_hit"), 0u);
}

}  // namespace
