// Tests for the baseline asynchronous-progress agents (thread / interrupt)
// and their cost models.
#include <gtest/gtest.h>

#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn, progress::Kind kind,
              bool oversub = false,
              net::Profile prof = net::cray_xc30_regular()) {
  RunConfig c;
  c.machine.profile = std::move(prof);
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  c.progress.kind = kind;
  c.progress.oversubscribed = oversub;
  return c;
}

void overlap_body(mpi::Env& env, sim::Time max_origin_time) {
  Comm w = env.world();
  void* base = nullptr;
  Win win =
      env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
  env.barrier(w);
  if (env.rank(w) == 0) {
    double v = 1.0;
    env.win_lock_all(0, win);
    env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
    env.win_unlock_all(win);
    EXPECT_LT(env.now(), max_origin_time);
  } else {
    env.compute(sim::ms(1));
  }
  env.barrier(w);
  if (env.rank(w) == 1) {
    EXPECT_EQ(*static_cast<double*>(base), 1.0);
  }
  env.win_free(win);
}

TEST(ThreadAgent, ProvidesAsynchronousProgress) {
  mpi::exec(cfg(2, 1, progress::Kind::Thread, true),
            [](mpi::Env& env) { overlap_body(env, sim::us(300)); });
}

TEST(InterruptAgent, ProvidesAsynchronousProgress) {
  mpi::exec(cfg(2, 1, progress::Kind::Interrupt),
            [](mpi::Env& env) { overlap_body(env, sim::us(300)); });
}

TEST(InterruptAgent, CountsOneInterruptPerSoftwareOp) {
  mpi::exec(cfg(2, 1, progress::Kind::Interrupt), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      env.win_lock_all(0, win);
      double v = 1.0;
      for (int i = 0; i < 25; ++i) {
        env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      }
      env.win_unlock_all(win);
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      // 25 accumulates; lock traffic is hardware on no profile here, so a
      // couple of lock messages may add interrupts.
      const auto n = env.runtime().stats().get("interrupts");
      EXPECT_GE(n, 25u);
      EXPECT_LE(n, 30u);
    }
    env.win_free(win);
  });
}

TEST(InterruptAgent, StealsTimeFromComputingTarget) {
  // The target's 500us compute is extended by the interrupt handlers.
  sim::Time target_end = 0;
  mpi::exec(cfg(2, 1, progress::Kind::Interrupt), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    const sim::Time t0 = env.now();
    if (env.rank(w) == 0) {
      env.win_lock_all(0, win);
      double v = 1.0;
      for (int i = 0; i < 50; ++i) {
        env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      }
      env.win_unlock_all(win);
    } else {
      env.compute(sim::us(500));
      target_end = env.now() - t0;
    }
    env.barrier(w);
    env.win_free(win);
  });
  // 50 interrupts x (4us + handling) stolen from the computation.
  EXPECT_GT(target_end, sim::us(650));
}

TEST(ThreadAgent, OversubscriptionDoublesComputeTime) {
  sim::Time end = 0;
  mpi::exec(cfg(1, 1, progress::Kind::Thread, true), [&](mpi::Env& env) {
    const sim::Time t0 = env.now();
    env.compute(sim::us(100));
    end = env.now() - t0;
  });
  EXPECT_EQ(end, sim::us(200));
}

TEST(ThreadAgent, DedicatedCoreKeepsComputeSpeed) {
  sim::Time end = 0;
  mpi::exec(cfg(1, 1, progress::Kind::Thread, false), [&](mpi::Env& env) {
    const sim::Time t0 = env.now();
    env.compute(sim::us(100));
    end = env.now() - t0;
  });
  EXPECT_EQ(end, sim::us(100));
}

TEST(ThreadAgent, CallOverheadChargedPerMpiCall) {
  sim::Time with_thread = 0, without = 0;
  auto body = [](mpi::Env& env) -> sim::Time {
    Comm w = env.world();
    const sim::Time t0 = env.now();
    for (int i = 0; i < 10; ++i) env.barrier(w);
    return env.now() - t0;
  };
  mpi::exec(cfg(1, 2, progress::Kind::Thread),
            [&](mpi::Env& env) { with_thread = body(env); });
  mpi::exec(cfg(1, 2, progress::Kind::None),
            [&](mpi::Env& env) { without = body(env); });
  EXPECT_GT(with_thread, without);
}

TEST(Agents, SelfAccumulateSerializedThroughAgent) {
  // With an agent processing remote accumulates, self accumulates must not
  // bypass it: the total must stay exact.
  mpi::exec(cfg(1, 4, progress::Kind::Thread), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double one = 1.0;
    for (int i = 0; i < 20; ++i) {
      env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);  // incl. rank 0 itself
    }
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 80.0);
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    env.win_free(win);
  });
}

}  // namespace
