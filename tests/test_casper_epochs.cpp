// Casper epoch-translation corners: assert fast paths, the
// static-binding-free interval, lockall<->lock conversion correctness, and
// hint misuse diagnostics.
#include <gtest/gtest.h>

#include "core/casper.hpp"
#include "core/layer_impl.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn) {
  RunConfig c;
  c.machine.profile = net::cray_xc30_regular();
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

core::Config csp(int ghosts,
                 core::DynamicLb d = core::DynamicLb::None) {
  core::Config c;
  c.ghosts_per_node = ghosts;
  c.dynamic = d;
  return c;
}

TEST(CasperEpochs, FenceAssertsSkipSynchronization) {
  // A fully-asserted fence must be much cheaper than a plain fence.
  sim::Time plain = 0, asserted = 0;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    sim::Time t0 = env.now();
    for (int i = 0; i < 10; ++i) env.win_fence(0, win);
    if (env.rank(w) == 0) plain = env.now() - t0;
    env.barrier(w);
    t0 = env.now();
    for (int i = 0; i < 10; ++i) {
      env.win_fence(mpi::kModeNoStore | mpi::kModeNoPut |
                        mpi::kModeNoPrecede,
                    win);
    }
    if (env.rank(w) == 0) asserted = env.now() - t0;
    env.barrier(w);
    env.win_free(win);
  }, core::layer(csp(1)));
  EXPECT_LT(asserted * 3, plain);
}

TEST(CasperEpochs, PscwNoCheckSkipsHandshake) {
  sim::Time with_check = 0, no_check = 0;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    auto round = [&](unsigned a) {
      env.barrier(w);  // provides the ordering NOCHECK requires
      const sim::Time t0 = env.now();
      if (env.rank(w) == 0) {
        env.win_start(mpi::Group({1}), a, win);
        double v = 1.0;
        env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
        env.win_complete(win);
      } else if (env.rank(w) == 1) {
        env.win_post(mpi::Group({0}), a, win);
        env.win_wait(win);
      }
      env.barrier(w);
      return env.now() - t0;
    };
    const sim::Time a = round(0);
    const sim::Time b = round(mpi::kModeNoCheck);
    if (env.rank(w) == 0) {
      with_check = a;
      no_check = b;
    }
    env.win_free(win);
  }, core::layer(csp(1)));
  EXPECT_LT(no_check, with_check);
}

TEST(CasperEpochs, BindingFreeIntervalStartsAfterFlush) {
  // Dynamic binding under an exclusive lock requires a completed flush;
  // before the flush PUTs stay on the bound ghost, afterwards they spread.
  mpi::exec(cfg(1, 5), [](mpi::Env& env) {
    Comm w = env.world();  // 2 users + 3 ghosts
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    if (env.rank(w) == 1) {
      auto& rt = env.runtime();
      env.win_lock(LockType::Exclusive, 0, 0, win);
      double v = 1.0;
      env.put(&v, 1, 0, 0, win);
      const auto before = rt.stats().get("casper_dynamic_ops");
      env.win_flush(0, win);  // starts the static-binding-free interval
      for (int i = 0; i < 6; ++i) {
        env.put(&v, 1, 0, static_cast<std::size_t>(i), win);
      }
      const auto after = rt.stats().get("casper_dynamic_ops");
      env.win_unlock(0, win);
      EXPECT_EQ(before, 0u);   // pre-flush put was statically bound
      EXPECT_EQ(after, 6u);    // post-flush puts were dynamically balanced
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto* d = static_cast<double*>(base);
      for (int i = 0; i < 6; ++i) EXPECT_EQ(d[i], 1.0);
    }
    env.win_free(win);
  }, core::layer(csp(3, core::DynamicLb::Random)));
}

TEST(CasperEpochs, AccumulatesNeverDynamicallyBalanced) {
  mpi::exec(cfg(1, 5), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double v = 1.0;
    for (int i = 0; i < 10; ++i) {
      env.accumulate(&v, 1, 0, 0, AccOp::Sum, win);
    }
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    // dynamic ops counter only counts PUT/GET routed dynamically
    EXPECT_EQ(env.runtime().stats().get("casper_dynamic_ops"), 0u);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 20.0);  // 2 users x 10
    }
    env.win_free(win);
  }, core::layer(csp(3, core::DynamicLb::Random)));
}

TEST(CasperEpochs, ExclusiveLockVsLockallIsSerialized) {
  // Paper III.C.3: one origin holds an exclusive lock while another uses
  // lockall on the same window. The lockall->per-ghost-lock conversion lets
  // MPI's lock manager see the conflict; the accumulated result must be
  // exact and no atomicity violation may occur.
  mpi::exec(cfg(2, 4), [](mpi::Env& env) {
    Comm w = env.world();
    ASSERT_EQ(w->size(), 4);  // 2 nodes x (4 cores - 2 ghosts)
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    const int me = env.rank(w);
    double one = 1.0;
    if (me == 1) {
      env.win_lock(LockType::Exclusive, 0, 0, win);
      for (int i = 0; i < 20; ++i) {
        env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
      }
      env.win_unlock(0, win);
    } else if (me == 2 || me == 3) {
      env.win_lock_all(0, win);
      for (int i = 0; i < 20; ++i) {
        env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
      }
      env.win_unlock_all(win);
    }
    env.barrier(w);
    if (me == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 60.0);
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    env.win_free(win);
  }, core::layer(csp(2)));
}

TEST(CasperEpochs, UnmanagedWindowPassthrough) {
  // Windows over a sub-communicator are not Casper-managed but must still
  // work (plain MPI semantics) and be counted.
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    Comm half = env.comm_split(w, env.rank(w) % 2, env.rank(w));
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, half, &base);
    env.win_lock_all(0, win);
    double v = 2.0;
    env.accumulate(&v, 1, 0, 0, AccOp::Sum, win);
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    EXPECT_GT(env.runtime().stats().get("casper_unmanaged_windows"), 0u);
    if (env.rank(half) == 0) {
      // one accumulate from each member of my half
      EXPECT_EQ(*static_cast<double*>(base), 2.0 * half->size());
    }
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperEpochs, GhostsServeMultipleWindowsConcurrently) {
  // One ghost must make progress on several windows with different epoch
  // types at once (the paper's "never block indefinitely" requirement).
  mpi::exec(cfg(2, 3), [](mpi::Env& env) {
    Comm w = env.world();
    void *b1 = nullptr, *b2 = nullptr;
    Info lockall_hint;
    lockall_hint.set(core::kEpochsUsedKey, "lockall");
    Win w1 = env.win_allocate(sizeof(double), sizeof(double), lockall_hint,
                              w, &b1);
    Info fence_hint;
    fence_hint.set(core::kEpochsUsedKey, "fence");
    Win w2 =
        env.win_allocate(sizeof(double), sizeof(double), fence_hint, w, &b2);
    env.barrier(w);
    double v = 1.0;
    // interleave a lockall epoch on w1 with fence epochs on w2
    env.win_lock_all(0, w1);
    env.win_fence(mpi::kModeNoPrecede, w2);
    env.accumulate(&v, 1, 0, 0, AccOp::Sum, w1);
    env.accumulate(&v, 1, 1, 0, AccOp::Sum, w2);
    env.win_fence(mpi::kModeNoSucceed, w2);
    env.win_flush_all(w1);
    env.win_unlock_all(w1);
    env.barrier(w);
    const int p = w->size();
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(b1), p * 1.0);
    }
    if (env.rank(w) == 1) {
      EXPECT_EQ(*static_cast<double*>(b2), p * 1.0);
    }
    env.win_free(w2);
    env.win_free(w1);
  }, core::layer(csp(1)));
}

TEST(CasperEpochs, FenceAssertComboRoundTripKeepsData) {
  // A realistic assert sequence across three fence epochs: NOPRECEDE opens,
  // a plain fence separates two communicating rounds, and the final close
  // combines NOSUCCEED with the store asserts. Data must survive exactly.
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    const int p = env.size(w);
    void* base = nullptr;
    Win win = env.win_allocate(static_cast<std::size_t>(p) * sizeof(double),
                               sizeof(double), Info{}, w, &base);
    env.win_fence(mpi::kModeNoPrecede, win);
    double v = 10.0 + me;
    env.put(&v, 1, (me + 1) % p, static_cast<std::size_t>(me), win);
    env.win_fence(0, win);  // closes round 1, opens round 2
    v = 100.0 + me;
    env.accumulate(&v, 1, (me + 1) % p, static_cast<std::size_t>(me),
                   AccOp::Sum, win);
    env.win_fence(0, win);
    // Empty epoch: nothing preceded, nothing stored, nothing follows — the
    // cheapest legal fence closes it.
    env.win_fence(mpi::kModeNoPrecede | mpi::kModeNoStore | mpi::kModeNoPut |
                      mpi::kModeNoSucceed,
                  win);
    const int left = (me - 1 + p) % p;
    EXPECT_EQ(static_cast<double*>(base)[left], 110.0 + 2 * left);
    env.barrier(w);
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperEpochs, FenceStoreAssertsSkipBarrierAndSync) {
  // NOPRECEDE alone still needs the barrier + win_sync half of the fence
  // translation; adding NOSTORE|NOPUT lets Casper skip those too.
  sim::Time noprecede = 0, full_assert = 0;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    sim::Time t0 = env.now();
    for (int i = 0; i < 10; ++i) env.win_fence(mpi::kModeNoPrecede, win);
    if (env.rank(w) == 0) noprecede = env.now() - t0;
    env.barrier(w);
    t0 = env.now();
    for (int i = 0; i < 10; ++i) {
      env.win_fence(mpi::kModeNoPrecede | mpi::kModeNoStore | mpi::kModeNoPut,
                    win);
    }
    if (env.rank(w) == 0) full_assert = env.now() - t0;
    env.barrier(w);
    env.win_free(win);
  }, core::layer(csp(1)));
  EXPECT_LT(full_assert * 2, noprecede);
}

TEST(CasperEpochs, EpochsUsedCombosShapeInternalWindows) {
  // Fig. 3(a): the epochs_used hint decides which internal windows exist.
  // 2 users on the node -> "lock" needs 2 overlapping ug windows; fence /
  // pscw / lockall share the one global window; combos add up.
  struct Combo {
    const char* hint;
    int expect;
  };
  const Combo combos[] = {
      {"lock", 2},           {"fence", 1},         {"pscw", 1},
      {"lockall", 1},        {"fence,pscw", 1},    {"lock,lockall", 3},
      {"fence,lock,pscw,lockall", 3},
  };
  for (const Combo& cb : combos) {
    mpi::exec(cfg(1, 3), [&cb](mpi::Env& env) {
      Comm w = env.world();
      void* base = nullptr;
      Info info;
      info.set(core::kEpochsUsedKey, cb.hint);
      Win win =
          env.win_allocate(sizeof(double), sizeof(double), info, w, &base);
      env.barrier(w);
      auto& L = dynamic_cast<core::CasperLayer&>(env.runtime().layer());
      EXPECT_EQ(L.internal_window_count(win), cb.expect)
          << "epochs_used=" << cb.hint;
      env.win_free(win);
    }, core::layer(csp(1)));
  }
}

TEST(CasperEpochs, EpochsUsedHintIsHonoredPerStyle) {
  // A window hinted for one epoch style must still work for that style
  // (allocate -> epoch -> communicate -> free) for every single-style hint.
  const char* hints[] = {"fence", "pscw", "lock", "lockall"};
  for (const char* hint : hints) {
    mpi::exec(cfg(2, 2), [hint](mpi::Env& env) {
      Comm w = env.world();
      const int me = env.rank(w);
      const int p = env.size(w);
      void* base = nullptr;
      Info info;
      info.set(core::kEpochsUsedKey, hint);
      Win win =
          env.win_allocate(sizeof(double), sizeof(double), info, w, &base);
      env.barrier(w);
      double one = 1.0;
      const std::string h = hint;
      if (h == "fence") {
        env.win_fence(mpi::kModeNoPrecede, win);
        env.accumulate(&one, 1, (me + 1) % p, 0, AccOp::Sum, win);
        env.win_fence(mpi::kModeNoSucceed, win);
      } else if (h == "pscw") {
        std::vector<int> everyone(static_cast<std::size_t>(p));
        for (int i = 0; i < p; ++i) everyone[static_cast<std::size_t>(i)] = i;
        mpi::Group g(everyone);
        env.win_post(g, 0, win);
        env.win_start(g, 0, win);
        env.accumulate(&one, 1, (me + 1) % p, 0, AccOp::Sum, win);
        env.win_complete(win);
        env.win_wait(win);
      } else if (h == "lock") {
        const int t = (me + 1) % p;
        env.win_lock(LockType::Shared, t, 0, win);
        env.accumulate(&one, 1, t, 0, AccOp::Sum, win);
        env.win_unlock(t, win);
      } else {
        env.win_lock_all(0, win);
        env.accumulate(&one, 1, (me + 1) % p, 0, AccOp::Sum, win);
        env.win_unlock_all(win);
      }
      env.barrier(w);
      EXPECT_EQ(*static_cast<double*>(base), 1.0) << "epochs_used=" << hint;
      env.win_free(win);
    }, core::layer(csp(1)));
  }
}

using CasperEpochsDeath = ::testing::Test;

TEST(CasperEpochsDeath, FenceExcludedByHintAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      mpi::exec(cfg(2, 2),
                [](mpi::Env& env) {
                  Comm w = env.world();
                  void* base = nullptr;
                  Info info;
                  info.set(core::kEpochsUsedKey, "lock");
                  Win win = env.win_allocate(sizeof(double), sizeof(double),
                                             info, w, &base);
                  env.win_fence(0, win);  // fence excluded by the hint
                },
                core::layer(csp(1))),
      "excluded by epochs_used hint");
}

TEST(CasperEpochsDeath, UnknownEpochsTokenAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      mpi::exec(cfg(2, 2),
                [](mpi::Env& env) {
                  Comm w = env.world();
                  void* base = nullptr;
                  Info info;
                  info.set(core::kEpochsUsedKey, "fence,bogus");
                  Win win = env.win_allocate(sizeof(double), sizeof(double),
                                             info, w, &base);
                  (void)win;
                },
                core::layer(csp(1))),
      "unknown epochs_used token");
}

}  // namespace

namespace {

TEST(CasperNuma, TopologyAwareBindingAvoidsCrossDomainOps) {
  // 2 NUMA domains, 2 ghosts: topology-aware placement puts one ghost per
  // domain and binds users within their domain, so no redirected op crosses
  // the domain interconnect.
  auto run_with = [](bool aware) {
    std::uint64_t crossed = 1;
    mpi::RunConfig rc;
    rc.machine.profile = net::cray_xc30_regular();
    rc.machine.topo.nodes = 1;
    rc.machine.topo.cores_per_node = 6;  // 4 users + 2 ghosts
    rc.machine.topo.numa_per_node = 2;
    core::Config cc;
    cc.ghosts_per_node = 2;
    cc.topology_aware = aware;
    mpi::exec(rc, [&crossed](mpi::Env& env) {
      mpi::Comm w = env.world();
      void* base = nullptr;
      mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                      mpi::Info{}, w, &base);
      env.win_lock_all(0, win);
      double v = 1.0;
      for (int t = 0; t < env.size(w); ++t) {
        env.accumulate(&v, 1, t, 0, mpi::AccOp::Sum, win);
      }
      env.win_flush_all(win);
      env.win_unlock_all(win);
      env.barrier(w);
      if (env.rank(w) == 0) {
        crossed = env.runtime().stats().get("cross_numa_ops");
      }
      env.win_free(win);
    }, core::layer(cc));
    return crossed;
  };
  EXPECT_EQ(run_with(true), 0u);
  EXPECT_GT(run_with(false), 0u);
}

}  // namespace

namespace {

TEST(CasperStats, GhostLoadReportsBalancedRedirection) {
  mpi::exec(cfg(1, 6), [](mpi::Env& env) {  // 4 users + 2 ghosts
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double v = 1.0;
    for (int t = 0; t < env.size(w); ++t) {
      for (int k = 0; k < 4; ++k) {
        env.put(&v, 1, t, 0, win);
      }
    }
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto& L = dynamic_cast<core::CasperLayer&>(env.runtime().layer());
      auto load = L.ghost_load(win);
      ASSERT_EQ(load.size(), 2u);
      std::uint64_t total_ops = 0, total_bytes = 0;
      for (const auto& gl : load) {
        total_ops += gl.ops;
        total_bytes += gl.bytes;
        EXPECT_GT(gl.ops, 0u);  // random policy touched both ghosts
      }
      // 4 users x 6 targets... each user issued 4 puts to each of 4 users
      // = 4*4*4 = 64 redirected puts (self puts are local, not redirected).
      EXPECT_EQ(total_ops, 4u * 3u * 4u);
      EXPECT_EQ(total_bytes, total_ops * sizeof(double));
    }
    env.win_free(win);
  }, core::layer(csp(2, core::DynamicLb::Random)));
}

}  // namespace
