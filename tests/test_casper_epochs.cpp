// Casper epoch-translation corners: assert fast paths, the
// static-binding-free interval, lockall<->lock conversion correctness, and
// hint misuse diagnostics.
#include <gtest/gtest.h>

#include "core/casper.hpp"
#include "core/layer_impl.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn) {
  RunConfig c;
  c.machine.profile = net::cray_xc30_regular();
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

core::Config csp(int ghosts,
                 core::DynamicLb d = core::DynamicLb::None) {
  core::Config c;
  c.ghosts_per_node = ghosts;
  c.dynamic = d;
  return c;
}

TEST(CasperEpochs, FenceAssertsSkipSynchronization) {
  // A fully-asserted fence must be much cheaper than a plain fence.
  sim::Time plain = 0, asserted = 0;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    sim::Time t0 = env.now();
    for (int i = 0; i < 10; ++i) env.win_fence(0, win);
    if (env.rank(w) == 0) plain = env.now() - t0;
    env.barrier(w);
    t0 = env.now();
    for (int i = 0; i < 10; ++i) {
      env.win_fence(mpi::kModeNoStore | mpi::kModeNoPut |
                        mpi::kModeNoPrecede,
                    win);
    }
    if (env.rank(w) == 0) asserted = env.now() - t0;
    env.barrier(w);
    env.win_free(win);
  }, core::layer(csp(1)));
  EXPECT_LT(asserted * 3, plain);
}

TEST(CasperEpochs, PscwNoCheckSkipsHandshake) {
  sim::Time with_check = 0, no_check = 0;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    auto round = [&](unsigned a) {
      env.barrier(w);  // provides the ordering NOCHECK requires
      const sim::Time t0 = env.now();
      if (env.rank(w) == 0) {
        env.win_start(mpi::Group({1}), a, win);
        double v = 1.0;
        env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
        env.win_complete(win);
      } else if (env.rank(w) == 1) {
        env.win_post(mpi::Group({0}), a, win);
        env.win_wait(win);
      }
      env.barrier(w);
      return env.now() - t0;
    };
    const sim::Time a = round(0);
    const sim::Time b = round(mpi::kModeNoCheck);
    if (env.rank(w) == 0) {
      with_check = a;
      no_check = b;
    }
    env.win_free(win);
  }, core::layer(csp(1)));
  EXPECT_LT(no_check, with_check);
}

TEST(CasperEpochs, BindingFreeIntervalStartsAfterFlush) {
  // Dynamic binding under an exclusive lock requires a completed flush;
  // before the flush PUTs stay on the bound ghost, afterwards they spread.
  mpi::exec(cfg(1, 5), [](mpi::Env& env) {
    Comm w = env.world();  // 2 users + 3 ghosts
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    if (env.rank(w) == 1) {
      auto& rt = env.runtime();
      env.win_lock(LockType::Exclusive, 0, 0, win);
      double v = 1.0;
      env.put(&v, 1, 0, 0, win);
      const auto before = rt.stats().get("casper_dynamic_ops");
      env.win_flush(0, win);  // starts the static-binding-free interval
      for (int i = 0; i < 6; ++i) {
        env.put(&v, 1, 0, static_cast<std::size_t>(i), win);
      }
      const auto after = rt.stats().get("casper_dynamic_ops");
      env.win_unlock(0, win);
      EXPECT_EQ(before, 0u);   // pre-flush put was statically bound
      EXPECT_EQ(after, 6u);    // post-flush puts were dynamically balanced
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto* d = static_cast<double*>(base);
      for (int i = 0; i < 6; ++i) EXPECT_EQ(d[i], 1.0);
    }
    env.win_free(win);
  }, core::layer(csp(3, core::DynamicLb::Random)));
}

TEST(CasperEpochs, AccumulatesNeverDynamicallyBalanced) {
  mpi::exec(cfg(1, 5), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double v = 1.0;
    for (int i = 0; i < 10; ++i) {
      env.accumulate(&v, 1, 0, 0, AccOp::Sum, win);
    }
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    // dynamic ops counter only counts PUT/GET routed dynamically
    EXPECT_EQ(env.runtime().stats().get("casper_dynamic_ops"), 0u);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 20.0);  // 2 users x 10
    }
    env.win_free(win);
  }, core::layer(csp(3, core::DynamicLb::Random)));
}

TEST(CasperEpochs, ExclusiveLockVsLockallIsSerialized) {
  // Paper III.C.3: one origin holds an exclusive lock while another uses
  // lockall on the same window. The lockall->per-ghost-lock conversion lets
  // MPI's lock manager see the conflict; the accumulated result must be
  // exact and no atomicity violation may occur.
  mpi::exec(cfg(2, 4), [](mpi::Env& env) {
    Comm w = env.world();
    ASSERT_EQ(w->size(), 4);  // 2 nodes x (4 cores - 2 ghosts)
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    const int me = env.rank(w);
    double one = 1.0;
    if (me == 1) {
      env.win_lock(LockType::Exclusive, 0, 0, win);
      for (int i = 0; i < 20; ++i) {
        env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
      }
      env.win_unlock(0, win);
    } else if (me == 2 || me == 3) {
      env.win_lock_all(0, win);
      for (int i = 0; i < 20; ++i) {
        env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
      }
      env.win_unlock_all(win);
    }
    env.barrier(w);
    if (me == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 60.0);
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    env.win_free(win);
  }, core::layer(csp(2)));
}

TEST(CasperEpochs, UnmanagedWindowPassthrough) {
  // Windows over a sub-communicator are not Casper-managed but must still
  // work (plain MPI semantics) and be counted.
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    Comm half = env.comm_split(w, env.rank(w) % 2, env.rank(w));
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, half, &base);
    env.win_lock_all(0, win);
    double v = 2.0;
    env.accumulate(&v, 1, 0, 0, AccOp::Sum, win);
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    EXPECT_GT(env.runtime().stats().get("casper_unmanaged_windows"), 0u);
    if (env.rank(half) == 0) {
      // one accumulate from each member of my half
      EXPECT_EQ(*static_cast<double*>(base), 2.0 * half->size());
    }
    env.win_free(win);
  }, core::layer(csp(1)));
}

TEST(CasperEpochs, GhostsServeMultipleWindowsConcurrently) {
  // One ghost must make progress on several windows with different epoch
  // types at once (the paper's "never block indefinitely" requirement).
  mpi::exec(cfg(2, 3), [](mpi::Env& env) {
    Comm w = env.world();
    void *b1 = nullptr, *b2 = nullptr;
    Info lockall_hint;
    lockall_hint.set(core::kEpochsUsedKey, "lockall");
    Win w1 = env.win_allocate(sizeof(double), sizeof(double), lockall_hint,
                              w, &b1);
    Info fence_hint;
    fence_hint.set(core::kEpochsUsedKey, "fence");
    Win w2 =
        env.win_allocate(sizeof(double), sizeof(double), fence_hint, w, &b2);
    env.barrier(w);
    double v = 1.0;
    // interleave a lockall epoch on w1 with fence epochs on w2
    env.win_lock_all(0, w1);
    env.win_fence(mpi::kModeNoPrecede, w2);
    env.accumulate(&v, 1, 0, 0, AccOp::Sum, w1);
    env.accumulate(&v, 1, 1, 0, AccOp::Sum, w2);
    env.win_fence(mpi::kModeNoSucceed, w2);
    env.win_flush_all(w1);
    env.win_unlock_all(w1);
    env.barrier(w);
    const int p = w->size();
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(b1), p * 1.0);
    }
    if (env.rank(w) == 1) {
      EXPECT_EQ(*static_cast<double*>(b2), p * 1.0);
    }
    env.win_free(w2);
    env.win_free(w1);
  }, core::layer(csp(1)));
}

}  // namespace

namespace {

TEST(CasperNuma, TopologyAwareBindingAvoidsCrossDomainOps) {
  // 2 NUMA domains, 2 ghosts: topology-aware placement puts one ghost per
  // domain and binds users within their domain, so no redirected op crosses
  // the domain interconnect.
  auto run_with = [](bool aware) {
    std::uint64_t crossed = 1;
    mpi::RunConfig rc;
    rc.machine.profile = net::cray_xc30_regular();
    rc.machine.topo.nodes = 1;
    rc.machine.topo.cores_per_node = 6;  // 4 users + 2 ghosts
    rc.machine.topo.numa_per_node = 2;
    core::Config cc;
    cc.ghosts_per_node = 2;
    cc.topology_aware = aware;
    mpi::exec(rc, [&crossed](mpi::Env& env) {
      mpi::Comm w = env.world();
      void* base = nullptr;
      mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                      mpi::Info{}, w, &base);
      env.win_lock_all(0, win);
      double v = 1.0;
      for (int t = 0; t < env.size(w); ++t) {
        env.accumulate(&v, 1, t, 0, mpi::AccOp::Sum, win);
      }
      env.win_flush_all(win);
      env.win_unlock_all(win);
      env.barrier(w);
      if (env.rank(w) == 0) {
        crossed = env.runtime().stats().get("cross_numa_ops");
      }
      env.win_free(win);
    }, core::layer(cc));
    return crossed;
  };
  EXPECT_EQ(run_with(true), 0u);
  EXPECT_GT(run_with(false), 0u);
}

}  // namespace

namespace {

TEST(CasperStats, GhostLoadReportsBalancedRedirection) {
  mpi::exec(cfg(1, 6), [](mpi::Env& env) {  // 4 users + 2 ghosts
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    double v = 1.0;
    for (int t = 0; t < env.size(w); ++t) {
      for (int k = 0; k < 4; ++k) {
        env.put(&v, 1, t, 0, win);
      }
    }
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 0) {
      auto& L = dynamic_cast<core::CasperLayer&>(env.runtime().layer());
      auto load = L.ghost_load(win);
      ASSERT_EQ(load.size(), 2u);
      std::uint64_t total_ops = 0, total_bytes = 0;
      for (const auto& gl : load) {
        total_ops += gl.ops;
        total_bytes += gl.bytes;
        EXPECT_GT(gl.ops, 0u);  // random policy touched both ghosts
      }
      // 4 users x 6 targets... each user issued 4 puts to each of 4 users
      // = 4*4*4 = 64 redirected puts (self puts are local, not redirected).
      EXPECT_EQ(total_ops, 4u * 3u * 4u);
      EXPECT_EQ(total_bytes, total_ops * sizeof(double));
    }
    env.win_free(win);
  }, core::layer(csp(2, core::DynamicLb::Random)));
}

}  // namespace
