// Tests for the nonblocking point-to-point API (isend/irecv/wait/test/
// waitall), including overlap with computation and use under Casper.
#include <gtest/gtest.h>

#include <vector>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::Comm;
using mpi::Dt;
using mpi::Request;
using mpi::RunConfig;

RunConfig cfg(int nodes, int cpn) {
  RunConfig c;
  c.machine.profile = net::cray_xc30_regular();
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

TEST(NonBlocking, IrecvBeforeSendCompletes) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      double v = 0;
      Request r = env.irecv(&v, 1, Dt::Double, 1, 5, w);
      EXPECT_FALSE(r->done);  // nothing sent yet
      auto st = env.wait(r);
      EXPECT_EQ(v, 6.5);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 5);
    } else {
      env.compute(sim::us(20));
      double v = 6.5;
      env.send(&v, 1, Dt::Double, 0, 5, w);
    }
  });
}

TEST(NonBlocking, IrecvMatchesUnexpected) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      int v = 77;
      env.send(&v, 1, Dt::Int, 1, 9, w);
    } else {
      env.compute(sim::us(50));  // message arrives unexpected
      int v = 0;
      Request r = env.irecv(&v, 1, Dt::Int, 0, 9, w);
      EXPECT_TRUE(r->done);  // matched immediately from the queue
      env.wait(r);
      EXPECT_EQ(v, 77);
    }
  });
}

TEST(NonBlocking, IsendCompletesLocallyImmediately) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      double v = 1.25;
      Request r = env.isend(&v, 1, Dt::Double, 1, 0, w);
      EXPECT_TRUE(r->done);  // eager buffered
      v = -1;                // safe to reuse the buffer
      env.wait(r);
    } else {
      double v = 0;
      env.recv(&v, 1, Dt::Double, 0, 0, w);
      EXPECT_EQ(v, 1.25);
    }
  });
}

TEST(NonBlocking, WaitallGathersFromManyPeers) {
  mpi::exec(cfg(1, 5), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      std::vector<int> vals(4, -1);
      std::vector<Request> reqs;
      for (int s = 1; s < 5; ++s) {
        reqs.push_back(env.irecv(&vals[static_cast<std::size_t>(s - 1)], 1,
                                 Dt::Int, s, 0, w));
      }
      env.waitall(reqs.data(), static_cast<int>(reqs.size()));
      for (int s = 1; s < 5; ++s) {
        EXPECT_EQ(vals[static_cast<std::size_t>(s - 1)], s * 11);
      }
    } else {
      int v = env.rank(w) * 11;
      env.send(&v, 1, Dt::Int, 0, 0, w);
    }
  });
}

TEST(NonBlocking, TestPollsWithoutBlocking) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      double v = 0;
      Request r = env.irecv(&v, 1, Dt::Double, 1, 0, w);
      int polls = 0;
      while (!env.test(r)) {
        env.compute(sim::us(2));  // overlap with "work"
        ++polls;
        ASSERT_LT(polls, 10000);
      }
      EXPECT_EQ(v, 3.0);
      EXPECT_GT(polls, 0);
    } else {
      env.compute(sim::us(30));
      double v = 3.0;
      env.send(&v, 1, Dt::Double, 0, 0, w);
    }
  });
}

TEST(NonBlocking, WorksUnderCasper) {
  core::Config cc;
  cc.ghosts_per_node = 1;
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    const int p = env.size(w);
    const int next = (me + 1) % p;
    const int prev = (me + p - 1) % p;
    double in = 0, out = me + 0.5;
    Request r = env.irecv(&in, 1, Dt::Double, prev, 3, w);
    env.send(&out, 1, Dt::Double, next, 3, w);
    env.wait(r);
    EXPECT_EQ(in, prev + 0.5);
  }, core::layer(cc));
}

TEST(NonBlocking, IrecvServicesRmaProgressWhileWaiting) {
  // A rank blocked in wait() must make progress on incoming software RMA
  // ops (wait is a progress-making MPI call).
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      double v = 4.0;
      env.win_lock_all(0, win);
      env.accumulate(&v, 1, 1, 0, mpi::AccOp::Sum, win);
      env.win_unlock_all(win);  // needs rank 1 to make progress
      double token = 1;
      env.send(&token, 1, Dt::Double, 1, 1, w);
    } else {
      double token = 0;
      Request r = env.irecv(&token, 1, Dt::Double, 0, 1, w);
      env.wait(r);  // services the accumulate while waiting
      EXPECT_EQ(*static_cast<double*>(base), 4.0);
    }
    env.barrier(w);
    env.win_free(win);
  });
}

}  // namespace
