// Unit tests for the observability primitives: the per-entity ring tracer
// (ordering, eviction, exports) and the metrics registry (counters,
// log2-bucket histograms, JSON dump shape).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"

using namespace casper;

// ----------------------------------------------------------------- tracer --

TEST(Tracer, OrderedMergesEntitiesBySeq) {
  obs::Tracer tr;
  tr.instant(0, obs::Ev::OpIssued, sim::ns(10), 1);
  tr.instant(2, obs::Ev::OpRedirected, sim::ns(20), 2);
  tr.instant(0, obs::Ev::OpFlushed, sim::ns(30), 3);
  const auto evs = tr.ordered();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].seq, 0u);
  EXPECT_EQ(evs[1].seq, 1u);
  EXPECT_EQ(evs[2].seq, 2u);
  EXPECT_EQ(evs[0].entity, 0);
  EXPECT_EQ(evs[1].entity, 2);
  EXPECT_EQ(evs[2].ev, obs::Ev::OpFlushed);
  EXPECT_EQ(tr.recorded(), 3u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDropped) {
  obs::Tracer tr(4);  // tiny ring per entity
  for (int i = 0; i < 10; ++i) {
    tr.instant(0, obs::Ev::OpIssued, sim::ns(i), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto evs = tr.ordered();
  ASSERT_EQ(evs.size(), 4u);  // only the last 4 survive
  EXPECT_EQ(evs.front().a, 6u);
  EXPECT_EQ(evs.back().a, 9u);
}

TEST(Tracer, RingCapacityRoundsUpToPowerOfTwo) {
  obs::Tracer tr(3);  // rounds to 4
  for (int i = 0; i < 4; ++i) tr.instant(0, obs::Ev::OpIssued, sim::ns(i));
  EXPECT_EQ(tr.dropped(), 0u);
  tr.instant(0, obs::Ev::OpIssued, sim::ns(4));
  EXPECT_EQ(tr.dropped(), 1u);
}

TEST(Tracer, PerEntityRingsIsolateEviction) {
  obs::Tracer tr(4);
  for (int i = 0; i < 100; ++i) tr.instant(1, obs::Ev::GhostService, sim::ns(i));
  tr.instant(0, obs::Ev::OpIssued, sim::ns(0), 77);
  // The chatty entity evicted only its own history.
  bool found = false;
  for (const auto& e : tr.ordered()) {
    if (e.entity == 0) {
      found = true;
      EXPECT_EQ(e.a, 77u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, NegativeEntityIgnored) {
  obs::Tracer tr;
  tr.instant(-1, obs::Ev::OpIssued, sim::ns(0));
  EXPECT_EQ(tr.recorded(), 0u);
}

TEST(Tracer, SpanIsDetectedAndDurLandsInA) {
  EXPECT_TRUE(obs::is_span(obs::Ev::Compute));
  EXPECT_TRUE(obs::is_span(obs::Ev::GhostService));
  EXPECT_TRUE(obs::is_span(obs::Ev::EpochTranslate));
  EXPECT_FALSE(obs::is_span(obs::Ev::OpIssued));
  obs::Tracer tr;
  tr.span(0, obs::Ev::Compute, sim::us(1), sim::ns(250));
  const auto evs = tr.ordered();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].t, sim::us(1));
  EXPECT_EQ(evs[0].a, sim::ns(250));
}

TEST(Tracer, ExportTextIsStableAndNamed) {
  obs::Tracer tr;
  tr.set_entity_name(0, "user 0");
  tr.set_entity_name(1, "ghost 1");
  tr.instant(0, obs::Ev::OpIssued, sim::ns(5), 1, 2, 3);
  tr.span(1, obs::Ev::GhostService, sim::ns(7), sim::ns(11), 4, 5);
  std::ostringstream os;
  tr.export_text(os);
  EXPECT_EQ(os.str(),
            "ENTITY 0 user 0\n"
            "ENTITY 1 ghost 1\n"
            "0 5 0 op.issued 1 2 3\n"
            "1 7 1 ghost.service 11 4 5\n");
}

TEST(Tracer, ExportChromeShapes) {
  obs::Tracer tr;
  tr.set_entity_name(0, "user 0");
  tr.set_entity_name(9, "never used");  // no events -> no metadata row
  tr.instant(0, obs::Ev::OpRedirected, sim::ns(1500), 3, 1, 64);
  tr.span(0, obs::Ev::Compute, sim::us(2), sim::us(1));
  std::ostringstream os;
  tr.export_chrome(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\"user 0\""), std::string::npos);
  EXPECT_EQ(s.find("never used"), std::string::npos);
  // Instant: phase "i", ts 1500 ns = 1.500 us.
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"ts\":1.500"), std::string::npos);
  // Span: phase "X" with dur.
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"dur\":1.000"), std::string::npos);
  EXPECT_NE(s.find("\"op.redirected\""), std::string::npos);
}

TEST(Tracer, TailTextReturnsLastLines) {
  obs::Tracer tr;
  for (int i = 0; i < 10; ++i) {
    tr.instant(0, obs::Ev::OpIssued, sim::ns(i), static_cast<std::uint64_t>(i));
  }
  const auto tail = tr.tail_text(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_NE(tail[0].find(" 7 "), std::string::npos);
  EXPECT_NE(tail[2].find(" 9 "), std::string::npos);
}

TEST(Tracer, EventNamesCoverTaxonomy) {
  EXPECT_STREQ(obs::to_string(obs::Ev::OpIssued), "op.issued");
  EXPECT_STREQ(obs::to_string(obs::Ev::OpHwPath), "op.hw");
  EXPECT_STREQ(obs::to_string(obs::Ev::OpRedirected), "op.redirected");
  EXPECT_STREQ(obs::to_string(obs::Ev::OpSegmentSplit), "op.split");
  EXPECT_STREQ(obs::to_string(obs::Ev::LbDecision), "lb.decision");
  EXPECT_STREQ(obs::to_string(obs::Ev::OpCommitted), "op.committed");
  EXPECT_STREQ(obs::to_string(obs::Ev::OpFlushed), "op.flushed");
  EXPECT_STREQ(obs::to_string(obs::Ev::EpochBegin), "epoch.begin");
  EXPECT_STREQ(obs::to_string(obs::Ev::EpochTranslate), "epoch.translate");
  EXPECT_STREQ(obs::to_string(obs::Ev::EpochEnd), "epoch.end");
  EXPECT_STREQ(obs::to_string(obs::Ev::FiberSwitch), "fiber.switch");
  EXPECT_STREQ(obs::to_string(obs::Ev::GhostService), "ghost.service");
  EXPECT_STREQ(obs::to_string(obs::Ev::Compute), "compute");
}

// ---------------------------------------------------------------- metrics --

TEST(Histogram, BucketsByLog2) {
  obs::Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);
  EXPECT_EQ(h.bucket(0), 2u);   // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);   // 2 and 3
  EXPECT_EQ(h.bucket(10), 1u);  // 1024
  EXPECT_EQ(h.bucket(63), 0u);
  EXPECT_EQ(h.bucket(64), 0u);  // out of range is safe
}

TEST(Histogram, EmptyIsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Metrics, CountersGetOrCreate) {
  obs::Metrics m;
  ++m.counter("a");
  m.counter("a") += 2;
  EXPECT_EQ(m.counter_value("a"), 3u);
  EXPECT_EQ(m.counter_value("missing"), 0u);
}

TEST(Metrics, WriteJsonShape) {
  obs::Metrics m;
  m.counter("x") = 7;
  m.histogram("h").add(8);
  std::ostringstream os;
  m.write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"x\": 7"), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(s.find("[3, 1]"), std::string::npos);  // bucket log2(8)=3
}

TEST(Metrics, EmptyWriteJson) {
  obs::Metrics m;
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(), "{\n  \"counters\": {},\n  \"histograms\": {}\n}");
}

TEST(Histogram, MergeSumsBucketsAndWidensRange) {
  obs::Histogram a;
  obs::Histogram b;
  a.add(2);
  a.add(1024);
  b.add(0);
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1033u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 1024u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(1), 1u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.bucket(10), 1u);
  // Merging an empty histogram must not corrupt min().
  obs::Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Metrics, MergeFromSumsCountersAndHistograms) {
  obs::Metrics a;
  obs::Metrics b;
  a.counter("shared") = 3;
  a.counter("only_a") = 1;
  b.counter("shared") = 4;
  b.counter("only_b") = 9;
  a.histogram("h").add(16);
  b.histogram("h").add(2);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("shared"), 7u);
  EXPECT_EQ(a.counter_value("only_a"), 1u);
  EXPECT_EQ(a.counter_value("only_b"), 9u);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").sum(), 18u);
}

TEST(Tracer, MergedOrdersByTimeThenShardAndRenumbers) {
  obs::Tracer s0;
  obs::Tracer s1;
  s0.set_entity_name(0, "user 0");
  s1.set_entity_name(8, "user 8");
  // Shard 1 records first in host time — must not matter.
  s1.instant(8, obs::Ev::OpIssued, sim::ns(10), 81);
  s1.instant(8, obs::Ev::OpFlushed, sim::ns(30), 83);
  s0.instant(0, obs::Ev::OpIssued, sim::ns(10), 1);
  s0.instant(0, obs::Ev::OpCommitted, sim::ns(20), 2);
  const obs::Tracer m = obs::Tracer::merged({&s0, &s1}, 16);
  const auto evs = m.ordered();
  ASSERT_EQ(evs.size(), 4u);
  // t=10 tie: shard 0 before shard 1; then t=20, t=30. Fresh dense seq.
  EXPECT_EQ(evs[0].a, 1u);
  EXPECT_EQ(evs[1].a, 81u);
  EXPECT_EQ(evs[2].a, 2u);
  EXPECT_EQ(evs[3].a, 83u);
  for (std::size_t i = 0; i < evs.size(); ++i) EXPECT_EQ(evs[i].seq, i);
  EXPECT_EQ(m.recorded(), 4u);
  ASSERT_NE(m.entity_name(0), nullptr);
  ASSERT_NE(m.entity_name(8), nullptr);
  EXPECT_EQ(*m.entity_name(8), "user 8");
}

TEST(Recorder, MergeShardsFoldsReplicasFromShardedRun) {
  // Drive a real sharded engine with the recorder attached as the schedule
  // observer: worker threads record into per-shard replicas; after the merge
  // the fold must be deterministic run to run and count every switch.
  auto run_once = [](int shards) {
    obs::Recorder rec;
    rec.set_shards(shards);
    sim::Engine::Options o;
    o.nranks = 16;
    o.shards = shards;
    o.lookahead = sim::us(1);
    sim::Engine e(o, [](sim::Context& ctx) {
      for (int i = 0; i < 8 + ctx.rank() % 3; ++i) ctx.advance(sim::ns(100));
    });
    e.set_sched_observer(&rec);
    e.run();
    rec.merge_shards();
    std::ostringstream os;
    rec.trace().export_text(os);
    return std::make_pair(os.str(), rec.trace().recorded());
  };
  const auto single = run_once(1);
  const auto a = run_once(4);
  const auto b = run_once(4);
  EXPECT_EQ(a.first, b.first) << "merged sharded trace must be deterministic";
  // Same workload, same total switches regardless of sharding.
  EXPECT_EQ(a.second, single.second);
  EXPECT_NE(a.second, 0u);
}

// ----------------------------------------------------------------- gating --

TEST(Recorder, OnGate) {
  EXPECT_FALSE(obs::on(nullptr));
  obs::Recorder rec;
  EXPECT_EQ(obs::on(&rec), obs::kTraceCompiled);
}

TEST(Recorder, SchedObserverTracesOnlyRanks) {
  obs::Recorder rec;
  rec.on_schedule(sim::ns(1), -1);  // engine-internal event: not a switch
  rec.on_schedule(sim::ns(2), 3);
  EXPECT_EQ(rec.trace().recorded(), 1u);
  const auto evs = rec.trace().ordered();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].entity, 3);
  EXPECT_EQ(evs[0].ev, obs::Ev::FiberSwitch);
}
