// Tracing-disabled overhead guard.
//
// The observability hooks in the scheduler hot loop must cost nothing
// measurable when no recorder is attached: this test re-runs the
// BENCH_engine.json event-throughput measurement (16 ranks, the bench's
// default event count) with tracing disabled and asserts the best-of-7 rate
// stays within 50% of the baseline recorded in the committed
// BENCH_engine.json — which is regenerated (same machine, same flags)
// whenever the bench is re-run, so the comparison is bench-run vs test-run,
// not cross-machine.
//
// The band is 50%, not a tight few percent, because absolute event rates on
// shared hosts drift by up to ~2x between clock epochs (frequency scaling /
// noisy neighbors) even with best-of-7 filtering; the committed baseline is
// deliberately taken from a slow run. The guard still catches the failure it
// exists for — a sched-observer hook going hot costs well over 2x on a
// ~40ns dispatch (an accidentally-attached recorder historically cost
// 5-10x). Same-epoch fine-grained regressions are caught by the bench.sh
// ratchet, which compares bench-run vs bench-run.
//
// Registered RUN_SERIAL so parallel ctest jobs don't steal cycles from the
// timed region; best-of-7 filters scheduler noise in the other direction.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/engine.hpp"

#ifndef CASPER_BENCH_ENGINE_JSON
#error "CASPER_BENCH_ENGINE_JSON must point at the committed BENCH_engine.json"
#endif

using namespace casper;
using Clock = std::chrono::steady_clock;

namespace {

// Mirrors measure_event_rate in bench/engine_throughput.cpp: one rank posts
// timestamp-ordered event batches through the scheduler heap.
double event_rate(int nranks, int total_events) {
  sim::Engine::Options o;
  o.nranks = nranks;
  o.stack_bytes = 64 * 1024;
  const int batches = 64;
  const int per_batch = total_events / batches;
  sim::Engine e(o, [per_batch](sim::Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < per_batch; ++i) {
        ctx.engine().post_event(ctx.now() + sim::ns(1 + i % 7), [] {});
      }
      ctx.advance(sim::ns(16));
    }
  });
  const auto t0 = Clock::now();
  e.run();
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(batches) * per_batch / dt;
}

// events_per_sec of the nranks==16 row in the "results" array. The file
// also carries a "baseline_pr2" array; "results" comes first, so the first
// nranks==16 occurrence is the current-machine baseline.
double baseline_events_per_sec(const std::string& path) {
  std::ifstream f(path);
  if (!f) return -1.0;
  std::ostringstream os;
  os << f.rdbuf();
  const std::string s = os.str();
  const std::size_t results = s.find("\"results\"");
  if (results == std::string::npos) return -1.0;
  const std::size_t row = s.find("\"nranks\": 16", results);
  if (row == std::string::npos) return -1.0;
  const std::size_t key = s.find("\"events_per_sec\":", row);
  if (key == std::string::npos) return -1.0;
  return std::strtod(s.c_str() + key + 17, nullptr);
}

}  // namespace

TEST(EngineOverhead, DisabledTracingWithinBandOfBench) {
  const double baseline = baseline_events_per_sec(CASPER_BENCH_ENGINE_JSON);
  ASSERT_GT(baseline, 0.0)
      << "could not parse events_per_sec (nranks=16) from "
      << CASPER_BENCH_ENGINE_JSON;

  double best = 0.0;
  for (int i = 0; i < 7; ++i) {
    best = std::max(best, event_rate(16, 200000));
  }
  EXPECT_GE(best, 0.50 * baseline)
      << "tracing-disabled event dispatch slowed down: best-of-7 " << best
      << " events/sec vs baseline " << baseline
      << " — check the sched-observer hooks in sim::Engine::run";
}
