// Tests for minimpi point-to-point, collectives, and communicator
// management.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::RunConfig;

RunConfig cfg(int nodes, int cpn,
              net::Profile prof = net::cray_xc30_regular()) {
  RunConfig c;
  c.machine.profile = std::move(prof);
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

TEST(MpiP2p, SendRecvDeliversDataAndLatency) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      double x = 3.5;
      env.send(&x, 1, Dt::Double, 1, 42, w);
    } else {
      double y = 0;
      auto st = env.recv(&y, 1, Dt::Double, 0, 42, w);
      EXPECT_EQ(y, 3.5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, sizeof(double));
      // inter-node latency must have elapsed
      EXPECT_GE(env.now(), sim::ns(1400));
    }
  });
}

TEST(MpiP2p, AnySourceAndUnexpectedQueue) {
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) != 0) {
      int v = env.rank(w);
      env.send(&v, 1, Dt::Int, 0, 7, w);
    } else {
      env.compute(sim::us(50));  // let messages arrive unexpected
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        int v = -1;
        auto st = env.recv(&v, 1, Dt::Int, mpi::kAnySource, 7, w);
        EXPECT_EQ(v, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    }
  });
}

TEST(MpiP2p, TagMatching) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    if (env.rank(w) == 0) {
      int a = 10, b = 20;
      env.send(&a, 1, Dt::Int, 1, 1, w);
      env.send(&b, 1, Dt::Int, 1, 2, w);
    } else {
      int v = 0;
      env.recv(&v, 1, Dt::Int, 0, 2, w);  // out of order by tag
      EXPECT_EQ(v, 20);
      env.recv(&v, 1, Dt::Int, 0, 1, w);
      EXPECT_EQ(v, 10);
    }
  });
}

TEST(MpiColl, BarrierSynchronizesClocks) {
  std::vector<sim::Time> after(4, 0);
  mpi::exec(cfg(1, 4), [&](mpi::Env& env) {
    Comm w = env.world();
    env.compute(sim::us(static_cast<std::uint64_t>(env.rank(w)) * 10));
    env.barrier(w);
    after[static_cast<std::size_t>(env.rank(w))] = env.now();
  });
  // everyone leaves the barrier no earlier than the slowest arriver
  for (auto t : after) EXPECT_GE(t, sim::us(30));
}

TEST(MpiColl, BcastReduceAllreduce) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    double v = (me == 1) ? 99.0 : 0.0;
    env.bcast(&v, 1, Dt::Double, 1, w);
    EXPECT_EQ(v, 99.0);

    double mine = me + 1.0, sum = 0.0;
    env.reduce(&mine, &sum, 1, Dt::Double, AccOp::Sum, 0, w);
    if (me == 0) {
      EXPECT_EQ(sum, 1 + 2 + 3 + 4.0);
    }

    double amax = 0;
    env.allreduce(&mine, &amax, 1, Dt::Double, AccOp::Max, w);
    EXPECT_EQ(amax, 4.0);
  });
}

TEST(MpiColl, AllgatherAlltoall) {
  mpi::exec(cfg(1, 3), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    int v = me * 100;
    std::vector<int> all(3, -1);
    env.allgather(&v, 1, Dt::Int, all.data(), w);
    EXPECT_EQ(all[0], 0);
    EXPECT_EQ(all[1], 100);
    EXPECT_EQ(all[2], 200);

    std::vector<int> snd = {me * 10 + 0, me * 10 + 1, me * 10 + 2};
    std::vector<int> rcv(3, -1);
    env.alltoall(snd.data(), 1, Dt::Int, rcv.data(), w);
    for (int j = 0; j < 3; ++j) EXPECT_EQ(rcv[j], j * 10 + me);
  });
}

TEST(MpiComm, SplitByNodeAndKeyOrdering) {
  mpi::exec(cfg(2, 3), [](mpi::Env& env) {
    Comm w = env.world();
    Comm node = env.comm_split_shared(w);
    EXPECT_EQ(node->size(), 3);
    // members must be the three world ranks of my node, ordered by rank
    const int my_node = env.world_rank() / 3;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(node->world_rank(i), my_node * 3 + i);
    }
  });
}

TEST(MpiComm, SplitWithUndefinedColor) {
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    Comm c = env.comm_split(w, me % 2 == 0 ? 0 : -1, me);
    if (me % 2 == 0) {
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->size(), 2);
    } else {
      EXPECT_EQ(c, nullptr);
    }
  });
}

TEST(MpiComm, DupPreservesMembership) {
  mpi::exec(cfg(1, 3), [](mpi::Env& env) {
    Comm w = env.world();
    Comm d = env.comm_dup(w);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->id(), w->id());
    EXPECT_EQ(d->members(), w->members());
    // The dup is usable for p2p independently of the parent.
    if (env.rank(d) == 0) {
      int x = 5;
      env.send(&x, 1, Dt::Int, 1, 0, d);
    } else if (env.rank(d) == 1) {
      int x = 0;
      env.recv(&x, 1, Dt::Int, 0, 0, d);
      EXPECT_EQ(x, 5);
    }
  });
}

}  // namespace

namespace {

TEST(MpiColl, GatherScatter) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    const int p = env.size(w);

    int v = me * 3;
    std::vector<int> all(static_cast<std::size_t>(p), -1);
    env.gather(&v, 1, Dt::Int, all.data(), 1, w);
    if (me == 1) {
      for (int j = 0; j < p; ++j) EXPECT_EQ(all[static_cast<std::size_t>(j)], j * 3);
    }

    std::vector<int> src(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) src[static_cast<std::size_t>(j)] = 100 + j;
    int out = -1;
    env.scatter(src.data(), 1, Dt::Int, &out, 2, w);
    EXPECT_EQ(out, 100 + me);
  });
}

TEST(MpiColl, GatherScatterRoundTrip) {
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    Comm w = env.world();
    const int me = env.rank(w);
    const int p = env.size(w);
    // scatter then gather must reproduce the original array at the root
    std::vector<double> src(static_cast<std::size_t>(2 * p));
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = 0.5 * static_cast<double>(i);
    std::vector<double> mine(2, -1);
    env.scatter(src.data(), 2, Dt::Double, mine.data(), 0, w);
    std::vector<double> back(static_cast<std::size_t>(2 * p), -1);
    env.gather(mine.data(), 2, Dt::Double, back.data(), 0, w);
    if (me == 0) {
      EXPECT_EQ(src, back);
    }
  });
}

}  // namespace
