// RMA-backed KV store (src/kv/): lock protocol correctness under contention,
// collision-chain behavior, mode x ghost round-trips, schedule / shard
// determinism, and chaos (lossy network + ghost kill) coverage. Every run
// carries the linearizability checker as the store's history sink.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/kvfuzz.hpp"
#include "check/linear.hpp"
#include "core/casper.hpp"
#include "kv/kv.hpp"
#include "kv/traffic.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;

/// Everything rank 0 harvests from one direct-store run.
struct DirectResult {
  kv::KvStats stats;
  std::uint64_t fingerprint = 0;
  std::uint64_t acc[8] = {};
  std::int64_t probe_value = 0;
};

mpi::RunConfig base_config(int nodes, int cores_per_node,
                           std::uint64_t seed) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = nodes;
  rc.machine.topo.cores_per_node = cores_per_node;
  rc.seed = seed;
  return rc;
}

// --- lock contention: concurrent CAS-increment of one hot key --------------
//
// Every rank spins get + cas_update(+1) until it lands `kIncrPerRank`
// successful increments on the same key (one bucket, one lock word). The
// final value must equal the seed PUT plus every success, the client books
// must balance, and the server-side ACC counters must agree with them.

constexpr int kIncrPerRank = 10;

void contention_body(mpi::Env& env, const kv::KvConfig& cfg,
                     check::LinearChecker* sink, DirectResult* out) {
  mpi::Comm w = env.world();
  const int me = env.rank(w);
  kv::KvStore store(env, cfg, w);
  store.set_sink(sink);
  store.open();
  const std::uint64_t hot = store.key_for(0, 0, 0);
  if (me == 0) {
    const kv::KvResult r = store.put(hot, 1);
    EXPECT_TRUE(r.ok);
  }
  env.barrier(w);
  env.compute(sim::ns(173) * static_cast<sim::Time>(me + 1));
  int done = 0;
  while (done < kIncrPerRank) {
    const kv::KvResult cur = store.get(hot);
    EXPECT_TRUE(cur.ok);
    const kv::KvResult c = store.cas_update(hot, cur.value, cur.value + 1);
    if (c.ok) ++done;
    env.compute(sim::ns(61));
  }
  env.barrier(w);
  const kv::KvResult fin = store.get(hot);
  store.close();
  if (me == 0) {
    out->probe_value = fin.value;
    out->stats = store.global_stats();
    out->fingerprint = store.fingerprint();
    for (int i = 0; i < 8; ++i) out->acc[i] = store.acc_total(i);
  }
}

class KvLockKind
    : public ::testing::TestWithParam<kv::KvConfig::LockKind> {};

TEST_P(KvLockKind, HotKeyCasIncrementIsExact) {
  kv::KvConfig cfg;
  cfg.nbuckets = 4;
  cfg.assoc = 2;
  cfg.lock = GetParam();

  const int nodes = 1, users = 3, ghosts = 1;
  mpi::RunConfig rc = base_config(nodes, users + ghosts, /*seed=*/7);
  core::Config cc;
  cc.ghosts_per_node = ghosts;

  check::LinearChecker checker;
  DirectResult res;
  mpi::Runtime rt(
      rc,
      [&](mpi::Env& env) { contention_body(env, cfg, &checker, &res); },
      core::layer(cc));
  rt.add_observer(&checker);
  rt.run();

  const int nclients = nodes * users;
  EXPECT_EQ(res.probe_value, 1 + nclients * kIncrPerRank);
  EXPECT_EQ(res.stats.cas_ok,
            static_cast<std::uint64_t>(nclients * kIncrPerRank));
  EXPECT_EQ(res.stats.cas, res.stats.cas_ok + res.stats.cas_fail);
  EXPECT_EQ(res.stats.unlock_mismatch, 0u);
  EXPECT_GT(res.stats.lock_acquires, 0u);
  // Server-side ACC books must match the client-side counters exactly.
  EXPECT_EQ(res.acc[0], res.stats.ops());
  EXPECT_EQ(res.acc[5], res.stats.cas_ok);
  EXPECT_EQ(res.acc[6], res.stats.cas_fail);
  // The checker rode the run and the contended history linearizes.
  EXPECT_EQ(checker.ops_recorded(), res.stats.ops());
  EXPECT_GT(checker.commits(), 0u);
  EXPECT_TRUE(checker.clean()) << checker.check().front().diag;
  EXPECT_EQ(rt.stats().get("atomicity_violations"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Locks, KvLockKind,
                         ::testing::Values(kv::KvConfig::LockKind::CasSpin,
                                           kv::KvConfig::LockKind::FaoTicket),
                         [](const auto& info) {
                           return info.param ==
                                          kv::KvConfig::LockKind::CasSpin
                                      ? "CasSpin"
                                      : "FaoTicket";
                         });

// --- collision chains: assoc slots fill, then overflow --------------------

TEST(KvCollision, ChainFillsThenOverflows) {
  kv::KvConfig cfg;
  cfg.nbuckets = 2;
  cfg.assoc = 2;

  mpi::RunConfig rc = base_config(1, 2, /*seed=*/11);
  check::LinearChecker checker;
  bool body_ran = false;
  mpi::Runtime rt(rc, [&](mpi::Env& env) {
    mpi::Comm w = env.world();
    kv::KvStore store(env, cfg, w);
    store.set_sink(&checker);
    store.open();
    if (env.rank(w) == 0) {
      const int srv = 1, bkt = 1;  // somebody else's segment: remote path
      const std::uint64_t k0 = store.key_for(srv, bkt, 0);
      const std::uint64_t k1 = store.key_for(srv, bkt, 1);
      const std::uint64_t k2 = store.key_for(srv, bkt, 2);
      ASSERT_NE(k0, k1);
      ASSERT_NE(k1, k2);
      EXPECT_EQ(store.server_of(k2), srv);
      EXPECT_EQ(store.bucket_of(k2), bkt);

      EXPECT_TRUE(store.put(k0, 100).ok);   // insert, slot 0
      EXPECT_TRUE(store.put(k1, 200).ok);   // insert, slot 1 (chain)
      EXPECT_FALSE(store.put(k2, 300).ok);  // bucket full: overflow

      EXPECT_EQ(store.get(k0).value, 100);
      EXPECT_EQ(store.get(k1).value, 200);
      const kv::KvResult miss = store.get(k2);
      EXPECT_FALSE(miss.ok);
      EXPECT_EQ(miss.value, 0);

      EXPECT_TRUE(store.put(k0, 101).ok);  // update in place, no new slot
      EXPECT_EQ(store.get(k0).value, 101);

      const kv::KvResult bad = store.cas_update(k1, 999, 201);
      EXPECT_FALSE(bad.ok);
      EXPECT_EQ(bad.value, 200);  // CAS reports the old value either way
      const kv::KvResult good = store.cas_update(k1, 200, 201);
      EXPECT_TRUE(good.ok);
      EXPECT_EQ(store.get(k1).value, 201);

      const kv::KvStats& s = store.local_stats();
      EXPECT_EQ(s.inserts, 2u);
      EXPECT_EQ(s.updates, 1u);  // put(k0,101); CAS counts under cas_ok
      EXPECT_EQ(s.overflows, 1u);
      EXPECT_EQ(s.cas_ok, 1u);
      EXPECT_EQ(s.cas_fail, 1u);
      body_ran = true;
    }
    store.close();
  });
  rt.add_observer(&checker);
  rt.run();
  EXPECT_TRUE(body_ran);
  EXPECT_TRUE(checker.clean()) << checker.check().front().diag;
}

// --- round-trip: every progress mode x ghost count runs the same workload --

check::KvCase fixed_case(check::KvMode mode, int ghosts) {
  check::KvCase fc;
  fc.seed = 42;
  fc.mode = mode;
  fc.nodes = 2;
  fc.users_per_node = 2;
  fc.ghosts = ghosts;
  fc.store.nbuckets = 8;
  fc.store.assoc = 2;
  fc.traffic.nkeys = 8;
  fc.traffic.zipf_s = 0.99;
  fc.traffic.read_pct = 60;
  fc.traffic.rmw_pct = 20;
  fc.traffic.ops_per_client = 25;
  fc.traffic.think_mean = sim::us(2);
  fc.traffic.seed = fc.seed;
  fc.ops = kv::make_ops(fc.traffic, fc.nclients());
  return fc;
}

struct ModeGhost {
  check::KvMode mode;
  int ghosts;
};

class KvRoundTrip : public ::testing::TestWithParam<ModeGhost> {};

TEST_P(KvRoundTrip, WorkloadIsCleanUnderEveryProgressModel) {
  const ModeGhost p = GetParam();
  const check::KvCase fc = fixed_case(p.mode, p.ghosts);
  const check::KvOutcome out = check::run_kv_case(fc, /*perturb=*/0);
  EXPECT_EQ(out.violations, 0u) << (out.diags.empty() ? "" : out.diags[0]);
  EXPECT_EQ(out.divergences, 0u);
  EXPECT_EQ(out.atomicity, 0u);
  // Every materialized op completed and was recorded (RMW records two
  // events: the read and the CAS), and the server-side ACC books agree.
  EXPECT_EQ(out.checker_ops, out.stats.ops());
  EXPECT_EQ(out.acc_ops, out.stats.ops());
  EXPECT_GE(out.stats.ops(),
            static_cast<std::uint64_t>(fc.ops.size()));
  EXPECT_EQ(out.stats.unlock_mismatch, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndGhosts, KvRoundTrip,
    ::testing::Values(ModeGhost{check::KvMode::Original, 1},
                      ModeGhost{check::KvMode::Thread, 1},
                      ModeGhost{check::KvMode::Casper, 1},
                      ModeGhost{check::KvMode::Casper, 2},
                      ModeGhost{check::KvMode::Casper, 4}),
    [](const auto& info) {
      std::string n = check::to_string(info.param.mode);
      n += "_g";
      n += std::to_string(info.param.ghosts);
      return n;
    });

// --- determinism: schedules and shard counts must not change anything -----
//
// The workload is tie-free by construction (staggered starts, per-client
// think-time streams), so perturbing the engine's tie-break order — or
// splitting the event engine across shards — must reproduce the reference
// run exactly: same end time, same final-table fingerprint, same client
// books, and the identical canonical KV history (hash over every recorded
// event including its virtual-time interval).

TEST(KvDeterminism, PerturbedSchedulesMatchReferenceExactly) {
  const check::KvCase fc = fixed_case(check::KvMode::Casper, 2);
  const check::KvOutcome ref = check::run_kv_case(fc, /*perturb=*/0);
  ASSERT_EQ(ref.violations, 0u);
  ASSERT_GT(ref.checker_ops, 0u);
  for (int s = 1; s <= 8; ++s) {
    const std::uint64_t p = check::perturb_for(fc.seed, s);
    const check::KvOutcome out = check::run_kv_case(fc, p);
    EXPECT_EQ(out.violations, 0u) << "schedule " << s;
    EXPECT_EQ(out.end_time, ref.end_time) << "schedule " << s;
    EXPECT_EQ(out.fingerprint, ref.fingerprint) << "schedule " << s;
    EXPECT_EQ(out.history_hash, ref.history_hash) << "schedule " << s;
    EXPECT_TRUE(out.stats == ref.stats) << "schedule " << s;
    EXPECT_EQ(out.metrics, ref.metrics) << "schedule " << s;
  }
}

TEST(KvDeterminism, ShardCountsMatchReferenceExactly) {
  const check::KvCase fc = fixed_case(check::KvMode::Casper, 2);
  const check::KvOutcome ref = check::run_kv_case(fc, /*perturb=*/0);
  ASSERT_EQ(ref.violations, 0u);
  for (int shards : {2, 4, 8}) {
    const check::KvOutcome out = check::run_kv_case(fc, 0, shards);
    EXPECT_EQ(out.violations, 0u) << shards << " shards";
    EXPECT_EQ(out.end_time, ref.end_time) << shards << " shards";
    EXPECT_EQ(out.fingerprint, ref.fingerprint) << shards << " shards";
    EXPECT_EQ(out.history_hash, ref.history_hash) << shards << " shards";
    EXPECT_TRUE(out.stats == ref.stats) << shards << " shards";
  }
}

// --- chaos: lossy network + ghost kill, checker stays clean ---------------

TEST(KvChaos, LossyNetworkKeepsHistoryLinearizable) {
  check::KvCase fc = fixed_case(check::KvMode::Casper, 2);
  check::add_kv_net_faults(fc);
  ASSERT_TRUE(fc.fault_plan.active());
  const check::KvOutcome out = check::run_kv_case(fc, /*perturb=*/0);
  EXPECT_EQ(out.violations, 0u) << (out.diags.empty() ? "" : out.diags[0]);
  EXPECT_EQ(out.divergences, 0u);
  EXPECT_EQ(out.atomicity, 0u);
  EXPECT_EQ(out.checker_ops, out.stats.ops());
  EXPECT_FALSE(out.fault_stats.empty());
}

TEST(KvChaos, GhostKillRecoveryKeepsHistoryLinearizable) {
  check::KvCase fc = fixed_case(check::KvMode::Casper, 2);
  const std::vector<int> ghosts = check::kv_ghost_ranks(fc);
  ASSERT_GE(ghosts.size(), 2u);
  fault::GhostKill kill;
  kill.world_rank = ghosts[0];
  kill.at = sim::us(20);
  fc.fault_plan.kills.push_back(kill);
  fc.fault_plan.heartbeat_period = sim::us(2);
  const check::KvOutcome out = check::run_kv_case(fc, /*perturb=*/0);
  EXPECT_EQ(out.violations, 0u) << (out.diags.empty() ? "" : out.diags[0]);
  EXPECT_EQ(out.divergences, 0u);
  EXPECT_EQ(out.atomicity, 0u);
  // Every op still completed through the rebinding.
  EXPECT_EQ(out.checker_ops, out.stats.ops());
  EXPECT_FALSE(out.fault_stats.empty());
}

}  // namespace
