// Unit tests for the stackful-fiber primitive underneath the engine:
// switching, argument passing, stack reclamation, and the guard page.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "sim/fiber.hpp"

namespace {

using casper::sim::Fiber;

struct PingPong {
  Fiber main;  // adopted
  std::unique_ptr<Fiber> worker;
  std::vector<int> log;
};

void pingpong_entry(void* arg) {
  auto& pp = *static_cast<PingPong*>(arg);
  pp.log.push_back(1);
  Fiber::switch_to(*pp.worker, pp.main);
  pp.log.push_back(3);
  Fiber::switch_to(*pp.worker, pp.main, /*from_exiting=*/true);
}

TEST(Fiber, SwitchRoundTripPreservesOrderAndLocals) {
  PingPong pp;
  pp.worker = std::make_unique<Fiber>(&pingpong_entry, &pp, 64 * 1024);
  pp.log.push_back(0);
  Fiber::switch_to(pp.main, *pp.worker);  // runs until first switch back
  pp.log.push_back(2);
  Fiber::switch_to(pp.main, *pp.worker);  // runs to exit
  pp.log.push_back(4);
  EXPECT_EQ(pp.log, (std::vector<int>{0, 1, 2, 3, 4}));
}

struct Counter {
  Fiber main;
  std::unique_ptr<Fiber> worker;
  int n = 0;
  int target = 0;
};

void counter_entry(void* arg) {
  auto& c = *static_cast<Counter*>(arg);
  while (c.n < c.target) {
    ++c.n;
    const bool last = c.n == c.target;
    Fiber::switch_to(*c.worker, c.main, last);
  }
}

TEST(Fiber, ManySwitchesOnSmallStack) {
  Counter c;
  c.target = 100000;
  c.worker = std::make_unique<Fiber>(&counter_entry, &c, 32 * 1024);
  for (int i = 0; i < c.target; ++i) Fiber::switch_to(c.main, *c.worker);
  EXPECT_EQ(c.n, c.target);
}

TEST(Fiber, SuspendedFiberCanBeDestroyed) {
  // A fiber abandoned mid-execution must be reclaimable without a hang —
  // the regression the pthread engine could not guarantee.
  Counter c;
  c.target = 1000;
  c.worker = std::make_unique<Fiber>(&counter_entry, &c, 32 * 1024);
  Fiber::switch_to(c.main, *c.worker);  // worker now suspended at n == 1
  EXPECT_EQ(c.n, 1);
  c.worker.reset();  // unmap its stack; no join, nothing to wait for
}

TEST(Fiber, NeverStartedFiberCanBeDestroyed) {
  Counter c;
  c.target = 1;
  c.worker = std::make_unique<Fiber>(&counter_entry, &c, 32 * 1024);
  c.worker.reset();
  EXPECT_EQ(c.n, 0);
}

// Guard-page check: blowing the fiber stack must fault immediately rather
// than corrupt adjacent memory. Disabled under ASan/TSan-style builds is not
// needed — ASan also dies on the fault, which is what EXPECT_DEATH checks.
struct Overflow {
  Fiber main;
  std::unique_ptr<Fiber> worker;
};

int deep_recursion(int depth) {
  volatile char frame[512];
  frame[0] = static_cast<char>(depth);
  if (depth <= 0) return frame[0];
  return deep_recursion(depth - 1) + frame[0];
}

void overflow_entry(void* arg) {
  auto& o = *static_cast<Overflow*>(arg);
  deep_recursion(1 << 20);  // vastly exceeds the 32 KiB stack
  Fiber::switch_to(*o.worker, o.main, true);
}

TEST(FiberDeath, StackOverflowHitsGuardPage) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Overflow o;
        o.worker = std::make_unique<Fiber>(&overflow_entry, &o, 32 * 1024);
        Fiber::switch_to(o.main, *o.worker);
      },
      ".*");
}

}  // namespace
