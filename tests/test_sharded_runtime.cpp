// Cross-shard determinism of the FULL runtime stack (not just the raw
// engine, which tests/test_sim_engine_sharded.cpp covers): a fig5-style
// workload — all-to-all RMA, compute, RMA burst, barrier — must produce
// IDENTICAL virtual-time results and stats counters for every shard count.
// The conservative-lookahead engine guarantees cross-shard events execute in
// (t, ...) order exactly as the single-shard scheduler would, so simulated
// results are a deterministic fact of the workload, independent of how the
// rank space is partitioned over host worker threads.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::RunConfig;
using mpi::Win;

/// Everything a run leaves behind that must be shard-count invariant.
struct Outcome {
  sim::Time rank0_end = 0;           // virtual completion time on rank 0
  std::vector<double> window;        // final window contents on rank 0
  std::map<std::string, std::uint64_t> counters;
};

bool operator==(const Outcome& a, const Outcome& b) {
  return a.rank0_end == b.rank0_end && a.window == b.window &&
         a.counters == b.counters;
}

/// fig5-style iteration on `nodes` single-process nodes: one accumulate to
/// every peer, flush, 100us compute, ten more accumulates per peer, flush,
/// barrier. Plus a p2p ring exchange so the send path is exercised too.
void fig5_body(mpi::Env& env, Outcome* out) {
  Comm w = env.world();
  const int p = env.size(w);
  const int me = env.rank(w);
  void* base = nullptr;
  Win win = env.win_allocate(static_cast<std::size_t>(p) * sizeof(double),
                             sizeof(double), Info{}, w, &base);
  env.win_lock_all(0, win);
  env.barrier(w);
  double v = 1.0;
  double ring = 0.0;
  for (int it = 0; it < 2; ++it) {
    for (int t = 0; t < p; ++t) {
      if (t == me) continue;
      env.accumulate(&v, 1, t, static_cast<std::size_t>(me), AccOp::Sum, win);
    }
    env.win_flush_all(win);
    env.compute(sim::us(100));
    for (int t = 0; t < p; ++t) {
      if (t == me) continue;
      for (int k = 0; k < 10; ++k) {
        env.accumulate(&v, 1, t, static_cast<std::size_t>(me), AccOp::Sum,
                       win);
      }
    }
    env.win_flush_all(win);
    mpi::Request reqs[2];
    reqs[0] = env.irecv(&ring, 1, Dt::Double, (me + p - 1) % p, 3, w);
    reqs[1] = env.isend(&v, 1, Dt::Double, (me + 1) % p, 3, w);
    env.waitall(reqs, 2);
    env.barrier(w);
  }
  env.win_unlock_all(win);
  if (me == 0) {
    out->rank0_end = env.now();
    const double* d = static_cast<const double*>(base);
    out->window.assign(d, d + p);
  }
  env.win_free(win);
}

Outcome run_fig5(int nodes, int shards, progress::Kind kind,
                 bool oversub = false, bool casper_mode = false) {
  RunConfig c;
  c.machine.profile = net::cray_xc30_regular();
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = casper_mode ? 2 : 1;
  c.progress.kind = kind;
  c.progress.oversubscribed = oversub;
  c.shards = shards;
  Outcome out;
  auto body = [&out](mpi::Env& env) { fig5_body(env, &out); };
  mpi::LayerFactory layer = nullptr;
  if (casper_mode) {
    core::Config cc;
    cc.ghosts_per_node = 1;
    layer = core::layer(cc);
  }
  // Runtime directly (not mpi::exec): the merged sharded stats registry is
  // only valid after run() returns, so grab it before the runtime dies.
  mpi::Runtime rt(c, body, layer);
  rt.run();
  out.counters = rt.stats().all();
  return out;
}

class ShardedRuntime : public ::testing::Test {};

void expect_invariant(progress::Kind kind, bool oversub, bool casper_mode,
                      const char* what) {
  const Outcome ref = run_fig5(8, 1, kind, oversub, casper_mode);
  ASSERT_GT(ref.rank0_end, 0) << what;
  for (int shards : {2, 4, 8}) {
    const Outcome got = run_fig5(8, shards, kind, oversub, casper_mode);
    EXPECT_EQ(ref.rank0_end, got.rank0_end)
        << what << ": virtual completion time changed at shards=" << shards;
    EXPECT_EQ(ref.window, got.window)
        << what << ": window bytes changed at shards=" << shards;
    EXPECT_EQ(ref.counters, got.counters)
        << what << ": stats counters changed at shards=" << shards;
  }
}

TEST_F(ShardedRuntime, Fig5OriginalModeShardInvariant) {
  expect_invariant(progress::Kind::None, false, false, "original");
}

TEST_F(ShardedRuntime, Fig5ThreadModeShardInvariant) {
  expect_invariant(progress::Kind::Thread, true, false, "thread");
}

TEST_F(ShardedRuntime, Fig5InterruptModeShardInvariant) {
  expect_invariant(progress::Kind::Interrupt, false, false, "dmapp");
}

TEST_F(ShardedRuntime, Fig5CasperModeShardInvariant) {
  expect_invariant(progress::Kind::None, false, true, "casper");
}

}  // namespace
