// Linearizability checker (src/check/linear.*) unit tests: hand-built legal
// and illegal histories exercise the register semantics and the Wing–Gong
// search directly, a deliberately broken KV store variant (skipped
// unlock-ordering flush) proves end-to-end detection, and kv_proof() proves
// the whole catch → minimize → write → replay pipeline holds.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/kvfuzz.hpp"
#include "check/linear.hpp"

namespace {

using namespace casper;
using check::LinearChecker;
using kv::KvEvent;

KvEvent ev(std::uint64_t key, KvEvent::Kind kind, std::int64_t arg1,
           std::int64_t arg2, std::int64_t result, bool ok, sim::Time inv,
           sim::Time resp, int client = 0) {
  KvEvent e;
  e.key = key;
  e.kind = kind;
  e.arg1 = arg1;
  e.arg2 = arg2;
  e.result = result;
  e.ok = ok;
  e.client = client;
  e.inv = inv;
  e.resp = resp;
  return e;
}

KvEvent get(std::uint64_t k, std::int64_t res, sim::Time i, sim::Time r,
            int c = 0) {
  return ev(k, KvEvent::Kind::Get, 0, 0, res, true, i, r, c);
}
KvEvent put(std::uint64_t k, std::int64_t v, sim::Time i, sim::Time r,
            int c = 0, bool ok = true) {
  return ev(k, KvEvent::Kind::Put, v, 0, 0, ok, i, r, c);
}
KvEvent cas(std::uint64_t k, std::int64_t exp, std::int64_t des,
            std::int64_t old, bool ok, sim::Time i, sim::Time r, int c = 0) {
  return ev(k, KvEvent::Kind::CasUpd, exp, des, old, ok, i, r, c);
}

// LinearChecker is immovable (mutex + atomics), so tests fill one in place.
template <typename... Es>
void record_all(LinearChecker& ck, const Es&... es) {
  (ck.record(es), ...);
}

template <typename... Es>
bool clean_history(const Es&... es) {
  LinearChecker ck;
  record_all(ck, es...);
  return ck.clean();
}

template <typename... Es>
std::size_t violation_count(const Es&... es) {
  LinearChecker ck;
  record_all(ck, es...);
  return ck.check().size();
}

// --- legal histories -------------------------------------------------------

TEST(LinearChecker, EmptyAndSequentialHistoriesAreClean) {
  LinearChecker empty;
  EXPECT_TRUE(empty.clean());
  EXPECT_EQ(empty.ops_recorded(), 0u);

  LinearChecker ck;
  record_all(ck,
             get(1, 0, 0, 5),    // key absent
             put(1, 7, 10, 15),  // install 7
             get(1, 7, 20, 25),  // read it back
             cas(1, 7, 9, 7, true, 30, 35), get(1, 9, 40, 45),
             // stale expected: fails, reports 9
             cas(1, 7, 11, 9, false, 50, 55), get(1, 9, 60, 65));
  EXPECT_TRUE(ck.clean()) << ck.check().front().diag;
}

TEST(LinearChecker, OverlappingOpsMayCommute) {
  // GET [0,20] overlaps PUT(1) [5,15]: reading 0 is legal (GET linearizes
  // first) and so is reading 1 (PUT first) — both orders must be accepted.
  EXPECT_TRUE(clean_history(get(1, 0, 0, 20, 0), put(1, 1, 5, 15, 1)));
  EXPECT_TRUE(clean_history(get(1, 1, 0, 20, 0), put(1, 1, 5, 15, 1)));
  // Two overlapping CAS ops both expecting 7 — only the winner succeeds;
  // the loser must observe the winner's value.
  EXPECT_TRUE(clean_history(put(1, 7, 0, 5),
                            cas(1, 7, 8, 7, true, 10, 30, 0),
                            cas(1, 7, 9, 8, false, 12, 28, 1)));
}

TEST(LinearChecker, PerKeyIsolation) {
  // An illegal value on key 2 must not implicate key 1's clean history.
  LinearChecker ck;
  record_all(ck, put(1, 5, 0, 5), get(1, 5, 10, 15), put(2, 5, 0, 5),
             get(2, 6, 10, 15));
  const auto& vs = ck.check();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].key, 2u);
}

// --- illegal histories -----------------------------------------------------

TEST(LinearChecker, StaleReadIsAViolation) {
  // PUT(1) then PUT(2) strictly before a GET that still returns 1.
  LinearChecker ck;
  record_all(ck, put(1, 1, 0, 10), put(1, 2, 20, 30), get(1, 1, 40, 50));
  const auto& vs = ck.check();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].key, 1u);
  EXPECT_NE(vs[0].diag.find("no legal linearization"), std::string::npos);
}

TEST(LinearChecker, LostUpdateIsAViolation) {
  // A successful CAS 1->2 whose effect later vanishes.
  EXPECT_EQ(violation_count(put(1, 1, 0, 10), cas(1, 1, 2, 1, true, 20, 30),
                            get(1, 1, 40, 50)),
            1u);
}

TEST(LinearChecker, DoubleCasSuccessIsAViolation) {
  // Two CAS ops expecting the same old value cannot both succeed.
  EXPECT_EQ(violation_count(put(1, 1, 0, 10),
                            cas(1, 1, 2, 1, true, 20, 30, 0),
                            cas(1, 1, 3, 1, true, 40, 50, 1)),
            1u);
}

TEST(LinearChecker, OverflowPutWhileKeyPresentIsAViolation) {
  // PUT !ok claims the bucket had no slot for the key — impossible while
  // the key is present.
  EXPECT_EQ(violation_count(put(1, 1, 0, 10),
                            put(1, 2, 20, 30, 0, /*ok=*/false),
                            get(1, 1, 40, 50)),
            1u);
}

TEST(LinearChecker, GetFromAbsentKeyMustReturnZero) {
  EXPECT_FALSE(clean_history(get(1, 3, 0, 10)));
  EXPECT_FALSE(clean_history(cas(1, 3, 4, 3, true, 0, 10)));  // absent key
}

// --- determinism of the verdict machinery ---------------------------------

TEST(LinearChecker, HistoryHashIsArrivalOrderInvariant) {
  const KvEvent a = put(1, 1, 0, 10, 0);
  const KvEvent b = get(1, 1, 20, 30, 1);
  const KvEvent c = put(2, 5, 0, 10, 1);
  LinearChecker fwd, rev;
  record_all(fwd, a, b, c);
  record_all(rev, c, b, a);
  EXPECT_EQ(fwd.history_hash(), rev.history_hash());
  EXPECT_TRUE(fwd.clean());
  EXPECT_TRUE(rev.clean());
}

TEST(LinearChecker, ResetClearsEverything) {
  LinearChecker ck;
  record_all(ck, get(1, 3, 0, 10));
  EXPECT_FALSE(ck.clean());
  ck.reset();
  EXPECT_TRUE(ck.clean());
  EXPECT_EQ(ck.ops_recorded(), 0u);
}

// --- end-to-end: the broken store variant must be caught ------------------

TEST(LinearCheckerEndToEnd, KvProofCatchesPlantedBugAndReproReplays) {
  // kv_proof plants KvConfig::skip_unlock_flush (value PUT unordered
  // w.r.t. the lock release) under a delay-heavy network, requires the
  // checker to flag the stale read, minimizes the failing op prefix, writes
  // the repro file, re-parses it, and replays it. Any weak link returns
  // false.
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(check::kv_proof(/*base_seed=*/1, /*schedules=*/2, dir,
                              /*verbose=*/false));
}

}  // namespace
