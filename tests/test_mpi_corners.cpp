// Corner-case and error-path tests for minimpi: fence asserts,
// get_accumulate, flush_local, zero-size windows, bounds checking and
// epoch-misuse aborts (death tests).
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn,
              net::Profile prof = net::cray_xc30_regular()) {
  RunConfig c;
  c.machine.profile = std::move(prof);
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

TEST(MpiCorners, FenceNoPrecedeSkipsFlush) {
  // A NOPRECEDE fence after ops would be a usage error in a real program;
  // here we just verify that back-to-back asserted fences are cheaper than
  // plain fences (the flush is skipped).
  sim::Time plain = 0, asserted = 0;
  mpi::exec(cfg(2, 1), [&](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.win_fence(mpi::kModeNoPrecede, win);
    double v = 1.0;
    // measure: fence after ops with and without NOPRECEDE
    if (env.rank(w) == 0) env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
    sim::Time t0 = env.now();
    env.win_fence(0, win);
    if (env.rank(w) == 0) plain = env.now() - t0;
    if (env.rank(w) == 0) env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
    env.win_fence(0, win);  // complete those ops properly
    t0 = env.now();
    env.win_fence(mpi::kModeNoPrecede | mpi::kModeNoSucceed, win);
    if (env.rank(w) == 0) asserted = env.now() - t0;
    env.win_free(win);
  });
  EXPECT_LE(asserted, plain);
}

TEST(MpiCorners, GetAccumulateFetchesOldAndApplies) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(4 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    if (env.rank(w) == 1) {
      auto* d = static_cast<double*>(base);
      for (int i = 0; i < 4; ++i) d[i] = 10.0 * i;
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      std::vector<double> add = {1, 1, 1, 1};
      std::vector<double> old(4, -1);
      env.win_lock(LockType::Exclusive, 1, 0, win);
      env.get_accumulate(add.data(), 4, mpi::contig(Dt::Double), old.data(),
                         4, mpi::contig(Dt::Double), 1, 0, 4,
                         mpi::contig(Dt::Double), AccOp::Sum, win);
      env.win_unlock(1, win);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(old[static_cast<std::size_t>(i)], 10.0 * i);
    }
    env.barrier(w);
    if (env.rank(w) == 1) {
      auto* d = static_cast<double*>(base);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], 10.0 * i + 1.0);
    }
    env.win_free(win);
  });
}

TEST(MpiCorners, GetAccumulateNoOpIsAtomicRead) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    if (env.rank(w) == 1) *static_cast<double*>(base) = 5.5;
    env.barrier(w);
    if (env.rank(w) == 0) {
      double dummy = 0, old = -1;
      env.win_lock(LockType::Shared, 1, 0, win);
      env.get_accumulate(&dummy, 1, mpi::contig(Dt::Double), &old, 1,
                         mpi::contig(Dt::Double), 1, 0, 1,
                         mpi::contig(Dt::Double), AccOp::NoOp, win);
      env.win_unlock(1, win);
      EXPECT_EQ(old, 5.5);
    }
    env.barrier(w);
    if (env.rank(w) == 1) {
      EXPECT_EQ(*static_cast<double*>(base), 5.5);  // untouched
    }
    env.win_free(win);
  });
}

TEST(MpiCorners, FlushLocalIsCheap) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      env.win_lock_all(0, win);
      double v = 1.0;
      env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      const sim::Time t0 = env.now();
      env.win_flush_local_all(win);  // local completion: no remote wait
      EXPECT_LT(env.now() - t0, sim::us(1));
      env.win_unlock_all(win);
    }
    env.barrier(w);
    env.win_free(win);
  });
}

TEST(MpiCorners, ZeroSizeWindowMembersCoexist) {
  mpi::exec(cfg(1, 3), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    const std::size_t bytes = env.rank(w) == 1 ? 8 * sizeof(double) : 0;
    Win win = env.win_allocate(bytes, sizeof(double), Info{}, w, &base);
    env.win_lock_all(0, win);
    double v = env.rank(w) + 1.0;
    env.accumulate(&v, 1, 1, static_cast<std::size_t>(env.rank(w)), AccOp::Sum,
                   win);
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    if (env.rank(w) == 1) {
      auto* d = static_cast<double*>(base);
      EXPECT_EQ(d[0], 1.0);
      EXPECT_EQ(d[1], 2.0);
      EXPECT_EQ(d[2], 3.0);
    }
    env.win_free(win);
  });
}

TEST(MpiCorners, BcastLargePayload) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    std::vector<double> buf(4096, env.rank(w) == 0 ? 1.25 : 0.0);
    env.bcast(buf.data(), 4096, Dt::Double, 0, w);
    for (double x : buf) ASSERT_EQ(x, 1.25);
  });
}

using MpiDeath = ::testing::Test;

TEST(MpiDeath, RmaOutsideEpochAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      mpi::exec(cfg(2, 1),
                [](mpi::Env& env) {
                  Comm w = env.world();
                  void* base = nullptr;
                  Win win = env.win_allocate(8, 1, Info{}, w, &base);
                  double v = 1.0;
                  env.put(&v, 1, 1 - env.rank(w), 0, win);  // no epoch!
                }),
      "outside any epoch");
}

TEST(MpiDeath, RmaOutOfBoundsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      mpi::exec(cfg(2, 1),
                [](mpi::Env& env) {
                  Comm w = env.world();
                  void* base = nullptr;
                  Win win =
                      env.win_allocate(8, 1, Info{}, w, &base);
                  env.win_lock_all(0, win);
                  double v = 1.0;
                  // 8-byte window, displacement 8 bytes + 8 bytes: overflow
                  env.put(&v, 1, mpi::contig(Dt::Double), 1 - env.rank(w), 8,
                          1, mpi::contig(Dt::Double), win);
                }),
      "out of bounds");
}

TEST(MpiDeath, NestedLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      mpi::exec(cfg(2, 1),
                [](mpi::Env& env) {
                  Comm w = env.world();
                  void* base = nullptr;
                  Win win = env.win_allocate(8, 1, Info{}, w, &base);
                  env.win_lock(LockType::Shared, 0, 0, win);
                  env.win_lock(LockType::Shared, 0, 0, win);  // nested
                }),
      "nested lock");
}

TEST(MpiDeath, DeadlockIsDiagnosed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      mpi::exec(cfg(2, 1),
                [](mpi::Env& env) {
                  Comm w = env.world();
                  if (env.rank(w) == 0) {
                    int v = 0;
                    env.recv(&v, 1, Dt::Int, 1, 0, w);  // never sent
                  }
                }),
      "DEADLOCK");
}

}  // namespace
