// Tests for minimpi RMA: windows, epochs, put/get/accumulate semantics,
// delayed lock acquisition, software vs hardware paths, progress behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn,
              net::Profile prof = net::cray_xc30_regular()) {
  RunConfig c;
  c.machine.profile = std::move(prof);
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

TEST(MpiWin, AllocateExposesZeroedMemory) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(64, 1, Info{}, w, &base);
    ASSERT_NE(base, nullptr);
    auto* d = static_cast<const std::byte*>(base);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(d[i], std::byte{0});
    env.win_free(win);
  });
}

TEST(MpiWin, AllocateSharedMapsNodeMemory) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    Comm node = env.comm_split_shared(w);
    void* base = nullptr;
    Win win = env.win_allocate_shared(32, 1, Info{}, node, &base);
    // Local peer's segment is directly addressable.
    auto seg0 = env.win_shared_query(win, 0);
    auto seg1 = env.win_shared_query(win, 1);
    ASSERT_NE(seg0.base, nullptr);
    ASSERT_NE(seg1.base, nullptr);
    if (env.rank(node) == 0) {
      *reinterpret_cast<double*>(seg1.base) = 7.5;  // write peer's memory
    }
    env.barrier(node);
    if (env.rank(node) == 1) {
      EXPECT_EQ(*reinterpret_cast<double*>(base), 7.5);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, FencePutGet) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(8 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.win_fence(mpi::kModeNoPrecede, win);
    if (env.rank(w) == 0) {
      std::vector<double> v = {1, 2, 3, 4};
      env.put(v.data(), 4, 1, 0, win);
    }
    env.win_fence(0, win);
    if (env.rank(w) == 1) {
      auto* d = static_cast<double*>(base);
      EXPECT_EQ(d[0], 1);
      EXPECT_EQ(d[3], 4);
    }
    // read back through get
    if (env.rank(w) == 1) {
      std::vector<double> r(4, 0);
      env.get(r.data(), 4, 1, 0, win);
      env.win_fence(mpi::kModeNoSucceed, win);
      EXPECT_EQ(r[1], 2);
    } else {
      env.win_fence(mpi::kModeNoSucceed, win);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, AccumulateSumsAtTarget) {
  mpi::exec(cfg(1, 4), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.win_fence(mpi::kModeNoPrecede, win);
    double one = 1.0;
    env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
    env.win_fence(mpi::kModeNoSucceed, win);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 4.0);  // all four ranks added 1
    }
    env.win_free(win);
  });
}

TEST(MpiRma, LockPutUnlock) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    if (env.rank(w) == 0) {
      double v = 11.0;
      env.win_lock(LockType::Exclusive, 1, 0, win);
      env.put(&v, 1, 1, 0, win);
      env.win_unlock(1, win);
      int done = 1;
      env.send(&done, 1, Dt::Int, 1, 0, w);
    } else {
      int done = 0;
      env.recv(&done, 1, Dt::Int, 0, 0, w);
      EXPECT_EQ(*static_cast<double*>(base), 11.0);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, SoftwareOpWaitsForTargetProgress) {
  // Accumulate needs target software on the regular Cray profile. The target
  // computes for 200us before its next MPI call, so the origin's unlock
  // cannot complete earlier.
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      double v = 1.0;
      env.win_lock(LockType::Exclusive, 1, 0, win);
      env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      env.win_unlock(1, win);
      EXPECT_GE(env.now(), sim::us(200));
    } else {
      env.compute(sim::us(200));
    }
    env.barrier(w);
    env.win_free(win);
  });
}

TEST(MpiRma, HardwarePutDoesNotWaitForTarget) {
  // On the DMAPP profile contiguous PUT is pure hardware: the origin
  // completes while the target is busy computing.
  mpi::exec(cfg(2, 1, net::cray_xc30_dmapp()), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 0) {
      double v = 1.0;
      env.win_lock(LockType::Exclusive, 1, 0, win);
      env.put(&v, 1, 1, 0, win);
      env.win_unlock(1, win);
      EXPECT_LT(env.now(), sim::us(100));  // far below target compute time
    } else {
      env.compute(sim::us(1000));
    }
    env.barrier(w);
    EXPECT_EQ(env.runtime().stats().get("interrupts"), 0u);
    env.win_free(win);
  });
}

TEST(MpiRma, GetAccumulateAndFetchAndOp) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    if (env.rank(w) == 0) *static_cast<double*>(base) = 10.0;
    env.barrier(w);
    if (env.rank(w) == 1) {
      env.win_lock(LockType::Exclusive, 0, 0, win);
      double add = 5.0, old = -1.0;
      env.fetch_and_op(&add, &old, Dt::Double, 0, 0, AccOp::Sum, win);
      env.win_unlock(0, win);
      EXPECT_EQ(old, 10.0);
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 15.0);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, CompareAndSwap) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(sizeof(int), sizeof(int), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) == 1) {
      env.win_lock(LockType::Exclusive, 0, 0, win);
      int expected = 0, desired = 77, result = -1;
      env.compare_and_swap(&expected, &desired, &result, Dt::Int, 0, 0, win);
      env.win_unlock(0, win);
      EXPECT_EQ(result, 0);  // old value
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<int*>(base), 77);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, StridedDatatypeRoundTrip) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win = env.win_allocate(16 * sizeof(double), sizeof(double), Info{}, w,
                               &base);
    env.win_fence(mpi::kModeNoPrecede, win);
    if (env.rank(w) == 0) {
      // Write 4 doubles to every other slot of target rank 1.
      std::vector<double> v = {1, 2, 3, 4};
      auto vec = mpi::vector_of(Dt::Double, 1, 2);
      env.put(v.data(), 4, mpi::contig(Dt::Double), 1, 0, 4, vec, win);
    }
    env.win_fence(mpi::kModeNoSucceed, win);
    if (env.rank(w) == 1) {
      auto* d = static_cast<double*>(base);
      EXPECT_EQ(d[0], 1);
      EXPECT_EQ(d[2], 2);
      EXPECT_EQ(d[4], 3);
      EXPECT_EQ(d[6], 4);
      EXPECT_EQ(d[1], 0);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, PscwCompletesOps) {
  mpi::exec(cfg(2, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    if (env.rank(w) == 0) {
      env.win_start(mpi::Group({1}), 0, win);
      double v = 3.0;
      env.accumulate(&v, 1, 1, 0, AccOp::Sum, win);
      env.win_complete(win);
    } else {
      env.win_post(mpi::Group({0}), 0, win);
      env.win_wait(win);
      EXPECT_EQ(*static_cast<double*>(base), 3.0);
    }
    env.win_free(win);
  });
}

TEST(MpiRma, LockAllFlushAll) {
  mpi::exec(cfg(2, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(4 * sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    env.win_lock_all(0, win);
    const int me = env.rank(w);
    double v = me + 1.0;
    for (int t = 0; t < 4; ++t) {
      env.accumulate(&v, 1, t, static_cast<std::size_t>(me), AccOp::Sum, win);
    }
    env.win_flush_all(win);
    env.win_unlock_all(win);
    env.barrier(w);
    auto* d = static_cast<double*>(base);
    for (int slot = 0; slot < 4; ++slot) {
      EXPECT_EQ(d[slot], slot + 1.0);  // slot written by origin `slot`
    }
    env.win_free(win);
  });
}

TEST(MpiRma, ExclusiveLocksSerializeConflictingOrigins) {
  // Two origins increment the same location under exclusive locks; the lock
  // manager must serialize the read-modify-writes: result is exactly 2 and
  // no atomicity violation is recorded.
  mpi::exec(cfg(3, 1), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) != 2) {
      double one = 1.0;
      env.win_lock(LockType::Exclusive, 2, 0, win);
      env.accumulate(&one, 1, 2, 0, AccOp::Sum, win);
      env.win_unlock(2, win);
    }
    // The target services the incoming ops while blocked in this barrier.
    env.barrier(w);
    if (env.rank(w) == 2) {
      EXPECT_EQ(*static_cast<double*>(base), 2.0);
    }
    EXPECT_EQ(env.runtime().stats().get("atomicity_violations"), 0u);
    env.win_free(win);
  });
}

TEST(MpiRma, SelfOpsExecuteImmediately) {
  mpi::exec(cfg(1, 2), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.win_lock(LockType::Exclusive, env.rank(w), 0, win);
    double v = 42.0;
    env.put(&v, 1, env.rank(w), 0, win);
    EXPECT_EQ(*static_cast<double*>(base), 42.0);  // visible before unlock
    env.win_unlock(env.rank(w), win);
    env.win_free(win);
  });
}

TEST(MpiRma, DelayedLockGrantOrderingNoCorruption) {
  // Many origins lock-acc-unlock the same target while the target is busy;
  // total must be exact once the target makes progress.
  mpi::exec(cfg(1, 8), [](mpi::Env& env) {
    Comm w = env.world();
    void* base = nullptr;
    Win win =
        env.win_allocate(sizeof(double), sizeof(double), Info{}, w, &base);
    env.barrier(w);
    if (env.rank(w) != 0) {
      double one = 1.0;
      env.win_lock(LockType::Exclusive, 0, 0, win);
      env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
      env.win_unlock(0, win);
    } else {
      env.compute(sim::us(300));
    }
    env.barrier(w);
    if (env.rank(w) == 0) {
      EXPECT_EQ(*static_cast<double*>(base), 7.0);
    }
    env.win_free(win);
  });
}

}  // namespace
