// Ghost failure & recovery: kill ghost processes at randomized virtual times
// across many seeds and require
//   * the epoch drain to complete (the run terminates; a stuck drain would
//     trip the simulator's deadlock detector),
//   * surviving-ghost rebinding to preserve oracle-validated window contents
//     (every byte checked at every sync), and
//   * last-ghost death to degrade the node to original-MPI (no-redirect)
//     mode with `recovery.degraded` counted exactly once per node.
//
// Workload safety under failure differs per scenario (DESIGN.md §11):
// with a surviving ghost, forwarding keeps read-modify-writes serialized
// through one live entity, so the full op mix is legal; with NO survivor,
// in-flight deliveries commit instantly at the NIC, so the last-ghost suite
// restricts itself to per-origin-disjoint PUT/GET plus self-targeted
// accumulates (each touching only the origin's own segment) — shapes whose
// correctness does not depend on a single serialization point.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "mpi/datatype.hpp"
#include "net/topology.hpp"

using namespace casper;

namespace {

std::uint64_t stat(const check::RunOutcome& out, const char* key) {
  auto it = out.fault_stats.find(key);
  return it == out.fault_stats.end() ? 0 : it->second;
}

check::EpochStyle epoch_for(std::uint64_t seed) {
  switch (seed % 3) {
    case 0: return check::EpochStyle::Lock;
    case 1: return check::EpochStyle::LockAll;
    default: return check::EpochStyle::Fence;
  }
}

/// World ranks that are ghosts for the given shape (block placement; the
/// same computation run_case's runtime performs).
std::vector<int> ghost_ranks(int nodes, int users_per_node, int ghosts) {
  net::Topology topo;
  topo.nodes = nodes;
  topo.cores_per_node = users_per_node + ghosts;
  core::Config cc;
  cc.ghosts_per_node = ghosts;
  std::vector<int> out;
  for (int w = 0; w < topo.nranks(); ++w) {
    if (core::is_ghost_rank(topo, cc, w)) out.push_back(w);
  }
  return out;
}

/// Mixed-op workload for the surviving-ghost scenario: puts to exclusive
/// slots, commutative accumulates into the shared region, FAO, and reads of
/// the never-written slot.
check::FuzzCase survivor_case(std::uint64_t seed) {
  check::FuzzCase fc;
  fc.seed = seed;
  fc.nodes = 2;
  fc.users_per_node = 2;
  fc.ghosts = 2;
  fc.binding = (seed % 2) ? core::Binding::Segment : core::Binding::Rank;
  fc.epoch = epoch_for(seed);
  fc.rounds = 2;
  fc.hint_exact = true;
  fc.acc_dt = mpi::Dt::Double;
  fc.acc_op = mpi::AccOp::Sum;
  fc.slot_bytes = 64;

  const int nu = fc.nusers();
  const std::size_t acc_base = static_cast<std::size_t>(nu) * fc.slot_bytes;
  const std::size_t ro_base = acc_base + fc.slot_bytes;
  for (int r = 0; r < fc.rounds; ++r) {
    for (int o = 0; o < nu; ++o) {
      for (int i = 0; i < 6; ++i) {
        check::OpRec op;
        op.origin = o;
        op.target = (o + 1 + i) % nu;
        op.round = r;
        op.count = 1;
        op.tdt = mpi::contig(mpi::Dt::Double);
        switch ((o + i + static_cast<int>(seed)) % 4) {
          case 0:
            op.kind = mpi::OpKind::Put;
            op.disp = static_cast<std::size_t>(o) * fc.slot_bytes +
                      static_cast<std::size_t>(i % 8) * 8;
            op.val = 16 * (o + 1) + i;
            break;
          case 1:
            op.kind = mpi::OpKind::Acc;
            op.aop = mpi::AccOp::Sum;
            op.disp = acc_base + static_cast<std::size_t>(i % 8) * 8;
            op.val = 1 + (i % 3);
            break;
          case 2:
            op.kind = mpi::OpKind::Fao;
            op.aop = mpi::AccOp::Sum;
            op.disp = acc_base + static_cast<std::size_t>(o % 8) * 8;
            op.val = 1 + (i % 3);
            break;
          default:
            op.kind = mpi::OpKind::Get;
            op.disp = ro_base + static_cast<std::size_t>(i % 8) * 8;
            break;
        }
        fc.ops.push_back(op);
      }
    }
  }
  return fc;
}

// Kill each ghost in turn at a seed-randomized virtual time; a surviving
// ghost on the node absorbs its load. 64 seeds x oracle-validated contents.
TEST(GhostFailure, KillEachGhostAcrossSeedsOracleClean) {
  const std::vector<int> ghosts = ghost_ranks(2, 2, 2);
  ASSERT_EQ(ghosts.size(), 4u);
  std::uint64_t total_rebound_targets = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    check::FuzzCase fc = survivor_case(seed);
    const int victim = ghosts[seed % ghosts.size()];
    sim::Rng rng(seed, 0xdead);
    // Runs last ~120-165us of virtual time; keep kill + heartbeat detection
    // well inside that window or the engine (which stops when the last fiber
    // exits) never delivers them.
    const sim::Time at = sim::us(2) + rng.next_below(sim::us(100));
    fc.fault_plan.kills.push_back({victim, at});
    fc.fault_plan.heartbeat_period = sim::us(2);

    const check::RunOutcome out = check::run_case(fc, 0);
    // Run completion IS the epoch-drain assertion: a drain that never
    // finishes dies in the simulator's deadlock detector.
    EXPECT_TRUE(out.divergences.empty())
        << out.divergences.size() << " divergence(s) after killing ghost "
        << victim << " at " << sim::to_us(at) << "us";
    EXPECT_EQ(out.atomicity_violations, 0u);
    EXPECT_EQ(stat(out, "fault.kills"), 1u);
    EXPECT_EQ(stat(out, "recovery.ghost_dead"), 1u);
    // The other ghost on the victim's node survived: never degraded.
    EXPECT_EQ(stat(out, "recovery.degraded"), 0u);
    total_rebound_targets += stat(out, "recovery.rebound_targets");
  }
  // Rank-bound targets must have actually rebound somewhere in the sweep.
  EXPECT_GT(total_rebound_targets, 0u);
}

/// Disjoint-only workload for the no-survivor scenario: puts to exclusive
/// slots, gets of the read-only slot, accumulates restricted to self.
check::FuzzCase degraded_case(std::uint64_t seed) {
  check::FuzzCase fc;
  fc.seed = seed;
  fc.nodes = 2;
  fc.users_per_node = 2;
  fc.ghosts = 1;
  fc.binding = core::Binding::Rank;
  fc.epoch = epoch_for(seed);
  fc.rounds = 3;  // late rounds run fully degraded
  fc.hint_exact = true;
  fc.acc_dt = mpi::Dt::Double;
  fc.acc_op = mpi::AccOp::Sum;
  fc.slot_bytes = 64;

  const int nu = fc.nusers();
  const std::size_t acc_base = static_cast<std::size_t>(nu) * fc.slot_bytes;
  const std::size_t ro_base = acc_base + fc.slot_bytes;
  for (int r = 0; r < fc.rounds; ++r) {
    for (int o = 0; o < nu; ++o) {
      for (int i = 0; i < 6; ++i) {
        check::OpRec op;
        op.origin = o;
        op.round = r;
        op.count = 1;
        op.tdt = mpi::contig(mpi::Dt::Double);
        switch ((o + i) % 3) {
          case 0:
            op.kind = mpi::OpKind::Put;
            op.target = (o + 1 + i) % nu;
            op.disp = static_cast<std::size_t>(o) * fc.slot_bytes +
                      static_cast<std::size_t>(i % 8) * 8;
            op.val = 16 * (o + 1) + i;
            break;
          case 1:
            // Self-targeted accumulate: touches only my own segment, so its
            // serialization point never spans the dead-ghost transition.
            op.kind = mpi::OpKind::Acc;
            op.aop = mpi::AccOp::Sum;
            op.target = o;
            op.disp = acc_base + static_cast<std::size_t>(i % 8) * 8;
            op.val = 1 + (i % 3);
            break;
          default:
            op.kind = mpi::OpKind::Get;
            op.target = (o + 1 + i) % nu;
            op.disp = ro_base + static_cast<std::size_t>(i % 8) * 8;
            break;
        }
        fc.ops.push_back(op);
      }
    }
  }
  return fc;
}

// Node 0's ONLY ghost dies: the node must degrade to original-MPI mode
// (ops direct to the user window), counted exactly once, contents still
// oracle-clean. Node 1 keeps redirecting throughout.
TEST(GhostFailure, LastGhostDeathDegradesToNoRedirect) {
  const std::vector<int> ghosts = ghost_ranks(2, 2, 1);
  ASSERT_EQ(ghosts.size(), 2u);
  std::uint64_t total_direct = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    check::FuzzCase fc = degraded_case(seed);
    sim::Rng rng(seed, 0xde6);
    // Early through late kills: early ones exercise mostly-degraded epochs,
    // late ones the transition mid-workload. Bounded so detection lands
    // before the run's virtual end time.
    const sim::Time at = sim::us(1) + rng.next_below(sim::us(100));
    fc.fault_plan.kills.push_back({ghosts[0], at});
    fc.fault_plan.heartbeat_period = sim::us(2);

    const check::RunOutcome out = check::run_case(fc, 0);
    EXPECT_TRUE(out.divergences.empty())
        << out.divergences.size() << " divergence(s) after last-ghost kill at "
        << sim::to_us(at) << "us";
    EXPECT_EQ(out.atomicity_violations, 0u);
    EXPECT_EQ(stat(out, "fault.kills"), 1u);
    EXPECT_EQ(stat(out, "recovery.ghost_dead"), 1u);
    EXPECT_EQ(stat(out, "recovery.degraded"), 1u)
        << "last-ghost death must degrade the node exactly once";
    total_direct += stat(out, "recovery.direct_ops");
  }
  // Across the sweep some epochs must have run in degraded direct mode.
  EXPECT_GT(total_direct, 0u);
}

// Killing BOTH of a two-ghost node (in sequence) first rebinds, then
// degrades — recovery.degraded still exactly once.
TEST(GhostFailure, SequentialKillsOfWholeNodeDegradeOnce) {
  const std::vector<int> ghosts = ghost_ranks(2, 2, 2);
  // Ghosts of node 0 are the first two (block placement).
  check::FuzzCase fc = degraded_case(7);
  fc.ghosts = 2;
  fc.fault_plan.kills.push_back({ghosts[0], sim::us(30)});
  fc.fault_plan.kills.push_back({ghosts[1], sim::us(90)});
  fc.fault_plan.heartbeat_period = sim::us(2);

  const check::RunOutcome out = check::run_case(fc, 0);
  EXPECT_TRUE(out.divergences.empty());
  EXPECT_EQ(out.atomicity_violations, 0u);
  EXPECT_EQ(stat(out, "fault.kills"), 2u);
  EXPECT_EQ(stat(out, "recovery.ghost_dead"), 2u);
  EXPECT_EQ(stat(out, "recovery.degraded"), 1u);
}

// Kills compose with a lossy network: retransmissions addressed to a dead
// ghost forward to the successor and the oracle stays clean.
TEST(GhostFailure, KillUnderLossyNetworkOracleClean) {
  const std::vector<int> ghosts = ghost_ranks(2, 2, 2);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    check::FuzzCase fc = survivor_case(seed);
    fc.fault_plan.net.drop_p = 0.2;
    fc.fault_plan.net.dup_p = 0.1;
    sim::Rng rng(seed, 0x313);
    fc.fault_plan.kills.push_back(
        {ghosts[seed % ghosts.size()],
         sim::us(2) + rng.next_below(sim::us(100))});
    fc.fault_plan.heartbeat_period = sim::us(2);
    const check::RunOutcome out = check::run_case(fc, 0);
    EXPECT_TRUE(out.divergences.empty());
    EXPECT_EQ(out.atomicity_violations, 0u);
    EXPECT_EQ(stat(out, "recovery.ghost_dead"), 1u);
  }
}

}  // namespace
