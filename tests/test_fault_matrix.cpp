// Chaos matrix: every network fault class x every RMA op kind x every
// passive/active epoch style, with the shadow-memory oracle validating every
// window byte at each synchronization point.
//
// Grid: {drop, dup, reorder, delay} x {PUT, ACC, GET_ACC, FAO, CAS}
//       x {lock, lockall, fence}.
//
// Each cell builds a small deterministic program (4 user ranks over 2 nodes)
// issuing only that op kind under that epoch style, runs it under the given
// lossy network, and requires
//   * a clean oracle (no divergence at any sync, no atomicity violation),
//   * the targeted fault class to have actually fired (the cell is vacuous
//     otherwise), and
//   * the recovery machinery's bookkeeping to be consistent (retries occur
//     whenever transmissions were dropped; dedup hits whenever an ack loss
//     or duplicate forced redelivery).
// "Reorder" is realized as a wide delay-jitter window: later sends overtake
// earlier ones, which is exactly what the sequence/dedup machinery must
// absorb (see DESIGN.md §11).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/fuzz.hpp"
#include "mpi/datatype.hpp"

using namespace casper;

namespace {

enum class FaultMode { Drop, Dup, Reorder, Delay };

const char* mode_name(FaultMode m) {
  switch (m) {
    case FaultMode::Drop: return "drop";
    case FaultMode::Dup: return "dup";
    case FaultMode::Reorder: return "reorder";
    case FaultMode::Delay: return "delay";
  }
  return "?";
}

fault::NetFaults net_for(FaultMode m) {
  fault::NetFaults n;
  switch (m) {
    case FaultMode::Drop:
      n.drop_p = 0.3;
      n.ack_drop_p = 0.2;  // losses in both directions
      break;
    case FaultMode::Dup:
      n.dup_p = 0.35;
      n.delay_min = sim::us(1);
      n.delay_max = sim::us(30);  // second-copy jitter
      break;
    case FaultMode::Reorder:
      // Jitter wider than the inter-op issue gap: later sends overtake
      // earlier ones.
      n.delay_p = 0.6;
      n.delay_min = sim::us(1);
      n.delay_max = sim::us(80);
      break;
    case FaultMode::Delay:
      n.delay_p = 0.3;
      n.delay_min = sim::us(1);
      n.delay_max = sim::us(5);
      break;
  }
  return n;
}

/// One cell's program: every origin issues `per_origin` ops of exactly
/// `kind` under `epoch`. PUTs go to per-origin-exclusive disjoint bytes;
/// accumulate-class ops Sum into the shared region (commutative, so the
/// program is schedule-invariant); CAS is order-sensitive but still
/// oracle-checkable (the oracle replays the committed order).
check::FuzzCase matrix_case(mpi::OpKind kind, check::EpochStyle epoch,
                            FaultMode mode, std::uint64_t seed) {
  check::FuzzCase fc;
  fc.seed = seed;
  fc.nodes = 2;
  fc.users_per_node = 2;
  fc.ghosts = 1;
  fc.binding = core::Binding::Rank;
  fc.epoch = epoch;
  fc.rounds = 1;
  fc.hint_exact = true;
  fc.acc_dt = mpi::Dt::Double;
  fc.acc_op = mpi::AccOp::Sum;
  fc.order_sensitive = kind == mpi::OpKind::Cas;
  fc.slot_bytes = 64;
  fc.fault_plan.seed = seed * 2654435761u + 17;
  fc.fault_plan.net = net_for(mode);

  const int nu = fc.nusers();
  const std::size_t acc_base = static_cast<std::size_t>(nu) * fc.slot_bytes;
  const int per_origin = 8;
  for (int o = 0; o < nu; ++o) {
    for (int i = 0; i < per_origin; ++i) {
      check::OpRec op;
      op.kind = kind;
      op.origin = o;
      op.target = (o + 1 + i) % nu;
      op.round = 0;
      op.count = 1;
      op.tdt = mpi::contig(mpi::Dt::Double);
      switch (kind) {
        case mpi::OpKind::Put:
          // My exclusive slot on the target, a fresh 8-byte lane per op.
          op.disp = static_cast<std::size_t>(o) * fc.slot_bytes +
                    static_cast<std::size_t>(i % 8) * 8;
          op.val = 16 * (o + 1) + i;
          break;
        case mpi::OpKind::Acc:
        case mpi::OpKind::GetAcc:
          op.aop = mpi::AccOp::Sum;
          op.disp = acc_base + static_cast<std::size_t>(i % 8) * 8;
          op.val = 1 + ((o + i) % 4);
          break;
        case mpi::OpKind::Fao:
          op.aop = mpi::AccOp::Sum;
          op.disp = acc_base + static_cast<std::size_t>(o % 8) * 8;
          op.val = 1 + (i % 4);
          break;
        case mpi::OpKind::Cas:
          op.aop = mpi::AccOp::Replace;
          op.disp = acc_base;
          op.val = 7 * o + i;
          break;
        default:
          break;
      }
      fc.ops.push_back(op);
    }
  }
  return fc;
}

std::uint64_t stat(const check::RunOutcome& out, const char* key) {
  auto it = out.fault_stats.find(key);
  return it == out.fault_stats.end() ? 0 : it->second;
}

void run_cell(FaultMode mode, mpi::OpKind kind, check::EpochStyle epoch) {
  SCOPED_TRACE(std::string(mode_name(mode)) + " x kind " +
               std::to_string(static_cast<int>(kind)) + " x " +
               check::to_string(epoch));
  const std::uint64_t seed = 1000 + 100 * static_cast<std::uint64_t>(mode) +
                             10 * static_cast<std::uint64_t>(kind) +
                             static_cast<std::uint64_t>(epoch);
  const check::FuzzCase fc = matrix_case(kind, epoch, mode, seed);
  const check::RunOutcome out = check::run_case(fc, /*perturb_seed=*/0);

  EXPECT_TRUE(out.divergences.empty())
      << out.divergences.size() << " oracle divergence(s), first at "
      << (out.divergences.empty() ? "" : out.divergences[0].where);
  EXPECT_EQ(out.atomicity_violations, 0u);
  EXPECT_GT(out.commits, 0u);

  // The cell must have exercised its fault class, and the recovery
  // bookkeeping must be consistent with it.
  switch (mode) {
    case FaultMode::Drop:
      EXPECT_GT(stat(out, "fault.drops") + stat(out, "fault.ack_drops"), 0u);
      EXPECT_GT(stat(out, "fault.retries"), 0u);
      break;
    case FaultMode::Dup:
      EXPECT_GT(stat(out, "fault.dups"), 0u);
      EXPECT_GT(stat(out, "fault.dedup_hits"), 0u);
      break;
    case FaultMode::Reorder:
    case FaultMode::Delay:
      EXPECT_GT(stat(out, "fault.delays"), 0u);
      break;
  }
}

class FaultMatrix : public ::testing::TestWithParam<FaultMode> {};

TEST_P(FaultMatrix, AllOpKindsAllEpochsOracleClean) {
  for (mpi::OpKind kind :
       {mpi::OpKind::Put, mpi::OpKind::Acc, mpi::OpKind::GetAcc,
        mpi::OpKind::Fao, mpi::OpKind::Cas}) {
    for (check::EpochStyle epoch :
         {check::EpochStyle::Lock, check::EpochStyle::LockAll,
          check::EpochStyle::Fence}) {
      run_cell(GetParam(), kind, epoch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FaultMatrix,
                         ::testing::Values(FaultMode::Drop, FaultMode::Dup,
                                           FaultMode::Reorder,
                                           FaultMode::Delay),
                         [](const auto& info) {
                           return std::string(mode_name(info.param));
                         });

// Determinism: the same faulted cell run twice is bit-identical — fault
// verdicts are a pure function of (plan seed, opid, attempt), never of host
// state.
TEST(FaultMatrixDeterminism, SameSeedSameOutcome) {
  const check::FuzzCase fc = matrix_case(
      mpi::OpKind::Acc, check::EpochStyle::LockAll, FaultMode::Drop, 42);
  const check::RunOutcome a = check::run_case(fc, 0);
  const check::RunOutcome b = check::run_case(fc, 0);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.fault_stats, b.fault_stats);
}

// Schedule invariance of the fault.* counters: verdicts key on the opid
// set, which a fiber-schedule perturbation does not change.
TEST(FaultMatrixDeterminism, FaultCountersScheduleInvariant) {
  const check::FuzzCase fc = matrix_case(
      mpi::OpKind::Put, check::EpochStyle::Fence, FaultMode::Dup, 43);
  const check::RunOutcome a = check::run_case(fc, 0);
  const check::RunOutcome b =
      check::run_case(fc, check::perturb_for(fc.seed, 1));
  for (const char* key : {"fault.drops", "fault.dups", "fault.delays",
                          "fault.ack_drops"}) {
    auto av = a.fault_stats.find(key);
    auto bv = b.fault_stats.find(key);
    EXPECT_EQ(av == a.fault_stats.end() ? 0 : av->second,
              bv == b.fault_stats.end() ? 0 : bv->second)
        << key;
  }
  EXPECT_EQ(a.content_hash, b.content_hash);
}

}  // namespace
