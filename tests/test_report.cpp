// Unit tests for the report stack: the table printer (alignment, CSV,
// ragged rows) and the BENCH_*.json writer (numeric cell detection, the
// embedded obs metrics block).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "report/json.hpp"
#include "report/table.hpp"

using namespace casper;

TEST(Table, AccessorsExposeHeadersAndRows) {
  report::Table t({"x", "y"});
  t.row({"1", "2"});
  t.row({"3", "4"});
  ASSERT_EQ(t.headers().size(), 2u);
  EXPECT_EQ(t.headers()[1], "y");
  ASSERT_EQ(t.rows().size(), 2u);
  EXPECT_EQ(t.rows()[1][0], "3");
}

TEST(Table, AlignedOutputPadsToWidestCell) {
  report::Table t({"id", "value"});
  t.row({"1", "short"});
  t.row({"22", "a-much-longer-cell"});
  std::ostringstream os;
  t.print(os, false);
  const std::string s = os.str();
  // Header row, separator, two data rows.
  EXPECT_NE(s.find("  id  value"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-cell"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream is(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, CsvOutput) {
  report::Table t({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print(os, true);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RaggedRowRendersShortCellsEmpty) {
  report::Table t({"a", "b"});
  t.row({"only"});
  std::ostringstream os;
  t.print(os, false);  // must not crash or read out of range
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Fmt, TrimsAndCounts) {
  EXPECT_EQ(report::fmt(3.14159, 3), "3.142");
  EXPECT_EQ(report::fmt(2.0, 0), "2");
  EXPECT_EQ(report::fmt_count(0), "0");
  EXPECT_EQ(report::fmt_count(123456789), "123456789");
}

TEST(BenchJson, NumericCellsUnquotedStringsQuoted) {
  report::Table t({"wait(us)", "mode"});
  t.row({"4", "casper"});
  t.row({"12.5", "say \"hi\""});
  std::ostringstream os;
  report::write_bench_json(os, "unit", t, nullptr);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(s.find("[4, \"casper\"]"), std::string::npos);
  EXPECT_NE(s.find("[12.5, \"say \\\"hi\\\"\"]"), std::string::npos);
  EXPECT_NE(s.find("\"wait(us)\""), std::string::npos);
  // Null metrics -> empty object, still valid JSON.
  EXPECT_NE(s.find("\"metrics\": {}"), std::string::npos);
}

TEST(BenchJson, EmbedsMetricsBlock) {
  report::Table t({"a"});
  t.row({"1"});
  obs::Metrics m;
  m.counter("ops.issued") = 16;
  m.histogram("redirect_bytes").add(8);
  std::ostringstream os;
  report::write_bench_json(os, "unit", t, &m);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"ops.issued\": 16"), std::string::npos);
  EXPECT_NE(s.find("\"redirect_bytes\""), std::string::npos);
  EXPECT_NE(s.find("\"buckets\": [[3, 1]]"), std::string::npos);
}

TEST(BenchJson, FileWriterRejectsBadPath) {
  report::Table t({"a"});
  EXPECT_FALSE(report::write_bench_json_file("/nonexistent-dir/x.json",
                                             "unit", t, nullptr));
}
