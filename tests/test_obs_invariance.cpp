// Perturbed-schedule invariance of the obs metrics.
//
// The same program run under different legal fiber schedules
// (RunConfig::perturb_seed) must produce identical counter totals — op
// routing, per-ghost work, and sync counts are properties of the program,
// not of the interleaving. Traces, by contrast, SHOULD differ (they record
// the interleaving itself), which is also asserted so a broken perturb_seed
// can't make this test pass vacuously.
//
// Histograms of virtual-time latencies (sync_ns.*, ghost_service_ns) are
// deliberately excluded: epoch timing depends on the schedule.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "check/race.hpp"
#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "obs/record.hpp"

using namespace casper;

namespace {

// 4 user ranks (2 nodes x 2 users + 1 ghost each): every user puts to its
// own slot on every peer and accumulates into a shared cell, under lockall.
void workload(mpi::Env& env) {
  mpi::Comm w = env.world();
  const int n = env.size(w);
  const int me = env.rank(w);
  void* base = nullptr;
  const std::size_t slots = static_cast<std::size_t>(n) + 1;
  mpi::Win win = env.win_allocate(slots * sizeof(double), sizeof(double),
                                  mpi::Info{}, w, &base);
  for (int round = 0; round < 2; ++round) {
    env.barrier(w);
    env.win_lock_all(0, win);
    for (int peer = 0; peer < n; ++peer) {
      if (peer == me) continue;
      double v = me * 100.0 + round;
      env.put(&v, 1, peer, static_cast<std::size_t>(me), win);
      env.accumulate(&v, 1, peer, static_cast<std::size_t>(n),
                     mpi::AccOp::Sum, win);
    }
    env.win_unlock_all(win);
  }
  env.win_free(win);
}

struct Observed {
  std::map<std::string, std::uint64_t> counters;
  std::string trace_text;
};

Observed run_once(std::uint64_t perturb) {
  obs::Recorder rec;
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 3;  // 2 users + 1 ghost per node
  rc.seed = 12345;
  rc.perturb_seed = perturb;
  rc.recorder = &rec;
  core::Config cc;
  cc.ghosts_per_node = 1;
  // The race analyzer rides along so its race.* counters (accesses, epochs)
  // join the exact-match invariance set below.
  check::RaceAnalyzer race;
  race.set_recorder(&rec);
  mpi::Runtime rt(rc, workload, core::layer(cc));
  rt.add_observer(&race);
  rt.run();
  Observed out;
  out.counters = rec.metrics().counters();
  // "pool.*" counters report host-side buffer reuse, which legitimately
  // depends on the interleaving (which staging buffer is free when) — they
  // are outside the invariance contract, like the latency histograms.
  for (auto it = out.counters.begin(); it != out.counters.end();) {
    it = it->first.rfind("pool.", 0) == 0 ? out.counters.erase(it)
                                          : std::next(it);
  }
  std::ostringstream os;
  rec.trace().export_text(os);
  out.trace_text = os.str();
  return out;
}

}  // namespace

TEST(ObsInvariance, CountersIdenticalAcrossEightSchedules) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with CASPER_TRACE=0";
  const Observed ref = run_once(0);

  // The workload must actually exercise the Casper paths being counted.
  EXPECT_GT(ref.counters.at("casper.redirected_ops"), 0u);
  EXPECT_GT(ref.counters.at("ops.issued"), 0u);
  bool saw_ghost_key = false;
  for (const auto& [name, v] : ref.counters) {
    if (name.rfind("ghost.", 0) == 0) {
      saw_ghost_key = true;
      EXPECT_GT(v, 0u) << name;
    }
  }
  EXPECT_TRUE(saw_ghost_key);
  if (mpi::kRaceObsCompiled) {
    // The analyzer recorded accesses and epochs — and they join the
    // exact-match comparison like every other counter.
    EXPECT_GT(ref.counters.at("race.accesses"), 0u);
    EXPECT_GT(ref.counters.at("race.epochs"), 0u);
    EXPECT_EQ(ref.counters.count("race.conflict_pairs"), 0u)
        << "clean workload must not raise conflicts";
  }

  std::set<std::string> distinct_traces;
  distinct_traces.insert(ref.trace_text);
  for (std::uint64_t s = 1; s < 8; ++s) {
    const Observed r = run_once(0x9e3779b97f4a7c15ull * s);
    EXPECT_EQ(r.counters, ref.counters) << "perturb schedule " << s;
    distinct_traces.insert(r.trace_text);
  }
  // Schedules really were perturbed: the interleaving-sensitive trace
  // changed at least once across the eight runs.
  EXPECT_GE(distinct_traces.size(), 2u);
}

TEST(ObsInvariance, SameScheduleIsByteIdentical) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with CASPER_TRACE=0";
  const Observed a = run_once(7);
  const Observed b = run_once(7);
  EXPECT_EQ(a.trace_text, b.trace_text);
  EXPECT_EQ(a.counters, b.counters);
}
