// Sharded-engine tests: shard-count invariance of virtual-time results,
// run-to-run determinism under real worker threads, cross-shard event homing
// (wake_at / homed post_event), the calendar's far-event spill path, and
// per-shard stats merging. The shards=1 row of every sweep runs the classic
// single-threaded scheduler, so equality across the sweep is exactly the
// cross-shard-count determinism contract from DESIGN.md §12.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace {

using namespace casper;
using sim::Engine;
using sim::Time;

// A fig5-style neighbor-exchange at engine level: every rank repeatedly
// sends a "message" (a homed event that bumps the peer's inbox and wakes
// it) to a distant peer — distant so that block-partitioned shards see
// cross-shard traffic — then waits for its own expected deliveries. All
// delays are >= the configured lookahead, as the runtime's network-latency
// floor guarantees in the real stack.
struct ExchangeResult {
  std::vector<Time> final_now;
  // Per rank, commutative over deliveries: the *set* of (time, sender)
  // deliveries is a virtual-time fact and must be shard-count-invariant;
  // their order at equal timestamps is legitimately tie-dependent.
  std::vector<std::uint64_t> delivery_hash;
  std::uint64_t stats_messages = 0;
  Time horizon = 0;

  bool operator==(const ExchangeResult& o) const {
    return final_now == o.final_now && delivery_hash == o.delivery_hash &&
           stats_messages == o.stats_messages && horizon == o.horizon;
  }
};

ExchangeResult run_exchange(int nranks, int shards, int iters) {
  ExchangeResult res;
  res.final_now.assign(static_cast<std::size_t>(nranks), 0);
  res.delivery_hash.assign(static_cast<std::size_t>(nranks), 0);
  std::vector<int> inbox(static_cast<std::size_t>(nranks), 0);

  Engine::Options o;
  o.nranks = nranks;
  o.shards = shards;
  o.lookahead = sim::ns(1000);
  Engine e(o, [&, iters](sim::Context& ctx) {
    const int r = ctx.rank();
    const int n = ctx.size();
    Engine& eng = ctx.engine();
    for (int it = 0; it < iters; ++it) {
      const int peer = (r + n / 2 + it) % n;
      // Delivery strictly after the lookahead horizon, with a deterministic
      // per-(rank, iter) jitter so timestamps collide across shards too.
      const Time dt = sim::ns(1200 + 10 * ((r * 7 + it * 3) % 5));
      const Time at = ctx.now() + dt;
      eng.post_event(at, peer, [&, peer, at, r] {
        inbox[static_cast<std::size_t>(peer)]++;
        res.delivery_hash[static_cast<std::size_t>(peer)] +=
            static_cast<std::uint64_t>(at) * 1000003u +
            static_cast<std::uint64_t>(r) * 2654435761u;
        eng.wake_at(peer, at);
      });
      eng.stats_local().counter("test.messages")++;
      // Wait for this iteration's own delivery.
      while (inbox[static_cast<std::size_t>(r)] <= it) eng.block_self();
      ctx.advance(sim::ns(50 + (r % 3)));
    }
    res.final_now[static_cast<std::size_t>(r)] = ctx.now();
  });
  e.run();
  res.stats_messages = e.stats().get("test.messages");
  res.horizon = e.horizon();
  return res;
}

TEST(SimEngineSharded, ShardCountInvariantExchange) {
  const ExchangeResult base = run_exchange(32, 1, 12);
  EXPECT_EQ(base.stats_messages, 32u * 12u);
  for (int shards : {2, 4, 8}) {
    const ExchangeResult r = run_exchange(32, shards, 12);
    EXPECT_EQ(base, r) << "shards=" << shards
                       << " diverged from the single-shard result";
  }
}

TEST(SimEngineSharded, RunToRunDeterministicWithWorkerThreads) {
  const ExchangeResult a = run_exchange(24, 4, 10);
  const ExchangeResult b = run_exchange(24, 4, 10);
  EXPECT_EQ(a, b);
}

TEST(SimEngineSharded, ShardsClampedToRanks) {
  // More shards than ranks degrades to one rank per shard, not an abort.
  const ExchangeResult a = run_exchange(4, 1, 6);
  const ExchangeResult b = run_exchange(4, 8, 6);
  EXPECT_EQ(a, b);
}

TEST(SimEngineSharded, HomedPostAndWakeAtCrossShard) {
  // Rank 0 (shard 0) arms a delivery for the last rank (last shard); the
  // receiver must observe it at exactly the posted virtual time.
  Time delivered_at = 0;
  Time woke_at = 0;
  Engine::Options o;
  o.nranks = 16;
  o.shards = 4;
  o.lookahead = sim::ns(500);
  bool flag = false;
  Engine e(o, [&](sim::Context& ctx) {
    if (ctx.rank() == 0) {
      const Time at = sim::ns(2000);
      ctx.engine().post_event(at, 15, [&, at] {
        delivered_at = at;
        flag = true;
        ctx.engine().wake_at(15, at);
      });
    } else if (ctx.rank() == 15) {
      while (!flag) ctx.engine().block_self();
      woke_at = ctx.now();
    }
  });
  e.run();
  EXPECT_EQ(delivered_at, sim::ns(2000));
  EXPECT_EQ(woke_at, sim::ns(2000));
}

TEST(SimEngineSharded, FarEventsBeyondCalendarSpanExecuteInOrder) {
  // Mix near (in the 4096 ns calendar span) and far (spill heap, several
  // rebase-jumps apart) events on one shard and verify execution order.
  for (int shards : {1, 2}) {
    std::vector<Time> seen;
    Engine::Options o;
    o.nranks = 2;
    o.shards = shards;
    o.lookahead = sim::ns(100);
    Engine e(o, [&](sim::Context& ctx) {
      if (ctx.rank() != 0) return;
      Engine& eng = ctx.engine();
      for (Time t : {sim::ms(20), sim::ns(200), sim::ms(5), sim::ns(4000),
                     sim::us(500), sim::ns(150)}) {
        eng.post_event(t, 0, [&seen, t] { seen.push_back(t); });
      }
      ctx.advance(sim::ms(25));
    });
    e.run();
    const std::vector<Time> want = {sim::ns(150),  sim::ns(200),
                                    sim::ns(4000), sim::us(500),
                                    sim::ms(5),    sim::ms(20)};
    EXPECT_EQ(seen, want) << "shards=" << shards;
    EXPECT_EQ(e.horizon(), sim::ms(25));
  }
}

TEST(SimEngineSharded, OverdueLocalPostAfterBaseAdvance) {
  // A rank whose virtual clock lags the shard's event frontier gets woken,
  // then posts a short-delay local event *below* the calendar base. Such
  // "overdue" events must still execute (they pop from the spill heap); a
  // base-relative calendar would strand them and deadlock. Exercised for
  // the single-shard calendar and a sharded run.
  for (int shards : {1, 2}) {
    Time hit_at = 0;
    bool woken = false;
    bool hit = false;
    Engine::Options o;
    o.nranks = 4;  // shards=2: ranks {0,1} on shard 0
    o.shards = shards;
    o.lookahead = sim::us(1);
    Engine e(o, [&](sim::Context& ctx) {
      Engine& eng = ctx.engine();
      if (ctx.rank() == 0) {
        // Arm the far-future waker, then move well past it so the event
        // frontier (and with it the calendar base) advances to ns(5000).
        eng.post_event(sim::ns(5000), 0, [&] {
          woken = true;
          eng.wake(1, sim::ns(15));  // below rank 1's own clock? no: above
        });
        ctx.advance(sim::ns(6000));
      } else if (ctx.rank() == 1) {
        ctx.advance(sim::ns(10));
        while (!woken) eng.block_self();
        // Resumed at our lagging clock (ns(15)), far below base ~ ns(5000).
        EXPECT_EQ(ctx.now(), sim::ns(15));
        const Time at = ctx.now() + sim::ns(10);
        eng.post_event(at, 1, [&, at] {
          hit = true;
          eng.wake_at(1, at);
        });
        while (!hit) eng.block_self();
        hit_at = ctx.now();
      }
    });
    e.run();
    EXPECT_TRUE(hit) << "shards=" << shards;
    EXPECT_EQ(hit_at, sim::ns(25)) << "shards=" << shards;
  }
}

TEST(SimEngineSharded, PerShardStatsMergeIntoEngineTotals) {
  for (int shards : {1, 4}) {
    Engine::Options o;
    o.nranks = 16;
    o.shards = shards;
    Engine e(o, [](sim::Context& ctx) {
      for (int i = 0; i <= ctx.rank(); ++i) {
        ctx.engine().stats_local().counter("test.work")++;
      }
    });
    e.run();
    // sum 1..16
    EXPECT_EQ(e.stats().get("test.work"), 136u) << "shards=" << shards;
  }
}

TEST(SimEngineSharded, ClampLookaheadOnlyShrinks) {
  Engine::Options o;
  o.nranks = 4;
  o.shards = 2;
  o.lookahead = sim::us(2);
  Engine e(o, [](sim::Context&) {});
  EXPECT_EQ(e.lookahead(), sim::us(2));
  e.clamp_lookahead(sim::us(3));  // larger: no-op
  EXPECT_EQ(e.lookahead(), sim::us(2));
  e.clamp_lookahead(sim::ns(700));
  EXPECT_EQ(e.lookahead(), sim::ns(700));
  e.run();
}

}  // namespace
