// White-box demonstration of the hazard Casper's static binding prevents
// (paper Section III.B): if operations targeting the same memory are
// processed concurrently by *different* entities without a common lock
// domain, MPI's accumulate atomicity breaks — updates are lost — and the
// runtime's checker reports it.
//
// We construct the hazard directly in minimpi by exposing the SAME buffer
// through two windows with different target ranks (exactly what Casper's
// overlapping ghost windows do), then driving concurrent accumulates through
// both paths with no binding discipline.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

RunConfig cfg(int nodes, int cpn) {
  RunConfig c;
  c.machine.profile = net::cray_xc30_regular();
  c.machine.topo.nodes = nodes;
  c.machine.topo.cores_per_node = cpn;
  return c;
}

TEST(AtomicityHazard, UnboundConcurrentAccumulatesLoseUpdatesAndAreDetected) {
  // Ranks 0,1 act as "ghosts" both exposing rank 0's buffer; ranks 2,3 are
  // origins that accumulate through DIFFERENT ghosts into the same bytes.
  double final_value = 0;
  std::uint64_t violations = 0;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    static std::vector<double> shared_buf;  // rank 0's exposed memory
    if (env.rank(w) == 0) shared_buf.assign(1, 0.0);
    env.barrier(w);

    // Both "ghosts" (ranks 0 and 1, same node) expose the same buffer.
    const bool ghostish = env.rank(w) < 2;
    void* mybase = ghostish ? shared_buf.data() : nullptr;
    const std::size_t mysize = ghostish ? sizeof(double) : 0;
    Win win = env.win_create(mybase, mysize, sizeof(double), Info{}, w);

    env.barrier(w);
    if (env.rank(w) >= 2) {
      const int my_ghost = env.rank(w) - 2;  // origin 2 -> ghost 0, 3 -> 1
      env.win_lock(LockType::Shared, my_ghost, 0, win);
      double one = 1.0;
      for (int i = 0; i < 50; ++i) {
        env.accumulate(&one, 1, my_ghost, 0, AccOp::Sum, win);
      }
      env.win_unlock(my_ghost, win);
    } else {
      // The ghosts make progress (they are in the MPI runtime).
      env.barrier(env.world());
    }
    if (env.rank(w) >= 2) env.barrier(env.world());
    env.barrier(w);
    if (env.rank(w) == 0) {
      final_value = shared_buf[0];
      violations = env.runtime().stats().get("atomicity_violations");
    }
    env.win_free(win);
  });
  // 100 increments were issued; interleaved unsynchronized RMW loses some.
  EXPECT_LT(final_value, 100.0);
  EXPECT_GT(violations, 0u);
}

TEST(AtomicityHazard, SameProcessingEntityStaysExact) {
  // Control: both origins accumulate through the SAME target (rank binding
  // discipline): serialization at one entity keeps the result exact.
  double final_value = 0;
  std::uint64_t violations = 1;
  mpi::exec(cfg(2, 2), [&](mpi::Env& env) {
    Comm w = env.world();
    static std::vector<double> shared_buf;
    if (env.rank(w) == 0) shared_buf.assign(1, 0.0);
    env.barrier(w);
    const bool ghostish = env.rank(w) < 2;
    void* mybase = ghostish ? shared_buf.data() : nullptr;
    const std::size_t mysize = ghostish ? sizeof(double) : 0;
    Win win = env.win_create(mybase, mysize, sizeof(double), Info{}, w);
    env.barrier(w);
    if (env.rank(w) >= 2) {
      env.win_lock(LockType::Shared, 0, 0, win);  // everyone via ghost 0
      double one = 1.0;
      for (int i = 0; i < 50; ++i) {
        env.accumulate(&one, 1, 0, 0, AccOp::Sum, win);
      }
      env.win_unlock(0, win);
    } else {
      env.barrier(env.world());
    }
    if (env.rank(w) >= 2) env.barrier(env.world());
    env.barrier(w);
    if (env.rank(w) == 0) {
      final_value = shared_buf[0];
      violations = env.runtime().stats().get("atomicity_violations");
    }
    env.win_free(win);
  });
  EXPECT_EQ(final_value, 100.0);
  EXPECT_EQ(violations, 0u);
}

}  // namespace
