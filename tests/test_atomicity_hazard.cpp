// White-box demonstration of the hazard Casper's static binding prevents
// (paper Section III.B): if operations targeting the same memory are
// processed concurrently by *different* entities without a common lock
// domain, MPI's accumulate atomicity breaks — updates are lost — and the
// runtime's checker reports it.
//
// We construct the hazard directly in minimpi by exposing the SAME buffer
// through two windows with different target ranks (exactly what Casper's
// overlapping ghost windows do), then driving concurrent accumulates through
// both paths with no binding discipline.
//
// Determinism: instead of trusting one lucky default interleaving, the tests
// sweep the engine's schedule-perturbation seed (RunConfig::perturb_seed).
// The hazard must be DETECTED under every legal schedule (the checker is
// interval-based, not luck-based), each run must be bit-reproducible for its
// seed, and the bound control must stay exact under all of them.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"
#include "net/profile.hpp"

namespace {

using namespace casper;
using mpi::AccOp;
using mpi::Comm;
using mpi::Dt;
using mpi::Info;
using mpi::LockType;
using mpi::RunConfig;
using mpi::Win;

struct HazardResult {
  double final_value = -1.0;
  std::uint64_t violations = 0;

  bool operator==(const HazardResult&) const = default;
};

/// Ranks 0,1 act as "ghosts" both exposing rank 0's buffer; ranks 2,3 are
/// origins. With `bind_same_entity` both origins accumulate through ghost 0
/// (the binding discipline); otherwise each uses a different ghost and the
/// unsynchronized RMW interleaving loses updates.
HazardResult run_hazard(bool bind_same_entity, std::uint64_t perturb_seed) {
  RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 2;
  rc.perturb_seed = perturb_seed;
  HazardResult res;
  mpi::exec(rc, [&](mpi::Env& env) {
    Comm w = env.world();
    static std::vector<double> shared_buf;  // rank 0's exposed memory
    if (env.rank(w) == 0) shared_buf.assign(1, 0.0);
    env.barrier(w);

    // Both "ghosts" (ranks 0 and 1, same node) expose the same buffer.
    const bool ghostish = env.rank(w) < 2;
    void* mybase = ghostish ? shared_buf.data() : nullptr;
    const std::size_t mysize = ghostish ? sizeof(double) : 0;
    Win win = env.win_create(mybase, mysize, sizeof(double), Info{}, w);

    env.barrier(w);
    if (env.rank(w) >= 2) {
      const int my_ghost = bind_same_entity ? 0 : env.rank(w) - 2;
      env.win_lock(LockType::Shared, my_ghost, 0, win);
      double one = 1.0;
      for (int i = 0; i < 50; ++i) {
        env.accumulate(&one, 1, my_ghost, 0, AccOp::Sum, win);
      }
      env.win_unlock(my_ghost, win);
    } else {
      // The ghosts make progress (they are in the MPI runtime).
      env.barrier(env.world());
    }
    if (env.rank(w) >= 2) env.barrier(env.world());
    env.barrier(w);
    if (env.rank(w) == 0) {
      res.final_value = shared_buf[0];
      res.violations = env.runtime().stats().get("atomicity_violations");
    }
    env.win_free(win);
  });
  return res;
}

constexpr std::uint64_t kPerturbSeeds[] = {0, 0x1d, 0xbeef, 0xf00dcafe,
                                           0x123456789abcdefULL};

TEST(AtomicityHazard, UnboundConcurrentAccumulatesDetectedUnderAllSchedules) {
  for (const std::uint64_t p : kPerturbSeeds) {
    const HazardResult r = run_hazard(/*bind_same_entity=*/false, p);
    // 100 increments were issued; the interval checker must flag the
    // overlapping unsynchronized RMWs whatever the tie-break order, and
    // lost updates can never push the result past the exact sum.
    EXPECT_GT(r.violations, 0u) << "perturb " << p;
    EXPECT_LE(r.final_value, 100.0) << "perturb " << p;
    // Same program + same schedule seed = bit-identical outcome.
    EXPECT_EQ(run_hazard(false, p), r) << "perturb " << p;
  }
}

TEST(AtomicityHazard, LostUpdatesManifestUnderSomeSchedule) {
  // The value loss itself IS schedule-dependent — that is the point of the
  // hazard. Sweeping seeds must surface at least one interleaving that
  // actually drops updates (deterministically reproducible by its seed).
  bool lost_somewhere = false;
  for (const std::uint64_t p : kPerturbSeeds) {
    if (run_hazard(false, p).final_value < 100.0) {
      lost_somewhere = true;
      break;
    }
  }
  EXPECT_TRUE(lost_somewhere);
}

TEST(AtomicityHazard, SameProcessingEntityStaysExactUnderAllSchedules) {
  // Control: with the binding discipline (everyone through ghost 0), the
  // result is exact and the checker silent under every schedule.
  for (const std::uint64_t p : kPerturbSeeds) {
    const HazardResult r = run_hazard(/*bind_same_entity=*/true, p);
    EXPECT_EQ(r.final_value, 100.0) << "perturb " << p;
    EXPECT_EQ(r.violations, 0u) << "perturb " << p;
  }
}

}  // namespace
