#!/usr/bin/env bash
# Rebuild the golden-trace binary and refresh tests/golden/fig4a_trace.txt.
#
# Run this ONLY when a trace change is intentional (new events, changed op
# routing, changed virtual-time costs), then review the golden diff like any
# other code change — it IS the observable behaviour of the runtime.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j"$(nproc 2>/dev/null || echo 4)" \
  --target test_trace_golden
"./$BUILD/tests/test_trace_golden" --update
git --no-pager diff --stat tests/golden/ || true
echo "review the diff above, then commit tests/golden/fig4a_trace.txt"
