#!/usr/bin/env bash
# Perf-regression gate ("ratchet") over the committed BENCH_*.json baselines.
#
#   scripts/bench.sh              run benches best-of-N, fail on regression
#   scripts/bench.sh --update     re-baseline: install the best run's JSON
#                                 as the new committed BENCH_*.json
#
# Runs the engine scheduler bench plus the fig4a/fig6a figure benches. The
# figure benches' virtual-time rows and obs counters must match the
# baselines exactly (they are deterministic simulation facts); only the
# host-side wall-clock numbers get a tolerance band. See
# scripts/bench_compare.py for the exact contract.
#
# Env knobs:
#   BENCH_RUNS  best-of-N run count            (default 3)
#   BENCH_TOL   fractional host tolerance band (default 0.25)
#   BUILD       build directory                (default build)
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT=$(pwd)

BUILD=${BUILD:-build}
RUNS=${BENCH_RUNS:-3}
TOL=${BENCH_TOL:-0.25}
JOBS=$(nproc 2>/dev/null || echo 4)

UPDATE=""
if [[ "${1:-}" == "--update" ]]; then UPDATE="--update"; fi

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target engine_throughput \
  fig4a_passive_overlap fig6a_rank_binding_procs fig_kv \
  ablation_adaptive >/dev/null

OUT="$ROOT/$BUILD/bench_out"
rm -rf "$OUT"
for r in $(seq 1 "$RUNS"); do
  d="$OUT/run$r"
  mkdir -p "$d"
  echo "== bench.sh: run $r/$RUNS =="
  "$ROOT/$BUILD/bench/engine_throughput" --out "$d/BENCH_engine.json" \
    >/dev/null
  (cd "$d" && "$ROOT/$BUILD/bench/fig4a_passive_overlap" --json >/dev/null)
  (cd "$d" && "$ROOT/$BUILD/bench/fig6a_rank_binding_procs" --json >/dev/null)
  (cd "$d" && "$ROOT/$BUILD/bench/fig_kv" --json >/dev/null)
  (cd "$d" && "$ROOT/$BUILD/bench/ablation_adaptive" --json >/dev/null)
done

python3 scripts/bench_compare.py --runs-dir "$OUT" --baseline-dir "$ROOT" \
  --tol "$TOL" $UPDATE
