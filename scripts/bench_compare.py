#!/usr/bin/env python3
"""Compare freshly-run BENCH_*.json files against committed baselines.

The ratchet contract (see DESIGN.md "Hot-path memory model"):
  - Virtual-time results -- the "rows" of the figure benches and every
    "metrics" counter/histogram -- are deterministic facts of the simulation
    and must match the baseline EXACTLY. Any drift means behavior changed,
    which belongs in a deliberate re-baseline, never in noise.
  - Host-side numbers -- engine switches/events per second and the figure
    benches' "host" blocks -- are wall-clock measurements and are compared
    with a tolerance band (--tol, fractional). Rates must not drop below
    baseline*(1-tol); latencies must not rise above baseline*(1+tol).
  - Best-of-N: every bench is run N times (the run*/ directories); the best
    host number across runs is the one compared, so a single noisy run never
    fails the gate.

--update installs the best run's file as the new committed baseline instead
of comparing (the intentional re-baseline path).
"""

import argparse
import json
import os
import shutil
import sys

BENCHES = ["engine", "fig4a", "fig6a", "kv", "adaptive"]


def load(path):
    with open(path) as f:
        return json.load(f)


def fail(msg):
    print(f"bench_compare: FAIL: {msg}")
    return 1


def engine_host_score(doc):
    return sum(r["events_per_sec"] for r in doc["results"])


def fig_host_ms(doc):
    return doc.get("host", {}).get("casper_sweep_ms")


def best_run(name, docs):
    """Index of the run with the best host-side result."""
    if name == "engine":
        return max(range(len(docs)), key=lambda i: engine_host_score(docs[i]))
    with_host = [i for i in range(len(docs)) if fig_host_ms(docs[i]) is not None]
    if not with_host:
        return 0
    return min(with_host, key=lambda i: fig_host_ms(docs[i]))


def compare_exact(name, what, new, old):
    if new != old:
        return fail(
            f"{name}: {what} diverged from baseline (virtual-time results "
            f"must be byte-stable; re-baseline deliberately with "
            f"'scripts/bench.sh --update' if this change is intended)"
        )
    return 0


def compare_engine(docs, base, tol):
    rc = 0
    # Virtual-time facts: the instrumented mini-run's counters.
    best = docs[best_run("engine", docs)]
    rc |= compare_exact("engine", "metrics", best.get("metrics"),
                        base.get("metrics"))
    by_rank_base = {r["nranks"]: r for r in base["results"]}
    for n, br in sorted(by_rank_base.items()):
        for key in ("switches_per_sec", "events_per_sec"):
            cand = max(
                r[key]
                for doc in docs
                for r in doc["results"]
                if r["nranks"] == n
            )
            floor = br[key] * (1.0 - tol)
            status = "ok" if cand >= floor else "REGRESSION"
            print(
                f"  engine nranks={n:<5} {key:<17} "
                f"base={br[key]:>12.0f} best={cand:>12.0f} "
                f"({cand / br[key] * 100.0 - 100.0:+6.1f}%)  {status}"
            )
            if cand < floor:
                rc |= fail(
                    f"engine: {key} at nranks={n} regressed beyond "
                    f"{tol:.0%}: {cand:.0f} < {floor:.0f}"
                )
    rc |= compare_shard_sweep(docs, base, tol)
    return rc


def compare_shard_sweep(docs, base, tol):
    """Gate the sharded-scheduler sweep on SAME-RUN speedup, not absolute
    rates: events_per_sec(shards>=4) / events_per_sec(shards=1) within one
    run must reach 2.5x (with the --tol band), best-of-N across runs.

    Absolute event rates on shared hosts drift by up to ~2x between clock
    epochs (frequency scaling / noisy neighbors), so an absolute floor on
    the sweep rows would flake in either direction. The within-run ratio
    cancels the host clock and is the quantity the sharded scheduler
    actually promises. The committed baseline rows are informational."""
    if not base.get("shard_sweep"):
        print("  engine: baseline has no shard_sweep; sweep gate skipped")
        return 0
    ratios = []
    for doc in docs:
        rows = {r["shards"]: r["events_per_sec"]
                for r in doc.get("shard_sweep", [])}
        wide = max((v for s, v in rows.items() if s >= 4), default=None)
        if rows.get(1) and wide is not None:
            ratios.append(wide / rows[1])
    if not ratios:
        return fail("engine: no run produced shard_sweep rows for "
                    "shards=1 and shards>=4")
    best = max(ratios)
    need = 2.5 * (1.0 - tol)
    status = "ok" if best >= need else "REGRESSION"
    print(
        f"  engine sharded speedup (same-run, shards>=4 vs 1): best of "
        f"{[f'{r:.2f}' for r in ratios]} = {best:.2f}x "
        f"(gate 2.5x, floor {need:.2f}x)  {status}"
    )
    if best < need:
        return fail(
            f"engine: sharded speedup gate: best same-run ratio {best:.2f}x "
            f"< {need:.2f}x (2.5x gate with {tol:.0%} band)"
        )
    return 0


def check_kv_ordering(doc):
    """The KV figure's headline claim: at the skewed mix (s=0.99), casper
    with one ghost must clear at least original's throughput at equal
    cores, and every row's history must have linearized. Enforced on the
    fresh run (not just the baseline) so a regression that happens to
    produce internally-consistent rows still fails."""
    cols = doc["columns"]
    i_s, i_mode = cols.index("zipf_s"), cols.index("mode")
    i_kops, i_lin = cols.index("kops/s"), cols.index("lin")
    rc = 0
    by_mode = {}
    for row in doc["rows"]:
        if row[i_lin] != "clean":
            rc |= fail(f"kv: row {row[i_mode]}@s={row[i_s]} did not "
                       f"linearize ({row[i_lin]})")
        if row[i_s] > 0.9:
            by_mode[row[i_mode]] = row[i_kops]
    orig, casper = by_mode.get("original"), by_mode.get("casper(g1)")
    if orig is None or casper is None:
        return rc | fail("kv: s=0.99 rows missing original/casper(g1)")
    status = "ok" if casper >= orig else "REGRESSION"
    print(f"  kv s=0.99 throughput casper(g1)={casper:.1f} kops/s vs "
          f"original={orig:.1f} kops/s ({casper / orig:.2f}x)  {status}")
    if casper < orig:
        rc |= fail(
            f"kv: casper(g1) {casper:.1f} < original {orig:.1f} kops/s at "
            f"s=0.99 — the asynchronous-progress ordering the figure claims"
        )
    return rc


def check_adaptive_ordering(doc, balanced_tol=0.05):
    """The adaptive controller's headline claim, enforced on the fresh run:
    on skewed rows the online re-binding/policy-switching must beat the
    static split by >= 1.2x simulated time, and on balanced rows the
    controller must cost at most `balanced_tol` (it is supposed to sit
    still when there is nothing to fix). The ratio column is a virtual-time
    fact, so these floors are noise-free."""
    cols = doc["columns"]
    i_row, i_kind = cols.index("row"), cols.index("kind")
    i_ratio = cols.index("ratio")
    rc = 0
    for row in doc["rows"]:
        need = 1.2 if row[i_kind] == "skewed" else 1.0 - balanced_tol
        ok = row[i_ratio] >= need
        print(
            f"  adaptive {row[i_row]:<13} ({row[i_kind]:<8}) "
            f"static/adaptive = {row[i_ratio]:.2f}x "
            f"(floor {need:.2f}x)  {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            rc |= fail(
                f"adaptive: row {row[i_row]} ratio {row[i_ratio]:.2f}x "
                f"below the {need:.2f}x floor — the controller stopped "
                f"paying for itself"
            )
    return rc


def compare_fig(name, docs, base, tol):
    rc = 0
    best = docs[best_run(name, docs)]
    rc |= compare_exact(name, "columns", best.get("columns"),
                        base.get("columns"))
    rc |= compare_exact(name, "rows", best.get("rows"), base.get("rows"))
    rc |= compare_exact(name, "metrics", best.get("metrics"),
                        base.get("metrics"))
    base_ms = fig_host_ms(base)
    cand_ms = min(
        (fig_host_ms(d) for d in docs if fig_host_ms(d) is not None),
        default=None,
    )
    if base_ms is None:
        print(f"  {name}: baseline has no host block; host gate skipped")
        return rc
    if cand_ms is None:
        return rc | fail(f"{name}: runs produced no host block")
    ceil = base_ms * (1.0 + tol)
    status = "ok" if cand_ms <= ceil else "REGRESSION"
    print(
        f"  {name} casper_sweep_ms base={base_ms:>9.3f} "
        f"best={cand_ms:>9.3f} ({cand_ms / base_ms * 100.0 - 100.0:+6.1f}%)"
        f"  {status}"
    )
    if cand_ms > ceil:
        rc |= fail(
            f"{name}: host sweep regressed beyond {tol:.0%}: "
            f"{cand_ms:.3f}ms > {ceil:.3f}ms"
        )
    return rc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--runs-dir", required=True)
    ap.add_argument("--baseline-dir", default=".")
    ap.add_argument("--tol", type=float, default=0.25)
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()

    run_dirs = sorted(
        d
        for d in os.listdir(args.runs_dir)
        if d.startswith("run")
        and os.path.isdir(os.path.join(args.runs_dir, d))
    )
    if not run_dirs:
        return fail(f"no run*/ directories under {args.runs_dir}")

    rc = 0
    for name in BENCHES:
        fname = f"BENCH_{name}.json"
        paths = [
            os.path.join(args.runs_dir, d, fname)
            for d in run_dirs
            if os.path.exists(os.path.join(args.runs_dir, d, fname))
        ]
        if not paths:
            rc |= fail(f"{name}: no {fname} produced by any run")
            continue
        docs = [load(p) for p in paths]
        base_path = os.path.join(args.baseline_dir, fname)

        if args.update:
            src = paths[best_run(name, docs)]
            shutil.copyfile(src, base_path)
            print(f"  {name}: re-baselined {base_path} from {src}")
            continue

        if not os.path.exists(base_path):
            rc |= fail(
                f"{name}: no committed baseline {base_path} "
                f"(run 'scripts/bench.sh --update' and commit it)"
            )
            continue
        base = load(base_path)
        if name == "engine":
            rc |= compare_engine(docs, base, args.tol)
        else:
            rc |= compare_fig(name, docs, base, args.tol)
        if name == "kv":
            rc |= check_kv_ordering(docs[best_run(name, docs)])
        if name == "adaptive":
            rc |= check_adaptive_ordering(docs[best_run(name, docs)])

    if rc == 0:
        print(
            "bench_compare: "
            + ("baselines updated" if args.update else "all benches within band")
        )
    return rc


if __name__ == "__main__":
    sys.exit(main())
