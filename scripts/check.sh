#!/usr/bin/env bash
# Full local gate: tier-1 tests, the conformance fuzzer at its fixed seed
# corpus (clean and faulted), the chaos/fault matrix, ASan builds running
# the fuzzer smoke corpus and a ghost-failure soak, and a TSan build of the
# sharded engine + runtime determinism suites. Run from the repo root:
#   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
BUILD_ASAN=build-asan
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== [1/13] tier-1: build + ctest =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

echo "== [2/13] conformance fuzzer: fixed seed corpus =="
# A larger sweep than the ctest-time run; still deterministic (fixed base
# seed), so failures here are reproducible verbatim.
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --cases 500 --schedules 8 \
  --out "$BUILD/tests"

echo "== [3/13] conformance fuzzer: faulted corpus (--faults) =="
# The same generator under seed-derived lossy networks (drops, duplicates,
# delayed/reordered AMs, lost acks): the reliable AM layer must keep the
# shadow oracle clean on every mix. Any repro embeds the FaultPlan. The
# fault-proof already ran in stage 2; skip repeating it here.
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --cases 200 --schedules 2 \
  --faults --no-fault-proof --out "$BUILD/tests"

echo "== [4/13] race analyzer: planted-race and false-positive gates =="
# Positive gate: every case carries 2 planted same-epoch conflicting pairs
# and the online race analyzer must flag each of them in every schedule (a
# miss is minimized and written as a "race-miss" repro). The negative gate is
# implicit in stages 2-3: the analyzer rides along on every clean fuzz run,
# and any conflict there fails the campaign as a "race-conflict" repro.
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --cases 100 --schedules 4 \
  --races 2 --out "$BUILD/tests"
"./$BUILD/tests/test_race_analyzer"

echo "== [5/13] chaos matrix + ghost failure/recovery suites =="
# {drop,dup,reorder,delay} x {PUT,ACC,GET_ACC,FAO,CAS} x {lock,lockall,
# fence} under the oracle, plus ghost kills across 64 seeds, last-ghost
# degradation, and kills composed with a lossy network (DESIGN.md §11).
"./$BUILD/tests/test_fault_matrix"
"./$BUILD/tests/test_ghost_failure"

echo "== [6/13] KV store + linearizability checker =="
# The RMA-backed sharded KV store under skewed traffic with the Wing-Gong
# linearizability checker riding every run (DESIGN.md §14): the unit suites,
# a wider clean --kv corpus than the ctest-time slice (the planted-bug
# kv_proof pipeline runs inside the first campaign), and the faulted corpus
# (lossy network + seed-derived chaos) which must stay violation-free
# through retry and recovery.
"./$BUILD/tests/test_kv"
"./$BUILD/tests/test_linear_checker"
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --kv 200 --schedules 4 \
  --out "$BUILD/tests"
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --kv 100 --schedules 2 \
  --faults --no-fault-proof --out "$BUILD/tests"

echo "== [7/13] adaptive progress control: unit suite + forced-on fuzz =="
# The online controller (DESIGN.md §15): decision invariance across fiber
# schedules and engine shards, plan-cache invalidation on rebind, KV
# linearizability, and the ghost-kill chaos composition in the unit suite;
# then the conformance corpus with the controller forced on for EVERY case
# (seed streams only draw it for ~25%): oracle, race analyzer, and
# cross-schedule content checks must stay as clean as the static runs. The
# fault-proof is skipped here -- the injected static-binding bug has no
# surface under the controller's map (stage 2 already ran it).
"./$BUILD/tests/test_adaptive"
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --cases 150 --schedules 4 \
  --adaptive --no-fault-proof --out "$BUILD/tests"

echo "== [8/13] ASan: fuzzer smoke corpus + ghost-failure soak =="
cmake -B "$BUILD_ASAN" -S . -DCASPER_ASAN=ON >/dev/null
cmake --build "$BUILD_ASAN" -j"$JOBS" --target fuzz_conformance \
  test_check_oracle test_race_analyzer test_fault_matrix \
  test_ghost_failure test_kv test_linear_checker test_adaptive
"./$BUILD_ASAN/tests/test_check_oracle"
# The interval-treap recorder (insert/coalesce/prune) under ASan, plus a racy
# slice: planted-race detection must hold with sanitized allocation patterns.
"./$BUILD_ASAN/tests/test_race_analyzer"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 3 --cases 20 \
  --schedules 2 --races 2 --out "$BUILD_ASAN/tests"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 1 --cases 50 \
  --schedules 4 --out "$BUILD_ASAN/tests"
# The controller's seal/decide/remap path (double-buffered boards, plan
# regeneration) under ASan, forced on for every case.
"./$BUILD_ASAN/tests/test_adaptive"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 5 --cases 30 \
  --schedules 2 --adaptive --no-fault-proof --out "$BUILD_ASAN/tests"
# Recovery touches freed/rebound routing state; the kill/rebind/degrade
# paths must be clean under ASan, not just functionally correct.
"./$BUILD_ASAN/tests/test_fault_matrix"
"./$BUILD_ASAN/tests/test_ghost_failure"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 11 --cases 30 \
  --schedules 2 --faults --no-fault-proof --out "$BUILD_ASAN/tests"
# KV + checker under ASan: the lock/probe scratch buffers must outlive each
# in-flight op (see KvStore member-buffer comment); fuzzed schedules are the
# way to catch a stack temporary sneaking back in.
"./$BUILD_ASAN/tests/test_kv"
"./$BUILD_ASAN/tests/test_linear_checker"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 1 --kv 20 --schedules 2 \
  --out "$BUILD_ASAN/tests"

echo "== [9/13] TSan: sharded engine + sharded runtime determinism =="
# The sharded engine is the only multi-threaded subsystem: shard workers,
# the cross-shard outbox hand-off, and the window barrier. Fiber switches
# are TSan-annotated (src/sim/fiber.cpp), so rank-fiber stacks are tracked
# correctly. Both suites sweep shards in {1,2,4,8}.
BUILD_TSAN=build-tsan
cmake -B "$BUILD_TSAN" -S . -DCASPER_TSAN=ON >/dev/null
cmake --build "$BUILD_TSAN" -j"$JOBS" --target test_sim_engine_sharded \
  test_sharded_runtime
"./$BUILD_TSAN/tests/test_sim_engine_sharded"
"./$BUILD_TSAN/tests/test_sharded_runtime"

echo "== [10/13] trace-enabled fuzz smoke (CASPER_TRACE=1) =="
# Same corpus slice with the recorder attached: exercises every obs
# instrumentation site under fuzzed schedules, and any repro written here
# embeds the virtual-time trace tail.
CASPER_TRACE=1 "./$BUILD/tests/fuzz_conformance" --base-seed 7 --cases 50 \
  --schedules 2 --out "$BUILD/tests"

echo "== [11/13] chrome-trace export: schema + casper track layout =="
cmake --build "$BUILD" -j"$JOBS" --target fig4a_passive_overlap
"./$BUILD/bench/fig4a_passive_overlap" --trace "$BUILD/fig4a_trace.json" \
  > /dev/null
python3 scripts/validate_chrome_trace.py "$BUILD/fig4a_trace.json" \
  --require-casper-tracks

echo "== [12/13] untraced Release build (-DCASPER_TRACE=0) =="
# The hot path is sprinkled with obs instrumentation behind CASPER_TRACE;
# prove the untraced production configuration still compiles and links after
# any refactor, not just the traced default.
BUILD_NT=build-notrace
cmake -B "$BUILD_NT" -S . -DCASPER_TRACE=OFF \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_NT" -j"$JOBS"
"./$BUILD_NT/tests/test_casper" >/dev/null

echo "== [13/13] perf-regression gate: BENCH_*.json ratchet =="
# Host-side perf ratchet against the committed baselines, serial (the bench
# processes are the only load), best-of-N inside bench.sh. Intentional
# re-baselines go through scripts/bench.sh --update; see DESIGN.md §9.
# With RunConfig::fault unset every fault branch is behind one null check,
# so this also guards the faults-disabled zero-cost claim (DESIGN.md §11).
scripts/bench.sh

echo "check.sh: all gates passed"
