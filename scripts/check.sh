#!/usr/bin/env bash
# Full local gate: tier-1 tests, the conformance fuzzer at its fixed seed
# corpus, then an ASan build running the fuzzer smoke corpus. Run from the
# repo root:  scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
BUILD_ASAN=build-asan
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== [1/7] tier-1: build + ctest =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

echo "== [2/7] conformance fuzzer: fixed seed corpus =="
# A larger sweep than the ctest-time run; still deterministic (fixed base
# seed), so failures here are reproducible verbatim.
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --cases 500 --schedules 8 \
  --out "$BUILD/tests"

echo "== [3/7] ASan: fuzzer smoke corpus =="
cmake -B "$BUILD_ASAN" -S . -DCASPER_ASAN=ON >/dev/null
cmake --build "$BUILD_ASAN" -j"$JOBS" --target fuzz_conformance \
  test_check_oracle
"./$BUILD_ASAN/tests/test_check_oracle"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 1 --cases 50 \
  --schedules 4 --out "$BUILD_ASAN/tests"

echo "== [4/7] trace-enabled fuzz smoke (CASPER_TRACE=1) =="
# Same corpus slice with the recorder attached: exercises every obs
# instrumentation site under fuzzed schedules, and any repro written here
# embeds the virtual-time trace tail.
CASPER_TRACE=1 "./$BUILD/tests/fuzz_conformance" --base-seed 7 --cases 50 \
  --schedules 2 --out "$BUILD/tests"

echo "== [5/7] chrome-trace export: schema + casper track layout =="
cmake --build "$BUILD" -j"$JOBS" --target fig4a_passive_overlap
"./$BUILD/bench/fig4a_passive_overlap" --trace "$BUILD/fig4a_trace.json" \
  > /dev/null
python3 scripts/validate_chrome_trace.py "$BUILD/fig4a_trace.json" \
  --require-casper-tracks

echo "== [6/7] untraced Release build (-DCASPER_TRACE=0) =="
# The hot path is sprinkled with obs instrumentation behind CASPER_TRACE;
# prove the untraced production configuration still compiles and links after
# any refactor, not just the traced default.
BUILD_NT=build-notrace
cmake -B "$BUILD_NT" -S . -DCASPER_TRACE=OFF \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_NT" -j"$JOBS"
"./$BUILD_NT/tests/test_casper" >/dev/null

echo "== [7/7] perf-regression gate: BENCH_*.json ratchet =="
# Host-side perf ratchet against the committed baselines, serial (the bench
# processes are the only load), best-of-N inside bench.sh. Intentional
# re-baselines go through scripts/bench.sh --update; see DESIGN.md §9.
scripts/bench.sh

echo "check.sh: all gates passed"
