#!/usr/bin/env bash
# Full local gate: tier-1 tests, the conformance fuzzer at its fixed seed
# corpus, then an ASan build running the fuzzer smoke corpus. Run from the
# repo root:  scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
BUILD_ASAN=build-asan
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== [1/3] tier-1: build + ctest =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

echo "== [2/3] conformance fuzzer: fixed seed corpus =="
# A larger sweep than the ctest-time run; still deterministic (fixed base
# seed), so failures here are reproducible verbatim.
"./$BUILD/tests/fuzz_conformance" --base-seed 1 --cases 500 --schedules 8 \
  --out "$BUILD/tests"

echo "== [3/3] ASan: fuzzer smoke corpus =="
cmake -B "$BUILD_ASAN" -S . -DCASPER_ASAN=ON >/dev/null
cmake --build "$BUILD_ASAN" -j"$JOBS" --target fuzz_conformance \
  test_check_oracle
"./$BUILD_ASAN/tests/test_check_oracle"
"./$BUILD_ASAN/tests/fuzz_conformance" --base-seed 1 --cases 50 \
  --schedules 4 --out "$BUILD_ASAN/tests"

echo "check.sh: all gates passed"
