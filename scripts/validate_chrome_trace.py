#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the obs tracer.

Checks the structural contract chrome://tracing and Perfetto rely on:
  * top level is an object with a "traceEvents" list
  * every event has ph in {X, i, M}, integer pid/tid, and a name
  * every name is one of the known obs event names (obs::to_string(Ev) —
    keep KNOWN_EVENTS in sync with src/obs/trace.cpp)
  * X (span) events carry numeric ts and dur >= 0
  * i (instant) events carry numeric ts and a scope "s"
  * M events are thread_name metadata with a non-empty args.name

With --require-casper-tracks it additionally asserts the semantic layout the
PR's acceptance check asks for: ghost tracks exist and carry the redirected
accumulate servicing (op.committed / ghost.service), and user tracks carry
the application compute spans.

Usage: validate_chrome_trace.py TRACE.json [--require-casper-tracks]
Exits 0 when valid, 1 with a diagnostic otherwise. stdlib only.
"""
import json
import numbers
import sys


# The event-name vocabulary of the obs tracer (src/obs/trace.cpp,
# obs::to_string(Ev)). An exporter emitting anything else is a schema break:
# downstream tooling keys on these names.
KNOWN_EVENTS = {
    "op.issued",
    "op.hw",
    "op.redirected",
    "op.split",
    "lb.decision",
    "lb.adapt",
    "op.committed",
    "op.flushed",
    "epoch.begin",
    "epoch.translate",
    "epoch.end",
    "fiber.switch",
    "ghost.service",
    "compute",
    "fault.inject",
    "am.retry",
    "ghost.dead",
    "recovery.rebind",
    "race.conflict",
    "kv.op",
}


def fail(msg):
    print(f"validate_chrome_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    require_casper = "--require-casper-tracks" in argv[2:]

    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    thread_names = {}  # tid -> name
    names_by_tid = {}  # tid -> set of event names
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{where}: unexpected ph {ph!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            fail(f"{where}: pid/tid must be integers")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"{where}: missing name")
        if ph == "M":
            if ev["name"] != "thread_name":
                fail(f"{where}: metadata other than thread_name: {ev['name']}")
            tname = ev.get("args", {}).get("name")
            if not isinstance(tname, str) or not tname:
                fail(f"{where}: thread_name without args.name")
            thread_names[ev["tid"]] = tname
            continue
        if ev["name"] not in KNOWN_EVENTS:
            fail(f"{where}: unknown event name {ev['name']!r}")
        if not is_num(ev.get("ts")):
            fail(f"{where}: {ph} event without numeric ts")
        if ph == "X":
            if not is_num(ev.get("dur")) or ev["dur"] < 0:
                fail(f"{where}: X event without numeric dur >= 0")
        else:
            if ev.get("s") not in ("t", "p", "g"):
                fail(f"{where}: i event without scope s")
        names_by_tid.setdefault(ev["tid"], set()).add(ev["name"])

    n_spans = sum(1 for e in events if e.get("ph") == "X")
    n_inst = sum(1 for e in events if e.get("ph") == "i")
    print(
        f"validate_chrome_trace: OK: {len(events)} events "
        f"({n_spans} spans, {n_inst} instants, "
        f"{len(thread_names)} named tracks)"
    )

    if not require_casper:
        return 0

    ghost_tids = {t for t, n in thread_names.items() if n.startswith("ghost ")}
    user_tids = {t for t, n in thread_names.items() if n.startswith("user ")}
    if not ghost_tids:
        fail("no ghost tracks (thread_name 'ghost N') in the trace")
    if not user_tids:
        fail("no user tracks (thread_name 'user N') in the trace")

    ghost_events = set()
    for t in ghost_tids:
        ghost_events |= names_by_tid.get(t, set())
    if not ({"op.committed", "ghost.service"} & ghost_events):
        fail("ghost tracks carry no redirected-op servicing events")
    user_events = set()
    for t in user_tids:
        user_events |= names_by_tid.get(t, set())
    if "compute" not in user_events:
        fail("user tracks carry no compute spans")
    if "op.redirected" not in user_events:
        fail("user tracks carry no op.redirected events")
    print(
        "validate_chrome_trace: OK: casper layout "
        f"({len(ghost_tids)} ghost tracks serving, "
        f"{len(user_tids)} user tracks computing)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
