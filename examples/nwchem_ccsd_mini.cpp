// mini-NWChem: run a CCSD-style iteration and a (T)-style phase under the
// four deployment strategies of the paper's Table I, on one simulated
// machine, and report the phase times side by side.
//
//   ./nwchem_ccsd_mini [--csv]
#include <cstdio>
#include <iostream>

#include "ccsd/ccsd.hpp"
#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "report/table.hpp"

using namespace casper;

namespace {

struct Deployment {
  const char* name;
  int user_cores;   // application processes per node
  int async_cores;  // ghost processes / progress threads per node
};

double run_one(const char* mode, int nodes, int cpn, const ccsd::Params& p) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = nodes;
  rc.machine.topo.cores_per_node = cpn;

  double wall_ms = 0;
  auto app = [&wall_ms, &p](mpi::Env& env) {
    auto r = ccsd::run_phase(env, env.world(), p);
    wall_ms = sim::to_ms(r.wall);
  };

  if (std::string_view(mode) == "casper") {
    core::Config cc;
    cc.ghosts_per_node = 1;
    mpi::exec(rc, app, core::layer(cc));
  } else if (std::string_view(mode) == "thread-o") {
    rc.progress.kind = progress::Kind::Thread;
    rc.progress.oversubscribed = true;
    mpi::exec(rc, app);
  } else if (std::string_view(mode) == "thread-d") {
    rc.machine.topo.cores_per_node = cpn / 2;  // half the cores compute
    rc.progress.kind = progress::Kind::Thread;
    mpi::exec(rc, app);
  } else {
    mpi::exec(rc, app);
  }
  return wall_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = report::csv_mode(argc, argv);
  const int nodes = 4, cpn = 4;

  std::printf("mini-NWChem CCSD on %d nodes x %d cores\n", nodes, cpn);
  std::printf("deployment (cf. paper Table I):\n");
  std::printf("  original:  %d compute cores, 0 async cores per node\n", cpn);
  std::printf("  casper:    %d compute cores, 1 async core per node\n",
              cpn - 1);
  std::printf("  thread(O): %d compute cores, %d progress threads "
              "(oversubscribed)\n",
              cpn, cpn);
  std::printf("  thread(D): %d compute cores, %d progress threads "
              "(dedicated)\n",
              cpn / 2, cpn / 2);

  report::Table t({"phase", "original(ms)", "casper(ms)", "thread-O(ms)",
                   "thread-D(ms)"});
  {
    auto p = ccsd::ccsd_profile(96);
    t.row({"CCSD iteration", report::fmt(run_one("original", nodes, cpn, p)),
           report::fmt(run_one("casper", nodes, cpn, p)),
           report::fmt(run_one("thread-o", nodes, cpn, p)),
           report::fmt(run_one("thread-d", nodes, cpn, p))});
  }
  {
    auto p = ccsd::t_portion_profile(64);
    t.row({"(T) portion", report::fmt(run_one("original", nodes, cpn, p)),
           report::fmt(run_one("casper", nodes, cpn, p)),
           report::fmt(run_one("thread-o", nodes, cpn, p)),
           report::fmt(run_one("thread-d", nodes, cpn, p))});
  }
  t.print(std::cout, csv);
  return 0;
}
