// Quickstart: enable Casper for an application that does passive-target
// RMA accumulates against busy targets.
//
// The simulated cluster has 2 nodes x 4 cores. One core per node is carved
// out as a Casper ghost process; the application sees 6 ranks. Each rank
// accumulates into its right neighbour while that neighbour is busy
// computing — with Casper the accumulates progress anyway.
//
//   ./quickstart            run with Casper (1 ghost/node)
//   ./quickstart --no-casper  run on "original MPI" for comparison
#include <cstdio>
#include <cstring>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

using namespace casper;

int main(int argc, char** argv) {
  const bool use_casper =
      !(argc > 1 && std::strcmp(argv[1], "--no-casper") == 0);

  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();  // all RMA in software
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 4;

  core::Config cc;
  cc.ghosts_per_node = 1;

  auto app = [use_casper](mpi::Env& env) {
    mpi::Comm world = env.world();  // COMM_USER_WORLD under Casper
    const int me = env.rank(world);
    const int p = env.size(world);

    // Allocate a remotely accessible window of one double per rank.
    void* base = nullptr;
    mpi::Win win = env.win_allocate(sizeof(double), sizeof(double),
                                    mpi::Info{}, world, &base);

    env.barrier(world);
    const sim::Time t0 = env.now();

    double flush_done_us = 0;
    if (me % 2 == 0) {
      // Even ranks accumulate into their odd neighbour, who is busy
      // computing and will not call MPI for 500 us.
      env.win_lock_all(0, win);
      const int target = (me + 1) % p;
      double contribution = 1.0;
      env.accumulate(&contribution, 1, target, 0, mpi::AccOp::Sum, win);
      env.win_flush_all(win);
      flush_done_us = sim::to_us(env.now() - t0);
      env.win_unlock_all(win);
    } else {
      env.compute(sim::us(500));
    }
    env.barrier(world);

    const double value = *static_cast<double*>(base);
    if (me == 0) {
      std::printf("ranks: %d (world size %d)\n", p, env.world_size());
      std::printf("accumulate flush completed after %.1f us %s\n",
                  flush_done_us,
                  flush_done_us < 400 ? "(asynchronous progress!)"
                                      : "(stalled on the busy target)");
    }
    if (me % 2 == 1 && value != 1.0) {
      std::printf("rank %d: WRONG value %.1f\n", me, value);
    }
    env.win_free(win);
  };

  if (use_casper) {
    std::printf("running WITH casper (%d ghost/node)\n", cc.ghosts_per_node);
    mpi::exec(rc, app, core::layer(cc));
  } else {
    std::printf("running WITHOUT casper (original MPI)\n");
    mpi::exec(rc, app);
  }
  return 0;
}
