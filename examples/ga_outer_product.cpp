// mini-GA example: task-parallel accumulation of rank-1 updates into a
// distributed matrix (the Global Arrays idiom NWChem's solvers use).
//
// A shared NXTVAL counter hands out tasks; each task accumulates an outer
// product patch into the distributed result matrix with one-sided ACCs.
// The result is verified against a serial recomputation on rank 0.
//
//   ./ga_outer_product [--no-casper]
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/casper.hpp"
#include "ga/global_array.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

using namespace casper;

namespace {
constexpr std::int64_t kN = 64;      // matrix is kN x kN
constexpr std::int64_t kTasks = 32;  // rank-1 updates
}  // namespace

int main(int argc, char** argv) {
  const bool use_casper =
      !(argc > 1 && std::strcmp(argv[1], "--no-casper") == 0);

  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = 2;
  rc.machine.topo.cores_per_node = 4;

  auto app = [](mpi::Env& env) {
    mpi::Comm world = env.world();
    const int me = env.rank(world);

    ga::GlobalArray c(env, world, kN, kN);
    ga::SharedCounter tasks(env, world);

    auto u = [](std::int64_t t, std::int64_t i) {
      return static_cast<double>((t + i) % 5);
    };
    auto v = [](std::int64_t t, std::int64_t j) {
      return static_cast<double>((2 * t + j) % 3);
    };

    std::vector<double> patch(static_cast<std::size_t>(kN * kN));
    std::int64_t mine = 0;
    for (;;) {
      const std::int64_t t = tasks.next(env);
      if (t >= kTasks) break;
      ++mine;
      for (std::int64_t i = 0; i < kN; ++i) {
        for (std::int64_t j = 0; j < kN; ++j) {
          patch[static_cast<std::size_t>(i * kN + j)] = u(t, i) * v(t, j);
        }
      }
      c.acc(env, 0, kN, 0, kN, patch.data());
      env.compute(sim::us(50));  // "the rest of the task"
    }
    c.sync(env);

    // Verify on rank 0 with a one-sided read of the whole matrix.
    if (me == 0) {
      std::vector<double> all(static_cast<std::size_t>(kN * kN));
      c.get(env, 0, kN, 0, kN, all.data());
      bool ok = true;
      for (std::int64_t i = 0; i < kN && ok; ++i) {
        for (std::int64_t j = 0; j < kN && ok; ++j) {
          double want = 0;
          for (std::int64_t t = 0; t < kTasks; ++t) want += u(t, i) * v(t, j);
          if (all[static_cast<std::size_t>(i * kN + j)] != want) ok = false;
        }
      }
      std::printf("outer-product accumulation: %s (t=%.1f us)\n",
                  ok ? "OK" : "CORRUPT", sim::to_us(env.now()));
    }
    std::printf("  rank %d executed %lld tasks\n", me,
                static_cast<long long>(mine));
    tasks.destroy(env);
    c.destroy(env);
  };

  if (use_casper) {
    core::Config cc;
    cc.ghosts_per_node = 1;
    cc.binding = core::Binding::Segment;  // big shared matrix: spread load
    std::printf("ga outer product WITH casper (segment binding)\n");
    mpi::exec(rc, app, core::layer(cc));
  } else {
    std::printf("ga outer product WITHOUT casper\n");
    mpi::exec(rc, app);
  }
  return 0;
}
