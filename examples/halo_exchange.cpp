// Halo exchange on a 2-D grid with one-sided PUTs, including noncontiguous
// column halos (strided datatype -> software path on most networks).
//
// The domain is a ring of rank-local (H x W) tiles. Every iteration each
// rank PUTs its east column into the west halo of its right neighbour using
// PSCW synchronization, then relaxes its interior (modelled compute). With
// Casper the strided PUTs progress at busy neighbours; data correctness is
// checked at the end.
//
//   ./halo_exchange [--no-casper]
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"

using namespace casper;

namespace {
constexpr int kH = 16;     // tile height
constexpr int kW = 8;      // tile width (plus 1 halo column on each side)
constexpr int kIters = 8;  // relaxation sweeps
}  // namespace

int main(int argc, char** argv) {
  const bool use_casper =
      !(argc > 1 && std::strcmp(argv[1], "--no-casper") == 0);

  mpi::RunConfig rc;
  rc.machine.profile = net::fusion_mvapich();  // HW contiguous, SW strided
  rc.machine.topo.nodes = 4;
  rc.machine.topo.cores_per_node = 4;

  auto app = [](mpi::Env& env) {
    mpi::Comm world = env.world();
    const int me = env.rank(world);
    const int p = env.size(world);
    const int right = (me + 1) % p;
    const int left = (me + p - 1) % p;

    // Window layout per rank: (kW+2) columns x kH rows, row-major.
    const int ld = kW + 2;
    const std::size_t elems = static_cast<std::size_t>(kH * ld);
    void* base = nullptr;
    mpi::Win win = env.win_allocate(elems * sizeof(double), sizeof(double),
                                    mpi::Info{}, world, &base);
    auto* grid = static_cast<double*>(base);
    for (int r = 0; r < kH; ++r) {
      for (int c = 1; c <= kW; ++c) grid[r * ld + c] = me + 1.0;
    }
    env.barrier(world);

    // Column datatype: kH elements with stride ld.
    const auto col = mpi::vector_of(mpi::Dt::Double, 1, ld);
    std::vector<double> east(kH), west(kH);

    for (int it = 0; it < kIters; ++it) {
      for (int r = 0; r < kH; ++r) {
        east[static_cast<std::size_t>(r)] = grid[r * ld + kW];
        west[static_cast<std::size_t>(r)] = grid[r * ld + 1];
      }
      env.win_post(mpi::Group({left, right}), 0, win);
      env.win_start(mpi::Group({left, right}), 0, win);
      // my east column -> right neighbour's west halo (column 0)
      env.put(east.data(), kH, mpi::contig(mpi::Dt::Double), right, 0, kH,
              col, win);
      // my west column -> left neighbour's east halo (column kW+1)
      env.put(west.data(), kH, mpi::contig(mpi::Dt::Double), left, kW + 1,
              kH, col, win);
      env.win_complete(win);
      // Interior relaxation while neighbours' PUTs land.
      env.compute(sim::us(80));
      env.win_wait(win);
      env.win_sync(win);
    }

    // Verify halos carry the neighbours' values.
    bool ok = true;
    for (int r = 0; r < kH; ++r) {
      if (grid[r * ld + 0] != left + 1.0) ok = false;
      if (grid[r * ld + kW + 1] != right + 1.0) ok = false;
    }
    int my_ok = ok ? 1 : 0, all_ok = 0;
    env.allreduce(&my_ok, &all_ok, 1, mpi::Dt::Int, mpi::AccOp::Min, world);
    if (me == 0) {
      std::printf("halo exchange on %d ranks: %s, finished at t=%.1f us\n",
                  p, all_ok ? "OK" : "CORRUPT", sim::to_us(env.now()));
    }
    env.win_free(win);
  };

  if (use_casper) {
    core::Config cc;
    cc.ghosts_per_node = 1;
    std::printf("halo exchange WITH casper\n");
    mpi::exec(rc, app, core::layer(cc));
  } else {
    std::printf("halo exchange WITHOUT casper\n");
    mpi::exec(rc, app);
  }
  return 0;
}
