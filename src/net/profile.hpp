// Machine profiles: which RMA operations the "network hardware" executes
// without target-side software, and the cost constants of the platform model.
//
// Three built-in profiles mirror the paper's evaluation platforms:
//  - CrayXC30Regular: Cray MPI in regular mode — every RMA operation is
//    executed in target-side software (active messages).
//  - CrayXC30Dmapp: Cray MPI with DMAPP — contiguous PUT/GET and passive-lock
//    handling in hardware; accumulates and noncontiguous operations in
//    software (served via interrupts when interrupt progress is enabled).
//  - FusionMvapich: MVAPICH on InfiniBand — contiguous PUT/GET and locks in
//    hardware; accumulates and noncontiguous operations as software active
//    messages (served by a background thread when thread progress is
//    enabled).
#pragma once

#include <string>

#include "sim/time.hpp"

namespace casper::net {

using sim::Time;

/// Cost and capability model of one platform. All Times are virtual ns.
struct Profile {
  std::string name;

  // --- hardware RMA capability -------------------------------------------
  bool hw_contig_put = false;  ///< contiguous PUT executes in hardware
  bool hw_contig_get = false;  ///< contiguous GET executes in hardware
  bool hw_contig_acc = false;  ///< basic-datatype accumulate in hardware
  bool hw_lock = false;        ///< passive-target lock protocol at the NIC

  // --- wire latency / bandwidth -------------------------------------------
  Time net_latency = sim::ns(1500);   ///< inter-node one-way latency
  Time shm_latency = sim::ns(300);    ///< intra-node one-way latency
  double net_ns_per_byte = 0.125;     ///< ~8 GB/s inter-node
  double shm_ns_per_byte = 0.04;      ///< ~25 GB/s intra-node
  /// Extra cost of crossing the node's NUMA interconnect: added to the
  /// intra-node latency, and remote-domain memory is slower per byte. This
  /// is what Casper's topology-aware ghost placement avoids (paper II.A).
  Time numa_latency = sim::ns(250);
  double numa_ns_per_byte = 0.04;

  // --- software costs ------------------------------------------------------
  Time op_inject = sim::ns(250);      ///< origin-side per-operation overhead
  Time am_handling = sim::ns(600);    ///< target-side software cost per op
  double am_ns_per_byte = 0.5;        ///< target-side per-byte software cost (~2 GB/s RMW)
  Time lock_handling = sim::ns(350);  ///< software lock grant/release cost
  Time win_sync_cost = sim::ns(200);  ///< memory-barrier cost of win_sync

  // --- asynchronous-progress agent costs -----------------------------------
  Time interrupt_cost = sim::us(4);       ///< per-message interrupt overhead
  Time thread_call_overhead = sim::ns(300);  ///< thread-multiple cost per call
  Time thread_handoff = sim::ns(1000);       ///< agent wakeup/lock contention

  // --- in-application progress penalty --------------------------------------
  // An application process services incoming software operations at degraded
  // per-operation efficiency compared to a dedicated progress core: its
  // progress-engine entries are interleaved with application work (cold
  // caches, unexpected-queue matching) and contend with every other busy
  // process on the node. Dedicated progress ranks (Casper ghosts, registered
  // via Runtime::set_dedicated_progress) process at the base cost;
  // application pollers cost
  //   am_handling * (app_progress_base + app_progress_contention * (cpn-1)).
  // Calibrated so the relative Casper-vs-original factors of the paper's
  // Figs. 5-6 hold (ghost progress on 2 dedicated cores beating
  // in-application progress on 16 busy cores).
  double app_progress_base = 1.0;
  double app_progress_contention = 0.5;

  /// Late-drain processing factor for a node with `cpn` cores.
  double busy_factor(int cpn) const {
    return app_progress_base +
           app_progress_contention * static_cast<double>(cpn - 1);
  }

  // --- window management ---------------------------------------------------
  Time win_create_base = sim::us(15);      ///< fixed cost of window creation
  Time win_create_per_rank = sim::ns(1200);///< per-member cost of creation
  Time barrier_stage = sim::ns(900);       ///< per-log2(p) barrier stage cost

  /// One-way message latency for `bytes` payload between two ranks.
  Time latency(bool same_node, std::size_t bytes) const {
    const Time base = same_node ? shm_latency : net_latency;
    const double per_byte = same_node ? shm_ns_per_byte : net_ns_per_byte;
    return base + static_cast<Time>(per_byte * static_cast<double>(bytes));
  }

  /// Target-side software processing cost of one operation of `bytes`.
  /// `cross_numa` adds the remote-domain memory penalty: the processing
  /// entity touches window memory that lives in another NUMA domain.
  Time handling(std::size_t bytes, bool cross_numa = false) const {
    Time t = am_handling +
             static_cast<Time>(am_ns_per_byte * static_cast<double>(bytes));
    if (cross_numa) {
      t += numa_latency + static_cast<Time>(numa_ns_per_byte *
                                            static_cast<double>(bytes));
    }
    return t;
  }
};

/// Cray XC30, Cray MPI regular mode: all RMA in software.
Profile cray_xc30_regular();

/// Cray XC30, Cray MPI DMAPP mode: hardware contiguous PUT/GET + locks,
/// software accumulates (interrupt-driven when interrupt progress enabled).
Profile cray_xc30_dmapp();

/// Fusion cluster, MVAPICH on InfiniBand: hardware contiguous PUT/GET +
/// locks, software accumulates.
Profile fusion_mvapich();

}  // namespace casper::net
