#include "net/profile.hpp"

namespace casper::net {

Profile cray_xc30_regular() {
  Profile p;
  p.name = "CrayXC30-regular";
  p.hw_contig_put = false;
  p.hw_contig_get = false;
  p.hw_contig_acc = false;
  p.hw_lock = false;
  p.net_latency = sim::ns(1400);
  p.net_ns_per_byte = 0.12;  // ~8.3 GB/s Aries
  return p;
}

Profile cray_xc30_dmapp() {
  Profile p = cray_xc30_regular();
  p.name = "CrayXC30-DMAPP";
  p.hw_contig_put = true;
  p.hw_contig_get = true;
  p.hw_lock = true;
  return p;
}

Profile fusion_mvapich() {
  Profile p;
  p.name = "Fusion-MVAPICH";
  p.hw_contig_put = true;
  p.hw_contig_get = true;
  p.hw_contig_acc = false;
  p.hw_lock = true;
  p.net_latency = sim::ns(2300);  // QDR InfiniBand
  p.net_ns_per_byte = 0.3;        // ~3.2 GB/s
  p.am_handling = sim::ns(800);
  return p;
}

}  // namespace casper::net
