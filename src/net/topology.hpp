// Cluster topology: nodes x cores, NUMA domains, rank placement.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "net/profile.hpp"

namespace casper::net {

/// Placement of world ranks onto a (nodes x cores-per-node) cluster with
/// block placement (ranks 0..cpn-1 on node 0, etc.) — the layout used by the
/// paper's experiments.
struct Topology {
  int nodes = 1;
  int cores_per_node = 1;
  int numa_per_node = 2;

  int nranks() const { return nodes * cores_per_node; }
  int node_of(int rank) const { return rank / cores_per_node; }
  int core_of(int rank) const { return rank % cores_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// NUMA domain of a rank within its node (cores split evenly).
  int numa_of(int rank) const {
    const int cores_per_numa =
        (cores_per_node + numa_per_node - 1) / numa_per_node;
    return core_of(rank) / cores_per_numa;
  }

  void validate() const {
    if (nodes <= 0 || cores_per_node <= 0 || numa_per_node <= 0) {
      std::fprintf(stderr, "net::Topology: invalid shape %dx%d (numa %d)\n",
                   nodes, cores_per_node, numa_per_node);
      std::abort();
    }
  }
};

/// A platform: profile + topology.
struct Machine {
  Profile profile;
  Topology topo;
};

}  // namespace casper::net
