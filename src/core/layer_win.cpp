// CasperLayer: window allocation — the shared-memory mapping and the
// overlapping internal windows (paper II.B, Fig. 2), controlled by the
// `epochs_used` info hint (paper III.A).
#include <algorithm>

#include "core/layer_impl.hpp"
#include "mpi/check.hpp"

namespace casper::core {

using mpi::Comm;
using mpi::Env;
using mpi::Win;

namespace {
std::size_t align64(std::size_t v) { return (v + 63) & ~std::size_t{63}; }
}  // namespace

CasperLayer::CspWin* CasperLayer::managed(const Win& w) {
  // Sharded, a lookup can race another rank's registration of a DIFFERENT
  // window inside the same conservative window (std::map insert invalidates
  // nothing, but concurrent find/insert is still a data race), so lookups
  // take the registry lock too. Uncontended in practice; never locked when
  // single-shard.
  std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
  if (rt_->engine().sharded()) lk.lock();
  auto it = winmap_.find(w.get());
  return it == winmap_.end() ? nullptr : it->second.get();
}

CasperLayer::CspWin& CasperLayer::managed_checked(const Win& w,
                                                  const char* who) {
  auto* cw = managed(w);
  MMPI_REQUIRE(cw != nullptr, "casper: %s on an unmanaged window", who);
  return *cw;
}

int CasperLayer::my_user_rank(Env& env) const {
  return user_world_->rank_of_world(env.world_rank());
}

Win CasperLayer::win_allocate(Env& env, std::size_t bytes, std::size_t du,
                              const mpi::Info& info, const Comm& c,
                              void** base) {
  // Casper manages windows allocated over COMM_USER_WORLD (the common case
  // and the paper's scope). Other communicators fall through to the MPI
  // implementation unmanaged: correct, but without asynchronous progress.
  if (c != user_world_) {
    ++rt_->engine().stats_local().counter("casper_unmanaged_windows");
    return pmpi_->win_allocate(env, bytes, du, info, c, base);
  }
  const unsigned epochs = parse_epochs(info);
  const int seq = alloc_seq_[static_cast<std::size_t>(env.world_rank())]++;

  GhostCmd cmd;
  cmd.code = GhostCmd::kWinAlloc;
  cmd.epochs = epochs;
  cmd.disp_unit = static_cast<long long>(du);
  cmd.seq = seq;
  notify_ghosts(env, cmd);

  auto cw = build_windows(env, bytes, du, epochs, info);
  cw->seq = seq;
  cw->flip_fault = cfg_.fault.flip_segment_binding &&
                   (cfg_.fault.flip_only_seq < 0 ||
                    cfg_.fault.flip_only_seq == seq);

  // The user-visible window: a window over COMM_USER_WORLD exposing the same
  // shared segments. The application synchronizes and communicates on this
  // handle; Casper intercepts and redirects every call.
  const int me_u = my_user_rank(env);
  const int my_node = rt_->topo().node_of(env.world_rank());
  const auto& ti = cw->tgt[static_cast<std::size_t>(me_u)];
  std::byte* seg_base = nullptr;
  {
    // my segment base inside the shm window
    const Comm& nc = node_comm_of_[static_cast<std::size_t>(env.world_rank())];
    const int my_nc = nc->rank_of_world(env.world_rank());
    seg_base = rt_->p_shared_query(
                   env, cw->shm_by_node[static_cast<std::size_t>(my_node)],
                   my_nc)
                   .base;
  }
  cw->user_win =
      pmpi_->win_create(env, seg_base, ti.size, du, info, user_world_);
  *base = seg_base;

  // One canonical CspWin per user window, shared by all member ranks: the
  // first rank to get here registers its instance; later ranks only merge
  // their node's shared-memory window handle into it. Pure map/pointer work,
  // so holding the registry lock here (sharded) is safe — no pmpi_ calls.
  std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
  if (rt_->engine().sharded()) lk.lock();
  auto it = winmap_.find(cw->user_win.get());
  if (it == winmap_.end()) {
    winmap_[cw->user_win.get()] = cw;
    ++rt_->engine().stats_local().counter("casper_managed_windows");
    return cw->user_win;
  }
  it->second->shm_by_node[static_cast<std::size_t>(my_node)] =
      cw->shm_by_node[static_cast<std::size_t>(my_node)];
  return it->second->user_win;
}

std::shared_ptr<CasperLayer::CspWin> CasperLayer::build_windows(
    Env& env, std::size_t bytes, std::size_t du, unsigned epochs,
    const mpi::Info& info) {
  const auto& topo = rt_->topo();
  const int me = env.world_rank();
  const bool ghost = is_ghost_[static_cast<std::size_t>(me)];
  const Comm& nc = node_comm_of_[static_cast<std::size_t>(me)];

  auto cw = std::make_shared<CspWin>();
  cw->epochs = epochs;
  cw->shm_by_node.resize(static_cast<std::size_t>(topo.nodes));

  // Step 1: allocate the node shared segment; ghosts contribute zero bytes
  // but get the whole node buffer mapped into their "address space".
  void* shm_base = nullptr;
  const int my_node = topo.node_of(me);
  auto& shm_win = cw->shm_by_node[static_cast<std::size_t>(my_node)];
  shm_win = pmpi_->win_allocate_shared(env, ghost ? 0 : bytes, 1, info, nc,
                                       &shm_base);

  // Compute the node buffer's base and my segment's offset within it from
  // the node-local segment layout.
  const std::byte* node_base = rt_->p_shared_query(env, shm_win, 0).base;
  std::size_t my_offset = 0;
  std::size_t node_total = 0;
  for (int r = 0; r < nc->size(); ++r) {
    auto seg = rt_->p_shared_query(env, shm_win, r);
    if (nc->world_rank(r) == me) {
      my_offset = static_cast<std::size_t>(seg.base - node_base);
    }
    node_total += align64(seg.size);
  }

  // Step 2: exchange every rank's (offset, size) so all origins can
  // translate target displacements into ghost-frame displacements.
  struct Place {
    unsigned long long offset;
    unsigned long long size;
  };
  std::vector<Place> places(static_cast<std::size_t>(topo.nranks()));
  Place mine{my_offset, ghost ? 0ull : static_cast<unsigned long long>(bytes)};
  pmpi_->allgather(env, &mine, static_cast<int>(sizeof(Place)),
                   mpi::Dt::Byte, places.data(), rt_->world());

  cw->node_total.assign(static_cast<std::size_t>(topo.nodes), 0);
  for (int node = 0; node < topo.nodes; ++node) {
    std::size_t total = 0;
    for (int u : node_users_[static_cast<std::size_t>(node)]) {
      total += align64(
          static_cast<std::size_t>(places[static_cast<std::size_t>(u)].size));
    }
    cw->node_total[static_cast<std::size_t>(node)] = total;
  }

  const int users = user_world_ ? user_world_->size()
                                : topo.nodes * (topo.cores_per_node -
                                                cfg_.ghosts_per_node);
  cw->tgt.resize(static_cast<std::size_t>(users));
  cw->ep.resize(static_cast<std::size_t>(users));
  for (int node = 0; node < topo.nodes; ++node) {
    const auto& nu = node_users_[static_cast<std::size_t>(node)];
    const auto& ng = node_ghosts_[static_cast<std::size_t>(node)];
    for (std::size_t li = 0; li < nu.size(); ++li) {
      const int w = nu[li];
      // user comm rank == position among user ranks sorted by world rank;
      // world split with key=world preserves order, so compute directly.
      int u = 0;
      for (int x = 0; x < w; ++x) {
        if (!is_ghost_[static_cast<std::size_t>(x)]) ++u;
      }
      auto& ti = cw->tgt[static_cast<std::size_t>(u)];
      ti.node = node;
      ti.offset =
          static_cast<std::size_t>(places[static_cast<std::size_t>(w)].offset);
      ti.size =
          static_cast<std::size_t>(places[static_cast<std::size_t>(w)].size);
      ti.disp_unit = du;
      ti.local_idx = static_cast<int>(li);
      // Static rank binding with NUMA awareness: bind to a ghost in the
      // user's NUMA domain when one exists, round-robin inside the domain.
      if (cfg_.topology_aware && topo.numa_per_node > 1) {
        std::vector<int> same_dom;
        for (int g : ng) {
          if (topo.numa_of(g) == topo.numa_of(w)) same_dom.push_back(g);
        }
        const auto& cands = same_dom.empty() ? ng : same_dom;
        ti.bound_ghost = cands[li % cands.size()];
      } else {
        ti.bound_ghost = ng[li % ng.size()];
      }
    }
  }
  for (auto& ep : cw->ep) {
    ep.tl.resize(static_cast<std::size_t>(users));
    ep.access_mask.assign((static_cast<std::size_t>(users) + 63) / 64, 0);
    ep.ops_to_ghost.assign(static_cast<std::size_t>(topo.nranks()), 0);
    ep.bytes_to_ghost.assign(static_cast<std::size_t>(topo.nranks()), 0);
    ep.plans.slots.resize(PlanCache::kSlots);
  }
  // Adaptive progress control: size the board and seed every origin's
  // replica. Runs identically in every rank's instance — only the first
  // finisher's CspWin becomes canonical, so nothing here may depend on who
  // builds it.
  if (cfg_.adaptive.enabled) init_adapt(*cw);

  // Step 3: the overlapping internal windows over ALL ranks. Each ghost
  // exposes the whole node buffer (byte-addressed); user ranks expose
  // nothing (they are never internal targets — self ops are local).
  std::byte* ghost_base =
      ghost ? const_cast<std::byte*>(node_base) : nullptr;
  const std::size_t ghost_size =
      ghost ? cw->node_total[static_cast<std::size_t>(topo.node_of(me))] : 0;

  if (epochs & kEpochLock) {
    // One overlapping window per node-local user process, so exclusive locks
    // to different user targets on the same node do not serialize, while
    // locks to the same target keep MPI's permission management (III.A).
    cw->ug_wins.reserve(static_cast<std::size_t>(max_local_users_));
    for (int i = 0; i < max_local_users_; ++i) {
      cw->ug_wins.push_back(pmpi_->win_create(
          env, ghost_base, ghost_size, 1, info, rt_->world()));
    }
  }
  if (epochs & (kEpochFence | kEpochPscw | kEpochLockAll)) {
    cw->global_win =
        pmpi_->win_create(env, ghost_base, ghost_size, 1, info, rt_->world());
    if (!ghost) {
      // Fence/PSCW are translated onto a permanent passive epoch: lock-all
      // issued once at window allocation (III.C.1).
      pmpi_->win_lock_all(env, 0, cw->global_win);
    }
  }
  return cw;
}

void CasperLayer::free_internal_windows(Env& env, CspWin& cw) {
  // The CspWin is shared between all member ranks: free through handle
  // copies so one rank's teardown does not null the handles another rank is
  // still about to free.
  if (cw.global_win &&
      !is_ghost_[static_cast<std::size_t>(env.world_rank())]) {
    pmpi_->win_unlock_all(env, cw.global_win);
  }
  const int my_node = rt_->topo().node_of(env.world_rank());
  Win shm = cw.shm_by_node[static_cast<std::size_t>(my_node)];
  pmpi_->win_free(env, shm);
  for (Win w : cw.ug_wins) pmpi_->win_free(env, w);
  if (cw.global_win) {
    Win g = cw.global_win;
    pmpi_->win_free(env, g);
  }
}

void CasperLayer::win_free(Env& env, Win& w) {
  std::shared_ptr<CspWin> keep;  // keep the CspWin alive through teardown
  {
    // Lock scoped to the lookup only: the teardown below makes pmpi_ calls
    // that can switch fibers, and holding winmap_mu_ across a fiber switch
    // would deadlock another fiber on the same worker thread.
    std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
    if (rt_->engine().sharded()) lk.lock();
    auto it = winmap_.find(w.get());
    if (it != winmap_.end()) keep = it->second;
  }
  if (keep == nullptr) {
    pmpi_->win_free(env, w);
    return;
  }
  GhostCmd cmd;
  cmd.code = GhostCmd::kWinFree;
  cmd.seq = keep->seq;
  notify_ghosts(env, cmd);
  free_internal_windows(env, *keep);
  Win uw = keep->user_win;
  pmpi_->win_free(env, uw);  // collective: all members are done after this
  {
    std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
    if (rt_->engine().sharded()) lk.lock();
    winmap_.erase(keep->user_win.get());  // no-op after the first member
  }
  w.reset();
}

Win CasperLayer::win_allocate_shared(Env& env, std::size_t bytes,
                                     std::size_t du, const mpi::Info& info,
                                     const Comm& c, void** base) {
  // Shared windows are node-local by construction; no asynchronous progress
  // problem to solve, pass through (paper supports the allocate model only).
  ++rt_->engine().stats_local().counter("casper_unmanaged_windows");
  return pmpi_->win_allocate_shared(env, bytes, du, info, c, base);
}

Win CasperLayer::win_create(Env& env, void* base, std::size_t bytes,
                            std::size_t du, const mpi::Info& info,
                            const Comm& c) {
  // The "create" model needs OS support (XPMEM/SMARTMAP) to map user memory
  // into the ghosts; like the paper's implementation we fall back to the
  // native MPI path, unmanaged.
  ++rt_->engine().stats_local().counter("casper_unmanaged_windows");
  return pmpi_->win_create(env, base, bytes, du, info, c);
}

int CasperLayer::bound_ghost_of(const Win& user_win, int user_rank) {
  auto& cw = managed_checked(user_win, "bound_ghost_of");
  return cw.tgt[static_cast<std::size_t>(user_rank)].bound_ghost;
}

int CasperLayer::internal_window_count(const Win& user_win) {
  auto& cw = managed_checked(user_win, "internal_window_count");
  return static_cast<int>(cw.ug_wins.size()) + (cw.global_win ? 1 : 0);
}

std::vector<CasperLayer::GhostLoad> CasperLayer::ghost_load(
    const Win& user_win) {
  auto& cw = managed_checked(user_win, "ghost_load");
  std::vector<GhostLoad> out;
  for (const auto& ghosts : node_ghosts_) {
    for (int g : ghosts) {
      GhostLoad gl;
      gl.ghost_world = g;
      for (const auto& ep : cw.ep) {
        gl.ops += ep.ops_to_ghost[static_cast<std::size_t>(g)];
        gl.bytes += ep.bytes_to_ghost[static_cast<std::size_t>(g)];
      }
      out.push_back(gl);
    }
  }
  return out;
}

}  // namespace casper::core
