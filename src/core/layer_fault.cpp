// CasperLayer: ghost failure recovery. A FaultPlan may kill ghost processes
// at chosen virtual times; the runtime detects each death one heartbeat
// later and invokes the handler registered here. Recovery has three tiers:
//
//   1. surviving ghosts on the node absorb the dead ghost's load — rank
//      bindings rebind, segment chunks remap (resolve_static::ghost_at), and
//      every cached split plan is invalidated;
//   2. while retransmissions are still addressed to the dead ghost, the
//      runtime forwards them to a live successor precomputed below, so
//      read-modify-writes stay serialized through one live entity;
//   3. when a node loses its LAST ghost the node degrades to original-MPI
//      mode: operations targeting it go directly to the user window
//      (issue_degraded), locks are taken lazily on the user window, and
//      fence epochs switch only after the death is collectively latched
//      (see win_fence).
#include <algorithm>

#include "core/layer_impl.hpp"
#include "fault/plan.hpp"
#include "mpi/check.hpp"

namespace casper::core {

using mpi::AccOp;
using mpi::Datatype;
using mpi::Env;
using mpi::OpKind;

void CasperLayer::setup_fault_recovery() {
  const fault::FaultPlan* fp = rt_->config().fault;
  if (fp == nullptr || fp->kills.empty() || !rt_->faults_on()) return;
  fault_recovery_ = true;
  stat_rebound_ops_ = &rt_->stats().counter("recovery.rebound_ops");
  rt_->set_death_handler(
      [this](int w, sim::Time t) { on_ghost_death(w, t); });

  // Precompute runtime-level successor forwarding: replay the kills in time
  // order against per-node alive sets, so each dying ghost forwards to a
  // ghost that is still alive *after* its own death (chains resolve
  // transitively in the runtime). A kill naming a non-ghost rank is a plan
  // error surfaced here rather than at death time.
  std::vector<fault::GhostKill> kills(fp->kills);
  std::stable_sort(kills.begin(), kills.end(),
                   [](const fault::GhostKill& a, const fault::GhostKill& b) {
                     return a.at < b.at;
                   });
  std::vector<std::vector<int>> alive = node_ghosts_;
  for (const auto& k : kills) {
    const int w = k.world_rank;
    MMPI_REQUIRE(w >= 0 && w < static_cast<int>(is_ghost_.size()) &&
                     is_ghost_[static_cast<std::size_t>(w)],
                 "fault: kill names world rank %d which is not a ghost", w);
    auto& a = alive[static_cast<std::size_t>(rt_->topo().node_of(w))];
    a.erase(std::remove(a.begin(), a.end(), w), a.end());
    rt_->set_rank_successor(w, a.empty() ? -1 : a.front());
  }
}

void CasperLayer::on_ghost_death(int world_rank, sim::Time t) {
  if (world_rank < 0 || world_rank >= static_cast<int>(is_ghost_.size()) ||
      !is_ghost_[static_cast<std::size_t>(world_rank)]) {
    return;
  }
  if (ghost_dead_[static_cast<std::size_t>(world_rank)] != 0) return;
  ghost_dead_[static_cast<std::size_t>(world_rank)] = 1;
  ghost_death_seq_[static_cast<std::size_t>(world_rank)] = ++death_seq_;
  any_ghost_dead_ = true;

  const int node = rt_->topo().node_of(world_rank);
  auto& alive = alive_ghosts_[static_cast<std::size_t>(node)];
  alive.erase(std::remove(alive.begin(), alive.end(), world_rank),
              alive.end());
  ++rt_->stats().counter("recovery.ghost_dead");

  // Rebind every managed window: targets rank-bound to the dead ghost move
  // to a survivor, and all cached split plans become stale (segment chunks
  // owned by the dead ghost now remap through resolve_static::ghost_at).
  std::uint64_t rebound = 0;
  for (auto& [impl, cwp] : winmap_) {
    CspWin& cw = *cwp;
    for (auto& ti : cw.tgt) {
      if (ti.bound_ghost == world_rank && !alive.empty()) {
        ti.bound_ghost = alive[static_cast<std::size_t>(ti.local_idx) %
                               alive.size()];
        ++rebound;
      }
    }
    for (auto& ep : cw.ep) ++ep.plans.gen;
  }
  rt_->stats().counter("recovery.rebound_targets") += rebound;

  if (alive.empty() &&
      node_degraded_[static_cast<std::size_t>(node)] == 0) {
    node_degraded_[static_cast<std::size_t>(node)] = 1;
    ++rt_->stats().counter("recovery.degraded");
  }

  if (obs::on(rt_->recorder())) {
    obs::Recorder* rec = rt_->recorder();
    rec->trace().instant(world_rank, obs::Ev::GhostDead, t,
                       static_cast<std::uint64_t>(world_rank),
                       static_cast<std::uint64_t>(node), death_seq_);
    rec->trace().instant(world_rank, obs::Ev::Rebind, t, rebound,
                       static_cast<std::uint64_t>(alive.size()),
                       static_cast<std::uint64_t>(
                           node_degraded_[static_cast<std::size_t>(node)]));
  }
}

bool CasperLayer::fence_direct(const CspWin& cw, int node) const {
  // All of the node's ghosts must be dead AND each death must have been
  // observed by every rank before the current fence epoch opened (its
  // sequence number at or below the collectively latched minimum). A death
  // landing mid-epoch keeps the epoch on the redirected path everywhere; the
  // runtime's NIC completion covers it until the next fence.
  for (int g : node_ghosts_[static_cast<std::size_t>(node)]) {
    const std::uint64_t s = ghost_death_seq_[static_cast<std::size_t>(g)];
    if (s == 0 || s > cw.fence_latch) return false;
  }
  return true;
}

void CasperLayer::issue_degraded(Env& env, CspWin& cw, OriginEp& ep,
                                 OpKind kind, AccOp op, const void* o, int oc,
                                 const Datatype& odt, const void* o2,
                                 void* res, int rc, const Datatype& rdt,
                                 int target, std::size_t tdisp, int tc,
                                 const Datatype& tdt) {
  auto& tl = ep.tl[static_cast<std::size_t>(target)];
  const int me_u = my_user_rank(env);
  if ((tl.locked || ep.lockall) && !tl.user_locked &&
      !(tl.locked && target == me_u)) {
    // Passive epoch: lazily acquire the user-window lock the first time a
    // degraded op targets this rank. (A self win_lock already locked the
    // user window; lockall never does, so self is lazy there too.)
    if (tl.locked) {
      pmpi_->win_lock(env, tl.type, target, tl.mode_assert, cw.user_win);
    } else {
      pmpi_->win_lock(env, mpi::LockType::Shared, target, 0, cw.user_win);
    }
    tl.user_locked = true;
  }
  ++rt_->stats().counter("recovery.direct_ops");

  switch (kind) {
    case OpKind::Put:
      pmpi_->put(env, o, oc, odt, target, tdisp, tc, tdt, cw.user_win);
      return;
    case OpKind::Get:
      pmpi_->get(env, res, rc, rdt, target, tdisp, tc, tdt, cw.user_win);
      return;
    case OpKind::Acc:
      pmpi_->accumulate(env, o, oc, odt, target, tdisp, tc, tdt, op,
                        cw.user_win);
      return;
    case OpKind::GetAcc:
      pmpi_->get_accumulate(env, o, oc, odt, res, rc, rdt, target, tdisp, tc,
                            tdt, op, cw.user_win);
      return;
    case OpKind::Fao:
      pmpi_->fetch_and_op(env, o, res, tdt.base, target, tdisp, op,
                          cw.user_win);
      return;
    case OpKind::Cas:
      pmpi_->compare_and_swap(env, o, o2, res, tdt.base, target, tdisp,
                              cw.user_win);
      return;
    default:
      MMPI_REQUIRE(false, "casper: bad op kind (degraded)");
  }
}

}  // namespace casper::core
