// CasperLayer: RMA operation redirection (rank / segment / dynamic binding)
// and epoch translation (fence, PSCW, lock, lockall) — paper Sections II.C
// and III.
#include <algorithm>
#include <cstring>

#include "core/layer_impl.hpp"
#include "mpi/check.hpp"
#include "mpi/datatype.hpp"

namespace casper::core {

using mpi::AccOp;
using mpi::Datatype;
using mpi::Env;
using mpi::OpKind;
using mpi::Win;

namespace {
/// Per-op translation overhead added by Casper's wrapper (rank + offset
/// translation, binding decision).
constexpr sim::Time kTranslateCost = sim::ns(60);

bool acc_like(OpKind k) {
  return k == OpKind::Acc || k == OpKind::GetAcc || k == OpKind::Fao ||
         k == OpKind::Cas;
}

/// Membership test on a per-rank bitmask (the access-group mirror kept in
/// OriginEp::access_mask); replaces a linear scan of the group vector on the
/// per-op epoch check.
bool mask_test(const std::vector<std::uint64_t>& mask, int x) {
  return (mask[static_cast<std::size_t>(x) >> 6] >>
          (static_cast<std::size_t>(x) & 63)) &
         1u;
}

void mask_set(std::vector<std::uint64_t>& mask, int x) {
  mask[static_cast<std::size_t>(x) >> 6] |= std::uint64_t{1}
                                            << (static_cast<std::size_t>(x) &
                                                63);
}

const char* lb_name(DynamicLb d) {
  switch (d) {
    case DynamicLb::None: return "none";
    case DynamicLb::Random: return "random";
    case DynamicLb::OpCounting: return "op_counting";
    case DynamicLb::ByteCounting: return "byte_counting";
  }
  return "?";
}

/// Record a completed epoch-translation interval [t0, now) as an
/// EpochTranslate span plus a sync-latency histogram sample.
void note_epoch_sync(mpi::Runtime& rt, Env& env, const mpi::Win& user_win,
                     mpi::SyncKind k, sim::Time t0) {
  if (!obs::on(rt.recorder())) return;
  obs::Recorder* rec = rt.recorder();
  const sim::Time dur = env.now() - t0;
  rec->trace().span(env.world_rank(), obs::Ev::EpochTranslate, t0, dur,
                  static_cast<std::uint64_t>(k),
                  static_cast<std::uint64_t>(user_win->id()));
  rec->metrics().histogram(std::string("sync_ns.") + mpi::to_string(k))
      .add(dur);
}
}  // namespace

// ------------------------------------------------------------- routing ----

mpi::Win& CasperLayer::route_window(CspWin& cw, int origin, int target) {
  auto& ep = cw.ep[static_cast<std::size_t>(origin)];
  const auto& tl = ep.tl[static_cast<std::size_t>(target)];
  if (tl.locked || (ep.lockall && !cw.ug_wins.empty())) {
    // lock path (or lockall converted to per-ghost locks): use the
    // overlapping window dedicated to this target's local index.
    return cw.ug_wins[static_cast<std::size_t>(
        cw.tgt[static_cast<std::size_t>(target)].local_idx)];
  }
  MMPI_REQUIRE(cw.global_win != nullptr,
               "casper: window was allocated without fence/pscw/lockall in "
               "epochs_used but such an epoch is in use");
  return cw.global_win;
}

void CasperLayer::resolve_static(CspWin& cw, int origin, int target,
                                 std::size_t disp_bytes, int tcount,
                                 const Datatype& tdt,
                                 std::vector<SubOp>& out) {
  if (cw.adapt.on) {
    // Adaptive runs route by the controller's replicated item→slot map
    // (layer_adapt.cpp); the plan cache still memoizes the result — a remap
    // bumps the generation. Fault-injected map flips don't compose with the
    // controller (the flip exists to break the static owner function).
    resolve_adaptive(cw, origin, target, disp_bytes, tcount, tdt, out);
    return;
  }
  const auto& ti = cw.tgt[static_cast<std::size_t>(target)];
  const std::size_t base = ti.offset + disp_bytes;  // node-buffer frame

  if (cfg_.binding == Binding::Rank) {
    out.push_back(SubOp{ti.bound_ghost, base, tcount, tdt, 0});
    return;
  }

  // Static segment binding: the node's exposed memory is divided into
  // ghosts_per_node chunks aligned to the maximum basic datatype size
  // (16 bytes), and each chunk is owned by one ghost (paper III.B.2).
  const auto& ng = node_ghosts_[static_cast<std::size_t>(ti.node)];
  const std::size_t g = ng.size();
  const std::size_t total = cw.node_total[static_cast<std::size_t>(ti.node)];
  std::size_t chunk = (total + g - 1) / g;
  chunk = (chunk + mpi::kMaxBasicDtSize - 1) &
          ~(mpi::kMaxBasicDtSize - 1);  // 16B alignment
  if (chunk == 0) chunk = mpi::kMaxBasicDtSize;

  auto owner = [&](std::size_t b) {
    std::size_t ow = std::min(b / chunk, g - 1);
    // Injected fault (tests only): odd origins see a mirrored map, so two
    // ghosts end up serving the same segment concurrently. A *consistent*
    // flip would still be a valid binding; only the origin dependence
    // breaks the one-segment-one-ghost invariant. Scoped per window so an
    // unfaulted window keeps its ordinary (cached) resolution.
    if (cw.flip_fault && (origin & 1)) ow = g - 1 - ow;
    return ow;
  };

  // Ghost-failure rebinding: a chunk owned by a dead ghost is served by a
  // survivor instead. The remap is a pure function of global death state, so
  // every origin routes a shared byte to the SAME survivor (accumulate
  // atomicity holds across the rebinding). With no survivors the original
  // owner is kept: the runtime completes those deliveries at the NIC.
  const auto& alive = alive_ghosts_[static_cast<std::size_t>(ti.node)];
  auto ghost_at = [&](std::size_t ow) {
    int gw = ng[ow];
    if (any_ghost_dead_ && ghost_dead_[static_cast<std::size_t>(gw)] != 0 &&
        !alive.empty()) {
      gw = alive[ow % alive.size()];
    }
    return gw;
  };

  const std::size_t es = tdt.elem_size();
  const std::size_t block = static_cast<std::size_t>(tdt.blocklen) * es;
  const std::size_t stride = static_cast<std::size_t>(tdt.stride) * es;
  std::size_t payload_off = 0;

  // Walk the (possibly strided) target layout block by block, splitting each
  // contiguous block at chunk boundaries — never inside a basic element
  // (boundaries are 16B aligned and displacements element-aligned).
  for (int b = 0; b < tcount; ++b) {
    std::size_t lo = base + static_cast<std::size_t>(b) * stride;
    std::size_t remaining = block;
    while (remaining > 0) {
      const std::size_t ow = owner(lo);
      const std::size_t chunk_end = (ow + 1) * chunk;
      std::size_t len = std::min(remaining, chunk_end - lo);
      MMPI_REQUIRE(len % es == 0 && lo % es == 0,
                   "casper: segment boundary would split a basic element "
                   "(misaligned displacement; see paper III.B.2)");
      const int gw = ghost_at(ow);
      // Extend an existing sub-op for the same ghost if contiguous with it.
      if (!out.empty() && out.back().ghost == gw &&
          out.back().tdisp + static_cast<std::size_t>(out.back().tcount) *
                                 out.back().tdt.elem_size() *
                                 static_cast<std::size_t>(
                                     out.back().tdt.blocklen) ==
              lo &&
          out.back().tdt.contiguous() &&
          out.back().payload_off +
                  mpi::data_bytes(out.back().tcount, out.back().tdt) ==
              payload_off) {
        out.back().tcount += static_cast<int>(len / es);
      } else {
        out.push_back(SubOp{gw, lo, static_cast<int>(len / es),
                            mpi::contig(tdt.base), payload_off});
      }
      lo += len;
      payload_off += len;
      remaining -= len;
    }
  }
}

const std::vector<CasperLayer::SubOp>& CasperLayer::plan_lookup(
    CspWin& cw, OriginEp& ep, int origin, int target, std::size_t disp_bytes,
    int tcount, const Datatype& tdt) {
  PlanCache& pc = ep.plans;
  if (cw.flip_fault) {
    // Fault injection (tests only) makes the split origin-dependent; keep
    // that path uncached so the fuzzer sees the raw resolution every time.
    // Scoped to the flipped window: co-resident unfaulted windows keep
    // their plan caches hot.
    pc.scratch.clear();
    resolve_static(cw, origin, target, disp_bytes, tcount, tdt, pc.scratch);
    return pc.scratch;
  }

  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(target));
  mix(disp_bytes);
  mix(static_cast<std::uint64_t>(tcount));
  mix(static_cast<std::uint64_t>(tdt.base));
  mix(static_cast<std::uint64_t>(tdt.blocklen));
  mix(static_cast<std::uint64_t>(tdt.stride));

  const std::size_t slot_mask = PlanCache::kSlots - 1;
  const std::size_t idx = static_cast<std::size_t>(h) & slot_mask;
  for (std::size_t p = 0; p < PlanCache::kProbe; ++p) {
    PlanEntry& e = pc.slots[(idx + p) & slot_mask];
    if (e.gen == pc.gen && e.target == target &&
        e.disp_bytes == disp_bytes && e.tcount == tcount &&
        e.tdt.base == tdt.base && e.tdt.blocklen == tdt.blocklen &&
        e.tdt.stride == tdt.stride) {
      if (plan_hit_ != nullptr) {
        ++*plan_hit_;
      } else if (obs::on(rt_->recorder())) {
        // Sharded: no cached pointer (replicas appear after construction);
        // bump this shard's metrics replica through the routed accessor.
        ++rt_->recorder()->metrics().counter("casper.plan_cache_hit");
      }
      return e.subs;
    }
  }

  // Miss: fill the first stale slot in the probe window, else evict the home
  // slot. Stale entries keep their SubOp storage, so a warm cache refills
  // without allocating.
  PlanEntry* victim = &pc.slots[idx];
  for (std::size_t p = 0; p < PlanCache::kProbe; ++p) {
    PlanEntry& e = pc.slots[(idx + p) & slot_mask];
    if (e.gen != pc.gen) {
      victim = &e;
      break;
    }
  }
  if (plan_miss_ != nullptr) {
    ++*plan_miss_;
  } else if (obs::on(rt_->recorder())) {
    ++rt_->recorder()->metrics().counter("casper.plan_cache_miss");
  }
  victim->gen = pc.gen;
  victim->target = target;
  victim->disp_bytes = disp_bytes;
  victim->tcount = tcount;
  victim->tdt = tdt;
  victim->subs.clear();
  resolve_static(cw, origin, target, disp_bytes, tcount, tdt, victim->subs);
  return victim->subs;
}

bool CasperLayer::dynamic_applicable(const CspWin& cw, int origin, int target,
                                     OpKind kind) const {
  if (cfg_.dynamic == DynamicLb::None || acc_like(kind)) return false;
  const auto& ep = cw.ep[static_cast<std::size_t>(origin)];
  const auto& tl = ep.tl[static_cast<std::size_t>(target)];
  // Dynamic binding is valid for PUT/GET when the epoch is lockall (shared
  // locks everywhere: no exclusive-permission hazard) or inside a
  // static-binding-free interval after a flush under a lock (paper III.B.3).
  return ep.lockall || (tl.locked && tl.binding_free);
}

int CasperLayer::choose_dynamic_ghost(Env& env, CspWin& cw, int origin,
                                      int node, std::size_t bytes) {
  const auto& ng = node_ghosts_[static_cast<std::size_t>(node)];
  auto& ep = cw.ep[static_cast<std::size_t>(origin)];
  switch (effective_lb(cw, ep)) {
    case DynamicLb::Random:
      // Uniform random choice (per-rank deterministic stream). A plain
      // per-origin round-robin would correlate with the target iteration
      // order and can degenerate to a fixed target->ghost mapping.
      return ng[env.ctx().rng().next_below(ng.size())];
    case DynamicLb::OpCounting: {
      int best = ng[0];
      for (int g : ng) {
        if (ep.ops_to_ghost[static_cast<std::size_t>(g)] <
            ep.ops_to_ghost[static_cast<std::size_t>(best)]) {
          best = g;
        }
      }
      return best;
    }
    case DynamicLb::ByteCounting: {
      int best = ng[0];
      for (int g : ng) {
        if (ep.bytes_to_ghost[static_cast<std::size_t>(g)] <
            ep.bytes_to_ghost[static_cast<std::size_t>(best)]) {
          best = g;
        }
      }
      return best;
    }
    case DynamicLb::None:
      break;
  }
  (void)bytes;
  return ng[0];
}

// ---------------------------------------------------------------- issue ----

void CasperLayer::issue(Env& env, OpKind kind, AccOp op, const void* o,
                        int oc, const Datatype& odt, const void* o2,
                        void* res, int rc, const Datatype& rdt, int target,
                        std::size_t tdisp, int tc, const Datatype& tdt,
                        const Win& w) {
  auto* cwp = managed(w);
  if (cwp == nullptr) {
    // Unmanaged window: forward to the MPI implementation untouched.
    switch (kind) {
      case OpKind::Put:
        pmpi_->put(env, o, oc, odt, target, tdisp, tc, tdt, w);
        return;
      case OpKind::Get:
        pmpi_->get(env, res, rc, rdt, target, tdisp, tc, tdt, w);
        return;
      case OpKind::Acc:
        pmpi_->accumulate(env, o, oc, odt, target, tdisp, tc, tdt, op, w);
        return;
      case OpKind::GetAcc:
        pmpi_->get_accumulate(env, o, oc, odt, res, rc, rdt, target, tdisp,
                              tc, tdt, op, w);
        return;
      case OpKind::Fao:
        pmpi_->fetch_and_op(env, o, res, tdt.base, target, tdisp, op, w);
        return;
      case OpKind::Cas:
        pmpi_->compare_and_swap(env, o, o2, res, tdt.base, target, tdisp, w);
        return;
      default:
        MMPI_REQUIRE(false, "casper: bad op kind");
    }
  }
  CspWin& cw = *cwp;
  const int me_u = my_user_rank(env);
  MMPI_REQUIRE(target >= 0 && target < static_cast<int>(cw.tgt.size()),
               "casper: bad target %d", target);
  auto& ep = cw.ep[static_cast<std::size_t>(me_u)];
  auto& ti = cw.tgt[static_cast<std::size_t>(target)];

  const bool in_epoch = ep.fence_open || ep.lockall ||
                        ep.tl[static_cast<std::size_t>(target)].locked ||
                        mask_test(ep.access_mask, target);
  MMPI_REQUIRE(in_epoch, "casper: RMA op outside any epoch (%d->%d)", me_u,
               target);

  const std::size_t disp_bytes = tdisp * ti.disp_unit;
  MMPI_REQUIRE(disp_bytes + mpi::span_bytes(tc, tdt) <= ti.size,
               "casper: RMA out of target bounds");

  env.ctx().advance(kTranslateCost);

  // Self ops: PUT/GET execute as direct load/store (never delayed, paper
  // III.D). Accumulate-class self ops must NOT bypass the ghost: they would
  // race with the ghost's read-modify-writes of the same location on behalf
  // of other origins, breaking MPI's accumulate atomicity. They are
  // redirected like any other op, so the bound ghost serializes them.
  if (target == me_u && !acc_like(kind)) {
    exec_self(env, kind, op, o, oc, odt, o2, res, rc, rdt, disp_bytes, tc,
              tdt, cw, target);
    return;
  }

  // Graceful degradation: when every ghost on the target's node is dead,
  // fall back to original-MPI semantics — issue directly against the user
  // window (no redirection). Lock epochs switch immediately (the user-window
  // lock is taken lazily below); fence epochs switch only once the fence
  // latch proves ALL ranks observed the death before this epoch opened, so
  // origins never split one epoch across two serialization domains.
  if (fault_recovery_ && node_degraded_[static_cast<std::size_t>(ti.node)]) {
    const auto& tl = ep.tl[static_cast<std::size_t>(target)];
    if (tl.locked || ep.lockall ||
        (ep.fence_open && fence_direct(cw, ti.node))) {
      issue_degraded(env, cw, ep, kind, op, o, oc, odt, o2, res, rc, rdt,
                     target, tdisp, tc, tdt);
      return;
    }
  }

  // Adaptive remap guard: an accumulate-class op is serialized by one ghost
  // per byte; until a flush/unlock/fence remotely completes it, moving its
  // bytes to another ghost would let two ghosts RMW the same location. The
  // controller reads these levels off the sealed board and vetoes a remap
  // while any is nonzero (layer_adapt.cpp).
  if (cw.adapt.on && acc_like(kind)) {
    ++ep.tl[static_cast<std::size_t>(target)].unflushed_acc;
    ++ep.adapt_acc.unflushed_acc;
  }

  // A node with some (not all) ghosts dead routes through survivors; count
  // ops that would have gone to the dead ghost's segment map.
  if (any_ghost_dead_ && stat_rebound_ops_ != nullptr) {
    const auto& av = alive_ghosts_[static_cast<std::size_t>(ti.node)];
    if (!av.empty() &&
        av.size() != node_ghosts_[static_cast<std::size_t>(ti.node)].size()) {
      ++*stat_rebound_ops_;
    }
  }

  mpi::Win& iw = route_window(cw, me_u, target);
  const std::size_t bytes = mpi::data_bytes(tc, tdt);

  // Redirect bookkeeping: one trace instant + per-ghost totals per routed
  // (sub)op. Ghost ids are comm ranks of the internal window; metrics key on
  // the ghost's world rank so totals aggregate across windows.
  obs::Recorder* rec = obs::on(rt_->recorder()) ? rt_->recorder() : nullptr;
  auto note_redirect = [&](int ghost, std::size_t nbytes) {
    if (rec == nullptr) return;
    const int gw = iw->comm()->world_rank(ghost);
    rec->trace().instant(env.world_rank(), obs::Ev::OpRedirected, env.now(),
                       static_cast<std::uint64_t>(gw),
                       static_cast<std::uint64_t>(kind), nbytes);
    ++rec->metrics().counter("casper.redirected_ops");
    rec->metrics().histogram("redirect_bytes").add(nbytes);
    const std::string g = std::to_string(gw);
    ++rec->metrics().counter("ghost." + g + ".ops");
    rec->metrics().counter("ghost." + g + ".bytes") += nbytes;
  };

  // NUMA hint: the ghost processing this op touches the target user's
  // segment; crossing the node's domain interconnect costs extra (what the
  // topology-aware binding avoids).
  const int target_world = user_world_->world_rank(target);
  auto numa_hint = [&](int ghost_world) {
    rt_->set_next_op_cross_numa(
        env.world_rank(), rt_->topo().numa_of(ghost_world) !=
                              rt_->topo().numa_of(target_world));
  };

  // --- dynamic binding fast path: whole op to one chosen ghost -------------
  if (dynamic_applicable(cw, me_u, target, kind)) {
    const DynamicLb lb = effective_lb(cw, ep);
    const int ghost = choose_dynamic_ghost(env, cw, me_u, ti.node, bytes);
    ++ep.ops_to_ghost[static_cast<std::size_t>(ghost)];
    ep.bytes_to_ghost[static_cast<std::size_t>(ghost)] += bytes;
    if (cw.adapt.on) {
      adapt_note(cw, ep, ti, ti.offset + disp_bytes, bytes);
      auto& acc = ep.adapt_acc;
      ++acc.dyn_ops;
      acc.dyn_bytes += bytes;
      acc.dyn_max_bytes = std::max(acc.dyn_max_bytes, bytes);
    }
    if (rec != nullptr) {
      rec->trace().instant(env.world_rank(), obs::Ev::LbDecision, env.now(),
                         static_cast<std::uint64_t>(
                             iw->comm()->world_rank(ghost)),
                         static_cast<std::uint64_t>(lb), bytes);
      ++rec->metrics().counter("casper.dynamic_ops");
      ++rec->metrics().counter(std::string("casper.lb.") + lb_name(lb));
    }
    note_redirect(ghost, bytes);
    numa_hint(ghost);
    const std::size_t gdisp = ti.offset + disp_bytes;
    if (kind == OpKind::Put) {
      pmpi_->put(env, o, oc, odt, ghost, gdisp, tc, tdt, iw);
    } else {
      pmpi_->get(env, res, rc, rdt, ghost, gdisp, tc, tdt, iw);
    }
    ++*stat_dynamic_ops_[shard_idx()];
    return;
  }

  // --- static binding -------------------------------------------------------
  const std::vector<SubOp>& subs =
      plan_lookup(cw, ep, me_u, target, disp_bytes, tc, tdt);

  // Accumulate atomicity requires every target byte to be read-modify-
  // written by exactly ONE processing entity, regardless of which op shapes
  // touch it. Segment binding satisfies this because every accumulate-class
  // op is routed (splitting if necessary) along the same byte->segment-owner
  // map: chunk boundaries are 16B aligned, so a split never divides a basic
  // element, and any two overlapping accumulates meet at the same ghost for
  // the bytes they share. FAO/CAS operate on a single aligned basic element
  // and therefore always fit in one segment.
  MMPI_REQUIRE(subs.size() == 1 ||
                   (kind != OpKind::Fao && kind != OpKind::Cas),
               "casper: single-element op split a segment boundary");

  // Adaptive demand attribution: charge every routed piece to the binding
  // item(s) covering its bytes, into this origin's private accumulators.
  if (cw.adapt.on) {
    for (const SubOp& s : subs) {
      adapt_note(cw, ep, ti, s.tdisp, mpi::data_bytes(s.tcount, s.tdt));
    }
  }

  if (subs.size() == 1 && subs[0].payload_off == 0 &&
      mpi::data_bytes(subs[0].tcount, subs[0].tdt) == bytes) {
    // Fast path: whole op through one ghost, original datatypes preserved.
    const SubOp& s = subs[0];
    ++ep.ops_to_ghost[static_cast<std::size_t>(s.ghost)];
    ep.bytes_to_ghost[static_cast<std::size_t>(s.ghost)] += bytes;
    if (rec != nullptr) ++rec->metrics().counter("casper.binding_fastpath");
    note_redirect(s.ghost, bytes);
    numa_hint(s.ghost);
    switch (kind) {
      case OpKind::Put:
        pmpi_->put(env, o, oc, odt, s.ghost, s.tdisp, tc, tdt, iw);
        break;
      case OpKind::Get:
        pmpi_->get(env, res, rc, rdt, s.ghost, s.tdisp, tc, tdt, iw);
        break;
      case OpKind::Acc:
        pmpi_->accumulate(env, o, oc, odt, s.ghost, s.tdisp, tc, tdt, op, iw);
        break;
      case OpKind::GetAcc:
        pmpi_->get_accumulate(env, o, oc, odt, res, rc, rdt, s.ghost, s.tdisp,
                              tc, tdt, op, iw);
        break;
      case OpKind::Fao:
        pmpi_->fetch_and_op(env, o, res, tdt.base, s.ghost, s.tdisp, op, iw);
        break;
      case OpKind::Cas:
        pmpi_->compare_and_swap(env, o, o2, res, tdt.base, s.ghost, s.tdisp,
                                iw);
        break;
      default:
        MMPI_REQUIRE(false, "casper: bad op kind");
    }
    return;
  }

  // Split path (segment binding): pack the origin data once, then issue each
  // piece as a contiguous op against its owning ghost. GET_ACCUMULATE splits
  // like GET on the result side: fetched pieces land in `gather` and are
  // reassembled after a flush.
  MMPI_REQUIRE(kind == OpKind::Put || kind == OpKind::Get ||
                   kind == OpKind::Acc || kind == OpKind::GetAcc,
               "casper: split not supported for this op kind");
  if (rec != nullptr) {
    rec->trace().instant(env.world_rank(), obs::Ev::OpSegmentSplit, env.now(),
                       subs.size(), static_cast<std::uint64_t>(kind), bytes);
    ++rec->metrics().counter("casper.binding_split");
  }
  const bool fetches = kind == OpKind::Get || kind == OpKind::GetAcc;
  sim::PoolBuf packed(&rt_->buffer_pool());
  if (kind != OpKind::Get) mpi::pack_into(packed, o, oc, odt);
  sim::PoolBuf gather(&rt_->buffer_pool());
  if (fetches) gather.resize(bytes);

  for (const SubOp& s : subs) {
    ++ep.ops_to_ghost[static_cast<std::size_t>(s.ghost)];
    const std::size_t sbytes = mpi::data_bytes(s.tcount, s.tdt);
    ep.bytes_to_ghost[static_cast<std::size_t>(s.ghost)] += sbytes;
    note_redirect(s.ghost, sbytes);
    numa_hint(s.ghost);
    switch (kind) {
      case OpKind::Put:
        pmpi_->put(env, packed.data() + s.payload_off, s.tcount, s.tdt,
                   s.ghost, s.tdisp, s.tcount, s.tdt, iw);
        break;
      case OpKind::Acc:
        pmpi_->accumulate(env, packed.data() + s.payload_off, s.tcount, s.tdt,
                          s.ghost, s.tdisp, s.tcount, s.tdt, op, iw);
        break;
      case OpKind::Get:
        pmpi_->get(env, gather.data() + s.payload_off, s.tcount, s.tdt,
                   s.ghost, s.tdisp, s.tcount, s.tdt, iw);
        break;
      case OpKind::GetAcc:
        pmpi_->get_accumulate(env, packed.data() + s.payload_off, s.tcount,
                              s.tdt, gather.data() + s.payload_off, s.tcount,
                              s.tdt, s.ghost, s.tdisp, s.tcount, s.tdt, op,
                              iw);
        break;
      default:
        break;
    }
    ++*stat_split_subops_[shard_idx()];
    if (rec != nullptr) ++rec->metrics().counter("casper.split_subops");
  }
  if (fetches) {
    // The pieces land in `gather` asynchronously; unpacking into the user's
    // (possibly strided) origin buffer must wait for completion. We wait
    // here (a flush on the involved ghosts), trading a little overlap for
    // correctness of the strided reassembly.
    for (const SubOp& s : subs) pmpi_->win_flush(env, s.ghost, iw);
    mpi::unpack(res, rc, rdt, gather);
  }
}

// ----------------------------------------------------------- self ops ----

void CasperLayer::exec_self(Env& env, OpKind kind, AccOp op, const void* o,
                            int oc, const Datatype& odt, const void* o2,
                            void* res, int rc, const Datatype& rdt,
                            std::size_t disp_bytes, int tc,
                            const Datatype& tdt, CspWin& cw, int target) {
  // Local load/store access (self locks are never delayed). Executed
  // synchronously on my own shared segment.
  env.ctx().advance(sim::ns(80));
  std::byte* taddr =
      cw.user_win->segs[static_cast<std::size_t>(target)].base + disp_bytes;
  sim::PoolBuf scratch(&rt_->buffer_pool());
  switch (kind) {
    case OpKind::Put: {
      mpi::pack_into(scratch, o, oc, odt);
      mpi::unpack(taddr, tc, tdt, scratch);
      break;
    }
    case OpKind::Get: {
      mpi::pack_into(scratch, taddr, tc, tdt);
      mpi::unpack(res, rc, rdt, scratch);
      break;
    }
    case OpKind::Acc: {
      mpi::pack_into(scratch, o, oc, odt);
      mpi::reduce_into(taddr, tc, tdt, scratch, op);
      break;
    }
    case OpKind::GetAcc:
    case OpKind::Fao: {
      if (res != nullptr) {
        mpi::pack_into(scratch, taddr, tc, tdt);
        mpi::unpack(res, rc, rdt, scratch);
      }
      mpi::pack_into(scratch, o, oc, odt);
      mpi::reduce_into(taddr, tc, tdt, scratch, op);
      break;
    }
    case OpKind::Cas: {
      const std::size_t es = tdt.elem_size();
      if (res != nullptr) std::memcpy(res, taddr, es);
      if (std::memcmp(taddr, o, es) == 0) std::memcpy(taddr, o2, es);
      break;
    }
    default:
      MMPI_REQUIRE(false, "casper: bad self op");
  }
  ++*stat_self_ops_[shard_idx()];
  if (obs::on(rt_->recorder()))
    ++rt_->recorder()->metrics().counter("casper.self_ops");

  if (rt_->has_observers()) {
    // Self PUT/GET bypass the runtime's AM path entirely (direct load/store
    // above); synthesize the committed op so the shadow oracle sees it.
    mpi::AmOp aop;
    aop.kind = kind;
    aop.op = op;
    aop.origin_world = env.world_rank();
    aop.target_world = env.world_rank();
    aop.win = cw.user_win.get();
    aop.origin_comm_rank = target;
    aop.target_comm_rank = target;
    aop.target_disp = disp_bytes;
    aop.target_count = tc;
    aop.target_dt = tdt;
    aop.payload.bind(&rt_->buffer_pool());
    if (kind == OpKind::Cas) {
      const std::size_t es = tdt.elem_size();
      aop.payload.resize(2 * es);
      std::memcpy(aop.payload.data(), o, es);
      std::memcpy(aop.payload.data() + es, o2, es);
    } else if (kind != OpKind::Get) {
      mpi::pack_into(aop.payload, o, oc, odt);
    }
    rt_->observe_commit(aop, env.now(), env.world_rank());
  }
}

// ---------------------------------------------------------- public RMA ----

void CasperLayer::put(Env& env, const void* o, int oc, Datatype odt,
                      int target, std::size_t tdisp, int tc, Datatype tdt,
                      const Win& w) {
  issue(env, OpKind::Put, AccOp::Replace, o, oc, odt, nullptr, nullptr, 0,
        Datatype{}, target, tdisp, tc, tdt, w);
}

void CasperLayer::get(Env& env, void* o, int oc, Datatype odt, int target,
                      std::size_t tdisp, int tc, Datatype tdt, const Win& w) {
  issue(env, OpKind::Get, AccOp::Replace, nullptr, 0, Datatype{}, nullptr, o,
        oc, odt, target, tdisp, tc, tdt, w);
}

void CasperLayer::accumulate(Env& env, const void* o, int oc, Datatype odt,
                             int target, std::size_t tdisp, int tc,
                             Datatype tdt, AccOp op, const Win& w) {
  issue(env, OpKind::Acc, op, o, oc, odt, nullptr, nullptr, 0, Datatype{},
        target, tdisp, tc, tdt, w);
}

void CasperLayer::get_accumulate(Env& env, const void* o, int oc,
                                 Datatype odt, void* res, int rc,
                                 Datatype rdt, int target, std::size_t tdisp,
                                 int tc, Datatype tdt, AccOp op,
                                 const Win& w) {
  issue(env, OpKind::GetAcc, op, o, oc, odt, nullptr, res, rc, rdt, target,
        tdisp, tc, tdt, w);
}

void CasperLayer::fetch_and_op(Env& env, const void* value, void* result,
                               mpi::Dt dt, int target, std::size_t tdisp,
                               AccOp op, const Win& w) {
  issue(env, OpKind::Fao, op, value, 1, mpi::contig(dt), nullptr, result, 1,
        mpi::contig(dt), target, tdisp, 1, mpi::contig(dt), w);
}

void CasperLayer::compare_and_swap(Env& env, const void* expected,
                                   const void* desired, void* result,
                                   mpi::Dt dt, int target, std::size_t tdisp,
                                   const Win& w) {
  issue(env, OpKind::Cas, AccOp::Replace, expected, 1, mpi::contig(dt),
        desired, result, 1, mpi::contig(dt), target, tdisp, 1,
        mpi::contig(dt), w);
}

// ------------------------------------------------------ epoch translation --

void CasperLayer::win_fence(Env& env, unsigned mode_assert, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_fence(env, mode_assert, w);
    return;
  }
  MMPI_REQUIRE(cw->epochs & kEpochFence,
               "casper: fence used but excluded by epochs_used hint");
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];

  // Translation (paper III.C.1): the window sits under a permanent lockall;
  // fence = flush_all (remote completion of my ops) + barrier (everyone's
  // ops) + win_sync (memory consistency), each skippable via asserts.
  if (ep.fence_open && !(mode_assert & mpi::kModeNoPrecede)) {
    pmpi_->win_flush_all(env, cw->global_win);
    if (cw->adapt.on) {
      // flush_all remotely completed every op I issued: accumulate-class
      // levels drop to zero, so the controller may remap this round.
      ep.adapt_acc.unflushed_acc = 0;
      for (auto& tl : ep.tl) tl.unflushed_acc = 0;
    }
  }
  const bool skip_sync = (mode_assert & mpi::kModeNoStore) &&
                         (mode_assert & mpi::kModeNoPut) &&
                         (mode_assert & mpi::kModeNoPrecede);
  if (!skip_sync) {
    // Fence is an adaptation point: seal this origin's round counters before
    // the barrier, replay the shared decision after it (layer_adapt.cpp).
    if (cw->adapt.on) adapt_seal(*cw, me_u);
    pmpi_->barrier(env, user_world_);
    pmpi_->win_sync(env, cw->global_win);
    if (cw->adapt.on) adapt_decide(env, *cw, me_u);
  }

  // Ghost-failure degradation latch: a fence epoch may switch a node to
  // direct (user-window) RMA only when EVERY rank agrees the deaths happened
  // before this epoch — otherwise one origin redirects while another goes
  // direct within the same epoch and completion splits. Latch the *minimum*
  // death sequence number all ranks have observed; a node is fence-direct
  // once all its ghosts' deaths are at or below the latch. Once any node
  // goes direct, the user window itself needs fence semantics, so we open
  // (and keep running) a real fence on it.
  if (fault_recovery_) {
    int local = static_cast<int>(death_seq_);
    int latched = local;
    pmpi_->allreduce(env, &local, &latched, 1, mpi::Dt::Int, mpi::AccOp::Min,
                     user_world_);
    cw->fence_latch = static_cast<std::uint64_t>(latched);
    bool any_direct = cw->fence_user_open;
    for (int n = 0; n < static_cast<int>(node_ghosts_.size()) && !any_direct;
         ++n) {
      if (node_degraded_[static_cast<std::size_t>(n)] &&
          fence_direct(*cw, n)) {
        any_direct = true;
      }
    }
    if (any_direct) {
      cw->fence_user_open = true;
      pmpi_->win_fence(env, 0, cw->user_win);
    }
  }

  ep.fence_open = !(mode_assert & mpi::kModeNoSucceed);
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::Fence, t0);
  // Report the *user-facing* sync on the user window: the oracle validates
  // real window bytes here, after the translated completion above.
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::Fence, -1,
                    env.now());
  if (ep.fence_open) {
    rt_->observe_epoch_begin(*cw->user_win, env.world_rank(),
                             mpi::EpochEv::Fence, -1, env.now());
  }
}

void CasperLayer::win_post(Env& env, const mpi::Group& g, unsigned mode_assert,
                           const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_post(env, g, mode_assert, w);
    return;
  }
  MMPI_REQUIRE(cw->epochs & kEpochPscw,
               "casper: pscw used but excluded by epochs_used hint");
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  MMPI_REQUIRE(ep.exposure_group.empty(), "casper: nested win_post");
  ep.exposure_group = g.ranks();
  // Translation (III.C.2): notify each origin with a send (the origins'
  // win_start receives) unless the user asserts the synchronization is
  // already done.
  if (!(mode_assert & mpi::kModeNoCheck)) {
    char token = 1;
    for (int o : ep.exposure_group) {
      pmpi_->send(env, &token, 1, mpi::Dt::Byte, o, kTagPscwPost,
                  user_world_);
    }
  }
}

void CasperLayer::win_start(Env& env, const mpi::Group& g,
                            unsigned mode_assert, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_start(env, g, mode_assert, w);
    return;
  }
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  MMPI_REQUIRE(ep.access_group.empty(), "casper: nested win_start");
  ep.access_group = g.ranks();
  for (int t : ep.access_group) mask_set(ep.access_mask, t);
  if (!(mode_assert & mpi::kModeNoCheck)) {
    char token = 0;
    for (int t : ep.access_group) {
      pmpi_->recv(env, &token, 1, mpi::Dt::Byte, t, kTagPscwPost,
                  user_world_);
    }
  }
  rt_->observe_epoch_begin(*cw->user_win, env.world_rank(),
                           mpi::EpochEv::Start, -1, env.now());
}

void CasperLayer::win_complete(Env& env, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_complete(env, w);
    return;
  }
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  MMPI_REQUIRE(!ep.access_group.empty(),
               "casper: win_complete without win_start");
  // Remote completion of my ops, then notify each target.
  pmpi_->win_flush_all(env, cw->global_win);
  if (cw->adapt.on) {
    ep.adapt_acc.unflushed_acc = 0;
    for (auto& tl : ep.tl) tl.unflushed_acc = 0;
  }
  char token = 2;
  for (int t : ep.access_group) {
    pmpi_->send(env, &token, 1, mpi::Dt::Byte, t, kTagPscwComplete,
                user_world_);
  }
  ep.access_group.clear();
  std::fill(ep.access_mask.begin(), ep.access_mask.end(), 0);
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::Complete, t0);
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::Complete,
                    -1, env.now());
}

void CasperLayer::win_wait(Env& env, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_wait(env, w);
    return;
  }
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  MMPI_REQUIRE(!ep.exposure_group.empty(),
               "casper: win_wait without win_post");
  char token = 0;
  for (int o : ep.exposure_group) {
    pmpi_->recv(env, &token, 1, mpi::Dt::Byte, o, kTagPscwComplete,
                user_world_);
  }
  ep.exposure_group.clear();
  pmpi_->win_sync(env, cw->global_win);
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::Wait, t0);
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::Wait, -1,
                    env.now());
}

void CasperLayer::win_lock(Env& env, mpi::LockType type, int target,
                           unsigned mode_assert, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_lock(env, type, target, mode_assert, w);
    return;
  }
  MMPI_REQUIRE(cw->epochs & kEpochLock,
               "casper: lock used but excluded by epochs_used hint");
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  auto& tl = ep.tl[static_cast<std::size_t>(target)];
  MMPI_REQUIRE(!tl.locked, "casper: nested lock to target %d", target);
  tl.locked = true;
  tl.type = type;
  tl.mode_assert = mode_assert;
  tl.binding_free = false;
  ++ep.plans.gen;  // lock transition: cached split plans are stale
  rt_->observe_epoch_begin(*cw->user_win, env.world_rank(),
                           type == mpi::LockType::Exclusive
                               ? mpi::EpochEv::LockExcl
                               : mpi::EpochEv::Lock,
                           target, env.now());

  // Lock every ghost on the target's node, on the overlapping window
  // dedicated to this target, in the hope of spreading communication
  // (paper III.B; acquisition is delayed by the MPI implementation, so
  // unused locks cost nothing).
  const auto& ti = cw->tgt[static_cast<std::size_t>(target)];
  mpi::Win& iw = cw->ug_wins[static_cast<std::size_t>(ti.local_idx)];
  for (int g : node_ghosts_[static_cast<std::size_t>(ti.node)]) {
    pmpi_->win_lock(env, type, g, mode_assert, iw);
  }
  if (target == me_u) {
    // Self lock: also lock my own rank on the user-visible window so local
    // load/store accesses are protected; granted synchronously.
    pmpi_->win_lock(env, type, target, mode_assert, cw->user_win);
  }
}

void CasperLayer::win_unlock(Env& env, int target, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_unlock(env, target, w);
    return;
  }
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  auto& tl = ep.tl[static_cast<std::size_t>(target)];
  MMPI_REQUIRE(tl.locked, "casper: unlock without lock");
  const auto& ti = cw->tgt[static_cast<std::size_t>(target)];
  mpi::Win& iw = cw->ug_wins[static_cast<std::size_t>(ti.local_idx)];
  for (int g : node_ghosts_[static_cast<std::size_t>(ti.node)]) {
    pmpi_->win_unlock(env, g, iw);
  }
  if (target == me_u) {
    pmpi_->win_unlock(env, target, cw->user_win);
  }
  if (tl.user_locked) {
    // Degraded mode issued directly against the user window under a lazily
    // acquired lock; release it with the epoch.
    pmpi_->win_unlock(env, target, cw->user_win);
    tl.user_locked = false;
  }
  tl.locked = false;
  tl.binding_free = false;
  if (cw->adapt.on && tl.unflushed_acc != 0) {
    // Unlock remotely completed this target's accumulates.
    ep.adapt_acc.unflushed_acc -= tl.unflushed_acc;
    tl.unflushed_acc = 0;
  }
  ++ep.plans.gen;  // lock transition: cached split plans are stale
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::Unlock, t0);
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::Unlock,
                    target, env.now());
}

void CasperLayer::win_lock_all(Env& env, unsigned mode_assert, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_lock_all(env, mode_assert, w);
    return;
  }
  MMPI_REQUIRE(cw->epochs & kEpochLockAll,
               "casper: lockall used but excluded by epochs_used hint");
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  MMPI_REQUIRE(!ep.lockall, "casper: nested lock_all");
  ep.lockall = true;
  ++ep.plans.gen;  // lock transition: cached split plans are stale
  rt_->observe_epoch_begin(*cw->user_win, env.world_rank(),
                           mpi::EpochEv::LockAll, -1, env.now());
  if (!cw->ug_wins.empty()) {
    // lock may be used concurrently by other origins: convert lockall to a
    // series of shared locks on every overlapping window so MPI's permission
    // management sees the conflict (paper III.C.3). Acquisition is delayed,
    // so this is cheap until operations are actually issued.
    for (auto& iw : cw->ug_wins) {
      for (const auto& ghosts : node_ghosts_) {
        for (int g : ghosts) {
          pmpi_->win_lock(env, mpi::LockType::Shared, g, mode_assert, iw);
        }
      }
    }
  }
  // Without the lock hint, operations ride the permanent lockall on the
  // global window; nothing further to acquire.
}

void CasperLayer::win_unlock_all(Env& env, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_unlock_all(env, w);
    return;
  }
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  MMPI_REQUIRE(ep.lockall, "casper: unlock_all without lock_all");
  if (!cw->ug_wins.empty()) {
    for (auto& iw : cw->ug_wins) {
      for (const auto& ghosts : node_ghosts_) {
        for (int g : ghosts) {
          pmpi_->win_unlock(env, g, iw);
        }
      }
    }
  } else {
    // Complete everything issued under the permanent lockall.
    pmpi_->win_flush_all(env, cw->global_win);
  }
  for (int u = 0; u < static_cast<int>(ep.tl.size()); ++u) {
    auto& tl = ep.tl[static_cast<std::size_t>(u)];
    if (tl.user_locked) {
      pmpi_->win_unlock(env, u, cw->user_win);
      tl.user_locked = false;
    }
  }
  ep.lockall = false;
  for (auto& tl : ep.tl) {
    tl.binding_free = false;
    tl.unflushed_acc = 0;  // unlock_all remotely completed everything
  }
  if (cw->adapt.on) ep.adapt_acc.unflushed_acc = 0;
  ++ep.plans.gen;  // lock transition: cached split plans are stale
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::UnlockAll, t0);
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::UnlockAll,
                    -1, env.now());
}

void CasperLayer::win_flush(Env& env, int target, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_flush(env, target, w);
    return;
  }
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  auto& tl = ep.tl[static_cast<std::size_t>(target)];
  MMPI_REQUIRE(tl.locked || ep.lockall,
               "casper: flush outside a passive epoch");
  // Self targets flush too: accumulate-class self ops are redirected
  // through the bound ghost (for atomicity) and complete asynchronously.
  const auto& ti = cw->tgt[static_cast<std::size_t>(target)];
  mpi::Win& iw = route_window(*cw, me_u, target);
  for (int g : node_ghosts_[static_cast<std::size_t>(ti.node)]) {
    pmpi_->win_flush(env, g, iw);
  }
  if (tl.user_locked) {
    // Degraded direct ops went to the user window; complete them too.
    pmpi_->win_flush(env, target, cw->user_win);
  }
  if (cw->adapt.on && tl.unflushed_acc != 0) {
    // The per-ghost flushes above remotely completed this target's
    // accumulates (flush_local would NOT: it only completes locally).
    ep.adapt_acc.unflushed_acc -= tl.unflushed_acc;
    tl.unflushed_acc = 0;
  }
  // After a completed flush the lock is known acquired: the
  // static-binding-free interval begins (paper III.B.3) — a rebinding
  // transition, so cached split plans from before it are stale.
  if (tl.locked && !tl.binding_free) {
    tl.binding_free = true;
    ++ep.plans.gen;
  }
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::Flush, t0);
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::Flush,
                    target, env.now());
}

void CasperLayer::win_flush_all(Env& env, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_flush_all(env, w);
    return;
  }
  const sim::Time t0 = env.now();
  const int me_u = my_user_rank(env);
  auto& ep = cw->ep[static_cast<std::size_t>(me_u)];
  for (int u = 0; u < static_cast<int>(cw->tgt.size()); ++u) {
    if (ep.tl[static_cast<std::size_t>(u)].locked || ep.lockall) {
      win_flush(env, u, w);
    }
  }
  (void)me_u;
  note_epoch_sync(*rt_, env, cw->user_win, mpi::SyncKind::FlushAll, t0);
  rt_->observe_sync(*cw->user_win, env.world_rank(), mpi::SyncKind::FlushAll,
                    -1, env.now());
}

void CasperLayer::win_flush_local(Env& env, int target, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_flush_local(env, target, w);
    return;
  }
  env.ctx().advance(sim::ns(50));
}

void CasperLayer::win_flush_local_all(Env& env, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_flush_local_all(env, w);
    return;
  }
  env.ctx().advance(sim::ns(50));
}

void CasperLayer::win_sync(Env& env, const Win& w) {
  auto* cw = managed(w);
  if (cw == nullptr) {
    pmpi_->win_sync(env, w);
    return;
  }
  pmpi_->win_sync(env, cw->global_win ? cw->global_win : cw->user_win);
}

}  // namespace casper::core
