// Casper: process-based asynchronous progress for MPI RMA (the paper's
// primary contribution).
//
// Casper interposes on the MPI call surface (our Layer interface standing in
// for PMPI) and:
//
//   1. carves a user-chosen number of cores per node out of the world as
//      *ghost processes* at init time; the application sees
//      COMM_USER_WORLD and never knows the ghosts exist;
//   2. on window allocation, maps every user process's window memory into a
//      node-wide shared segment (MPI_Win_allocate_shared) and exposes it
//      through a set of *overlapping internal windows* whose members include
//      the ghosts;
//   3. redirects every RMA operation from its user target to a ghost process
//      on the target's node (translating rank and offset), so operations
//      that need target-side software complete inside the ghost's MPI
//      runtime while the user process computes.
//
// Correctness machinery implemented per the paper's Section III:
//   - one overlapping window per node-local user process, to bypass MPI lock
//     permission management across different targets while retaining it for
//     the same target (III.A); reduced to a single window via the
//     `epochs_used` info hint;
//   - static rank binding and 16-byte-aligned static segment binding for
//     ordering/atomicity with multiple ghosts (III.B.1, III.B.2);
//   - dynamic binding (random / operation-counting / byte-counting) of
//     PUT/GET during static-binding-free intervals after a flush (III.B.3);
//   - epoch translation: fence -> permanent lockall + flush_all + barrier +
//     win_sync, PSCW -> passive target + send/recv synchronization,
//     lockall -> a series of per-ghost locks (III.C), with the
//     MPI_MODE_NOPRECEDE / NOSUCCEED / NOSTORE / NOPUT / NOCHECK assert
//     fast paths;
//   - synchronous self-op execution (self locks are never delayed) (III.D).
#pragma once

#include <cstdint>

#include "mpi/runtime.hpp"
#include "net/topology.hpp"
#include "progress/adaptive.hpp"

namespace casper::core {

/// Static binding model for multiple ghost processes (paper III.B).
enum class Binding {
  Rank,     ///< each user process bound to one ghost
  Segment,  ///< node memory split into per-ghost segments (16B aligned)
};

/// Dynamic load-balancing policy for PUT/GET in static-binding-free periods.
enum class DynamicLb {
  None,          ///< static binding only
  Random,        ///< uniform choice among the node's ghosts
  OpCounting,    ///< ghost with fewest operations issued by this origin
  ByteCounting,  ///< ghost with fewest bytes issued by this origin
};

struct Config {
  /// Number of cores per node dedicated to ghost processes (the paper's
  /// CSP_NG environment variable).
  int ghosts_per_node = 1;
  Binding binding = Binding::Rank;
  DynamicLb dynamic = DynamicLb::None;
  /// Place ghosts spread across NUMA domains and bind users to the ghost in
  /// their own domain (paper II.A "topology-aware ghost placement").
  bool topology_aware = true;
  std::uint64_t seed = 7;
  /// Online metrics-driven control of the binding (see src/progress/
  /// adaptive.hpp and DESIGN.md §15). Off by default: with enabled=false no
  /// adaptive state is allocated, no counters are sampled, and every run is
  /// byte-identical to a build without the feature.
  progress::AdaptiveConfig adaptive;
  /// Test-only fault injection, used by the conformance harness to prove the
  /// shadow oracle detects real binding bugs. Never set outside tests.
  struct Fault {
    /// Mirror the segment→ghost owner mapping for odd user origins: even and
    /// odd origins then route the same segment to different ghosts, so two
    /// processing entities read-modify-write the same bytes concurrently —
    /// exactly the hazard static segment binding exists to prevent
    /// (paper III.B.2). Requires ghosts_per_node >= 2 to have any effect.
    bool flip_segment_binding = false;
    /// Scope the flip (and its plan-cache bypass) to the managed window with
    /// this allocation sequence number; -1 applies it to every window. An
    /// unfaulted window keeps its plan cache during faulted runs.
    int flip_only_seq = -1;
  } fault;
};

/// Layer factory to pass to mpi::exec / mpi::Runtime: installs Casper
/// between the application and the MPI runtime.
mpi::LayerFactory layer(const Config& cfg);

/// Number of application-visible processes for a given machine + config
/// (world size minus the carved-out ghosts).
int user_ranks(const net::Topology& topo, const Config& cfg);

/// World ranks that become ghosts: the last `ghosts_per_node` cores of each
/// node, spread across NUMA domains when topology_aware is set.
bool is_ghost_rank(const net::Topology& topo, const Config& cfg,
                   int world_rank);

/// The info key Casper reads from win_allocate: a comma-separated subset of
/// "fence,pscw,lock,lockall" declaring which epoch types the application
/// will use on the window (paper III.A).
inline constexpr const char* kEpochsUsedKey = "epochs_used";

}  // namespace casper::core
