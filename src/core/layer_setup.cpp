// CasperLayer: ghost deployment, COMM_USER_WORLD setup, the ghost process
// service loop, finalization, and the non-RMA call passthroughs (which are
// implicitly redirected to user processes because comm_world() returns
// COMM_USER_WORLD — the paper's "MPI_COMM_WORLD substitution").
#include <sstream>

#include "core/layer_impl.hpp"
#include "mpi/check.hpp"

namespace casper::core {

using mpi::Comm;
using mpi::Env;

unsigned parse_epochs(const mpi::Info& info) {
  auto v = info.get(kEpochsUsedKey);
  if (!v) return kEpochAll;
  unsigned mask = 0;
  std::stringstream ss(*v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok == "fence") {
      mask |= kEpochFence;
    } else if (tok == "pscw") {
      mask |= kEpochPscw;
    } else if (tok == "lock") {
      mask |= kEpochLock;
    } else if (tok == "lockall") {
      mask |= kEpochLockAll;
    } else if (!tok.empty()) {
      MMPI_REQUIRE(false, "casper: unknown epochs_used token '%s'",
                   tok.c_str());
    }
  }
  return mask == 0 ? kEpochAll : mask;
}

int user_ranks(const net::Topology& topo, const Config& cfg) {
  return topo.nodes * (topo.cores_per_node - cfg.ghosts_per_node);
}

bool is_ghost_rank(const net::Topology& topo, const Config& cfg,
                   int world_rank) {
  const int g = cfg.ghosts_per_node;
  const int cpn = topo.cores_per_node;
  if (!cfg.topology_aware || g <= 1 || topo.numa_per_node <= 1) {
    // The last g cores of each node.
    return topo.core_of(world_rank) >= cpn - g;
  }
  // Topology-aware: the last core of each NUMA domain, round-robin over
  // domains, so the ghosts are spread across the node's memory domains.
  const int numa = topo.numa_per_node;
  const int cores_per_numa = (cpn + numa - 1) / numa;
  const int core = topo.core_of(world_rank);
  const int dom = core / cores_per_numa;
  const int dom_begin = dom * cores_per_numa;
  const int dom_end = std::min(cpn, dom_begin + cores_per_numa);
  // ghosts assigned to this domain
  int dom_ghosts = g / numa + (dom < g % numa ? 1 : 0);
  return core >= dom_end - dom_ghosts;
}

mpi::LayerFactory layer(const Config& cfg) {
  return [cfg](mpi::Runtime& rt) -> std::shared_ptr<mpi::Layer> {
    return std::make_shared<CasperLayer>(rt, cfg);
  };
}

CasperLayer::CasperLayer(mpi::Runtime& rt, Config cfg)
    : rt_(&rt), cfg_(std::move(cfg)) {
  MMPI_REQUIRE(cfg_.ghosts_per_node >= 1, "casper: need >= 1 ghost per node");
  MMPI_REQUIRE(cfg_.ghosts_per_node < rt_->topo().cores_per_node,
               "casper: ghosts_per_node (%d) must leave user cores on a "
               "%d-core node",
               cfg_.ghosts_per_node, rt_->topo().cores_per_node);
  pmpi_ = std::make_shared<mpi::Pmpi>(rt);
  // One counter pointer per shard: a worker thread must bump its own shard's
  // stats replica (merged after the run). Unsharded, shard_stats(0) is the
  // global stats object and this is the old single-pointer behaviour.
  auto& eng = rt_->engine();
  const std::size_t nshards = static_cast<std::size_t>(eng.shards());
  stat_dynamic_ops_.resize(nshards);
  stat_split_subops_.resize(nshards);
  stat_self_ops_.resize(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    sim::Stats& st = eng.shard_stats(static_cast<int>(s));
    stat_dynamic_ops_[s] = &st.counter("casper_dynamic_ops");
    stat_split_subops_[s] = &st.counter("casper_split_subops");
    stat_self_ops_[s] = &st.counter("casper_self_ops");
  }
  if (obs::on(rt_->recorder()) && !eng.sharded()) {
    // Sharded runs skip the cached pointers: the recorder's per-shard metric
    // replicas only exist once run() starts, so those paths do the (colder)
    // per-shard map lookup at the call site instead.
    plan_hit_ = &rt_->recorder()->metrics().counter("casper.plan_cache_hit");
    plan_miss_ = &rt_->recorder()->metrics().counter("casper.plan_cache_miss");
  }
  setup_topology();
  setup_fault_recovery();
}

void CasperLayer::setup_topology() {
  const auto& topo = rt_->topo();
  const int n = topo.nranks();
  is_ghost_.assign(static_cast<std::size_t>(n), false);
  node_ghosts_.assign(static_cast<std::size_t>(topo.nodes), {});
  node_users_.assign(static_cast<std::size_t>(topo.nodes), {});
  node_master_.assign(static_cast<std::size_t>(topo.nodes), -1);
  node_comm_of_.assign(static_cast<std::size_t>(n), nullptr);
  alloc_seq_.assign(static_cast<std::size_t>(n), 0);

  for (int r = 0; r < n; ++r) {
    const int node = topo.node_of(r);
    if (is_ghost_rank(topo, cfg_, r)) {
      is_ghost_[static_cast<std::size_t>(r)] = true;
      node_ghosts_[static_cast<std::size_t>(node)].push_back(r);
    } else {
      node_users_[static_cast<std::size_t>(node)].push_back(r);
      if (node_master_[static_cast<std::size_t>(node)] < 0) {
        node_master_[static_cast<std::size_t>(node)] = r;
      }
    }
  }
  max_local_users_ = 0;
  for (const auto& users : node_users_) {
    max_local_users_ = std::max(max_local_users_,
                                static_cast<int>(users.size()));
    MMPI_REQUIRE(!users.empty(), "casper: a node has no user processes");
  }
  for (const auto& ghosts : node_ghosts_) {
    MMPI_REQUIRE(static_cast<int>(ghosts.size()) == cfg_.ghosts_per_node,
                 "casper: ghost carving mismatch");
  }
  alive_ghosts_ = node_ghosts_;
  ghost_dead_.assign(static_cast<std::size_t>(n), 0);
  ghost_death_seq_.assign(static_cast<std::size_t>(n), 0);
  node_degraded_.assign(static_cast<std::size_t>(topo.nodes), 0);
}

void CasperLayer::setup_comms(Env& env) {
  const int me = env.world_rank();
  const bool ghost = is_ghost_[static_cast<std::size_t>(me)];
  // COMM_USER_WORLD: all non-ghost ranks, ordered by world rank.
  Comm uw = rt_->p_comm_split(env, rt_->world(), ghost ? -1 : 0, me);
  if (!ghost) {
    MMPI_REQUIRE(uw != nullptr, "casper: user world creation failed");
    // Every user rank receives the SAME shared CommImpl; publish it once.
    // Sharded, the concurrent shared_ptr assignments from different worker
    // threads would race, so the first arrival writes under the lock and the
    // rest just observe it (each rank reads user_world_ only after its own
    // setup_comms, which synchronized on winmap_mu_).
    std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
    if (rt_->engine().sharded()) lk.lock();
    if (user_world_ == nullptr) user_world_ = uw;
  }
  // Node communicator including ghosts (used for the shared-memory mapping).
  Comm nc = rt_->p_comm_split(env, rt_->world(),
                              rt_->topo().node_of(me), me);
  node_comm_of_[static_cast<std::size_t>(me)] = nc;
}

void CasperLayer::on_rank_start(Env& env,
                                const std::function<void(Env&)>& user_main) {
  setup_comms(env);
  const int me = env.world_rank();
  const bool ghost = is_ghost_[static_cast<std::size_t>(me)];
  if (obs::on(rt_->recorder())) {
    // Refine the default "rank N" track names now roles are known: trace
    // viewers then separate ghost service tracks from user compute tracks.
    if (ghost) {
      rt_->recorder()->trace().set_entity_name(me,
                                             "ghost " + std::to_string(me));
    } else {
      rt_->recorder()->trace().set_entity_name(
          me, "user " + std::to_string(user_world_->rank_of_world(me)));
    }
  }
  if (ghost) {
    ghost_loop(env);
  } else {
    user_main(env);
    user_finalize(env);
  }
}

void CasperLayer::ghost_loop(Env& env) {
  // A ghost is a dedicated progress core: it serves redirected operations at
  // full efficiency, unlike an application process draining its own queue.
  rt_->set_dedicated_progress(env.world_rank(), true);
  // The ghost process simply waits for commands in a receive loop. While it
  // waits it sits inside the MPI runtime, which is exactly what lets the MPI
  // implementation make progress on RMA operations targeted at it
  // (paper II.A).
  for (;;) {
    GhostCmd cmd;
    pmpi_->recv(env, &cmd, static_cast<int>(sizeof(cmd)), mpi::Dt::Byte,
                mpi::kAnySource, kTagCmd, rt_->world());
    switch (cmd.code) {
      case GhostCmd::kWinAlloc: {
        auto cw = build_windows(env, 0, static_cast<std::size_t>(
                                            cmd.disp_unit),
                                cmd.epochs, mpi::Info{});
        cw->seq = cmd.seq;
        cw->flip_fault = cfg_.fault.flip_segment_binding &&
                         (cfg_.fault.flip_only_seq < 0 ||
                          cfg_.fault.flip_only_seq == cmd.seq);
        my_ghost_wins(env.world_rank()).push_back(std::move(cw));
        break;
      }
      case GhostCmd::kWinFree: {
        auto& mine = my_ghost_wins(env.world_rank());
        auto it = std::find_if(mine.begin(), mine.end(),
                               [&cmd](const auto& cw) {
                                 return cw->seq == cmd.seq;
                               });
        MMPI_REQUIRE(it != mine.end(),
                     "casper ghost: win-free for unknown window seq %d",
                     cmd.seq);
        auto cw = *it;
        mine.erase(it);
        free_internal_windows(env, *cw);
        break;
      }
      case GhostCmd::kFinalize:
        pmpi_->barrier(env, rt_->world());
        return;
      default:
        MMPI_REQUIRE(false, "casper ghost: bad command %d", cmd.code);
    }
  }
}

std::vector<std::shared_ptr<CasperLayer::CspWin>>& CasperLayer::my_ghost_wins(
    int me) {
  // operator[] may create the slot (a map-structure mutation); ghosts on
  // other shards can be doing the same concurrently. The returned vector is
  // only ever touched by rank `me`'s fiber, and std::map references stay
  // valid across later inserts, so callers use it outside the lock.
  std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
  if (rt_->engine().sharded()) lk.lock();
  return ghost_wins_[me];
}

void CasperLayer::user_finalize(Env& env) {
  pmpi_->barrier(env, user_world_);
  GhostCmd fin; fin.code = GhostCmd::kFinalize; notify_ghosts(env, fin);
  pmpi_->barrier(env, rt_->world());
}

void CasperLayer::notify_ghosts(Env& env, const GhostCmd& cmd) {
  const int me = env.world_rank();
  const int node = rt_->topo().node_of(me);
  if (node_master_[static_cast<std::size_t>(node)] != me) return;
  for (int g : node_ghosts_[static_cast<std::size_t>(node)]) {
    pmpi_->send(env, &cmd, static_cast<int>(sizeof(cmd)), mpi::Dt::Byte,
                g, kTagCmd, rt_->world());
  }
}

// ----------------------------------------------------- comm passthroughs --

Comm CasperLayer::comm_world(Env& env) {
  MMPI_REQUIRE(!is_ghost_[static_cast<std::size_t>(env.world_rank())],
               "casper: ghost rank asked for the user world");
  return user_world_;
}

Comm CasperLayer::comm_split(Env& env, const Comm& c, int color, int key) {
  return pmpi_->comm_split(env, c, color, key);
}

Comm CasperLayer::comm_dup(Env& env, const Comm& c) {
  return pmpi_->comm_dup(env, c);
}

void CasperLayer::send(Env& env, const void* buf, int count, mpi::Dt dt,
                       int dest, int tag, const Comm& c) {
  pmpi_->send(env, buf, count, dt, dest, tag, c);
}

mpi::Status CasperLayer::recv(Env& env, void* buf, int count, mpi::Dt dt,
                              int src, int tag, const Comm& c) {
  return pmpi_->recv(env, buf, count, dt, src, tag, c);
}

mpi::Request CasperLayer::isend(Env& env, const void* buf, int count,
                                mpi::Dt dt, int dest, int tag,
                                const Comm& c) {
  return pmpi_->isend(env, buf, count, dt, dest, tag, c);
}

mpi::Request CasperLayer::irecv(Env& env, void* buf, int count, mpi::Dt dt,
                                int src, int tag, const Comm& c) {
  return pmpi_->irecv(env, buf, count, dt, src, tag, c);
}

mpi::Status CasperLayer::wait(Env& env, const mpi::Request& req) {
  return pmpi_->wait(env, req);
}

bool CasperLayer::test(Env& env, const mpi::Request& req) {
  return pmpi_->test(env, req);
}

void CasperLayer::waitall(Env& env, mpi::Request* reqs, int n) {
  pmpi_->waitall(env, reqs, n);
}

void CasperLayer::barrier(Env& env, const Comm& c) {
  // A user-world barrier is an adaptation point for the online controller:
  // every origin reaches it, so sealed per-origin counters can be decided on
  // consistently right after it (layer_adapt.cpp). Ghosts never call user
  // collectives, and unrelated comms pass straight through.
  if (cfg_.adaptive.enabled && c == user_world_ &&
      !is_ghost_[static_cast<std::size_t>(env.world_rank())]) {
    adapt_barrier(env, c);
    return;
  }
  pmpi_->barrier(env, c);
}

void CasperLayer::bcast(Env& env, void* buf, int count, mpi::Dt dt, int root,
                        const Comm& c) {
  pmpi_->bcast(env, buf, count, dt, root, c);
}

void CasperLayer::reduce(Env& env, const void* s, void* r, int count,
                         mpi::Dt dt, mpi::AccOp op, int root, const Comm& c) {
  pmpi_->reduce(env, s, r, count, dt, op, root, c);
}

void CasperLayer::allreduce(Env& env, const void* s, void* r, int count,
                            mpi::Dt dt, mpi::AccOp op, const Comm& c) {
  pmpi_->allreduce(env, s, r, count, dt, op, c);
}

void CasperLayer::allgather(Env& env, const void* s, int count, mpi::Dt dt,
                            void* r, const Comm& c) {
  pmpi_->allgather(env, s, count, dt, r, c);
}

void CasperLayer::alltoall(Env& env, const void* s, int count, mpi::Dt dt,
                           void* r, const Comm& c) {
  pmpi_->alltoall(env, s, count, dt, r, c);
}

void CasperLayer::gather(Env& env, const void* s, int count, mpi::Dt dt,
                         void* r, int root, const Comm& c) {
  pmpi_->gather(env, s, count, dt, r, root, c);
}

void CasperLayer::scatter(Env& env, const void* s, int count, mpi::Dt dt,
                          void* r, int root, const Comm& c) {
  pmpi_->scatter(env, s, count, dt, r, root, c);
}

}  // namespace casper::core
