// CasperLayer: the interception layer implementing the paper's design.
// Internal header (exposed for white-box tests).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/casper.hpp"
#include "mpi/layer.hpp"
#include "mpi/pmpi.hpp"
#include "mpi/runtime.hpp"

namespace casper::core {

/// Reserved tags for Casper-internal messages on the underlying world.
inline constexpr int kTagCmd = 901001;
inline constexpr int kTagPscwPost = 901002;
inline constexpr int kTagPscwComplete = 901003;

/// Epoch-type mask parsed from the `epochs_used` info hint.
enum EpochMask : unsigned {
  kEpochFence = 1u << 0,
  kEpochPscw = 1u << 1,
  kEpochLock = 1u << 2,
  kEpochLockAll = 1u << 3,
  kEpochAll = 0xF,
};
unsigned parse_epochs(const mpi::Info& info);

/// Command sent from a node's user master to the node's ghosts so they can
/// mirror the user processes' collective window operations.
struct GhostCmd {
  enum Code : int { kWinAlloc = 1, kWinFree = 2, kFinalize = 3 };
  int code = 0;
  unsigned epochs = kEpochAll;
  long long disp_unit = 1;
  /// Window sequence number: user processes allocate windows in the same
  /// collective order on every rank, so a per-rank allocation counter
  /// identifies the window; win-free commands name the window to tear down
  /// (frees may happen in any order).
  int seq = 0;
};

class CasperLayer final : public mpi::Layer {
 public:
  CasperLayer(mpi::Runtime& rt, Config cfg);

  // ---- mpi::Layer --------------------------------------------------------
  void on_rank_start(mpi::Env& env,
                     const std::function<void(mpi::Env&)>& user_main) override;
  mpi::Comm comm_world(mpi::Env& env) override;
  mpi::Comm comm_split(mpi::Env& env, const mpi::Comm& c, int color,
                       int key) override;
  mpi::Comm comm_dup(mpi::Env& env, const mpi::Comm& c) override;
  void send(mpi::Env& env, const void* buf, int count, mpi::Dt dt, int dest,
            int tag, const mpi::Comm& c) override;
  mpi::Status recv(mpi::Env& env, void* buf, int count, mpi::Dt dt, int src,
                   int tag, const mpi::Comm& c) override;
  mpi::Request isend(mpi::Env& env, const void* buf, int count, mpi::Dt dt,
                     int dest, int tag, const mpi::Comm& c) override;
  mpi::Request irecv(mpi::Env& env, void* buf, int count, mpi::Dt dt, int src,
                     int tag, const mpi::Comm& c) override;
  mpi::Status wait(mpi::Env& env, const mpi::Request& req) override;
  bool test(mpi::Env& env, const mpi::Request& req) override;
  void waitall(mpi::Env& env, mpi::Request* reqs, int n) override;
  void barrier(mpi::Env& env, const mpi::Comm& c) override;
  void bcast(mpi::Env& env, void* buf, int count, mpi::Dt dt, int root,
             const mpi::Comm& c) override;
  void reduce(mpi::Env& env, const void* s, void* r, int count, mpi::Dt dt,
              mpi::AccOp op, int root, const mpi::Comm& c) override;
  void allreduce(mpi::Env& env, const void* s, void* r, int count, mpi::Dt dt,
                 mpi::AccOp op, const mpi::Comm& c) override;
  void allgather(mpi::Env& env, const void* s, int count, mpi::Dt dt, void* r,
                 const mpi::Comm& c) override;
  void alltoall(mpi::Env& env, const void* s, int count, mpi::Dt dt, void* r,
                const mpi::Comm& c) override;
  void gather(mpi::Env& env, const void* s, int count, mpi::Dt dt, void* r,
              int root, const mpi::Comm& c) override;
  void scatter(mpi::Env& env, const void* s, int count, mpi::Dt dt, void* r,
               int root, const mpi::Comm& c) override;

  mpi::Win win_allocate(mpi::Env& env, std::size_t bytes, std::size_t du,
                        const mpi::Info& info, const mpi::Comm& c,
                        void** base) override;
  mpi::Win win_allocate_shared(mpi::Env& env, std::size_t bytes,
                               std::size_t du, const mpi::Info& info,
                               const mpi::Comm& c, void** base) override;
  mpi::Win win_create(mpi::Env& env, void* base, std::size_t bytes,
                      std::size_t du, const mpi::Info& info,
                      const mpi::Comm& c) override;
  void win_free(mpi::Env& env, mpi::Win& w) override;

  void put(mpi::Env& env, const void* o, int oc, mpi::Datatype odt,
           int target, std::size_t tdisp, int tc, mpi::Datatype tdt,
           const mpi::Win& w) override;
  void get(mpi::Env& env, void* o, int oc, mpi::Datatype odt, int target,
           std::size_t tdisp, int tc, mpi::Datatype tdt,
           const mpi::Win& w) override;
  void accumulate(mpi::Env& env, const void* o, int oc, mpi::Datatype odt,
                  int target, std::size_t tdisp, int tc, mpi::Datatype tdt,
                  mpi::AccOp op, const mpi::Win& w) override;
  void get_accumulate(mpi::Env& env, const void* o, int oc, mpi::Datatype odt,
                      void* res, int rc, mpi::Datatype rdt, int target,
                      std::size_t tdisp, int tc, mpi::Datatype tdt,
                      mpi::AccOp op, const mpi::Win& w) override;
  void fetch_and_op(mpi::Env& env, const void* value, void* result,
                    mpi::Dt dt, int target, std::size_t tdisp, mpi::AccOp op,
                    const mpi::Win& w) override;
  void compare_and_swap(mpi::Env& env, const void* expected,
                        const void* desired, void* result, mpi::Dt dt,
                        int target, std::size_t tdisp,
                        const mpi::Win& w) override;

  void win_fence(mpi::Env& env, unsigned mode_assert,
                 const mpi::Win& w) override;
  void win_post(mpi::Env& env, const mpi::Group& g, unsigned mode_assert,
                const mpi::Win& w) override;
  void win_start(mpi::Env& env, const mpi::Group& g, unsigned mode_assert,
                 const mpi::Win& w) override;
  void win_complete(mpi::Env& env, const mpi::Win& w) override;
  void win_wait(mpi::Env& env, const mpi::Win& w) override;
  void win_lock(mpi::Env& env, mpi::LockType type, int target,
                unsigned mode_assert, const mpi::Win& w) override;
  void win_unlock(mpi::Env& env, int target, const mpi::Win& w) override;
  void win_lock_all(mpi::Env& env, unsigned mode_assert,
                    const mpi::Win& w) override;
  void win_unlock_all(mpi::Env& env, const mpi::Win& w) override;
  void win_flush(mpi::Env& env, int target, const mpi::Win& w) override;
  void win_flush_all(mpi::Env& env, const mpi::Win& w) override;
  void win_flush_local(mpi::Env& env, int target, const mpi::Win& w) override;
  void win_flush_local_all(mpi::Env& env, const mpi::Win& w) override;
  void win_sync(mpi::Env& env, const mpi::Win& w) override;

  // ---- introspection for tests & benches ---------------------------------
  const mpi::Comm& user_world() const { return user_world_; }
  bool ghost_rank(int world_rank) const {
    return is_ghost_[static_cast<std::size_t>(world_rank)];
  }
  /// World rank of the ghost statically bound to a user rank of a window.
  int bound_ghost_of(const mpi::Win& user_win, int user_rank);
  /// Number of internal windows Casper created for a managed user window
  /// (overlapping lock windows + the fence/pscw/lockall window), for the
  /// Fig. 3(a) hint analysis.
  int internal_window_count(const mpi::Win& user_win);
  const Config& config() const { return cfg_; }

  /// Per-ghost redirection load for a managed window, summed over all
  /// origins: how many operations / bytes each ghost was sent (the
  /// observability real Casper exposes via CSP_VERBOSE; lets applications
  /// and tests see binding-policy balance).
  struct GhostLoad {
    int ghost_world = -1;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<GhostLoad> ghost_load(const mpi::Win& user_win);

  /// Adaptive-controller introspection (tests & benches; adaptive runs
  /// only): the decision digest, current item→slot map and effective
  /// dynamic policy of origin 0's replica (all origins agree by
  /// construction), and one origin's plan-cache generation (to observe the
  /// invalidation a rebind performs).
  std::uint64_t adapt_digest(const mpi::Win& user_win);
  std::vector<int> adapt_map(const mpi::Win& user_win);
  int adapt_policy(const mpi::Win& user_win);
  std::uint64_t plan_generation(const mpi::Win& user_win, int origin);

 private:
  /// Per-user-target placement of window memory.
  struct TargetInfo {
    int node = 0;
    std::size_t offset = 0;  ///< byte offset of the segment in node buffer
    std::size_t size = 0;
    std::size_t disp_unit = 1;
    int bound_ghost = -1;  ///< world rank (== comm rank in world windows)
    int local_idx = 0;     ///< index among node-local users (ug_win index)
  };

  /// Per-(origin, target) passive-epoch state.
  struct OriginTargetEp {
    bool locked = false;
    mpi::LockType type = mpi::LockType::Shared;
    unsigned mode_assert = 0;
    /// Static-binding-free: set after a flush completes under the lock
    /// (paper III.B.3); enables dynamic binding of PUT/GET.
    bool binding_free = false;
    /// Degraded mode: this origin lazily acquired a lock on the *user*
    /// window for this target because the target node lost all its ghosts
    /// (ops go direct, original-MPI style). Released at unlock time.
    bool user_locked = false;
    /// Accumulate-class ops issued to this target and not yet completed by
    /// a flush/unlock/fence (adaptive runs only): any nonzero count vetoes
    /// a segment remap, which must not move a byte's serializing ghost
    /// while an RMW is in flight.
    std::uint32_t unflushed_acc = 0;
  };

  /// One piece of a (possibly split) redirected operation.
  struct SubOp {
    int ghost = -1;          ///< ghost world rank (target in internal wins)
    std::size_t tdisp = 0;   ///< byte displacement in the ghost's frame
    int tcount = 0;
    mpi::Datatype tdt;
    std::size_t payload_off = 0;  ///< offset into packed origin data
  };

  /// Memoized resolve_static output: applications re-issue the same op shape
  /// (target, displacement, count, datatype) every iteration, and the
  /// byte→ghost split is pure in that key while the binding stands. Open
  /// addressing over a fixed power-of-two slot array with bounded linear
  /// probing; entries from an older generation are stale and overwritten in
  /// place (their SubOp vectors are reused, so a warm cache allocates
  /// nothing). Lives per origin so hit/miss counts depend only on that
  /// origin's own call sequence, never on rank interleaving.
  struct PlanEntry {
    std::uint64_t gen = 0;  ///< 0 = empty; valid iff == PlanCache::gen
    int target = -1;
    std::size_t disp_bytes = 0;
    int tcount = 0;
    mpi::Datatype tdt;
    std::vector<SubOp> subs;
  };
  struct PlanCache {
    static constexpr std::size_t kSlots = 64;  // power of two
    static constexpr std::size_t kProbe = 4;   // bounded displacement
    std::uint64_t gen = 1;  ///< bump to invalidate (lock/epoch transitions)
    std::vector<PlanEntry> slots;  // sized kSlots at window build
    std::vector<SubOp> scratch;    ///< uncached path (fault injection)
  };

  /// Per-origin epoch state on one Casper window.
  struct OriginEp {
    std::vector<OriginTargetEp> tl;  // per target user rank
    bool lockall = false;
    bool fence_open = false;
    std::vector<int> access_group;    // user comm ranks (PSCW)
    std::vector<int> exposure_group;  // user comm ranks (PSCW)
    /// Bitset mirror of access_group, indexed by user comm rank: the
    /// per-op epoch check must not scan the group vector.
    std::vector<std::uint64_t> access_mask;
    std::vector<std::uint64_t> ops_to_ghost;    // by ghost world rank
    std::vector<std::uint64_t> bytes_to_ghost;  // by ghost world rank
    std::uint64_t rr = 0;  ///< round-robin cursor for the "random" policy
    PlanCache plans;       ///< memoized static-binding splits (this origin)
    /// Adaptive progress control (cfg.adaptive.enabled only; see
    /// layer_adapt.cpp and DESIGN.md §15). `adapt` is this origin's replica
    /// of the controller state — every origin computes the same values from
    /// the same sealed board, so no replica is authoritative. `adapt_acc`
    /// accumulates this origin's round counters privately at issue time;
    /// only adapt_seal() publishes them to the shared board (pre-barrier),
    /// keeping issue-path writes out of other origins' post-barrier reads.
    progress::AdaptState adapt;
    progress::AdaptSample adapt_acc;
  };

  /// All internal state Casper keeps for one user window. One canonical
  /// instance is shared by all member ranks (first finisher registers it);
  /// only the node shared-memory windows differ per node, so they are kept
  /// per node.
  struct CspWin {
    mpi::Win user_win;  ///< handle returned to the application
    std::vector<mpi::Win> shm_by_node;  ///< node shared-memory windows
    std::vector<mpi::Win> ug_wins;  ///< per local-user-index, over world
    mpi::Win global_win;            ///< fence/pscw/lockall window, over world
    unsigned epochs = kEpochAll;
    std::vector<TargetInfo> tgt;          // per user comm rank
    std::vector<std::size_t> node_total;  // per node: shared buffer bytes
    std::vector<OriginEp> ep;             // per user comm rank
    int seq = 0;  ///< allocation sequence number (ghost free matching)
    /// Fault-injection scoping (satellite fix for the global-flag bypass):
    /// only a window whose sequence number matches Config::Fault selection
    /// bypasses the plan cache / applies the origin-dependent segment flip.
    bool flip_fault = false;
    /// Fence-epoch degradation is latched *collectively*: at every fence all
    /// ranks allreduce the death sequence they observed, so every rank takes
    /// the direct-to-user-window route for the same epochs.
    std::uint64_t fence_latch = 0;
    /// Set once fence epochs on this window also fence the user window
    /// (degraded direct ops need a real epoch there).
    bool fence_user_open = false;
    /// Adaptive-controller shared state (allocated only when enabled).
    /// `board` is double-buffered by round parity: the seal at round r+2
    /// reuses the buffer decide-read at round r, and cannot overlap those
    /// reads because barrier r+1 interposes (no origin passes it before
    /// every origin finished decide r). Each origin writes only its own
    /// slot, pre-barrier; all slots are read post-barrier — the barrier's
    /// message chain is the cross-shard happens-before.
    struct AdaptShared {
      bool on = false;
      std::vector<progress::AdaptNode> nodes;  ///< item layout per node
      std::vector<std::size_t> sub_bytes;      ///< per node (segment mode)
      std::vector<progress::AdaptSample> board[2];  ///< [parity][origin]
    };
    AdaptShared adapt;
  };

  // --- setup / ghosts ------------------------------------------------------
  void setup_topology();
  void setup_comms(mpi::Env& env);
  void ghost_loop(mpi::Env& env);
  void user_finalize(mpi::Env& env);
  /// Node user-masters send `cmd` to their node's ghosts.
  void notify_ghosts(mpi::Env& env, const GhostCmd& cmd);
  /// Collective (over ALL world ranks) creation of the internal windows.
  std::shared_ptr<CspWin> build_windows(mpi::Env& env, std::size_t bytes,
                                        std::size_t du, unsigned epochs,
                                        const mpi::Info& info);
  void free_internal_windows(mpi::Env& env, CspWin& cw);

  // --- redirection ---------------------------------------------------------
  CspWin* managed(const mpi::Win& w);
  CspWin& managed_checked(const mpi::Win& w, const char* who);
  int my_user_rank(mpi::Env& env) const;
  /// The internal window carrying operations to user target `u` under the
  /// currently active epoch of `origin`.
  mpi::Win& route_window(CspWin& cw, int origin, int target);
  /// Static binding: resolve an op from user `origin` on user target `u`
  /// into sub-ops. (`origin` only matters under fault injection, where the
  /// segment→ghost map is deliberately made origin-dependent.)
  void resolve_static(CspWin& cw, int origin, int target,
                      std::size_t disp_bytes, int tcount,
                      const mpi::Datatype& tdt, std::vector<SubOp>& out);
  /// Cached resolve_static: returns the split plan for the key, computing it
  /// on miss. The reference stays valid until the next plan_lookup by the
  /// SAME origin (other origins use their own caches), which cannot happen
  /// inside one issue() call.
  const std::vector<SubOp>& plan_lookup(CspWin& cw, OriginEp& ep, int origin,
                                        int target, std::size_t disp_bytes,
                                        int tcount, const mpi::Datatype& tdt);
  /// Dynamic binding ghost choice (paper III.B.3), PUT/GET only.
  int choose_dynamic_ghost(mpi::Env& env, CspWin& cw, int origin, int node,
                           std::size_t bytes);
  bool dynamic_applicable(const CspWin& cw, int origin, int target,
                          mpi::OpKind kind) const;
  /// Issue one user RMA op through Casper's redirection machinery.
  void issue(mpi::Env& env, mpi::OpKind kind, mpi::AccOp op, const void* o,
             int oc, const mpi::Datatype& odt, const void* o2, void* res,
             int rc, const mpi::Datatype& rdt, int target, std::size_t tdisp,
             int tc, const mpi::Datatype& tdt, const mpi::Win& w);
  /// Direct local execution of a self-targeted op (never delayed).
  void exec_self(mpi::Env& env, mpi::OpKind kind, mpi::AccOp op,
                 const void* o, int oc, const mpi::Datatype& odt,
                 const void* o2, void* res, int rc, const mpi::Datatype& rdt,
                 std::size_t disp_bytes, int tc, const mpi::Datatype& tdt,
                 CspWin& cw, int target);

  // --- adaptive progress control (layer_adapt.cpp) -------------------------
  /// Size the board/replicas and seed the initial map so that adaptive
  /// resolution routes exactly like the static binding until a remap.
  void init_adapt(CspWin& cw);
  /// Issue-time attribution of one routed (sub)op's demand to its binding
  /// item, into the origin's PRIVATE accumulators.
  void adapt_note(CspWin& cw, OriginEp& ep, const TargetInfo& ti,
                  std::size_t node_off, std::size_t nbytes);
  /// Publish this origin's round counters to the sealed board (pre-barrier)
  /// and reset the private accumulators.
  void adapt_seal(CspWin& cw, int me_u);
  /// Replay the pure decision over the sealed board (post-barrier): every
  /// origin updates its own replica identically; a remap bumps the plan
  /// generation; origin 0 emits the adapt.* counters and lb.adapt instant.
  void adapt_decide(mpi::Env& env, CspWin& cw, int me_u);
  /// Barrier override body for adaptive runs: seal every managed window,
  /// barrier, decide every managed window.
  void adapt_barrier(mpi::Env& env, const mpi::Comm& c);
  /// Ghost world rank for a map slot, with the same pure death-fallback the
  /// static path uses (decisions never read death state; issue time does).
  int adapt_ghost(int node, int slot) const;
  /// Dynamic-binding policy in force: the controller's replica when
  /// adaptive, cfg.dynamic otherwise.
  DynamicLb effective_lb(const CspWin& cw, const OriginEp& ep) const;
  /// Adaptive counterpart of resolve_static: routes by the origin's
  /// replicated item→slot map (finer-grained subchunks under segment
  /// binding).
  void resolve_adaptive(CspWin& cw, int origin, int target,
                        std::size_t disp_bytes, int tcount,
                        const mpi::Datatype& tdt, std::vector<SubOp>& out);

  // --- ghost failure recovery (layer_fault.cpp) ----------------------------
  /// Register the runtime death handler and precompute successor forwarding
  /// for every planned ghost kill. No-op without kills in the FaultPlan.
  void setup_fault_recovery();
  /// Death-handler callback, one heartbeat after a kill (event context —
  /// pure state mutation, no MPI calls): removes the ghost from the alive
  /// sets, rebinds its targets onto survivors, invalidates cached plans, and
  /// flips the node into degraded (no-redirect) mode when it was the last.
  void on_ghost_death(int world_rank, sim::Time t);
  /// True when fence-epoch ops on `cw` to targets on `node` must go direct
  /// to user memory: the node's total ghost loss was latched at a fence.
  bool fence_direct(const CspWin& cw, int node) const;
  /// Degraded direct issue on the user window (original-MPI mode), with the
  /// lazy user-window lock for passive epochs.
  void issue_degraded(mpi::Env& env, CspWin& cw, OriginEp& ep,
                      mpi::OpKind kind, mpi::AccOp op, const void* o, int oc,
                      const mpi::Datatype& odt, const void* o2, void* res,
                      int rc, const mpi::Datatype& rdt, int target,
                      std::size_t tdisp, int tc, const mpi::Datatype& tdt);

  mpi::Runtime* rt_;
  Config cfg_;
  std::shared_ptr<mpi::Pmpi> pmpi_;

  /// Hot-path counter pointers, resolved once at construction (stats map
  /// nodes are stable): per-op increments must not pay a string lookup.
  /// One pointer per engine shard (each shard owns a stats replica, merged
  /// after the run); index with shard_idx(). Unsharded runs hold a single
  /// pointer into the global stats, so behaviour is unchanged.
  std::vector<std::uint64_t*> stat_dynamic_ops_;
  std::vector<std::uint64_t*> stat_split_subops_;
  std::vector<std::uint64_t*> stat_self_ops_;
  /// Recorder metric pointers (null if obs off). Also null when sharded: the
  /// recorder's per-shard replicas are created at run() — after this layer's
  /// constructor — so sharded runs fall back to the per-shard metrics map
  /// lookup at the call site instead of caching a pointer here.
  std::uint64_t* plan_hit_ = nullptr;
  std::uint64_t* plan_miss_ = nullptr;

  /// Index into the per-shard stat pointer vectors for the calling worker
  /// thread (0 on the main thread and in single-shard runs).
  static std::size_t shard_idx() {
    return static_cast<std::size_t>(sim::Engine::current_shard());
  }

  // topology-derived, computed once in the constructor
  std::vector<bool> is_ghost_;                 // by world rank
  std::vector<std::vector<int>> node_ghosts_;  // per node: ghost world ranks
  std::vector<std::vector<int>> node_users_;   // per node: user world ranks
  std::vector<int> node_master_;               // per node: first user rank
  int max_local_users_ = 0;

  // --- fault recovery state (inert unless the FaultPlan schedules kills) ---
  bool fault_recovery_ = false;
  bool any_ghost_dead_ = false;
  std::vector<std::vector<int>> alive_ghosts_;  // node_ghosts_ minus dead
  std::vector<char> ghost_dead_;                // by world rank
  std::vector<std::uint64_t> ghost_death_seq_;  // by world rank (0 = alive)
  std::vector<char> node_degraded_;             // per node: all ghosts dead
  std::uint64_t death_seq_ = 0;                 // detected deaths so far
  std::uint64_t* stat_rebound_ops_ = nullptr;   // ops issued via rebinding

  mpi::Comm user_world_;
  std::vector<mpi::Comm> node_comm_of_;  // per world rank: its node comm
  std::map<mpi::WinImpl*, std::shared_ptr<CspWin>> winmap_;
  /// Ghost-side record of internal windows, per ghost world rank, matched by
  /// sequence number on free.
  std::map<int, std::vector<std::shared_ptr<CspWin>>> ghost_wins_;
  /// Guards winmap_ (lookups AND registration), the ghost_wins_ map
  /// structure, and the one-time user_world_ publication when the engine is
  /// sharded: member ranks on different worker threads can allocate or free
  /// windows inside the same conservative window, so a find can otherwise
  /// race a concurrent insert. Never locked (defer_lock) in single-shard
  /// runs. Held only around map/pointer accesses — NEVER across a pmpi_ call
  /// (those can switch fibers, and another fiber on the same worker thread
  /// relocking would deadlock).
  std::mutex winmap_mu_;
  /// ghost_wins_[me] with the map-structure race handled: operator[] may
  /// insert, so the slot is created under winmap_mu_ when sharded. The
  /// returned vector is only ever mutated by rank `me`'s own fiber (map
  /// references are stable under later inserts).
  std::vector<std::shared_ptr<CspWin>>& my_ghost_wins(int me);
  /// Per-world-rank count of managed window allocations (sequence source).
  std::vector<int> alloc_seq_;
};

}  // namespace casper::core
