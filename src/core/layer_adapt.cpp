// CasperLayer: metrics-driven adaptive progress control (DESIGN.md §15,
// ROADMAP item 4).
//
// At every epoch boundary on the user world (barrier or fence), each origin
// seals its private round counters into its own slot of the window's shared
// board (pre-barrier), then — after the barrier — replays the pure decision
// function progress::decide() over the complete board against its own
// replica of the controller state. Identical inputs keep every replica
// exactly equal, so a remap needs no consensus round: the same trick the
// ghost-failure rebinding remap uses. The board is double-buffered by round
// parity; the barrier between consecutive rounds is both the memory fence
// (cross-shard happens-before via its message chain) and the reuse guard
// (the seal of round r+2 cannot overlap the decide-reads of round r because
// no origin passes barrier r+1 before every origin finished decide r).
//
// The controller itself never advances virtual time and emits observability
// only from user rank 0, so an adaptive run that never remaps is
// byte-identical in timing to a static run.
#include <algorithm>

#include "core/layer_impl.hpp"
#include "mpi/check.hpp"
#include "mpi/datatype.hpp"
#include "progress/adaptive.hpp"

namespace casper::core {

using mpi::Env;

// AdaptState::policy mirrors core::DynamicLb numerically.
static_assert(static_cast<int>(DynamicLb::None) == progress::kLbNone);
static_assert(static_cast<int>(DynamicLb::Random) == progress::kLbRandom);
static_assert(static_cast<int>(DynamicLb::OpCounting) ==
              progress::kLbOpCount);
static_assert(static_cast<int>(DynamicLb::ByteCounting) ==
              progress::kLbByteCount);

namespace {
std::size_t align16(std::size_t v) {
  return (v + mpi::kMaxBasicDtSize - 1) & ~(mpi::kMaxBasicDtSize - 1);
}
}  // namespace

void CasperLayer::init_adapt(CspWin& cw) {
  auto& ad = cw.adapt;
  ad.on = true;
  const std::size_t nnodes = node_ghosts_.size();
  ad.nodes.assign(nnodes, progress::AdaptNode{});
  ad.sub_bytes.assign(nnodes, 0);
  std::vector<int> init_map;
  int first = 0;
  for (std::size_t n = 0; n < nnodes; ++n) {
    const int g = static_cast<int>(node_ghosts_[n].size());
    int count = 0;
    if (cfg_.binding == Binding::Rank) {
      count = static_cast<int>(node_users_[n].size());
      init_map.resize(static_cast<std::size_t>(first + count), 0);
    } else {
      // Mirror resolve_static's chunk computation, then split every chunk
      // into `subchunks` 16B-aligned pieces the controller can move
      // independently. When sub_bytes divides the chunk (the common
      // power-of-two case) the initial map routes byte-for-byte like the
      // static owner function.
      const std::size_t total = cw.node_total[n];
      std::size_t chunk = (total + static_cast<std::size_t>(g) - 1) /
                          static_cast<std::size_t>(g);
      chunk = align16(chunk);
      if (chunk == 0) chunk = mpi::kMaxBasicDtSize;
      const int sub = std::max(1, cfg_.adaptive.subchunks);
      std::size_t sb = align16((chunk + static_cast<std::size_t>(sub) - 1) /
                               static_cast<std::size_t>(sub));
      if (sb == 0) sb = mpi::kMaxBasicDtSize;
      ad.sub_bytes[n] = sb;
      count = g * sub;
      init_map.resize(static_cast<std::size_t>(first + count), 0);
      for (int i = 0; i < count; ++i) {
        init_map[static_cast<std::size_t>(first + i)] = static_cast<int>(
            std::min(static_cast<std::size_t>(i) * sb / chunk,
                     static_cast<std::size_t>(g - 1)));
      }
    }
    ad.nodes[n] = progress::AdaptNode{first, count, g};
    first += count;
  }
  if (cfg_.binding == Binding::Rank) {
    // Initial slots = the static (possibly NUMA-aware) rank binding.
    for (const TargetInfo& ti : cw.tgt) {
      const auto& ng = node_ghosts_[static_cast<std::size_t>(ti.node)];
      const auto it = std::find(ng.begin(), ng.end(), ti.bound_ghost);
      init_map[static_cast<std::size_t>(
          ad.nodes[static_cast<std::size_t>(ti.node)].first + ti.local_idx)] =
          static_cast<int>(it - ng.begin());
    }
  }
  const std::size_t nitems = static_cast<std::size_t>(first);
  for (auto& buf : ad.board) {
    buf.resize(cw.ep.size());
    for (auto& s : buf) {
      s.item_ops.assign(nitems, 0);
      s.item_bytes.assign(nitems, 0);
    }
  }
  for (auto& ep : cw.ep) {
    ep.adapt.map = init_map;
    ep.adapt.weight.assign(nitems, obs::Ewma{});
    ep.adapt.policy = static_cast<int>(cfg_.dynamic);
    ep.adapt.round = 0;
    ep.adapt_acc.item_ops.assign(nitems, 0);
    ep.adapt_acc.item_bytes.assign(nitems, 0);
  }
}

void CasperLayer::adapt_note(CspWin& cw, OriginEp& ep, const TargetInfo& ti,
                             std::size_t node_off, std::size_t nbytes) {
  const auto& nd = cw.adapt.nodes[static_cast<std::size_t>(ti.node)];
  auto& acc = ep.adapt_acc;
  if (cfg_.binding == Binding::Rank) {
    const auto item = static_cast<std::size_t>(nd.first + ti.local_idx);
    ++acc.item_ops[item];
    acc.item_bytes[item] += nbytes;
    return;
  }
  // Segment: attribute exactly per subchunk, so a remapped piece keeps an
  // honest weight no matter which ghost currently serves it.
  const std::size_t sb = cw.adapt.sub_bytes[static_cast<std::size_t>(ti.node)];
  const std::size_t last = static_cast<std::size_t>(nd.count - 1);
  std::size_t off = node_off;
  std::size_t left = nbytes;
  while (true) {
    const std::size_t ci = std::min(off / sb, last);
    const std::size_t item = static_cast<std::size_t>(nd.first) + ci;
    const std::size_t take =
        ci == last ? left : std::min(left, (ci + 1) * sb - off);
    ++acc.item_ops[item];
    acc.item_bytes[item] += take;
    left -= take;
    if (left == 0) break;
    off += take;
  }
}

void CasperLayer::adapt_seal(CspWin& cw, int me_u) {
  auto& ep = cw.ep[static_cast<std::size_t>(me_u)];
  auto& acc = ep.adapt_acc;
  progress::AdaptSample& out =
      cw.adapt.board[ep.adapt.round & 1][static_cast<std::size_t>(me_u)];
  std::copy(acc.item_ops.begin(), acc.item_ops.end(), out.item_ops.begin());
  std::copy(acc.item_bytes.begin(), acc.item_bytes.end(),
            out.item_bytes.begin());
  out.dyn_ops = acc.dyn_ops;
  out.dyn_bytes = acc.dyn_bytes;
  out.dyn_max_bytes = acc.dyn_max_bytes;
  out.unflushed_acc = acc.unflushed_acc;  // a level, not a delta: keep it
  std::fill(acc.item_ops.begin(), acc.item_ops.end(), 0);
  std::fill(acc.item_bytes.begin(), acc.item_bytes.end(), 0);
  acc.dyn_ops = 0;
  acc.dyn_bytes = 0;
  acc.dyn_max_bytes = 0;
}

void CasperLayer::adapt_decide(Env& env, CspWin& cw, int me_u) {
  auto& ep = cw.ep[static_cast<std::size_t>(me_u)];
  const auto& board = cw.adapt.board[ep.adapt.round & 1];
  const progress::AdaptOutcome out =
      progress::decide(cfg_.adaptive, cw.adapt.nodes, board, ep.adapt);
  if (out.remapped) ++ep.plans.gen;  // cached splits route by the old map
  if (me_u != 0 || !obs::on(rt_->recorder())) return;
  obs::Recorder* rec = rt_->recorder();
  auto& m = rec->metrics();
  ++m.counter("adapt.rounds");
  if (out.remapped) ++m.counter("adapt.rebinds");
  if (out.policy_changed) ++m.counter("adapt.policy_switches");
  if (out.skipped_unflushed) ++m.counter("adapt.skipped_unflushed");
  if (out.cold) ++m.counter("adapt.skipped_cold");
  // Summed digest: an exact-match invariance witness across schedules and
  // shard counts (only rank 0's shard writes it; shard merge sums).
  m.counter("adapt.map_digest") += out.digest;
  rec->trace().instant(
      env.world_rank(), obs::Ev::LbAdapt, env.now(), out.digest,
      static_cast<std::uint64_t>(cw.user_win->id()),
      (out.remapped ? 1u : 0u) | (out.policy_changed ? 2u : 0u) |
          (out.skipped_unflushed ? 4u : 0u));
}

void CasperLayer::adapt_barrier(Env& env, const mpi::Comm& c) {
  // Snapshot the managed windows in a deterministic order. Window
  // allocation/free is collective over the same ranks barriering here, so
  // no rank can be mutating winmap_ concurrently; the lock only orders the
  // map reads against registrations in earlier conservative windows.
  std::vector<CspWin*> wins;
  {
    std::unique_lock<std::mutex> lk(winmap_mu_, std::defer_lock);
    if (rt_->engine().sharded()) lk.lock();
    wins.reserve(winmap_.size());
    for (auto& [impl, cw] : winmap_) {
      (void)impl;
      if (cw->adapt.on) wins.push_back(cw.get());
    }
  }
  std::sort(wins.begin(), wins.end(), [](const CspWin* a, const CspWin* b) {
    return a->user_win->id() < b->user_win->id();
  });
  const int me_u = my_user_rank(env);
  for (CspWin* cw : wins) adapt_seal(*cw, me_u);
  pmpi_->barrier(env, c);
  for (CspWin* cw : wins) adapt_decide(env, *cw, me_u);
}

int CasperLayer::adapt_ghost(int node, int slot) const {
  const auto& ng = node_ghosts_[static_cast<std::size_t>(node)];
  int gw = ng[static_cast<std::size_t>(slot) % ng.size()];
  // Same pure death-fallback as the static path's ghost_at: decisions never
  // read death state, issue time applies it, so a rebind in flight during a
  // ghost kill still resolves to one agreed map on every origin.
  const auto& alive = alive_ghosts_[static_cast<std::size_t>(node)];
  if (any_ghost_dead_ && ghost_dead_[static_cast<std::size_t>(gw)] != 0 &&
      !alive.empty()) {
    gw = alive[static_cast<std::size_t>(slot) % alive.size()];
  }
  return gw;
}

DynamicLb CasperLayer::effective_lb(const CspWin& cw,
                                    const OriginEp& ep) const {
  if (!cw.adapt.on) return cfg_.dynamic;
  return static_cast<DynamicLb>(ep.adapt.policy);
}

void CasperLayer::resolve_adaptive(CspWin& cw, int origin, int target,
                                   std::size_t disp_bytes, int tcount,
                                   const mpi::Datatype& tdt,
                                   std::vector<SubOp>& out) {
  const auto& ti = cw.tgt[static_cast<std::size_t>(target)];
  const auto& ep = cw.ep[static_cast<std::size_t>(origin)];
  const auto& nd = cw.adapt.nodes[static_cast<std::size_t>(ti.node)];
  const std::size_t base = ti.offset + disp_bytes;

  if (cfg_.binding == Binding::Rank) {
    const int slot = ep.adapt.map[static_cast<std::size_t>(nd.first +
                                                           ti.local_idx)];
    out.push_back(SubOp{adapt_ghost(ti.node, slot), base, tcount, tdt, 0});
    return;
  }

  // Segment binding at subchunk granularity: the walk is resolve_static's,
  // with the byte→owner map indirected through the controller's replicated
  // item→slot map. Subchunk boundaries are 16B aligned, so a split never
  // divides a basic element, and all origins share one map at any instant —
  // accumulate atomicity holds exactly as for the static chunking.
  const std::size_t sb = cw.adapt.sub_bytes[static_cast<std::size_t>(ti.node)];
  const std::size_t last = static_cast<std::size_t>(nd.count - 1);
  const std::size_t es = tdt.elem_size();
  const std::size_t block = static_cast<std::size_t>(tdt.blocklen) * es;
  const std::size_t stride = static_cast<std::size_t>(tdt.stride) * es;
  std::size_t payload_off = 0;
  for (int b = 0; b < tcount; ++b) {
    std::size_t lo = base + static_cast<std::size_t>(b) * stride;
    std::size_t remaining = block;
    while (remaining > 0) {
      const std::size_t ci = std::min(lo / sb, last);
      const std::size_t len =
          ci == last ? remaining : std::min(remaining, (ci + 1) * sb - lo);
      MMPI_REQUIRE(len % es == 0 && lo % es == 0,
                   "casper: adaptive subchunk boundary would split a basic "
                   "element (misaligned displacement)");
      const int slot = ep.adapt.map[static_cast<std::size_t>(nd.first) + ci];
      const int gw = adapt_ghost(ti.node, slot);
      if (!out.empty() && out.back().ghost == gw &&
          out.back().tdisp + static_cast<std::size_t>(out.back().tcount) *
                                 out.back().tdt.elem_size() *
                                 static_cast<std::size_t>(
                                     out.back().tdt.blocklen) ==
              lo &&
          out.back().tdt.contiguous() &&
          out.back().payload_off +
                  mpi::data_bytes(out.back().tcount, out.back().tdt) ==
              payload_off) {
        out.back().tcount += static_cast<int>(len / es);
      } else {
        out.push_back(SubOp{gw, lo, static_cast<int>(len / es),
                            mpi::contig(tdt.base), payload_off});
      }
      lo += len;
      payload_off += len;
      remaining -= len;
    }
  }
}

// ------------------------------------------------- introspection ----------

std::uint64_t CasperLayer::adapt_digest(const mpi::Win& user_win) {
  auto& cw = managed_checked(user_win, "adapt_digest");
  MMPI_REQUIRE(cw.adapt.on, "casper: adapt_digest on a non-adaptive run");
  return progress::digest(cw.ep[0].adapt);
}

std::vector<int> CasperLayer::adapt_map(const mpi::Win& user_win) {
  auto& cw = managed_checked(user_win, "adapt_map");
  MMPI_REQUIRE(cw.adapt.on, "casper: adapt_map on a non-adaptive run");
  return cw.ep[0].adapt.map;
}

int CasperLayer::adapt_policy(const mpi::Win& user_win) {
  auto& cw = managed_checked(user_win, "adapt_policy");
  MMPI_REQUIRE(cw.adapt.on, "casper: adapt_policy on a non-adaptive run");
  return cw.ep[0].adapt.policy;
}

std::uint64_t CasperLayer::plan_generation(const mpi::Win& user_win,
                                           int origin) {
  auto& cw = managed_checked(user_win, "plan_generation");
  return cw.ep[static_cast<std::size_t>(origin)].plans.gen;
}

}  // namespace casper::core
