#include "progress/adaptive.hpp"

#include <algorithm>
#include <numeric>

namespace casper::progress {

void lpt_partition(const std::uint64_t* weight, int nitems, int slots,
                   int* map) {
  std::vector<int> order(static_cast<std::size_t>(nitems));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(slots), 0);
  for (int i : order) {
    int best = 0;
    for (int s = 1; s < slots; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    map[i] = best;
    load[static_cast<std::size_t>(best)] += weight[i];
  }
}

int load_skew_pct(const std::uint64_t* weight, const int* map, int nitems,
                  int slots) {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(slots), 0);
  std::uint64_t total = 0;
  for (int i = 0; i < nitems; ++i) {
    load[static_cast<std::size_t>(map[i])] += weight[i];
    total += weight[i];
  }
  if (total == 0) return 0;
  const std::uint64_t mx = *std::max_element(load.begin(), load.end());
  // max/mean in percent: mean = total/slots, so pct = max*slots*100/total.
  return static_cast<int>((mx * static_cast<std::uint64_t>(slots) * 100) /
                          total);
}

int recommend_policy(int current, std::uint64_t dyn_ops,
                     std::uint64_t dyn_bytes, std::uint64_t dyn_max_bytes,
                     std::uint64_t min_ops) {
  if (dyn_ops < min_ops || dyn_ops == 0) return current;
  const std::uint64_t mean = dyn_bytes / dyn_ops;
  // Heavy-tailed sizes (max >= 1.5x mean): op counts misjudge ghost load,
  // count bytes instead. Near-uniform sizes: op counting is equivalent and
  // cheaper to reason about.
  return (2 * dyn_max_bytes >= 3 * mean) ? kLbByteCount : kLbOpCount;
}

std::uint64_t digest(const AdaptState& st) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(st.round);
  mix(static_cast<std::uint64_t>(st.policy));
  for (int s : st.map) mix(static_cast<std::uint64_t>(s));
  return h;
}

AdaptOutcome decide(const AdaptiveConfig& cfg,
                    const std::vector<AdaptNode>& nodes,
                    const std::vector<AdaptSample>& board, AdaptState& st) {
  AdaptOutcome out;
  const std::size_t nitems = st.map.size();

  // Aggregate the board (commutative sums — origin order immaterial).
  std::vector<std::uint64_t> ops(nitems, 0), bytes(nitems, 0);
  std::uint64_t dyn_ops = 0, dyn_bytes = 0, dyn_max = 0, unflushed = 0;
  for (const AdaptSample& s : board) {
    for (std::size_t i = 0; i < nitems; ++i) {
      ops[i] += s.item_ops[i];
      bytes[i] += s.item_bytes[i];
    }
    dyn_ops += s.dyn_ops;
    dyn_bytes += s.dyn_bytes;
    dyn_max = std::max(dyn_max, s.dyn_max_bytes);
    unflushed += s.unflushed_acc;
  }
  ++st.round;

  std::vector<std::uint64_t> w;
  std::vector<int> remap;
  for (const AdaptNode& nd : nodes) {
    std::uint64_t node_ops = 0;
    for (int i = 0; i < nd.count; ++i) {
      node_ops += ops[static_cast<std::size_t>(nd.first + i)];
    }
    if (node_ops < cfg.min_round_ops) continue;  // cold: freeze this node
    out.cold = false;
    w.assign(static_cast<std::size_t>(nd.count), 0);
    for (int i = 0; i < nd.count; ++i) {
      const std::size_t gi = static_cast<std::size_t>(nd.first + i);
      st.weight[gi].advance(
          bytes[gi] +
              ops[gi] * static_cast<std::uint64_t>(cfg.op_cost_bytes),
          cfg.ewma_shift);
      w[static_cast<std::size_t>(i)] = st.weight[gi].v;
    }
    if (!cfg.repartition || nd.slots <= 1) continue;
    if (unflushed != 0) {
      // An accumulate-class op is still in flight somewhere: adopting a new
      // map now would let two ghosts RMW the same byte. Wait a round.
      out.skipped_unflushed = true;
      continue;
    }
    if (load_skew_pct(w.data(), st.map.data() + nd.first, nd.count,
                      nd.slots) <= cfg.skew_pct) {
      continue;
    }
    remap.assign(static_cast<std::size_t>(nd.count), 0);
    lpt_partition(w.data(), nd.count, nd.slots, remap.data());
    if (!std::equal(remap.begin(), remap.end(), st.map.begin() + nd.first)) {
      std::copy(remap.begin(), remap.end(), st.map.begin() + nd.first);
      out.remapped = true;
    }
  }

  if (cfg.policy_switch && st.policy != kLbNone) {
    const int np = recommend_policy(st.policy, dyn_ops, dyn_bytes, dyn_max,
                                    cfg.min_round_ops);
    if (np != st.policy) {
      st.policy = np;
      out.policy_changed = true;
    }
  }

  out.digest = digest(st);
  return out;
}

}  // namespace casper::progress
