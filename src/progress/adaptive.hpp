// Metrics-driven adaptive progress control (ROADMAP item 4).
//
// The paper fixes the segment→ghost binding and the dynamic-binding policy
// statically for a whole run. This module closes the loop: at every epoch
// boundary (user barrier / fence) the Casper layer seals one round of
// per-binding-item op/byte counters, and every origin independently replays
// the SAME pure decision function over the SAME sealed snapshot — the exact
// no-consensus trick the ghost-failure rebinding remap uses. When the
// windowed EWMA load of the items bound to one ghost skews past a threshold,
// the items are re-partitioned across the node's ghosts (greedy LPT); when
// the observed PUT/GET size mix favors it, the dynamic-binding policy flips
// between op-counting and byte-counting.
//
// Everything here is pure integer arithmetic over virtual-time-stamped
// counter snapshots: no wall clock, no RNG, no iteration over hash maps.
// Decisions are therefore exact-match invariant across fiber schedules and
// engine shard counts, and identical on every origin — which is what lets a
// remap preserve accumulate atomicity without a consensus round (all origins
// route any shared byte to the same ghost at any instant).
//
// Layering: this header is self-contained (obs + std only) so core::Config
// can embed AdaptiveConfig without a core→progress→core include cycle. The
// Casper layer owns all MPI-side wiring (sealing, plan-cache invalidation,
// fault composition); see DESIGN.md §15.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace casper::progress {

/// Numeric mirror of core::DynamicLb (static_asserted at the layer).
inline constexpr int kLbNone = 0;
inline constexpr int kLbRandom = 1;
inline constexpr int kLbOpCount = 2;
inline constexpr int kLbByteCount = 3;

struct AdaptiveConfig {
  bool enabled = false;
  /// Remap granularity under segment binding: each ghost's static chunk is
  /// split into this many 16B-aligned subchunks the controller can move
  /// independently. Rank binding moves whole per-target bindings instead.
  int subchunks = 4;
  /// EWMA smoothing (obs::Ewma shift): the per-item load estimate has a
  /// half-life of roughly 2^shift rounds, so phase shifts are tracked in a
  /// few epochs without thrashing on one noisy round.
  int ewma_shift = 2;
  /// Byte-equivalent weight of one operation: item load = bytes + ops*cost
  /// (an op has fixed ghost-side service overhead even when tiny).
  int op_cost_bytes = 512;
  /// Re-partition when max per-ghost load exceeds skew_pct% of the mean
  /// (125 = 1.25x). At or below, the current map is kept — a balanced
  /// workload never remaps and stays byte-identical to static binding.
  int skew_pct = 125;
  /// Rounds with fewer total ops than this (per node) are ignored entirely:
  /// no EWMA advance, no remap — cold windows keep their bindings.
  std::uint64_t min_round_ops = 16;
  bool repartition = true;
  bool policy_switch = true;
};

/// Item layout for one node: items [first, first+count) are partitioned
/// over `slots` ghost slots (indices into the node's ghost list).
struct AdaptNode {
  int first = 0;
  int count = 0;
  int slots = 1;
};

/// One origin's sealed counters for one round on one window. Published to
/// the shared board before the epoch barrier, read by every origin after it.
struct AdaptSample {
  std::vector<std::uint64_t> item_ops;    // per item, this round
  std::vector<std::uint64_t> item_bytes;  // per item, this round
  std::uint64_t dyn_ops = 0;              // dynamically-balanced PUT/GETs
  std::uint64_t dyn_bytes = 0;
  std::uint64_t dyn_max_bytes = 0;
  /// LEVEL, not a round delta: accumulate-class ops issued but not yet
  /// flushed at seal time. Any nonzero slot vetoes the remap this round —
  /// moving a byte's serializing ghost while an RMW to it is in flight
  /// would split atomicity across two ghosts.
  std::uint64_t unflushed_acc = 0;
};

/// Replicated per-origin decision state. Every origin evolves its own copy
/// through decide(); identical inputs keep all copies exactly equal.
struct AdaptState {
  std::vector<int> map;             ///< item -> ghost slot (node-relative)
  std::vector<obs::Ewma> weight;    ///< per-item windowed load estimate
  int policy = kLbNone;             ///< effective dynamic-binding policy
  std::uint64_t round = 0;          ///< decide() calls so far
};

struct AdaptOutcome {
  bool remapped = false;
  bool policy_changed = false;
  bool skipped_unflushed = false;  ///< remap vetoed by in-flight accumulates
  bool cold = true;                ///< no node reached min_round_ops
  std::uint64_t digest = 0;        ///< FNV of (round, policy, map)
};

/// Greedy LPT partition: items sorted by (weight desc, index asc) assigned
/// one by one to the least-loaded slot (ties: lowest slot). Deterministic
/// for any input; `map` receives one slot per item.
void lpt_partition(const std::uint64_t* weight, int nitems, int slots,
                   int* map);

/// Max-over-mean per-slot load in percent (100 = perfectly balanced, 0 = no
/// load at all) for `nitems` items under `map`.
int load_skew_pct(const std::uint64_t* weight, const int* map, int nitems,
                  int slots);

/// Dynamic-binding policy recommendation from one round's PUT/GET mix:
/// uniform op sizes favor op-counting (cheapest adequate proxy); a heavy
/// tail (max >= 1.5x mean) favors byte-counting. Below `min_ops` the
/// current policy is kept. kLbNone is never recommended.
int recommend_policy(int current, std::uint64_t dyn_ops,
                     std::uint64_t dyn_bytes, std::uint64_t dyn_max_bytes,
                     std::uint64_t min_ops);

/// FNV-1a digest of the decision state (round, policy, map) — the
/// cross-schedule/cross-shard invariance witness.
std::uint64_t digest(const AdaptState& st);

/// One adaptation round: fold the sealed board into `st` and decide. Pure:
/// output depends only on (cfg, nodes, board, st). The caller provides the
/// board in a fixed order (user comm rank) — though every aggregate is a
/// commutative sum, so even the order is immaterial.
AdaptOutcome decide(const AdaptiveConfig& cfg,
                    const std::vector<AdaptNode>& nodes,
                    const std::vector<AdaptSample>& board, AdaptState& st);

}  // namespace casper::progress
