// Baseline asynchronous-progress models (the approaches Casper is compared
// against in the paper):
//
//  - Kind::None      "original MPI": software-path RMA operations complete
//                    only when the target rank itself enters the MPI stack.
//  - Kind::Thread    background-thread progress (MPICH/MVAPICH/Intel MPI
//                    style): a per-process helper thread polls the network
//                    and processes incoming software operations. Costs: a
//                    thread-multiple overhead on *every* MPI call made by the
//                    process, a handoff/lock-contention cost per serviced
//                    operation, and either an oversubscribed core (compute
//                    runs at half speed) or a dedicated core (half the cores
//                    do no application work — arranged by the experiment's
//                    rank layout, cf. Table I).
//  - Kind::Interrupt DMAPP-style interrupt progress (Cray MPI, BG/P): every
//                    incoming software operation raises an interrupt that
//                    preempts the target core, costing a fixed interrupt
//                    latency plus the handler time, stolen from application
//                    computation. Interrupts are counted in stats
//                    ("interrupts") — cf. Fig. 4(c).
//
// The delivery-path mechanics live in mpi::Runtime; this header defines the
// configuration surface.
#pragma once

#include <string>

namespace casper::progress {

enum class Kind { None, Thread, Interrupt };

struct Config {
  Kind kind = Kind::None;
  /// Thread(O) in the paper: the progress thread shares the application
  /// core, so application compute effectively runs at `oversub_scale` cost.
  bool oversubscribed = false;
  double oversub_scale = 2.0;
};

/// Processing-entity id spaces. RMA work is attributed to the entity that
/// executed it: a rank fiber (poller or Casper ghost), a progress agent
/// (thread/interrupt handler, id nranks + r), or the NIC (hardware path,
/// id 2*nranks + r). The observability layer keys its tracks on these ids.
enum class EntityClass { Rank, Agent, Nic };

inline EntityClass classify_entity(int entity, int nranks) {
  if (entity < nranks) return EntityClass::Rank;
  if (entity < 2 * nranks) return EntityClass::Agent;
  return EntityClass::Nic;
}

/// World rank the entity belongs to (the agent/NIC of rank r maps to r).
inline int entity_rank(int entity, int nranks) { return entity % nranks; }

inline std::string entity_label(int entity, int nranks) {
  switch (classify_entity(entity, nranks)) {
    case EntityClass::Rank: return "rank " + std::to_string(entity);
    case EntityClass::Agent:
      return "agent " + std::to_string(entity_rank(entity, nranks));
    case EntityClass::Nic:
      return "nic " + std::to_string(entity_rank(entity, nranks));
  }
  return "entity " + std::to_string(entity);
}

}  // namespace casper::progress
