// Recorder: the handle instrumentation sites see. Bundles the tracer and the
// metrics registry and plugs into the engine as a schedule observer.
//
// Gating contract (the "branch on a constant" requirement):
//   - Compile-time: building with -DCASPER_TRACE=0 turns kTraceCompiled into
//     `false`, so `if (obs::on(rec))` folds to `if (false)` and the compiler
//     deletes the instrumentation block outright.
//   - Runtime: in the default CASPER_TRACE=1 build, `on(rec)` is a single
//     null check — no recorder attached (the normal case) costs one
//     predictable branch per site.
// Every instrumentation point in the runtime must be wrapped in
// `if (obs::on(...)) { ... }`; nothing else may touch the recorder.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

#ifndef CASPER_TRACE
#define CASPER_TRACE 1
#endif

namespace casper::obs {

inline constexpr bool kTraceCompiled = CASPER_TRACE != 0;

class Recorder final : public sim::SchedObserver {
 public:
  Recorder() = default;
  explicit Recorder(std::size_t ring_capacity) : trace(ring_capacity) {}

  Tracer trace;
  Metrics metrics;

  /// Engine callback: one instant per fiber resumption (event callbacks,
  /// rank == -1, are engine internals and not traced as switches).
  void on_schedule(sim::Time t, int rank) override {
    if (rank >= 0) trace.instant(rank, Ev::FiberSwitch, t);
  }
};

/// The single gate for every instrumentation site.
inline bool on(const Recorder* rec) { return kTraceCompiled && rec != nullptr; }

}  // namespace casper::obs
