// Recorder: the handle instrumentation sites see. Bundles the tracer and the
// metrics registry and plugs into the engine as a schedule observer.
//
// Gating contract (the "branch on a constant" requirement):
//   - Compile-time: building with -DCASPER_TRACE=0 turns kTraceCompiled into
//     `false`, so `if (obs::on(rec))` folds to `if (false)` and the compiler
//     deletes the instrumentation block outright.
//   - Runtime: in the default CASPER_TRACE=1 build, `on(rec)` is a single
//     null check — no recorder attached (the normal case) costs one
//     predictable branch per site.
// Every instrumentation point in the runtime must be wrapped in
// `if (obs::on(...)) { ... }`; nothing else may touch the recorder.
//
// Sharded runs: each worker thread records into its own Tracer/Metrics
// replica — trace()/metrics() route by sim::Engine::current_shard(), so the
// hot path stays plain stores with no atomics or locks. The main thread and
// single-shard engines read replica 0 (current_shard() is 0 there), which
// keeps every pre-sharding call site working unchanged. A sharded driver
// calls set_shards() before run() and merge_shards() after; the merge is
// keyed purely by virtual time and shard id, so the folded trace and
// counters are deterministic and shard-count-invariant workloads produce
// byte-identical dumps.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

#ifndef CASPER_TRACE
#define CASPER_TRACE 1
#endif

namespace casper::obs {

inline constexpr bool kTraceCompiled = CASPER_TRACE != 0;

class Recorder final : public sim::SchedObserver {
 public:
  Recorder() : Recorder(std::size_t{1} << 15) {}
  explicit Recorder(std::size_t ring_capacity) : cap_(ring_capacity) {
    shards_.emplace_back(cap_);
  }

  /// The calling shard's replica. Out-of-range ids (a recorder smaller than
  /// the engine's shard count) clamp to the primary, which is safe but
  /// serializes through replica 0 — drivers should call set_shards() first.
  Tracer& trace() { return shards_[shard_index()].trace; }
  const Tracer& trace() const { return shards_[shard_index()].trace; }
  Metrics& metrics() { return shards_[shard_index()].metrics; }
  const Metrics& metrics() const { return shards_[shard_index()].metrics; }

  /// Grow to one replica per shard before a sharded run. Entity names and
  /// anything already recorded stay on replica 0 (the primary). Never
  /// shrinks; must not be called while worker threads are recording.
  void set_shards(int n) {
    while (shards_.size() < static_cast<std::size_t>(n < 1 ? 1 : n))
      shards_.emplace_back(cap_);
  }

  /// Fold every per-shard replica into the primary and drop the extras:
  /// counters and histograms sum; trace records interleave by (virtual time,
  /// shard, per-shard order) with fresh dense seq numbers. Call after run(),
  /// from one thread. No-op for single-shard recorders.
  void merge_shards() {
    if (shards_.size() <= 1) return;
    std::vector<const Tracer*> parts;
    parts.reserve(shards_.size());
    for (const ShardObs& s : shards_) parts.push_back(&s.trace);
    Tracer folded = Tracer::merged(parts, cap_);
    shards_[0].trace = std::move(folded);
    for (std::size_t s = 1; s < shards_.size(); ++s)
      shards_[0].metrics.merge_from(shards_[s].metrics);
    shards_.erase(shards_.begin() + 1, shards_.end());
  }

  /// Replica count (1 until set_shards, back to 1 after merge_shards).
  std::size_t shard_replicas() const { return shards_.size(); }

  /// Engine callback: one instant per fiber resumption (event callbacks,
  /// rank == -1, are engine internals and not traced as switches).
  void on_schedule(sim::Time t, int rank) override {
    if (rank >= 0) trace().instant(rank, Ev::FiberSwitch, t);
  }

 private:
  struct ShardObs {
    explicit ShardObs(std::size_t cap) : trace(cap) {}
    Tracer trace;
    Metrics metrics;
  };

  std::size_t shard_index() const {
    const int s = sim::Engine::current_shard();
    if (s <= 0) return 0;
    const std::size_t i = static_cast<std::size_t>(s);
    return i < shards_.size() ? i : 0;
  }

  std::size_t cap_;
  std::deque<ShardObs> shards_;  ///< deque: growth never moves live replicas
};

/// The single gate for every instrumentation site.
inline bool on(const Recorder* rec) { return kTraceCompiled && rec != nullptr; }

}  // namespace casper::obs
