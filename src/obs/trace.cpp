#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace casper::obs {

const char* to_string(Ev ev) {
  switch (ev) {
    case Ev::OpIssued: return "op.issued";
    case Ev::OpHwPath: return "op.hw";
    case Ev::OpRedirected: return "op.redirected";
    case Ev::OpSegmentSplit: return "op.split";
    case Ev::LbDecision: return "lb.decision";
    case Ev::OpCommitted: return "op.committed";
    case Ev::OpFlushed: return "op.flushed";
    case Ev::EpochBegin: return "epoch.begin";
    case Ev::EpochTranslate: return "epoch.translate";
    case Ev::EpochEnd: return "epoch.end";
    case Ev::FiberSwitch: return "fiber.switch";
    case Ev::GhostService: return "ghost.service";
    case Ev::Compute: return "compute";
    case Ev::FaultInject: return "fault.inject";
    case Ev::AmRetry: return "am.retry";
    case Ev::GhostDead: return "ghost.dead";
    case Ev::Rebind: return "recovery.rebind";
    case Ev::RaceConflict: return "race.conflict";
    case Ev::KvOp: return "kv.op";
    case Ev::LbAdapt: return "lb.adapt";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : cap_(round_up_pow2(ring_capacity == 0 ? 1 : ring_capacity)) {}

void Tracer::push(int entity, Ev ev, sim::Time t, std::uint64_t a,
                  std::uint64_t b, std::uint64_t c) {
  if (entity < 0) return;
  if (static_cast<std::size_t>(entity) >= rings_.size())
    rings_.resize(static_cast<std::size_t>(entity) + 1);
  Ring& r = rings_[static_cast<std::size_t>(entity)];
  if (r.buf.empty()) r.buf.resize(cap_);
  TraceEvent& slot = r.buf[r.pushed & (cap_ - 1)];
  if (r.pushed >= cap_) ++dropped_;
  slot.t = t;
  slot.seq = seq_++;
  slot.a = a;
  slot.b = b;
  slot.c = c;
  slot.entity = entity;
  slot.ev = ev;
  ++r.pushed;
}

void Tracer::set_entity_name(int entity, std::string name) {
  names_[entity] = std::move(name);
}

const std::string* Tracer::entity_name(int entity) const {
  auto it = names_.find(entity);
  return it == names_.end() ? nullptr : &it->second;
}

Tracer Tracer::merged(const std::vector<const Tracer*>& parts,
                      std::size_t ring_capacity) {
  Tracer out(ring_capacity);
  std::uint64_t total_recorded = 0;
  std::vector<std::vector<TraceEvent>> snaps;
  snaps.reserve(parts.size());
  for (const Tracer* p : parts) {
    for (const auto& [entity, name] : p->names_) out.names_[entity] = name;
    out.dropped_ += p->dropped_;
    total_recorded += p->seq_;
    snaps.push_back(p->ordered());
  }
  struct Keyed {
    const TraceEvent* e;
    std::size_t part;
  };
  std::vector<Keyed> all;
  for (std::size_t s = 0; s < snaps.size(); ++s)
    for (const TraceEvent& e : snaps[s]) all.push_back({&e, s});
  std::sort(all.begin(), all.end(), [](const Keyed& x, const Keyed& y) {
    if (x.e->t != y.e->t) return x.e->t < y.e->t;
    if (x.part != y.part) return x.part < y.part;
    return x.e->seq < y.e->seq;
  });
  for (const Keyed& k : all)
    out.push(k.e->entity, k.e->ev, k.e->t, k.e->a, k.e->b, k.e->c);
  // push() numbered only the retained records; recorded() reports the total
  // ever pushed across all parts. Future pushes continue from there.
  out.seq_ = total_recorded;
  return out;
}

std::vector<TraceEvent> Tracer::ordered() const {
  std::vector<TraceEvent> out;
  for (const Ring& r : rings_) {
    std::uint64_t n = std::min<std::uint64_t>(r.pushed, cap_);
    for (std::uint64_t i = 0; i < n; ++i)
      out.push_back(r.buf[(r.pushed - n + i) & (cap_ - 1)]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

namespace {

// Fixed-point microseconds: Chrome wants ts in us; virtual time is integral
// ns, so three decimals reproduce it exactly and deterministically.
void put_us(std::string& s, sim::Time t_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(t_ns / 1000),
                static_cast<unsigned long long>(t_ns % 1000));
  s += buf;
}

void json_escape(std::string& s, const std::string& in) {
  for (char ch : in) {
    if (ch == '"' || ch == '\\') {
      s += '\\';
      s += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      s += buf;
    } else {
      s += ch;
    }
  }
}

}  // namespace

void Tracer::export_chrome(std::ostream& os) const {
  std::vector<TraceEvent> evs = ordered();
  std::string out;
  out.reserve(evs.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  // Thread-name metadata only for entities that actually produced events —
  // keeps 1000-rank traces from listing 3000 empty tracks.
  for (const auto& [entity, name] : names_) {
    if (static_cast<std::size_t>(entity) >= rings_.size() ||
        rings_[static_cast<std::size_t>(entity)].pushed == 0)
      continue;
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(entity);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(out, name);
    out += "\"}}";
  }
  for (const TraceEvent& e : evs) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += is_span(e.ev) ? 'X' : 'i';
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(e.entity);
    out += ",\"ts\":";
    put_us(out, e.t);
    if (is_span(e.ev)) {
      out += ",\"dur\":";
      put_us(out, e.a);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"name\":\"";
    out += to_string(e.ev);
    out += "\",\"args\":{\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += ",\"c\":";
    out += std::to_string(e.c);
    out += ",\"seq\":";
    out += std::to_string(e.seq);
    out += "}}";
  }
  out += "\n]}\n";
  os << out;
}

namespace {

void format_line(std::string& s, const TraceEvent& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%llu %llu %d %s %llu %llu %llu",
                static_cast<unsigned long long>(e.seq),
                static_cast<unsigned long long>(e.t), e.entity,
                to_string(e.ev), static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b),
                static_cast<unsigned long long>(e.c));
  s = buf;
}

}  // namespace

void Tracer::export_text(std::ostream& os) const {
  for (const auto& [entity, name] : names_) {
    if (static_cast<std::size_t>(entity) >= rings_.size() ||
        rings_[static_cast<std::size_t>(entity)].pushed == 0)
      continue;
    os << "ENTITY " << entity << ' ' << name << '\n';
  }
  std::string line;
  for (const TraceEvent& e : ordered()) {
    format_line(line, e);
    os << line << '\n';
  }
}

std::vector<std::string> Tracer::tail_text(std::size_t n) const {
  std::vector<TraceEvent> evs = ordered();
  std::size_t start = evs.size() > n ? evs.size() - n : 0;
  std::vector<std::string> out;
  out.reserve(evs.size() - start);
  std::string line;
  for (std::size_t i = start; i < evs.size(); ++i) {
    format_line(line, evs[i]);
    out.push_back(line);
  }
  return out;
}

}  // namespace casper::obs
