#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>

namespace casper::obs {

void Histogram::add(std::uint64_t v) {
  int k = 0;
  for (std::uint64_t x = v; x > 1; x >>= 1) ++k;
  ++buckets_[k];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void Histogram::merge(const Histogram& o) {
  for (int k = 0; k < kBuckets; ++k) buckets_[k] += o.buckets_[k];
  count_ += o.count_;
  sum_ += o.sum_;
  if (o.count_ != 0) {
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }
}

void Metrics::merge_from(const Metrics& o) {
  for (const auto& [name, v] : o.counters_) counters_[name] += v;
  for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
}

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

void Metrics::write_json(std::ostream& os, int indent) const {
  // The opening brace is not padded: the caller typically emits it mid-line
  // (after a JSON key); only continuation lines get the indent.
  std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n";
  os << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "\n" : ",\n") << pad << "    ";
    first = false;
    json_string(os, name);
    os << ": " << v;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << pad << "    ";
    first = false;
    json_string(os, name);
    char meanbuf[48];
    std::snprintf(meanbuf, sizeof(meanbuf), "%.3f", h.mean());
    os << ": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"min\": " << h.min() << ", \"max\": " << h.max()
       << ", \"mean\": " << meanbuf << ", \"buckets\": [";
    bool bfirst = true;
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      if (h.bucket(k) == 0) continue;
      if (!bfirst) os << ", ";
      bfirst = false;
      os << '[' << k << ", " << h.bucket(k) << ']';
    }
    os << "]}";
  }
  os << (first ? "" : "\n" + pad + "  ") << "}\n";
  os << pad << "}";
}

std::uint64_t Metrics::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void WindowedRates::advance(const Metrics& m, sim::Time now) {
  const sim::Time dt = now - last_;
  if (dt <= 0) return;
  for (const auto& [name, v] : m.counters()) {
    std::uint64_t& p = prev_[name];
    const std::uint64_t delta = v - p;
    p = v;
    // units per virtual millisecond; dt is in virtual nanoseconds.
    rates_[name].advance(delta * 1000000ull / static_cast<std::uint64_t>(dt),
                         shift_);
  }
  last_ = now;
}

std::uint64_t WindowedRates::per_ms(const std::string& name) const {
  auto it = rates_.find(name);
  return it == rates_.end() ? 0 : it->second.value();
}

void WindowedRates::fold_into(Metrics& m, const std::string& prefix) const {
  for (const auto& [name, e] : rates_) m.counter(prefix + name) = e.value();
}

}  // namespace casper::obs
