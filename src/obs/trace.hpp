// Virtual-time event tracer: per-entity ring buffers of fixed-size POD
// records, exportable as Chrome `chrome://tracing` JSON or as a stable text
// form (the golden-trace format).
//
// Concurrency model: the simulator multiplexes every rank fiber, progress
// agent, and NIC event on the single OS thread that holds the scheduler
// token, so exactly one party can call record() at any instant. The rings
// are therefore lock-free by construction — plain stores, no atomics, no
// mutexes — while still being organized per entity so one chatty entity
// (e.g. a ghost serving a burst) can only overwrite its own history.
//
// Determinism: records carry only virtual times and symbolic ids (world
// ranks, opids, window ids, byte counts) — never host addresses or host
// clocks — so the same simulation produces a byte-identical trace on every
// run, under ASLR, across machines. The golden-trace regression test
// depends on this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace casper::obs {

/// The event taxonomy (see DESIGN.md §8 for the full semantics of a/b/c).
enum class Ev : std::uint8_t {
  OpIssued,      ///< instant: rank entered p_rma      a=kind b=target c=bytes
  OpHwPath,      ///< instant: NIC executed a hw op    a=opid b=kind  c=bytes
  OpRedirected,  ///< instant: Casper sent op to ghost a=ghost b=kind c=bytes
  OpSegmentSplit,///< instant: op split at seg bounds  a=nsubs b=kind c=bytes
  LbDecision,    ///< instant: dynamic-lb ghost choice a=ghost b=policy c=bytes
  OpCommitted,   ///< instant: target bytes written    a=opid b=kind  c=bytes
  OpFlushed,     ///< instant: ack reached the origin  a=opid
  EpochBegin,    ///< instant: epoch opened            a=code b=win
  EpochTranslate,///< span: Casper epoch translation   a=dur  b=synckind c=win
  EpochEnd,      ///< instant: sync call completed     a=synckind b=win
  FiberSwitch,   ///< instant: scheduler resumed rank
  GhostService,  ///< span: dedicated rank served op   a=dur  b=opid c=bytes
  Compute,       ///< span: application computation    a=dur
  FaultInject,   ///< instant: injected net fault      a=opid b=verdict c=extra
  AmRetry,       ///< instant: origin retransmitted    a=opid b=attempt
  GhostDead,     ///< instant: ghost kill detected     a=ghost b=kill_time
  Rebind,        ///< instant: targets rebound off dead ghost a=ghost b=count
  RaceConflict,  ///< instant: race analyzer conflict   a=peer b=win c=bytes
  KvOp,          ///< instant: KV op completed  a=kind b=key c=lock retries
  LbAdapt,       ///< instant: adaptive-controller round a=digest b=win c=flags
};

const char* to_string(Ev ev);

/// True for events whose `a` argument is a duration (Chrome "X" phase).
constexpr bool is_span(Ev ev) {
  return ev == Ev::EpochTranslate || ev == Ev::GhostService ||
         ev == Ev::Compute;
}

/// One trace record: 48 plain bytes, no owning members, so pushing one is a
/// couple of stores and ring eviction is free.
struct TraceEvent {
  sim::Time t = 0;        ///< virtual time (span events: start time)
  std::uint64_t seq = 0;  ///< global record order (total, deterministic)
  std::uint64_t a = 0, b = 0, c = 0;
  std::int32_t entity = 0;
  Ev ev = Ev::OpIssued;
};

class Tracer {
 public:
  /// `ring_capacity` events are retained per entity (power of two enforced);
  /// older records are overwritten and counted in dropped().
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 15);

  /// Record an instantaneous event for `entity` (>= 0) at virtual time `t`.
  void instant(int entity, Ev ev, sim::Time t, std::uint64_t a = 0,
               std::uint64_t b = 0, std::uint64_t c = 0) {
    push(entity, ev, t, a, b, c);
  }
  /// Record a span [t0, t0+dur) for `entity`; dur lands in the `a` slot.
  void span(int entity, Ev ev, sim::Time t0, sim::Time dur,
            std::uint64_t b = 0, std::uint64_t c = 0) {
    push(entity, ev, t0, dur, b, c);
  }

  /// Human-readable track name ("user 0", "ghost 3", "nic 1", ...).
  void set_entity_name(int entity, std::string name);
  const std::string* entity_name(int entity) const;

  /// All retained events merged into record (seq) order.
  std::vector<TraceEvent> ordered() const;

  /// Deterministic cross-shard merge: every retained record of `parts`,
  /// ordered by (virtual time, part index, intra-part record order) and
  /// renumbered with fresh dense seq values; entity names unioned;
  /// recorded() and dropped() summed. The part index is the shard id, so the
  /// ordering key is pure virtual-time data — host thread interleaving never
  /// leaks into the merged trace.
  static Tracer merged(const std::vector<const Tracer*>& parts,
                       std::size_t ring_capacity);

  /// Per-entity ring capacity (as rounded up at construction).
  std::size_t capacity() const { return cap_; }
  /// Total records evicted from full rings.
  std::uint64_t dropped() const { return dropped_; }
  /// Total records ever pushed.
  std::uint64_t recorded() const { return seq_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}, ts in microseconds).
  void export_chrome(std::ostream& os) const;
  /// Stable text form, one record per line — the golden-trace format.
  void export_text(std::ostream& os) const;
  /// Last `n` records as export_text lines (repro-file trace tail).
  std::vector<std::string> tail_text(std::size_t n) const;

 private:
  void push(int entity, Ev ev, sim::Time t, std::uint64_t a, std::uint64_t b,
            std::uint64_t c);

  struct Ring {
    std::vector<TraceEvent> buf;  ///< allocated lazily at first push
    std::uint64_t pushed = 0;
  };

  std::size_t cap_;
  std::vector<Ring> rings_;  ///< indexed by entity id
  std::map<int, std::string> names_;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace casper::obs
