// Metrics registry: named monotonically-increasing counters plus log2-bucket
// histograms, dumped as a JSON object that the bench/report stack embeds in
// every BENCH_*.json. Keys live in std::map so dumps enumerate in a fixed
// order — the perturbed-schedule invariance test compares dumps textually.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "sim/time.hpp"

namespace casper::obs {

/// Integer fixed-point EWMA cell: kFrac fractional bits, advanced once per
/// sampling window with v += (sample - v) >> shift. Pure integer arithmetic
/// so two replicas fed the same samples stay bit-equal — the adaptive
/// progress controller replicates these per origin and relies on exact
/// agreement (no doubles, no rounding-mode dependence).
struct Ewma {
  static constexpr int kFrac = 8;
  std::uint64_t v = 0;  ///< fixed-point estimate (value() strips the frac)
  void advance(std::uint64_t sample, int shift) {
    const std::int64_t d = static_cast<std::int64_t>(sample << kFrac) -
                           static_cast<std::int64_t>(v);
    v = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) +
                                   (d >> shift));
  }
  std::uint64_t value() const { return v >> kFrac; }
};

/// Power-of-two bucketed histogram: value v lands in bucket floor(log2(v))
/// (bucket 0 holds v <= 1). Tracks count/sum/min/max exactly.
class Histogram {
 public:
  void add(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  /// Events in bucket k, i.e. values in [2^k, 2^(k+1)) (k=0 also holds 0, 1).
  std::uint64_t bucket(int k) const {
    return (k >= 0 && k < kBuckets) ? buckets_[k] : 0;
  }

  /// Fold another histogram in: buckets/count/sum add, min/max widen. Used
  /// when per-shard replicas are merged after a sharded run.
  void merge(const Histogram& o);

  static constexpr int kBuckets = 64;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

class Metrics {
 public:
  /// Get-or-create; returned reference stays valid (map nodes are stable).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  std::uint64_t counter_value(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Add every counter and histogram of `o` into this registry (counters
  /// sum, histograms merge). std::map keys keep the dump order fixed no
  /// matter which shard first created a name.
  void merge_from(const Metrics& o);

  /// {"counters":{...},"histograms":{name:{count,sum,min,max,mean,
  ///  buckets:[[k,n],...]}}} — empty buckets omitted. `indent` spaces prefix
  /// every line so the block nests inside a larger JSON document.
  void write_json(std::ostream& os, int indent = 0) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Windowed-rate view over a Metrics registry: per-counter EWMA of
/// delta-count / delta-virtual-time, advanced explicitly at epoch or window
/// boundaries. Time comes from the caller's virtual clock — there is no
/// wall-clock read anywhere — so the rates are as deterministic as the
/// counters they derive from. A separate overlay (never folded into
/// Metrics::write_json by default) so attaching one cannot perturb the
/// committed BENCH_*.json baselines or golden traces.
class WindowedRates {
 public:
  explicit WindowedRates(int shift = 2) : shift_(shift) {}

  /// Fold the window [previous advance, now) into the rates: for every
  /// counter, EWMA-advance with sample = delta * 1e6 / dt_ns (units per
  /// virtual millisecond). Counters first seen this window contribute their
  /// full value as the delta. No-op when now has not moved.
  void advance(const Metrics& m, sim::Time now);

  /// Smoothed rate in counter units per virtual millisecond (0 if unseen).
  std::uint64_t per_ms(const std::string& name) const;

  const std::map<std::string, Ewma>& rates() const { return rates_; }

  /// Export every rate as a `<prefix><name>` counter in `m` — how benches
  /// surface the windowed view inside their JSON metrics block.
  void fold_into(Metrics& m, const std::string& prefix) const;

 private:
  int shift_;
  sim::Time last_ = 0;
  std::map<std::string, std::uint64_t> prev_;
  std::map<std::string, Ewma> rates_;
};

}  // namespace casper::obs
