// mini-GA: a Global-Arrays-style distributed array over minimpi RMA.
//
// NWChem's coupled-cluster code moves data through the Global Arrays toolkit,
// which on MPI platforms is implemented over MPI RMA (ARMCI-MPI — paper
// reference [2]). This module reproduces the GA access pattern the paper's
// Section IV.D evaluation depends on:
//
//   * a dense 2-D double array block-distributed by rows,
//   * one-sided patch get / put / accumulate under a persistent
//     lockall epoch (gets complete synchronously with a flush; accumulates
//     complete at sync — as in ARMCI-MPI),
//   * a fetch-and-op shared task counter (GA's NXTVAL dynamic load
//     balancing).
//
// Every operation maps onto minimpi RMA calls, so a Casper-enabled run
// transparently redirects the software-path operations (accumulates and
// strided gets) to ghost processes.
#pragma once

#include <cstdint>
#include <utility>

#include "mpi/env.hpp"

namespace casper::ga {

/// Dense 2-D array of double, rows block-distributed over the communicator.
class GlobalArray {
 public:
  /// Collective. Rows are distributed in contiguous blocks of
  /// ceil(rows/P) rows per rank.
  GlobalArray(mpi::Env& env, const mpi::Comm& comm, std::int64_t rows,
              std::int64_t cols, const mpi::Info& info = {});

  /// Collective teardown; must be called before the communicator winds down.
  void destroy(mpi::Env& env);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t rows_per_rank() const { return rows_per_rank_; }
  const mpi::Comm& comm() const { return comm_; }
  const mpi::Win& win() const { return win_; }

  /// Rank owning a row.
  int owner_of_row(std::int64_t r) const {
    return static_cast<int>(r / rows_per_rank_);
  }
  /// [lo, hi) rows owned by this rank.
  std::pair<std::int64_t, std::int64_t> my_rows(mpi::Env& env) const;
  /// Direct pointer to the local block (rows_per_rank x cols).
  double* local() { return local_; }

  /// Blocking one-sided read of the patch [rlo,rhi) x [clo,chi) into `buf`
  /// (row-major, (rhi-rlo) x (chi-clo)). Completes remotely before return.
  void get(mpi::Env& env, std::int64_t rlo, std::int64_t rhi,
           std::int64_t clo, std::int64_t chi, double* buf);

  /// One-sided write of a patch; remote completion at sync() (or flush()).
  void put(mpi::Env& env, std::int64_t rlo, std::int64_t rhi,
           std::int64_t clo, std::int64_t chi, const double* buf);

  /// One-sided accumulate (+=) of a patch; remote completion at sync().
  void acc(mpi::Env& env, std::int64_t rlo, std::int64_t rhi,
           std::int64_t clo, std::int64_t chi, const double* buf);

  /// Complete all outstanding updates issued by this rank.
  void flush(mpi::Env& env);

  /// Collective: complete all updates by everyone (flush_all + barrier).
  void sync(mpi::Env& env);

 private:
  /// Visit the per-owner row spans of a patch.
  template <typename F>
  void for_each_owner(std::int64_t rlo, std::int64_t rhi, F&& f) const;
  /// Issue one owner-local piece as a (possibly strided) RMA op.
  enum class OpSel { Get, Put, Acc };
  void issue_piece(mpi::Env& env, OpSel sel, int owner, std::int64_t rlo,
                   std::int64_t rhi, std::int64_t clo, std::int64_t chi,
                   double* buf, std::int64_t buf_ld, std::int64_t buf_r0);

  mpi::Comm comm_;
  mpi::Win win_;
  double* local_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t rows_per_rank_ = 0;
};

/// GA NXTVAL-style shared counter: a single int64 hosted on rank 0,
/// incremented with fetch_and_op — the dynamic load-balancing primitive of
/// NWChem's task scheduler.
class SharedCounter {
 public:
  /// Collective over `comm`.
  SharedCounter(mpi::Env& env, const mpi::Comm& comm);
  void destroy(mpi::Env& env);

  /// Atomically fetch-and-increment; returns the previous value.
  std::int64_t next(mpi::Env& env);

  /// Collective reset to zero.
  void reset(mpi::Env& env);

 private:
  mpi::Comm comm_;
  mpi::Win win_;
  double* base_ = nullptr;  // stored as double for Dt simplicity
};

}  // namespace casper::ga
