#include "ga/global_array.hpp"

#include <algorithm>
#include <vector>

#include "mpi/check.hpp"

namespace casper::ga {

using mpi::AccOp;
using mpi::Dt;
using mpi::Env;

GlobalArray::GlobalArray(Env& env, const mpi::Comm& comm, std::int64_t rows,
                         std::int64_t cols, const mpi::Info& info)
    : comm_(comm), rows_(rows), cols_(cols) {
  MMPI_REQUIRE(rows > 0 && cols > 0, "ga: array must be non-empty");
  const int p = comm->size();
  rows_per_rank_ = (rows + p - 1) / p;
  const std::int64_t my_rows_n =
      std::max<std::int64_t>(0,
                             std::min(rows_per_rank_,
                                      rows - rows_per_rank_ *
                                                env.rank(comm)));
  const std::size_t bytes =
      static_cast<std::size_t>(rows_per_rank_) *
      static_cast<std::size_t>(cols) * sizeof(double);
  (void)my_rows_n;  // all ranks allocate the full block for uniform layout
  void* base = nullptr;
  win_ = env.win_allocate(bytes, sizeof(double), info, comm, &base);
  local_ = static_cast<double*>(base);
  // GA keeps a persistent passive access epoch to all targets (ARMCI-MPI
  // uses lock_all at window creation).
  env.win_lock_all(0, win_);
  env.barrier(comm_);
}

void GlobalArray::destroy(Env& env) {
  env.barrier(comm_);
  env.win_unlock_all(win_);
  env.win_free(win_);
  local_ = nullptr;
}

std::pair<std::int64_t, std::int64_t> GlobalArray::my_rows(Env& env) const {
  const std::int64_t lo = rows_per_rank_ * env.rank(comm_);
  const std::int64_t hi = std::min(rows_, lo + rows_per_rank_);
  return {lo, std::max(lo, hi)};
}

template <typename F>
void GlobalArray::for_each_owner(std::int64_t rlo, std::int64_t rhi,
                                 F&& f) const {
  std::int64_t r = rlo;
  while (r < rhi) {
    const int owner = owner_of_row(r);
    const std::int64_t owner_end = (owner + 1) * rows_per_rank_;
    const std::int64_t piece_end = std::min(rhi, owner_end);
    f(owner, r, piece_end);
    r = piece_end;
  }
}

void GlobalArray::issue_piece(Env& env, OpSel sel, int owner,
                              std::int64_t rlo, std::int64_t rhi,
                              std::int64_t clo, std::int64_t chi, double* buf,
                              std::int64_t buf_ld, std::int64_t buf_r0) {
  const std::int64_t nrows = rhi - rlo;
  const std::int64_t ncols = chi - clo;
  const std::int64_t owner_row0 = owner * rows_per_rank_;
  const std::size_t tdisp = static_cast<std::size_t>(
      (rlo - owner_row0) * cols_ + clo);  // elements (disp_unit = 8)

  const bool full_rows = (clo == 0 && chi == cols_ && buf_ld == cols_);
  const mpi::Datatype tdt =
      full_rows ? mpi::contig(Dt::Double)
                : mpi::vector_of(Dt::Double, static_cast<int>(ncols),
                                 static_cast<int>(cols_));
  const int tcount = full_rows ? static_cast<int>(nrows * ncols)
                               : static_cast<int>(nrows);
  double* bptr = buf + (rlo - buf_r0) * buf_ld;
  const mpi::Datatype odt =
      (buf_ld == ncols || full_rows)
          ? mpi::contig(Dt::Double)
          : mpi::vector_of(Dt::Double, static_cast<int>(ncols),
                           static_cast<int>(buf_ld));
  const int ocount = (buf_ld == ncols || full_rows)
                         ? static_cast<int>(nrows * ncols)
                         : static_cast<int>(nrows);

  switch (sel) {
    case OpSel::Get:
      env.get(bptr, ocount, odt, owner, tdisp, tcount, tdt, win_);
      break;
    case OpSel::Put:
      env.put(bptr, ocount, odt, owner, tdisp, tcount, tdt, win_);
      break;
    case OpSel::Acc:
      env.accumulate(bptr, ocount, odt, owner, tdisp, tcount, tdt,
                     AccOp::Sum, win_);
      break;
  }
}

void GlobalArray::get(Env& env, std::int64_t rlo, std::int64_t rhi,
                      std::int64_t clo, std::int64_t chi, double* buf) {
  MMPI_REQUIRE(rlo >= 0 && rhi <= rows_ && clo >= 0 && chi <= cols_ &&
                   rlo < rhi && clo < chi,
               "ga: bad get patch");
  const std::int64_t ld = chi - clo;
  std::vector<int> owners;
  for_each_owner(rlo, rhi, [&](int owner, std::int64_t plo, std::int64_t phi) {
    issue_piece(env, OpSel::Get, owner, plo, phi, clo, chi, buf, ld, rlo);
    owners.push_back(owner);
  });
  // GA get is blocking: wait for remote completion of each piece.
  for (int o : owners) env.win_flush(o, win_);
}

void GlobalArray::put(Env& env, std::int64_t rlo, std::int64_t rhi,
                      std::int64_t clo, std::int64_t chi, const double* buf) {
  MMPI_REQUIRE(rlo >= 0 && rhi <= rows_ && clo >= 0 && chi <= cols_ &&
                   rlo < rhi && clo < chi,
               "ga: bad put patch");
  const std::int64_t ld = chi - clo;
  for_each_owner(rlo, rhi, [&](int owner, std::int64_t plo, std::int64_t phi) {
    issue_piece(env, OpSel::Put, owner, plo, phi, clo, chi,
                const_cast<double*>(buf), ld, rlo);
  });
}

void GlobalArray::acc(Env& env, std::int64_t rlo, std::int64_t rhi,
                      std::int64_t clo, std::int64_t chi, const double* buf) {
  MMPI_REQUIRE(rlo >= 0 && rhi <= rows_ && clo >= 0 && chi <= cols_ &&
                   rlo < rhi && clo < chi,
               "ga: bad acc patch");
  const std::int64_t ld = chi - clo;
  for_each_owner(rlo, rhi, [&](int owner, std::int64_t plo, std::int64_t phi) {
    issue_piece(env, OpSel::Acc, owner, plo, phi, clo, chi,
                const_cast<double*>(buf), ld, rlo);
  });
}

void GlobalArray::flush(Env& env) { env.win_flush_all(win_); }

void GlobalArray::sync(Env& env) {
  env.win_flush_all(win_);
  env.barrier(comm_);
  env.win_sync(win_);
}

// ------------------------------------------------------- SharedCounter ----

SharedCounter::SharedCounter(Env& env, const mpi::Comm& comm) : comm_(comm) {
  void* base = nullptr;
  const std::size_t bytes = env.rank(comm) == 0 ? sizeof(double) : 0;
  win_ = env.win_allocate(bytes, sizeof(double), mpi::Info{}, comm, &base);
  base_ = static_cast<double*>(base);
  if (env.rank(comm) == 0) *base_ = 0.0;
  env.win_lock_all(0, win_);
  env.barrier(comm_);
}

void SharedCounter::destroy(Env& env) {
  env.barrier(comm_);
  env.win_unlock_all(win_);
  env.win_free(win_);
}

std::int64_t SharedCounter::next(Env& env) {
  double one = 1.0, old = 0.0;
  env.fetch_and_op(&one, &old, Dt::Double, 0, 0, AccOp::Sum, win_);
  env.win_flush(0, win_);
  return static_cast<std::int64_t>(old);
}

void SharedCounter::reset(Env& env) {
  env.barrier(comm_);
  if (env.rank(comm_) == 0) {
    // Self op: synchronous.
    double zero = 0.0;
    env.put(&zero, 1, 0, 0, win_);
  }
  env.barrier(comm_);
}

}  // namespace casper::ga
