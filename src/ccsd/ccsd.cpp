#include "ccsd/ccsd.hpp"

#include <algorithm>
#include <vector>

#include "mpi/check.hpp"
#include "sim/rng.hpp"

namespace casper::ccsd {

using mpi::Env;

Params ccsd_profile(std::int64_t tasks_scale) {
  Params p;
  p.tasks = tasks_scale;
  p.tile = 32;
  p.gets_per_task = 3;
  p.accs_per_task = 2;
  p.compute_per_task = sim::us(120);  // communication-intensive solver
  return p;
}

Params t_portion_profile(std::int64_t tasks_scale) {
  Params p;
  p.tasks = tasks_scale;
  p.tile = 48;
  p.gets_per_task = 4;
  p.accs_per_task = 1;
  p.compute_per_task = sim::us(1200);  // DGEMM-dominated (T) portion
  return p;
}

namespace {

/// Deterministic tile placement: task t's k-th input tile row block.
std::int64_t tile_row(const Params& p, const ga::GlobalArray& a,
                      std::int64_t task, int k) {
  sim::Rng rng(p.seed, static_cast<std::uint64_t>(task) * 16 +
                           static_cast<std::uint64_t>(k));
  const std::int64_t ntiles_r = a.rows() / p.tile;
  return static_cast<std::int64_t>(rng.next_below(
             static_cast<std::uint64_t>(ntiles_r))) *
         p.tile;
}

}  // namespace

Result run_phase(Env& env, const mpi::Comm& comm, const Params& p) {
  const int pn = env.size(comm);
  // Tensor sized so every rank owns at least a few tiles.
  const std::int64_t tile = p.tile;
  const std::int64_t rows = std::max<std::int64_t>(4, pn) * 4 * tile;
  const std::int64_t cols = tile;

  ga::GlobalArray a(env, comm, rows, cols);
  ga::SharedCounter counter(env, comm);

  std::vector<double> in(static_cast<std::size_t>(tile * cols));
  std::vector<double> out(static_cast<std::size_t>(tile * cols), 1.0);

  env.barrier(comm);
  const sim::Time t0 = env.now();

  std::int64_t mine = 0;
  for (;;) {
    const std::int64_t task = counter.next(env);
    if (task >= p.tasks) break;
    ++mine;
    // fetch remote input tiles
    for (int k = 0; k < p.gets_per_task; ++k) {
      const std::int64_t r = tile_row(p, a, task, k);
      a.get(env, r, r + tile, 0, cols, in.data());
    }
    // the DGEMM
    env.compute(p.compute_per_task);
    // accumulate result tiles
    for (int k = 0; k < p.accs_per_task; ++k) {
      const std::int64_t r = tile_row(p, a, task, 8 + k);
      a.acc(env, r, r + tile, 0, cols, out.data());
    }
  }
  a.sync(env);
  const sim::Time my_wall = env.now() - t0;

  double w = sim::to_us(my_wall), wmax = 0;
  env.allreduce(&w, &wmax, 1, mpi::Dt::Double, mpi::AccOp::Max, comm);

  counter.destroy(env);
  a.destroy(env);
  Result res;
  res.wall = static_cast<sim::Time>(wmax * 1000.0);
  res.tasks_run = mine;
  return res;
}

bool verify_small(Env& env, const mpi::Comm& comm, const Params& p) {
  const int pn = env.size(comm);
  const std::int64_t tile = p.tile;
  const std::int64_t rows = std::max<std::int64_t>(4, pn) * 4 * tile;
  const std::int64_t cols = tile;

  ga::GlobalArray a(env, comm, rows, cols);
  ga::SharedCounter counter(env, comm);
  std::vector<double> out(static_cast<std::size_t>(tile * cols), 1.0);

  env.barrier(comm);
  for (;;) {
    const std::int64_t task = counter.next(env);
    if (task >= p.tasks) break;
    for (int k = 0; k < p.accs_per_task; ++k) {
      const std::int64_t r = tile_row(p, a, task, 8 + k);
      a.acc(env, r, r + tile, 0, cols, out.data());
    }
  }
  a.sync(env);

  // Expected: each (task, k) added 1.0 into every element of its tile.
  std::vector<double> expected(static_cast<std::size_t>(rows), 0.0);
  for (std::int64_t t = 0; t < p.tasks; ++t) {
    for (int k = 0; k < p.accs_per_task; ++k) {
      const std::int64_t r = tile_row(p, a, t, 8 + k);
      for (std::int64_t i = r; i < r + tile; ++i) expected[
          static_cast<std::size_t>(i)] += 1.0;
    }
  }
  bool ok = true;
  auto [lo, hi] = a.my_rows(env);
  for (std::int64_t r = lo; r < hi; ++r) {
    const double* row = a.local() + (r - lo) * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      if (row[c] != expected[static_cast<std::size_t>(r)]) ok = false;
    }
  }
  int my_ok = ok ? 1 : 0, all_ok = 0;
  env.allreduce(&my_ok, &all_ok, 1, mpi::Dt::Int, mpi::AccOp::Min, comm);

  counter.destroy(env);
  a.destroy(env);
  return all_ok == 1;
}

}  // namespace casper::ccsd
