// mini-CCSD: an NWChem TCE-style tensor-contraction driver over mini-GA.
//
// NWChem's coupled-cluster solvers (the paper's Section IV.D application)
// execute a long list of tensor-contraction tasks. Each task, on whichever
// rank grabs it from the shared NXTVAL counter, fetches remote input tiles
// with one-sided GETs, runs a DGEMM-sized computation, and accumulates the
// resulting tile back — over and over. Communication is one-sided and the
// targets are busy computing, so the run time is dominated by how fast GETs
// and ACCs make progress at busy targets: exactly what Casper accelerates.
//
// The module provides two problem profiles mirroring the paper's runs:
//   - CCSD iteration: communication-intensive (modest compute per task,
//     many tasks: "more than a dozen tensor contractions of varying size"),
//   - the (T) portion: compute-intensive (large per-task DGEMM, so
//     asynchronous progress matters at every scale; paper Fig. 8(c)).
#pragma once

#include <cstdint>

#include "ga/global_array.hpp"
#include "mpi/env.hpp"
#include "sim/time.hpp"

namespace casper::ccsd {

/// One coupled-cluster phase: a task list over a distributed tensor.
struct Params {
  std::int64_t tasks = 256;       ///< tensor-contraction tasks in the phase
  std::int64_t tile = 32;         ///< tile edge (tile x tile doubles moved)
  int gets_per_task = 2;          ///< remote input tiles fetched per task
  int accs_per_task = 1;          ///< result tiles accumulated per task
  sim::Time compute_per_task = sim::us(200);  ///< DGEMM time per task
  std::uint64_t seed = 42;        ///< tile-placement seed
};

/// Communication-heavy profile for one CCSD iteration (Fig. 8(a)/(b)).
Params ccsd_profile(std::int64_t tasks_scale);

/// Compute-heavy profile for the (T) portion (Fig. 8(c)).
Params t_portion_profile(std::int64_t tasks_scale);

struct Result {
  sim::Time wall;           ///< max time over ranks for the phase
  std::int64_t tasks_run;   ///< tasks executed by this rank
};

/// Run one phase: dynamic task loop (NXTVAL) of get -> compute -> acc.
/// Collective over `comm`; returns the phase wall time (same on all ranks).
Result run_phase(mpi::Env& env, const mpi::Comm& comm, const Params& p);

/// Verification helper: runs a tiny phase and checks the accumulated tensor
/// against the analytically expected totals (each task adds 1.0 into every
/// element of one tile). Returns true when the array content is exact.
bool verify_small(mpi::Env& env, const mpi::Comm& comm, const Params& p);

}  // namespace casper::ccsd
