// Fault injection: a seeded, deterministic description of network and ghost
// process faults applied to one simulated run.
//
// A FaultPlan is strictly opt-in: RunConfig::fault == nullptr (the default)
// changes NOTHING — no extra events, no virtual-time drift, bit-identical
// traces. With a plan installed, the runtime draws a verdict for every
// transmission of every software-path data operation (and for every ack on
// the way back) from a splitmix64 stream keyed by (plan seed, opid, attempt,
// direction). Verdicts therefore depend only on the operation's identity and
// retry count, never on host state or fiber interleaving, so faulted runs
// stay bit-reproducible and the fault counters stay schedule-invariant for a
// fixed program.
//
// Process faults (kill / stall) are virtual-time triggers: a kill marks a
// ghost rank dead at the chosen instant (see DESIGN.md §11 for the recovery
// protocol); a stall delays deliveries into a rank for a window of virtual
// time, modeling a wedged helper that later resumes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace casper::fault {

/// Per-message network fault probabilities (software AM path). All disabled
/// at zero. Probabilities are independent: the verdict draw checks drop,
/// then duplicate, then delay, so `drop_p + dup_p + delay_p` need not be
/// bounded by 1 (each is the marginal probability of its branch).
struct NetFaults {
  double drop_p = 0.0;   ///< transmission silently lost
  double dup_p = 0.0;    ///< delivered twice (second copy jittered later)
  double delay_p = 0.0;  ///< delivered late by a uniform extra latency
  /// Extra latency bounds for delay / duplicate-jitter verdicts (virtual ns).
  sim::Time delay_min = sim::us(1);
  sim::Time delay_max = sim::us(50);
  /// Acks are faulted too (same stream, direction bit set). An ack loss is
  /// recovered by the origin's retransmission timer: the target's dedup
  /// window re-acks without re-executing.
  double ack_drop_p = 0.0;

  bool any() const {
    return drop_p > 0.0 || dup_p > 0.0 || delay_p > 0.0 || ack_drop_p > 0.0;
  }
};

/// Kill a ghost process at a virtual time: it stops serving redirected
/// operations; the heartbeat detector notifies the Casper layer one period
/// later. Kills of user ranks are not modeled (Casper recovers from helper
/// death, not application death).
struct GhostKill {
  int world_rank = -1;
  sim::Time at = 0;
};

/// Stall a rank's ingress for [at, at + duration): deliveries queue and
/// land when the stall lifts. Models a wedged-but-alive helper.
struct GhostStall {
  int world_rank = -1;
  sim::Time at = 0;
  sim::Time duration = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  NetFaults net;
  std::vector<GhostKill> kills;
  std::vector<GhostStall> stalls;

  /// Retransmission timeout for the first attempt; 0 derives a default from
  /// the machine profile (see Runtime::fault RTO derivation). Subsequent
  /// attempts back off exponentially (x2, capped at 16x).
  sim::Time rto_base = 0;
  /// After this many consecutive lost transmissions of one op the next
  /// transmission is forcibly delivered, bounding worst-case virtual time
  /// even at drop_p == 1.0.
  int max_retries = 16;
  /// Virtual heartbeat period: a kill at time T is detected (and the layer
  /// notified) at the next heartbeat tick strictly after T.
  sim::Time heartbeat_period = sim::us(50);

  bool any_process_faults() const { return !kills.empty() || !stalls.empty(); }
  bool active() const { return net.any() || any_process_faults(); }
};

/// Outcome of one transmission attempt.
enum class NetVerdict : std::uint8_t { Deliver, Drop, Dup, Delay };

struct Verdict {
  NetVerdict kind = NetVerdict::Deliver;
  sim::Time extra = 0;  ///< Delay: added latency; Dup: second-copy jitter
};

/// Deterministic verdict for transmission `attempt` of operation `opid`
/// (`is_ack` selects the ack direction). Pure in its arguments and the plan
/// seed: the same logical transmission gets the same fate under every fiber
/// schedule.
inline Verdict draw(const FaultPlan& p, std::uint64_t opid,
                    std::uint32_t attempt, bool is_ack) {
  sim::Rng rng(p.seed,
               (opid << 9) ^ (static_cast<std::uint64_t>(attempt) << 1) ^
                   (is_ack ? 1u : 0u));
  Verdict v;
  if (attempt >= static_cast<std::uint32_t>(p.max_retries)) return v;
  auto span = [&]() {
    const sim::Time lo = p.net.delay_min;
    const sim::Time hi =
        p.net.delay_max > p.net.delay_min ? p.net.delay_max : p.net.delay_min;
    return lo + rng.next_u64() % (hi - lo + 1);
  };
  if (is_ack) {
    if (p.net.ack_drop_p > 0.0 && rng.next_double() < p.net.ack_drop_p) {
      v.kind = NetVerdict::Drop;
    }
    return v;
  }
  if (p.net.drop_p > 0.0 && rng.next_double() < p.net.drop_p) {
    v.kind = NetVerdict::Drop;
    return v;
  }
  if (p.net.dup_p > 0.0 && rng.next_double() < p.net.dup_p) {
    v.kind = NetVerdict::Dup;
    v.extra = span();
    return v;
  }
  if (p.net.delay_p > 0.0 && rng.next_double() < p.net.delay_p) {
    v.kind = NetVerdict::Delay;
    v.extra = span();
    return v;
  }
  return v;
}

}  // namespace casper::fault
