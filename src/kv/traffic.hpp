// Open-loop KV traffic generation: a deterministic seeded Zipfian key
// stream with a configurable read / write / read-modify-write mix and
// per-op think time, pre-materialized so every progress mode, fiber
// schedule, and shard layout replays the *identical* logical op sequence.
//
// Determinism notes:
//  - Keys/values are drawn per client from Rng(seed, 0x7f5 + client), so the
//    stream for client c does not depend on how many other clients exist.
//  - Clients stagger their start by a rank-dependent offset and draw think
//    times from their private stream, which keeps virtual-time ties (and
//    hence tie-break-order sensitivity) out of the workload itself.
//  - Values are always nonzero: 0 is the checker's "absent" sentinel.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/kv.hpp"
#include "mpi/env.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace casper::kv {

/// Zipfian sampler over keys {1..n}: P(rank i) ~ 1/(i)^s, materialized as a
/// CDF so sampling is one uniform draw + binary search. s=0 is uniform.
class Zipf {
 public:
  Zipf(int nkeys, double s);
  /// Key in [1, nkeys] (key 0 is reserved as the empty-slot sentinel).
  std::uint64_t sample(sim::Rng& rng) const;
  int nkeys() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

struct TrafficConfig {
  int nkeys = 256;
  double zipf_s = 0.99;
  int read_pct = 75;  ///< percent GET
  int rmw_pct = 0;    ///< percent CAS read-modify-write (rest are PUT)
  int ops_per_client = 100;
  sim::Time think_mean = sim::us(4);  ///< mean inter-request think time
  std::uint64_t seed = 1;
};

/// One pre-materialized client request.
struct KvOp {
  int client = 0;
  int kind = 0;  ///< 0 = GET, 1 = PUT, 2 = RMW (get + cas_update)
  std::uint64_t key = 1;
  std::int64_t val = 1;
  sim::Time think = 0;  ///< open-loop think time before issuing
};

/// The full deterministic op list for `nclients` clients, interleaved
/// client-minor so truncating to a prefix trims every client evenly (the
/// fuzzer's minimizer shrinks on this list).
std::vector<KvOp> make_ops(const TrafficConfig& tc, int nclients);

/// Execute this client's slice of `ops` (entries with op.client == my comm
/// rank) against the store, with the per-client start stagger. `limit`
/// truncates the *global* list (minimizer support); pass ops.size() to run
/// everything.
void run_ops(mpi::Env& env, KvStore& store, const std::vector<KvOp>& ops,
             std::size_t limit, const TrafficConfig& tc);

}  // namespace casper::kv
