#include "kv/kv.hpp"

#include <cstring>

#include "core/casper.hpp"
#include "mpi/runtime.hpp"
#include "obs/record.hpp"

namespace casper::kv {

using mpi::AccOp;
using mpi::Dt;

namespace {

// Layout constants (doubles; byte offsets are words * 8).
constexpr std::size_t kCtrWords = 8;       // per-server ACC counter block
constexpr std::size_t kHdrWords = 4;       // per-bucket header words
constexpr std::size_t kWord = 8;

// Server counter words (ACC Sum maintained by clients).
constexpr std::size_t kCtrOps = 0;
constexpr std::size_t kCtrHits = 1;
constexpr std::size_t kCtrMisses = 2;
constexpr std::size_t kCtrInserts = 3;
constexpr std::size_t kCtrOverflows = 4;
constexpr std::size_t kCtrCasOk = 5;
constexpr std::size_t kCtrCasFail = 6;

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t bucket_bytes(const KvConfig& cfg) {
  return (kHdrWords + 2 * static_cast<std::size_t>(cfg.assoc)) * kWord;
}

}  // namespace

std::size_t KvStore::seg_bytes(const KvConfig& cfg) {
  return kCtrWords * kWord +
         static_cast<std::size_t>(cfg.nbuckets) * bucket_bytes(cfg);
}

KvStore::KvStore(mpi::Env& env, const KvConfig& cfg, const mpi::Comm& comm)
    : env_(env), cfg_(cfg), comm_(comm) {
  me_ = env_.rank(comm_);
  nservers_ = env_.size(comm_);
  rng_ = sim::Rng(env_.runtime().config().seed ^ 0x6b76ULL,
                  0x1000 + static_cast<std::uint64_t>(me_));
  read_buf_.assign(2 * static_cast<std::size_t>(cfg_.assoc), 0.0);
}

int KvStore::server_of(std::uint64_t key) const {
  return static_cast<int>(mix64(key) % static_cast<std::uint64_t>(nservers_));
}

int KvStore::bucket_of(std::uint64_t key) const {
  const std::uint64_t h = mix64(key) / static_cast<std::uint64_t>(nservers_);
  return static_cast<int>(h % static_cast<std::uint64_t>(cfg_.nbuckets));
}

std::uint64_t KvStore::key_for(int server, int bucket, int n) const {
  int seen = 0;
  for (std::uint64_t k = 1;; ++k) {
    if (server_of(k) == server && bucket_of(k) == bucket) {
      if (seen == n) return k;
      ++seen;
    }
  }
}

std::size_t KvStore::bucket_off(int bucket) const {
  return kCtrWords * kWord +
         static_cast<std::size_t>(bucket) * bucket_bytes(cfg_);
}

std::size_t KvStore::entry_off(int bucket, int slot) const {
  return bucket_off(bucket) + kHdrWords * kWord +
         static_cast<std::size_t>(slot) * 2 * kWord;
}

void KvStore::open() {
  mpi::Info info;
  info.set(core::kEpochsUsedKey, "lockall");
  win_ = env_.win_allocate(seg_bytes(cfg_), 1, info, comm_, &base_);
  std::memset(base_, 0, seg_bytes(cfg_));
  env_.win_lock_all(0, win_);
  env_.barrier(comm_);
  open_ = true;
}

void KvStore::backoff(int attempt) {
  // Exponential, not linear: under original-MPI progress the lock holder
  // services every spinner's failing CAS inside its own flushes, so the
  // retry arrival rate must drop below the holder's software-progress
  // service rate or the holder never drains its inbox and the whole run
  // livelocks in virtual time.
  const int k = attempt < cfg_.backoff_cap ? attempt : cfg_.backoff_cap;
  const sim::Time window = cfg_.backoff_base << k;  // base * 2^k
  const sim::Time jitter = 1 + rng_.next_below(window);
  env_.compute(window + jitter);
}

int KvStore::lock_bucket(int server, std::size_t boff) {
  int attempt = 0;
  if (cfg_.lock == KvConfig::LockKind::CasSpin) {
    const double token = 1.0 + static_cast<double>(me_);
    for (;;) {
      cas_exp_ = 0.0;
      cas_des_ = token;
      cas_res_ = -1.0;
      env_.compare_and_swap(&cas_exp_, &cas_des_, &cas_res_, Dt::Double,
                            server, boff, win_);
      env_.win_flush(server, win_);
      if (cas_res_ == 0.0) break;
      ++attempt;
      backoff(attempt);
    }
  } else {
    fao_one_ = 1.0;
    fao_ticket_ = -1.0;
    env_.fetch_and_op(&fao_one_, &fao_ticket_, Dt::Double, server, boff,
                      AccOp::Sum, win_);
    env_.win_flush(server, win_);
    // Poll with an atomic read (FAO +0), not a plain GET: the holder's
    // release is a concurrent ACC on the serving word, and GET is not
    // atomic with respect to accumulates — the runtime's atomicity
    // detector (rightly) flags that mix under thread progress.
    for (;;) {
      fao_zero_ = 0.0;
      serving_ = -1.0;
      env_.fetch_and_op(&fao_zero_, &serving_, Dt::Double, server,
                        boff + kWord, AccOp::Sum, win_);
      env_.win_flush(server, win_);
      if (serving_ == fao_ticket_) break;
      ++attempt;
      backoff(attempt);
    }
  }
  stats_.lock_acquires++;
  stats_.lock_retries += static_cast<std::uint64_t>(attempt);
  obs::Recorder* rec = env_.runtime().config().recorder;
  if (obs::on(rec)) {
    rec->metrics().counter("kv.lock_acquires")++;
    rec->metrics().counter("kv.lock_retries") +=
        static_cast<std::uint64_t>(attempt);
    rec->metrics().histogram("kv.lock_spin").add(
        static_cast<std::uint64_t>(attempt));
  }
  return attempt;
}

void KvStore::unlock_bucket(int server, std::size_t boff) {
  if (cfg_.lock == KvConfig::LockKind::CasSpin) {
    const double token = 1.0 + static_cast<double>(me_);
    cas_exp_ = token;
    cas_des_ = 0.0;
    cas_res_ = -1.0;
    env_.compare_and_swap(&cas_exp_, &cas_des_, &cas_res_, Dt::Double, server,
                          boff, win_);
    env_.win_flush(server, win_);
    if (cas_res_ != token) stats_.unlock_mismatch++;
  } else {
    env_.accumulate(&d_one_, 1, server, boff + kWord, AccOp::Sum, win_);
    env_.win_flush(server, win_);
  }
}

KvStore::Probe KvStore::probe(int server, int bucket, std::uint64_t key) {
  env_.get(read_buf_.data(), 2 * cfg_.assoc, server,
           bucket_off(bucket) + kHdrWords * kWord, win_);
  env_.win_flush(server, win_);
  Probe pr;
  const double kd = static_cast<double>(key);
  for (int s = 0; s < cfg_.assoc; ++s) {
    const double slot_key = read_buf_[2 * static_cast<std::size_t>(s)];
    if (slot_key == kd) {
      pr.slot = s;
      pr.value = static_cast<std::int64_t>(
          read_buf_[2 * static_cast<std::size_t>(s) + 1]);
      return pr;
    }
    if (slot_key == 0.0 && pr.empty < 0) pr.empty = s;
  }
  return pr;
}

void KvStore::write_entry(int server, int bucket, int slot, std::uint64_t key,
                          std::int64_t value) {
  entry_buf_[0] = static_cast<double>(key);
  entry_buf_[1] = static_cast<double>(value);
  env_.put(entry_buf_, 2, server, entry_off(bucket, slot), win_);
  // The visibility flush: makes the value write durable BEFORE the lock is
  // released. Skipping it (the planted bug) leaves the PUT unordered with
  // the release CAS/ACC — both are completed by the unlock's flush, but in
  // either commit order, so a fast next holder can read the stale entry.
  if (!cfg_.skip_unlock_flush) env_.win_flush(server, win_);
}

void KvStore::bump_server_counters(int server, std::size_t boff,
                                   int ctr_word) {
  // Unflushed ACCs: they ride the unlock's flush (commutative, disjoint from
  // the entry bytes, so ordering does not matter).
  env_.accumulate(&d_one_, 1, server, boff + 2 * kWord, AccOp::Sum, win_);
  env_.accumulate(&d_one_, 1, server, kCtrOps * kWord, AccOp::Sum, win_);
  env_.accumulate(&d_one_, 1, server,
                  static_cast<std::size_t>(ctr_word) * kWord, AccOp::Sum,
                  win_);
}

void KvStore::finish(KvEvent e, sim::Time inv, int retries) {
  e.inv = inv;
  e.resp = env_.now();
  e.client = me_;
  e.cseq = cseq_++;
  if (sink_ != nullptr) sink_->record(e);
  obs::Recorder* rec = env_.runtime().config().recorder;
  if (obs::on(rec)) {
    obs::Metrics& m = rec->metrics();
    switch (e.kind) {
      case KvEvent::Kind::Get:
        m.counter("kv.gets")++;
        m.counter(e.result != 0 ? "kv.hits" : "kv.misses")++;
        break;
      case KvEvent::Kind::Put:
        m.counter("kv.puts")++;
        if (!e.ok) m.counter("kv.overflows")++;
        break;
      case KvEvent::Kind::CasUpd:
        m.counter("kv.cas")++;
        m.counter(e.ok ? "kv.cas_ok" : "kv.cas_fail")++;
        break;
    }
    m.histogram("kv.op_ns").add(e.resp - e.inv);
    rec->trace().instant(env_.world_rank(), obs::Ev::KvOp, e.resp,
                         static_cast<std::uint64_t>(e.kind), e.key,
                         static_cast<std::uint64_t>(retries));
  }
}

KvResult KvStore::get(std::uint64_t key) {
  const sim::Time inv = env_.now();
  const int server = server_of(key);
  const int bucket = bucket_of(key);
  const std::size_t boff = bucket_off(bucket);
  const int retries = lock_bucket(server, boff);
  const Probe pr = probe(server, bucket, key);
  const bool hit = pr.slot >= 0;
  bump_server_counters(server, boff,
                       hit ? static_cast<int>(kCtrHits)
                           : static_cast<int>(kCtrMisses));
  unlock_bucket(server, boff);
  stats_.gets++;
  if (hit) {
    stats_.hits++;
  } else {
    stats_.misses++;
  }
  KvEvent e;
  e.key = key;
  e.kind = KvEvent::Kind::Get;
  e.result = hit ? pr.value : 0;
  e.ok = true;
  finish(e, inv, retries);
  return {hit, hit ? pr.value : 0, retries};
}

KvResult KvStore::put(std::uint64_t key, std::int64_t value) {
  const sim::Time inv = env_.now();
  const int server = server_of(key);
  const int bucket = bucket_of(key);
  const std::size_t boff = bucket_off(bucket);
  const int retries = lock_bucket(server, boff);
  const Probe pr = probe(server, bucket, key);
  bool applied = false;
  int ctr;
  if (pr.slot >= 0) {
    write_entry(server, bucket, pr.slot, key, value);
    applied = true;
    stats_.updates++;
    ctr = static_cast<int>(kCtrHits);
  } else if (pr.empty >= 0) {
    write_entry(server, bucket, pr.empty, key, value);
    applied = true;
    stats_.inserts++;
    ctr = static_cast<int>(kCtrInserts);
  } else {
    stats_.overflows++;
    ctr = static_cast<int>(kCtrOverflows);
  }
  bump_server_counters(server, boff, ctr);
  unlock_bucket(server, boff);
  stats_.puts++;
  KvEvent e;
  e.key = key;
  e.kind = KvEvent::Kind::Put;
  e.arg1 = value;
  e.ok = applied;
  finish(e, inv, retries);
  return {applied, value, retries};
}

KvResult KvStore::cas_update(std::uint64_t key, std::int64_t expected,
                             std::int64_t desired) {
  const sim::Time inv = env_.now();
  const int server = server_of(key);
  const int bucket = bucket_of(key);
  const std::size_t boff = bucket_off(bucket);
  const int retries = lock_bucket(server, boff);
  const Probe pr = probe(server, bucket, key);
  const bool ok = pr.slot >= 0 && pr.value == expected;
  if (ok) write_entry(server, bucket, pr.slot, key, desired);
  const std::int64_t old = pr.slot >= 0 ? pr.value : 0;
  bump_server_counters(
      server, boff,
      ok ? static_cast<int>(kCtrCasOk) : static_cast<int>(kCtrCasFail));
  unlock_bucket(server, boff);
  stats_.cas++;
  if (ok) {
    stats_.cas_ok++;
  } else {
    stats_.cas_fail++;
  }
  KvEvent e;
  e.key = key;
  e.kind = KvEvent::Kind::CasUpd;
  e.arg1 = expected;
  e.arg2 = desired;
  e.result = old;
  e.ok = ok;
  finish(e, inv, retries);
  return {ok, old, retries};
}

void KvStore::close() {
  env_.barrier(comm_);
  env_.win_unlock_all(win_);
  env_.barrier(comm_);

  // Cluster-wide stats: exact double sums (all counts far below 2^53).
  const std::uint64_t* f = &stats_.gets;
  constexpr int kFields = sizeof(KvStats) / sizeof(std::uint64_t);
  double in[kFields], out[kFields];
  for (int i = 0; i < kFields; ++i) in[i] = static_cast<double>(f[i]);
  env_.allreduce(in, out, kFields, Dt::Double, AccOp::Sum, comm_);
  std::uint64_t* g = &global_.gets;
  for (int i = 0; i < kFields; ++i) {
    g[i] = static_cast<std::uint64_t>(out[i]);
  }

  // Order-independent fingerprint of the final table: exact sums of each
  // rank's segment-FNV halves, folded into one digest.
  const std::uint64_t h = fnv1a(base_, seg_bytes(cfg_));
  double fin[2] = {static_cast<double>(h & 0xffffffffULL),
                   static_cast<double>(h >> 32)};
  double fout[2] = {0, 0};
  env_.allreduce(fin, fout, 2, Dt::Double, AccOp::Sum, comm_);
  fingerprint_ = static_cast<std::uint64_t>(fout[0]) * 0x9e3779b97f4a7c15ULL ^
                 static_cast<std::uint64_t>(fout[1]);

  // ACC-counter totals (server side of the books) and the per-bucket
  // contention histogram, read locally from this rank's own segment.
  const double* words = static_cast<const double*>(base_);
  for (std::size_t w = 0; w < kCtrWords; ++w) {
    in[w] = words[w];
  }
  env_.allreduce(in, out, static_cast<int>(kCtrWords), Dt::Double, AccOp::Sum,
                 comm_);
  for (std::size_t w = 0; w < kCtrWords; ++w) {
    acc_totals_[w] = static_cast<std::uint64_t>(out[w]);
  }
  obs::Recorder* rec = env_.runtime().config().recorder;
  if (obs::on(rec)) {
    obs::Metrics& m = rec->metrics();
    for (int b = 0; b < cfg_.nbuckets; ++b) {
      const double nops = words[bucket_off(b) / kWord + 2];
      m.histogram("kv.bucket_ops").add(static_cast<std::uint64_t>(nops));
      if (nops > 0) m.counter("kv.buckets_used")++;
    }
  }

  env_.win_free(win_);
  open_ = false;
}

}  // namespace casper::kv
