// RMA-backed sharded key-value store (ROADMAP item 2).
//
// Every application rank is simultaneously a *server* — it exposes a
// fixed-size bucket array in its segment of one RMA window — and a *client*
// issuing GET/PUT/CAS-update requests against the whole cluster. There is no
// server-side code at all: every operation is implemented purely with
// one-sided MPI (CAS/FAO bucket spinlocks, GET/PUT value transfer, ACC
// statistics counters), so the store runs identically under the original,
// thread-progress, and Casper execution modes with any ghost count — which
// is exactly what makes it a progress-model workload: every lock word and
// value byte moves through whatever progress engine the run configured.
//
// Segment layout (all cells are 8-byte doubles, chosen because every basic
// RMA atomic in the runtime operates on one element and small integers are
// exact in a double):
//
//   [ 8 server counter words ][ bucket 0 ][ bucket 1 ] ... [ bucket B-1 ]
//
//   bucket := [ w0: lock / ticket-next ][ w1: ticket-serving ]
//             [ w2: bucket op count    ][ w3: reserved       ]
//             [ assoc x (key, value) entry pairs ]
//
// Key -> shard mapping: a splitmix64 hash picks the server rank, the next
// hash digits pick the bucket. Collisions chain through the bucket's `assoc`
// entry slots (resize-free open addressing within one bucket); a full bucket
// makes further inserts fail with `overflow` rather than grow.
//
// Locking protocol (KvConfig::lock):
//   CasSpin   — acquire: CAS(w0, 0 -> 1+rank) + flush, deterministic
//               exponential backoff on failure; release: CAS(w0, 1+rank -> 0)
//               which also validates ownership.
//   FaoTicket — acquire: FAO(w0, +1) returns my ticket, then poll w1 with
//               atomic reads (FAO +0; a plain GET would race the releasing
//               ACC) until serving == ticket; release: ACC(w1, +1).
// Value writes are flushed BEFORE the releasing CAS/ACC is issued; skipping
// that flush (KvConfig::skip_unlock_flush, test-only) leaves the value PUT
// unordered relative to the lock release — the planted bug the
// linearizability checker must catch (see src/check/linear.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/env.hpp"
#include "mpi/win.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace casper::kv {

/// One completed logical KV operation, as recorded for the linearizability
/// checker: the invocation/response virtual-time interval plus the
/// client-observed arguments and results.
struct KvEvent {
  enum class Kind : std::uint8_t { Get = 0, Put = 1, CasUpd = 2 };
  std::uint64_t key = 0;
  Kind kind = Kind::Get;
  std::int64_t arg1 = 0;    ///< Put: value written | CasUpd: expected
  std::int64_t arg2 = 0;    ///< CasUpd: desired
  std::int64_t result = 0;  ///< Get: value read (0 = absent) | CasUpd: old
  /// Put: applied (false = bucket overflow, store untouched);
  /// CasUpd: swap succeeded; Get: always true.
  bool ok = true;
  int client = -1;          ///< comm rank of the issuing client
  std::uint64_t cseq = 0;   ///< client-local op sequence (deterministic)
  sim::Time inv = 0;        ///< invocation virtual time
  sim::Time resp = 0;       ///< response virtual time
};

/// Where the store reports completed operations. The linearizability checker
/// implements this alongside its RmaObserver face; KvStore calls record()
/// once per logical GET/PUT/CAS-update at response time.
class HistorySink {
 public:
  virtual ~HistorySink() = default;
  virtual void record(const KvEvent& e) = 0;
};

struct KvConfig {
  int nbuckets = 64;  ///< buckets per server rank
  int assoc = 4;      ///< entry slots per bucket (the collision chain)
  enum class LockKind : std::uint8_t { CasSpin = 0, FaoTicket = 1 };
  LockKind lock = LockKind::CasSpin;
  /// Deterministic exponential backoff: attempt k sleeps base*2^min(k,cap)
  /// plus a seeded jitter in [1, same window] drawn from the client's
  /// private stream. Exponential growth is load-bearing: it keeps the
  /// spinners' retry rate below the lock holder's software-progress service
  /// rate (a linear backoff livelocks original-MPI runs — the holder ends
  /// up perpetually servicing failing CASes inside its own flushes).
  sim::Time backoff_base = sim::ns(300);
  int backoff_cap = 8;
  /// PLANTED BUG (tests only): skip the flush between the value PUT and the
  /// lock release, leaving the write unordered w.r.t. the unlock. Readers
  /// that acquire the lock before the PUT commits observe stale values —
  /// the linearizability violation the checker exists to catch.
  bool skip_unlock_flush = false;
};

/// Client-side operation statistics, aggregated across ranks by close().
struct KvStats {
  std::uint64_t gets = 0, puts = 0, cas = 0;
  std::uint64_t hits = 0, misses = 0;
  std::uint64_t inserts = 0, updates = 0, overflows = 0;
  std::uint64_t cas_ok = 0, cas_fail = 0;
  std::uint64_t lock_acquires = 0, lock_retries = 0, unlock_mismatch = 0;

  std::uint64_t ops() const { return gets + puts + cas; }
  bool operator==(const KvStats&) const = default;
};

struct KvResult {
  bool ok = false;          ///< Get: hit | Put: applied | CasUpd: swapped
  std::int64_t value = 0;   ///< Get: value | CasUpd: old value
  int lock_retries = 0;
};

class KvStore {
 public:
  /// Collective over `comm` (construct on every rank, same cfg everywhere).
  KvStore(mpi::Env& env, const KvConfig& cfg, const mpi::Comm& comm);

  /// Collective: allocate the window, zero the table, open the permanent
  /// lock_all passive epoch, barrier.
  void open();

  /// Collective: barrier, close the epoch, aggregate stats + a deterministic
  /// window fingerprint across ranks, harvest the per-bucket contention
  /// histogram into the metrics registry, free the window.
  void close();

  // --- client operations (any rank, between open() and close()) -----------
  KvResult get(std::uint64_t key);
  KvResult put(std::uint64_t key, std::int64_t value);  ///< upsert
  KvResult cas_update(std::uint64_t key, std::int64_t expected,
                      std::int64_t desired);

  /// Attach the linearizability log writer (null detaches). Must be set
  /// before the first operation to cover the whole history.
  void set_sink(HistorySink* sink) { sink_ = sink; }

  // --- introspection -------------------------------------------------------
  int server_of(std::uint64_t key) const;
  int bucket_of(std::uint64_t key) const;
  int nservers() const { return nservers_; }
  /// The n-th key (n >= 0) that hashes to (server, bucket) — deterministic,
  /// distinct per n; used by collision-chain tests to force one bucket.
  std::uint64_t key_for(int server, int bucket, int n) const;

  /// This rank's client-side counters.
  const KvStats& local_stats() const { return stats_; }
  /// Cluster totals; valid after close().
  const KvStats& global_stats() const { return global_; }
  /// Order-independent digest of every rank's final segment bytes (two exact
  /// double-sums of per-rank FNV halves); valid after close(). Equal
  /// fingerprints mean byte-identical final tables.
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// Cluster total of ACC-maintained server counter word `w` (0 = ops,
  /// 1 = hits, 2 = misses, 3 = inserts, 4 = overflows, 5 = cas_ok,
  /// 6 = cas_fail); valid after close(). Tests cross-check these against the
  /// client-side KvStats books.
  std::uint64_t acc_total(int w) const { return acc_totals_[w]; }

  static std::size_t seg_bytes(const KvConfig& cfg);

 private:
  struct Probe {
    int slot = -1;        ///< slot holding the key, or -1
    int empty = -1;       ///< first empty slot, or -1
    std::int64_t value = 0;
  };

  std::size_t bucket_off(int bucket) const;
  std::size_t entry_off(int bucket, int slot) const;
  int lock_bucket(int server, std::size_t boff);  ///< returns retry count
  void unlock_bucket(int server, std::size_t boff);
  Probe probe(int server, int bucket, std::uint64_t key);
  void write_entry(int server, int bucket, int slot, std::uint64_t key,
                   std::int64_t value);
  void bump_server_counters(int server, std::size_t boff, int ctr_word);
  void backoff(int attempt);
  void finish(KvEvent e, sim::Time inv, int retries);

  mpi::Env& env_;
  KvConfig cfg_;
  mpi::Comm comm_;
  mpi::Win win_;
  void* base_ = nullptr;
  int me_ = -1;
  int nservers_ = 0;
  bool open_ = false;
  std::uint64_t cseq_ = 0;
  sim::Rng rng_;  ///< per-client backoff jitter stream
  // Scratch buffers for in-flight RMA: the runtime unpacks origin/result
  // payloads at the completing flush, so these must outlive each op — member
  // storage, never stack temporaries. One op is in flight per slot at a time
  // (the store issues from the owning rank's fiber only).
  std::vector<double> read_buf_;  ///< bucket entry GET target (2*assoc)
  double cas_exp_ = 0, cas_des_ = 0, cas_res_ = 0;
  double fao_one_ = 1.0;
  double fao_ticket_ = 0;  ///< ticket-lock FAO result
  double fao_zero_ = 0;    ///< FAO +0 operand (atomic read)
  double serving_ = 0;     ///< ticket-lock poll result
  double entry_buf_[2] = {0, 0};
  double d_one_ = 1.0;  ///< ACC +1 payload (unflushed; rides the unlock)
  std::uint64_t acc_totals_[8] = {};
  HistorySink* sink_ = nullptr;
  KvStats stats_;
  KvStats global_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace casper::kv
