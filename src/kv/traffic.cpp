#include "kv/traffic.hpp"

#include <algorithm>
#include <cmath>

namespace casper::kv {

Zipf::Zipf(int nkeys, double s) {
  cdf_.resize(static_cast<std::size_t>(nkeys < 1 ? 1 : nkeys));
  double acc = 0.0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding keeping the tail unreachable
}

std::uint64_t Zipf::sample(sim::Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t i =
      it == cdf_.end() ? cdf_.size() - 1
                       : static_cast<std::size_t>(it - cdf_.begin());
  return static_cast<std::uint64_t>(i + 1);
}

std::vector<KvOp> make_ops(const TrafficConfig& tc, int nclients) {
  const Zipf zipf(tc.nkeys, tc.zipf_s);
  std::vector<sim::Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(nclients));
  for (int c = 0; c < nclients; ++c) {
    rngs.emplace_back(tc.seed, 0x7f5 + static_cast<std::uint64_t>(c));
  }
  std::vector<KvOp> ops;
  ops.reserve(static_cast<std::size_t>(tc.ops_per_client) *
              static_cast<std::size_t>(nclients));
  for (int i = 0; i < tc.ops_per_client; ++i) {
    for (int c = 0; c < nclients; ++c) {
      sim::Rng& rng = rngs[static_cast<std::size_t>(c)];
      KvOp op;
      op.client = c;
      op.key = zipf.sample(rng);
      const int r = static_cast<int>(rng.next_below(100));
      if (r < tc.read_pct) {
        op.kind = 0;
      } else if (r < tc.read_pct + tc.rmw_pct) {
        op.kind = 2;
      } else {
        op.kind = 1;
      }
      op.val = 1 + static_cast<std::int64_t>(rng.next_below(1u << 30));
      op.think = tc.think_mean == 0
                     ? 0
                     : tc.think_mean / 2 + rng.next_below(tc.think_mean);
      ops.push_back(op);
    }
  }
  return ops;
}

void run_ops(mpi::Env& env, KvStore& store, const std::vector<KvOp>& ops,
             std::size_t limit, const TrafficConfig& tc) {
  (void)tc;
  const int me = env.rank(env.world());
  // Rank-staggered start: breaks exact virtual-time ties between clients
  // racing for the same hot bucket at t=0.
  env.compute(static_cast<sim::Time>(me + 1) * sim::ns(1637));
  const std::size_t n = std::min(limit, ops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const KvOp& op = ops[i];
    if (op.client != me) continue;
    env.compute(op.think);
    switch (op.kind) {
      case 0:
        store.get(op.key);
        break;
      case 1:
        store.put(op.key, op.val);
        break;
      default: {
        // Read-modify-write: CAS the freshly observed value to op.val. On a
        // miss the CAS legally fails (expected 0 never matches); both sides
        // of the race are valid linearizable histories.
        const KvResult r = store.get(op.key);
        store.cas_update(op.key, r.value, op.val);
        break;
      }
    }
  }
}

}  // namespace casper::kv
