// Nonblocking point-to-point request handles.
#pragma once

#include <memory>

#include "mpi/types.hpp"

namespace casper::mpi {

/// Completion state of a nonblocking operation. Handles are shared: the
/// runtime keeps one reference while the operation is pending.
struct RequestState {
  bool done = false;
  Status status;
  // receive plumbing (null for sends, which complete at injection)
  void* buf = nullptr;
  std::size_t max_bytes = 0;
  int src_world = kAnySource;
  int tag = kAnyTag;
  int comm_id = -1;
  const void* comm = nullptr;  // CommImpl*, type-erased to avoid a cycle
};

using Request = std::shared_ptr<RequestState>;

}  // namespace casper::mpi
