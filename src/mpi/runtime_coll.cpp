// Runtime: point-to-point messaging, synchronizing collectives, and
// communicator management.
//
// Collectives use a rendezvous model: every member contributes its buffers;
// the last arriver (the "releaser") performs the data movement while all
// other members are still blocked inside the call (so their buffers are
// valid), computes a release time with a log2(p) cost model, and wakes
// everyone at that time. Members service incoming software RMA operations
// while they wait — which is exactly how blocked MPI calls provide progress
// in real implementations (and what the paper's fence-based benchmarks rely
// on).
#include <algorithm>
#include <cstring>

#include "mpi/check.hpp"
#include "mpi/datatype.hpp"
#include "mpi/runtime.hpp"

namespace casper::mpi {

using sim::Time;

namespace {

int ceil_log2(int n) {
  int stages = 0;
  int v = 1;
  while (v < n) {
    v *= 2;
    ++stages;
  }
  return stages;
}

/// Parts sorted by comm rank (arrival order is nondeterministic in time but
/// data placement must follow comm ranks).
std::vector<const CommImpl::CollState::Part*> sorted_parts(
    const CommImpl& comm) {
  std::vector<const CommImpl::CollState::Part*> out;
  out.reserve(comm.coll.parts.size());
  for (const auto& p : comm.coll.parts) out.push_back(&p);
  std::sort(out.begin(), out.end(),
            [&comm](const auto* a, const auto* b) {
              return comm.rank_of_world(a->world) <
                     comm.rank_of_world(b->world);
            });
  return out;
}

}  // namespace

// ------------------------------------------------------------ rendezvous --

void Runtime::coll_run(Env& env, const Comm& comm, const void* src, void* dst,
                       long long a, long long b, std::size_t wire_bytes,
                       const std::function<void(CommImpl&)>& finalize) {
  MMPI_REQUIRE(comm != nullptr, "null communicator");
  MMPI_REQUIRE(comm->rank_of_world(env.world_rank()) >= 0,
               "rank %d is not a member of comm %d", env.world_rank(),
               comm->id());
  auto& c = comm->coll;
  env.ctx().advance(profile().op_inject);

  // Sharded runs lock the rendezvous: members of one communicator can arrive
  // on different worker threads. The release time is a pure function of the
  // members' arrival times (max + log2(p) stages), not of host arrival
  // order, so virtual-time results stay shard-count-invariant; only the
  // identity of the releaser (who runs finalize) is host-dependent, and
  // finalize runs while every other member is still blocked in the call.
  std::unique_lock<std::mutex> lk(c.mu, std::defer_lock);
  if (engine_->sharded()) lk.lock();
  const std::uint64_t mygen = c.generation;
  c.parts.push_back(
      CommImpl::CollState::Part{env.world_rank(), src, dst, a, b});
  c.max_arrival = std::max(c.max_arrival, env.now());

  if (static_cast<int>(c.parts.size()) == comm->size()) {
    const int stages = ceil_log2(comm->size());
    const Time per_stage =
        profile().barrier_stage +
        static_cast<Time>(profile().net_ns_per_byte *
                          static_cast<double>(wire_bytes));
    const Time rel = c.max_arrival +
                     static_cast<Time>(stages) * per_stage;
    finalize(*comm);
    c.parts.clear();
    c.max_arrival = 0;
    c.release_time = rel;
    ++c.generation;
    if (lk.owns_lock()) lk.unlock();
    // wake_at: cross-shard-safe (identical to wake when unsharded). Valid
    // because rel >= now + stages*barrier_stage and the lookahead is clamped
    // to at most that for every shard-spanning communicator.
    for (int w : comm->members()) {
      if (w != env.world_rank()) engine_->wake_at(w, rel);
    }
    const int me = env.world_rank();
    post_event(rel, [this, me, rel]() { engine_->wake(me, rel); });
    progress_wait(env, [&env, rel]() { return env.now() >= rel; });
  } else {
    if (lk.owns_lock()) lk.unlock();
    progress_wait(env, [&c, mygen]() { return c.generation != mygen; });
    const Time rel = c.release_time;
    const int me = env.world_rank();
    post_event(rel, [this, me, rel]() { engine_->wake(me, rel); });
    progress_wait(env, [&env, rel]() { return env.now() >= rel; });
  }
}

// ----------------------------------------------------------- collectives --

void Runtime::p_barrier(Env& env, const Comm& comm) {
  coll_run(env, comm, nullptr, nullptr, 0, 0, 0, [](CommImpl&) {});
}

void Runtime::p_bcast(Env& env, void* buf, int count, Dt dt, int root,
                      const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  const int me = comm->rank_of_world(env.world_rank());
  coll_run(env, comm, buf, buf, me == root ? 1 : 0, 0, bytes,
           [bytes](CommImpl& cm) {
             const void* src = nullptr;
             for (const auto& p : cm.coll.parts) {
               if (p.a == 1) src = p.src;
             }
             MMPI_REQUIRE(src != nullptr, "bcast: no root contribution");
             for (const auto& p : cm.coll.parts) {
               if (p.dst != src) std::memcpy(p.dst, src, bytes);
             }
           });
}

void Runtime::p_reduce(Env& env, const void* sendbuf, void* recvbuf,
                       int count, Dt dt, AccOp op, int root,
                       const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  const int me = comm->rank_of_world(env.world_rank());
  coll_run(env, comm, sendbuf, me == root ? recvbuf : nullptr, 0, 0, bytes,
           [bytes, count, dt, op](CommImpl& cm) {
             auto parts = sorted_parts(cm);
             std::vector<std::byte> acc(bytes);
             std::memcpy(acc.data(), parts[0]->src, bytes);
             for (std::size_t i = 1; i < parts.size(); ++i) {
               reduce_contig(acc.data(), parts[i]->src,
                             static_cast<std::size_t>(count), dt, op);
             }
             for (const auto* p : parts) {
               if (p->dst != nullptr) std::memcpy(p->dst, acc.data(), bytes);
             }
           });
}

void Runtime::p_allreduce(Env& env, const void* sendbuf, void* recvbuf,
                          int count, Dt dt, AccOp op, const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  coll_run(env, comm, sendbuf, recvbuf, 0, 0, bytes,
           [bytes, count, dt, op](CommImpl& cm) {
             auto parts = sorted_parts(cm);
             std::vector<std::byte> acc(bytes);
             std::memcpy(acc.data(), parts[0]->src, bytes);
             for (std::size_t i = 1; i < parts.size(); ++i) {
               reduce_contig(acc.data(), parts[i]->src,
                             static_cast<std::size_t>(count), dt, op);
             }
             for (const auto* p : parts) {
               std::memcpy(p->dst, acc.data(), bytes);
             }
           });
}

void Runtime::p_allgather(Env& env, const void* sendbuf, int count, Dt dt,
                          void* recvbuf, const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  coll_run(env, comm, sendbuf, recvbuf, 0, 0, bytes, [bytes](CommImpl& cm) {
    auto parts = sorted_parts(cm);
    for (const auto* dstp : parts) {
      auto* out = static_cast<std::byte*>(dstp->dst);
      for (std::size_t j = 0; j < parts.size(); ++j) {
        std::memcpy(out + j * bytes, parts[j]->src, bytes);
      }
    }
  });
}

void Runtime::p_gather(Env& env, const void* sendbuf, int count, Dt dt,
                       void* recvbuf, int root, const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  const int me = comm->rank_of_world(env.world_rank());
  coll_run(env, comm, sendbuf, me == root ? recvbuf : nullptr, 0, 0, bytes,
           [bytes](CommImpl& cm) {
             auto parts = sorted_parts(cm);
             void* dst = nullptr;
             for (const auto* p : parts) {
               if (p->dst != nullptr) dst = p->dst;
             }
             MMPI_REQUIRE(dst != nullptr, "gather: no root contribution");
             auto* out = static_cast<std::byte*>(dst);
             for (std::size_t j = 0; j < parts.size(); ++j) {
               std::memcpy(out + j * bytes, parts[j]->src, bytes);
             }
           });
}

void Runtime::p_scatter(Env& env, const void* sendbuf, int count, Dt dt,
                        void* recvbuf, int root, const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  const int me = comm->rank_of_world(env.world_rank());
  coll_run(env, comm, me == root ? sendbuf : nullptr, recvbuf, 0, 0, bytes,
           [bytes](CommImpl& cm) {
             auto parts = sorted_parts(cm);
             const void* src = nullptr;
             for (const auto* p : parts) {
               if (p->src != nullptr) src = p->src;
             }
             MMPI_REQUIRE(src != nullptr, "scatter: no root contribution");
             const auto* in = static_cast<const std::byte*>(src);
             for (std::size_t j = 0; j < parts.size(); ++j) {
               std::memcpy(parts[j]->dst, in + j * bytes, bytes);
             }
           });
}

void Runtime::p_alltoall(Env& env, const void* sendbuf, int count, Dt dt,
                         void* recvbuf, const Comm& comm) {
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  const std::size_t total = bytes * static_cast<std::size_t>(comm->size());
  coll_run(env, comm, sendbuf, recvbuf, 0, 0, total, [bytes](CommImpl& cm) {
    auto parts = sorted_parts(cm);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      auto* out = static_cast<std::byte*>(parts[i]->dst);
      for (std::size_t j = 0; j < parts.size(); ++j) {
        std::memcpy(out + j * bytes,
                    static_cast<const std::byte*>(parts[j]->src) + i * bytes,
                    bytes);
      }
    }
  });
}

// ---------------------------------------------------- communicator mgmt --

Comm Runtime::p_comm_split(Env& env, const Comm& comm, int color, int key) {
  Comm result;
  coll_run(
      env, comm, nullptr, &result, color, key, 8, [this](CommImpl& cm) {
        // Collect distinct colors in sorted order for deterministic ids.
        auto parts = sorted_parts(cm);
        std::vector<long long> colors;
        for (const auto* p : parts) {
          if (p->a >= 0 &&
              std::find(colors.begin(), colors.end(), p->a) == colors.end()) {
            colors.push_back(p->a);
          }
        }
        std::sort(colors.begin(), colors.end());
        for (long long color_v : colors) {
          std::vector<const CommImpl::CollState::Part*> group;
          for (const auto* p : parts) {
            if (p->a == color_v) group.push_back(p);
          }
          std::stable_sort(group.begin(), group.end(),
                           [](const auto* x, const auto* y) {
                             return x->b < y->b;
                           });
          std::vector<int> members;
          members.reserve(group.size());
          for (const auto* p : group) members.push_back(p->world);
          auto nc = std::make_shared<CommImpl>(alloc_comm_id(), members);
          shard_clamp_for_members(members);
          for (const auto* p : group) {
            *static_cast<Comm*>(p->dst) = nc;
          }
        }
      });
  return result;  // null for color < 0 (MPI_UNDEFINED)
}

Comm Runtime::p_comm_dup(Env& env, const Comm& comm) {
  Comm result;
  coll_run(env, comm, nullptr, &result, 0, 0, 8, [this](CommImpl& cm) {
    auto nc = std::make_shared<CommImpl>(alloc_comm_id(), cm.members());
    shard_clamp_for_members(cm.members());
    for (const auto& p : cm.coll.parts) {
      *static_cast<Comm*>(p.dst) = nc;
    }
  });
  return result;
}

void Runtime::shard_clamp_for_members(const std::vector<int>& members) {
  if (!engine_->sharded() || members.empty()) return;
  const int s0 = engine_->shard_of_rank(members.front());
  bool spans = false;
  for (int w : members) {
    if (engine_->shard_of_rank(w) != s0) {
      spans = true;
      break;
    }
  }
  if (!spans) return;  // intra-shard comms never wake across shards
  // A collective on this communicator releases ceil_log2(p)*barrier_stage
  // after its last arrival at the earliest (per_stage >= barrier_stage), so
  // a lookahead at or below that keeps every cross-shard wake_at beyond the
  // posting shard's window end. Clamps take effect at the next window
  // barrier, and the communicator is unusable until its (collective)
  // creation releases — which is itself beyond the current window — so no
  // collective on it can run against the unclamped window.
  const Time floor =
      static_cast<Time>(ceil_log2(static_cast<int>(members.size()))) *
      profile().barrier_stage;
  engine_->clamp_lookahead(floor);
}

// -------------------------------------------------------- point-to-point --

bool Runtime::p2p_match(const RequestState& r, const P2pMsg& m) {
  if (r.comm_id != m.comm_id) return false;
  if (r.tag != kAnyTag && r.tag != m.tag) return false;
  if (r.src_world != kAnySource && r.src_world != m.src_world) return false;
  return true;
}

void Runtime::deliver_p2p(int dst_world, P2pMsg&& msg, Time t_del) {
  auto& io = io_[static_cast<std::size_t>(dst_world)];
  for (auto it = io.posted.begin(); it != io.posted.end(); ++it) {
    RequestState& r = **it;
    if (!p2p_match(r, msg)) continue;
    const std::size_t n = std::min(r.max_bytes, msg.data.size());
    MMPI_REQUIRE(msg.data.size() <= r.max_bytes,
                 "message truncation: recv buffer %zu < message %zu",
                 r.max_bytes, msg.data.size());
    if (n > 0) std::memcpy(r.buf, msg.data.data(), n);
    r.status.source = static_cast<const CommImpl*>(r.comm)->rank_of_world(
        msg.src_world);
    r.status.tag = msg.tag;
    r.status.bytes = n;
    r.done = true;
    io.posted.erase(it);
    engine_->wake(dst_world, t_del);
    return;
  }
  io.unexpected.push_back(std::move(msg));
  engine_->wake(dst_world, t_del);
}

void Runtime::p_send(Env& env, const void* buf, int count, Dt dt, int dest,
                     int tag, const Comm& comm) {
  MMPI_REQUIRE(dest >= 0 && dest < comm->size(), "send: bad dest %d", dest);
  const std::size_t bytes = static_cast<std::size_t>(count) * dt_size(dt);
  env.ctx().advance(profile().op_inject);

  P2pMsg m;
  m.src_world = env.world_rank();
  m.tag = tag;
  m.comm_id = comm->id();
  m.data.resize(bytes);
  if (bytes > 0) std::memcpy(m.data.data(), buf, bytes);

  const int dst_world = comm->world_rank(dest);
  const Time t_del =
      env.now() + wire_latency(env.world_rank(), dst_world, bytes);
  post_event(t_del, dst_world,
             [this, dst_world, t_del, m = std::move(m)]() mutable {
    deliver_p2p(dst_world, std::move(m), t_del);
  });
  ++engine_->stats_local().counter("p2p_msgs");
}

Request Runtime::p_irecv(Env& env, void* buf, int count, Dt dt, int src,
                         int tag, const Comm& comm) {
  auto& io = io_[static_cast<std::size_t>(env.world_rank())];
  const std::size_t max_bytes = static_cast<std::size_t>(count) * dt_size(dt);

  auto req = std::make_shared<RequestState>();
  req->buf = buf;
  req->max_bytes = max_bytes;
  req->src_world = (src == kAnySource) ? kAnySource : comm->world_rank(src);
  req->tag = tag;
  req->comm_id = comm->id();
  req->comm = comm.get();

  // Check the unexpected queue first (MPI matching order).
  for (auto it = io.unexpected.begin(); it != io.unexpected.end(); ++it) {
    if (!p2p_match(*req, *it)) continue;
    MMPI_REQUIRE(it->data.size() <= max_bytes,
                 "message truncation: recv buffer %zu < message %zu",
                 max_bytes, it->data.size());
    if (!it->data.empty()) std::memcpy(buf, it->data.data(), it->data.size());
    req->status.source = comm->rank_of_world(it->src_world);
    req->status.tag = it->tag;
    req->status.bytes = it->data.size();
    req->done = true;
    io.unexpected.erase(it);
    return req;
  }

  io.posted.push_back(req);
  return req;
}

Request Runtime::p_isend(Env& env, const void* buf, int count, Dt dt,
                         int dest, int tag, const Comm& comm) {
  // Eager buffered send: the payload is copied at injection, so the send
  // completes locally immediately.
  p_send(env, buf, count, dt, dest, tag, comm);
  auto req = std::make_shared<RequestState>();
  req->done = true;
  return req;
}

Status Runtime::p_wait(Env& env, const Request& req) {
  MMPI_REQUIRE(req != nullptr, "wait on null request");
  progress_wait(env, [&req]() { return req->done; });
  return req->status;
}

bool Runtime::p_test(Env& env, const Request& req) {
  MMPI_REQUIRE(req != nullptr, "test on null request");
  progress_poll(env);
  env.ctx().yield();  // allow same-time deliveries to land
  progress_poll(env);
  return req->done;
}

void Runtime::p_waitall(Env& env, Request* reqs, int n) {
  progress_wait(env, [reqs, n]() {
    for (int i = 0; i < n; ++i) {
      if (reqs[i] != nullptr && !reqs[i]->done) return false;
    }
    return true;
  });
}

Status Runtime::p_recv(Env& env, void* buf, int count, Dt dt, int src,
                       int tag, const Comm& comm) {
  Request req = p_irecv(env, buf, count, dt, src, tag, comm);
  return p_wait(env, req);
}

}  // namespace casper::mpi
