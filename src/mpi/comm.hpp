// Process groups and communicators.
//
// A Comm is a shared handle: all member ranks of a communicator hold the same
// CommImpl instance (the simulator is one address space), which also hosts
// the rendezvous state used to implement collectives deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace casper::mpi {

class WinImpl;

/// An ordered set of world ranks.
class Group {
 public:
  Group() = default;
  explicit Group(std::vector<int> world_ranks)
      : ranks_(std::move(world_ranks)) {}

  int size() const { return static_cast<int>(ranks_.size()); }
  int world_rank(int i) const { return ranks_[i]; }
  const std::vector<int>& ranks() const { return ranks_; }
  bool contains(int world_rank) const {
    for (int r : ranks_)
      if (r == world_rank) return true;
    return false;
  }

 private:
  std::vector<int> ranks_;
};

/// Shared communicator state. Ranks are identified inside a communicator by
/// their position in `members` (the "comm rank").
class CommImpl {
 public:
  CommImpl(int id, std::vector<int> members) : id_(id) {
    members_ = std::move(members);
    for (int i = 0; i < static_cast<int>(members_.size()); ++i) {
      w2r_[members_[i]] = i;
    }
  }

  int id() const { return id_; }
  int size() const { return static_cast<int>(members_.size()); }
  int world_rank(int comm_rank) const { return members_[comm_rank]; }
  const std::vector<int>& members() const { return members_; }

  /// Comm rank of a world rank, or -1 if not a member.
  int rank_of_world(int world_rank) const {
    auto it = w2r_.find(world_rank);
    return it == w2r_.end() ? -1 : it->second;
  }

  /// Rendezvous state for the collective currently in flight on this
  /// communicator. Exactly one collective can be in flight at a time (MPI
  /// requires collective calls to be ordered identically on all members).
  ///
  /// Sharded engines run members of one communicator on different worker
  /// threads: `mu` then guards arrival bookkeeping and the finalize callback,
  /// while `generation`/`release_time` are atomics because waiters poll them
  /// outside the lock (the wake predicate). Single-shard runs never lock.
  struct CollState {
    int arrived = 0;
    std::atomic<std::uint64_t> generation{0};
    sim::Time max_arrival = 0;
    std::atomic<sim::Time> release_time{0};
    std::mutex mu;
    /// One entry per arrived member: its buffers and two integer arguments.
    /// The last arriver (the "releaser") runs the collective's finalize
    /// callback over these entries — while every other member is still
    /// blocked inside the call, so all pointers are valid.
    struct Part {
      int world = -1;
      const void* src = nullptr;
      void* dst = nullptr;
      long long a = 0;
      long long b = 0;
    };
    std::vector<Part> parts;
  };
  CollState coll;

 private:
  int id_;
  std::vector<int> members_;
  std::unordered_map<int, int> w2r_;
};

using Comm = std::shared_ptr<CommImpl>;
using Win = std::shared_ptr<WinImpl>;

}  // namespace casper::mpi
