// Active messages: the software path of RMA operations, plus point-to-point
// message records.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/types.hpp"
#include "sim/pool.hpp"
#include "sim/time.hpp"

namespace casper::mpi {

class WinImpl;

/// RMA operation kinds carried by active messages.
enum class OpKind : std::uint8_t {
  Put,
  Get,
  Acc,          // accumulate
  GetAcc,       // get_accumulate (fetches old value, then applies op)
  Fao,          // fetch_and_op: single-element GetAcc
  Cas,          // compare_and_swap: single element
  LockReq,      // passive-target lock request
  LockRelease,  // passive-target unlock
};

/// A software-path operation delivered to a target rank's inbox (or handled
/// by that rank's progress agent). Executed target-side with a processing
/// cost; an acknowledgment (optionally carrying fetched data) returns to the
/// origin on completion.
struct AmOp {
  OpKind kind = OpKind::Put;
  std::uint64_t opid = 0;
  int origin_world = -1;
  int target_world = -1;
  WinImpl* win = nullptr;
  int origin_comm_rank = -1;
  int target_comm_rank = -1;
  /// Accounting coordinates: the (origin_comm_rank, ·) cell whose
  /// `outstanding` count the ack decrements. Fault forwarding may rewrite
  /// target_comm_rank to a successor ghost; the ack still settles against
  /// the cell the origin issued to. -1 = same as target_comm_rank.
  int acct_target_comm = -1;

  // data description (target side)
  std::size_t target_disp = 0;  // bytes (disp * disp_unit resolved at issue)
  int target_count = 0;
  Datatype target_dt;
  AccOp op = AccOp::Replace;

  // payload for Put/Acc/GetAcc/Fao/Cas (packed origin data), drawn from the
  // runtime's buffer pool. Cas: payload = [compare | new]; single elements.
  sim::PoolBuf payload;

  // origin-side result description for Get/GetAcc/Fao/Cas
  void* origin_result = nullptr;
  int origin_count = 0;
  Datatype origin_dt;

  // lock protocol
  LockType lock_type = LockType::Shared;

  sim::Time delivered = 0;
  /// Arrived while the target was busy outside the MPI runtime: it will be
  /// drained late and pays the in-application progress penalty.
  bool busy_arrival = false;
  /// The memory this op touches lives in a different NUMA domain than the
  /// processing entity (Casper: a ghost serving a remote-domain user's
  /// segment); processing pays the cross-domain memory penalty.
  bool cross_numa = false;
};

/// Origin-side description of an RMA operation after packing: everything
/// needed to inject it onto the wire. Ops issued before a (delayed) lock is
/// granted are queued in this form and injected when the grant arrives.
struct OpDesc {
  OpKind kind = OpKind::Put;
  AccOp op = AccOp::Replace;
  bool cross_numa = false;  ///< processing crosses a NUMA domain (see AmOp)
  sim::PoolBuf payload;     // packed origin data (Put/Acc/GetAcc/Fao);
                            // for Cas: [compare | desired]
  std::size_t tdisp_bytes = 0;
  int tcount = 0;
  Datatype tdt;
  void* origin_result = nullptr;  // Get/GetAcc/Fao/Cas destination
  int ocount = 0;
  Datatype odt;
};

/// A two-sided message in flight / queued unexpected.
struct P2pMsg {
  int src_world = -1;
  int tag = 0;
  int comm_id = -1;
  std::vector<std::byte> data;
};

}  // namespace casper::mpi
