// Basic MPI-3-shaped vocabulary types for the minimpi runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace casper::mpi {

/// Basic datatypes (the "predefined datatype" subset we model).
enum class Dt : std::uint8_t { Byte = 0, Int = 1, Double = 2 };

constexpr std::size_t dt_size(Dt d) {
  switch (d) {
    case Dt::Byte: return 1;
    case Dt::Int: return 4;
    case Dt::Double: return 8;
  }
  return 1;
}

/// Maximum size of an MPI basic datatype; the paper's segment-binding
/// alignment unit ("16 bytes for MPI_REAL").
inline constexpr std::size_t kMaxBasicDtSize = 16;

/// A derived datatype: `blocklen` consecutive basic elements repeated with a
/// `stride` (in elements). stride == blocklen describes contiguous data;
/// stride > blocklen describes an MPI_Type_vector-style strided layout, which
/// always takes the software (active-message) path on every profile.
struct Datatype {
  Dt base = Dt::Double;
  int blocklen = 1;
  int stride = 1;

  constexpr bool contiguous() const { return stride == blocklen; }
  constexpr std::size_t elem_size() const { return dt_size(base); }
};

constexpr Datatype contig(Dt base) { return Datatype{base, 1, 1}; }
constexpr Datatype vector_of(Dt base, int blocklen, int stride) {
  return Datatype{base, blocklen, stride};
}

/// Payload bytes moved by `count` blocks of `dt`.
constexpr std::size_t data_bytes(int count, const Datatype& dt) {
  return static_cast<std::size_t>(count) *
         static_cast<std::size_t>(dt.blocklen) * dt.elem_size();
}

/// Extent in the target buffer touched by `count` blocks of `dt` (first byte
/// to one past the last byte).
constexpr std::size_t span_bytes(int count, const Datatype& dt) {
  if (count <= 0) return 0;
  return (static_cast<std::size_t>(count - 1) *
              static_cast<std::size_t>(dt.stride) +
          static_cast<std::size_t>(dt.blocklen)) *
         dt.elem_size();
}

/// Accumulate / reduction operations.
enum class AccOp : std::uint8_t { Replace, Sum, Min, Max, NoOp };

/// Passive-target lock types.
enum class LockType : std::uint8_t { Shared = 1, Exclusive = 2 };

/// MPI_MODE_* assertions for epoch calls.
enum ModeAssert : unsigned {
  kModeNone = 0,
  kModeNoCheck = 1u << 0,
  kModeNoStore = 1u << 1,
  kModeNoPut = 1u << 2,
  kModeNoPrecede = 1u << 3,
  kModeNoSucceed = 1u << 4,
};

/// Wildcards for point-to-point matching.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Completion status of a receive.
struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// MPI_Info-style key/value hints.
class Info {
 public:
  Info() = default;
  void set(const std::string& k, const std::string& v) { kv_[k] = v; }
  std::optional<std::string> get(const std::string& k) const {
    auto it = kv_.find(k);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }
  const std::map<std::string, std::string>& all() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace casper::mpi
