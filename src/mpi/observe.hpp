// Passive observation hooks for RMA conformance checking.
//
// An RmaObserver registered with the Runtime sees five kinds of facts, all
// reported at the simulated instant they become true:
//   * window lifetime     — a window finished collective creation / was freed;
//   * operation issues    — a rank called an RMA communication routine, seen
//                           in PROGRAM ORDER at the Env call surface, before
//                           any interception layer redirects it (so Casper's
//                           routing can neither mask nor fabricate an access);
//   * operation commits   — a software-path or self-executed RMA operation
//                           committed its target-memory write (the write phase
//                           of the read-at-start / write-at-end model), i.e.
//                           the moment real window bytes changed;
//   * epoch boundaries    — a rank opened an access epoch (fence round,
//                           win_start, lock, lock_all), reported on the
//                           *user-facing* window even when the layer
//                           translates the epoch internally;
//   * synchronization     — a rank completed a synchronization call (fence,
//                           unlock, flush, complete/wait) after which MPI
//                           guarantees its operations are visible.
//
// Observers are strictly passive: they may read simulated memory but must not
// issue MPI calls, advance time, or touch engine state. The runtime invokes
// them synchronously while holding the token, so the simulation is quiescent
// at every callback. With no observers attached the whole machinery costs one
// emptiness test per commit; the issue/epoch/local-access hooks additionally
// fold away entirely under -DCASPER_RACE=0 (same two-level gating as tracing).
#pragma once

#include <cstddef>

#include "mpi/am.hpp"
#include "sim/time.hpp"

#ifndef CASPER_RACE
#define CASPER_RACE 1
#endif

namespace casper::mpi {

class WinImpl;

/// Compile-time gate for the access-recording hooks (op issue, epoch begin,
/// local load/store). -DCASPER_RACE=0 turns every such site into `if (false)`.
inline constexpr bool kRaceObsCompiled = CASPER_RACE != 0;

/// Which synchronization primitive completed (from the caller's view; the
/// Casper layer reports the *user-facing* call, not its internal translation).
enum class SyncKind {
  Fence,
  Unlock,
  UnlockAll,
  Flush,
  FlushAll,
  Complete,
  Wait,
};

inline const char* to_string(SyncKind k) {
  switch (k) {
    case SyncKind::Fence: return "fence";
    case SyncKind::Unlock: return "unlock";
    case SyncKind::UnlockAll: return "unlock_all";
    case SyncKind::Flush: return "flush";
    case SyncKind::FlushAll: return "flush_all";
    case SyncKind::Complete: return "complete";
    case SyncKind::Wait: return "wait";
  }
  return "?";
}

/// Which access-epoch primitive opened (from the caller's view; the Casper
/// layer reports the *user-facing* call on the user window, not its internal
/// translation).
enum class EpochEv {
  Fence,     ///< fence round opened (collective; closed by the next fence)
  Start,     ///< PSCW access epoch (win_start; closed by win_complete)
  Lock,      ///< per-target shared lock epoch (closed by win_unlock)
  LockExcl,  ///< per-target exclusive lock epoch (closed by win_unlock)
  LockAll,   ///< lock_all epoch (closed by win_unlock_all)
};

inline const char* to_string(EpochEv k) {
  switch (k) {
    case EpochEv::Fence: return "fence";
    case EpochEv::Start: return "start";
    case EpochEv::Lock: return "lock";
    case EpochEv::LockExcl: return "lock_excl";
    case EpochEv::LockAll: return "lock_all";
  }
  return "?";
}

class RmaObserver {
 public:
  virtual ~RmaObserver() = default;

  /// A window finished collective creation; every rank's segments are final.
  virtual void on_win_register(WinImpl& win) = 0;

  /// A window is about to be freed (memory may be reused afterwards).
  virtual void on_win_free(WinImpl& win) = 0;

  /// Operation `op` committed against target memory at time `t`, processed
  /// by world rank `entity` (the target itself when polling / self-executing,
  /// or the serving agent / ghost).
  virtual void on_op_commit(const AmOp& op, sim::Time t, int entity) = 0;

  /// World rank `world_rank` completed synchronization `kind` on `win`.
  /// `target` is the comm rank the sync addressed (Unlock, Flush) or -1 for
  /// whole-window synchronizations.
  virtual void on_sync(WinImpl& win, int world_rank, SyncKind kind, int target,
                       sim::Time t) = 0;

  // --- optional access-recording hooks (default no-op; CASPER_RACE-gated) ---

  /// Rank `op.origin_world` issued `op` at time `t`, in program order, at the
  /// Env call surface — BEFORE any layer redirection. `op` is a synthesized
  /// descriptor: kind/ranks/window/target-range fields are valid, payload and
  /// opid are not.
  virtual void on_op_issue(const AmOp& op, sim::Time t) {
    (void)op;
    (void)t;
  }

  /// World rank `world_rank` opened access epoch `kind` on `win` at `t`.
  /// `target` is the locked comm rank for Lock/LockExcl, -1 otherwise.
  virtual void on_epoch_begin(WinImpl& win, int world_rank, EpochEv kind,
                              int target, sim::Time t) {
    (void)win;
    (void)world_rank;
    (void)kind;
    (void)target;
    (void)t;
  }

  /// Comm rank `comm_rank` of win->comm() load/stored `len` bytes of its OWN
  /// window segment at byte offset `offset` (Env::local_load / local_store).
  virtual void on_local_access(WinImpl& win, int comm_rank, std::size_t offset,
                               std::size_t len, bool is_store, sim::Time t) {
    (void)win;
    (void)comm_rank;
    (void)offset;
    (void)len;
    (void)is_store;
    (void)t;
  }

  /// True when every callback is internally synchronized: the observer may be
  /// attached to a sharded run, where worker threads invoke it concurrently.
  /// Observers that assume a single-threaded schedule (the shadow oracle)
  /// keep the default.
  virtual bool concurrent_safe() const { return false; }
};

}  // namespace casper::mpi
