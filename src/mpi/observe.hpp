// Passive observation hooks for RMA conformance checking.
//
// An RmaObserver registered with the Runtime sees three kinds of facts, all
// reported at the simulated instant they become true:
//   * window lifetime     — a window finished collective creation / was freed;
//   * operation commits   — a software-path or self-executed RMA operation
//                           committed its target-memory write (the write phase
//                           of the read-at-start / write-at-end model), i.e.
//                           the moment real window bytes changed;
//   * synchronization     — a rank completed a synchronization call (fence,
//                           unlock, flush, complete/wait) after which MPI
//                           guarantees its operations are visible.
//
// Observers are strictly passive: they may read simulated memory but must not
// issue MPI calls, advance time, or touch engine state. The runtime invokes
// them synchronously while holding the token, so the simulation is quiescent
// at every callback. A null observer costs one pointer test per commit.
#pragma once

#include "mpi/am.hpp"
#include "sim/time.hpp"

namespace casper::mpi {

class WinImpl;

/// Which synchronization primitive completed (from the caller's view; the
/// Casper layer reports the *user-facing* call, not its internal translation).
enum class SyncKind {
  Fence,
  Unlock,
  UnlockAll,
  Flush,
  FlushAll,
  Complete,
  Wait,
};

inline const char* to_string(SyncKind k) {
  switch (k) {
    case SyncKind::Fence: return "fence";
    case SyncKind::Unlock: return "unlock";
    case SyncKind::UnlockAll: return "unlock_all";
    case SyncKind::Flush: return "flush";
    case SyncKind::FlushAll: return "flush_all";
    case SyncKind::Complete: return "complete";
    case SyncKind::Wait: return "wait";
  }
  return "?";
}

class RmaObserver {
 public:
  virtual ~RmaObserver() = default;

  /// A window finished collective creation; every rank's segments are final.
  virtual void on_win_register(WinImpl& win) = 0;

  /// A window is about to be freed (memory may be reused afterwards).
  virtual void on_win_free(WinImpl& win) = 0;

  /// Operation `op` committed against target memory at time `t`, processed
  /// by world rank `entity` (the target itself when polling / self-executing,
  /// or the serving agent / ghost).
  virtual void on_op_commit(const AmOp& op, sim::Time t, int entity) = 0;

  /// World rank `world_rank` completed synchronization `kind` on `win`.
  virtual void on_sync(WinImpl& win, int world_rank, SyncKind kind,
                       sim::Time t) = 0;
};

}  // namespace casper::mpi
