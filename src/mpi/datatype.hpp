// Pack/unpack and element-wise reduction for (count, Datatype) descriptors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpi/types.hpp"
#include "sim/pool.hpp"

namespace casper::mpi {

/// Pack `count` blocks of `dt` starting at `src` into a contiguous buffer.
std::vector<std::byte> pack(const void* src, int count, const Datatype& dt);

/// Pack into a pooled buffer (resized to fit): the allocation-free variant
/// used on the RMA hot path.
void pack_into(sim::PoolBuf& out, const void* src, int count,
               const Datatype& dt);

/// Unpack a contiguous buffer into `count` blocks of `dt` at `dst`.
void unpack(void* dst, int count, const Datatype& dt,
            std::span<const std::byte> packed);

/// Apply `op` element-wise: dst[i] = op(dst[i], src[i]) over `n` basic
/// elements of type `base` laid out contiguously. Replace overwrites, NoOp
/// leaves dst untouched.
void reduce_contig(void* dst, const void* src, std::size_t n_elems, Dt base,
                   AccOp op);

/// Apply `op` from a packed contiguous source into a (count, dt)-described
/// destination region (element-wise through the strided layout).
void reduce_into(void* dst, int count, const Datatype& dt,
                 std::span<const std::byte> packed, AccOp op);

}  // namespace casper::mpi
