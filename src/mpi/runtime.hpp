// The minimpi runtime: an MPI-3-shaped communication library running on the
// discrete-event cluster simulator.
//
// Semantics implemented (the subset Casper's design depends on):
//  * communicators, groups, split/dup; two-sided send/recv with MPI matching;
//    synchronizing collectives with log(p) cost model;
//  * RMA windows (allocate / allocate-shared / create), all four epoch types,
//    flush/flush_all/flush_local, win_sync;
//  * put/get/accumulate/get_accumulate/fetch_and_op/compare_and_swap with
//    contiguous and strided (vector) datatypes;
//  * a target-side lock manager with *delayed lock acquisition* (requests are
//    sent at the first operation, not at MPI_Win_lock — the behaviour the
//    paper's Section III.B builds on);
//  * the software active-message path: operations that the machine profile
//    does not execute in hardware complete only when the target rank enters
//    the MPI stack — unless a progress agent (background thread, interrupt
//    handler, or a Casper ghost process) serves them;
//  * atomicity-violation detection: concurrent software read-modify-writes of
//    overlapping target bytes by different processing entities are counted
//    (the corruption mode Casper's static binding exists to prevent).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/am.hpp"
#include "mpi/comm.hpp"
#include "mpi/env.hpp"
#include "mpi/layer.hpp"
#include "mpi/observe.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "mpi/win.hpp"
#include "net/topology.hpp"
#include "obs/record.hpp"
#include "progress/progress.hpp"
#include "sim/engine.hpp"
#include "sim/pool.hpp"
#include "sim/ring.hpp"

namespace casper::fault {
struct FaultPlan;
}

namespace casper::mpi {

/// Top-level configuration of one simulated run.
struct RunConfig {
  net::Machine machine;
  std::uint64_t seed = 12345;
  /// Baseline async-progress model applied to every rank (Casper runs use
  /// Kind::None: ghost processes make the progress instead).
  progress::Config progress;
  /// Usable stack bytes of each simulated rank's fiber (page-rounded, with a
  /// PROT_NONE guard page below — see sim::Fiber). Stacks are lazily-faulted
  /// private mappings, so large rank counts cost address space, not memory.
  std::size_t stack_bytes = 256 * 1024;
  /// Forwarded to sim::Engine::Options::perturb_seed: non-zero explores a
  /// seeded alternative (but reproducible) tie-break order for equal-time
  /// scheduling decisions. The conformance fuzzer sweeps this to enumerate
  /// interleavings of one program.
  std::uint64_t perturb_seed = 0;
  /// Attach the observability layer (virtual-time trace + metrics; see
  /// src/obs/). Null — the default — keeps every instrumentation site down
  /// to one predictable branch; builds with -DCASPER_TRACE=0 remove even
  /// that. The recorder must outlive the runtime.
  obs::Recorder* recorder = nullptr;
  /// Fault-injection plan (src/fault/plan.hpp). Null — the default — keeps
  /// the whole reliability machinery off: no sequence/ack/retry state, no
  /// extra events, bit-identical virtual time (the same zero-cost-when-off
  /// contract as `recorder`). The plan must outlive the runtime.
  const fault::FaultPlan* fault = nullptr;
  /// Engine shards (worker threads). 1 — the default — is the classic
  /// single-threaded engine, bit-exact with every previous release. Values
  /// > 1 partition ranks by node across shards synchronized by conservative
  /// lookahead (= the inter-node network latency, the smallest cross-node
  /// delay any event can have); clamped to the node count. Sharded runs
  /// reject perturb_seed, fault plans, and RmaObservers that are not
  /// concurrent_safe() (worker threads invoke observer callbacks in
  /// parallel; only internally synchronized observers such as the race
  /// analyzer may attach).
  int shards = 1;
};

/// Factory for the interception layer of a run (PMPI model); receives the
/// runtime so layers can pre-compute global state.
class Runtime;
using LayerFactory = std::function<std::shared_ptr<Layer>(Runtime&)>;

class Runtime {
 public:
  /// `layer` defaults to the plain Pmpi layer when null.
  Runtime(RunConfig cfg, std::function<void(Env&)> user_main,
          LayerFactory layer = nullptr);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute the simulation to completion.
  void run();

  sim::Engine& engine() { return *engine_; }
  const net::Profile& profile() const { return cfg_.machine.profile; }
  const net::Topology& topo() const { return cfg_.machine.topo; }
  const RunConfig& config() const { return cfg_; }
  sim::Stats& stats() { return engine_->stats(); }
  Layer& layer() { return *layer_; }
  Comm world() const { return world_; }

  /// Thread-multiple overhead charged on every MPI call when a background
  /// progress thread is configured.
  void call_prologue(Env& env);

  // ------------------------------------------------------------------------
  // PMPI entry points (the "name-shifted" internal implementations).
  // ------------------------------------------------------------------------
  void p_rank_main(Env& env, const std::function<void(Env&)>& user_main);
  Comm p_comm_split(Env& env, const Comm& comm, int color, int key);
  Comm p_comm_dup(Env& env, const Comm& comm);

  void p_send(Env& env, const void* buf, int count, Dt dt, int dest, int tag,
              const Comm& comm);
  Status p_recv(Env& env, void* buf, int count, Dt dt, int src, int tag,
                const Comm& comm);
  Request p_isend(Env& env, const void* buf, int count, Dt dt, int dest,
                  int tag, const Comm& comm);
  Request p_irecv(Env& env, void* buf, int count, Dt dt, int src, int tag,
                  const Comm& comm);
  Status p_wait(Env& env, const Request& req);
  bool p_test(Env& env, const Request& req);
  void p_waitall(Env& env, Request* reqs, int n);

  void p_barrier(Env& env, const Comm& comm);
  void p_bcast(Env& env, void* buf, int count, Dt dt, int root,
               const Comm& comm);
  void p_reduce(Env& env, const void* sendbuf, void* recvbuf, int count,
                Dt dt, AccOp op, int root, const Comm& comm);
  void p_allreduce(Env& env, const void* sendbuf, void* recvbuf, int count,
                   Dt dt, AccOp op, const Comm& comm);
  void p_allgather(Env& env, const void* sendbuf, int count, Dt dt,
                   void* recvbuf, const Comm& comm);
  void p_gather(Env& env, const void* sendbuf, int count, Dt dt,
                void* recvbuf, int root, const Comm& comm);
  void p_scatter(Env& env, const void* sendbuf, int count, Dt dt,
                 void* recvbuf, int root, const Comm& comm);
  void p_alltoall(Env& env, const void* sendbuf, int count, Dt dt,
                  void* recvbuf, const Comm& comm);

  Win p_win_allocate(Env& env, std::size_t bytes, std::size_t disp_unit,
                     const Info& info, const Comm& comm, void** base,
                     bool shared);
  Win p_win_create(Env& env, void* base, std::size_t bytes,
                   std::size_t disp_unit, const Info& info, const Comm& comm);
  void p_win_free(Env& env, Win& win);
  Segment p_shared_query(Env& env, const Win& win, int comm_rank);

  /// Unified RMA communication entry; `target` is a comm rank of win->comm().
  struct RmaArgs {
    OpKind kind = OpKind::Put;
    AccOp op = AccOp::Replace;
    const void* origin_addr = nullptr;
    const void* origin_addr2 = nullptr;  // compare_and_swap "desired" operand
    int ocount = 0;
    Datatype odt;
    void* result_addr = nullptr;  // Get/GetAcc/Fao/Cas destination
    int rcount = 0;
    Datatype rdt;
    int target = -1;
    std::size_t tdisp = 0;  // in units of the target's disp_unit
    int tcount = 0;
    Datatype tdt;
  };
  void p_rma(Env& env, const RmaArgs& a, const Win& win);

  void p_win_fence(Env& env, unsigned mode_assert, const Win& win);
  void p_win_post(Env& env, const Group& group, unsigned mode_assert,
                  const Win& win);
  void p_win_start(Env& env, const Group& group, unsigned mode_assert,
                   const Win& win);
  void p_win_complete(Env& env, const Win& win);
  void p_win_wait(Env& env, const Win& win);
  void p_win_lock(Env& env, LockType type, int target, unsigned mode_assert,
                  const Win& win);
  void p_win_unlock(Env& env, int target, const Win& win);
  void p_win_lock_all(Env& env, unsigned mode_assert, const Win& win);
  void p_win_unlock_all(Env& env, const Win& win);
  void p_win_flush(Env& env, int target, const Win& win);
  void p_win_flush_all(Env& env, const Win& win);
  void p_win_flush_local(Env& env, int target, const Win& win);
  void p_win_flush_local_all(Env& env, const Win& win);
  void p_win_sync(Env& env, const Win& win);

  // ------------------------------------------------------------------------
  // Progress service (public: tests and the Casper ghost loop use these).
  // ------------------------------------------------------------------------
  /// Process every software operation currently queued for this rank.
  void progress_poll(Env& env);
  /// Poll + block until `pred()` holds. The canonical "inside the MPI
  /// runtime" wait: incoming software operations are serviced while waiting.
  void progress_wait(Env& env, const std::function<bool()>& pred);

  /// Software operations waiting for this rank's progress (diagnostics).
  std::size_t pending_am_count(int world_rank) const {
    return io_[static_cast<std::size_t>(world_rank)].inbox.size();
  }

  /// Hint from the interception layer that the NEXT RMA operation issued by
  /// `world_rank` touches memory in a different NUMA domain than its
  /// processing entity (Casper: ghost serving a remote-domain segment).
  /// Consumed by the next p_rma call from that rank.
  void set_next_op_cross_numa(int world_rank, bool cross) {
    io_[static_cast<std::size_t>(world_rank)].next_op_cross_numa = cross;
  }

  /// Mark a rank as a dedicated progress rank (a Casper ghost): it serves
  /// software operations at the base cost instead of the in-application
  /// drain cost (net::Profile::busy_factor). Called by the Casper layer.
  void set_dedicated_progress(int world_rank, bool dedicated) {
    dedicated_[static_cast<std::size_t>(world_rank)] = dedicated;
  }
  bool dedicated_progress(int world_rank) const {
    return dedicated_[static_cast<std::size_t>(world_rank)];
  }

  // ------------------------------------------------------------------------
  // Conformance observation (see mpi/observe.hpp). Observers outlive the run
  // and fan out: the shadow oracle and the race analyzer watch the same op
  // stream. Layers report user-facing sync/epoch events through observe_*.
  // ------------------------------------------------------------------------
  void add_observer(RmaObserver* obs) {
    if (obs) observers_.push_back(obs);
  }
  bool has_observers() const { return !observers_.empty(); }
  const std::vector<RmaObserver*>& observers() const { return observers_; }
  void observe_commit(const AmOp& op, sim::Time t, int entity) {
    for (RmaObserver* o : observers_) o->on_op_commit(op, t, entity);
  }
  void observe_sync(WinImpl& win, int world_rank, SyncKind kind, int target,
                    sim::Time t);
  /// Pre-redirection program-order access report (Env call surface). The
  /// issue/epoch/local hooks follow the tracing gate discipline: a
  /// compile-time fold (-DCASPER_RACE=0) plus one emptiness test at runtime.
  void observe_issue(const AmOp& op, sim::Time t) {
    if (!kRaceObsCompiled || observers_.empty()) return;
    for (RmaObserver* o : observers_) o->on_op_issue(op, t);
  }
  void observe_epoch_begin(WinImpl& win, int world_rank, EpochEv kind,
                           int target, sim::Time t) {
    if (!kRaceObsCompiled || observers_.empty()) return;
    for (RmaObserver* o : observers_) {
      o->on_epoch_begin(win, world_rank, kind, target, t);
    }
  }
  void observe_local(WinImpl& win, int comm_rank, std::size_t offset,
                     std::size_t len, bool is_store, sim::Time t) {
    if (!kRaceObsCompiled || observers_.empty()) return;
    for (RmaObserver* o : observers_) {
      o->on_local_access(win, comm_rank, offset, len, is_store, t);
    }
  }
  void observe_win_register(WinImpl& win) {
    for (RmaObserver* o : observers_) o->on_win_register(win);
  }
  void observe_win_free(WinImpl& win) {
    for (RmaObserver* o : observers_) o->on_win_free(win);
  }

  /// Observability recorder from RunConfig (null when not attached). Sites
  /// must gate on obs::on(recorder()).
  obs::Recorder* recorder() const { return cfg_.recorder; }

  /// The runtime's transient-buffer pool (payloads, staging, acks). Layers
  /// bind their scratch PoolBufs here so the whole RMA path shares one
  /// recycled working set.
  sim::BytePool& buffer_pool() { return pool_; }

  // ------------------------------------------------------------------------
  // Fault injection & recovery (active only when RunConfig::fault is set).
  // ------------------------------------------------------------------------
  /// True when a FaultPlan is installed and active.
  bool faults_on() const { return fs_ != nullptr; }
  /// A killed rank: it no longer serves its inbox; deliveries addressed to
  /// it are completed at delivery time by the simulated NIC/memory system
  /// (in-flight one-sided data is not lost when the serving process dies).
  bool rank_dead(int world_rank) const;
  /// Layer hook: invoked (in event context — state mutation only, no MPI
  /// calls) when a ghost kill is *detected*, one heartbeat period after the
  /// kill instant. Receives (world_rank, detect_time).
  void set_death_handler(std::function<void(int, sim::Time)> fn);
  /// Layer hook: forwarding target for a rank that may die. AMs addressed to
  /// a dead rank are rewritten to its (transitively live) successor so one
  /// live entity keeps serializing read-modify-writes on the node's memory;
  /// -1 (the default) completes deliveries instantly at the NIC instead.
  void set_rank_successor(int world_rank, int successor);

 private:
  struct RankIo {
    RankIo() = default;
    RankIo(RankIo&&) = default;
    RankIo& operator=(RankIo&&) = default;
    RankIo(const RankIo&) = delete;  // inbox ops are move-only
    RankIo& operator=(const RankIo&) = delete;

    sim::RingQueue<AmOp> inbox;    // software RMA ops awaiting progress
    std::deque<P2pMsg> unexpected; // unmatched arrived messages
    std::vector<Request> posted;   // pending receives, in post order
    sim::Time agent_busy_until = 0;  // progress-agent serialization point
    bool in_mpi = false;  // inside a progress-making MPI wait right now
    bool next_op_cross_numa = false;  // layer hint for the next RMA op
  };


  // --- collectives ---------------------------------------------------------
  /// Generic synchronizing collective: every member contributes
  /// (src, dst, a, b); the last arriver runs `finalize` (with all parts
  /// available), computes the release time from `wire_bytes`, and wakes
  /// everyone. Returns after the release time.
  void coll_run(Env& env, const Comm& comm, const void* src, void* dst,
                long long a, long long b, std::size_t wire_bytes,
                const std::function<void(CommImpl&)>& finalize);

  // --- p2p ----------------------------------------------------------------
  void deliver_p2p(int dst_world, P2pMsg&& msg, sim::Time t_del);
  static bool p2p_match(const RequestState& r, const P2pMsg& m);

  /// Schedule an engine event (thin wrapper over the engine).
  void post_event(sim::Time t, sim::EventFn cb);
  /// Schedule an engine event homed on `home_world`'s shard: the event runs
  /// on the worker thread that owns that rank, so it may touch the rank's
  /// io_/window state without locks. Equal to the plain overload when
  /// unsharded; cross-shard posts require t >= the posting shard's window
  /// end, which wire latencies guarantee (cross-shard implies cross-node,
  /// and every cross-node delay >= net_latency >= lookahead).
  void post_event(sim::Time t, int home_world, sim::EventFn cb);

  // --- shard-aware bookkeeping ---------------------------------------------
  /// Next RMA operation id. Unsharded: the classic global sequence (golden
  /// traces are byte-identical). Sharded: per-shard sequences tagged with the
  /// shard id in the high bits — unique without cross-thread coordination.
  std::uint64_t make_opid();
  /// Communicator / window id allocation and window registration, serialized
  /// under a mutex when sharded (disjoint-comm collectives can finalize
  /// concurrently). Ids never feed virtual time, so the host-order
  /// nondeterminism of concurrent allocation is observationally benign.
  int alloc_comm_id();
  int alloc_win_id();
  void register_win(const Win& win);
  /// Shrink the engine lookahead so a shard-spanning communicator's
  /// collective release (ceil_log2(p) * barrier_stage after the last
  /// arrival) can never land inside the posting shard's current window.
  void shard_clamp_for_members(const std::vector<int>& members);

  // --- RMA internals -------------------------------------------------------
  sim::Time wire_latency(int a_world, int b_world, std::size_t bytes) const;
  bool is_hw_op(const OpDesc& d) const;
  /// Target-side software processing cost of an op.
  sim::Time am_cost(const AmOp& op) const;
  /// Schedule wire transfer + target-side execution of an op. The origin has
  /// already paid its injection overhead (or the op comes from the delayed
  /// lock-grant path). Increments outstanding.
  void inject_op(WinImpl& win, int origin_comm, int target_comm, OpDesc&& d,
                 sim::Time t_issue);
  /// Route a delivered software op by the target's progress model.
  void deliver_am(AmOp&& op, sim::Time t_del);
  /// Agent-driven (thread / interrupt) processing of one op.
  void agent_process(AmOp&& op, sim::Time t_del);
  /// Rank-driven (poll) processing of one op; runs on the target's thread.
  void poller_process(Env& env, AmOp& op);
  /// Target-memory read phase at processing start; returns data the write
  /// phase commits at processing end (the read-at-start / write-at-end model
  /// that exposes lost updates under concurrent unsynchronized processing).
  /// Used only by the poller path, where a fiber yield separates the phases.
  sim::PoolBuf am_read_phase(const AmOp& op);
  /// Commit phase: writes target memory, records the access for atomicity-
  /// violation detection, and schedules the acknowledgment.
  void am_write_phase(const AmOp& op, sim::PoolBuf&& staged, sim::Time t0,
                      sim::Time t1, int entity);
  /// Fused read+commit for paths where both phases run at the same host
  /// moment (NIC hardware execution, agent end-events): byte-identical to
  /// am_read_phase + am_write_phase but reduces in place, with no staging
  /// copy of the target region.
  void am_commit(const AmOp& op, sim::Time t0, sim::Time t1, int entity);
  /// Execute a self-targeted op synchronously (loads/stores, not delayed).
  void exec_self(Env& env, const AmOp& op);
  void record_access(std::uintptr_t lo, std::uintptr_t hi, sim::Time t0,
                     sim::Time t1, int entity, bool is_write);
  void schedule_ack(const AmOp& op, sim::Time t_done, sim::PoolBuf&& data);

  // --- lock protocol -------------------------------------------------------
  /// Ensure the delayed lock request for (win, target) has been sent.
  // --- fault machinery (runtime_core.cpp; all paths require fs_) -----------
  /// Reliable-transport state; allocated in the constructor iff a FaultPlan
  /// is installed. Defined in runtime_core.cpp.
  struct FaultState;
  /// Post kill / stall / heartbeat-detection events (called before run()).
  void fault_setup();
  /// First transmission of a faultable data op: records the retransmission
  /// entry and runs the verdict-driven wire step.
  void fault_send(AmOp&& op, sim::Time t_send);
  /// One wire attempt (initial or retransmission) of a pending op.
  void fault_transmit(std::uint64_t opid, sim::Time t_send);
  /// Schedule delivery of one (cloned) copy at t_del, honoring stalls and
  /// dead targets.
  void fault_deliver_copy(const AmOp& op, sim::Time t_del);
  /// Target-side dedup: true = first execution, proceed; false = the op
  /// already executed — its cached ack was re-sent, skip execution.
  bool fault_should_execute(AmOp& op, sim::Time t_now);
  /// Origin-side completion gate: true = first ack for this op, complete it;
  /// false = duplicate ack, ignore.
  bool fault_complete(std::uint64_t opid);
  /// Serve an AM addressed to a dead rank at delivery time (event context):
  /// lock traffic goes straight to the lock manager, data ops commit via the
  /// NIC/memory path.
  void fault_serve_dead(AmOp&& op, sim::Time t);
  /// Mark a rank dead and drain its queued inbox through fault_serve_dead.
  void fault_kill_rank(int world_rank, sim::Time t);
  /// Deep copy of an op (payload cloned from the pool) for retransmission.
  AmOp fault_clone(const AmOp& op);

  void send_lock_request(Env& env, WinImpl& win, int target);
  /// Target-side lock-manager request processing (grant or queue) at time t.
  void lockmgr_request(WinImpl& win, int target, int origin, LockType type,
                       sim::Time t);
  /// Target-side release processing; grants pending compatible requests and
  /// acknowledges the releaser.
  void lockmgr_release(WinImpl& win, int target, int origin, LockType type,
                       sim::Time t, bool notify_origin);
  /// Origin-side grant arrival: mark granted, inject queued ops, wake origin.
  void on_lock_granted(WinImpl& win, int origin, int target, sim::Time t);
  void flush_target(Env& env, int target, WinImpl& win, bool force_lock);

  /// Pointers into per-shard stats for per-op counters, resolved once at
  /// construction: the hot path must not pay a map lookup per operation.
  /// One instance per shard (index 0 when unsharded) so increments from
  /// different worker threads never share a cache line or race.
  struct HotStats {
    std::uint64_t* sw_ops = nullptr;
    std::uint64_t* hw_ops = nullptr;
    std::uint64_t* cross_numa_ops = nullptr;
    std::uint64_t* am_busy_arrival = nullptr;
    std::uint64_t* am_prompt = nullptr;
    std::uint64_t* interrupts = nullptr;
  };
  HotStats& hot() {
    return hot_[static_cast<std::size_t>(sim::Engine::current_shard())];
  }

  RunConfig cfg_;
  std::function<void(Env&)> user_main_;
  /// Transient-buffer pool. Declared before engine_ and io_ so it outlives
  /// both: pending event closures and queued inbox ops own PoolBufs that
  /// release into this pool on destruction.
  sim::BytePool pool_;
  std::vector<HotStats> hot_;
  std::vector<bool> dedicated_;
  std::unique_ptr<sim::Engine> engine_;
  std::shared_ptr<Layer> layer_;
  Comm world_;
  std::vector<RankIo> io_;
  /// Globally ordered in-flight software RMA accesses (absolute byte
  /// ranges): overlapping windows alias memory, so violation detection must
  /// work on addresses, not window coordinates. One list per shard: ranks of
  /// one node live on one shard, and window memory belongs to a node, so
  /// overlapping accesses always meet in the same shard's list.
  std::vector<std::vector<InflightOp>> inflight_;
  /// All windows ever created (weak): used for deadlock diagnostics.
  std::vector<std::weak_ptr<WinImpl>> win_registry_;
  void dump_comm_state() const;
  int next_comm_id_ = 1;
  int next_win_id_ = 1;
  std::uint64_t next_opid_ = 1;
  /// Per-shard opid sequences (sharded runs only; see make_opid).
  std::vector<std::uint64_t> opid_seq_;
  /// Guards comm/win id allocation + win_registry_ when sharded.
  std::mutex registry_mu_;
  std::vector<RmaObserver*> observers_;
  /// Null unless RunConfig::fault is installed (the zero-cost-off gate).
  std::unique_ptr<FaultState> fs_;
};

/// Convenience: build a runtime and run `user_main` on every rank.
void exec(RunConfig cfg, std::function<void(Env&)> user_main,
          LayerFactory layer = nullptr);

}  // namespace casper::mpi
