// Runtime core: construction, progress engine, the software active-message
// path (poll / thread-agent / interrupt-agent), the lock manager with delayed
// acquisition, and atomicity-violation detection.
#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "fault/plan.hpp"
#include "mpi/check.hpp"
#include "mpi/datatype.hpp"
#include "mpi/pmpi.hpp"
#include "mpi/runtime.hpp"

namespace casper::mpi {

using sim::Time;

namespace {
/// Byte address of a window segment position.
std::byte* seg_addr(const WinImpl& win, int comm_rank, std::size_t disp_bytes) {
  return win.segs[static_cast<std::size_t>(comm_rank)].base + disp_bytes;
}

bool faultable_kind(OpKind k) {
  return k != OpKind::LockReq && k != OpKind::LockRelease;
}
}  // namespace

/// Reliable-transport + process-fault state. Allocated only when a FaultPlan
/// is installed: an unfaulted run never touches (or pays for) any of this.
struct Runtime::FaultState {
  /// Origin-side retransmission record: the op is kept (payload and all)
  /// until the first ack arrives; the timeout event retransmits a clone.
  struct Retrans {
    AmOp op;
    std::uint32_t attempt = 0;
  };
  std::unordered_map<std::uint64_t, Retrans> pending;

  /// Target-side dedup window: an entry exists from the moment an op is
  /// claimed for execution. Once executed, the ack payload is cached so a
  /// redelivery (late duplicate or retransmission racing the ack) re-acks
  /// idempotently WITHOUT re-executing — the redelivery of a fetch-and-op
  /// must return the original fetched value, not re-apply the op.
  struct Served {
    bool have_ack = false;
    sim::PoolBuf ack;
    int entity = 0;                 ///< entity that executed the op
    std::uint32_t ack_attempt = 0;  ///< ack-direction verdict stream cursor
  };
  std::unordered_map<std::uint64_t, Served> served;
  std::deque<std::uint64_t> served_fifo;  // bounded-window eviction order

  /// Origin-side set of completed (first-acked) opids, to ignore duplicate
  /// acks. Bounded like the dedup window.
  std::unordered_set<std::uint64_t> completed;
  std::deque<std::uint64_t> completed_fifo;

  static constexpr std::size_t kWindow = std::size_t{1} << 16;

  std::vector<char> dead;      // by world rank
  std::vector<int> successor;  // by world rank: forwarding target, -1 = none
  std::function<void(int, sim::Time)> death_handler;

  Time rto0 = 0;
  Time rto_for(std::uint32_t attempt) const {
    const std::uint32_t shift = attempt > 10 ? 10u : attempt;
    return rto0 << shift;  // exponential backoff, capped at 1024x
  }

  // Counter pointers resolved once (see HotStats): the faulted path is not
  // hot, but verdicts fire per transmission and should not pay map lookups.
  std::uint64_t* c_drops = nullptr;
  std::uint64_t* c_dups = nullptr;
  std::uint64_t* c_delays = nullptr;
  std::uint64_t* c_ack_drops = nullptr;
  std::uint64_t* c_retries = nullptr;
  std::uint64_t* c_dedup_hits = nullptr;
  std::uint64_t* c_forwards = nullptr;
  std::uint64_t* c_dead_serves = nullptr;
  std::uint64_t* c_kills = nullptr;
};

Runtime::Runtime(RunConfig cfg, std::function<void(Env&)> user_main,
                 LayerFactory layer)
    : cfg_(std::move(cfg)), user_main_(std::move(user_main)) {
  cfg_.machine.topo.validate();
  const int n = cfg_.machine.topo.nranks();
  io_.resize(static_cast<std::size_t>(n));
  dedicated_.assign(static_cast<std::size_t>(n), false);

  std::vector<int> all(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) all[static_cast<std::size_t>(r)] = r;
  world_ = std::make_shared<CommImpl>(0, std::move(all));

  sim::Engine::Options eo;
  eo.nranks = n;
  eo.seed = cfg_.seed;
  eo.stack_bytes = cfg_.stack_bytes;
  eo.perturb_seed = cfg_.perturb_seed;
  // Sharding: partition ranks by node (never split a node across shards —
  // ghost/user traffic, shared node buffers and the per-rank io_ state then
  // stay shard-local), with conservative lookahead = the inter-node latency:
  // no cross-node event can precede it, so cross-shard posts always land at
  // or beyond the receiving shard's window end.
  const int nnodes = cfg_.machine.topo.nodes;
  const int nshards = std::clamp(cfg_.shards, 1, nnodes);
  if (nshards > 1) {
    MMPI_REQUIRE(cfg_.perturb_seed == 0,
                 "sharded runs explore one schedule; perturb_seed requires "
                 "shards == 1");
    MMPI_REQUIRE(cfg_.fault == nullptr || !cfg_.fault->active(),
                 "fault injection requires shards == 1");
    const int cpn = cfg_.machine.topo.cores_per_node;
    eo.shards = nshards;
    eo.lookahead = cfg_.machine.profile.net_latency;
    eo.shard_of = [cpn, nnodes, nshards](int r) {
      return ((r / cpn) * nshards) / nnodes;
    };
    pool_.set_thread_safe(true);
  }
  // Engine construction is cheap: rank fibers (and their guard-paged stacks)
  // are only created inside run(). The rank body below therefore always sees
  // layer_ assigned, even though the factory runs after this line so that it
  // may inspect the constructed engine.
  engine_ = std::make_unique<sim::Engine>(eo, [this](sim::Context& ctx) {
    Env env(*this, ctx);
    layer_->on_rank_start(env, user_main_);
  });
  // World-spanning collectives release ceil_log2(p)*barrier_stage after the
  // last arrival; shrink the lookahead so that release can never land inside
  // the releaser's own window (split/dup comms re-clamp on creation).
  if (engine_->sharded()) shard_clamp_for_members(world_->members());
  inflight_.resize(static_cast<std::size_t>(engine_->shards()));
  opid_seq_.assign(static_cast<std::size_t>(engine_->shards()), 1);

  // Fault state must exist before the layer factory runs: the layer's ctor
  // registers its ghost-death handler only when faults_on() is already true.
  if (cfg_.fault != nullptr && cfg_.fault->active()) {
    fs_ = std::make_unique<FaultState>();
    fs_->dead.assign(static_cast<std::size_t>(n), 0);
    fs_->successor.assign(static_cast<std::size_t>(n), -1);
    // Default retransmission timeout: several round trips of base wire +
    // handling cost, so a prompt target never triggers a spurious retry but
    // a lost message is recovered within tens of microseconds.
    fs_->rto0 = cfg_.fault->rto_base != 0
                    ? cfg_.fault->rto_base
                    : 8 * (profile().net_latency + profile().am_handling);
    fs_->c_drops = &stats().counter("fault.drops");
    fs_->c_dups = &stats().counter("fault.dups");
    fs_->c_delays = &stats().counter("fault.delays");
    fs_->c_ack_drops = &stats().counter("fault.ack_drops");
    fs_->c_retries = &stats().counter("fault.retries");
    fs_->c_dedup_hits = &stats().counter("fault.dedup_hits");
    fs_->c_forwards = &stats().counter("fault.forwards");
    fs_->c_dead_serves = &stats().counter("fault.dead_serves");
    fs_->c_kills = &stats().counter("fault.kills");
  }

  layer_ = layer ? layer(*this) : std::make_shared<Pmpi>(*this);
  MMPI_REQUIRE(layer_ != nullptr, "layer factory returned null");
  engine_->set_deadlock_dump([this] { dump_comm_state(); });

  // One HotStats per shard, each pointing into that shard's own counter
  // registry (shard_stats degrades to the global registry when unsharded, so
  // counter names and totals are unchanged; sharded registries are folded
  // into the global one after run()).
  hot_.resize(static_cast<std::size_t>(engine_->shards()));
  for (int s = 0; s < engine_->shards(); ++s) {
    sim::Stats& st = engine_->shard_stats(s);
    HotStats& h = hot_[static_cast<std::size_t>(s)];
    h.sw_ops = &st.counter("sw_ops");
    h.hw_ops = &st.counter("hw_ops");
    h.cross_numa_ops = &st.counter("cross_numa_ops");
    h.am_busy_arrival = &st.counter("am_busy_arrival");
    h.am_prompt = &st.counter("am_prompt");
    h.interrupts = &st.counter("interrupts");
  }

  if (obs::on(cfg_.recorder)) {
    engine_->set_sched_observer(cfg_.recorder);
    // Default track names by entity-id space; the Casper layer refines rank
    // tracks to "user N" / "ghost N" once roles are known.
    const bool agents = cfg_.progress.kind != progress::Kind::None;
    for (int e = 0; e < 3 * n; ++e) {
      if (!agents && progress::classify_entity(e, n) == progress::EntityClass::Agent)
        continue;
      cfg_.recorder->trace().set_entity_name(e, progress::entity_label(e, n));
    }
  }
}

void Runtime::dump_comm_state() const {
  for (int r = 0; r < static_cast<int>(io_.size()); ++r) {
    const auto& io = io_[static_cast<std::size_t>(r)];
    if (!io.inbox.empty() || !io.posted.empty() || !io.unexpected.empty()) {
      std::fprintf(stderr,
                   "  rank %d: inbox=%zu posted_recvs=%zu unexpected=%zu\n",
                   r, io.inbox.size(), io.posted.size(),
                   io.unexpected.size());
    }
  }
  for (const auto& wk : win_registry_) {
    auto win = wk.lock();
    if (!win) continue;
    for (int o = 0; o < win->comm()->size(); ++o) {
      const auto& ost = win->ost[static_cast<std::size_t>(o)];
      for (int t = 0; t < win->comm()->size(); ++t) {
        const auto& ts = ost.tgt[static_cast<std::size_t>(t)];
        if (ts.outstanding != 0 || !ts.queued.empty() ||
            ts.lock_st == OriginTargetState::LockSt::Requested ||
            ts.release_pending) {
          std::fprintf(stderr,
                       "  win %d: origin %d -> target %d: outstanding=%d "
                       "queued=%zu lock_st=%d release_pending=%d\n",
                       win->id(), o, t, ts.outstanding, ts.queued.size(),
                       static_cast<int>(ts.lock_st),
                       static_cast<int>(ts.release_pending));
        }
      }
    }
  }
}

// Teardown is trivial: ~Engine reclaims fiber stacks deterministically, so a
// Runtime that never ran (or whose run aborted) destructs without joining or
// waking anything.
Runtime::~Runtime() = default;

void Runtime::run() {
  if (cfg_.progress.kind == progress::Kind::Thread &&
      cfg_.progress.oversubscribed) {
    for (int r = 0; r < engine_->nranks(); ++r) {
      engine_->set_compute_scale(r, cfg_.progress.oversub_scale);
    }
  }
  if (fs_) fault_setup();
  for (const RmaObserver* o : observers_) {
    MMPI_REQUIRE(!engine_->sharded() || o->concurrent_safe(),
                 "this conformance observer assumes a single-threaded "
                 "schedule; detach it or run with shards == 1");
  }
  if (obs::on(recorder())) recorder()->set_shards(engine_->shards());
  engine_->run();
  if (obs::on(recorder())) recorder()->merge_shards();
  // Snapshot buffer-pool effectiveness into the metrics block. These are
  // host-side allocator statistics, not virtual-time facts: reuse depends on
  // the interleaving of staging buffers, so "pool.*" keys are exempt from
  // the schedule-invariance contract the other counters obey.
  if (obs::on(recorder())) {
    recorder()->metrics().counter("pool.bytes_reused") = pool_.bytes_reused();
    recorder()->metrics().counter("pool.reuses") = pool_.reuses();
    if (fs_) {
      // Mirror the fault/recovery counters (accumulated in engine stats so
      // tests can read them without a recorder) into the metrics block.
      for (const char* key :
           {"fault.drops", "fault.dups", "fault.delays", "fault.ack_drops",
            "fault.retries", "fault.dedup_hits", "fault.forwards",
            "fault.dead_serves", "fault.kills", "recovery.ghost_dead",
            "recovery.rebound_targets", "recovery.rebound_ops",
            "recovery.direct_ops", "recovery.degraded"}) {
        recorder()->metrics().counter(key) = stats().counter(key);
      }
    }
  }
}

void Runtime::call_prologue(Env& env) {
  if (cfg_.progress.kind == progress::Kind::Thread) {
    env.ctx().advance(profile().thread_call_overhead);
  }
}

void Runtime::p_rank_main(Env& env,
                          const std::function<void(Env&)>& user_main) {
  user_main(env);
  p_barrier(env, world_);  // finalize handshake
}

// ------------------------------------------------------------ progress ----

void Runtime::progress_poll(Env& env) {
  auto& io = io_[static_cast<std::size_t>(env.world_rank())];
  while (!io.inbox.empty()) {
    AmOp op = std::move(io.inbox.front());
    io.inbox.pop_front();
    poller_process(env, op);
  }
}

void Runtime::progress_wait(Env& env, const std::function<bool()>& pred) {
  auto& io = io_[static_cast<std::size_t>(env.world_rank())];
  io.in_mpi = true;  // operations arriving now are serviced promptly
  for (;;) {
    progress_poll(env);
    if (pred()) break;
    engine_->block_self();
  }
  io.in_mpi = false;
}

Time Runtime::wire_latency(int a_world, int b_world,
                           std::size_t bytes) const {
  return profile().latency(topo().same_node(a_world, b_world), bytes);
}

bool Runtime::is_hw_op(const OpDesc& d) const {
  switch (d.kind) {
    case OpKind::Put:
      return profile().hw_contig_put && d.tdt.contiguous();
    case OpKind::Get:
      return profile().hw_contig_get && d.tdt.contiguous();
    case OpKind::Acc:
    case OpKind::GetAcc:
    case OpKind::Fao:
    case OpKind::Cas:
      return profile().hw_contig_acc && d.tdt.contiguous();
    case OpKind::LockReq:
    case OpKind::LockRelease:
      return profile().hw_lock;
  }
  return false;
}

Time Runtime::am_cost(const AmOp& op) const {
  if (op.kind == OpKind::LockReq || op.kind == OpKind::LockRelease) {
    return profile().lock_handling;
  }
  const std::size_t moved =
      std::max(op.payload.size(),
               data_bytes(op.target_count, op.target_dt));
  return profile().handling(moved, op.cross_numa);
}

// -------------------------------------------------------------- inject ----

void Runtime::inject_op(WinImpl& win, int origin_comm, int target_comm,
                        OpDesc&& d, Time t_issue) {
  const int ow = win.comm()->world_rank(origin_comm);
  const int tw = win.comm()->world_rank(target_comm);
  auto& ots = win.ost[static_cast<std::size_t>(origin_comm)]
                  .tgt[static_cast<std::size_t>(target_comm)];
  ++ots.outstanding;

  AmOp op;
  op.kind = d.kind;
  op.op = d.op;
  op.opid = make_opid();
  op.origin_world = ow;
  op.target_world = tw;
  op.win = &win;
  op.origin_comm_rank = origin_comm;
  op.target_comm_rank = target_comm;
  op.acct_target_comm = target_comm;
  op.target_disp = d.tdisp_bytes;
  op.target_count = d.tcount;
  op.target_dt = d.tdt;
  op.payload = std::move(d.payload);
  op.origin_result = d.origin_result;
  op.origin_count = d.ocount;
  op.origin_dt = d.odt;
  op.cross_numa = d.cross_numa;
  if (op.cross_numa) ++*hot().cross_numa_ops;

  const bool request_like =
      op.kind == OpKind::Get;  // request small, response carries data
  const std::size_t wire_bytes = request_like ? 16 : op.payload.size();
  const Time t_del = t_issue + wire_latency(ow, tw, wire_bytes);

  if (is_hw_op(d)) {
    ++*hot().hw_ops;
    if (obs::on(recorder())) ++recorder()->metrics().counter("ops.hw_path");
    // Hardware execution: performed "by the NIC" instantly at delivery; the
    // target CPU is not involved. NIC entity ids live above agent ids.
    const int nic_entity = 2 * engine_->nranks() + tw;
    post_event(t_del, tw,
               [this, op = std::move(op), t_del, nic_entity]() mutable {
      if (obs::on(recorder())) {
        recorder()->trace().instant(nic_entity, obs::Ev::OpHwPath, t_del,
                                  op.opid,
                                  static_cast<std::uint64_t>(op.kind),
                                  op.payload.size());
      }
      // Both processing phases happen at the same host moment, so the
      // staged read buffer is unobservable: commit in place.
      am_commit(op, t_del, t_del, nic_entity);
    });
  } else {
    ++*hot().sw_ops;
    if (obs::on(recorder())) ++recorder()->metrics().counter("ops.sw_path");
    if (fs_) {
      // Faulted transport: the op is parked in a retransmission record and
      // every wire attempt (this one included) runs the verdict machinery.
      fault_send(std::move(op), t_issue);
      return;
    }
    post_event(t_del, tw, [this, op = std::move(op), t_del]() mutable {
      deliver_am(std::move(op), t_del);
    });
  }
}

void Runtime::post_event(Time t, sim::EventFn cb) {
  engine_->post_event(t, std::move(cb));
}

void Runtime::post_event(Time t, int home_world, sim::EventFn cb) {
  engine_->post_event(t, home_world, std::move(cb));
}

std::uint64_t Runtime::make_opid() {
  if (!engine_->sharded()) return next_opid_++;  // golden-trace byte-identity
  const auto s = static_cast<std::size_t>(sim::Engine::current_shard());
  return (static_cast<std::uint64_t>(s + 1) << 40) | opid_seq_[s]++;
}

int Runtime::alloc_comm_id() {
  std::unique_lock<std::mutex> lk(registry_mu_, std::defer_lock);
  if (engine_->sharded()) lk.lock();
  return next_comm_id_++;
}

int Runtime::alloc_win_id() {
  std::unique_lock<std::mutex> lk(registry_mu_, std::defer_lock);
  if (engine_->sharded()) lk.lock();
  return next_win_id_++;
}

void Runtime::register_win(const Win& win) {
  std::unique_lock<std::mutex> lk(registry_mu_, std::defer_lock);
  if (engine_->sharded()) lk.lock();
  win_registry_.push_back(win);
}

// ------------------------------------------------------------- deliver ----

void Runtime::deliver_am(AmOp&& op, Time t_del) {
  if (fs_ && fs_->dead[static_cast<std::size_t>(op.target_world)]) {
    // Forward data ops to the (transitively live) successor so one live
    // entity keeps serializing RMWs on the node's memory. Ghost windows
    // expose the whole node buffer from the same base, so rewriting the
    // target rank preserves the byte addresses. Lock traffic and ops with
    // no successor are served immediately at delivery (fault_serve_dead).
    int s = fs_->successor[static_cast<std::size_t>(op.target_world)];
    while (s >= 0 && fs_->dead[static_cast<std::size_t>(s)])
      s = fs_->successor[static_cast<std::size_t>(s)];
    if (s >= 0 && faultable_kind(op.kind)) {
      ++*fs_->c_forwards;
      op.target_world = s;
      op.target_comm_rank = op.win->comm()->rank_of_world(s);
      MMPI_REQUIRE(op.target_comm_rank >= 0,
                   "fault successor not in the op's communicator");
    } else {
      fault_serve_dead(std::move(op), t_del);
      return;
    }
  }
  op.delivered = t_del;
  switch (cfg_.progress.kind) {
    case progress::Kind::None: {
      auto& io = io_[static_cast<std::size_t>(op.target_world)];
      const int tw = op.target_world;
      op.busy_arrival = !io.in_mpi;
      ++*(op.busy_arrival ? hot().am_busy_arrival : hot().am_prompt);
      io.inbox.push_back(std::move(op));
      engine_->wake(tw, t_del);
      break;
    }
    case progress::Kind::Thread:
    case progress::Kind::Interrupt:
      agent_process(std::move(op), t_del);
      break;
  }
}

void Runtime::agent_process(AmOp&& op, Time t_del) {
  auto& io = io_[static_cast<std::size_t>(op.target_world)];
  const auto& prof = profile();
  const bool interrupt = cfg_.progress.kind == progress::Kind::Interrupt;
  const Time lead = interrupt ? prof.interrupt_cost : prof.thread_handoff;
  const Time cost = am_cost(op);

  // The per-message lead occupies the serving entity: for interrupts it is
  // the handler entry/exit (the throughput limit Fig. 4(c) measures); for
  // the background thread it is the thread-safety/lock-contention cost that
  // makes thread progress expensive at scale (paper Section I, [8]).
  const Time start = std::max(t_del, io.agent_busy_until);
  const Time end = start + lead + cost;
  io.agent_busy_until = end;

  if (interrupt) {
    ++*hot().interrupts;
    // The interrupt handler preempts the target core: if the target is
    // computing, the handler's time is stolen from the computation.
    if (engine_->rank_computing(op.target_world)) {
      engine_->add_compute_penalty(op.target_world, lead + cost);
    }
  }

  const int entity = engine_->nranks() + op.target_world;  // agent id space
  post_event(start, [this, op = std::move(op), start, end, entity]() mutable {
    if (op.kind == OpKind::LockReq) {
      lockmgr_request(*op.win, op.target_comm_rank, op.origin_comm_rank,
                      op.lock_type, end);
      return;
    }
    if (op.kind == OpKind::LockRelease) {
      lockmgr_release(*op.win, op.target_comm_rank, op.origin_comm_rank,
                      op.lock_type, end, /*notify_origin=*/true);
      return;
    }
    // The agent serializes its operations (busy_until), so the
    // read-modify-write commits atomically at the end event; the recorded
    // [start, end) interval still exposes overlaps with *other* entities.
    // Read and write both execute at the end event (same host moment), so
    // the fused in-place commit is byte-identical to the two-phase form.
    post_event(end, [this, op = std::move(op), start, end, entity]() mutable {
      if (fs_ && !fault_should_execute(op, end)) return;
      am_commit(op, start, end, entity);
    });
  });
}

void Runtime::poller_process(Env& env, AmOp& op) {
  // In-application progress penalty: an application process drains software
  // operations at degraded per-op efficiency, scaled by node-core contention
  // (cache pollution, progress-engine entry, unexpected-queue matching under
  // many-core pressure). Dedicated progress ranks — Casper ghosts parked
  // inside the MPI runtime — serve at the base cost. This asymmetry is the
  // paper's core premise (see net::Profile::busy_factor and DESIGN.md §5).
  const double factor = dedicated_progress(env.world_rank())
                            ? 1.0
                            : profile().busy_factor(topo().cores_per_node);
  const Time cost =
      static_cast<Time>(static_cast<double>(am_cost(op)) * factor);
  if (op.kind == OpKind::LockReq) {
    env.ctx().advance(cost);
    lockmgr_request(*op.win, op.target_comm_rank, op.origin_comm_rank,
                    op.lock_type, env.now());
    return;
  }
  if (op.kind == OpKind::LockRelease) {
    env.ctx().advance(cost);
    lockmgr_release(*op.win, op.target_comm_rank, op.origin_comm_rank,
                    op.lock_type, env.now(), /*notify_origin=*/true);
    return;
  }
  // Dedup gate: a duplicate delivery (network dup, or a retransmission that
  // raced the ack) must not re-execute — especially not a read-modify-write.
  if (fs_ && !fault_should_execute(op, env.now())) return;
  const Time t0 = env.now();
  auto staged = am_read_phase(op);
  env.ctx().advance(cost);
  if (fs_ && fs_->dead[static_cast<std::size_t>(env.world_rank())]) {
    // The serving rank was killed between the read and write phases: the
    // write never lands. Release the dedup claim so the origin's
    // retransmission re-executes the op (at the successor).
    fs_->served.erase(op.opid);
    return;
  }
  if (obs::on(recorder()) && dedicated_progress(env.world_rank())) {
    const std::size_t moved =
        std::max(op.payload.size(),
                 data_bytes(op.target_count, op.target_dt));
    obs::Recorder* rec = recorder();
    rec->trace().span(env.world_rank(), obs::Ev::GhostService, t0,
                    env.now() - t0, op.opid, moved);
    const std::string g = std::to_string(env.world_rank());
    ++rec->metrics().counter("ghost." + g + ".service_ops");
    rec->metrics().counter("ghost." + g + ".service_bytes") += moved;
    rec->metrics().histogram("ghost_service_ns").add(env.now() - t0);
  }
  am_write_phase(op, std::move(staged), t0, env.now(), env.world_rank());
}

// ----------------------------------------------------------- execution ----

sim::PoolBuf Runtime::am_read_phase(const AmOp& op) {
  std::byte* taddr = seg_addr(*op.win, op.target_comm_rank, op.target_disp);
  const std::size_t nbytes = data_bytes(op.target_count, op.target_dt);
  const std::size_t nelems = nbytes / op.target_dt.elem_size();
  sim::PoolBuf staged(&pool_);

  switch (op.kind) {
    case OpKind::Put:
    case OpKind::Get:
      return staged;  // Put writes payload; Get reads at commit time.
    case OpKind::Acc: {
      if (op.op == AccOp::Replace || op.op == AccOp::NoOp) return staged;
      // Read-modify-write: read target at processing start, combine, commit
      // at processing end. Overlapping concurrent processing by different
      // entities loses updates — by design, to model the real hazard.
      pack_into(staged, taddr, op.target_count, op.target_dt);
      reduce_contig(staged.data(), op.payload.data(), nelems, op.target_dt.base,
                    op.op == AccOp::Sum ? AccOp::Sum : op.op);
      // staged now holds op(target_old, origin): note reduce_contig computes
      // dst = op(dst, src) with dst = target_old, src = origin. For Sum /
      // Min / Max this matches MPI_Accumulate semantics.
      return staged;
    }
    case OpKind::GetAcc:
    case OpKind::Fao: {
      staged.resize(nbytes * 2);
      pack_into(staged, taddr, op.target_count, op.target_dt);  // trimmed...
      staged.resize(nbytes * 2);  // ...back to [old | new] width
      std::memcpy(staged.data() + nbytes, staged.data(), nbytes);
      if (op.op != AccOp::NoOp) {
        if (op.op == AccOp::Replace) {
          std::memcpy(staged.data() + nbytes, op.payload.data(), nbytes);
        } else {
          reduce_contig(staged.data() + nbytes, op.payload.data(), nelems,
                        op.target_dt.base, op.op);
        }
      }
      return staged;  // [old | new]
    }
    case OpKind::Cas: {
      const std::size_t es = op.target_dt.elem_size();
      staged.resize(es + 1);
      std::memcpy(staged.data(), taddr, es);
      const bool equal = std::memcmp(taddr, op.payload.data(), es) == 0;
      staged.data()[es] = static_cast<std::byte>(equal ? 1 : 0);
      return staged;  // [old | matched?]
    }
    case OpKind::LockReq:
    case OpKind::LockRelease:
      break;
  }
  return staged;
}

void Runtime::am_write_phase(const AmOp& op, sim::PoolBuf&& staged, Time t0,
                             Time t1, int entity) {
  std::byte* taddr = seg_addr(*op.win, op.target_comm_rank, op.target_disp);
  const std::size_t span = span_bytes(op.target_count, op.target_dt);
  const auto lo = reinterpret_cast<std::uintptr_t>(taddr);
  const auto hi = lo + span;

  sim::PoolBuf ack_data(&pool_);
  bool is_write = true;

  switch (op.kind) {
    case OpKind::Put:
      unpack(taddr, op.target_count, op.target_dt, op.payload);
      break;
    case OpKind::Get:
      pack_into(ack_data, taddr, op.target_count, op.target_dt);
      is_write = false;
      break;
    case OpKind::Acc:
      if (op.op == AccOp::NoOp) {
        is_write = false;
      } else if (op.op == AccOp::Replace) {
        unpack(taddr, op.target_count, op.target_dt, op.payload);
      } else {
        unpack(taddr, op.target_count, op.target_dt, staged);
      }
      break;
    case OpKind::GetAcc:
    case OpKind::Fao: {
      const std::size_t half = staged.size() / 2;
      ack_data.assign(staged.data(), half);
      if (op.op != AccOp::NoOp) {
        unpack(taddr, op.target_count, op.target_dt,
               std::span<const std::byte>(staged.data() + half, half));
      } else {
        is_write = false;
      }
      break;
    }
    case OpKind::Cas: {
      const std::size_t es = op.target_dt.elem_size();
      ack_data.assign(staged.data(), es);
      if (staged.data()[es] == static_cast<std::byte>(1)) {
        // payload = [expected | desired]
        std::memcpy(taddr, op.payload.data() + es, es);
      } else {
        is_write = false;
      }
      break;
    }
    case OpKind::LockReq:
    case OpKind::LockRelease:
      MMPI_REQUIRE(false, "lock ops do not reach am_write_phase");
  }

  record_access(lo, hi, t0, t1, entity, is_write);
  if (obs::on(recorder())) {
    recorder()->trace().instant(entity, obs::Ev::OpCommitted, t1, op.opid,
                              static_cast<std::uint64_t>(op.kind),
                              data_bytes(op.target_count, op.target_dt));
    ++recorder()->metrics().counter("ops.committed");
  }
  observe_commit(op, t1, entity);
  schedule_ack(op, t1, std::move(ack_data));
}

void Runtime::am_commit(const AmOp& op, Time t0, Time t1, int entity) {
  // Fused read+write for paths whose two phases execute at the same host
  // moment (NIC hardware ops; agent end-events). Reading the target here
  // instead of staging it at processing start is byte-identical on those
  // paths and skips the doubled scratch buffer entirely: accumulates reduce
  // in place, fetches pack the old value straight into the ack. The poller
  // path yields between phases and must keep the staged two-phase form.
  std::byte* taddr = seg_addr(*op.win, op.target_comm_rank, op.target_disp);
  const std::size_t span = span_bytes(op.target_count, op.target_dt);
  const auto lo = reinterpret_cast<std::uintptr_t>(taddr);
  const auto hi = lo + span;

  sim::PoolBuf ack_data(&pool_);
  bool is_write = true;

  switch (op.kind) {
    case OpKind::Put:
      unpack(taddr, op.target_count, op.target_dt, op.payload);
      break;
    case OpKind::Get:
      pack_into(ack_data, taddr, op.target_count, op.target_dt);
      is_write = false;
      break;
    case OpKind::Acc:
      if (op.op == AccOp::NoOp) {
        is_write = false;
      } else if (op.op == AccOp::Replace) {
        unpack(taddr, op.target_count, op.target_dt, op.payload);
      } else {
        reduce_into(taddr, op.target_count, op.target_dt, op.payload, op.op);
      }
      break;
    case OpKind::GetAcc:
    case OpKind::Fao:
      pack_into(ack_data, taddr, op.target_count, op.target_dt);  // old value
      if (op.op == AccOp::NoOp) {
        is_write = false;
      } else if (op.op == AccOp::Replace) {
        unpack(taddr, op.target_count, op.target_dt, op.payload);
      } else {
        reduce_into(taddr, op.target_count, op.target_dt, op.payload, op.op);
      }
      break;
    case OpKind::Cas: {
      const std::size_t es = op.target_dt.elem_size();
      ack_data.assign(taddr, es);  // old value
      if (std::memcmp(taddr, op.payload.data(), es) == 0) {
        // payload = [expected | desired]
        std::memcpy(taddr, op.payload.data() + es, es);
      } else {
        is_write = false;
      }
      break;
    }
    case OpKind::LockReq:
    case OpKind::LockRelease:
      MMPI_REQUIRE(false, "lock ops do not reach am_commit");
  }

  record_access(lo, hi, t0, t1, entity, is_write);
  if (obs::on(recorder())) {
    recorder()->trace().instant(entity, obs::Ev::OpCommitted, t1, op.opid,
                              static_cast<std::uint64_t>(op.kind),
                              data_bytes(op.target_count, op.target_dt));
    ++recorder()->metrics().counter("ops.committed");
  }
  observe_commit(op, t1, entity);
  schedule_ack(op, t1, std::move(ack_data));
}

void Runtime::exec_self(Env& env, const AmOp& op) {
  // Self ops execute synchronously (MPI guarantees self locks and local
  // load/store access are not delayed). Local cost only.
  env.ctx().advance(sim::ns(80) + static_cast<Time>(
                                      0.02 * static_cast<double>(
                                                 op.payload.size())));
  // Commit immediately with a zero-width interval; no ack (nothing is
  // outstanding for self ops). Fetch results land via pooled scratch.
  std::byte* taddr = seg_addr(*op.win, op.target_comm_rank, op.target_disp);
  const std::size_t span = span_bytes(op.target_count, op.target_dt);
  const auto lo = reinterpret_cast<std::uintptr_t>(taddr);
  const Time t = env.now();

  switch (op.kind) {
    case OpKind::Put:
      unpack(taddr, op.target_count, op.target_dt, op.payload);
      record_access(lo, lo + span, t, t, env.world_rank(), true);
      break;
    case OpKind::Get:
      if (op.origin_result) {
        sim::PoolBuf data(&pool_);
        pack_into(data, taddr, op.target_count, op.target_dt);
        unpack(op.origin_result, op.origin_count, op.origin_dt, data);
      }
      record_access(lo, lo + span, t, t, env.world_rank(), false);
      break;
    case OpKind::Acc: {
      reduce_into(taddr, op.target_count, op.target_dt, op.payload, op.op);
      record_access(lo, lo + span, t, t, env.world_rank(), op.op != AccOp::NoOp);
      break;
    }
    case OpKind::GetAcc:
    case OpKind::Fao: {
      if (op.origin_result) {
        sim::PoolBuf old(&pool_);
        pack_into(old, taddr, op.target_count, op.target_dt);
        unpack(op.origin_result, op.origin_count, op.origin_dt, old);
      }
      reduce_into(taddr, op.target_count, op.target_dt, op.payload, op.op);
      record_access(lo, lo + span, t, t, env.world_rank(), op.op != AccOp::NoOp);
      break;
    }
    case OpKind::Cas: {
      const std::size_t es = op.target_dt.elem_size();
      if (op.origin_result) std::memcpy(op.origin_result, taddr, es);
      if (std::memcmp(taddr, op.payload.data(), es) == 0) {
        std::memcpy(taddr, op.payload.data() + es, es);
      }
      record_access(lo, lo + es, t, t, env.world_rank(), true);
      break;
    }
    case OpKind::LockReq:
    case OpKind::LockRelease:
      MMPI_REQUIRE(false, "lock ops are not self-executed ops");
  }
  observe_commit(op, t, env.world_rank());
}

void Runtime::record_access(std::uintptr_t lo, std::uintptr_t hi, Time t0,
                            Time t1, int entity, bool is_write) {
  // Per-shard list: window memory belongs to a node and nodes never split
  // across shards, so accesses that can alias always meet in the same list.
  auto& inflight =
      inflight_[static_cast<std::size_t>(sim::Engine::current_shard())];
  // Processing-start times are nondecreasing in commit order, so entries
  // whose interval ended at or before t0 can never overlap future accesses.
  std::erase_if(inflight, [t0](const InflightOp& e) { return e.t1 <= t0; });
  for (const InflightOp& e : inflight) {
    if (e.entity == entity) continue;
    if (!(e.is_write || is_write)) continue;
    // Half-open interval overlap; a zero-width (instant) access is detected
    // when it falls strictly inside another access's processing span.
    const bool time_overlap = e.t0 < t1 && t0 < e.t1;
    const bool byte_overlap = e.lo < hi && lo < e.hi;
    if (time_overlap && byte_overlap) {
      ++engine_->stats_local().counter("atomicity_violations");
    }
  }
  inflight.push_back(InflightOp{entity, lo, hi, t0, t1, is_write});
}

void Runtime::schedule_ack(const AmOp& op, Time t_done,
                           sim::PoolBuf&& data) {
  Time t_ack =
      t_done + wire_latency(op.target_world, op.origin_world, data.size());
  WinImpl* win = op.win;
  const int oc = op.origin_comm_rank;
  const int tc = op.acct_target_comm >= 0 ? op.acct_target_comm
                                          : op.target_comm_rank;
  const int ow = op.origin_world;
  const std::uint64_t opid = op.opid;
  void* res = op.origin_result;
  const int rcount = op.origin_count;
  const Datatype rdt = op.origin_dt;

  if (fs_ && faultable_kind(op.kind)) {
    // Transport-faulted op (it has a dedup entry from the execution gate):
    // cache the ack payload for idempotent re-acks, then run the
    // ack-direction verdict. A dropped ack is recovered by the origin's
    // retransmission timer: the redelivery hits the dedup cache and re-acks.
    auto it = fs_->served.find(opid);
    if (it != fs_->served.end()) {
      FaultState::Served& sv = it->second;
      if (!sv.have_ack) {
        sv.have_ack = true;
        sv.ack.bind(&pool_);
        sv.ack.assign(data.data(), data.size());
      }
      const fault::Verdict v =
          fault::draw(*cfg_.fault, opid, sv.ack_attempt++, /*is_ack=*/true);
      if (v.kind == fault::NetVerdict::Drop) {
        ++*fs_->c_ack_drops;
        if (obs::on(recorder())) {
          recorder()->trace().instant(op.target_world, obs::Ev::FaultInject,
                                    t_done, opid,
                                    static_cast<std::uint64_t>(v.kind), 1);
        }
        return;
      }
      t_ack += v.extra;  // Delay; Dup of an ack is modeled as Deliver
    }
  }

  post_event(t_ack, ow, [this, win, oc, tc, ow, opid, res, rcount, rdt,
                         data = std::move(data), t_ack]() {
    if (fs_ && !fault_complete(opid)) return;  // duplicate ack
    auto& ots = win->ost[static_cast<std::size_t>(oc)]
                    .tgt[static_cast<std::size_t>(tc)];
    --ots.outstanding;
    MMPI_REQUIRE(ots.outstanding >= 0, "ack underflow");
    if (res != nullptr && !data.empty()) {
      unpack(res, rcount, rdt, data);
    }
    if (obs::on(recorder()))
      recorder()->trace().instant(ow, obs::Ev::OpFlushed, t_ack, opid);
    engine_->wake(ow, t_ack);
  });
}

// ----------------------------------------------- fault injection layer ----

bool Runtime::rank_dead(int world_rank) const {
  return fs_ != nullptr && fs_->dead[static_cast<std::size_t>(world_rank)] != 0;
}

void Runtime::set_death_handler(std::function<void(int, sim::Time)> fn) {
  MMPI_REQUIRE(fs_ != nullptr, "death handler requires an active FaultPlan");
  fs_->death_handler = std::move(fn);
}

void Runtime::set_rank_successor(int world_rank, int successor) {
  MMPI_REQUIRE(fs_ != nullptr, "successor map requires an active FaultPlan");
  fs_->successor[static_cast<std::size_t>(world_rank)] = successor;
}

void Runtime::fault_setup() {
  const fault::FaultPlan& p = *cfg_.fault;
  const Time hb = std::max<Time>(p.heartbeat_period, 1);
  for (const fault::GhostKill& k : p.kills) {
    if (k.world_rank < 0 || k.world_rank >= engine_->nranks()) continue;
    post_event(k.at, [this, k]() { fault_kill_rank(k.world_rank, k.at); });
    // Detection: the failure becomes visible at the first heartbeat boundary
    // strictly after the kill instant; the layer's handler (registered via
    // set_death_handler) reroutes traffic from that point on.
    const Time t_detect = (k.at / hb + 1) * hb;
    post_event(t_detect, [this, k, t_detect]() {
      if (fs_->death_handler) fs_->death_handler(k.world_rank, t_detect);
    });
  }
}

AmOp Runtime::fault_clone(const AmOp& op) {
  AmOp c;
  c.kind = op.kind;
  c.opid = op.opid;
  c.origin_world = op.origin_world;
  c.target_world = op.target_world;
  c.win = op.win;
  c.origin_comm_rank = op.origin_comm_rank;
  c.target_comm_rank = op.target_comm_rank;
  c.acct_target_comm = op.acct_target_comm;
  c.target_disp = op.target_disp;
  c.target_count = op.target_count;
  c.target_dt = op.target_dt;
  c.op = op.op;
  c.payload.bind(&pool_);
  if (!op.payload.empty()) c.payload.assign(op.payload.data(), op.payload.size());
  c.origin_result = op.origin_result;
  c.origin_count = op.origin_count;
  c.origin_dt = op.origin_dt;
  c.lock_type = op.lock_type;
  c.cross_numa = op.cross_numa;
  return c;
}

void Runtime::fault_send(AmOp&& op, Time t_send) {
  const std::uint64_t opid = op.opid;
  FaultState::Retrans& r = fs_->pending[opid];
  r.op = std::move(op);
  r.attempt = 0;
  fault_transmit(opid, t_send);
}

void Runtime::fault_transmit(std::uint64_t opid, Time t_send) {
  auto it = fs_->pending.find(opid);
  if (it == fs_->pending.end()) return;  // acked while the timer slept
  FaultState::Retrans& r = it->second;
  const AmOp& op = r.op;
  // Verdicts are a pure function of (plan seed, opid, attempt, direction):
  // the opid set of a fixed program is schedule-invariant, so the fault.*
  // counters are too — see DESIGN.md §11.
  const fault::Verdict v =
      fault::draw(*cfg_.fault, opid, r.attempt, /*is_ack=*/false);
  const std::size_t wire_bytes =
      op.kind == OpKind::Get ? 16 : op.payload.size();
  const Time t_del =
      t_send + wire_latency(op.origin_world, op.target_world, wire_bytes);
  if (v.kind != fault::NetVerdict::Deliver && obs::on(recorder())) {
    recorder()->trace().instant(op.origin_world, obs::Ev::FaultInject, t_send,
                              opid, static_cast<std::uint64_t>(v.kind),
                              v.extra);
  }
  switch (v.kind) {
    case fault::NetVerdict::Drop:
      ++*fs_->c_drops;
      break;
    case fault::NetVerdict::Dup:
      ++*fs_->c_dups;
      fault_deliver_copy(op, t_del);
      fault_deliver_copy(op, t_del + v.extra);
      break;
    case fault::NetVerdict::Delay:
      ++*fs_->c_delays;
      fault_deliver_copy(op, t_del + v.extra);
      break;
    case fault::NetVerdict::Deliver:
      fault_deliver_copy(op, t_del);
      break;
  }
  // Timeout-driven retry with exponential backoff. The timer self-cancels
  // when the first ack erases the retransmission record.
  const Time t_retry = t_send + fs_->rto_for(r.attempt);
  ++r.attempt;
  post_event(t_retry, [this, opid, t_retry]() {
    auto it2 = fs_->pending.find(opid);
    if (it2 == fs_->pending.end()) return;  // acked in time
    ++*fs_->c_retries;
    if (obs::on(recorder())) {
      recorder()->trace().instant(it2->second.op.origin_world, obs::Ev::AmRetry,
                                t_retry, opid, it2->second.attempt);
    }
    fault_transmit(opid, t_retry);
  });
}

void Runtime::fault_deliver_copy(const AmOp& op, Time t_del) {
  Time t = t_del;
  // An ingress stall holds everything arriving at the target inside the
  // stall window until the stall ends.
  for (const fault::GhostStall& s : cfg_.fault->stalls) {
    if (s.world_rank == op.target_world && t >= s.at && t < s.at + s.duration)
      t = s.at + s.duration;
  }
  AmOp copy = fault_clone(op);
  post_event(t, [this, copy = std::move(copy), t]() mutable {
    deliver_am(std::move(copy), t);
  });
}

bool Runtime::fault_should_execute(AmOp& op, Time t_now) {
  auto [it, fresh] = fs_->served.try_emplace(op.opid);
  if (fresh) {
    fs_->served_fifo.push_back(op.opid);
    if (fs_->served_fifo.size() > FaultState::kWindow) {
      fs_->served.erase(fs_->served_fifo.front());
      fs_->served_fifo.pop_front();
    }
    return true;
  }
  ++*fs_->c_dedup_hits;
  if (it->second.have_ack) {
    // Re-ack from the cached payload (the originally fetched value for RMW
    // ops) without re-executing.
    sim::PoolBuf again(&pool_);
    if (!it->second.ack.empty())
      again.assign(it->second.ack.data(), it->second.ack.size());
    schedule_ack(op, t_now, std::move(again));
  }
  // No cached ack yet: the first execution is still in flight; its own ack
  // (or the next retransmission) completes the op.
  return false;
}

bool Runtime::fault_complete(std::uint64_t opid) {
  auto it = fs_->pending.find(opid);
  if (it != fs_->pending.end()) {
    fs_->pending.erase(it);
    fs_->completed.insert(opid);
    fs_->completed_fifo.push_back(opid);
    if (fs_->completed_fifo.size() > FaultState::kWindow) {
      fs_->completed.erase(fs_->completed_fifo.front());
      fs_->completed_fifo.pop_front();
    }
    return true;
  }
  // Already completed => duplicate ack; unknown opid => an op that never
  // entered the faulted transport (hardware path), complete normally.
  return fs_->completed.count(opid) == 0;
}

void Runtime::fault_serve_dead(AmOp&& op, Time t) {
  if (op.kind == OpKind::LockReq) {
    lockmgr_request(*op.win, op.target_comm_rank, op.origin_comm_rank,
                    op.lock_type, t);
    return;
  }
  if (op.kind == OpKind::LockRelease) {
    lockmgr_release(*op.win, op.target_comm_rank, op.origin_comm_rank,
                    op.lock_type, t, /*notify_origin=*/true);
    return;
  }
  if (!fault_should_execute(op, t)) return;
  ++*fs_->c_dead_serves;
  // In-flight one-sided data is not lost when the serving process dies: the
  // NIC/memory system completes the transfer at delivery time. Zero-width
  // commit, so it cannot interleave with a live entity's two-phase service.
  const int nic_entity = 2 * engine_->nranks() + op.target_world;
  am_commit(op, t, t, nic_entity);
}

void Runtime::fault_kill_rank(int world_rank, Time t) {
  if (fs_->dead[static_cast<std::size_t>(world_rank)] != 0) return;
  fs_->dead[static_cast<std::size_t>(world_rank)] = 1;
  ++*fs_->c_kills;
  // Death is modeled at the RMA-service level: the rank's fiber stays alive
  // for simulator control flow (command loop, barriers, finalize), but its
  // inbox is re-dispatched now and future deliveries are redirected at
  // arrival (see deliver_am).
  auto& io = io_[static_cast<std::size_t>(world_rank)];
  while (!io.inbox.empty()) {
    AmOp op = std::move(io.inbox.front());
    io.inbox.pop_front();
    deliver_am(std::move(op), t);
  }
}

// -------------------------------------------------------- lock manager ----

void Runtime::send_lock_request(Env& env, WinImpl& win, int target) {
  const int me = win.comm()->rank_of_world(env.world_rank());
  auto& ots = win.ost[static_cast<std::size_t>(me)]
                  .tgt[static_cast<std::size_t>(target)];
  MMPI_REQUIRE(ots.lock_st == OriginTargetState::LockSt::Intent,
               "lock request already sent or no lock intent");
  ots.lock_st = OriginTargetState::LockSt::Requested;

  const int tw = win.comm()->world_rank(target);
  const Time t_arr = env.now() + wire_latency(env.world_rank(), tw, 16);
  WinImpl* w = &win;
  const LockType type = ots.lock_type;

  if (profile().hw_lock) {
    // NIC-level lock handling: processed at delivery with no target software.
    post_event(t_arr, tw, [this, w, target, me, type, t_arr]() {
      lockmgr_request(*w, target, me, type, t_arr);
    });
  } else {
    AmOp op;
    op.kind = OpKind::LockReq;
    op.opid = make_opid();
    op.origin_world = env.world_rank();
    op.target_world = tw;
    op.win = w;
    op.origin_comm_rank = me;
    op.target_comm_rank = target;
    op.lock_type = type;
    post_event(t_arr, tw, [this, op = std::move(op), t_arr]() mutable {
      deliver_am(std::move(op), t_arr);
    });
  }
}

void Runtime::lockmgr_request(WinImpl& win, int target, int origin,
                              LockType type, Time t) {
  auto& tl = win.locks[static_cast<std::size_t>(target)];
  if (tl.grantable(type, origin) && tl.pending.empty()) {
    tl.grant(type, origin);
    const int ow = win.comm()->world_rank(origin);
    const int tw = win.comm()->world_rank(target);
    const Time t_ack = t + wire_latency(tw, ow, 0);
    WinImpl* w = &win;
    post_event(t_ack, ow, [this, w, origin, target, t_ack]() {
      on_lock_granted(*w, origin, target, t_ack);
    });
  } else {
    tl.pending.push_back(TargetLockState::Pending{origin, type});
  }
}

void Runtime::lockmgr_release(WinImpl& win, int target, int origin,
                              LockType type, Time t, bool notify_origin) {
  auto& tl = win.locks[static_cast<std::size_t>(target)];
  tl.release(type, origin);

  if (notify_origin) {
    const int ow = win.comm()->world_rank(origin);
    const int tw = win.comm()->world_rank(target);
    const Time t_ack = t + wire_latency(tw, ow, 0);
    WinImpl* w = &win;
    post_event(t_ack, ow, [this, w, origin, target, ow, t_ack]() {
      auto& ots = w->ost[static_cast<std::size_t>(origin)]
                      .tgt[static_cast<std::size_t>(target)];
      ots.release_pending = false;
      engine_->wake(ow, t_ack);
    });
  }

  // Grant pending requests in FIFO order while compatible.
  while (!tl.pending.empty() &&
         tl.grantable(tl.pending.front().type, tl.pending.front().origin)) {
    auto p = tl.pending.front();
    tl.pending.pop_front();
    tl.grant(p.type, p.origin);
    const int ow = win.comm()->world_rank(p.origin);
    const int tw = win.comm()->world_rank(target);
    const Time t_ack = t + wire_latency(tw, ow, 0);
    WinImpl* w = &win;
    post_event(t_ack, ow, [this, w, p, target, t_ack]() {
      on_lock_granted(*w, p.origin, target, t_ack);
    });
  }
}

void Runtime::on_lock_granted(WinImpl& win, int origin, int target, Time t) {
  auto& ots = win.ost[static_cast<std::size_t>(origin)]
                  .tgt[static_cast<std::size_t>(target)];
  ots.lock_st = OriginTargetState::LockSt::Granted;
  // Inject all operations queued while the delayed lock was pending. The
  // origin CPU cost of these injections was already paid when the operations
  // were issued; here they just hit the wire in order.
  Time ti = t;
  auto queued = std::move(ots.queued);
  ots.queued.clear();
  for (auto& d : queued) {
    ti += profile().op_inject;
    inject_op(win, origin, target, std::move(d), ti);
  }
  engine_->wake(win.comm()->world_rank(origin), t);
}

void Runtime::observe_sync(WinImpl& win, int world_rank, SyncKind kind,
                           int target, sim::Time t) {
  for (RmaObserver* o : observers_) {
    o->on_sync(win, world_rank, kind, target, t);
  }
  if (obs::on(recorder())) {
    recorder()->trace().instant(world_rank, obs::Ev::EpochEnd, t,
                              static_cast<std::uint64_t>(kind),
                              static_cast<std::uint64_t>(win.id()));
    ++recorder()->metrics().counter(std::string("sync.") + to_string(kind));
  }
}

void exec(RunConfig cfg, std::function<void(Env&)> user_main,
          LayerFactory layer) {
  Runtime rt(std::move(cfg), std::move(user_main), std::move(layer));
  rt.run();
}

}  // namespace casper::mpi
