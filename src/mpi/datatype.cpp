#include "mpi/datatype.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace casper::mpi {

namespace {

template <typename T>
void reduce_typed(T* dst, const T* src, std::size_t n, AccOp op) {
  switch (op) {
    case AccOp::Replace:
      std::memcpy(dst, src, n * sizeof(T));
      break;
    case AccOp::Sum:
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      break;
    case AccOp::Min:
      for (std::size_t i = 0; i < n; ++i)
        if (src[i] < dst[i]) dst[i] = src[i];
      break;
    case AccOp::Max:
      for (std::size_t i = 0; i < n; ++i)
        if (src[i] > dst[i]) dst[i] = src[i];
      break;
    case AccOp::NoOp:
      break;
  }
}

}  // namespace

namespace {
void pack_to(std::byte* out, const void* src, int count, const Datatype& dt) {
  const std::size_t block = static_cast<std::size_t>(dt.blocklen) *
                            dt.elem_size();
  const std::size_t stride = static_cast<std::size_t>(dt.stride) *
                             dt.elem_size();
  const auto* s = static_cast<const std::byte*>(src);
  for (int b = 0; b < count; ++b) {
    std::memcpy(out + static_cast<std::size_t>(b) * block,
                s + static_cast<std::size_t>(b) * stride, block);
  }
}
}  // namespace

std::vector<std::byte> pack(const void* src, int count, const Datatype& dt) {
  std::vector<std::byte> out(data_bytes(count, dt));
  pack_to(out.data(), src, count, dt);
  return out;
}

void pack_into(sim::PoolBuf& out, const void* src, int count,
               const Datatype& dt) {
  out.resize(data_bytes(count, dt));
  pack_to(out.data(), src, count, dt);
}

void unpack(void* dst, int count, const Datatype& dt,
            std::span<const std::byte> packed) {
  const std::size_t block = static_cast<std::size_t>(dt.blocklen) *
                            dt.elem_size();
  const std::size_t stride = static_cast<std::size_t>(dt.stride) *
                             dt.elem_size();
  if (packed.size() != data_bytes(count, dt)) {
    std::fprintf(stderr, "mpi::unpack: size mismatch (%zu vs %zu)\n",
                 packed.size(), data_bytes(count, dt));
    std::abort();
  }
  auto* d = static_cast<std::byte*>(dst);
  for (int b = 0; b < count; ++b) {
    std::memcpy(d + static_cast<std::size_t>(b) * stride,
                packed.data() + static_cast<std::size_t>(b) * block, block);
  }
}

void reduce_contig(void* dst, const void* src, std::size_t n_elems, Dt base,
                   AccOp op) {
  switch (base) {
    case Dt::Byte:
      // Byte data only supports Replace/NoOp semantics meaningfully; treat
      // arithmetic ops on bytes as unsigned char arithmetic.
      reduce_typed(static_cast<unsigned char*>(dst),
                   static_cast<const unsigned char*>(src), n_elems, op);
      break;
    case Dt::Int:
      reduce_typed(static_cast<std::int32_t*>(dst),
                   static_cast<const std::int32_t*>(src), n_elems, op);
      break;
    case Dt::Double:
      reduce_typed(static_cast<double*>(dst), static_cast<const double*>(src),
                   n_elems, op);
      break;
  }
}

void reduce_into(void* dst, int count, const Datatype& dt,
                 std::span<const std::byte> packed, AccOp op) {
  const std::size_t block_elems = static_cast<std::size_t>(dt.blocklen);
  const std::size_t block = block_elems * dt.elem_size();
  const std::size_t stride = static_cast<std::size_t>(dt.stride) *
                             dt.elem_size();
  if (packed.size() != data_bytes(count, dt)) {
    std::fprintf(stderr, "mpi::reduce_into: size mismatch (%zu vs %zu)\n",
                 packed.size(), data_bytes(count, dt));
    std::abort();
  }
  auto* d = static_cast<std::byte*>(dst);
  for (int b = 0; b < count; ++b) {
    reduce_contig(d + static_cast<std::size_t>(b) * stride,
                  packed.data() + static_cast<std::size_t>(b) * block,
                  block_elems, dt.base, op);
  }
}

}  // namespace casper::mpi
