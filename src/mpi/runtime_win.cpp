// Runtime: window management, RMA communication issue path, and the four
// MPI-3 synchronization epoch families.
#include <algorithm>
#include <cstring>
#include <map>

#include "mpi/check.hpp"
#include "mpi/datatype.hpp"
#include "mpi/runtime.hpp"

namespace casper::mpi {

using sim::Time;
using LockSt = OriginTargetState::LockSt;

namespace {

/// Round a size up to cache-line alignment so every segment in a shared node
/// buffer starts at least 16-byte aligned (basic-datatype atomicity unit).
std::size_t align_up(std::size_t v) { return (v + 63) & ~std::size_t{63}; }

bool group_contains(const std::vector<int>& g, int r) {
  return std::find(g.begin(), g.end(), r) != g.end();
}

}  // namespace

// ---------------------------------------------------- window management --

Win Runtime::p_win_allocate(Env& env, std::size_t bytes,
                            std::size_t disp_unit, const Info& info,
                            const Comm& comm, void** base, bool shared) {
  MMPI_REQUIRE(disp_unit > 0, "disp_unit must be positive");
  // Window creation cost scales with the number of members (connection and
  // registration setup) — the quantity Fig. 3(a) measures.
  env.ctx().advance(profile().win_create_base +
                    static_cast<Time>(comm->size()) *
                        profile().win_create_per_rank);

  Win result;
  const net::Topology& t = topo();
  coll_run(
      env, comm, nullptr, &result, static_cast<long long>(bytes),
      static_cast<long long>(disp_unit), 16,
      [this, &t, shared, &info, &comm](CommImpl& cm) {
        auto win = std::make_shared<WinImpl>(alloc_win_id(), comm);
        win->info = info;
        win->is_shared = shared;
        const int n = cm.size();
        std::vector<std::size_t> sizes(static_cast<std::size_t>(n));
        std::vector<std::size_t> dus(static_cast<std::size_t>(n));
        for (const auto& p : cm.coll.parts) {
          const int cr = cm.rank_of_world(p.world);
          sizes[static_cast<std::size_t>(cr)] = static_cast<std::size_t>(p.a);
          dus[static_cast<std::size_t>(cr)] = static_cast<std::size_t>(p.b);
        }
        if (!shared) {
          win->owned.resize(static_cast<std::size_t>(n));
          for (int cr = 0; cr < n; ++cr) {
            auto& mem = win->owned[static_cast<std::size_t>(cr)];
            mem.assign(sizes[static_cast<std::size_t>(cr)], std::byte{0});
            win->segs[static_cast<std::size_t>(cr)] =
                Segment{mem.data(), mem.size(),
                        dus[static_cast<std::size_t>(cr)]};
          }
        } else {
          // One contiguous buffer per node, segments laid out in comm-rank
          // order and cache-line aligned (so the 16-byte basic-datatype
          // alignment Casper's segment binding needs always holds).
          win->shm_offset.assign(static_cast<std::size_t>(n), 0);
          std::map<int, std::size_t> node_total;
          std::vector<int> node_of_cr(static_cast<std::size_t>(n));
          for (int cr = 0; cr < n; ++cr) {
            const int node = t.node_of(cm.world_rank(cr));
            node_of_cr[static_cast<std::size_t>(cr)] = node;
            win->shm_offset[static_cast<std::size_t>(cr)] = node_total[node];
            node_total[node] +=
                align_up(sizes[static_cast<std::size_t>(cr)]);
          }
          std::map<int, std::shared_ptr<std::vector<std::byte>>> bufs;
          for (const auto& [node, total] : node_total) {
            bufs[node] = std::make_shared<std::vector<std::byte>>(
                total, std::byte{0});
          }
          for (int cr = 0; cr < n; ++cr) {
            auto& buf = bufs[node_of_cr[static_cast<std::size_t>(cr)]];
            win->segs[static_cast<std::size_t>(cr)] = Segment{
                buf->data() + win->shm_offset[static_cast<std::size_t>(cr)],
                sizes[static_cast<std::size_t>(cr)],
                dus[static_cast<std::size_t>(cr)]};
          }
          for (const auto& [node, buf] : bufs) {
            (void)node;
            win->node_buffers.push_back(buf);
          }
        }
        register_win(win);
        observe_win_register(*win);
        for (const auto& p : cm.coll.parts) {
          *static_cast<Win*>(p.dst) = win;
        }
      });
  *base = result->segs[static_cast<std::size_t>(
                           comm->rank_of_world(env.world_rank()))]
              .base;
  return result;
}

Win Runtime::p_win_create(Env& env, void* base, std::size_t bytes,
                          std::size_t disp_unit, const Info& info,
                          const Comm& comm) {
  MMPI_REQUIRE(disp_unit > 0, "disp_unit must be positive");
  env.ctx().advance(profile().win_create_base +
                    static_cast<Time>(comm->size()) *
                        profile().win_create_per_rank);
  Win result;
  coll_run(env, comm, base, &result, static_cast<long long>(bytes),
           static_cast<long long>(disp_unit), 16, [this, &comm, &info](
                                                      CommImpl& cm) {
    auto win = std::make_shared<WinImpl>(alloc_win_id(), comm);
    win->info = info;
    auto parts = cm.coll.parts;
    for (const auto& p : parts) {
      const int cr = cm.rank_of_world(p.world);
      auto& seg = win->segs[static_cast<std::size_t>(cr)];
      seg.base = static_cast<std::byte*>(const_cast<void*>(p.src));
      seg.size = static_cast<std::size_t>(p.a);
      seg.disp_unit = static_cast<std::size_t>(p.b);
    }
    register_win(win);
    observe_win_register(*win);
    for (const auto& p : parts) {
      *static_cast<Win*>(p.dst) = win;
    }
  });
  return result;
}

void Runtime::p_win_free(Env& env, Win& win) {
  MMPI_REQUIRE(win != nullptr, "win_free on null window");
  const int me = win->comm()->rank_of_world(env.world_rank());
  const auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(!my.fence_open || true, "unreachable");
  for (const auto& ts : my.tgt) {
    MMPI_REQUIRE(ts.lock_st == LockSt::None,
                 "win_free with an open passive epoch");
    MMPI_REQUIRE(ts.outstanding == 0 && ts.queued.empty(),
                 "win_free with incomplete operations");
  }
  p_barrier(env, win->comm());
  // Report once (from the lowest-ranked member) so observers drop their
  // reference copies exactly when the collective free completes.
  if (me == 0) observe_win_free(*win);
  win.reset();
}

Segment Runtime::p_shared_query(Env& env, const Win& win, int comm_rank) {
  (void)env;
  MMPI_REQUIRE(win->is_shared, "shared_query on a non-shared window");
  MMPI_REQUIRE(comm_rank >= 0 && comm_rank < win->comm()->size(),
               "shared_query: bad rank %d", comm_rank);
  return win->segs[static_cast<std::size_t>(comm_rank)];
}

// ------------------------------------------------------------ RMA issue --

void Runtime::p_rma(Env& env, const RmaArgs& a, const Win& win) {
  MMPI_REQUIRE(win != nullptr, "RMA on null window");
  const int me = win->comm()->rank_of_world(env.world_rank());
  MMPI_REQUIRE(me >= 0, "RMA from non-member rank %d", env.world_rank());
  MMPI_REQUIRE(a.target >= 0 && a.target < win->comm()->size(),
               "RMA: bad target %d", a.target);
  auto& my = win->ost[static_cast<std::size_t>(me)];
  auto& ots = my.tgt[static_cast<std::size_t>(a.target)];

  const bool in_epoch = my.fence_open || ots.lock_st != LockSt::None ||
                        group_contains(my.access_group, a.target);
  MMPI_REQUIRE(in_epoch, "RMA op issued outside any epoch (win %d, %d->%d)",
               win->id(), me, a.target);

  const Segment& seg = win->segs[static_cast<std::size_t>(a.target)];
  const std::size_t disp_bytes = a.tdisp * seg.disp_unit;
  MMPI_REQUIRE(disp_bytes + span_bytes(a.tcount, a.tdt) <= seg.size,
               "RMA out of bounds: disp %zu + span %zu > size %zu",
               disp_bytes, span_bytes(a.tcount, a.tdt), seg.size);
  MMPI_REQUIRE(data_bytes(a.tcount, a.tdt) ==
                   (a.kind == OpKind::Get
                        ? data_bytes(a.rcount, a.rdt)
                        : data_bytes(a.ocount, a.odt)),
               "RMA origin/target data size mismatch");

  if (obs::on(recorder())) {
    recorder()->trace().instant(env.world_rank(), obs::Ev::OpIssued, env.now(),
                              static_cast<std::uint64_t>(a.kind),
                              static_cast<std::uint64_t>(
                                  win->comm()->world_rank(a.target)),
                              data_bytes(a.tcount, a.tdt));
    ++recorder()->metrics().counter("ops.issued");
  }

  auto& rio = io_[static_cast<std::size_t>(env.world_rank())];
  OpDesc d;
  d.kind = a.kind;
  d.op = a.op;
  d.cross_numa = rio.next_op_cross_numa;
  rio.next_op_cross_numa = false;
  d.tdisp_bytes = disp_bytes;
  d.tcount = a.tcount;
  d.tdt = a.tdt;
  d.origin_result = a.result_addr;
  d.ocount = a.rcount;
  d.odt = a.rdt;
  d.payload.bind(&pool_);
  switch (a.kind) {
    case OpKind::Put:
    case OpKind::Acc:
    case OpKind::GetAcc:
    case OpKind::Fao:
      pack_into(d.payload, a.origin_addr, a.ocount, a.odt);
      break;
    case OpKind::Cas: {
      const std::size_t es = a.tdt.elem_size();
      d.payload.resize(2 * es);
      std::memcpy(d.payload.data(), a.origin_addr, es);
      std::memcpy(d.payload.data() + es, a.origin_addr2, es);
      break;
    }
    case OpKind::Get:
    case OpKind::LockReq:
    case OpKind::LockRelease:
      break;
  }

  // Self ops: direct load/store access, never delayed (MPI guarantee; the
  // paper relies on this for its self-lock handling). Exception: when a
  // progress agent (thread/interrupt) processes incoming operations
  // concurrently with this rank, accumulate-class self ops must go through
  // the same agent to preserve MPI's accumulate atomicity.
  const bool self_acc_needs_agent =
      cfg_.progress.kind != progress::Kind::None &&
      (a.kind == OpKind::Acc || a.kind == OpKind::GetAcc ||
       a.kind == OpKind::Fao || a.kind == OpKind::Cas);
  if (win->comm()->world_rank(a.target) == env.world_rank() &&
      !self_acc_needs_agent) {
    AmOp op;
    op.kind = d.kind;
    op.op = d.op;
    op.origin_world = env.world_rank();
    op.target_world = env.world_rank();
    op.win = win.get();
    op.origin_comm_rank = me;
    op.target_comm_rank = a.target;
    op.target_disp = d.tdisp_bytes;
    op.target_count = d.tcount;
    op.target_dt = d.tdt;
    op.payload = std::move(d.payload);
    op.origin_result = d.origin_result;
    op.origin_count = d.ocount;
    op.origin_dt = d.odt;
    exec_self(env, op);
    return;
  }

  // Pay the injection overhead BEFORE examining the delayed-lock state:
  // advancing the clock yields to the scheduler, and the lock grant event
  // may fire during the yield (draining the queue); the branch below must
  // see the post-yield state or a queued op would be stranded forever.
  env.ctx().advance(profile().op_inject);

  // Delayed lock acquisition: under a passive epoch, operations issued
  // before the grant are queued; the request itself is triggered by the
  // first operation (not by MPI_Win_lock) — matching MPICH-family behaviour.
  if (ots.lock_st == LockSt::Intent) {
    send_lock_request(env, *win, a.target);
    ots.queued.push_back(std::move(d));
    return;
  }
  if (ots.lock_st == LockSt::Requested) {
    ots.queued.push_back(std::move(d));
    return;
  }

  inject_op(*win, me, a.target, std::move(d), env.now());
}

// ------------------------------------------------------- fence epochs ----

void Runtime::p_win_fence(Env& env, unsigned mode_assert, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  if (my.fence_open && !(mode_assert & kModeNoPrecede)) {
    // Complete my outstanding ops; incoming ops complete because every rank
    // polls while it waits inside the following barrier.
    for (int t = 0; t < win->comm()->size(); ++t) {
      flush_target(env, t, *win, /*force_lock=*/false);
    }
  }
  p_barrier(env, win->comm());
  my.fence_open = !(mode_assert & kModeNoSucceed);
  my.epoch = my.fence_open ? EpochKind::Fence : EpochKind::None;
  if (my.fence_open && obs::on(recorder())) {
    recorder()->trace().instant(env.world_rank(), obs::Ev::EpochBegin,
                              env.now(), static_cast<std::uint64_t>(my.epoch),
                              static_cast<std::uint64_t>(win->id()));
  }
  observe_sync(*win, env.world_rank(), SyncKind::Fence, -1, env.now());
  if (my.fence_open) {
    observe_epoch_begin(*win, env.world_rank(), EpochEv::Fence, -1, env.now());
  }
}

// -------------------------------------------------------- PSCW epochs ----

void Runtime::p_win_post(Env& env, const Group& group, unsigned mode_assert,
                         const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(my.exposure_group.empty(), "nested win_post");
  my.pscw_assert = mode_assert;
  for (int cr : group.ranks()) {  // group ranks are comm ranks of the window
    MMPI_REQUIRE(cr >= 0 && cr < win->comm()->size(),
                 "win_post: rank %d not in window", cr);
    my.exposure_group.push_back(cr);
  }
  env.ctx().advance(profile().op_inject *
                    static_cast<Time>(group.size() ? group.size() : 1));
  // Notify each origin that my exposure epoch is open.
  WinImpl* w = win.get();
  for (int cr : my.exposure_group) {
    const int ow = win->comm()->world_rank(cr);
    const Time t_arr = env.now() + wire_latency(env.world_rank(), ow, 8);
    post_event(t_arr, ow, [this, w, cr, t_arr]() {
      ++w->ost[static_cast<std::size_t>(cr)].posts_seen;
      engine_->wake(w->comm()->world_rank(cr), t_arr);
    });
  }
}

void Runtime::p_win_start(Env& env, const Group& group, unsigned mode_assert,
                          const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(my.access_group.empty(), "nested win_start");
  for (int cr : group.ranks()) {  // group ranks are comm ranks of the window
    MMPI_REQUIRE(cr >= 0 && cr < win->comm()->size(),
                 "win_start: rank %d not in window", cr);
    my.access_group.push_back(cr);
  }
  my.epoch = EpochKind::Pscw;
  if (obs::on(recorder())) {
    recorder()->trace().instant(env.world_rank(), obs::Ev::EpochBegin,
                              env.now(), static_cast<std::uint64_t>(my.epoch),
                              static_cast<std::uint64_t>(win->id()));
  }
  if (!(mode_assert & kModeNoCheck)) {
    const int need = static_cast<int>(my.access_group.size());
    progress_wait(env, [&my, need]() { return my.posts_seen >= need; });
    my.posts_seen -= need;
  }
  observe_epoch_begin(*win, env.world_rank(), EpochEv::Start, -1, env.now());
}

void Runtime::p_win_complete(Env& env, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(!my.access_group.empty(), "win_complete without win_start");
  for (int t : my.access_group) {
    flush_target(env, t, *win, /*force_lock=*/false);
  }
  WinImpl* w = win.get();
  for (int t : my.access_group) {
    const int tw = win->comm()->world_rank(t);
    const Time t_arr = env.now() + wire_latency(env.world_rank(), tw, 8);
    post_event(t_arr, tw, [this, w, t, t_arr]() {
      ++w->ost[static_cast<std::size_t>(t)].completes_seen;
      engine_->wake(w->comm()->world_rank(t), t_arr);
    });
  }
  my.access_group.clear();
  if (my.epoch == EpochKind::Pscw) my.epoch = EpochKind::None;
  observe_sync(*win, env.world_rank(), SyncKind::Complete, -1, env.now());
}

void Runtime::p_win_wait(Env& env, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(!my.exposure_group.empty(), "win_wait without win_post");
  const int need = static_cast<int>(my.exposure_group.size());
  progress_wait(env, [&my, need]() { return my.completes_seen >= need; });
  my.completes_seen -= need;
  my.exposure_group.clear();
  observe_sync(*win, env.world_rank(), SyncKind::Wait, -1, env.now());
}

// ----------------------------------------------------- passive epochs ----

void Runtime::p_win_lock(Env& env, LockType type, int target,
                         unsigned mode_assert, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  MMPI_REQUIRE(target >= 0 && target < win->comm()->size(),
               "win_lock: bad target %d", target);
  auto& my = win->ost[static_cast<std::size_t>(me)];
  auto& ots = my.tgt[static_cast<std::size_t>(target)];
  MMPI_REQUIRE(ots.lock_st == LockSt::None, "nested lock to target %d",
               target);
  MMPI_REQUIRE(my.epoch == EpochKind::None || my.epoch == EpochKind::Lock,
               "win_lock while a different epoch type is active");
  env.ctx().advance(profile().op_inject);
  my.epoch = EpochKind::Lock;
  if (obs::on(recorder())) {
    recorder()->trace().instant(env.world_rank(), obs::Ev::EpochBegin,
                              env.now(), static_cast<std::uint64_t>(my.epoch),
                              static_cast<std::uint64_t>(win->id()));
  }
  observe_epoch_begin(
      *win, env.world_rank(),
      type == LockType::Exclusive ? EpochEv::LockExcl : EpochEv::Lock, target,
      env.now());
  ots.lock_type = type;
  ots.lock_assert = mode_assert;

  if (win->comm()->world_rank(target) == env.world_rank()) {
    // Self locks are granted synchronously (never delayed): required so the
    // application can use load/store on its own window memory.
    auto& tl = win->locks[static_cast<std::size_t>(target)];
    if (tl.grantable(type, me) && tl.pending.empty()) {
      tl.grant(type, me);
      ots.lock_st = LockSt::Granted;
    } else {
      tl.pending.push_back(TargetLockState::Pending{me, type});
      progress_wait(env,
                    [&ots]() { return ots.lock_st == LockSt::Granted; });
    }
    return;
  }
  ots.lock_st = LockSt::Intent;
}

void Runtime::p_win_unlock(Env& env, int target, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  auto& ots = my.tgt[static_cast<std::size_t>(target)];
  MMPI_REQUIRE(ots.lock_st != LockSt::None, "unlock without lock");

  if (win->comm()->world_rank(target) == env.world_rank()) {
    MMPI_REQUIRE(ots.lock_st == LockSt::Granted, "self lock state corrupt");
    lockmgr_release(*win, target, me, ots.lock_type, env.now(),
                    /*notify_origin=*/false);
    ots.lock_st = LockSt::None;
  } else {
    flush_target(env, target, *win, /*force_lock=*/false);
    if (ots.lock_st == LockSt::Granted) {
      // Send the release and wait for its remote completion.
      ots.release_pending = true;
      const int tw = win->comm()->world_rank(target);
      const Time t_arr = env.now() + wire_latency(env.world_rank(), tw, 8);
      WinImpl* w = win.get();
      const LockType type = ots.lock_type;
      if (profile().hw_lock) {
        post_event(t_arr, tw, [this, w, target, me, type, t_arr]() {
          lockmgr_release(*w, target, me, type, t_arr,
                          /*notify_origin=*/true);
        });
      } else {
        AmOp op;
        op.kind = OpKind::LockRelease;
        op.opid = make_opid();
        op.origin_world = env.world_rank();
        op.target_world = tw;
        op.win = w;
        op.origin_comm_rank = me;
        op.target_comm_rank = target;
        op.lock_type = type;
        post_event(t_arr, tw, [this, op = std::move(op), t_arr]() mutable {
          deliver_am(std::move(op), t_arr);
        });
      }
      progress_wait(env, [&ots]() { return !ots.release_pending; });
      ots.lock_st = LockSt::None;
    } else {
      // The lock was never actually requested (no operations issued): the
      // epoch completes with no remote interaction, as real MPI
      // implementations optimize this case.
      ots.lock_st = LockSt::None;
    }
  }

  bool any_locked = false;
  for (const auto& ts : my.tgt) {
    if (ts.lock_st != LockSt::None) any_locked = true;
  }
  if (!any_locked && my.epoch == EpochKind::Lock) my.epoch = EpochKind::None;
  observe_sync(*win, env.world_rank(), SyncKind::Unlock, target, env.now());
}

void Runtime::p_win_lock_all(Env& env, unsigned mode_assert, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(my.epoch == EpochKind::None,
               "win_lock_all while another epoch is active");
  env.ctx().advance(profile().op_inject);
  my.epoch = EpochKind::LockAll;
  if (obs::on(recorder())) {
    recorder()->trace().instant(env.world_rank(), obs::Ev::EpochBegin,
                              env.now(), static_cast<std::uint64_t>(my.epoch),
                              static_cast<std::uint64_t>(win->id()));
  }
  observe_epoch_begin(*win, env.world_rank(), EpochEv::LockAll, -1,
                      env.now());
  for (int t = 0; t < win->comm()->size(); ++t) {
    auto& ots = my.tgt[static_cast<std::size_t>(t)];
    MMPI_REQUIRE(ots.lock_st == LockSt::None, "lock_all over existing lock");
    ots.lock_type = LockType::Shared;
    ots.lock_assert = mode_assert;
    if (win->comm()->world_rank(t) == env.world_rank()) {
      auto& tl = win->locks[static_cast<std::size_t>(t)];
      if (tl.grantable(LockType::Shared, me) && tl.pending.empty()) {
        tl.grant(LockType::Shared, me);
        ots.lock_st = LockSt::Granted;
      } else {
        tl.pending.push_back(
            TargetLockState::Pending{me, LockType::Shared});
        progress_wait(env,
                      [&ots]() { return ots.lock_st == LockSt::Granted; });
      }
    } else {
      ots.lock_st = LockSt::Intent;
    }
  }
}

void Runtime::p_win_unlock_all(Env& env, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(my.epoch == EpochKind::LockAll,
               "win_unlock_all without win_lock_all");
  my.epoch = EpochKind::Lock;  // let p_win_unlock's bookkeeping run
  for (int t = 0; t < win->comm()->size(); ++t) {
    if (my.tgt[static_cast<std::size_t>(t)].lock_st != LockSt::None) {
      p_win_unlock(env, t, win);
    }
  }
  my.epoch = EpochKind::None;
  observe_sync(*win, env.world_rank(), SyncKind::UnlockAll, -1, env.now());
}

// ------------------------------------------------------------- flushes ----

void Runtime::flush_target(Env& env, int target, WinImpl& win,
                           bool force_lock) {
  const int me = win.comm()->rank_of_world(env.world_rank());
  auto& ots = win.ost[static_cast<std::size_t>(me)]
                  .tgt[static_cast<std::size_t>(target)];
  if (ots.lock_st == LockSt::Intent) {
    if (ots.queued.empty() && ots.outstanding == 0 && !force_lock) {
      return;  // nothing to complete, no acquisition needed
    }
    send_lock_request(env, win, target);
  }
  progress_wait(env, [&ots]() {
    const bool lock_ok = ots.lock_st == LockSt::None ||
                         ots.lock_st == LockSt::Granted ||
                         ots.lock_st == LockSt::Intent;
    return lock_ok && ots.queued.empty() && ots.outstanding == 0;
  });
}

void Runtime::p_win_flush(Env& env, int target, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(my.tgt[static_cast<std::size_t>(target)].lock_st !=
                   LockSt::None,
               "win_flush outside a passive epoch");
  // force_lock=false: a flush with no outstanding operations is a no-op (a
  // delayed lock that was never used stays unacquired, as in MPICH); when
  // operations were issued, the acquisition was already triggered by them.
  flush_target(env, target, *win, /*force_lock=*/false);
  observe_sync(*win, env.world_rank(), SyncKind::Flush, target, env.now());
}

void Runtime::p_win_flush_all(Env& env, const Win& win) {
  const int me = win->comm()->rank_of_world(env.world_rank());
  auto& my = win->ost[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(my.epoch == EpochKind::Lock || my.epoch == EpochKind::LockAll,
               "win_flush_all outside a passive epoch");
  for (int t = 0; t < win->comm()->size(); ++t) {
    if (my.tgt[static_cast<std::size_t>(t)].lock_st != LockSt::None) {
      flush_target(env, t, *win, /*force_lock=*/false);
    }
  }
  observe_sync(*win, env.world_rank(), SyncKind::FlushAll, -1, env.now());
}

void Runtime::p_win_flush_local(Env& env, int target, const Win& win) {
  // Origin buffers are copied at issue time (buffered injection), so local
  // completion is immediate; only a small bookkeeping cost applies.
  (void)target;
  (void)win;
  env.ctx().advance(sim::ns(50));
}

void Runtime::p_win_flush_local_all(Env& env, const Win& win) {
  (void)win;
  env.ctx().advance(sim::ns(50));
}

void Runtime::p_win_sync(Env& env, const Win& win) {
  (void)win;
  env.ctx().advance(profile().win_sync_cost);
}

}  // namespace casper::mpi
