#include "mpi/env.hpp"

#include <cstring>

#include "mpi/check.hpp"
#include "mpi/runtime.hpp"

namespace casper::mpi {

Layer& Env::layer() { return rt_->layer(); }

void Env::prologue() { rt_->call_prologue(*this); }

void Env::observe_rma_issue(OpKind kind, AccOp op, int target,
                            std::size_t tdisp, int tcount, const Datatype& tdt,
                            const Win& win) {
  AmOp aop;
  aop.kind = kind;
  aop.op = op;
  aop.origin_world = world_rank();
  aop.target_world = win->comm()->world_rank(target);
  aop.win = win.get();
  aop.origin_comm_rank = win->comm()->rank_of_world(world_rank());
  aop.target_comm_rank = target;
  aop.target_disp =
      tdisp * win->segs[static_cast<std::size_t>(target)].disp_unit;
  aop.target_count = tcount;
  aop.target_dt = tdt;
  rt_->observe_issue(aop, now());
}

void Env::local_store(const void* src, std::size_t offset, std::size_t len,
                      const Win& win) {
  const int me = win->comm()->rank_of_world(world_rank());
  auto& seg = win->segs[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(offset + len <= seg.size,
               "local_store outside own segment (off=%zu len=%zu size=%zu)",
               offset, len, seg.size);
  std::memcpy(seg.base + offset, src, len);
  rt_->observe_local(*win, me, offset, len, /*is_store=*/true, now());
}

void Env::local_load(void* dst, std::size_t offset, std::size_t len,
                     const Win& win) {
  const int me = win->comm()->rank_of_world(world_rank());
  auto& seg = win->segs[static_cast<std::size_t>(me)];
  MMPI_REQUIRE(offset + len <= seg.size,
               "local_load outside own segment (off=%zu len=%zu size=%zu)",
               offset, len, seg.size);
  std::memcpy(dst, seg.base + offset, len);
  rt_->observe_local(*win, me, offset, len, /*is_store=*/false, now());
}

void Env::compute(sim::Time d) {
  const sim::Time t0 = ctx_->now();
  ctx_->compute(d);
  if (obs::on(rt_->recorder())) {
    rt_->recorder()->trace().span(world_rank(), obs::Ev::Compute, t0,
                                ctx_->now() - t0);
  }
}

Comm Env::world() { return layer().comm_world(*this); }

Comm Env::comm_split(const Comm& c, int color, int key) {
  prologue();
  return layer().comm_split(*this, c, color, key);
}

Comm Env::comm_split_shared(const Comm& c) {
  prologue();
  const int node = rt_->topo().node_of(world_rank());
  return layer().comm_split(*this, c, node, world_rank());
}

Comm Env::comm_dup(const Comm& c) {
  prologue();
  return layer().comm_dup(*this, c);
}

void Env::send(const void* buf, int count, Dt dt, int dest, int tag,
               const Comm& c) {
  prologue();
  layer().send(*this, buf, count, dt, dest, tag, c);
}

Status Env::recv(void* buf, int count, Dt dt, int src, int tag,
                 const Comm& c) {
  prologue();
  return layer().recv(*this, buf, count, dt, src, tag, c);
}

Request Env::isend(const void* buf, int count, Dt dt, int dest, int tag,
                   const Comm& c) {
  prologue();
  return layer().isend(*this, buf, count, dt, dest, tag, c);
}

Request Env::irecv(void* buf, int count, Dt dt, int src, int tag,
                   const Comm& c) {
  prologue();
  return layer().irecv(*this, buf, count, dt, src, tag, c);
}

Status Env::wait(const Request& req) {
  prologue();
  return layer().wait(*this, req);
}

bool Env::test(const Request& req) {
  prologue();
  return layer().test(*this, req);
}

void Env::waitall(Request* reqs, int n) {
  prologue();
  layer().waitall(*this, reqs, n);
}

void Env::barrier(const Comm& c) {
  prologue();
  layer().barrier(*this, c);
}

void Env::bcast(void* buf, int count, Dt dt, int root, const Comm& c) {
  prologue();
  layer().bcast(*this, buf, count, dt, root, c);
}

void Env::reduce(const void* sendbuf, void* recvbuf, int count, Dt dt,
                 AccOp op, int root, const Comm& c) {
  prologue();
  layer().reduce(*this, sendbuf, recvbuf, count, dt, op, root, c);
}

void Env::allreduce(const void* sendbuf, void* recvbuf, int count, Dt dt,
                    AccOp op, const Comm& c) {
  prologue();
  layer().allreduce(*this, sendbuf, recvbuf, count, dt, op, c);
}

void Env::allgather(const void* sendbuf, int count, Dt dt, void* recvbuf,
                    const Comm& c) {
  prologue();
  layer().allgather(*this, sendbuf, count, dt, recvbuf, c);
}

void Env::alltoall(const void* sendbuf, int count, Dt dt, void* recvbuf,
                   const Comm& c) {
  prologue();
  layer().alltoall(*this, sendbuf, count, dt, recvbuf, c);
}

void Env::gather(const void* sendbuf, int count, Dt dt, void* recvbuf,
                 int root, const Comm& c) {
  prologue();
  layer().gather(*this, sendbuf, count, dt, recvbuf, root, c);
}

void Env::scatter(const void* sendbuf, int count, Dt dt, void* recvbuf,
                  int root, const Comm& c) {
  prologue();
  layer().scatter(*this, sendbuf, count, dt, recvbuf, root, c);
}

Win Env::win_allocate(std::size_t bytes, std::size_t disp_unit,
                      const Info& info, const Comm& c, void** base) {
  prologue();
  return layer().win_allocate(*this, bytes, disp_unit, info, c, base);
}

Win Env::win_allocate_shared(std::size_t bytes, std::size_t disp_unit,
                             const Info& info, const Comm& c, void** base) {
  prologue();
  return layer().win_allocate_shared(*this, bytes, disp_unit, info, c, base);
}

Win Env::win_create(void* base, std::size_t bytes, std::size_t disp_unit,
                    const Info& info, const Comm& c) {
  prologue();
  return layer().win_create(*this, base, bytes, disp_unit, info, c);
}

void Env::win_free(Win& win) {
  prologue();
  layer().win_free(*this, win);
}

Segment Env::win_shared_query(const Win& win, int comm_rank) {
  return rt_->p_shared_query(*this, win, comm_rank);
}

void Env::put(const void* origin, int ocount, Datatype odt, int target,
              std::size_t tdisp, int tcount, Datatype tdt, const Win& win) {
  prologue();
  if (kRaceObsCompiled && rt_->has_observers()) {
    observe_rma_issue(OpKind::Put, AccOp::Replace, target, tdisp, tcount, tdt,
                      win);
  }
  layer().put(*this, origin, ocount, odt, target, tdisp, tcount, tdt, win);
}

void Env::get(void* origin, int ocount, Datatype odt, int target,
              std::size_t tdisp, int tcount, Datatype tdt, const Win& win) {
  prologue();
  if (kRaceObsCompiled && rt_->has_observers()) {
    observe_rma_issue(OpKind::Get, AccOp::Replace, target, tdisp, tcount, tdt,
                      win);
  }
  layer().get(*this, origin, ocount, odt, target, tdisp, tcount, tdt, win);
}

void Env::accumulate(const void* origin, int ocount, Datatype odt, int target,
                     std::size_t tdisp, int tcount, Datatype tdt, AccOp op,
                     const Win& win) {
  prologue();
  if (kRaceObsCompiled && rt_->has_observers()) {
    observe_rma_issue(OpKind::Acc, op, target, tdisp, tcount, tdt, win);
  }
  layer().accumulate(*this, origin, ocount, odt, target, tdisp, tcount, tdt,
                     op, win);
}

void Env::get_accumulate(const void* origin, int ocount, Datatype odt,
                         void* result, int rcount, Datatype rdt, int target,
                         std::size_t tdisp, int tcount, Datatype tdt,
                         AccOp op, const Win& win) {
  prologue();
  if (kRaceObsCompiled && rt_->has_observers()) {
    observe_rma_issue(OpKind::GetAcc, op, target, tdisp, tcount, tdt, win);
  }
  layer().get_accumulate(*this, origin, ocount, odt, result, rcount, rdt,
                         target, tdisp, tcount, tdt, op, win);
}

void Env::fetch_and_op(const void* value, void* result, Dt dt, int target,
                       std::size_t tdisp, AccOp op, const Win& win) {
  prologue();
  if (kRaceObsCompiled && rt_->has_observers()) {
    observe_rma_issue(OpKind::Fao, op, target, tdisp, 1, contig(dt), win);
  }
  layer().fetch_and_op(*this, value, result, dt, target, tdisp, op, win);
}

void Env::compare_and_swap(const void* expected, const void* desired,
                           void* result, Dt dt, int target, std::size_t tdisp,
                           const Win& win) {
  prologue();
  if (kRaceObsCompiled && rt_->has_observers()) {
    observe_rma_issue(OpKind::Cas, AccOp::Replace, target, tdisp, 1,
                      contig(dt), win);
  }
  layer().compare_and_swap(*this, expected, desired, result, dt, target,
                           tdisp, win);
}

void Env::win_fence(unsigned mode_assert, const Win& win) {
  prologue();
  layer().win_fence(*this, mode_assert, win);
}

void Env::win_post(const Group& group, unsigned mode_assert, const Win& win) {
  prologue();
  layer().win_post(*this, group, mode_assert, win);
}

void Env::win_start(const Group& group, unsigned mode_assert,
                    const Win& win) {
  prologue();
  layer().win_start(*this, group, mode_assert, win);
}

void Env::win_complete(const Win& win) {
  prologue();
  layer().win_complete(*this, win);
}

void Env::win_wait(const Win& win) {
  prologue();
  layer().win_wait(*this, win);
}

void Env::win_lock(LockType type, int target, unsigned mode_assert,
                   const Win& win) {
  prologue();
  layer().win_lock(*this, type, target, mode_assert, win);
}

void Env::win_unlock(int target, const Win& win) {
  prologue();
  layer().win_unlock(*this, target, win);
}

void Env::win_lock_all(unsigned mode_assert, const Win& win) {
  prologue();
  layer().win_lock_all(*this, mode_assert, win);
}

void Env::win_unlock_all(const Win& win) {
  prologue();
  layer().win_unlock_all(*this, win);
}

void Env::win_flush(int target, const Win& win) {
  prologue();
  layer().win_flush(*this, target, win);
}

void Env::win_flush_all(const Win& win) {
  prologue();
  layer().win_flush_all(*this, win);
}

void Env::win_flush_local(int target, const Win& win) {
  prologue();
  layer().win_flush_local(*this, target, win);
}

void Env::win_flush_local_all(const Win& win) {
  prologue();
  layer().win_flush_local_all(*this, win);
}

void Env::win_sync(const Win& win) {
  prologue();
  layer().win_sync(*this, win);
}

}  // namespace casper::mpi
