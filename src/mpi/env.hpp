// Per-rank MPI environment: the API application code programs against.
//
// Every method forwards through the installed interception Layer (PMPI
// model), after a call prologue that charges thread-multiple overhead when a
// background progress thread is configured (as real multithreaded MPI does).
#pragma once

#include <cstddef>
#include <functional>

#include "mpi/am.hpp"
#include "mpi/comm.hpp"
#include "mpi/layer.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "mpi/win.hpp"
#include "sim/engine.hpp"

namespace casper::mpi {

class Runtime;

/// Handle to the MPI world from one rank's perspective; created by the
/// runtime on the rank's thread and passed to the user main function.
class Env {
 public:
  Env(Runtime& rt, sim::Context& ctx) : rt_(&rt), ctx_(&ctx) {}

  Runtime& runtime() const { return *rt_; }
  sim::Context& ctx() const { return *ctx_; }

  /// World rank / size of the *underlying* simulation (Casper's ghost ranks
  /// included). Application code normally uses comm-relative ranks.
  int world_rank() const { return ctx_->rank(); }
  int world_size() const { return ctx_->size(); }

  sim::Time now() const { return ctx_->now(); }
  /// Model application computation (busy CPU) for `d` virtual time. The
  /// actually-elapsed span can exceed `d` when an interrupt-progress handler
  /// steals cycles; the traced Compute span covers the elapsed interval.
  void compute(sim::Time d);

  /// The world communicator as seen by the application (Casper substitutes
  /// COMM_USER_WORLD here).
  Comm world();

  int rank(const Comm& c) const { return c->rank_of_world(world_rank()); }
  int size(const Comm& c) const { return c->size(); }

  // --- communicator management --------------------------------------------
  Comm comm_split(const Comm& c, int color, int key);
  /// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per node.
  Comm comm_split_shared(const Comm& c);
  Comm comm_dup(const Comm& c);

  // --- point-to-point ------------------------------------------------------
  void send(const void* buf, int count, Dt dt, int dest, int tag,
            const Comm& c);
  Status recv(void* buf, int count, Dt dt, int src, int tag, const Comm& c);
  Request isend(const void* buf, int count, Dt dt, int dest, int tag,
                const Comm& c);
  Request irecv(void* buf, int count, Dt dt, int src, int tag, const Comm& c);
  Status wait(const Request& req);
  bool test(const Request& req);
  void waitall(Request* reqs, int n);

  // --- collectives ---------------------------------------------------------
  void barrier(const Comm& c);
  void bcast(void* buf, int count, Dt dt, int root, const Comm& c);
  void reduce(const void* sendbuf, void* recvbuf, int count, Dt dt, AccOp op,
              int root, const Comm& c);
  void allreduce(const void* sendbuf, void* recvbuf, int count, Dt dt,
                 AccOp op, const Comm& c);
  void allgather(const void* sendbuf, int count, Dt dt, void* recvbuf,
                 const Comm& c);
  void alltoall(const void* sendbuf, int count, Dt dt, void* recvbuf,
                const Comm& c);
  void gather(const void* sendbuf, int count, Dt dt, void* recvbuf, int root,
              const Comm& c);
  void scatter(const void* sendbuf, int count, Dt dt, void* recvbuf,
               int root, const Comm& c);

  // --- window management ---------------------------------------------------
  Win win_allocate(std::size_t bytes, std::size_t disp_unit, const Info& info,
                   const Comm& c, void** base);
  Win win_allocate_shared(std::size_t bytes, std::size_t disp_unit,
                          const Info& info, const Comm& c, void** base);
  Win win_create(void* base, std::size_t bytes, std::size_t disp_unit,
                 const Info& info, const Comm& c);
  void win_free(Win& win);
  /// Query another node-local rank's segment in an allocate-shared window.
  Segment win_shared_query(const Win& win, int comm_rank);

  // --- RMA communication ----------------------------------------------------
  void put(const void* origin, int ocount, Datatype odt, int target,
           std::size_t tdisp, int tcount, Datatype tdt, const Win& win);
  void get(void* origin, int ocount, Datatype odt, int target,
           std::size_t tdisp, int tcount, Datatype tdt, const Win& win);
  void accumulate(const void* origin, int ocount, Datatype odt, int target,
                  std::size_t tdisp, int tcount, Datatype tdt, AccOp op,
                  const Win& win);
  void get_accumulate(const void* origin, int ocount, Datatype odt,
                      void* result, int rcount, Datatype rdt, int target,
                      std::size_t tdisp, int tcount, Datatype tdt, AccOp op,
                      const Win& win);
  void fetch_and_op(const void* value, void* result, Dt dt, int target,
                    std::size_t tdisp, AccOp op, const Win& win);
  void compare_and_swap(const void* expected, const void* desired,
                        void* result, Dt dt, int target, std::size_t tdisp,
                        const Win& win);

  // --- local window access ---------------------------------------------------
  // Direct load/store on THIS rank's own segment of `win` (byte offsets, not
  // disp units). Models the program-order non-RMA accesses MPI lets an
  // application make to its exposed memory; zero virtual-time cost. Reported
  // to conformance observers so the race analyzer can check them against
  // concurrent RMA (the load/store-vs-RMA conflict class).
  void local_store(const void* src, std::size_t offset, std::size_t len,
                   const Win& win);
  void local_load(void* dst, std::size_t offset, std::size_t len,
                  const Win& win);

  // Contiguous-double conveniences (the common case in the paper's benches).
  // `tdisp` is in units of the target's disp_unit, as in the general forms.
  void put(const double* origin, int n, int target, std::size_t tdisp,
           const Win& win) {
    put(origin, n, contig(Dt::Double), target, tdisp, n, contig(Dt::Double),
        win);
  }
  void get(double* origin, int n, int target, std::size_t tdisp,
           const Win& win) {
    get(origin, n, contig(Dt::Double), target, tdisp, n, contig(Dt::Double),
        win);
  }
  void accumulate(const double* origin, int n, int target, std::size_t tdisp,
                  AccOp op, const Win& win) {
    accumulate(origin, n, contig(Dt::Double), target, tdisp, n,
               contig(Dt::Double), op, win);
  }

  // --- RMA synchronization ---------------------------------------------------
  void win_fence(unsigned mode_assert, const Win& win);
  void win_post(const Group& group, unsigned mode_assert, const Win& win);
  void win_start(const Group& group, unsigned mode_assert, const Win& win);
  void win_complete(const Win& win);
  void win_wait(const Win& win);
  void win_lock(LockType type, int target, unsigned mode_assert,
                const Win& win);
  void win_unlock(int target, const Win& win);
  void win_lock_all(unsigned mode_assert, const Win& win);
  void win_unlock_all(const Win& win);
  void win_flush(int target, const Win& win);
  void win_flush_all(const Win& win);
  void win_flush_local(int target, const Win& win);
  void win_flush_local_all(const Win& win);
  void win_sync(const Win& win);

 private:
  Layer& layer();
  void prologue();
  /// Report a program-order RMA issue to conformance observers BEFORE the
  /// interception layer sees (and possibly redirects) it. Defined out of line
  /// so env.hpp needs no Runtime definition; callers gate on kRaceObsCompiled
  /// so the call folds away under -DCASPER_RACE=0.
  void observe_rma_issue(OpKind kind, AccOp op, int target, std::size_t tdisp,
                         int tcount, const Datatype& tdt, const Win& win);

  Runtime* rt_;
  sim::Context* ctx_;
};

}  // namespace casper::mpi
