// RMA window state: memory segments, epochs, target-side lock manager,
// origin-side completion tracking, and in-flight software-op records used to
// detect atomicity violations (the hazard Casper's static binding prevents).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mpi/am.hpp"
#include "mpi/comm.hpp"
#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace casper::mpi {

class Runtime;

/// One rank's exposed memory in a window.
struct Segment {
  std::byte* base = nullptr;
  std::size_t size = 0;
  std::size_t disp_unit = 1;
};

/// Which epoch a rank currently has open on a window (origin side).
enum class EpochKind : std::uint8_t { None, Fence, Pscw, Lock, LockAll };

/// Target-side lock manager state for one target rank of a window.
struct TargetLockState {
  int excl_holder = -1;  ///< comm rank holding the exclusive lock, or -1
  int shared_count = 0;  ///< number of granted shared locks
  struct Pending {
    int origin;  ///< comm rank
    LockType type;
  };
  std::deque<Pending> pending;

  bool grantable(LockType t, int origin) const {
    (void)origin;
    if (excl_holder >= 0) return false;
    if (t == LockType::Exclusive) return shared_count == 0;
    return true;  // shared is compatible with shared
  }
  void grant(LockType t, int origin) {
    if (t == LockType::Exclusive) {
      excl_holder = origin;
    } else {
      ++shared_count;
    }
  }
  void release(LockType t, int origin) {
    if (t == LockType::Exclusive) {
      excl_holder = (excl_holder == origin) ? -1 : excl_holder;
    } else {
      --shared_count;
    }
  }
};

/// Origin-side per-target state within an epoch.
struct OriginTargetState {
  enum class LockSt : std::uint8_t { None, Intent, Requested, Granted };
  LockSt lock_st = LockSt::None;
  LockType lock_type = LockType::Shared;
  unsigned lock_assert = 0;
  bool release_pending = false;  ///< unlock sent, release-ack not yet back
  int outstanding = 0;  ///< RMA ops issued but not remotely acknowledged
  /// Ops queued origin-side while the (delayed) lock is not yet granted.
  std::vector<OpDesc> queued;
};

/// One rank's origin-side view of a window.
struct WinOriginState {
  EpochKind epoch = EpochKind::None;
  std::vector<OriginTargetState> tgt;  // indexed by target comm rank
  // PSCW bookkeeping.
  std::vector<int> access_group;    // comm ranks I will access
  std::vector<int> exposure_group;  // comm ranks allowed to access me
  int posts_seen = 0;      // "post" notifications received (as origin)
  int completes_seen = 0;  // "complete" notifications received (as target)
  unsigned pscw_assert = 0;
  bool fence_open = false;
};

/// In-flight software operation record: a target-memory byte range being
/// read-modify-written over a span of virtual time by some processing entity
/// (a rank polling, a ghost process, or a progress agent). Two overlapping
/// in-flight writes from *different* entities to the *same* bytes constitute
/// an MPI atomicity/ordering violation — exactly the failure mode the paper's
/// static binding exists to prevent. We detect and count them.
struct InflightOp {
  int entity = 0;  ///< processing entity id: world rank for pollers; agents
                   ///< and NICs use offset id spaces (see Runtime)
  std::uintptr_t lo = 0, hi = 0;  ///< absolute byte range [lo, hi)
  sim::Time t0 = 0, t1 = 0;       ///< half-open processing interval [t0, t1)
  bool is_write = true;
};

/// Shared window state (one instance per window, shared by all member ranks).
class WinImpl {
 public:
  WinImpl(int id, Comm comm) : id_(id), comm_(std::move(comm)) {
    const int n = comm_->size();
    segs.resize(static_cast<std::size_t>(n));
    ost.resize(static_cast<std::size_t>(n));
    locks.resize(static_cast<std::size_t>(n));
    for (auto& o : ost) o.tgt.resize(static_cast<std::size_t>(n));
  }

  int id() const { return id_; }
  const Comm& comm() const { return comm_; }

  /// Exposed memory of each member (indexed by comm rank).
  std::vector<Segment> segs;
  /// Storage owned by the window for the "allocate" model (per comm rank).
  std::vector<std::vector<std::byte>> owned;
  /// Storage for the "allocate shared" model: one buffer per node id.
  std::vector<std::shared_ptr<std::vector<std::byte>>> node_buffers;
  /// Byte offset of each comm rank's segment inside its node buffer
  /// (allocate-shared windows only).
  std::vector<std::size_t> shm_offset;
  bool is_shared = false;

  /// Origin-side state, indexed by comm rank.
  std::vector<WinOriginState> ost;
  /// Target-side lock manager, indexed by target comm rank.
  std::vector<TargetLockState> locks;

  Info info;

 private:
  int id_;
  Comm comm_;
};

}  // namespace casper::mpi
