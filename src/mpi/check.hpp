// Fatal-error checking for simulation invariants and MPI usage errors.
// Simulation errors are programming errors (of the harness or the layer under
// test), so they abort with context rather than throwing across the
// cooperative scheduler.
#pragma once

#include <cstdio>
#include <cstdlib>

#define MMPI_REQUIRE(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "minimpi error at %s:%d: ", __FILE__,      \
                   __LINE__);                                         \
      std::fprintf(stderr, __VA_ARGS__);                              \
      std::fprintf(stderr, "\n");                                     \
      std::abort();                                                   \
    }                                                                 \
  } while (0)
