// The default (bottom) interception layer: forwards every call straight into
// the minimpi runtime — the equivalent of the PMPI_* name-shifted entry
// points that Casper calls underneath its wrappers.
#pragma once

#include "mpi/layer.hpp"
#include "mpi/runtime.hpp"

namespace casper::mpi {

class Pmpi final : public Layer {
 public:
  explicit Pmpi(Runtime& rt) : rt_(&rt) {}

  void on_rank_start(Env& env,
                     const std::function<void(Env&)>& user_main) override {
    rt_->p_rank_main(env, user_main);
  }
  Comm comm_world(Env&) override { return rt_->world(); }

  Comm comm_split(Env& env, const Comm& c, int color, int key) override {
    return rt_->p_comm_split(env, c, color, key);
  }
  Comm comm_dup(Env& env, const Comm& c) override {
    return rt_->p_comm_dup(env, c);
  }

  void send(Env& env, const void* buf, int count, Dt dt, int dest, int tag,
            const Comm& c) override {
    rt_->p_send(env, buf, count, dt, dest, tag, c);
  }
  Status recv(Env& env, void* buf, int count, Dt dt, int src, int tag,
              const Comm& c) override {
    return rt_->p_recv(env, buf, count, dt, src, tag, c);
  }
  Request isend(Env& env, const void* buf, int count, Dt dt, int dest,
                int tag, const Comm& c) override {
    return rt_->p_isend(env, buf, count, dt, dest, tag, c);
  }
  Request irecv(Env& env, void* buf, int count, Dt dt, int src, int tag,
                const Comm& c) override {
    return rt_->p_irecv(env, buf, count, dt, src, tag, c);
  }
  Status wait(Env& env, const Request& req) override {
    return rt_->p_wait(env, req);
  }
  bool test(Env& env, const Request& req) override {
    return rt_->p_test(env, req);
  }
  void waitall(Env& env, Request* reqs, int n) override {
    rt_->p_waitall(env, reqs, n);
  }

  void barrier(Env& env, const Comm& c) override { rt_->p_barrier(env, c); }
  void bcast(Env& env, void* buf, int count, Dt dt, int root,
             const Comm& c) override {
    rt_->p_bcast(env, buf, count, dt, root, c);
  }
  void reduce(Env& env, const void* s, void* r, int count, Dt dt, AccOp op,
              int root, const Comm& c) override {
    rt_->p_reduce(env, s, r, count, dt, op, root, c);
  }
  void allreduce(Env& env, const void* s, void* r, int count, Dt dt, AccOp op,
                 const Comm& c) override {
    rt_->p_allreduce(env, s, r, count, dt, op, c);
  }
  void allgather(Env& env, const void* s, int count, Dt dt, void* r,
                 const Comm& c) override {
    rt_->p_allgather(env, s, count, dt, r, c);
  }
  void alltoall(Env& env, const void* s, int count, Dt dt, void* r,
                const Comm& c) override {
    rt_->p_alltoall(env, s, count, dt, r, c);
  }
  void gather(Env& env, const void* s, int count, Dt dt, void* r, int root,
              const Comm& c) override {
    rt_->p_gather(env, s, count, dt, r, root, c);
  }
  void scatter(Env& env, const void* s, int count, Dt dt, void* r, int root,
               const Comm& c) override {
    rt_->p_scatter(env, s, count, dt, r, root, c);
  }

  Win win_allocate(Env& env, std::size_t bytes, std::size_t du,
                   const Info& info, const Comm& c, void** base) override {
    return rt_->p_win_allocate(env, bytes, du, info, c, base, false);
  }
  Win win_allocate_shared(Env& env, std::size_t bytes, std::size_t du,
                          const Info& info, const Comm& c,
                          void** base) override {
    return rt_->p_win_allocate(env, bytes, du, info, c, base, true);
  }
  Win win_create(Env& env, void* base, std::size_t bytes, std::size_t du,
                 const Info& info, const Comm& c) override {
    return rt_->p_win_create(env, base, bytes, du, info, c);
  }
  void win_free(Env& env, Win& w) override { rt_->p_win_free(env, w); }

  void put(Env& env, const void* o, int oc, Datatype odt, int target,
           std::size_t tdisp, int tc, Datatype tdt, const Win& w) override {
    Runtime::RmaArgs a;
    a.kind = OpKind::Put;
    a.origin_addr = o;
    a.ocount = oc;
    a.odt = odt;
    a.target = target;
    a.tdisp = tdisp;
    a.tcount = tc;
    a.tdt = tdt;
    rt_->p_rma(env, a, w);
  }
  void get(Env& env, void* o, int oc, Datatype odt, int target,
           std::size_t tdisp, int tc, Datatype tdt, const Win& w) override {
    Runtime::RmaArgs a;
    a.kind = OpKind::Get;
    a.result_addr = o;
    a.rcount = oc;
    a.rdt = odt;
    a.target = target;
    a.tdisp = tdisp;
    a.tcount = tc;
    a.tdt = tdt;
    rt_->p_rma(env, a, w);
  }
  void accumulate(Env& env, const void* o, int oc, Datatype odt, int target,
                  std::size_t tdisp, int tc, Datatype tdt, AccOp op,
                  const Win& w) override {
    Runtime::RmaArgs a;
    a.kind = OpKind::Acc;
    a.op = op;
    a.origin_addr = o;
    a.ocount = oc;
    a.odt = odt;
    a.target = target;
    a.tdisp = tdisp;
    a.tcount = tc;
    a.tdt = tdt;
    rt_->p_rma(env, a, w);
  }
  void get_accumulate(Env& env, const void* o, int oc, Datatype odt,
                      void* res, int rc, Datatype rdt, int target,
                      std::size_t tdisp, int tc, Datatype tdt, AccOp op,
                      const Win& w) override {
    Runtime::RmaArgs a;
    a.kind = OpKind::GetAcc;
    a.op = op;
    a.origin_addr = o;
    a.ocount = oc;
    a.odt = odt;
    a.result_addr = res;
    a.rcount = rc;
    a.rdt = rdt;
    a.target = target;
    a.tdisp = tdisp;
    a.tcount = tc;
    a.tdt = tdt;
    rt_->p_rma(env, a, w);
  }
  void fetch_and_op(Env& env, const void* value, void* result, Dt dt,
                    int target, std::size_t tdisp, AccOp op,
                    const Win& w) override {
    Runtime::RmaArgs a;
    a.kind = OpKind::Fao;
    a.op = op;
    a.origin_addr = value;
    a.ocount = 1;
    a.odt = contig(dt);
    a.result_addr = result;
    a.rcount = 1;
    a.rdt = contig(dt);
    a.target = target;
    a.tdisp = tdisp;
    a.tcount = 1;
    a.tdt = contig(dt);
    rt_->p_rma(env, a, w);
  }
  void compare_and_swap(Env& env, const void* expected, const void* desired,
                        void* result, Dt dt, int target, std::size_t tdisp,
                        const Win& w) override {
    Runtime::RmaArgs a;
    a.kind = OpKind::Cas;
    a.origin_addr = expected;
    a.origin_addr2 = desired;
    a.result_addr = result;
    a.rcount = 1;
    a.rdt = contig(dt);
    a.ocount = 1;
    a.odt = contig(dt);
    a.target = target;
    a.tdisp = tdisp;
    a.tcount = 1;
    a.tdt = contig(dt);
    rt_->p_rma(env, a, w);
  }

  void win_fence(Env& env, unsigned as, const Win& w) override {
    rt_->p_win_fence(env, as, w);
  }
  void win_post(Env& env, const Group& g, unsigned as, const Win& w) override {
    rt_->p_win_post(env, g, as, w);
  }
  void win_start(Env& env, const Group& g, unsigned as,
                 const Win& w) override {
    rt_->p_win_start(env, g, as, w);
  }
  void win_complete(Env& env, const Win& w) override {
    rt_->p_win_complete(env, w);
  }
  void win_wait(Env& env, const Win& w) override { rt_->p_win_wait(env, w); }
  void win_lock(Env& env, LockType t, int target, unsigned as,
                const Win& w) override {
    rt_->p_win_lock(env, t, target, as, w);
  }
  void win_unlock(Env& env, int target, const Win& w) override {
    rt_->p_win_unlock(env, target, w);
  }
  void win_lock_all(Env& env, unsigned as, const Win& w) override {
    rt_->p_win_lock_all(env, as, w);
  }
  void win_unlock_all(Env& env, const Win& w) override {
    rt_->p_win_unlock_all(env, w);
  }
  void win_flush(Env& env, int target, const Win& w) override {
    rt_->p_win_flush(env, target, w);
  }
  void win_flush_all(Env& env, const Win& w) override {
    rt_->p_win_flush_all(env, w);
  }
  void win_flush_local(Env& env, int target, const Win& w) override {
    rt_->p_win_flush_local(env, target, w);
  }
  void win_flush_local_all(Env& env, const Win& w) override {
    rt_->p_win_flush_local_all(env, w);
  }
  void win_sync(Env& env, const Win& w) override { rt_->p_win_sync(env, w); }

 private:
  Runtime* rt_;
};

}  // namespace casper::mpi
