// The "profiling layer" interface — our stand-in for PMPI interception.
//
// Application code calls Env methods, which forward to the installed Layer.
// The default layer (Pmpi) forwards straight into the minimpi runtime, like
// an MPI library's internal entry points. Casper installs its own Layer that
// wraps Pmpi, exactly as the real Casper overloads MPI_* symbols and calls
// the PMPI_* name-shifted entry points underneath.
#pragma once

#include <cstddef>
#include <functional>

#include "mpi/comm.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "mpi/win.hpp"

namespace casper::mpi {

class Env;

/// Abstract MPI call surface subject to interception.
class Layer {
 public:
  virtual ~Layer() = default;

  // --- lifecycle -----------------------------------------------------------
  /// Runs when a rank thread starts; responsible for invoking `user_main`
  /// (or an internal service loop instead) and for finalization handshakes.
  virtual void on_rank_start(Env& env,
                             const std::function<void(Env&)>& user_main) = 0;
  /// The communicator handed to the application as "the world".
  virtual Comm comm_world(Env& env) = 0;

  // --- communicator management --------------------------------------------
  virtual Comm comm_split(Env& env, const Comm& comm, int color, int key) = 0;
  virtual Comm comm_dup(Env& env, const Comm& comm) = 0;

  // --- point-to-point ------------------------------------------------------
  virtual void send(Env& env, const void* buf, int count, Dt dt, int dest,
                    int tag, const Comm& comm) = 0;
  virtual Status recv(Env& env, void* buf, int count, Dt dt, int src, int tag,
                      const Comm& comm) = 0;
  virtual Request isend(Env& env, const void* buf, int count, Dt dt, int dest,
                        int tag, const Comm& comm) = 0;
  virtual Request irecv(Env& env, void* buf, int count, Dt dt, int src,
                        int tag, const Comm& comm) = 0;
  virtual Status wait(Env& env, const Request& req) = 0;
  virtual bool test(Env& env, const Request& req) = 0;
  virtual void waitall(Env& env, Request* reqs, int n) = 0;

  // --- collectives ---------------------------------------------------------
  virtual void barrier(Env& env, const Comm& comm) = 0;
  virtual void bcast(Env& env, void* buf, int count, Dt dt, int root,
                     const Comm& comm) = 0;
  virtual void reduce(Env& env, const void* send, void* recv, int count,
                      Dt dt, AccOp op, int root, const Comm& comm) = 0;
  virtual void allreduce(Env& env, const void* send, void* recv, int count,
                         Dt dt, AccOp op, const Comm& comm) = 0;
  virtual void allgather(Env& env, const void* send, int count, Dt dt,
                         void* recv, const Comm& comm) = 0;
  virtual void alltoall(Env& env, const void* send, int count, Dt dt,
                        void* recv, const Comm& comm) = 0;
  virtual void gather(Env& env, const void* send, int count, Dt dt,
                      void* recv, int root, const Comm& comm) = 0;
  virtual void scatter(Env& env, const void* send, int count, Dt dt,
                       void* recv, int root, const Comm& comm) = 0;

  // --- window management ---------------------------------------------------
  virtual Win win_allocate(Env& env, std::size_t bytes, std::size_t disp_unit,
                           const Info& info, const Comm& comm,
                           void** base) = 0;
  virtual Win win_allocate_shared(Env& env, std::size_t bytes,
                                  std::size_t disp_unit, const Info& info,
                                  const Comm& comm, void** base) = 0;
  virtual Win win_create(Env& env, void* base, std::size_t bytes,
                         std::size_t disp_unit, const Info& info,
                         const Comm& comm) = 0;
  virtual void win_free(Env& env, Win& win) = 0;

  // --- RMA communication ---------------------------------------------------
  virtual void put(Env& env, const void* origin, int ocount, Datatype odt,
                   int target, std::size_t tdisp, int tcount, Datatype tdt,
                   const Win& win) = 0;
  virtual void get(Env& env, void* origin, int ocount, Datatype odt,
                   int target, std::size_t tdisp, int tcount, Datatype tdt,
                   const Win& win) = 0;
  virtual void accumulate(Env& env, const void* origin, int ocount,
                          Datatype odt, int target, std::size_t tdisp,
                          int tcount, Datatype tdt, AccOp op,
                          const Win& win) = 0;
  virtual void get_accumulate(Env& env, const void* origin, int ocount,
                              Datatype odt, void* result, int rcount,
                              Datatype rdt, int target, std::size_t tdisp,
                              int tcount, Datatype tdt, AccOp op,
                              const Win& win) = 0;
  virtual void fetch_and_op(Env& env, const void* value, void* result, Dt dt,
                            int target, std::size_t tdisp, AccOp op,
                            const Win& win) = 0;
  virtual void compare_and_swap(Env& env, const void* expected,
                                const void* desired, void* result, Dt dt,
                                int target, std::size_t tdisp,
                                const Win& win) = 0;

  // --- RMA synchronization -------------------------------------------------
  virtual void win_fence(Env& env, unsigned mode_assert, const Win& win) = 0;
  virtual void win_post(Env& env, const Group& group, unsigned mode_assert,
                        const Win& win) = 0;
  virtual void win_start(Env& env, const Group& group, unsigned mode_assert,
                         const Win& win) = 0;
  virtual void win_complete(Env& env, const Win& win) = 0;
  virtual void win_wait(Env& env, const Win& win) = 0;
  virtual void win_lock(Env& env, LockType type, int target,
                        unsigned mode_assert, const Win& win) = 0;
  virtual void win_unlock(Env& env, int target, const Win& win) = 0;
  virtual void win_lock_all(Env& env, unsigned mode_assert,
                            const Win& win) = 0;
  virtual void win_unlock_all(Env& env, const Win& win) = 0;
  virtual void win_flush(Env& env, int target, const Win& win) = 0;
  virtual void win_flush_all(Env& env, const Win& win) = 0;
  virtual void win_flush_local(Env& env, int target, const Win& win) = 0;
  virtual void win_flush_local_all(Env& env, const Win& win) = 0;
  virtual void win_sync(Env& env, const Win& win) = 0;
};

}  // namespace casper::mpi
