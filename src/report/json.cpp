#include "report/json.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

namespace casper::report {

namespace {

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

void json_cell(std::ostream& os, const std::string& s) {
  if (is_number(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

void write_bench_json(std::ostream& os, const std::string& bench_id,
                      const Table& table, const obs::Metrics* metrics,
                      const std::string& host_json) {
  os << "{\n  \"bench\": ";
  json_cell(os, bench_id);
  os << ",\n  \"columns\": [";
  bool first = true;
  for (const auto& h : table.headers()) {
    if (!first) os << ", ";
    first = false;
    json_cell(os, h);
  }
  os << "],\n  \"rows\": [";
  first = true;
  for (const auto& r : table.rows()) {
    os << (first ? "\n" : ",\n") << "    [";
    first = false;
    bool cfirst = true;
    for (const auto& c : r) {
      if (!cfirst) os << ", ";
      cfirst = false;
      json_cell(os, c);
    }
    os << ']';
  }
  os << (first ? "" : "\n  ") << "],\n";
  if (!host_json.empty()) os << "  \"host\": " << host_json << ",\n";
  os << "  \"metrics\": ";
  if (metrics != nullptr) {
    metrics->write_json(os, 2);
  } else {
    os << "{}";
  }
  os << "\n}\n";
}

bool write_bench_json_file(const std::string& path,
                           const std::string& bench_id, const Table& table,
                           const obs::Metrics* metrics,
                           const std::string& host_json) {
  std::ofstream f(path);
  if (!f) return false;
  write_bench_json(f, bench_id, table, metrics, host_json);
  return true;
}

}  // namespace casper::report
