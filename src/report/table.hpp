// Aligned-table / CSV printers used by every bench binary to emit the
// paper's figure and table series.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace casper::report {

/// A simple column-aligned table with an optional CSV mode.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render aligned text (csv=false) or comma-separated (csv=true).
  void print(std::ostream& os, bool csv = false) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision, trimming trailing zeros.
std::string fmt(double v, int prec = 2);

/// Format an integer-valued size/count.
std::string fmt_count(std::uint64_t v);

/// True when argv contains --csv.
bool csv_mode(int argc, char** argv);

/// Print a bench banner (figure id + description).
void banner(std::ostream& os, const std::string& id,
            const std::string& what);

}  // namespace casper::report
