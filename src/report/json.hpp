// BENCH_*.json writer: serializes a bench result table plus (optionally) the
// observability metrics block, so regression tooling can diff both the
// headline numbers and the per-ghost / per-path telemetry behind them.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "report/table.hpp"

namespace casper::report {

/// Write {"bench": id, "columns": [...], "rows": [[...], ...],
///        "host": {...}, "metrics": {...}} to `os`. Cells that parse fully
/// as numbers are emitted as JSON numbers, everything else as strings.
/// `metrics` may be null (the block is then an empty object, keeping the
/// schema stable). `host_json`, if non-empty, must be a rendered JSON object
/// holding host-side (wall-clock) measurements; regression tooling compares
/// it with a tolerance band, unlike rows/metrics which are virtual-time and
/// must match baselines exactly.
void write_bench_json(std::ostream& os, const std::string& bench_id,
                      const Table& table, const obs::Metrics* metrics,
                      const std::string& host_json = std::string());

/// Convenience: open `path` and write_bench_json into it. Returns false if
/// the file cannot be opened.
bool write_bench_json_file(const std::string& path,
                           const std::string& bench_id, const Table& table,
                           const obs::Metrics* metrics,
                           const std::string& host_json = std::string());

}  // namespace casper::report
