// BENCH_*.json writer: serializes a bench result table plus (optionally) the
// observability metrics block, so regression tooling can diff both the
// headline numbers and the per-ghost / per-path telemetry behind them.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "report/table.hpp"

namespace casper::report {

/// Write {"bench": id, "columns": [...], "rows": [[...], ...],
///        "metrics": {...}} to `os`. Cells that parse fully as numbers are
/// emitted as JSON numbers, everything else as strings. `metrics` may be
/// null (the block is then an empty object, keeping the schema stable).
void write_bench_json(std::ostream& os, const std::string& bench_id,
                      const Table& table, const obs::Metrics* metrics);

/// Convenience: open `path` and write_bench_json into it. Returns false if
/// the file cannot be opened.
bool write_bench_json_file(const std::string& path,
                           const std::string& bench_id, const Table& table,
                           const obs::Metrics* metrics);

}  // namespace casper::report
