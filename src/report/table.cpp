#include "report/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace casper::report {

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ',';
        os << cells[i];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
    return;
  }
  std::vector<std::size_t> width(headers_.size(), 0);
  auto widen = [&width](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "  " << c << std::string(width[i] - c.size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

void banner(std::ostream& os, const std::string& id, const std::string& what) {
  os << "== " << id << ": " << what << " ==\n";
}

}  // namespace casper::report
