// Deterministic per-rank random number generation.
//
// Every simulated rank owns an independent splitmix64 stream seeded from
// (global seed, rank id), so results are identical regardless of how the
// cooperative scheduler interleaves ranks and regardless of the host.
#pragma once

#include <cstdint>

namespace casper::sim {

/// Small, fast, deterministic PRNG (splitmix64). Not cryptographic.
class Rng {
 public:
  Rng() = default;
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Seed from a (global seed, stream id) pair; streams are decorrelated by
  /// mixing the id through the output function before use.
  Rng(std::uint64_t seed, std::uint64_t stream)
      : state_(mix(seed + 0x9e3779b97f4a7c15ULL * (stream + 1))) {}

  /// Next uniformly distributed 64-bit value.
  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix(state_);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_ = 0x853c49e6748fea9bULL;
};

}  // namespace casper::sim
