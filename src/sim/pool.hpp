// Size-classed free-list arena for transient byte buffers.
//
// The RMA hot path stages every payload, scratch and acknowledgment buffer
// through short-lived allocations; with std::vector<std::byte> each op paid
// one malloc/free per buffer. BytePool recycles blocks in power-of-two size
// classes (the pooled-slot pattern of sim::MinHeap / Engine::event_cbs_):
// after a short warm-up the working set of block sizes is resident and
// acquire/release are two vector operations, no heap traffic.
//
// Single-threaded by default: a pool belongs to one simulation, and with a
// single-shard engine no synchronization is needed. Sharded engines run one
// worker thread per shard and PoolBufs can migrate across shards with the
// messages that carry them, so set_thread_safe(true) arms a mutex around the
// freelists; the unsharded path keeps paying only one predictable branch.
// Blocks are returned uncleared; callers fully overwrite what they read back
// (PoolBuf::resize preserves existing contents on growth, like std::vector).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <span>
#include <utility>
#include <vector>

namespace casper::sim {

class BytePool {
 public:
  /// Smallest block handed out; class c holds blocks of kMinBlock << c bytes.
  static constexpr std::size_t kMinBlock = 64;
  static constexpr int kClasses = 16;  // up to 2 MiB pooled; larger = direct

  BytePool() = default;
  ~BytePool() {
    for (auto& fl : free_)
      for (std::byte* p : fl) ::operator delete(p);
  }
  BytePool(const BytePool&) = delete;
  BytePool& operator=(const BytePool&) = delete;

  /// Arm (or disarm) the freelist mutex. Call before worker threads share the
  /// pool (sharded engine); must not be toggled while blocks are in flight.
  void set_thread_safe(bool on) { locked_ = on; }

  /// A block of capacity >= n; *cap receives the actual block capacity
  /// (needed to release it into the right class). n == 0 returns null.
  std::byte* acquire(std::size_t n, std::size_t* cap) {
    if (n == 0) {
      *cap = 0;
      return nullptr;
    }
    const int c = cls_of(n);
    if (c < 0) {  // oversized: direct, uncached — no shared state touched
      *cap = n;
      return static_cast<std::byte*>(::operator new(n));
    }
    *cap = kMinBlock << c;
    std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
    if (locked_) lk.lock();
    auto& fl = free_[c];
    if (!fl.empty()) {
      std::byte* p = fl.back();
      fl.pop_back();
      ++reuses_;
      bytes_reused_ += n;
      return p;
    }
    ++fresh_;
    return static_cast<std::byte*>(::operator new(kMinBlock << c));
  }

  void release(std::byte* p, std::size_t cap) noexcept {
    if (p == nullptr) return;
    const int c = cls_of(cap);
    if (c < 0 || (kMinBlock << c) != cap) {  // oversized block: free directly
      ::operator delete(p);
      return;
    }
    std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
    if (locked_) lk.lock();
    free_[c].push_back(p);
  }

  /// Payload bytes served from recycled blocks (the obs counter).
  std::uint64_t bytes_reused() const { return bytes_reused_; }
  std::uint64_t reuses() const { return reuses_; }
  std::uint64_t fresh_blocks() const { return fresh_; }

 private:
  /// Smallest class whose block holds n bytes; -1 if larger than the pool.
  static int cls_of(std::size_t n) {
    std::size_t b = kMinBlock;
    for (int c = 0; c < kClasses; ++c, b <<= 1)
      if (n <= b) return c;
    return -1;
  }

  std::vector<std::byte*> free_[kClasses];
  std::uint64_t bytes_reused_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t fresh_ = 0;
  std::mutex mu_;
  bool locked_ = false;
};

/// A movable byte buffer drawing storage from a BytePool. Behaves like a
/// minimal std::vector<std::byte>: resize preserves contents, clear keeps
/// capacity. Unbound (no pool) instances fall back to the global heap, so a
/// default-constructed PoolBuf is always usable — binding is an optimization,
/// not a requirement. Destruction returns the block to the pool.
class PoolBuf {
 public:
  PoolBuf() = default;
  explicit PoolBuf(BytePool* pool) : pool_(pool) {}
  PoolBuf(PoolBuf&& o) noexcept
      : pool_(o.pool_), data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
  }
  PoolBuf& operator=(PoolBuf&& o) noexcept {
    if (this != &o) {
      dealloc();
      pool_ = o.pool_;
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    return *this;
  }
  PoolBuf(const PoolBuf&) = delete;
  PoolBuf& operator=(const PoolBuf&) = delete;
  ~PoolBuf() { dealloc(); }

  /// Attach to a pool. Storage already held is kept (released to its own
  /// source on dealloc is wrong), so binding is only allowed while empty.
  void bind(BytePool* pool) {
    if (data_ == nullptr) pool_ = pool;
  }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void resize(std::size_t n) {
    if (n > cap_) grow(n);
    size_ = n;
  }
  void clear() { size_ = 0; }

  void assign(const void* src, std::size_t n) {
    resize(n);
    if (n != 0) std::memcpy(data_, src, n);
  }

  std::span<const std::byte> span() const { return {data_, size_}; }
  operator std::span<const std::byte>() const { return span(); }

 private:
  void grow(std::size_t n) {
    std::size_t ncap = 0;
    std::byte* nd = pool_ != nullptr
                        ? pool_->acquire(n, &ncap)
                        : (ncap = n, static_cast<std::byte*>(::operator new(n)));
    if (size_ != 0) std::memcpy(nd, data_, size_);
    dealloc();
    data_ = nd;
    cap_ = ncap;
  }
  void dealloc() noexcept {
    if (data_ == nullptr) return;
    if (pool_ != nullptr)
      pool_->release(data_, cap_);
    else
      ::operator delete(data_);
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  BytePool* pool_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace casper::sim
