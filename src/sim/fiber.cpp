#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if CASPER_ASAN_FIBERS
#include <pthread.h>
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

#if CASPER_TSAN_FIBERS
// <sanitizer/tsan_interface.h> exists on this toolchain, but declaring the
// four entry points directly keeps the gate identical for gcc and clang.
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#if CASPER_FIBER_ASM

extern "C" {
// Save the x86-64 SysV callee-saved GPRs and stack pointer of the running
// fiber into *save_sp, install restore_sp, and return on the destination
// fiber's stack. Everything caller-saved is dead across a function call, the
// signal mask is never modified by fibers, and the FP control words are
// process-invariant here — so six pushes, a stack swap, six pops and a `ret`
// are a complete context switch. No syscall (unlike swapcontext, which pays
// a sigprocmask on every switch).
void casper_fiber_switch(void** save_sp, void* restore_sp);

// First-resume target: a freshly created fiber's boot frame (built in the
// Fiber constructor) "returns" here with the Fiber* pre-loaded in r12.
void casper_fiber_boot();
}

asm(R"(
.pushsection .text
.align 16
.type casper_fiber_switch, @function
casper_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
.size casper_fiber_switch, .-casper_fiber_switch

.align 16
.type casper_fiber_boot, @function
casper_fiber_boot:
    movq %r12, %rdi
    jmp casper_fiber_entry
.size casper_fiber_boot, .-casper_fiber_boot
.popsection
)");

extern "C" void casper_fiber_entry(void* fiber) {
  auto* f = static_cast<casper::sim::Fiber*>(fiber);
#if CASPER_ASAN_FIBERS
  // First entry: complete the switch that started in switch_to(). There is
  // no prior fake stack to restore (fake_stack_ is still null).
  __sanitizer_finish_switch_fiber(f->fake_stack_, nullptr, nullptr);
#endif
  f->entry_(f->arg_);
  // A fiber must end by switching away for the last time, not by returning
  // (there is nothing on the boot frame below this call to return to).
  std::fprintf(stderr, "sim::Fiber: entry returned instead of switching\n");
  std::abort();
}

#endif  // CASPER_FIBER_ASM

namespace casper::sim {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t ps = page_size();
  return (bytes + ps - 1) / ps * ps;
}

}  // namespace

StackPool::~StackPool() {
  for (const StackMem& m : free_) munmap(m.map_base, m.map_bytes);
}

bool StackPool::take(std::size_t stack_bytes, StackMem* out) {
  // All mappings in one pool share a size in practice (one stack size per
  // engine run); the check guards against a future mixed-size caller quietly
  // handing out a short stack.
  if (free_.empty() || free_.back().stack_bytes != stack_bytes) return false;
  *out = free_.back();
  free_.pop_back();
  return true;
}

Fiber::Fiber() {
#if CASPER_ASAN_FIBERS
  // ASan needs the bounds of the adopted (native thread) stack to announce
  // switches back to it.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* lo = nullptr;
    std::size_t sz = 0;
    pthread_attr_getstack(&attr, &lo, &sz);
    stack_lo_ = lo;
    stack_bytes_ = sz;
    pthread_attr_destroy(&attr);
  }
#endif
#if CASPER_TSAN_FIBERS
  tsan_fiber_ = __tsan_get_current_fiber();
  tsan_owned_ = false;
#endif
}

Fiber::Fiber(Entry entry, void* arg, std::size_t stack_bytes, StackPool* pool)
    : entry_(entry), arg_(arg), pool_(pool) {
  const std::size_t ps = page_size();
  stack_bytes_ = round_up_pages(
      stack_bytes < kMinStackBytes ? kMinStackBytes : stack_bytes);

  StackMem m;
  if (pool_ != nullptr && pool_->take(stack_bytes_, &m)) {
    map_base_ = m.map_base;
    map_bytes_ = m.map_bytes;
    stack_lo_ = m.stack_lo;
  } else {
    map_bytes_ = stack_bytes_ + ps;  // + low guard page
    void* base = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (base == MAP_FAILED) {
      std::fprintf(stderr, "sim::Fiber: mmap of %zu-byte stack failed\n",
                   map_bytes_);
      std::abort();
    }
    if (mprotect(base, ps, PROT_NONE) != 0) {
      std::fprintf(stderr, "sim::Fiber: mprotect of guard page failed\n");
      std::abort();
    }
    map_base_ = base;
    stack_lo_ = static_cast<char*>(base) + ps;
  }

#if CASPER_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
  tsan_owned_ = true;
#endif

#if CASPER_FIBER_ASM
  // Build the boot frame casper_fiber_switch will "resume": six callee-saved
  // register slots below a return address pointing at casper_fiber_boot. The
  // Fiber* rides in the r12 slot. The return address sits at a 16-aligned
  // address so that after `ret` pops it, rsp % 16 == 8 — exactly the SysV
  // alignment a normal function sees on entry.
  auto top = (reinterpret_cast<std::uintptr_t>(stack_lo_) + stack_bytes_) &
             ~std::uintptr_t{15};
  auto* slot = reinterpret_cast<void**>(top);
  slot[-2] = reinterpret_cast<void*>(&casper_fiber_boot);  // ret address
  slot[-3] = nullptr;                                      // rbp (ends bt)
  slot[-4] = nullptr;                                      // rbx
  slot[-5] = this;                                         // r12
  slot[-6] = nullptr;                                      // r13
  slot[-7] = nullptr;                                      // r14
  slot[-8] = nullptr;                                      // r15
  sp_ = &slot[-8];
#else
  if (getcontext(&ctx_) != 0) {
    std::fprintf(stderr, "sim::Fiber: getcontext failed\n");
    std::abort();
  }
  ctx_.uc_stack.ss_sp = stack_lo_;
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = nullptr;  // entry must never return
  // makecontext() only forwards int arguments portably; the classic idiom
  // splits the Fiber* into two 32-bit halves reassembled in trampoline().
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
#endif
}

Fiber::~Fiber() {
#if CASPER_TSAN_FIBERS
  // Never the running fiber here: the engine destroys only finished or
  // never-started fibers (and adopted handles are not ours to destroy).
  if (tsan_owned_ && tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (map_base_ == nullptr) return;
  if (pool_ != nullptr) {
    pool_->put(StackMem{map_base_, map_bytes_, stack_lo_, stack_bytes_});
  } else {
    munmap(map_base_, map_bytes_);
  }
}

#if !CASPER_FIBER_ASM
void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
#if CASPER_ASAN_FIBERS
  // First entry: complete the switch that started in switch_to(). There is
  // no prior fake stack to restore (fake_stack_ is still null).
  __sanitizer_finish_switch_fiber(f->fake_stack_, nullptr, nullptr);
#endif
  f->entry_(f->arg_);
  // A fiber must end by switching away for the last time, not by returning
  // (with uc_link == nullptr a return would exit the whole thread).
  std::fprintf(stderr, "sim::Fiber: entry returned instead of switching\n");
  std::abort();
}
#endif

void Fiber::switch_to(Fiber& from, Fiber& to, bool from_exiting) {
#if CASPER_ASAN_FIBERS
  // Passing a null save slot tells ASan the departing fiber is done and its
  // fake stack can be destroyed.
  __sanitizer_start_switch_fiber(from_exiting ? nullptr : &from.fake_stack_,
                                 to.stack_lo_, to.stack_bytes_);
#else
  (void)from_exiting;
#endif
#if CASPER_TSAN_FIBERS
  __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
#if CASPER_FIBER_ASM
  casper_fiber_switch(&from.sp_, to.sp_);
#else
  if (swapcontext(&from.ctx_, &to.ctx_) != 0) {
    std::fprintf(stderr, "sim::Fiber: swapcontext failed\n");
    std::abort();
  }
#endif
#if CASPER_ASAN_FIBERS
  // We are back on `from` (some other fiber switched to it): restore its
  // fake stack.
  __sanitizer_finish_switch_fiber(from.fake_stack_, nullptr, nullptr);
#endif
}

}  // namespace casper::sim
