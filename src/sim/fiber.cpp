#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if CASPER_ASAN_FIBERS
#include <pthread.h>
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

namespace casper::sim {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t ps = page_size();
  return (bytes + ps - 1) / ps * ps;
}

}  // namespace

Fiber::Fiber() {
#if CASPER_ASAN_FIBERS
  // ASan needs the bounds of the adopted (native thread) stack to announce
  // switches back to it.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* lo = nullptr;
    std::size_t sz = 0;
    pthread_attr_getstack(&attr, &lo, &sz);
    stack_lo_ = lo;
    stack_bytes_ = sz;
    pthread_attr_destroy(&attr);
  }
#endif
}

Fiber::Fiber(Entry entry, void* arg, std::size_t stack_bytes)
    : entry_(entry), arg_(arg) {
  const std::size_t ps = page_size();
  stack_bytes_ = round_up_pages(
      stack_bytes < kMinStackBytes ? kMinStackBytes : stack_bytes);
  map_bytes_ = stack_bytes_ + ps;  // + low guard page
  void* base = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) {
    std::fprintf(stderr, "sim::Fiber: mmap of %zu-byte stack failed\n",
                 map_bytes_);
    std::abort();
  }
  if (mprotect(base, ps, PROT_NONE) != 0) {
    std::fprintf(stderr, "sim::Fiber: mprotect of guard page failed\n");
    std::abort();
  }
  map_base_ = base;
  stack_lo_ = static_cast<char*>(base) + ps;

  if (getcontext(&ctx_) != 0) {
    std::fprintf(stderr, "sim::Fiber: getcontext failed\n");
    std::abort();
  }
  ctx_.uc_stack.ss_sp = stack_lo_;
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = nullptr;  // entry must never return
  // makecontext() only forwards int arguments portably; the classic idiom
  // splits the Fiber* into two 32-bit halves reassembled in trampoline().
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  if (map_base_ != nullptr) munmap(map_base_, map_bytes_);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
#if CASPER_ASAN_FIBERS
  // First entry: complete the switch that started in switch_to(). There is
  // no prior fake stack to restore (fake_stack_ is still null).
  __sanitizer_finish_switch_fiber(f->fake_stack_, nullptr, nullptr);
#endif
  f->entry_(f->arg_);
  // A fiber must end by switching away for the last time, not by returning
  // (with uc_link == nullptr a return would exit the whole thread).
  std::fprintf(stderr, "sim::Fiber: entry returned instead of switching\n");
  std::abort();
}

void Fiber::switch_to(Fiber& from, Fiber& to, bool from_exiting) {
#if CASPER_ASAN_FIBERS
  // Passing a null save slot tells ASan the departing fiber is done and its
  // fake stack can be destroyed.
  __sanitizer_start_switch_fiber(from_exiting ? nullptr : &from.fake_stack_,
                                 to.stack_lo_, to.stack_bytes_);
#else
  (void)from_exiting;
#endif
  if (swapcontext(&from.ctx_, &to.ctx_) != 0) {
    std::fprintf(stderr, "sim::Fiber: swapcontext failed\n");
    std::abort();
  }
#if CASPER_ASAN_FIBERS
  // We are back on `from` (some other fiber switched to it): restore its
  // fake stack.
  __sanitizer_finish_switch_fiber(from.fake_stack_, nullptr, nullptr);
#endif
}

}  // namespace casper::sim
