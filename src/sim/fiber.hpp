// User-level stackful coroutines ("fibers") for the deterministic scheduler.
//
// A Fiber is a suspended computation with its own call stack. Switching
// between two fibers is a userspace register swap, roughly two orders of
// magnitude cheaper than the mutex/condvar token handoff between OS threads
// it replaces: no futex, no kernel scheduler, no cacheline ping-pong between
// cores. All fibers of a scheduler shard run on the one OS thread that
// drives that shard (the thread that called Engine::run(), or a shard
// worker), so `thread_local` state is shared within a shard and no
// synchronization is ever needed for a switch. A fiber never migrates
// between threads during its lifetime.
//
// Switch mechanism:
//   - On x86-64 SysV targets the switch is a hand-rolled assembly routine
//     that saves the six callee-saved GPRs plus the stack pointer and resumes
//     the destination fiber with a plain `ret` — no syscall. This matters:
//     glibc's swapcontext() calls sigprocmask() on every switch to save the
//     signal mask, and at ~2 switches per simulated event that one syscall
//     dominated the whole simulator (observed at ~67% of host CPU). Fibers
//     never touch the signal mask or the FP control/MXCSR words, so neither
//     needs saving.
//   - Everywhere else the portable ucontext path is used unchanged.
//
// Stack contract:
//   - Fiber stacks are anonymous private mappings of `stack_bytes` rounded
//     up to whole pages (minimum kMinStackBytes), plus one PROT_NONE guard
//     page at the low end. Stacks grow down on every supported target, so
//     overflowing a fiber stack faults deterministically on the guard page
//     instead of silently corrupting a neighbouring allocation — the same
//     safety pthread stacks provided before.
//   - A StackPool recycles whole mappings (guard page included): a fiber
//     constructed with a pool pops a ready mapping instead of paying
//     mmap+mprotect, and returns it on destruction instead of munmap. At
//     rank counts in the thousands the syscall churn of per-fiber mappings
//     is a measurable fraction of a whole run; with a pool the shard
//     reaches steady state after as many mappings as it has concurrently
//     live fibers. Pools are shard-local — never shared across threads.
//   - The adopting constructor (`Fiber()`) wraps the calling thread's native
//     stack; it owns no memory and is only a switch target/source.
//
// AddressSanitizer: ASan tracks one shadow "fake stack" per call stack, so
// every switch must be announced via __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber or ASan reports false stack-use-after-
// return errors and misattributes frames. switch_to() does this when built
// with -fsanitize=address (clang `__has_feature` or gcc
// `__SANITIZE_ADDRESS__`), and is zero-cost otherwise. The assembly switch
// is ASan-compatible: the hooks bracket it exactly as they did swapcontext.
//
// ThreadSanitizer: TSan likewise tracks a shadow state per call stack;
// without annotations every fiber switch looks like wild cross-stack access
// and the sharded engine's TSan stage would drown in false positives. Each
// owning fiber registers itself via __tsan_create_fiber, switches announce
// through __tsan_switch_to_fiber, and destruction calls
// __tsan_destroy_fiber. Compiled in only under -fsanitize=thread.
#pragma once

#include <cstddef>
#include <vector>

#if defined(__x86_64__) && defined(__linux__)
#define CASPER_FIBER_ASM 1
#else
#define CASPER_FIBER_ASM 0
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define CASPER_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CASPER_ASAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define CASPER_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CASPER_TSAN_FIBERS 1
#endif
#endif

#if CASPER_FIBER_ASM
extern "C" void casper_fiber_entry(void* fiber) __attribute__((noreturn));
#endif

namespace casper::sim {

/// One recyclable fiber stack mapping: the full mmap (low guard page
/// included) plus the usable region above the guard.
struct StackMem {
  void* map_base = nullptr;
  std::size_t map_bytes = 0;
  void* stack_lo = nullptr;
  std::size_t stack_bytes = 0;
};

/// Free list of stack mappings, all of one usable size (the engine uses one
/// stack size per run). Single-threaded: each scheduler shard owns its own
/// pool. Destruction unmaps everything still pooled.
class StackPool {
 public:
  StackPool() = default;
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Pop a pooled mapping of exactly `stack_bytes` usable bytes (callers
  /// pass the already page-rounded size); false when empty or mismatched.
  bool take(std::size_t stack_bytes, StackMem* out);
  void put(const StackMem& m) { free_.push_back(m); }
  std::size_t size() const { return free_.size(); }

 private:
  std::vector<StackMem> free_;
};

/// A stackful user-level coroutine. Non-copyable, non-movable: the engine
/// stores fibers behind stable pointers and suspended frames hold
/// self-addresses.
class Fiber {
 public:
  using Entry = void (*)(void*);

  /// Smallest usable fiber stack (before the guard page is added). Rank
  /// bodies run real code; anything below this cannot even enter main_.
  static constexpr std::size_t kMinStackBytes = 16 * 1024;

  /// Adopt the calling thread's native stack. The resulting fiber has no
  /// entry point; it becomes resumable the first time switch_to() switches
  /// *away* from it.
  Fiber();

  /// Create a suspended fiber that will invoke `entry(arg)` when first
  /// switched to. `entry` must never return: a fiber ends by switching away
  /// for the last time (the engine aborts if entry falls off the end).
  /// `stack_bytes` is rounded up to whole pages and clamped to
  /// kMinStackBytes; one extra guard page is mapped below the stack. With a
  /// `pool`, the stack mapping is taken from / returned to it instead of
  /// being mapped and unmapped per fiber.
  Fiber(Entry entry, void* arg, std::size_t stack_bytes,
        StackPool* pool = nullptr);

  /// Releases the stack (if owned) — to its pool when constructed with one,
  /// else unmapped. Destroying a fiber that is suspended mid-execution
  /// reclaims its stack without unwinding it — deterministic, but objects on
  /// that stack are not destructed; the engine only does this for fibers
  /// that are finished or were never started.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Suspend `from` (which must be the running fiber) and resume `to`.
  /// Returns when something switches back to `from`. If `from_exiting` is
  /// true, `from` will never be resumed: its ASan fake stack is released.
  static void switch_to(Fiber& from, Fiber& to, bool from_exiting = false);

  /// True for fibers created with an entry point (owning a mapped stack).
  bool owns_stack() const { return map_base_ != nullptr; }

 private:
#if CASPER_FIBER_ASM
  friend void ::casper_fiber_entry(void* fiber);

  void* sp_ = nullptr;  // saved stack pointer while suspended
#else
  static void trampoline(unsigned hi, unsigned lo);

  ucontext_t ctx_{};
#endif
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  void* map_base_ = nullptr;     // mmap base (guard page), null if adopted
  std::size_t map_bytes_ = 0;    // total mapping incl. guard page
  void* stack_lo_ = nullptr;     // usable stack bottom (above guard page)
  std::size_t stack_bytes_ = 0;  // usable stack size
  StackPool* pool_ = nullptr;    // owns the mapping after destruction
#if CASPER_ASAN_FIBERS
  void* fake_stack_ = nullptr;   // ASan fake-stack save slot while suspended
#endif
#if CASPER_TSAN_FIBERS
  void* tsan_fiber_ = nullptr;   // TSan shadow-state handle
  bool tsan_owned_ = false;      // created (vs adopted current) handle
#endif
};

}  // namespace casper::sim
