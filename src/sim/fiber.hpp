// User-level stackful coroutines ("fibers") for the deterministic scheduler.
//
// A Fiber is a suspended computation with its own call stack. Switching
// between two fibers is a userspace register swap, roughly two orders of
// magnitude cheaper than the mutex/condvar token handoff between OS threads
// it replaces: no futex, no kernel scheduler, no cacheline ping-pong between
// cores. All fibers of an Engine run on the one OS thread that called
// Engine::run(), so `thread_local` state is shared and no synchronization is
// ever needed.
//
// Switch mechanism:
//   - On x86-64 SysV targets the switch is a hand-rolled assembly routine
//     that saves the six callee-saved GPRs plus the stack pointer and resumes
//     the destination fiber with a plain `ret` — no syscall. This matters:
//     glibc's swapcontext() calls sigprocmask() on every switch to save the
//     signal mask, and at ~2 switches per simulated event that one syscall
//     dominated the whole simulator (observed at ~67% of host CPU). Fibers
//     never touch the signal mask or the FP control/MXCSR words, so neither
//     needs saving.
//   - Everywhere else the portable ucontext path is used unchanged.
//
// Stack contract:
//   - Fiber stacks are anonymous private mappings of `stack_bytes` rounded
//     up to whole pages (minimum kMinStackBytes), plus one PROT_NONE guard
//     page at the low end. Stacks grow down on every supported target, so
//     overflowing a fiber stack faults deterministically on the guard page
//     instead of silently corrupting a neighbouring allocation — the same
//     safety pthread stacks provided before.
//   - The adopting constructor (`Fiber()`) wraps the calling thread's native
//     stack; it owns no memory and is only a switch target/source.
//
// AddressSanitizer: ASan tracks one shadow "fake stack" per call stack, so
// every switch must be announced via __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber or ASan reports false stack-use-after-
// return errors and misattributes frames. switch_to() does this when built
// with -fsanitize=address (clang `__has_feature` or gcc
// `__SANITIZE_ADDRESS__`), and is zero-cost otherwise. The assembly switch
// is ASan-compatible: the hooks bracket it exactly as they did swapcontext.
#pragma once

#include <cstddef>

#if defined(__x86_64__) && defined(__linux__)
#define CASPER_FIBER_ASM 1
#else
#define CASPER_FIBER_ASM 0
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define CASPER_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CASPER_ASAN_FIBERS 1
#endif
#endif

#if CASPER_FIBER_ASM
extern "C" void casper_fiber_entry(void* fiber) __attribute__((noreturn));
#endif

namespace casper::sim {

/// A stackful user-level coroutine. Non-copyable, non-movable: the engine
/// stores fibers behind stable pointers and suspended frames hold
/// self-addresses.
class Fiber {
 public:
  using Entry = void (*)(void*);

  /// Smallest usable fiber stack (before the guard page is added). Rank
  /// bodies run real code; anything below this cannot even enter main_.
  static constexpr std::size_t kMinStackBytes = 16 * 1024;

  /// Adopt the calling thread's native stack. The resulting fiber has no
  /// entry point; it becomes resumable the first time switch_to() switches
  /// *away* from it.
  Fiber();

  /// Create a suspended fiber that will invoke `entry(arg)` when first
  /// switched to. `entry` must never return: a fiber ends by switching away
  /// for the last time (the engine aborts if entry falls off the end).
  /// `stack_bytes` is rounded up to whole pages and clamped to
  /// kMinStackBytes; one extra guard page is mapped below the stack.
  Fiber(Entry entry, void* arg, std::size_t stack_bytes);

  /// Unmaps the stack (if owned). Destroying a fiber that is suspended
  /// mid-execution reclaims its stack without unwinding it — deterministic,
  /// but objects on that stack are not destructed; the engine only does this
  /// for fibers that are finished or were never started.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Suspend `from` (which must be the running fiber) and resume `to`.
  /// Returns when something switches back to `from`. If `from_exiting` is
  /// true, `from` will never be resumed: its ASan fake stack is released.
  static void switch_to(Fiber& from, Fiber& to, bool from_exiting = false);

  /// True for fibers created with an entry point (owning a mapped stack).
  bool owns_stack() const { return map_base_ != nullptr; }

 private:
#if CASPER_FIBER_ASM
  friend void ::casper_fiber_entry(void* fiber);

  void* sp_ = nullptr;  // saved stack pointer while suspended
#else
  static void trampoline(unsigned hi, unsigned lo);

  ucontext_t ctx_{};
#endif
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  void* map_base_ = nullptr;     // mmap base (guard page), null if adopted
  std::size_t map_bytes_ = 0;    // total mapping incl. guard page
  void* stack_lo_ = nullptr;     // usable stack bottom (above guard page)
  std::size_t stack_bytes_ = 0;  // usable stack size
#if CASPER_ASAN_FIBERS
  void* fake_stack_ = nullptr;   // ASan fake-stack save slot while suspended
#endif
};

}  // namespace casper::sim
