// Deterministic discrete-event engine with cooperatively scheduled ranks.
//
// Each simulated MPI rank is a user-level stackful fiber (sim::Fiber — a
// ucontext coroutine with its own guard-paged stack) multiplexed on the one
// OS thread that calls run(). Exactly one party (a rank fiber or the
// scheduler) runs at any moment; the scheduler always resumes the runnable
// rank / event with the smallest (virtual time, sequence number) key, so
// execution order — and therefore every simulated result — is
// bit-reproducible. A rank switch is a ~100 ns userspace register swap, not
// the mutex/condvar OS-thread handoff (two kernel context switches plus lock
// traffic) earlier versions paid per scheduling decision.
//
// Determinism argument: scheduling decisions depend only on the (t, seq)
// min-heaps, seq is a single monotonically increasing counter, and every tie
// is broken by seq — a total order. Fibers make the interleaving literally
// single-threaded, so no OS scheduler choice, lock handoff, or memory-model
// subtlety can perturb it; Options::stack_bytes changes where stacks live,
// never what order code runs in.
//
// Stack sizing: Options::stack_bytes sizes each rank fiber's stack (rounded
// up to whole pages, minimum Fiber::kMinStackBytes). A PROT_NONE guard page
// below each stack turns overflow into a deterministic fault, preserving the
// overflow safety pthread stacks used to provide.
//
// Rank code interacts with the engine through `Context`:
//   ctx.compute(us(100));   // model computation (extendable by stolen cycles)
//   ctx.advance(ns(500));   // model fixed software overhead
//   engine.block_self();    // wait until another party calls wake()
//
// Event callbacks posted with post_event() run on the scheduler fiber at
// their timestamp, strictly interleaved with rank execution in time order.
// They must not block; they typically deliver messages and wake ranks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/eventfn.hpp"
#include "sim/fiber.hpp"
#include "sim/heap.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace casper::sim {

class Engine;

/// Callback interface for observing scheduling decisions as they happen
/// (the observability layer's Recorder implements it). Unlike
/// set_schedule_trace this does not accumulate storage in the engine, so it
/// suits long runs where only a bounded window of history is wanted.
class SchedObserver {
 public:
  virtual ~SchedObserver() = default;
  /// At virtual time `t` the engine resumed `rank` (-1: event callback).
  virtual void on_schedule(Time t, int rank) = 0;
};

/// Per-rank handle passed to user rank code; all simulation interaction for a
/// rank goes through its Context (valid only on that rank's fiber).
class Context {
 public:
  int rank() const { return rank_; }
  int size() const;
  Time now() const;
  Engine& engine() const { return *engine_; }
  Rng& rng() const;

  /// Model computation of duration `d`. While "computing", interrupt-style
  /// progress agents may steal cycles (add_compute_penalty), extending the
  /// completion time. A compute-rate factor (see set_compute_scale) models
  /// core oversubscription.
  void compute(Time d);

  /// Advance this rank's clock by `d` without the compute-penalty semantics
  /// (models fixed software overheads inside the runtime).
  void advance(Time d);

  /// Yield to let any same-time events run, without advancing the clock.
  void yield();

 private:
  friend class Engine;
  Context(Engine* e, int r) : engine_(e), rank_(r) {}
  Engine* engine_;
  int rank_;
};

/// The discrete-event engine. Construct, then run() to execute all ranks'
/// main functions to completion in virtual time.
class Engine {
 public:
  struct Options {
    int nranks = 1;
    std::uint64_t seed = 12345;
    /// Usable stack bytes per rank fiber (page-rounded, guard page added).
    std::size_t stack_bytes = 256 * 1024;
    /// Non-zero: perturb scheduling tie-breaks. Parties scheduled for the
    /// SAME virtual time are ordered by a seeded pseudo-random salt instead
    /// of (rank, seq), so each perturb_seed explores a different — but still
    /// bit-reproducible — legal interleaving. Events still run before ranks
    /// at equal timestamps (deliveries stay visible to a rank resuming at
    /// that instant), and virtual-time ordering is never violated, so every
    /// perturbed schedule is one the unperturbed rules could legally emit
    /// under different message timings. 0 = classic deterministic order.
    std::uint64_t perturb_seed = 0;
  };
  using RankMain = std::function<void(Context&)>;

  Engine(Options opts, RankMain main);

  /// Destruction reclaims all fiber stacks deterministically — including
  /// when run() was never called or ranks never finished; nothing can hang.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the simulation to completion. Aborts with a diagnostic if the
  /// simulation deadlocks (ranks blocked with no pending events).
  void run();

  int nranks() const { return static_cast<int>(ranks_.size()); }

  /// Virtual clock of a rank.
  Time rank_now(int rank) const;

  /// Largest virtual time reached by any rank or event (the "makespan").
  Time horizon() const { return horizon_; }

  // --- services for the runtime layers (call only while holding the token,
  //     i.e. from rank code or from an event callback) ---

  /// Schedule `cb` to run on the scheduler fiber at virtual time `t` (>= the
  /// current global time). EventFn is move-only, so closures may own pooled
  /// buffers; posting allocates nothing once the slot pool is warm.
  void post_event(Time t, EventFn cb);

  /// Move the calling rank's clock to `t` and yield until then.
  void advance_self_to(Time t);

  /// Block the calling rank until some party calls wake() on it. The caller
  /// must re-check its predicate on return (wakeups can be "spurious" when
  /// several conditions share a waiter).
  void block_self();

  /// Make `rank` runnable no earlier than time `t` (no-op unless blocked).
  void wake(int rank, Time t);

  /// Add stolen compute time to `rank` (interrupt progress model). Only has
  /// an effect while the rank is inside Context::compute().
  void add_compute_penalty(int rank, Time t);

  /// True while `rank` is inside Context::compute().
  bool rank_computing(int rank) const;

  /// Scale factor applied to all subsequent compute() durations of `rank`;
  /// models core oversubscription (e.g. 2.0 when a progress thread shares
  /// the core).
  void set_compute_scale(int rank, double scale);

  Stats& stats() { return stats_; }
  Rng& rank_rng(int rank) { return ranks_[rank]->rng; }

  /// Extra diagnostics printed when the simulation deadlocks (set by the
  /// runtime layer to dump communication state).
  void set_deadlock_dump(std::function<void()> dump) {
    deadlock_dump_ = std::move(dump);
  }

  /// Context of the calling fiber; aborts if called off a rank fiber.
  static Context& current();

  /// One scheduling decision: at virtual time `t` the engine handed the
  /// token to `rank` (or ran an event callback, rank == -1).
  struct SchedRecord {
    Time t;
    int rank;  // -1 for event callbacks
  };

  /// Capture every scheduling decision into `sink` (null disables capture).
  /// The recorded sequence identifies a schedule exactly: together with
  /// (seed, perturb_seed) it makes interleaving bugs replayable and lets a
  /// repro file show *where* two schedules diverged.
  void set_schedule_trace(std::vector<SchedRecord>* sink) {
    sched_trace_ = sink;
  }

  /// Notify `obs` of every scheduling decision (null disables). Independent
  /// of set_schedule_trace; both may be active at once.
  void set_sched_observer(SchedObserver* obs) { sched_obs_ = obs; }

 private:
  friend class Context;

  enum class St : std::uint8_t { NotStarted, Ready, Running, Blocked, Done };

  struct RankState {
    explicit RankState(Engine* e, int r) : ctx(e, r), rng() {}
    Context ctx;
    Rng rng;
    St st = St::NotStarted;
    Time now = 0;
    Time penalty = 0;         // stolen compute time not yet consumed
    bool computing = false;   // inside Context::compute()
    double compute_scale = 1.0;
    std::unique_ptr<Fiber> fiber;  // created by run(), freed when Done
  };

  struct HeapItem {
    Time t;
    std::uint64_t seq;
    std::uint64_t salt;  // 0 unless schedule perturbation is on
    int rank;            // -1 for events
    bool operator>(const HeapItem& o) const {
      if (t != o.t) return t > o.t;
      if (salt != o.salt) return salt > o.salt;
      if (rank != o.rank) {
        // Events (-1) before ranks at equal time, then lower rank first.
        return rank > o.rank || (rank >= 0 && o.rank < 0);
      }
      return seq > o.seq;
    }
  };

  /// Heap entry for a pending event; the callback lives in a pooled slot
  /// (event_cbs_) so heap sifts move 32 plain bytes, never a std::function.
  struct EventKey {
    Time t;
    std::uint64_t seq;
    std::uint64_t salt;  // 0 unless schedule perturbation is on
    std::uint32_t slot;
    bool operator>(const EventKey& o) const {
      if (t != o.t) return t > o.t;
      if (salt != o.salt) return salt > o.salt;
      return seq > o.seq;
    }
  };

  /// Tie-break salt for the next heap push (0 when perturbation is off).
  std::uint64_t next_salt() {
    return opts_.perturb_seed == 0 ? 0 : perturb_rng_.next_u64();
  }

  static void fiber_trampoline(void* arg);
  void rank_fiber_body(int rank);
  void hand_token_to(int rank);
  void yield_to_scheduler(int rank, bool exiting = false);
  void make_ready(int rank, Time t);
  [[noreturn]] void die_deadlocked();

  Options opts_;
  RankMain main_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  MinHeap<HeapItem> ready_;
  MinHeap<EventKey> events_;
  // Pooled event-callback slots, indexed by EventKey::slot; free_slots_ is
  // the recycle list. At steady state the pool stops growing, and EventFn
  // keeps closures inline, so posting an event costs no allocation at all.
  std::vector<EventFn> event_cbs_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t seq_ = 0;
  Time horizon_ = 0;
  int done_count_ = 0;
  bool running_ = false;

  Fiber sched_fiber_;  // adopts the thread that calls run()

  Rng perturb_rng_;  // tie-break salt stream (seeded by Options::perturb_seed)
  std::vector<SchedRecord>* sched_trace_ = nullptr;
  SchedObserver* sched_obs_ = nullptr;

  std::function<void()> deadlock_dump_;
  Stats stats_;
};

}  // namespace casper::sim
