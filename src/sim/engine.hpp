// Deterministic discrete-event engine with cooperatively scheduled ranks.
//
// Each simulated MPI rank is a user-level stackful fiber (sim::Fiber — a
// coroutine with its own guard-paged stack). In the classic configuration
// (Options::shards == 1) every fiber is multiplexed on the one OS thread
// that calls run(): exactly one party (a rank fiber or the scheduler) runs
// at any moment; the scheduler always resumes the runnable rank / event with
// the smallest (virtual time, sequence number) key, so execution order — and
// therefore every simulated result — is bit-reproducible. A rank switch is a
// ~100 ns userspace register swap, not the mutex/condvar OS-thread handoff
// (two kernel context switches plus lock traffic) earlier versions paid per
// scheduling decision.
//
// Determinism argument (single shard): scheduling decisions depend only on
// the (t, seq) min-heaps, seq is a single monotonically increasing counter,
// and every tie is broken by seq — a total order. Fibers make the
// interleaving literally single-threaded, so no OS scheduler choice, lock
// handoff, or memory-model subtlety can perturb it; Options::stack_bytes
// changes where stacks live, never what order code runs in.
//
// Sharded configuration (Options::shards > 1, DESIGN.md §12): ranks are
// partitioned into shards, each driven by its own host worker thread with a
// private ready heap, event calendar, slot pools, fiber stack pool, and
// stats block — intra-shard scheduling takes no locks at all. Shards advance
// in conservative lookahead windows (Lubachevsky bounded-lag): a window
// barrier computes the global minimum next-item time T and every shard then
// executes only items with t < T + lookahead. Cross-shard effects are staged
// in per-destination outboxes and merged at the next barrier. Events the
// runtime posts across shards carry at least the minimum network latency,
// so with lookahead <= that latency no merged event can land inside an
// already-executed region. Same-timestamp ties are broken by a canonical
// causal key (send virtual time, sender rank, per-sender posting sequence)
// assigned at post time — a pure function of the simulation, independent of
// which host thread staged the event — so virtual-time results, window
// bytes, and metrics are SHARD-COUNT INVARIANT, not merely run-to-run
// stable (tests/test_sharded_runtime.cpp sweeps shards over {1,2,4,8}).
//
// Stack sizing: Options::stack_bytes sizes each rank fiber's stack (rounded
// up to whole pages, minimum Fiber::kMinStackBytes). A PROT_NONE guard page
// below each stack turns overflow into a deterministic fault.
//
// Rank code interacts with the engine through `Context`:
//   ctx.compute(us(100));   // model computation (extendable by stolen cycles)
//   ctx.advance(ns(500));   // model fixed software overhead
//   engine.block_self();    // wait until another party calls wake()
//
// Event callbacks posted with post_event() run on the scheduler fiber at
// their timestamp, strictly interleaved with rank execution in time order.
// They must not block; they typically deliver messages and wake ranks. In
// sharded mode an event must run on the shard owning the rank whose state it
// mutates — post it with the homed overload post_event(t, home_rank, cb).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/eventfn.hpp"
#include "sim/fiber.hpp"
#include "sim/heap.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace casper::sim {

class Engine;

/// Callback interface for observing scheduling decisions as they happen
/// (the observability layer's Recorder implements it). Unlike
/// set_schedule_trace this does not accumulate storage in the engine, so it
/// suits long runs where only a bounded window of history is wanted.
/// Sharded runs invoke it concurrently from every shard thread; an
/// implementation must route through per-shard storage (Recorder does, via
/// Engine::current_shard()).
class SchedObserver {
 public:
  virtual ~SchedObserver() = default;
  /// At virtual time `t` the engine resumed `rank` (-1: event callback).
  virtual void on_schedule(Time t, int rank) = 0;
};

/// Per-rank handle passed to user rank code; all simulation interaction for a
/// rank goes through its Context (valid only on that rank's fiber).
class Context {
 public:
  int rank() const { return rank_; }
  int size() const;
  Time now() const;
  Engine& engine() const { return *engine_; }
  Rng& rng() const;

  /// Model computation of duration `d`. While "computing", interrupt-style
  /// progress agents may steal cycles (add_compute_penalty), extending the
  /// completion time. A compute-rate factor (see set_compute_scale) models
  /// core oversubscription.
  void compute(Time d);

  /// Advance this rank's clock by `d` without the compute-penalty semantics
  /// (models fixed software overheads inside the runtime).
  void advance(Time d);

  /// Yield to let any same-time events run, without advancing the clock.
  void yield();

 private:
  friend class Engine;
  Context(Engine* e, int r) : engine_(e), rank_(r) {}
  Engine* engine_;
  int rank_;
};

/// The discrete-event engine. Construct, then run() to execute all ranks'
/// main functions to completion in virtual time.
class Engine {
 public:
  struct Options {
    int nranks = 1;
    std::uint64_t seed = 12345;
    /// Usable stack bytes per rank fiber (page-rounded, guard page added).
    std::size_t stack_bytes = 256 * 1024;
    /// Non-zero: perturb scheduling tie-breaks. Parties scheduled for the
    /// SAME virtual time are ordered by a seeded pseudo-random salt instead
    /// of (rank, seq), so each perturb_seed explores a different — but still
    /// bit-reproducible — legal interleaving. Events still run before ranks
    /// at equal timestamps (deliveries stay visible to a rank resuming at
    /// that instant), and virtual-time ordering is never violated, so every
    /// perturbed schedule is one the unperturbed rules could legally emit
    /// under different message timings. 0 = classic deterministic order.
    /// Single-shard only (the sharded scheduler's merge order is its own,
    /// already-explored source of legal tie permutations).
    std::uint64_t perturb_seed = 0;
    /// Number of scheduler shards (worker threads). 1 = the classic
    /// single-threaded scheduler, bit-exact with previous releases.
    int shards = 1;
    /// Conservative synchronization window for shards > 1: no cross-shard
    /// effect may be scheduled less than `lookahead` after the time of the
    /// party posting it (the runtime sets this to the minimum cross-node
    /// network latency and clamps it further when small cross-shard
    /// communicators exist; see clamp_lookahead()).
    Time lookahead = us(1);
    /// Rank -> shard id map; must be stable and in [0, shards). Defaults to
    /// contiguous equal blocks. The MPI runtime passes a node-aligned map so
    /// cross-shard always implies cross-node (inter-node latency floor).
    std::function<int(int)> shard_of;
  };
  using RankMain = std::function<void(Context&)>;

  Engine(Options opts, RankMain main);

  /// Destruction reclaims all fiber stacks deterministically — including
  /// when run() was never called or ranks never finished; nothing can hang.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the simulation to completion. Aborts with a diagnostic if the
  /// simulation deadlocks (ranks blocked with no pending events).
  void run();

  int nranks() const { return static_cast<int>(ranks_.size()); }

  /// Virtual clock of a rank.
  Time rank_now(int rank) const;

  /// Largest virtual time reached by any rank or event (the "makespan").
  Time horizon() const { return horizon_; }

  // --- services for the runtime layers (call only while holding the token,
  //     i.e. from rank code or from an event callback) ---

  /// Schedule `cb` to run on the scheduler fiber at virtual time `t` (>= the
  /// current global time). EventFn is move-only, so closures may own pooled
  /// buffers; posting allocates nothing once the slot pool is warm. In
  /// sharded mode the event runs on the calling shard — use the homed
  /// overload whenever the callback touches another rank's state.
  void post_event(Time t, EventFn cb);

  /// Schedule `cb` to run at `t` on the shard owning `home_rank` (the rank
  /// whose state the callback mutates). Identical to the unhomed overload
  /// when shards == 1. Cross-shard posts must satisfy the lookahead
  /// contract: t >= (posting shard's window end); violations abort.
  void post_event(Time t, int home_rank, EventFn cb);

  /// Move the calling rank's clock to `t` and yield until then.
  void advance_self_to(Time t);

  /// Block the calling rank until some party calls wake() on it. The caller
  /// must re-check its predicate on return (wakeups can be "spurious" when
  /// several conditions share a waiter).
  void block_self();

  /// Make `rank` runnable no earlier than time `t` (no-op unless blocked).
  /// Sharded mode: `rank` must live on the calling shard (see wake_at).
  void wake(int rank, Time t);

  /// Cross-shard-safe wake: direct when `rank` is shard-local (or shards ==
  /// 1, where it is byte-identical to wake()), otherwise staged as a homed
  /// event at `t`. Use from runtime code that may wake a remote rank.
  void wake_at(int rank, Time t);

  /// Add stolen compute time to `rank` (interrupt progress model). Only has
  /// an effect while the rank is inside Context::compute(). Shard-local.
  void add_compute_penalty(int rank, Time t);

  /// True while `rank` is inside Context::compute().
  bool rank_computing(int rank) const;

  /// Scale factor applied to all subsequent compute() durations of `rank`;
  /// models core oversubscription (e.g. 2.0 when a progress thread shares
  /// the core).
  void set_compute_scale(int rank, double scale);

  /// Simulation-wide counters. Single-shard: the live registry. Sharded:
  /// the post-run merge of every shard's registry (valid after run()).
  Stats& stats() { return stats_; }

  /// The registry hot paths must increment: the calling shard's own block in
  /// sharded mode (no synchronization), stats() otherwise.
  Stats& stats_local();

  /// A specific shard's registry (stable from construction), for resolving
  /// per-shard hot-counter pointers before run().
  Stats& shard_stats(int shard);

  Rng& rank_rng(int rank) { return ranks_[rank]->rng; }

  // --- sharding introspection ---

  bool sharded() const { return !shards_.empty(); }
  int shards() const {
    return shards_.empty() ? 1 : static_cast<int>(shards_.size());
  }
  int shard_of_rank(int rank) const {
    return shard_of_rank_.empty() ? 0 : shard_of_rank_[rank];
  }
  /// Shard id of the calling thread (0 when single-sharded or off-engine).
  static int current_shard();

  /// Shrink the conservative lookahead (no-op if `la` is not smaller). The
  /// runtime calls this when a communicator whose collective-release floor
  /// is below the current lookahead comes into existence; takes effect at
  /// the next window barrier.
  void clamp_lookahead(Time la);
  Time lookahead() const { return lookahead_.load(std::memory_order_relaxed); }

  /// Extra diagnostics printed when the simulation deadlocks (set by the
  /// runtime layer to dump communication state).
  void set_deadlock_dump(std::function<void()> dump) {
    deadlock_dump_ = std::move(dump);
  }

  /// Context of the calling fiber; aborts if called off a rank fiber.
  static Context& current();

  /// One scheduling decision: at virtual time `t` the engine handed the
  /// token to `rank` (or ran an event callback, rank == -1).
  struct SchedRecord {
    Time t;
    int rank;  // -1 for event callbacks
  };

  /// Capture every scheduling decision into `sink` (null disables capture).
  /// The recorded sequence identifies a schedule exactly: together with
  /// (seed, perturb_seed) it makes interleaving bugs replayable and lets a
  /// repro file show *where* two schedules diverged. Single-shard only.
  void set_schedule_trace(std::vector<SchedRecord>* sink) {
    sched_trace_ = sink;
  }

  /// Notify `obs` of every scheduling decision (null disables). Independent
  /// of set_schedule_trace; both may be active at once.
  void set_sched_observer(SchedObserver* obs) { sched_obs_ = obs; }

 private:
  friend class Context;

  enum class St : std::uint8_t { NotStarted, Ready, Running, Blocked, Done };

  struct RankState {
    explicit RankState(Engine* e, int r) : ctx(e, r), rng() {}
    Context ctx;
    Rng rng;
    St st = St::NotStarted;
    Time now = 0;
    Time penalty = 0;         // stolen compute time not yet consumed
    /// Canonical per-sender post counter (sharded runs); lives here, next
    /// to `now`, so the post hot path touches one rank cache line. Only the
    /// shard owning this rank ever increments it.
    std::uint64_t post_seq = 0;
    bool computing = false;   // inside Context::compute()
    double compute_scale = 1.0;
    std::unique_ptr<Fiber> fiber;  // created on first schedule, freed Done
  };

  struct HeapItem {
    Time t;
    std::uint64_t seq;
    std::uint32_t salt;  // 0 unless schedule perturbation is on
    std::int32_t rank;   // -1 for events
    bool operator>(const HeapItem& o) const {
      if (t != o.t) return t > o.t;
      if (salt != o.salt) return salt > o.salt;
      if (rank != o.rank) {
        // Events (-1) before ranks at equal time, then lower rank first.
        return rank > o.rank || (rank >= 0 && o.rank < 0);
      }
      return seq > o.seq;
    }
  };

  /// Heap entry for a pending event; the callback lives in a pooled slot
  /// (SlotPool) so heap sifts move plain bytes, never a closure.
  ///
  /// Tie-break at equal delivery time: salt (perturbed single-shard runs),
  /// then the canonical causal key (send_t, sender, seq). Single-shard posts
  /// pin send_t = 0 and sender = -1, so their order reduces to the legacy
  /// global (t, salt, seq) — bit-exact with previous releases. Sharded posts
  /// carry the posting context's virtual time, its home rank, and a
  /// per-sender sequence number; all three are functions of the simulation
  /// itself, never of the shard layout, which is what makes same-timestamp
  /// execution order — and therefore every virtual-time result —
  /// shard-count-invariant.
  struct EventKey {
    Time t;
    Time send_t;         // posting context's virtual time (0 single-shard)
    std::uint64_t seq;   // per-sender in sharded runs, global otherwise
    std::uint32_t salt;  // 0 unless schedule perturbation is on
    std::uint32_t slot;
    std::int32_t sender;  // posting context's home rank (-1 single-shard)
    std::int32_t home;    // rank whose shard executes the event
    bool operator>(const EventKey& o) const {
      if (t != o.t) return t > o.t;
      if (salt != o.salt) return salt > o.salt;
      if (send_t != o.send_t) return send_t > o.send_t;
      if (sender != o.sender) return sender > o.sender;
      return seq > o.seq;
    }
  };

  /// What pop_event_core hands back: the callback's slot plus the home rank
  /// the sharded executor attributes nested posts to (-1 single-shard).
  struct PoppedEvent {
    std::uint32_t slot;
    std::int32_t home;
  };

  /// Two-tier pooled event-callback slots. Most closures are a couple of
  /// scalars and live in compact SmallEventFn slots; only closures larger
  /// than SmallEventFn::kInline (the AmOp-carrying RMA deliveries) use the
  /// full-width tier. Splitting tiers keeps the live-slot array inside the
  /// cache at high event counts — the difference between 10M and 14M
  /// dispatches/sec at 16 ranks, and more at 1024. Slot ids carry the tier
  /// in the top bit.
  struct SlotPool {
    static constexpr std::uint32_t kBigBit = 0x80000000u;
    std::vector<SmallEventFn> small;
    std::vector<std::uint32_t> small_free;
    std::vector<EventFn> big;
    std::vector<std::uint32_t> big_free;

    std::uint32_t put(EventFn&& cb) {
      // Heap-held payloads are a pointer steal — the small tier fits them.
      if (cb.on_heap() || cb.payload_size() <= SmallEventFn::kInline) {
        if (small_free.empty()) {
          const auto s = static_cast<std::uint32_t>(small.size());
          small.push_back(std::move(cb));
          return s;
        }
        const std::uint32_t s = small_free.back();
        small_free.pop_back();
        small[s] = std::move(cb);
        return s;
      }
      if (big_free.empty()) {
        const auto s = static_cast<std::uint32_t>(big.size());
        big.push_back(std::move(cb));
        return s | kBigBit;
      }
      const std::uint32_t s = big_free.back();
      big_free.pop_back();
      big[s] = std::move(cb);
      return s | kBigBit;
    }

    /// Move the callback out and recycle the slot. Must happen *before* the
    /// callback runs: it may post events and grow the slot vectors.
    EventFn take(std::uint32_t slot) {
      if ((slot & kBigBit) != 0) {
        const std::uint32_t s = slot & ~kBigBit;
        EventFn cb = std::move(big[s]);
        big_free.push_back(s);
        return cb;
      }
      EventFn cb(std::move(small[slot]));
      small_free.push_back(slot);
      return cb;
    }
  };

  /// Bounded-horizon bucket calendar (sharded scheduler's event queue).
  /// Covers [base, base + kBuckets) nanoseconds with one bucket per
  /// nanosecond, indexed by absolute time so rebasing moves no data. In the
  /// single-shard calendar (`sorted` false) entries within a bucket — one
  /// timestamp — pop in append order == posting order == seq order,
  /// reproducing the (t, seq) total order with O(1) insert and pop; the
  /// binary heap's O(log n) sift and its cache misses are what cap
  /// single-threaded event throughput. Shard calendars set `sorted`: buckets
  /// are kept ordered by the canonical (send_t, sender, seq) causal key so
  /// same-timestamp pops are shard-count-invariant, with the append fast
  /// path still O(1) for the monotone common case. Events beyond the span
  /// spill to a keyed heap and refill when the base advances.
  struct Calendar {
    static constexpr std::size_t kBuckets = 4096;  // power of two, ns each
    static constexpr std::uint32_t kNil = 0xffffffffu;
    /// Buckets are intrusive FIFO lists over one shared node arena: the
    /// arena grows geometrically and nodes recycle through a free list, so
    /// the steady state allocates nothing no matter which of the 4096
    /// buckets the workload rotates through (per-bucket vectors would pay
    /// one warm-up allocation per bucket, which the zero-allocation hot
    /// path guard rightly counts).
    struct Node {
      std::uint32_t slot;
      std::uint32_t next;
      std::int32_t sender;
      std::int32_t home;
      Time send_t;
      std::uint64_t seq;
    };
    /// Canonical intra-bucket order (delivery times are equal by
    /// construction — a bucket holds exactly one timestamp).
    static bool key_less(const Node& a, const Node& b) {
      if (a.send_t != b.send_t) return a.send_t < b.send_t;
      if (a.sender != b.sender) return a.sender < b.sender;
      return a.seq < b.seq;
    }
    std::array<std::uint32_t, kBuckets> head;
    std::array<std::uint32_t, kBuckets> tail;
    std::vector<Node> nodes;
    std::uint32_t free_head = kNil;
    std::uint64_t occ[kBuckets / 64] = {};
    Time base = 0;
    std::size_t pending = 0;
    bool sorted = false;  // shard calendars keep buckets in key order

    Calendar() {
      head.fill(kNil);
      tail.fill(kNil);
    }

    bool in_span(Time t) const { return t - base < kBuckets; }
    void add(Time t, std::uint32_t slot, std::int32_t home,
             std::int32_t sender, Time send_t, std::uint64_t seq) {
      std::uint32_t n;
      if (free_head != kNil) {
        n = free_head;
        free_head = nodes[n].next;
        nodes[n] = Node{slot, kNil, sender, home, send_t, seq};
      } else {
        n = static_cast<std::uint32_t>(nodes.size());
        nodes.push_back(Node{slot, kNil, sender, home, send_t, seq});
      }
      const std::size_t i = static_cast<std::size_t>(t) & (kBuckets - 1);
      ++pending;
      if (head[i] == kNil) {
        head[i] = tail[i] = n;
        occ[i >> 6] |= 1ull << (i & 63);
        return;
      }
      if (!sorted || !key_less(nodes[n], nodes[tail[i]])) {
        nodes[tail[i]].next = n;  // append: monotone keys, the common case
        tail[i] = n;
        return;
      }
      if (key_less(nodes[n], nodes[head[i]])) {
        nodes[n].next = head[i];
        head[i] = n;
        return;
      }
      std::uint32_t p = head[i];
      while (nodes[p].next != kNil &&
             !key_less(nodes[n], nodes[nodes[p].next])) {
        p = nodes[p].next;
      }
      nodes[n].next = nodes[p].next;
      nodes[p].next = n;
      if (nodes[n].next == kNil) tail[i] = n;
    }
    Node pop_at(Time t) {
      const std::size_t i = static_cast<std::size_t>(t) & (kBuckets - 1);
      const std::uint32_t n = head[i];
      const Node out = nodes[n];
      head[i] = nodes[n].next;
      if (head[i] == kNil) occ[i >> 6] &= ~(1ull << (i & 63));
      nodes[n].next = free_head;
      free_head = n;
      --pending;
      return out;
    }
    /// Smallest occupied time >= from (caller guarantees from >= base and
    /// pending > 0 implies an entry in [base, base + kBuckets)).
    Time next_from(Time from) const;
  };

  /// Everything one scheduler shard owns. Worker threads touch only their
  /// own shard between barriers; outboxes are written by the owner and
  /// drained inside the barrier's serial section while all shards are
  /// quiescent.
  struct ShardState {
    int id = 0;
    std::vector<int> ranks;  // global rank ids owned by this shard
    MinHeap<HeapItem> ready;
    Calendar cal;
    MinHeap<EventKey> far;  // events beyond the calendar span
    SlotPool slots;
    std::uint64_t seq = 0;
    Time next_ev = kNever;  // min pending event time (calendar or far)
    Time window_end = 0;    // exclusive execution horizon of this window
    Time exec_now = 0;      // largest time this shard has executed to
    /// Home rank of the event callback currently executing (-1 outside
    /// one); nested posts from a callback attribute to this rank so their
    /// canonical keys are functions of the simulation, not the shard map.
    std::int32_t exec_home = -1;
    Time next_time = kNever;  // min next item time, read at the barrier
    Time horizon = 0;
    int done = 0;
    StackPool stacks;
    Stats stats;
    Fiber* sched_fiber = nullptr;  // worker thread's adopted fiber
    /// Cross-shard staging: one vector per destination shard. Entries carry
    /// their canonical causal key, assigned at post time on the source
    /// shard, so the merge order is irrelevant to the destination's
    /// intra-bucket sort.
    struct Staged {
      Time t;
      Time send_t;
      std::uint64_t seq;
      std::int32_t home;
      std::int32_t sender;
      EventFn cb;
    };
    std::vector<std::vector<Staged>> outbox;
  };

  /// Tie-break salt for the next heap push (0 when perturbation is off).
  std::uint32_t next_salt() {
    return opts_.perturb_seed == 0
               ? 0
               : static_cast<std::uint32_t>(perturb_rng_.next_u64() >> 32);
  }

  static void fiber_trampoline(void* arg);
  void rank_fiber_body(int rank);
  void hand_token_to(int rank);
  void yield_to_scheduler(int rank, bool exiting = false);
  void make_ready(int rank, Time t);
  void ensure_fiber(RankState& rs, StackPool* pool);
  [[noreturn]] void die_deadlocked();

  // --- sharded core (engine.cpp) ---
  void run_single();
  void run_sharded();
  void shard_main(ShardState& sh);
  void execute_window(ShardState& sh);
  /// Barrier + serial section; returns true when the run is complete.
  bool window_barrier(ShardState& sh);
  void serial_merge_and_plan();
  void shard_insert_local(ShardState& sh, Time t, std::int32_t home,
                          std::int32_t sender, Time send_t, std::uint64_t seq,
                          EventFn cb);
  Time shard_next_time(ShardState& sh);
  ShardState& cur_shard();
  /// Resolve the posting context for a sharded post: the rank fiber holding
  /// the token, else the executing event's home, else -1 (pre-run setup).
  /// Returns the sender rank, its virtual time, and its next sequence
  /// number — the canonical causal key shared by every shard layout.
  void post_ctx(std::int32_t* sender, Time* send_t, std::uint64_t* seq);

  // --- shared event-queue core (calendar + spill heap; engine.cpp) --------
  /// Pull every spilled event now inside the calendar span (entries below
  /// `base` — "overdue" posts from lagging-clock ranks — stay in `far` and
  /// pop from there).
  static void refill_core(Calendar& cal, MinHeap<EventKey>& far,
                          Time& next_ev);
  /// Earliest pending event time across calendar + spill heap, advancing
  /// the calendar base as far as `bound` allows. Returns kNever when empty.
  static Time next_event_core(Calendar& cal, MinHeap<EventKey>& far,
                              Time& next_ev, Time bound);
  /// Pop the event `next_event_core` just reported at `te`.
  static PoppedEvent pop_event_core(Calendar& cal, MinHeap<EventKey>& far,
                                    Time next_ev, Time te);

  Options opts_;
  RankMain main_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  MinHeap<HeapItem> ready_;
  MinHeap<EventKey> events_;
  SlotPool slots_;
  /// Single-shard event queue when perturbation is off: the same calendar +
  /// spill pair the shards use. With every salt zero, (t, seq) calendar
  /// order is exactly the salted heap's pop order, so this is bit-exact
  /// with events_ while making insert/pop O(1). Perturbed runs need a
  /// comparison-based queue (salts reorder equal-time events) and keep
  /// using events_.
  Calendar cal_;
  MinHeap<EventKey> far_;
  Time next_ev_ = kNever;
  std::uint64_t seq_ = 0;
  Time horizon_ = 0;
  int done_count_ = 0;
  bool running_ = false;

  Fiber sched_fiber_;  // adopts the thread that calls run() (single-shard)

  // --- sharded state ---
  std::vector<std::unique_ptr<ShardState>> shards_;  // empty when unsharded
  std::vector<int> shard_of_rank_;
  /// Post counter for sender -1 (pre-run setup posts, single-threaded).
  /// Rank senders count in RankState::post_seq, touched only by the shard
  /// owning the rank — every execution context lives on its home's shard —
  /// so no synchronization, and the values are identical for every shard
  /// count.
  std::uint64_t setup_post_seq_ = 0;
  std::atomic<Time> lookahead_{0};
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  bool stop_flag_ = false;

  Rng perturb_rng_;  // tie-break salt stream (seeded by Options::perturb_seed)
  std::vector<SchedRecord>* sched_trace_ = nullptr;
  SchedObserver* sched_obs_ = nullptr;

  std::function<void()> deadlock_dump_;
  Stats stats_;
};

}  // namespace casper::sim
