// Minimal binary min-heap with move-out pop.
//
// std::priority_queue only exposes `const T& top()`, which forces a deep copy
// before pop() — for the engine's event queue that meant copying a
// std::function (a heap allocation) per event on the hottest path. This heap
// pops by move. Elements order via `operator>` (smallest on top), exactly the
// comparator std::priority_queue<T, vector<T>, greater<>> used before, so the
// pop order — and therefore the simulation's execution order — is unchanged:
// the engine's comparators are total orders (unique sequence numbers break
// every tie), which makes heap-internal layout differences unobservable.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace casper::sim {

/// Binary min-heap over T using `a > b` ("a after b") for ordering.
template <typename T>
class MinHeap {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  const T& top() const { return v_.front(); }

  void push(T x) {
    v_.push_back(std::move(x));
    std::size_t i = v_.size() - 1;
    // Hole insertion: pull parents down into the hole (one move per level
    // instead of a three-move swap), then place the item once.
    T item = std::move(v_[i]);
    while (i > 0) {
      const std::size_t p = (i - 1) / 2;
      if (!(v_[p] > item)) break;
      v_[i] = std::move(v_[p]);
      i = p;
    }
    v_[i] = std::move(item);
  }

  /// Remove and return the smallest element (by move, no copy).
  T pop() {
    T out = std::move(v_.front());
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      // Sift `last` down from the root, moving smaller children up into the
      // hole instead of swapping.
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        std::size_t c = 2 * i + 1;
        if (c >= n) break;
        if (c + 1 < n && v_[c] > v_[c + 1]) c = c + 1;
        if (!(last > v_[c])) break;
        v_[i] = std::move(v_[c]);
        i = c;
      }
      v_[i] = std::move(last);
    }
    return out;
  }

  void reserve(std::size_t n) { v_.reserve(n); }

 private:
  std::vector<T> v_;
};

}  // namespace casper::sim
