// Flat FIFO ring over a power-of-two vector.
//
// std::deque allocates and frees fixed-size blocks as elements flow through;
// on the software-RMA inbox that is one malloc per ~few ops forever. The ring
// reuses one contiguous array: at steady state push/pop touch no allocator.
// Popped slots are reset to a default-constructed T so element-owned
// resources (pooled payload buffers) are returned immediately, not when the
// slot is next overwritten.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace casper::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() { return v_[head_]; }
  const T& front() const { return v_[head_]; }

  void push_back(T x) {
    if (count_ == v_.size()) grow();
    v_[(head_ + count_) & (v_.size() - 1)] = std::move(x);
    ++count_;
  }

  void pop_front() {
    v_[head_] = T{};
    head_ = (head_ + 1) & (v_.size() - 1);
    --count_;
  }

 private:
  void grow() {
    const std::size_t ncap = v_.empty() ? 8 : v_.size() * 2;
    std::vector<T> nv(ncap);
    for (std::size_t i = 0; i < count_; ++i) {
      nv[i] = std::move(v_[(head_ + i) & (v_.size() - 1)]);
    }
    v_ = std::move(nv);
    head_ = 0;
  }

  std::vector<T> v_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace casper::sim
