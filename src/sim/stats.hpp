// Named counter registry for simulation-wide statistics.
//
// Counters are created on first use and only ever mutated by the thread that
// currently holds the scheduler token, so no synchronization is needed.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace casper::sim {

/// A registry of named monotonic counters (interrupt counts, messages sent,
/// software ops processed, ...). Snapshot-able for tests and benches.
class Stats {
 public:
  /// Mutable reference to the counter named `name` (created at zero).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }

  /// Read a counter; returns 0 if it was never touched.
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// All counters, for reporting.
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

  void clear() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace casper::sim
