// Move-only type-erased callable for engine event callbacks.
//
// std::function cannot hold move-only closures (it requires copy
// construction), which rules out capturing pooled buffers, and it heap-
// allocates any capture over its small-object threshold (16 bytes on
// libstdc++) — one malloc/free per posted event on the RMA hot path, where
// closures carry a full AmOp. BasicEventFn stores captures up to N bytes in
// place; relocation moves only the bytes the closure actually uses
// (trivially-copyable captures memcpy, others run their move constructor).
// Oversized closures fall back to the heap — a cold path kept for safety,
// not used by the runtime.
//
// Two capacities exist because the engine's pooled event slots dominate the
// scheduler's cache footprint: most events are tiny (a couple of captured
// scalars), but sizing every slot for the largest hot-path closure (an AmOp)
// made the live-slot array ~6x larger than the closures stored in it and
// measurably slowed event dispatch at scale. The engine keeps two slot
// tiers; the shared VTable lives at namespace scope so a closure moved from
// an EventFn into a SmallEventFn (or back) keeps its original vtable — a
// cross-capacity move is legal whenever the payload fits the destination
// (payload_size() tells the engine which tier to pick).
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace casper::sim {

namespace detail {

struct EventVTable {
  void (*call)(void*);
  /// Move-construct *src into dst, destroy *src. Null: memcpy(size) works.
  void (*reloc)(void* dst, void* src);
  void (*destroy)(void*);  ///< null: trivially destructible
  std::size_t size;
  bool heap;
};

template <typename Fn>
inline constexpr EventVTable event_vtable_inline{
    [](void* p) { (*static_cast<Fn*>(p))(); },
    std::is_trivially_copyable_v<Fn>
        ? nullptr
        : +[](void* dst, void* src) {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
    std::is_trivially_destructible_v<Fn>
        ? nullptr
        : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
    sizeof(Fn), false};

template <typename Fn>
inline constexpr EventVTable event_vtable_heap{
    [](void* p) { (*static_cast<Fn*>(p))(); }, nullptr,
    [](void* p) { delete static_cast<Fn*>(p); }, sizeof(Fn), true};

}  // namespace detail

template <std::size_t N>
class BasicEventFn {
 public:
  static constexpr std::size_t kInline = N;

  BasicEventFn() = default;
  BasicEventFn(std::nullptr_t) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicEventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  BasicEventFn(F&& f) {  // NOLINT(google-explicit-constructor): adaptor
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    if constexpr (sizeof(Fn) <= kInline) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &detail::event_vtable_inline<Fn>;
    } else {
      heap_ = ::new Fn(std::forward<F>(f));
      vt_ = &detail::event_vtable_heap<Fn>;
    }
  }

  BasicEventFn(BasicEventFn&& o) noexcept { move_from(o); }

  /// Cross-capacity move: legal when the source payload is heap-held or fits
  /// this capacity (the engine checks payload_size() before choosing a slot
  /// tier; a non-fitting inline payload is a logic error, not recoverable).
  template <std::size_t M, typename = std::enable_if_t<M != N>>
  BasicEventFn(BasicEventFn<M>&& o) noexcept {
    move_from(o);
  }

  BasicEventFn& operator=(BasicEventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  template <std::size_t M, typename = std::enable_if_t<M != N>>
  BasicEventFn& operator=(BasicEventFn<M>&& o) noexcept {
    reset();
    move_from(o);
    return *this;
  }
  BasicEventFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  BasicEventFn(const BasicEventFn&) = delete;
  BasicEventFn& operator=(const BasicEventFn&) = delete;
  ~BasicEventFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->call(target()); }

  /// Bytes of the stored closure (0 when empty). With on_heap() this is what
  /// the engine uses to pick a slot tier.
  std::size_t payload_size() const { return vt_ == nullptr ? 0 : vt_->size; }
  bool on_heap() const { return vt_ != nullptr && vt_->heap; }

 private:
  template <std::size_t M>
  friend class BasicEventFn;

  void* target() { return vt_->heap ? heap_ : static_cast<void*>(buf_); }

  template <std::size_t M>
  void move_from(BasicEventFn<M>& o) noexcept {
    vt_ = o.vt_;
    if (vt_ == nullptr) return;
    if (vt_->heap) {
      heap_ = o.heap_;
    } else {
      if (vt_->size > kInline) {
        std::fprintf(stderr,
                     "sim::BasicEventFn<%zu>: payload of %zu bytes does not "
                     "fit (engine slot-tier bug)\n",
                     kInline, vt_->size);
        std::abort();
      }
      if (vt_->reloc != nullptr) {
        vt_->reloc(buf_, o.buf_);
      } else {
        std::memcpy(buf_, o.buf_, vt_->size);
      }
    }
    o.vt_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ == nullptr) return;
    if (vt_->heap) {
      vt_->destroy(heap_);
    } else if (vt_->destroy != nullptr) {
      vt_->destroy(buf_);
    }
    vt_ = nullptr;
  }

  const detail::EventVTable* vt_ = nullptr;
  union {
    void* heap_;
    alignas(std::max_align_t) std::byte buf_[N];
  };
};

/// Sized for the largest hot-path closure (an AmOp plus a few scalars).
using EventFn = BasicEventFn<192>;

/// Compact slot tier for the common case: closures of a few scalars. Sized
/// so the whole slot (vtable pointer + buffer) is 32 bytes.
using SmallEventFn = BasicEventFn<24>;

}  // namespace casper::sim
