// Move-only type-erased callable for engine event callbacks.
//
// std::function cannot hold move-only closures (it requires copy
// construction), which rules out capturing pooled buffers, and it heap-
// allocates any capture over its small-object threshold (16 bytes on
// libstdc++) — one malloc/free per posted event on the RMA hot path, where
// closures carry a full AmOp. EventFn stores captures up to kInline bytes in
// place; relocation moves only the bytes the closure actually uses
// (trivially-copyable captures memcpy, others run their move constructor).
// Oversized closures fall back to the heap — a cold path kept for safety,
// not used by the runtime.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace casper::sim {

class EventFn {
 public:
  /// Sized for the largest hot-path closure (an AmOp plus a few scalars).
  static constexpr std::size_t kInline = 192;

  EventFn() = default;
  EventFn(std::nullptr_t) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    if constexpr (sizeof(Fn) <= kInline) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      heap_ = ::new Fn(std::forward<F>(f));
      vt_ = &vtable_heap<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->call(target()); }

 private:
  struct VTable {
    void (*call)(void*);
    /// Move-construct *src into dst, destroy *src. Null: memcpy(size) works.
    void (*reloc)(void* dst, void* src);
    void (*destroy)(void*);  ///< null: trivially destructible
    std::size_t size;
    bool heap;
  };

  template <typename Fn>
  static constexpr VTable vtable_inline{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
      sizeof(Fn), false};

  template <typename Fn>
  static constexpr VTable vtable_heap{
      [](void* p) { (*static_cast<Fn*>(p))(); }, nullptr,
      [](void* p) { delete static_cast<Fn*>(p); }, sizeof(Fn), true};

  void* target() { return vt_->heap ? heap_ : static_cast<void*>(buf_); }

  void move_from(EventFn& o) noexcept {
    vt_ = o.vt_;
    if (vt_ == nullptr) return;
    if (vt_->heap) {
      heap_ = o.heap_;
    } else if (vt_->reloc != nullptr) {
      vt_->reloc(buf_, o.buf_);
    } else {
      std::memcpy(buf_, o.buf_, vt_->size);
    }
    o.vt_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ == nullptr) return;
    if (vt_->heap) {
      vt_->destroy(heap_);
    } else if (vt_->destroy != nullptr) {
      vt_->destroy(buf_);
    }
    vt_ = nullptr;
  }

  const VTable* vt_ = nullptr;
  union {
    void* heap_;
    alignas(std::max_align_t) std::byte buf_[kInline];
  };
};

}  // namespace casper::sim
