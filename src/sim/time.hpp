// Virtual-time primitives for the discrete-event cluster simulator.
//
// All simulation timestamps are integer nanoseconds so that event ordering is
// exact and runs are bit-reproducible across hosts (no floating-point clock).
#pragma once

#include <cstdint>

namespace casper::sim {

/// A point in (or span of) virtual time, in nanoseconds.
using Time = std::uint64_t;

/// Sentinel meaning "no deadline / never".
inline constexpr Time kNever = ~static_cast<Time>(0);

/// Construct a span from nanoseconds.
constexpr Time ns(std::uint64_t v) { return v; }

/// Construct a span from microseconds.
constexpr Time us(std::uint64_t v) { return v * 1000; }

/// Construct a span from milliseconds.
constexpr Time ms(std::uint64_t v) { return v * 1000 * 1000; }

/// Construct a span from seconds.
constexpr Time sec(std::uint64_t v) { return v * 1000 * 1000 * 1000; }

/// Convert a virtual-time span to fractional microseconds (for reporting).
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }

/// Convert a virtual-time span to fractional milliseconds (for reporting).
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }

/// Convert a virtual-time span to fractional seconds (for reporting).
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

}  // namespace casper::sim
