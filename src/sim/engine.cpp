#include "sim/engine.hpp"

#include <cstdio>
#include <cstdlib>

namespace casper::sim {

namespace {
// Context of the rank fiber currently holding the token on this thread;
// null while the scheduler fiber (or no engine) runs. All fibers of an
// engine share the thread that called run(), so a plain thread_local is
// both correct and nesting-safe (saved/restored around each handoff).
thread_local Context* g_current_ctx = nullptr;
}  // namespace

// ---------------------------------------------------------------- Context --

int Context::size() const { return engine_->nranks(); }
Time Context::now() const { return engine_->rank_now(rank_); }
Rng& Context::rng() const { return engine_->rank_rng(rank_); }

void Context::advance(Time d) { engine_->advance_self_to(now() + d); }

void Context::yield() { engine_->advance_self_to(now()); }

// ----------------------------------------------------------------- Engine --

Engine::Engine(Options opts, RankMain main)
    : opts_(opts), main_(std::move(main)) {
  if (opts_.nranks <= 0) {
    std::fprintf(stderr, "sim::Engine: nranks must be positive\n");
    std::abort();
  }
  ranks_.reserve(static_cast<std::size_t>(opts_.nranks));
  for (int r = 0; r < opts_.nranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>(this, r));
    ranks_.back()->rng = Rng(opts_.seed, static_cast<std::uint64_t>(r));
  }
  // Stream id well clear of the rank id space so perturbation salts never
  // correlate with any rank's own random stream.
  perturb_rng_ = Rng(opts_.perturb_seed, 0xfeedfacecafeULL);
}

Engine::~Engine() = default;  // RankState::fiber unmaps each stack

Time Engine::rank_now(int rank) const { return ranks_[rank]->now; }

Context& Engine::current() {
  if (g_current_ctx == nullptr) {
    std::fprintf(stderr, "sim::Engine::current() called off a rank fiber\n");
    std::abort();
  }
  return *g_current_ctx;
}

void Engine::fiber_trampoline(void* arg) {
  auto* rs = static_cast<RankState*>(arg);
  rs->ctx.engine().rank_fiber_body(rs->ctx.rank());
}

void Engine::rank_fiber_body(int rank) {
  RankState& rs = *ranks_[rank];
  rs.st = St::Running;
  main_(rs.ctx);
  rs.st = St::Done;
  ++done_count_;
  yield_to_scheduler(rank, /*exiting=*/true);
  // Unreachable: a Done fiber is never resumed (Fiber aborts if it is).
}

void Engine::hand_token_to(int rank) {
  RankState& rs = *ranks_[rank];
  Context* prev = g_current_ctx;
  g_current_ctx = &rs.ctx;
  Fiber::switch_to(sched_fiber_, *rs.fiber);
  g_current_ctx = prev;
  if (rs.st == St::Done) rs.fiber.reset();  // reclaim the stack eagerly
}

void Engine::yield_to_scheduler(int rank, bool exiting) {
  RankState& rs = *ranks_[rank];
  Fiber::switch_to(*rs.fiber, sched_fiber_, exiting);
  // Execution resumes here when the scheduler hands the token back.
}

void Engine::make_ready(int rank, Time t) {
  RankState& rs = *ranks_[rank];
  rs.st = St::Ready;
  ready_.push(HeapItem{t, seq_++, next_salt(), rank});
}

void Engine::post_event(Time t, EventFn cb) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(event_cbs_.size());
    event_cbs_.push_back(std::move(cb));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    event_cbs_[slot] = std::move(cb);
  }
  events_.push(EventKey{t, seq_++, next_salt(), slot});
}

void Engine::advance_self_to(Time t) {
  Context& ctx = current();
  RankState& rs = *ranks_[ctx.rank()];
  if (t < rs.now) t = rs.now;
  // Fast path: if nothing else (event or rank) is scheduled at or before t,
  // the scheduler would immediately hand the token back to this rank — skip
  // the two fiber switches. Strict comparisons keep the global execution
  // order identical to the slow path.
  const bool event_earlier = !events_.empty() && events_.top().t <= t;
  const bool rank_earlier = !ready_.empty() && ready_.top().t <= t;
  if (!event_earlier && !rank_earlier) {
    rs.now = t;
    if (t > horizon_) horizon_ = t;
    return;
  }
  make_ready(ctx.rank(), t);
  yield_to_scheduler(ctx.rank());
}

void Engine::block_self() {
  Context& ctx = current();
  RankState& rs = *ranks_[ctx.rank()];
  rs.st = St::Blocked;
  yield_to_scheduler(ctx.rank());
}

void Engine::wake(int rank, Time t) {
  RankState& rs = *ranks_[rank];
  if (rs.st != St::Blocked) return;
  make_ready(rank, t > rs.now ? t : rs.now);
}

void Engine::add_compute_penalty(int rank, Time t) {
  ranks_[rank]->penalty += t;
}

bool Engine::rank_computing(int rank) const {
  return ranks_[rank]->computing;
}

void Engine::set_compute_scale(int rank, double scale) {
  ranks_[rank]->compute_scale = scale;
}

void Context::compute(Time d) {
  Engine& e = *engine_;
  auto& rs = *e.ranks_[rank_];
  rs.computing = true;
  rs.penalty = 0;
  const auto scaled =
      static_cast<Time>(static_cast<double>(d) * rs.compute_scale);
  Time end = rs.now + scaled;
  for (;;) {
    e.advance_self_to(end);
    if (rs.penalty > 0) {
      end = rs.now + rs.penalty;
      rs.penalty = 0;
      continue;
    }
    break;
  }
  rs.computing = false;
}

void Engine::die_deadlocked() {
  std::fprintf(stderr,
               "sim::Engine: DEADLOCK at t=%.3f us — no runnable ranks and no "
               "pending events. Blocked ranks:",
               to_us(horizon_));
  for (int r = 0; r < nranks(); ++r) {
    if (ranks_[r]->st == St::Blocked) {
      std::fprintf(stderr, " %d(t=%.3fus)", r, to_us(ranks_[r]->now));
    }
  }
  std::fprintf(stderr, "\n");
  if (deadlock_dump_) deadlock_dump_();
  std::abort();
}

void Engine::run() {
  running_ = true;
  // Create all rank fibers (suspended at their entry) and make them runnable
  // at t=0; each starts executing main_ when first scheduled.
  for (int r = 0; r < nranks(); ++r) {
    ranks_[r]->fiber = std::make_unique<Fiber>(
        &Engine::fiber_trampoline, ranks_[r].get(), opts_.stack_bytes);
    make_ready(r, 0);
  }

  while (done_count_ < nranks()) {
    const bool have_rank = !ready_.empty();
    const bool have_event = !events_.empty();
    if (!have_rank && !have_event) die_deadlocked();

    // Events run before ranks at the same timestamp so that deliveries are
    // visible to a rank resuming at that instant.
    const bool run_event =
        have_event && (!have_rank || events_.top().t <= ready_.top().t);
    if (run_event) {
      const EventKey key = events_.pop();
      // Move the callback out and recycle its slot *before* invoking: the
      // callback may post events (growing event_cbs_) or run nested engines.
      EventFn cb = std::move(event_cbs_[key.slot]);
      event_cbs_[key.slot] = nullptr;
      free_slots_.push_back(key.slot);
      if (key.t > horizon_) horizon_ = key.t;
      if (sched_trace_) sched_trace_->push_back(SchedRecord{key.t, -1});
      if (sched_obs_) sched_obs_->on_schedule(key.t, -1);
      cb();
      continue;
    }

    const HeapItem item = ready_.pop();
    RankState& rs = *ranks_[item.rank];
    if (rs.st != St::Ready) continue;  // stale entry (rank was re-queued)
    if (item.t > rs.now) rs.now = item.t;
    if (rs.now > horizon_) horizon_ = rs.now;
    rs.st = St::Running;
    if (sched_trace_) sched_trace_->push_back(SchedRecord{item.t, item.rank});
    if (sched_obs_) sched_obs_->on_schedule(item.t, item.rank);
    hand_token_to(item.rank);
  }
  running_ = false;
}

}  // namespace casper::sim
