#include "sim/engine.hpp"

#include <limits.h>
#include <pthread.h>

#include <cstdio>
#include <cstdlib>

namespace casper::sim {

namespace {
thread_local Context* g_current_ctx = nullptr;

struct TrampolineArg {
  Engine* engine;
  int rank;
};
}  // namespace

// ---------------------------------------------------------------- Context --

int Context::size() const { return engine_->nranks(); }
Time Context::now() const { return engine_->rank_now(rank_); }
Rng& Context::rng() const { return engine_->rank_rng(rank_); }

void Context::advance(Time d) { engine_->advance_self_to(now() + d); }

void Context::yield() { engine_->advance_self_to(now()); }

// ----------------------------------------------------------------- Engine --

Engine::Engine(Options opts, RankMain main)
    : opts_(opts), main_(std::move(main)) {
  if (opts_.nranks <= 0) {
    std::fprintf(stderr, "sim::Engine: nranks must be positive\n");
    std::abort();
  }
  ranks_.reserve(static_cast<std::size_t>(opts_.nranks));
  for (int r = 0; r < opts_.nranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>(this, r));
    ranks_.back()->rng = Rng(opts_.seed, static_cast<std::uint64_t>(r));
  }
}

Engine::~Engine() {
  // Join any threads that were started; run() normally joins them all.
  for (auto& rs : ranks_) {
    if (rs->thread_started) pthread_join(rs->thread, nullptr);
  }
}

Time Engine::rank_now(int rank) const { return ranks_[rank]->now; }

Context& Engine::current() {
  if (g_current_ctx == nullptr) {
    std::fprintf(stderr, "sim::Engine::current() called off a rank thread\n");
    std::abort();
  }
  return *g_current_ctx;
}

void* Engine::thread_trampoline(void* arg) {
  auto* ta = static_cast<TrampolineArg*>(arg);
  Engine* e = ta->engine;
  int rank = ta->rank;
  delete ta;
  e->rank_thread_body(rank);
  return nullptr;
}

void Engine::rank_thread_body(int rank) {
  RankState& rs = *ranks_[rank];
  g_current_ctx = &rs.ctx;
  wait_for_token(rank);
  main_(rs.ctx);
  rs.st = St::Done;
  ++done_count_;
  return_token_to_scheduler(rank);
}

void Engine::hand_token_to(int rank) {
  RankState& rs = *ranks_[rank];
  {
    std::lock_guard<std::mutex> lk(rs.m);
    rs.go = true;
  }
  rs.cv.notify_one();
  // Wait until the rank gives the token back.
  std::unique_lock<std::mutex> lk(sched_m_);
  sched_cv_.wait(lk, [this] { return sched_go_; });
  sched_go_ = false;
}

void Engine::return_token_to_scheduler(int rank) {
  (void)rank;
  {
    std::lock_guard<std::mutex> lk(sched_m_);
    sched_go_ = true;
  }
  sched_cv_.notify_one();
}

void Engine::wait_for_token(int rank) {
  RankState& rs = *ranks_[rank];
  std::unique_lock<std::mutex> lk(rs.m);
  rs.cv.wait(lk, [&rs] { return rs.go; });
  rs.go = false;
  rs.st = St::Running;
}

void Engine::make_ready(int rank, Time t) {
  RankState& rs = *ranks_[rank];
  rs.st = St::Ready;
  ready_.push(HeapItem{t, seq_++, rank});
}

void Engine::post_event(Time t, std::function<void()> cb) {
  events_.push(Event{t, seq_++, std::move(cb)});
}

void Engine::advance_self_to(Time t) {
  Context& ctx = current();
  RankState& rs = *ranks_[ctx.rank()];
  if (t < rs.now) t = rs.now;
  // Fast path: if nothing else (event or rank) is scheduled at or before t,
  // the scheduler would immediately hand the token back to this rank — skip
  // the two thread context switches. Strict comparisons keep the global
  // execution order identical to the slow path.
  const bool event_earlier = !events_.empty() && events_.top().t <= t;
  const bool rank_earlier = !ready_.empty() && ready_.top().t <= t;
  if (!event_earlier && !rank_earlier) {
    rs.now = t;
    if (t > horizon_) horizon_ = t;
    return;
  }
  make_ready(ctx.rank(), t);
  return_token_to_scheduler(ctx.rank());
  wait_for_token(ctx.rank());
}

void Engine::block_self() {
  Context& ctx = current();
  RankState& rs = *ranks_[ctx.rank()];
  rs.st = St::Blocked;
  return_token_to_scheduler(ctx.rank());
  wait_for_token(ctx.rank());
}

void Engine::wake(int rank, Time t) {
  RankState& rs = *ranks_[rank];
  if (rs.st != St::Blocked) return;
  make_ready(rank, t > rs.now ? t : rs.now);
}

void Engine::add_compute_penalty(int rank, Time t) {
  ranks_[rank]->penalty += t;
}

bool Engine::rank_computing(int rank) const {
  return ranks_[rank]->computing;
}

void Engine::set_compute_scale(int rank, double scale) {
  ranks_[rank]->compute_scale = scale;
}

void Context::compute(Time d) {
  Engine& e = *engine_;
  auto& rs = *e.ranks_[rank_];
  rs.computing = true;
  rs.penalty = 0;
  const auto scaled =
      static_cast<Time>(static_cast<double>(d) * rs.compute_scale);
  Time end = rs.now + scaled;
  for (;;) {
    e.advance_self_to(end);
    if (rs.penalty > 0) {
      end = rs.now + rs.penalty;
      rs.penalty = 0;
      continue;
    }
    break;
  }
  rs.computing = false;
}

void Engine::die_deadlocked() {
  std::fprintf(stderr,
               "sim::Engine: DEADLOCK at t=%.3f us — no runnable ranks and no "
               "pending events. Blocked ranks:",
               to_us(horizon_));
  for (int r = 0; r < nranks(); ++r) {
    if (ranks_[r]->st == St::Blocked) {
      std::fprintf(stderr, " %d(t=%.3fus)", r, to_us(ranks_[r]->now));
    }
  }
  std::fprintf(stderr, "\n");
  if (deadlock_dump_) deadlock_dump_();
  std::abort();
}

void Engine::run() {
  running_ = true;
  // Start all rank threads with small stacks; they immediately wait for the
  // token, then are made runnable at t=0.
  pthread_attr_t attr;
  pthread_attr_init(&attr);
  const std::size_t min_stack = static_cast<std::size_t>(PTHREAD_STACK_MIN);
  pthread_attr_setstacksize(
      &attr, opts_.stack_bytes < min_stack ? min_stack : opts_.stack_bytes);
  for (int r = 0; r < nranks(); ++r) {
    auto* ta = new TrampolineArg{this, r};
    int rc = pthread_create(&ranks_[r]->thread, &attr,
                            &Engine::thread_trampoline, ta);
    if (rc != 0) {
      std::fprintf(stderr, "sim::Engine: pthread_create failed (rc=%d)\n", rc);
      std::abort();
    }
    ranks_[r]->thread_started = true;
    make_ready(r, 0);
  }
  pthread_attr_destroy(&attr);

  while (done_count_ < nranks()) {
    const bool have_rank = !ready_.empty();
    const bool have_event = !events_.empty();
    if (!have_rank && !have_event) die_deadlocked();

    // Events run before ranks at the same timestamp so that deliveries are
    // visible to a rank resuming at that instant.
    const bool run_event =
        have_event && (!have_rank || events_.top().t <= ready_.top().t);
    if (run_event) {
      Event ev = events_.top();  // copy: cb may post more events
      events_.pop();
      if (ev.t > horizon_) horizon_ = ev.t;
      ev.cb();
      continue;
    }

    HeapItem item = ready_.top();
    ready_.pop();
    RankState& rs = *ranks_[item.rank];
    if (rs.st != St::Ready) continue;  // stale entry (rank was re-queued)
    if (item.t > rs.now) rs.now = item.t;
    if (rs.now > horizon_) horizon_ = rs.now;
    rs.st = St::Running;
    hand_token_to(item.rank);
  }
  running_ = false;
  for (auto& rs : ranks_) {
    if (rs->thread_started) {
      pthread_join(rs->thread, nullptr);
      rs->thread_started = false;
    }
  }
}

}  // namespace casper::sim
