#include "sim/engine.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>

namespace casper::sim {

namespace {
// Context of the rank fiber currently holding the token on this thread;
// null while a scheduler fiber (or no engine) runs. All fibers of a shard
// share the one OS thread driving that shard, so a plain thread_local is
// both correct and nesting-safe (saved/restored around each handoff).
thread_local Context* g_current_ctx = nullptr;
// Shard id of the scheduler running on this thread. 0 outside run() and in
// single-shard mode; shard_main() sets it for the lifetime of a worker.
thread_local int g_shard_id = 0;
}  // namespace

// ---------------------------------------------------------------- Context --

int Context::size() const { return engine_->nranks(); }
Time Context::now() const { return engine_->rank_now(rank_); }
Rng& Context::rng() const { return engine_->rank_rng(rank_); }

void Context::advance(Time d) { engine_->advance_self_to(now() + d); }

void Context::yield() { engine_->advance_self_to(now()); }

// ----------------------------------------------------------------- Engine --

Engine::Engine(Options opts, RankMain main)
    : opts_(opts), main_(std::move(main)) {
  if (opts_.nranks <= 0) {
    std::fprintf(stderr, "sim::Engine: nranks must be positive\n");
    std::abort();
  }
  ranks_.reserve(static_cast<std::size_t>(opts_.nranks));
  for (int r = 0; r < opts_.nranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>(this, r));
    ranks_.back()->rng = Rng(opts_.seed, static_cast<std::uint64_t>(r));
  }
  // Stream id well clear of the rank id space so perturbation salts never
  // correlate with any rank's own random stream.
  perturb_rng_ = Rng(opts_.perturb_seed, 0xfeedfacecafeULL);

  if (opts_.shards > opts_.nranks) opts_.shards = opts_.nranks;
  lookahead_.store(opts_.lookahead < 1 ? Time{1} : opts_.lookahead,
                   std::memory_order_relaxed);
  if (opts_.shards > 1) {
    if (opts_.perturb_seed != 0) {
      std::fprintf(stderr,
                   "sim::Engine: perturb_seed is single-shard only (the "
                   "sharded merge order explores its own tie permutations)\n");
      std::abort();
    }
    const int S = opts_.shards;
    shard_of_rank_.resize(static_cast<std::size_t>(opts_.nranks));
    const int block = (opts_.nranks + S - 1) / S;
    for (int s = 0; s < S; ++s) {
      shards_.push_back(std::make_unique<ShardState>());
      shards_.back()->id = s;
      shards_.back()->cal.sorted = true;
      shards_.back()->outbox.resize(static_cast<std::size_t>(S));
    }
    for (int r = 0; r < opts_.nranks; ++r) {
      const int s = opts_.shard_of ? opts_.shard_of(r) : r / block;
      if (s < 0 || s >= S) {
        std::fprintf(stderr, "sim::Engine: shard_of(%d) = %d out of [0, %d)\n",
                     r, s, S);
        std::abort();
      }
      shard_of_rank_[static_cast<std::size_t>(r)] = s;
      shards_[static_cast<std::size_t>(s)]->ranks.push_back(r);
    }
  }
}

Engine::~Engine() = default;  // RankState::fiber releases each stack

Time Engine::rank_now(int rank) const { return ranks_[rank]->now; }

int Engine::current_shard() { return g_shard_id; }

Engine::ShardState& Engine::cur_shard() {
  return *shards_[static_cast<std::size_t>(g_shard_id)];
}

Context& Engine::current() {
  if (g_current_ctx == nullptr) {
    std::fprintf(stderr, "sim::Engine::current() called off a rank fiber\n");
    std::abort();
  }
  return *g_current_ctx;
}

Stats& Engine::stats_local() {
  return shards_.empty() ? stats_ : cur_shard().stats;
}

Stats& Engine::shard_stats(int shard) {
  return shards_.empty() ? stats_ : shards_[static_cast<std::size_t>(shard)]->stats;
}

void Engine::clamp_lookahead(Time la) {
  if (la < 1) la = 1;
  Time cur = lookahead_.load(std::memory_order_relaxed);
  while (la < cur && !lookahead_.compare_exchange_weak(
                         cur, la, std::memory_order_relaxed)) {
  }
}

void Engine::fiber_trampoline(void* arg) {
  auto* rs = static_cast<RankState*>(arg);
  rs->ctx.engine().rank_fiber_body(rs->ctx.rank());
}

void Engine::rank_fiber_body(int rank) {
  RankState& rs = *ranks_[rank];
  rs.st = St::Running;
  main_(rs.ctx);
  rs.st = St::Done;
  if (shards_.empty()) {
    ++done_count_;
  } else {
    ++cur_shard().done;
  }
  yield_to_scheduler(rank, /*exiting=*/true);
  // Unreachable: a Done fiber is never resumed (Fiber aborts if it is).
}

void Engine::ensure_fiber(RankState& rs, StackPool* pool) {
  if (!rs.fiber) {
    rs.fiber = std::make_unique<Fiber>(&Engine::fiber_trampoline, &rs,
                                       opts_.stack_bytes, pool);
  }
}

void Engine::hand_token_to(int rank) {
  RankState& rs = *ranks_[rank];
  Fiber* sched;
  if (shards_.empty()) {
    sched = &sched_fiber_;
    ensure_fiber(rs, nullptr);
  } else {
    ShardState& sh = cur_shard();
    sched = sh.sched_fiber;
    ensure_fiber(rs, &sh.stacks);
  }
  Context* prev = g_current_ctx;
  g_current_ctx = &rs.ctx;
  Fiber::switch_to(*sched, *rs.fiber);
  g_current_ctx = prev;
  if (rs.st == St::Done) rs.fiber.reset();  // reclaim the stack eagerly
}

void Engine::yield_to_scheduler(int rank, bool exiting) {
  RankState& rs = *ranks_[rank];
  Fiber* sched = shards_.empty() ? &sched_fiber_ : cur_shard().sched_fiber;
  Fiber::switch_to(*rs.fiber, *sched, exiting);
  // Execution resumes here when the scheduler hands the token back.
}

void Engine::make_ready(int rank, Time t) {
  RankState& rs = *ranks_[rank];
  rs.st = St::Ready;
  if (shards_.empty()) {
    ready_.push(HeapItem{t, seq_++, next_salt(), rank});
  } else {
    // Only legal shard-locally (or pre-run / in the barrier's serial
    // section, while every shard is quiescent).
    ShardState& sh = *shards_[static_cast<std::size_t>(shard_of_rank_[rank])];
    sh.ready.push(HeapItem{t, sh.seq++, 0, rank});
  }
}

void Engine::post_ctx(std::int32_t* sender, Time* send_t,
                      std::uint64_t* seq) {
  if (g_current_ctx != nullptr) {
    RankState& rs = *ranks_[static_cast<std::size_t>(g_current_ctx->rank())];
    *sender = g_current_ctx->rank();
    *send_t = rs.now;
    *seq = rs.post_seq++;
    return;
  }
  if (running_) {
    ShardState& sh = cur_shard();
    if (sh.exec_home >= 0) {
      *sender = sh.exec_home;
      *send_t = sh.exec_now;
      *seq = ranks_[static_cast<std::size_t>(sh.exec_home)]->post_seq++;
      return;
    }
  }
  *sender = -1;  // pre-run setup, single-threaded
  *send_t = 0;
  *seq = setup_post_seq_++;
}

void Engine::post_event(Time t, EventFn cb) {
  if (shards_.empty()) {
    const std::uint32_t slot = slots_.put(std::move(cb));
    if (opts_.perturb_seed == 0) {
      // Salt-free runs take the O(1) calendar (same order as the heap).
      if (cal_.in_span(t)) {
        cal_.add(t, slot, -1, -1, 0, 0);  // unsorted: append order is seq
        if (t < next_ev_) next_ev_ = t;
      } else {
        far_.push(EventKey{t, 0, seq_++, 0, slot, -1, -1});
      }
      return;
    }
    events_.push(EventKey{t, 0, seq_++, next_salt(), slot, -1, -1});
    return;
  }
  // A non-homed post runs on the posting shard, i.e. effectively homed to
  // the posting context's own rank — record that home so nested posts from
  // its callback inherit a shard-layout-independent attribution.
  std::int32_t sender;
  Time send_t;
  std::uint64_t seq;
  post_ctx(&sender, &send_t, &seq);
  shard_insert_local(cur_shard(), t, sender, sender, send_t, seq,
                     std::move(cb));
}

void Engine::post_event(Time t, int home_rank, EventFn cb) {
  if (shards_.empty()) {
    post_event(t, std::move(cb));
    return;
  }
  std::int32_t sender;
  Time send_t;
  std::uint64_t seq;
  post_ctx(&sender, &send_t, &seq);
  const int dst = shard_of_rank_[static_cast<std::size_t>(home_rank)];
  ShardState& sh = cur_shard();
  if (dst == sh.id) {
    shard_insert_local(sh, t, home_rank, sender, send_t, seq, std::move(cb));
    return;
  }
  // Conservative-lookahead contract: a cross-shard effect may not land
  // inside the current window (the destination may already have executed
  // past it). The runtime guarantees cross-shard edges carry at least the
  // minimum network latency >= lookahead, so this only fires on a homing
  // bug.
  if (t < sh.window_end) {
    std::fprintf(stderr,
                 "sim::Engine: cross-shard event at t=%.3f us violates the "
                 "lookahead window (end %.3f us, shard %d -> %d)\n",
                 to_us(t), to_us(sh.window_end), sh.id, dst);
    std::abort();
  }
  sh.outbox[static_cast<std::size_t>(dst)].push_back(ShardState::Staged{
      t, send_t, seq, home_rank, sender, std::move(cb)});
}

void Engine::shard_insert_local(ShardState& sh, Time t, std::int32_t home,
                                std::int32_t sender, Time send_t,
                                std::uint64_t seq, EventFn cb) {
  const std::uint32_t slot = sh.slots.put(std::move(cb));
  if (sh.cal.in_span(t)) {
    sh.cal.add(t, slot, home, sender, send_t, seq);
    if (t < sh.next_ev) sh.next_ev = t;
  } else {
    sh.far.push(EventKey{t, send_t, seq, 0, slot, sender, home});
  }
}

void Engine::refill_core(Calendar& cal, MinHeap<EventKey>& far,
                         Time& next_ev) {
  // Pull every spilled event now inside the calendar span. Runs at every
  // base advance, *before* any same-time direct insert can append, so the
  // bucket append order stays identical to (t, seq) order. The unsigned
  // comparison deliberately excludes overdue entries (t < base): they can
  // never be bucketed again and pop from the spill heap instead.
  while (!far.empty() && far.top().t - cal.base < Calendar::kBuckets) {
    const EventKey k = far.pop();
    cal.add(k.t, k.slot, k.home, k.sender, k.send_t, k.seq);
    if (k.t < next_ev) next_ev = k.t;
  }
}

Time Engine::Calendar::next_from(Time from) const {
  std::size_t i = static_cast<std::size_t>(from) & (kBuckets - 1);
  std::size_t left = kBuckets - static_cast<std::size_t>(from - base);
  for (;;) {
    const std::uint64_t w = occ[i >> 6] & (~std::uint64_t{0} << (i & 63));
    if (w != 0) {
      const auto tz = static_cast<std::size_t>(std::countr_zero(w));
      return from + (tz - (i & 63));
    }
    const std::size_t step = 64 - (i & 63);
    if (step >= left) return kNever;
    from += step;
    left -= step;
    i = (i + step) & (kBuckets - 1);
  }
}

Time Engine::next_event_core(Calendar& cal, MinHeap<EventKey>& far,
                             Time& next_ev, Time bound) {
  Time ftop = far.empty() ? kNever : far.top().t;
  if (cal.pending == 0 && ftop == kNever) return kNever;
  // Slide the span forward as far as safety allows: never past a pending
  // event (the calendar lower bound or the spill minimum) and never past
  // `bound` — the earliest point still-to-run work could post from, so
  // nothing lands below `base` in the common case. Absolute bucket indexing
  // means moving `base` relocates no data; refilling right here (before any
  // same-time direct insert can append) keeps bucket order identical to seq
  // order. An overdue spill entry (t < base, from a lagging-clock rank)
  // wraps both min-comparisons to "huge", which is exactly right: it must
  // not drag `base` backwards, and it wins the final min below.
  Time nb = cal.pending == 0 ? ftop : (next_ev < ftop ? next_ev : ftop);
  if (nb > bound) nb = bound;
  if (nb > cal.base) {
    cal.base = nb;
    refill_core(cal, far, next_ev);
    ftop = far.empty() ? kNever : far.top().t;
  }
  if (cal.pending == 0) return ftop;  // beyond the span, or overdue
  const Time from = next_ev > cal.base ? next_ev : cal.base;
  const Time t = cal.next_from(from);
  next_ev = t;
  return ftop < t ? ftop : t;  // ftop < t only when overdue
}

Engine::PoppedEvent Engine::pop_event_core(Calendar& cal,
                                           MinHeap<EventKey>& far,
                                           Time next_ev, Time te) {
  // Spill-sourced iff the calendar has nothing in span or the spill top is
  // overdue (strictly below the freshly scanned calendar minimum `next_ev`);
  // equal times are impossible across the two structures.
  if (cal.pending == 0 || (!far.empty() && far.top().t < next_ev)) {
    const EventKey k = far.pop();
    return PoppedEvent{k.slot, k.home};
  }
  const Calendar::Node n = cal.pop_at(te);
  return PoppedEvent{n.slot, n.home};
}

Time Engine::shard_next_time(ShardState& sh) {
  while (!sh.ready.empty() &&
         ranks_[sh.ready.top().rank]->st != St::Ready) {
    sh.ready.pop();  // stale entry (rank was re-queued)
  }
  const Time tr = sh.ready.empty() ? kNever : sh.ready.top().t;
  const Time bound = tr < sh.window_end ? tr : sh.window_end;
  const Time te = next_event_core(sh.cal, sh.far, sh.next_ev, bound);
  return te < tr ? te : tr;
}

void Engine::advance_self_to(Time t) {
  Context& ctx = current();
  RankState& rs = *ranks_[ctx.rank()];
  if (t < rs.now) t = rs.now;
  if (shards_.empty()) {
    // Fast path: if nothing else (event or rank) is scheduled at or before
    // t, the scheduler would immediately hand the token back to this rank —
    // skip the two fiber switches. Strict comparisons keep the global
    // execution order identical to the slow path. The calendar check must
    // be *exact* for the same reason (a spurious slow path would emit an
    // extra scheduling record): when the lower bound next_ev_ can't decide,
    // scan — the result is the true calendar minimum and is cached.
    bool event_earlier;
    if (opts_.perturb_seed == 0) {
      event_earlier = !far_.empty() && far_.top().t <= t;
      if (!event_earlier && cal_.pending != 0 && next_ev_ <= t) {
        const Time from = next_ev_ > cal_.base ? next_ev_ : cal_.base;
        next_ev_ = cal_.next_from(from);
        event_earlier = next_ev_ <= t;
      }
    } else {
      event_earlier = !events_.empty() && events_.top().t <= t;
    }
    const bool rank_earlier = !ready_.empty() && ready_.top().t <= t;
    if (!event_earlier && !rank_earlier) {
      rs.now = t;
      if (t > horizon_) horizon_ = t;
      return;
    }
  } else {
    // Sharded fast path: additionally require t inside the current window
    // (time beyond it needs the barrier to certify no cross-shard event
    // lands first). next_ev is a lower bound, so the check errs only toward
    // the (correct) slow path.
    ShardState& sh = cur_shard();
    const bool event_earlier =
        (sh.cal.pending != 0 && sh.next_ev <= t) ||
        (!sh.far.empty() && sh.far.top().t <= t);
    const bool rank_earlier = !sh.ready.empty() && sh.ready.top().t <= t;
    if (t < sh.window_end && !event_earlier && !rank_earlier) {
      rs.now = t;
      if (t > sh.horizon) sh.horizon = t;
      return;
    }
  }
  make_ready(ctx.rank(), t);
  yield_to_scheduler(ctx.rank());
}

void Engine::block_self() {
  Context& ctx = current();
  RankState& rs = *ranks_[ctx.rank()];
  rs.st = St::Blocked;
  yield_to_scheduler(ctx.rank());
}

void Engine::wake(int rank, Time t) {
  if (!shards_.empty() && shard_of_rank_[static_cast<std::size_t>(rank)] !=
                              g_shard_id) {
    std::fprintf(stderr,
                 "sim::Engine: wake(%d) crossed shards (%d -> %d); use "
                 "wake_at()\n",
                 rank, g_shard_id,
                 shard_of_rank_[static_cast<std::size_t>(rank)]);
    std::abort();
  }
  RankState& rs = *ranks_[rank];
  if (rs.st != St::Blocked) return;
  make_ready(rank, t > rs.now ? t : rs.now);
}

void Engine::wake_at(int rank, Time t) {
  if (shards_.empty() ||
      shard_of_rank_[static_cast<std::size_t>(rank)] == g_shard_id) {
    wake(rank, t);
    return;
  }
  post_event(t, rank, [this, rank, t] { wake(rank, t); });
}

void Engine::add_compute_penalty(int rank, Time t) {
  ranks_[rank]->penalty += t;
}

bool Engine::rank_computing(int rank) const {
  return ranks_[rank]->computing;
}

void Engine::set_compute_scale(int rank, double scale) {
  ranks_[rank]->compute_scale = scale;
}

void Context::compute(Time d) {
  Engine& e = *engine_;
  auto& rs = *e.ranks_[rank_];
  rs.computing = true;
  rs.penalty = 0;
  const auto scaled =
      static_cast<Time>(static_cast<double>(d) * rs.compute_scale);
  Time end = rs.now + scaled;
  for (;;) {
    e.advance_self_to(end);
    if (rs.penalty > 0) {
      end = rs.now + rs.penalty;
      rs.penalty = 0;
      continue;
    }
    break;
  }
  rs.computing = false;
}

void Engine::die_deadlocked() {
  std::fprintf(stderr,
               "sim::Engine: DEADLOCK at t=%.3f us — no runnable ranks and no "
               "pending events. Blocked ranks:",
               to_us(horizon_));
  for (int r = 0; r < nranks(); ++r) {
    if (ranks_[r]->st == St::Blocked) {
      std::fprintf(stderr, " %d(t=%.3fus)", r, to_us(ranks_[r]->now));
    }
  }
  std::fprintf(stderr, "\n");
  if (deadlock_dump_) deadlock_dump_();
  std::abort();
}

void Engine::run() {
  running_ = true;
  if (shards_.empty()) {
    run_single();
  } else {
    run_sharded();
  }
  running_ = false;
}

// The classic single-threaded scheduler, bit-exact with previous releases:
// scheduling decisions depend only on the (t, salt, seq) heap keys, never on
// slot ids or fiber creation time (fibers are now created lazily on first
// schedule, which changes when mmap happens but not what order code runs in).
void Engine::run_single() {
  for (int r = 0; r < nranks(); ++r) make_ready(r, 0);

  if (opts_.perturb_seed == 0) {
    // Calendar-queue variant: every salt is zero, so pop order is (t, seq)
    // for events and (t, events-first, rank, seq) overall — identical to
    // the heap loop below, at O(1) per event instead of O(log pending).
    while (done_count_ < nranks()) {
      while (!ready_.empty() && ranks_[ready_.top().rank]->st != St::Ready) {
        ready_.pop();  // stale entry (rank was re-queued)
      }
      const Time tr = ready_.empty() ? kNever : ready_.top().t;
      const Time te = next_event_core(cal_, far_, next_ev_, tr);
      if (te == kNever && tr == kNever) die_deadlocked();

      // Events run before ranks at the same timestamp so that deliveries
      // are visible to a rank resuming at that instant.
      if (te <= tr) {
        const PoppedEvent pe = pop_event_core(cal_, far_, next_ev_, te);
        // Move the callback out and recycle its slot *before* invoking: the
        // callback may post events (growing the pool) or run nested engines.
        EventFn cb = slots_.take(pe.slot);
        if (te > horizon_) horizon_ = te;
        if (sched_trace_) sched_trace_->push_back(SchedRecord{te, -1});
        if (sched_obs_) sched_obs_->on_schedule(te, -1);
        cb();
        continue;
      }

      const HeapItem item = ready_.pop();
      RankState& rs = *ranks_[item.rank];
      if (item.t > rs.now) rs.now = item.t;
      if (rs.now > horizon_) horizon_ = rs.now;
      rs.st = St::Running;
      if (sched_trace_) {
        sched_trace_->push_back(SchedRecord{item.t, item.rank});
      }
      if (sched_obs_) sched_obs_->on_schedule(item.t, item.rank);
      hand_token_to(item.rank);
    }
    return;
  }

  while (done_count_ < nranks()) {
    const bool have_rank = !ready_.empty();
    const bool have_event = !events_.empty();
    if (!have_rank && !have_event) die_deadlocked();

    // Events run before ranks at the same timestamp so that deliveries are
    // visible to a rank resuming at that instant.
    const bool run_event =
        have_event && (!have_rank || events_.top().t <= ready_.top().t);
    if (run_event) {
      const EventKey key = events_.pop();
      // Move the callback out and recycle its slot *before* invoking: the
      // callback may post events (growing the pool) or run nested engines.
      EventFn cb = slots_.take(key.slot);
      if (key.t > horizon_) horizon_ = key.t;
      if (sched_trace_) sched_trace_->push_back(SchedRecord{key.t, -1});
      if (sched_obs_) sched_obs_->on_schedule(key.t, -1);
      cb();
      continue;
    }

    const HeapItem item = ready_.pop();
    RankState& rs = *ranks_[item.rank];
    if (rs.st != St::Ready) continue;  // stale entry (rank was re-queued)
    if (item.t > rs.now) rs.now = item.t;
    if (rs.now > horizon_) horizon_ = rs.now;
    rs.st = St::Running;
    if (sched_trace_) sched_trace_->push_back(SchedRecord{item.t, item.rank});
    if (sched_obs_) sched_obs_->on_schedule(item.t, item.rank);
    hand_token_to(item.rank);
  }
}

// --------------------------------------------------------- sharded driver --

void Engine::run_sharded() {
  if (sched_trace_ != nullptr) {
    std::fprintf(stderr,
                 "sim::Engine: set_schedule_trace is single-shard only\n");
    std::abort();
  }
  stop_flag_ = false;
  // Quiescent setup on the caller's thread: every shard's initial ready set.
  for (int r = 0; r < nranks(); ++r) make_ready(r, 0);

  std::vector<std::thread> workers;
  workers.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    workers.emplace_back([this, s] { shard_main(*shards_[s]); });
  }
  shard_main(*shards_[0]);
  for (auto& w : workers) w.join();

  // Fold per-shard results into the engine-wide views.
  for (auto& sh : shards_) {
    if (sh->horizon > horizon_) horizon_ = sh->horizon;
    for (const auto& [name, v] : sh->stats.all()) stats_.counter(name) += v;
    sh->stats.clear();
  }
}

void Engine::shard_main(ShardState& sh) {
  g_shard_id = sh.id;
  Fiber adopted;  // this worker thread's scheduler fiber
  sh.sched_fiber = &adopted;
  for (;;) {
    if (window_barrier(sh)) break;
    execute_window(sh);
  }
  sh.sched_fiber = nullptr;
  g_shard_id = 0;
}

bool Engine::window_barrier(ShardState& sh) {
  std::unique_lock<std::mutex> lk(barrier_mu_);
  if (++barrier_count_ == static_cast<int>(shards_.size())) {
    barrier_count_ = 0;
    serial_merge_and_plan();
    ++barrier_gen_;
    barrier_cv_.notify_all();
  } else {
    const std::uint64_t gen = barrier_gen_;
    barrier_cv_.wait(lk, [&] { return barrier_gen_ != gen; });
  }
  (void)sh;
  return stop_flag_;
}

// Runs with every shard parked at the barrier (the barrier mutex orders all
// shard-private state both ways), so it may touch any shard without atomics.
void Engine::serial_merge_and_plan() {
  // Merge staged cross-shard events. Every entry carries its canonical
  // (send_t, sender, seq) key from post time and the destination buckets
  // sort by that key, so the insert order here is immaterial: the resulting
  // schedule is a pure function of the simulation, invariant to both host
  // thread timing and the shard count itself.
  for (auto& src : shards_) {
    for (std::size_t d = 0; d < shards_.size(); ++d) {
      auto& box = src->outbox[d];
      if (box.empty()) continue;
      ShardState& dst = *shards_[d];
      for (auto& st : box) {
        shard_insert_local(dst, st.t, st.home, st.sender, st.send_t, st.seq,
                           std::move(st.cb));
      }
      box.clear();
    }
  }

  int done = 0;
  for (auto& sh : shards_) done += sh->done;
  if (done == nranks()) {
    stop_flag_ = true;
    return;
  }

  Time tmin = kNever;
  for (auto& sh : shards_) {
    sh->next_time = shard_next_time(*sh);
    if (sh->next_time < tmin) tmin = sh->next_time;
  }
  if (tmin == kNever) {
    for (auto& sh : shards_) {
      if (sh->horizon > horizon_) horizon_ = sh->horizon;
    }
    die_deadlocked();
  }

  const Time wend = tmin + lookahead_.load(std::memory_order_relaxed);
  for (auto& sh : shards_) sh->window_end = wend;
}

// Execute every local item with t < window_end, in (t, events-before-ranks,
// canonical causal key) order. The causal key — posting context's virtual
// time, home rank, per-sender sequence — is assigned at post time from
// simulation state alone, so the schedule each rank observes is identical
// for every shard count: virtual-time results are shard-count-invariant.
void Engine::execute_window(ShardState& sh) {
  const Time wend = sh.window_end;
  for (;;) {
    while (!sh.ready.empty() &&
           ranks_[sh.ready.top().rank]->st != St::Ready) {
      sh.ready.pop();  // stale entry
    }
    const Time tr = sh.ready.empty() ? kNever : sh.ready.top().t;
    const Time bound = tr < wend ? tr : wend;
    const Time te = next_event_core(sh.cal, sh.far, sh.next_ev, bound);
    if (te >= wend && tr >= wend) return;

    if (te <= tr) {
      const PoppedEvent pe = pop_event_core(sh.cal, sh.far, sh.next_ev, te);
      EventFn cb = sh.slots.take(pe.slot);
      if (te > sh.horizon) sh.horizon = te;
      sh.exec_now = te;
      sh.exec_home = pe.home;  // nested posts attribute to this rank
      if (sched_obs_) sched_obs_->on_schedule(te, -1);
      cb();
      // Batch-drain the rest of this nanosecond: after one event the next
      // item is usually another event in the same bucket, so skip the full
      // bound/base/bitmap rescan while it provably stays the minimum —
      // bucket still occupied at te with no lower post (next_ev == te), no
      // overdue spill, and no rank due at or before te (equal-time events
      // run before ranks anyway; a stale ready entry below te just falls
      // back to the slow path, which skips it). Pop order within the
      // bucket is unchanged, so the schedule is identical.
      const std::size_t bi =
          static_cast<std::size_t>(te) & (Calendar::kBuckets - 1);
      while (sh.cal.head[bi] != Calendar::kNil && sh.next_ev == te &&
             (sh.far.empty() || sh.far.top().t > te) &&
             (sh.ready.empty() || sh.ready.top().t >= te)) {
        const Calendar::Node n = sh.cal.pop_at(te);
        // The successor's callback slot is the next iteration's likely
        // cache miss; n.next still names it (pop_at copied before relink).
        if (n.next != Calendar::kNil) {
          const Calendar::Node& nx = sh.cal.nodes[n.next];
          if ((nx.slot & SlotPool::kBigBit) == 0) {
            __builtin_prefetch(sh.slots.small.data() + nx.slot);
          }
        }
        EventFn cb2 = sh.slots.take(n.slot);
        sh.exec_home = n.home;
        if (sched_obs_) sched_obs_->on_schedule(te, -1);
        cb2();
      }
      sh.exec_home = -1;
      continue;
    }

    const HeapItem item = sh.ready.pop();
    RankState& rs = *ranks_[item.rank];
    if (item.t > rs.now) rs.now = item.t;
    if (rs.now > sh.horizon) sh.horizon = rs.now;
    rs.st = St::Running;
    sh.exec_now = item.t;
    if (sched_obs_) sched_obs_->on_schedule(item.t, item.rank);
    hand_token_to(item.rank);
  }
}

}  // namespace casper::sim
