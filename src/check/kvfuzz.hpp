// Seeded KV-workload fuzzing: the linearizability analogue of the RMA
// conformance fuzzer (check/fuzz.hpp), driving the RMA-backed KV store
// (src/kv/) instead of raw op streams.
//
// A seed deterministically generates a KV case — progress mode (original /
// thread / Casper), topology, Casper binding and dynamic-LB policy, store
// shape (buckets, associativity, lock kind), and a pre-materialized Zipfian
// op mix — which is replayed under several perturbed fiber schedules with
// the LinearChecker riding as the store's history sink AND the shadow
// oracle attached (unsharded runs). A case fails when
//   * the checker finds a per-key history with no legal linearization
//     ("kv-violation": the lock protocol lost an update / served a stale
//     read), or
//   * the shadow oracle diverges / the runtime's atomicity detector fires
//     ("kv-oracle-divergence": the runtime itself broke).
// Failures are minimized to the shortest failing global op prefix and
// written as replayable repro files mirroring the conformance format.
//
// kv_proof() is the positive gate (the fault_proof analogue): it reruns
// seeds with the planted KV bug enabled (KvConfig::skip_unlock_flush — the
// value PUT left unordered w.r.t. the lock release) under a delay-heavy
// network, requires the checker to catch the resulting stale read, minimizes
// it, writes the repro, and replays it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/linear.hpp"
#include "core/casper.hpp"
#include "fault/plan.hpp"
#include "kv/kv.hpp"
#include "kv/traffic.hpp"

namespace casper::check {

enum class KvMode : std::uint8_t { Original = 0, Thread = 1, Casper = 2 };
const char* to_string(KvMode m);

/// A complete generated KV test case. The op list is pre-materialized so a
/// prefix truncation is a pure prefix of every client's program.
struct KvCase {
  std::uint64_t seed = 0;
  KvMode mode = KvMode::Casper;
  int nodes = 1;
  int users_per_node = 2;
  int ghosts = 1;  ///< Casper mode only
  core::Binding binding = core::Binding::Rank;
  core::DynamicLb dynamic = core::DynamicLb::None;
  kv::KvConfig store;
  kv::TrafficConfig traffic;
  fault::FaultPlan fault_plan;  ///< inert unless active()
  /// Planted bug: run the store with skip_unlock_flush (tests / kv_proof).
  bool broken_skip_flush = false;
  std::vector<kv::KvOp> ops;

  int nclients() const { return nodes * users_per_node; }
};

/// Deterministically generate the case for `seed`. `reduced` shrinks op
/// counts for the ctest-time corpus; `ops_per_client` > 0 overrides the
/// seed-drawn per-client op count (repro files record it).
KvCase make_kv_case(std::uint64_t seed, bool reduced, int ops_per_client = 0);

/// Seed-derived lossy network for chaos KV runs (mirrors add_net_faults).
void add_kv_net_faults(KvCase& fc);
/// Delay-heavy plan for kv_proof: wide delay jitter reorders the unflushed
/// value PUT past the lock release, manifesting the planted bug.
void add_kv_proof_faults(KvCase& fc);
/// World ranks of the case's ghosts (empty unless Casper mode) — kill
/// targets for chaos coverage.
std::vector<int> kv_ghost_ranks(const KvCase& fc);

/// Outcome of one simulated run of a KV case.
struct KvOutcome {
  std::size_t violations = 0;           ///< linearizability violations
  std::vector<std::string> diags;       ///< per-violation diagnostics
  std::uint64_t history_hash = 0;       ///< canonical-history FNV
  std::size_t checker_ops = 0;          ///< events the checker recorded
  sim::Time end_time = 0;               ///< rank 0 virtual end time
  std::uint64_t fingerprint = 0;        ///< final-table digest
  kv::KvStats stats;                    ///< cluster-wide client counters
  std::uint64_t acc_ops = 0;            ///< server-side ACC op total
  std::uint64_t divergences = 0;        ///< shadow-oracle (unsharded only)
  std::uint64_t atomicity = 0;          ///< runtime atomicity violations
  std::map<std::string, std::uint64_t> run_stats;   ///< engine counters
  std::map<std::string, std::uint64_t> metrics;     ///< kv.* / linear.*
  std::map<std::string, std::uint64_t> fault_stats; ///< fault.* / recovery.*

  bool clean() const {
    return violations == 0 && divergences == 0 && atomicity == 0;
  }
};

/// Run the case once under schedule `perturb_seed` and `shards` engine
/// shards. Sharded runs force perturb 0 and skip the (not concurrent_safe)
/// shadow oracle; the checker rides every run. `op_limit` truncates the
/// global op list (minimizer support).
KvOutcome run_kv_case(const KvCase& fc, std::uint64_t perturb_seed,
                      int shards = 1,
                      std::size_t op_limit = ~std::size_t{0});

/// Everything needed to replay one KV failure.
struct KvRepro {
  std::uint64_t seed = 0;
  std::uint64_t perturb = 0;
  int prefix_ops = 0;       ///< minimized global op prefix (0 = all)
  int ops_per_client = 0;   ///< generator override used (0 = seed-drawn)
  bool reduced = true;
  bool broken = false;      ///< skip_unlock_flush was planted
  fault::FaultPlan plan;
  /// "kv-violation" | "kv-oracle-divergence" | "kv-miss" (proof bookkeeping:
  /// planted bug not caught).
  std::string kind;
};

std::string write_kv_repro(const KvRepro& r, const KvCase& fc,
                           const KvOutcome& out, const std::string& dir);
bool parse_kv_repro(const std::string& path, KvRepro& out);
/// True when `path` starts with the KV repro header (fuzz_conformance
/// --replay dispatches on this).
bool is_kv_repro(const std::string& path);
/// Re-run a parsed KV repro; true when the recorded failure reproduces.
bool replay_kv(const KvRepro& r);

struct KvCampaignOptions {
  std::uint64_t base_seed = 1;
  int cases = 200;
  int schedules = 4;
  bool reduced = true;
  bool net_faults = false;  ///< chaos corpus: seed-derived lossy networks
  std::string repro_dir = ".";
  bool verbose = false;
};

struct KvCampaignResult {
  int cases_run = 0;
  int runs = 0;
  std::uint64_t total_ops = 0;  ///< logical KV ops checked
  std::vector<Failure> failures;
};

/// Run `cases` seeds × `schedules` schedules of clean-protocol KV cases;
/// the checker must stay at zero violations (and the oracle clean) on every
/// run. Failures are minimized and written as repro files.
KvCampaignResult run_kv_campaign(const KvCampaignOptions& opt);

/// Positive detection gate: scan seeds from `base_seed`, planting the
/// skip-unlock-flush bug under a delay-heavy network, until the checker
/// catches a violation; minimize it, write the repro, and replay it. True
/// when the whole pipeline held (mirrors fuzz_conformance's fault_proof).
bool kv_proof(std::uint64_t base_seed, int schedules,
              const std::string& out_dir, bool verbose);

}  // namespace casper::check
