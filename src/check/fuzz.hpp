// Randomized RMA conformance fuzzer.
//
// A seed deterministically generates a small RMA program (topology, Casper
// config, epoch style, and an op stream of PUT/GET/ACC/GET_ACC/FAO — plus
// CAS and ACC-Replace in explicitly order-sensitive cases), which is then run
// under several perturbed fiber schedules (sim::Engine::Options::perturb_seed)
// with the shadow-memory oracle attached. A case fails when
//   * the oracle finds real window bytes diverging from the sequentially
//     consistent reference at a synchronization point, or
//   * the runtime's atomicity-violation detector fires, or
//   * two legal schedules of a schedule-invariant program produce different
//     final window contents.
// Failures are minimized to the shortest failing op prefix and written as a
// replayable repro file (seed + schedule + op trace).
//
// Programs are constructed to be schedule-invariant unless marked
// order-sensitive: PUT targets per-origin-exclusive, per-round-disjoint slot
// ranges with deterministic values; accumulates use one commutative operation
// per case (Sum on exactly-representable values, or Min/Max) on a shared
// region; GETs read a never-written slot. Order-sensitive cases (CAS,
// ACC-Replace, mixed accumulate ops) keep every oracle check but skip the
// cross-schedule content comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/race.hpp"
#include "core/casper.hpp"
#include "fault/plan.hpp"
#include "mpi/types.hpp"
#include "sim/engine.hpp"

namespace casper::check {

// EpochStyle (fence/pscw/lock/lockall) is shared with the race analyzer and
// lives in check/race.hpp.

/// One generated operation, fully resolved (so truncating the op stream is a
/// pure prefix of the program).
struct OpRec {
  mpi::OpKind kind = mpi::OpKind::Put;
  mpi::AccOp aop = mpi::AccOp::Replace;
  int origin = 0;          ///< user rank issuing the op
  int target = 0;          ///< user rank owning the memory
  int round = 0;           ///< epoch round the op belongs to
  std::size_t disp = 0;    ///< byte displacement in the target segment
  int count = 0;           ///< target datatype blocks
  mpi::Datatype tdt;       ///< target datatype (contig or stride-2 vector)
  std::int64_t val = 0;    ///< deterministic value seed for the payload
  /// Local access to the origin's own segment instead of an RMA op (racy
  /// mode): Put = Env::local_store, Get = Env::local_load. origin == target.
  bool local = false;
};

/// A complete generated test case.
struct FuzzCase {
  std::uint64_t seed = 0;
  int nodes = 1;
  int users_per_node = 2;
  int ghosts = 1;
  core::Binding binding = core::Binding::Rank;
  core::DynamicLb dynamic = core::DynamicLb::None;
  /// Online adaptive progress control (DESIGN.md §15) on for the run. Drawn
  /// from a stream separate from the main case stream so the established
  /// corpus replays identical programs with the controller merely toggled.
  bool adaptive = false;
  EpochStyle epoch = EpochStyle::Fence;
  int rounds = 1;
  bool mid_flush = false;    ///< Lock/LockAll: flush_all halfway (III.B.3)
  bool pscw_nocheck = false; ///< PSCW: barrier + MPI_MODE_NOCHECK variant
  bool hint_exact = false;   ///< set epochs_used info to exactly the style
  mpi::Dt acc_dt = mpi::Dt::Double;
  mpi::AccOp acc_op = mpi::AccOp::Sum;  ///< the case's commutative acc op
  bool order_sensitive = false;
  std::size_t slot_bytes = 64;  ///< per-slot bytes; layout below
  /// Injected network/process faults (--faults mode, the fault matrix and
  /// the ghost-failure suites). Inert unless `fault_plan.active()`.
  fault::FaultPlan fault_plan;
  /// One deliberately planted same-epoch conflicting access pair (racy
  /// mode). The analyzer must flag every planted pair in every schedule.
  struct PlantedRace {
    int origin_a = -1;  ///< user rank of the first access
    int origin_b = -1;  ///< user rank of the second access
    int target = -1;    ///< user rank owning the overlapping bytes
    std::size_t lo = 0; ///< overlapping byte range in the target segment
    std::size_t hi = 0;
    int op_a = -1;      ///< indices of the planted ops in `ops`
    int op_b = -1;
  };
  std::vector<PlantedRace> planted;
  std::vector<OpRec> ops;

  int nusers() const { return nodes * users_per_node; }
  /// Segment layout: nusers() per-origin put slots, then the shared
  /// accumulate region, then a never-written read-only slot.
  std::size_t seg_bytes() const {
    return slot_bytes * static_cast<std::size_t>(nusers() + 2);
  }
};

/// Deterministically generate the case for `seed`. `reduced` shrinks op
/// counts and slot sizes for the ctest-time corpus.
FuzzCase make_case(std::uint64_t seed, bool reduced);

/// make_case plus `races` deliberately planted same-epoch conflicting access
/// pairs (PUT-vs-PUT, PUT-vs-GET, or local-store-vs-PUT into a victim's put
/// slot), recorded in `planted`. Positive tests for the race analyzer: every
/// planted pair must be flagged; the case is marked order-sensitive because
/// racing writes make final contents schedule-dependent.
FuzzCase make_racy_case(std::uint64_t seed, bool reduced, int races);

/// Derive a deterministic lossy-network FaultPlan from the case's seed and
/// install it (--faults mode): some mix of drop / duplicate / delay-reorder /
/// ack-drop probabilities, plus a jittered delay window. The reliable AM
/// layer must absorb every mix with the oracle staying clean.
void add_net_faults(FuzzCase& fc);

/// Outcome of one simulated run of a case.
struct RunOutcome {
  std::vector<Divergence> divergences;
  std::uint64_t atomicity_violations = 0;
  std::uint64_t commits = 0;
  /// fault.* / recovery.* engine counters (empty when the run had no plan).
  std::map<std::string, std::uint64_t> fault_stats;
  std::vector<std::uint64_t> content_hash;  ///< per user rank, own segment
  std::vector<sim::Engine::SchedRecord> trace;
  /// Last obs-trace lines (export_text form); populated only when the
  /// CASPER_TRACE environment variable enables tracing for the run.
  std::vector<std::string> trace_tail;
  /// Race-analyzer verdicts (the analyzer rides along on every run).
  std::uint64_t race_conflict_events = 0;
  std::uint64_t race_conflict_bytes = 0;
  std::vector<RaceAnalyzer::Group> race_groups;
  /// Diagnostics of the first recorded conflicts (repro material).
  std::vector<std::string> race_diags;
  /// World rank of each user rank (planted races are phrased in user ranks;
  /// analyzer groups are phrased in world ranks).
  std::vector<int> world_of;

  bool oracle_clean() const {
    return divergences.empty() && atomicity_violations == 0;
  }
  bool races_clean() const { return race_conflict_events == 0; }
};

/// True when the analyzer flagged the planted pair in this run: some conflict
/// group matches its target, its {origin_a, origin_b} pair (translated to
/// world ranks via out.world_of), and intersects its byte range.
bool planted_flagged(const RunOutcome& out, const FuzzCase::PlantedRace& pr);

/// Run the case once under schedule `perturb_seed` (0 = classic order).
/// `inject_flip_fault` enables the deliberate segment→ghost binding bug.
RunOutcome run_case(const FuzzCase& fc, std::uint64_t perturb_seed,
                    bool inject_flip_fault = false);

/// Schedule perturb seed of schedule index `s` for a case (s == 0 → 0).
std::uint64_t perturb_for(std::uint64_t seed, int s);

/// Smallest k in [1, total] for which `fails(k)` holds, assuming rough
/// monotonicity (verified; falls back to `total` when the assumption broke).
int minimize_prefix(int total, const std::function<bool(int)>& fails);

/// Everything needed to replay one failure.
struct Repro {
  std::uint64_t seed = 0;
  std::uint64_t perturb = 0;       ///< the failing schedule
  std::uint64_t base_perturb = 0;  ///< comparison schedule (content diffs)
  int prefix_ops = 0;              ///< minimized op-stream prefix length
  bool reduced = true;
  bool fault = false;
  /// The network FaultPlan active when the failure triggered, embedded in
  /// the repro file so a replay reproduces the same drops/dups/delays.
  fault::FaultPlan plan;
  /// Planted races in the generating case (> 0 → regenerate with
  /// make_racy_case on replay).
  int races = 0;
  /// "oracle-divergence" | "schedule-divergence" | "race-conflict" (a clean
  /// case the analyzer flagged: false positive) | "race-miss" (a planted
  /// race the analyzer did not flag).
  std::string kind;
};

/// Write a human-readable, machine-replayable repro file; returns its path.
std::string write_repro(const Repro& r, const FuzzCase& fc,
                        const RunOutcome& out, const std::string& dir);
bool parse_repro(const std::string& path, Repro& out);
/// Re-run a parsed repro; true when the recorded failure reproduces.
bool replay(const Repro& r);

struct CampaignOptions {
  std::uint64_t base_seed = 1;
  int cases = 200;
  int schedules = 4;
  bool reduced = true;
  /// --faults: every case additionally runs under a seed-derived lossy
  /// network (add_net_faults); failures embed the plan in their repro.
  bool net_faults = false;
  /// --races N: racy mode. Every case is generated with make_racy_case and
  /// N planted conflicting pairs; a planted pair the analyzer misses in any
  /// schedule is a "race-miss" failure (minimized + repro like the rest).
  /// Oracle/content checks are skipped — racing writes legitimately diverge.
  /// 0 = clean mode, where any analyzer conflict is a "race-conflict"
  /// false-positive failure.
  int planted_races = 0;
  /// --adaptive: force the online progress controller on for every case
  /// (the seed stream only turns it on for ~25% of the corpus).
  bool force_adaptive = false;
  std::string repro_dir = ".";
  bool verbose = false;
};

struct Failure {
  std::uint64_t seed = 0;
  std::uint64_t perturb = 0;
  std::string kind;
  int minimized_ops = 0;
  std::string repro_path;
};

struct CampaignResult {
  int cases_run = 0;
  int runs = 0;
  std::uint64_t total_commits = 0;
  std::vector<Failure> failures;
};

/// Run `cases` seeds × `schedules` schedules; minimize and write a repro for
/// every failure.
CampaignResult run_campaign(const CampaignOptions& opt);

}  // namespace casper::check
