#include "check/oracle.hpp"

#include <cstring>

#include "mpi/check.hpp"
#include "mpi/datatype.hpp"
#include "mpi/win.hpp"

namespace casper::check {

void ShadowOracle::add_range(std::uintptr_t lo, std::uintptr_t hi,
                             int win_id) {
  if (lo >= hi) return;
  // Pull in every span that intersects or touches [lo, hi) and widen the
  // range to their union.
  auto it = spans_.upper_bound(lo);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.hi() >= lo) it = prev;
  }
  while (it != spans_.end() && it->second.lo <= hi) {
    lo = std::min(lo, it->second.lo);
    hi = std::max(hi, it->second.hi());
    it = spans_.erase(it);
  }
  Span s;
  s.lo = lo;
  s.win_id = win_id;
  s.shadow.resize(hi - lo);
  // Window creation is collective: no operation is in flight, so real memory
  // IS the reference state. Re-copying (rather than preserving old shadow
  // content) also resets ranges whose heap address was recycled after a free.
  std::memcpy(s.shadow.data(), reinterpret_cast<const void*>(lo), hi - lo);
  spans_.emplace(lo, std::move(s));
}

std::byte* ShadowOracle::shadow_at(std::uintptr_t addr, std::size_t len) {
  auto it = spans_.upper_bound(addr);
  if (it == spans_.begin()) return nullptr;
  --it;
  Span& s = it->second;
  if (addr < s.lo || addr + len > s.hi()) return nullptr;
  return s.shadow.data() + (addr - s.lo);
}

void ShadowOracle::on_win_register(mpi::WinImpl& win) {
  for (const auto& seg : win.segs) {
    if (seg.base == nullptr || seg.size == 0) continue;
    const auto lo = reinterpret_cast<std::uintptr_t>(seg.base);
    add_range(lo, lo + seg.size, win.id());
  }
}

void ShadowOracle::on_win_free(mpi::WinImpl& win) {
  // Keep the spans: Casper's internal windows alias the same buffers, and a
  // later window over recycled memory re-syncs on registration anyway.
  (void)win;
}

void ShadowOracle::on_op_commit(const mpi::AmOp& op, sim::Time t,
                                int entity) {
  (void)t;
  (void)entity;
  ++commits_;
  using mpi::OpKind;
  if (op.kind == OpKind::Get) return;  // reads never move the shadow

  const mpi::Segment& seg =
      op.win->segs[static_cast<std::size_t>(op.target_comm_rank)];
  const auto addr =
      reinterpret_cast<std::uintptr_t>(seg.base) + op.target_disp;
  const std::size_t span = mpi::span_bytes(op.target_count, op.target_dt);
  std::byte* sh = shadow_at(addr, span);
  MMPI_REQUIRE(sh != nullptr,
               "oracle: op commit outside registered memory (win %d)",
               op.win->id());

  switch (op.kind) {
    case OpKind::Put:
      mpi::unpack(sh, op.target_count, op.target_dt, op.payload);
      break;
    case OpKind::Acc:
    case OpKind::GetAcc:
    case OpKind::Fao:
      // The shadow applies the operation to its CURRENT value — the
      // sequentially consistent outcome. The runtime committed a value
      // derived from its processing-start read; if something else committed
      // in between, the copies part ways and validation reports it.
      mpi::reduce_into(sh, op.target_count, op.target_dt, op.payload, op.op);
      break;
    case OpKind::Cas: {
      const std::size_t es = op.target_dt.elem_size();
      if (std::memcmp(sh, op.payload.data(), es) == 0) {
        std::memcpy(sh, op.payload.data() + es, es);
      }
      break;
    }
    case OpKind::Get:
    case OpKind::LockReq:
    case OpKind::LockRelease:
      break;
  }
}

void ShadowOracle::on_sync(mpi::WinImpl& win, int world_rank,
                           mpi::SyncKind kind, int target, sim::Time t) {
  (void)target;
  ++syncs_;
  validate(t, std::string(mpi::to_string(kind)) + " on win " +
                  std::to_string(win.id()) + " by world rank " +
                  std::to_string(world_rank));
}

void ShadowOracle::on_local_access(mpi::WinImpl& win, int comm_rank,
                                   std::size_t offset, std::size_t len,
                                   bool is_store, sim::Time t) {
  (void)t;
  if (!is_store) return;
  const mpi::Segment& seg = win.segs[static_cast<std::size_t>(comm_rank)];
  const auto addr = reinterpret_cast<std::uintptr_t>(seg.base) + offset;
  std::byte* sh = shadow_at(addr, len);
  MMPI_REQUIRE(sh != nullptr,
               "oracle: local store outside registered memory (win %d)",
               win.id());
  std::memcpy(sh, seg.base + offset, len);
}

std::size_t ShadowOracle::validate(sim::Time t, const std::string& where) {
  ++validations_;
  std::size_t found = 0;
  for (auto& [lo, s] : spans_) {
    const auto* real = reinterpret_cast<const std::byte*>(lo);
    if (std::memcmp(real, s.shadow.data(), s.shadow.size()) == 0) continue;
    ++found;
    Divergence d;
    d.t = t;
    d.where = where;
    d.win_id = s.win_id;
    for (std::size_t i = 0; i < s.shadow.size(); ++i) {
      if (real[i] != s.shadow[i]) {
        if (d.nbytes == 0) {
          d.addr = lo + i;
          d.span_off = i;
          d.real = static_cast<std::uint8_t>(real[i]);
          d.shadow = static_cast<std::uint8_t>(s.shadow[i]);
        }
        ++d.nbytes;
      }
    }
    if (divs_.size() < kMaxRecorded) divs_.push_back(std::move(d));
    // Re-sync so one corruption is reported once per sync point, not
    // amplified into a divergence at every later validation.
    std::memcpy(s.shadow.data(), real, s.shadow.size());
  }
  return found;
}

std::uint64_t ShadowOracle::bytes_tracked() const {
  std::uint64_t n = 0;
  for (const auto& [lo, s] : spans_) {
    (void)lo;
    n += s.shadow.size();
  }
  return n;
}

void ShadowOracle::reset() {
  spans_.clear();
  divs_.clear();
  commits_ = 0;
  syncs_ = 0;
  validations_ = 0;
}

}  // namespace casper::check
