#include "check/race.hpp"

#include <algorithm>
#include <cstdio>

#include "mpi/am.hpp"
#include "mpi/check.hpp"
#include "mpi/win.hpp"

namespace casper::check {

const char* to_string(AccessKind k) {
  switch (k) {
    case AccessKind::LocalLoad: return "local-load";
    case AccessKind::LocalStore: return "local-store";
    case AccessKind::Put: return "put";
    case AccessKind::Get: return "get";
    case AccessKind::Acc: return "acc";
    case AccessKind::GetAcc: return "get_acc";
    case AccessKind::Fao: return "fao";
    case AccessKind::Cas: return "cas";
  }
  return "?";
}

const char* to_string(EpochStyle s) {
  switch (s) {
    case EpochStyle::Fence: return "fence";
    case EpochStyle::Pscw: return "pscw";
    case EpochStyle::Lock: return "lock";
    case EpochStyle::LockAll: return "lockall";
  }
  return "?";
}

namespace {

const char* op_name(mpi::AccOp op) {
  switch (op) {
    case mpi::AccOp::Replace: return "replace";
    case mpi::AccOp::Sum: return "sum";
    case mpi::AccOp::Min: return "min";
    case mpi::AccOp::Max: return "max";
    case mpi::AccOp::NoOp: return "no_op";
  }
  return "?";
}

const char* dt_name(mpi::Dt dt) {
  switch (dt) {
    case mpi::Dt::Byte: return "byte";
    case mpi::Dt::Int: return "int";
    case mpi::Dt::Double: return "double";
  }
  return "?";
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---- IntervalTree ----------------------------------------------------------

std::uint64_t IntervalTree::priority(const Access& a) {
  // A pure function of the entry: the treap's heap order — and therefore its
  // shape — depends only on the stored SET, never on insertion order. That is
  // what makes sharded / perturbed runs traverse entries identically.
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(a.lo));
  h = splitmix64(h ^ static_cast<std::uint64_t>(a.origin));
  h = splitmix64(h ^ a.seq);
  return h | 1;  // never zero
}

bool IntervalTree::key_less(int n, std::size_t lo, std::uint64_t prio) const {
  const Node& nd = nodes_[static_cast<std::size_t>(n)];
  if (nd.a.lo != lo) return nd.a.lo < lo;
  return nd.prio < prio;
}

void IntervalTree::pull(int n) {
  Node& nd = nodes_[static_cast<std::size_t>(n)];
  nd.max_hi = nd.a.hi;
  if (nd.l >= 0)
    nd.max_hi = std::max(nd.max_hi, nodes_[static_cast<std::size_t>(nd.l)].max_hi);
  if (nd.r >= 0)
    nd.max_hi = std::max(nd.max_hi, nodes_[static_cast<std::size_t>(nd.r)].max_hi);
}

int IntervalTree::insert_node(int t, int n) {
  if (t < 0) {
    pull(n);
    return n;
  }
  Node& tn = nodes_[static_cast<std::size_t>(t)];
  const Node& nn = nodes_[static_cast<std::size_t>(n)];
  if (nn.prio > tn.prio) {
    // Rotate n above t: split t's subtree around n's key.
    int l = -1, r = -1;
    split(t, nn.a.lo, nn.prio, l, r);
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    nd.l = l;
    nd.r = r;
    pull(n);
    return n;
  }
  if (key_less(n, tn.a.lo, tn.prio)) {
    tn.l = insert_node(tn.l, n);
  } else {
    tn.r = insert_node(tn.r, n);
  }
  pull(t);
  return t;
}

void IntervalTree::split(int t, std::size_t lo, std::uint64_t prio, int& l,
                         int& r) {
  if (t < 0) {
    l = r = -1;
    return;
  }
  Node& tn = nodes_[static_cast<std::size_t>(t)];
  if (key_less(t, lo, prio)) {
    split(tn.r, lo, prio, tn.r, r);
    l = t;
  } else {
    split(tn.l, lo, prio, l, tn.l);
    r = t;
  }
  pull(t);
}

int IntervalTree::merge_nodes(int a, int b) {
  if (a < 0) return b;
  if (b < 0) return a;
  Node& an = nodes_[static_cast<std::size_t>(a)];
  Node& bn = nodes_[static_cast<std::size_t>(b)];
  if (an.prio > bn.prio) {
    an.r = merge_nodes(an.r, b);
    pull(a);
    return a;
  }
  bn.l = merge_nodes(a, bn.l);
  pull(b);
  return b;
}

int IntervalTree::erase_node(int t, std::size_t lo, std::uint64_t prio) {
  if (t < 0) return -1;
  Node& tn = nodes_[static_cast<std::size_t>(t)];
  if (tn.a.lo == lo && tn.prio == prio) {
    const int sub = merge_nodes(tn.l, tn.r);
    free_.push_back(t);
    --size_;
    return sub;
  }
  if (key_less(t, lo, prio)) {
    tn.r = erase_node(tn.r, lo, prio);
  } else {
    tn.l = erase_node(tn.l, lo, prio);
  }
  pull(t);
  return t;
}

void IntervalTree::insert(const Access& a) {
  int n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
    nodes_[static_cast<std::size_t>(n)] = Node{};
  } else {
    n = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& nd = nodes_[static_cast<std::size_t>(n)];
  nd.a = a;
  nd.prio = priority(a);
  nd.max_hi = a.hi;
  root_ = insert_node(root_, n);
  ++size_;
}

bool IntervalTree::coalesce(const Access& a) {
  // Look for an identical-identity entry overlapping or adjacent to [lo, hi);
  // widen the probe by one byte on each side to catch adjacency.
  const std::size_t qlo = a.lo == 0 ? 0 : a.lo - 1;
  const Access* hit = nullptr;
  query(qlo, a.hi + 1, [&](const Access& e) {
    if (hit != nullptr) return;
    if (e.origin == a.origin && e.epoch == a.epoch && e.kind == a.kind &&
        e.op == a.op && e.dt == a.dt && e.flush_gen == a.flush_gen)
      hit = &e;
  });
  if (hit == nullptr) return false;
  Access merged = *hit;
  root_ = erase_node(root_, merged.lo, priority(merged));
  merged.lo = std::min(merged.lo, a.lo);
  merged.hi = std::max(merged.hi, a.hi);
  merged.seq = std::min(merged.seq, a.seq);
  merged.t = std::min(merged.t, a.t);
  // The widened range may now touch further identical-identity entries;
  // absorb them too so the stored set is canonical (insertion-order free).
  if (!coalesce(merged)) insert(merged);
  return true;
}

void IntervalTree::clear() {
  nodes_.clear();
  free_.clear();
  root_ = -1;
  size_ = 0;
}

// ---- RaceAnalyzer ----------------------------------------------------------

void RaceAnalyzer::on_win_register(mpi::WinImpl& win) {
  std::lock_guard<std::mutex> g(mu_);
  WinState& ws = wins_[win.id()];
  ws.nranks = win.comm()->size();
}

void RaceAnalyzer::on_win_free(mpi::WinImpl& win) {
  std::lock_guard<std::mutex> g(mu_);
  wins_.erase(win.id());
}

std::uint64_t RaceAnalyzer::cur_flush_gen(const OriginState& os,
                                          int target) const {
  const auto it = os.flush_gen.find(target);
  return os.flush_all_gen + (it == os.flush_gen.end() ? 0 : it->second);
}

int RaceAnalyzer::current_epoch(const OriginState& os, int target) const {
  // Origin-side epoch precedence: a per-target lock epoch scopes accesses to
  // that target; otherwise whichever global-style epoch is open. The runtime
  // already forbids mixing styles, so at most one of these is open.
  const auto it = os.lock_epochs.find(target);
  if (it != os.lock_epochs.end()) return it->second;
  if (os.lockall_epoch >= 0) return os.lockall_epoch;
  if (os.pscw_epoch >= 0) return os.pscw_epoch;
  if (os.fence_epoch >= 0) return os.fence_epoch;
  return -1;
}

bool RaceAnalyzer::concurrent(const WinState& ws, const Access& a,
                              const Access& b) const {
  if (a.origin == b.origin)
    return a.epoch == b.epoch && a.flush_gen == b.flush_gen;
  const EpochRec& ea = ws.epochs[static_cast<std::size_t>(a.epoch)];
  const EpochRec& eb = ws.epochs[static_cast<std::size_t>(b.epoch)];
  // Collective styles: same generation = the same program-level epoch,
  // whatever the per-rank call-return times were. Different generations are
  // separated by the collective sync, hence ordered.
  if (ea.style == EpochStyle::Fence && eb.style == EpochStyle::Fence)
    return ea.gen == eb.gen;
  if (ea.style == EpochStyle::Pscw && eb.style == EpochStyle::Pscw)
    return ea.gen == eb.gen;
  // Two passive epochs where at least one holds an exclusive per-target lock
  // are serialized by the target's lock manager: delayed acquisition makes
  // the call-time intervals overlap even though the critical sections never
  // do.
  const bool ap = ea.style == EpochStyle::Lock || ea.style == EpochStyle::LockAll;
  const bool bp = eb.style == EpochStyle::Lock || eb.style == EpochStyle::LockAll;
  if (ap && bp && (ea.exclusive || eb.exclusive)) return false;
  // Everything else: genuine virtual-time overlap of [open, close). Open
  // epochs extend to +inf — exact, because the open epoch provably reaches
  // past `now`, the time of the access being tested.
  return ea.open_t < eb.close_t && eb.open_t < ea.close_t;
}

bool RaceAnalyzer::legal(const Access& a, const Access& b) const {
  if (access_is_read(a.kind) && access_is_read(b.kind)) return true;
  if (a.origin == b.origin) {
    // Same epoch + flush generation (concurrent() filtered the rest): RMA is
    // unordered against itself within an epoch, EXCEPT accumulate-class ops
    // (ordered per MPI-3 accumulate ordering) and local-local (single
    // thread, program order).
    if (access_is_acc(a.kind) && access_is_acc(b.kind)) return true;
    if (access_is_local(a.kind) && access_is_local(b.kind)) return true;
    return false;
  }
  if (access_is_acc(a.kind) && access_is_acc(b.kind)) {
    if (a.dt != b.dt) return false;
    if (opt_.strict_same_op) {
      const bool a_cas = a.kind == AccessKind::Cas;
      const bool b_cas = b.kind == AccessKind::Cas;
      return a.op == b.op && a_cas == b_cas;
    }
    return true;
  }
  return false;
}

std::size_t RaceAnalyzer::union_insert(
    std::vector<std::pair<std::size_t, std::size_t>>& iv, std::size_t lo,
    std::size_t hi) {
  if (lo >= hi) return 0;
  const std::size_t lo0 = lo, hi0 = hi;
  std::size_t already = 0;  // bytes of [lo0, hi0) an existing interval covers
  auto it = std::lower_bound(
      iv.begin(), iv.end(), lo,
      [](const auto& r, std::size_t v) { return r.second < v; });
  while (it != iv.end() && it->first <= hi) {
    const std::size_t olo = std::max(it->first, lo0);
    const std::size_t ohi = std::min(it->second, hi0);
    if (ohi > olo) already += ohi - olo;  // absorbed intervals are disjoint
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->second);
    it = iv.erase(it);
  }
  iv.insert(it, {lo, hi});
  return (hi0 - lo0) - already;
}

void RaceAnalyzer::report(WinState& ws, int win_id, int target,
                          const Access& a, const Access& b, sim::Time t_now) {
  const std::size_t olo = std::max(a.lo, b.lo);
  const std::size_t ohi = std::min(a.hi, b.hi);
  ++conflict_events_;

  GroupKey key{win_id, target, std::min(a.origin, b.origin),
               std::max(a.origin, b.origin)};
  const bool new_pair = groups_.find(key) == groups_.end();
  const std::size_t fresh = union_insert(groups_[key], olo, ohi);
  if (obs::on(rec_)) {
    // Only order-invariant quantities become counters: pair count and union
    // bytes reach the same totals under every schedule and shard count (raw
    // event counts would not, because coalescing merges entries differently
    // depending on arrival order).
    obs::Metrics& m = rec_->metrics();
    if (new_pair) ++m.counter("race.conflict_pairs");
    m.counter("race.conflict_bytes") += fresh;
  }

  const EpochRec& ea = ws.epochs[static_cast<std::size_t>(a.epoch)];
  const EpochRec& eb = ws.epochs[static_cast<std::size_t>(b.epoch)];

  if (conflicts_.size() < opt_.max_recorded) {
    RaceConflict c;
    c.win_id = win_id;
    c.target = target;
    c.lo = olo;
    c.hi = ohi;
    c.a = {a, ea.style, ea.gen, ea.open_t};
    c.b = {b, eb.style, eb.gen, eb.open_t};
    c.t_detect = t_now;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "win %d target %d bytes [%zu,%zu): %s", win_id, target, olo, ohi,
        to_string(a.kind));
    c.diag = buf;
    std::snprintf(
        buf, sizeof(buf),
        "(%s,%s) by origin %d [%zu,%zu) seq %llu t=%lld (%s#%llu open@%lld)",
        op_name(a.op), dt_name(a.dt), a.origin, a.lo, a.hi,
        static_cast<unsigned long long>(a.seq),
        static_cast<long long>(a.t), to_string(ea.style),
        static_cast<unsigned long long>(ea.gen),
        static_cast<long long>(ea.open_t));
    c.diag += buf;
    c.diag += " vs ";
    c.diag += to_string(b.kind);
    std::snprintf(
        buf, sizeof(buf),
        "(%s,%s) by origin %d [%zu,%zu) seq %llu t=%lld (%s#%llu open@%lld)",
        op_name(b.op), dt_name(b.dt), b.origin, b.lo, b.hi,
        static_cast<unsigned long long>(b.seq),
        static_cast<long long>(b.t), to_string(eb.style),
        static_cast<unsigned long long>(eb.gen),
        static_cast<long long>(eb.open_t));
    c.diag += buf;
    if (obs::on(rec_) && opt_.tail_lines > 0)
      c.trace_tail = rec_->trace().tail_text(opt_.tail_lines);
    conflicts_.push_back(std::move(c));
  }

  if (obs::on(rec_)) {
    rec_->trace().instant(b.origin, obs::Ev::RaceConflict, t_now,
                          static_cast<std::uint64_t>(a.origin),
                          static_cast<std::uint64_t>(win_id),
                          static_cast<std::uint64_t>(ohi - olo));
  }
}

void RaceAnalyzer::record_access(mpi::WinImpl& win, int origin_world,
                                 int target_comm, AccessKind kind,
                                 mpi::AccOp op, mpi::Dt dt, std::size_t lo,
                                 std::size_t hi, sim::Time t) {
  if (lo >= hi) return;
  WinState& ws = wins_[win.id()];
  if (ws.nranks == 0) ws.nranks = win.comm()->size();
  OriginState& os = ws.origins[origin_world];
  const int ep = current_epoch(os, target_comm);
  if (ep < 0) {
    ++unscoped_;
    return;  // no open epoch: nothing to scope the access to
  }
  Access a;
  a.lo = lo;
  a.hi = hi;
  a.origin = origin_world;
  a.seq = os.next_seq++;
  a.kind = kind;
  a.op = op;
  a.dt = dt;
  a.flush_gen = cur_flush_gen(os, target_comm);
  a.epoch = ep;
  a.t = t;

  IntervalTree& tree = ws.trees[target_comm];
  tree.query(lo, hi, [&](const Access& e) {
    if (!concurrent(ws, e, a)) return;
    if (legal(e, a)) return;
    report(ws, win.id(), target_comm, e, a, t);
  });
  if (!tree.coalesce(a)) tree.insert(a);
}

void RaceAnalyzer::on_op_issue(const mpi::AmOp& op, sim::Time t) {
  using mpi::OpKind;
  AccessKind kind = AccessKind::Put;
  switch (op.kind) {
    case OpKind::Put: kind = AccessKind::Put; break;
    case OpKind::Get: kind = AccessKind::Get; break;
    case OpKind::Acc: kind = AccessKind::Acc; break;
    case OpKind::GetAcc: kind = AccessKind::GetAcc; break;
    case OpKind::Fao: kind = AccessKind::Fao; break;
    case OpKind::Cas: kind = AccessKind::Cas; break;
    case OpKind::LockReq:
    case OpKind::LockRelease:
      return;  // protocol traffic, not a data access
  }
  MMPI_REQUIRE(op.win != nullptr, "race: op issue without window");
  std::lock_guard<std::mutex> g(mu_);
  ++accesses_;
  if (obs::on(rec_)) ++rec_->metrics().counter("race.accesses");
  // One entry per contiguous block: a strided datatype's gaps are NOT
  // accessed and must not collide with a neighbor writing the gaps.
  const mpi::Datatype& dt = op.target_dt;
  const std::size_t bl = static_cast<std::size_t>(dt.blocklen) * dt.elem_size();
  const std::size_t st = static_cast<std::size_t>(dt.stride) * dt.elem_size();
  const int nblocks = dt.contiguous() ? 1 : op.target_count;
  const std::size_t total = dt.contiguous()
                                ? mpi::data_bytes(op.target_count, dt)
                                : bl;
  for (int i = 0; i < nblocks; ++i) {
    const std::size_t lo = op.target_disp + static_cast<std::size_t>(i) * st;
    record_access(*op.win, op.origin_world, op.target_comm_rank, kind, op.op,
                  dt.base, lo, lo + (dt.contiguous() ? total : bl), t);
  }
}

void RaceAnalyzer::on_local_access(mpi::WinImpl& win, int comm_rank,
                                   std::size_t offset, std::size_t len,
                                   bool is_store, sim::Time t) {
  std::lock_guard<std::mutex> g(mu_);
  ++accesses_;
  if (obs::on(rec_)) ++rec_->metrics().counter("race.accesses");
  record_access(win, win.comm()->world_rank(comm_rank), comm_rank,
                is_store ? AccessKind::LocalStore : AccessKind::LocalLoad,
                mpi::AccOp::Replace, mpi::Dt::Byte, offset, offset + len, t);
}

void RaceAnalyzer::on_epoch_begin(mpi::WinImpl& win, int world_rank,
                                  mpi::EpochEv kind, int target, sim::Time t) {
  std::lock_guard<std::mutex> g(mu_);
  WinState& ws = wins_[win.id()];
  if (ws.nranks == 0) ws.nranks = win.comm()->size();
  OriginState& os = ws.origins[world_rank];

  EpochStyle style = EpochStyle::Fence;
  bool excl = false;
  int* slot = nullptr;
  switch (kind) {
    case mpi::EpochEv::Fence:
      style = EpochStyle::Fence;
      slot = &os.fence_epoch;
      break;
    case mpi::EpochEv::Start:
      style = EpochStyle::Pscw;
      slot = &os.pscw_epoch;
      break;
    case mpi::EpochEv::LockExcl:
      excl = true;
      [[fallthrough]];
    case mpi::EpochEv::Lock:
      style = EpochStyle::Lock;
      slot = &os.lock_epochs.try_emplace(target, -1).first->second;
      break;
    case mpi::EpochEv::LockAll:
      style = EpochStyle::LockAll;
      slot = &os.lockall_epoch;
      break;
  }
  // Casper's layer both reports the user-facing epoch itself AND (for the
  // lock style) natively locks the user window for load/store access, which
  // reports a second begin for the same program epoch. Opening an
  // already-open epoch of the same style is therefore an idempotent no-op.
  if (*slot >= 0 &&
      ws.epochs[static_cast<std::size_t>(*slot)].open())
    return;

  EpochRec er;
  er.style = style;
  er.exclusive = excl;
  er.target = style == EpochStyle::Lock ? target : -1;
  if (style == EpochStyle::Fence) er.gen = os.fence_gen++;
  if (style == EpochStyle::Pscw) er.gen = os.pscw_gen++;
  er.open_t = t;
  *slot = static_cast<int>(ws.epochs.size());
  ws.epochs.push_back(er);
  ++epochs_opened_;
  if (obs::on(rec_)) ++rec_->metrics().counter("race.epochs");
}

void RaceAnalyzer::close_epoch(WinState& ws, int& slot, sim::Time t) {
  if (slot < 0) return;
  EpochRec& er = ws.epochs[static_cast<std::size_t>(slot)];
  if (er.open()) er.close_t = t;
  slot = -1;
}

void RaceAnalyzer::on_sync(mpi::WinImpl& win, int world_rank,
                           mpi::SyncKind kind, int target, sim::Time t) {
  std::lock_guard<std::mutex> g(mu_);
  auto wit = wins_.find(win.id());
  if (wit == wins_.end()) return;
  WinState& ws = wit->second;
  auto oit = ws.origins.find(world_rank);
  if (oit == ws.origins.end()) return;
  OriginState& os = oit->second;

  switch (kind) {
    case mpi::SyncKind::Fence:
      close_epoch(ws, os.fence_epoch, t);
      break;
    case mpi::SyncKind::Complete:
      close_epoch(ws, os.pscw_epoch, t);
      break;
    case mpi::SyncKind::Wait:
      break;  // exposure side; access epochs close at complete
    case mpi::SyncKind::Unlock: {
      auto it = os.lock_epochs.find(target);
      if (it != os.lock_epochs.end()) {
        close_epoch(ws, it->second, t);
        os.lock_epochs.erase(it);
      }
      break;
    }
    case mpi::SyncKind::UnlockAll:
      close_epoch(ws, os.lockall_epoch, t);
      break;
    case mpi::SyncKind::Flush:
      ++os.flush_gen[target];
      break;
    case mpi::SyncKind::FlushAll:
      ++os.flush_all_gen;
      break;
  }
  if (target >= 0) {
    maybe_prune(ws, target, t);
  } else {
    for (auto& [tgt, tree] : ws.trees) {
      (void)tree;
      maybe_prune(ws, tgt, t);
    }
  }
}

void RaceAnalyzer::maybe_prune(WinState& ws, int target, sim::Time t) {
  auto it = ws.trees.find(target);
  if (it == ws.trees.end() || it->second.size() < opt_.prune_threshold)
    return;
  // An entry can be dropped once NO future access can be concurrent with it:
  //   * collective styles match by generation — keep entries whose gen could
  //     still be seen by a lagging origin, i.e. >= the minimum generation any
  //     origin could still open (origins never seen count as generation 0);
  //   * passive entries use virtual-time overlap — closed epochs strictly in
  //     the past cannot overlap an epoch opened at or after `t`.
  std::uint64_t min_fence = 0, min_pscw = 0;
  if (static_cast<int>(ws.origins.size()) >= ws.nranks) {
    min_fence = min_pscw = ~std::uint64_t{0};
    for (const auto& [r, os] : ws.origins) {
      (void)r;
      const std::uint64_t nf =
          os.fence_epoch >= 0
              ? ws.epochs[static_cast<std::size_t>(os.fence_epoch)].gen
              : os.fence_gen;
      const std::uint64_t np =
          os.pscw_epoch >= 0
              ? ws.epochs[static_cast<std::size_t>(os.pscw_epoch)].gen
              : os.pscw_gen;
      min_fence = std::min(min_fence, nf);
      min_pscw = std::min(min_pscw, np);
    }
  }
  // Slack absorbs the sharded engine's bounded cross-shard time skew: an
  // event from another host worker may still arrive slightly in `t`'s past.
  constexpr sim::Time kPruneSlack = 1'000'000;  // 1 ms of virtual time
  it->second.prune([&](const Access& a) {
    const EpochRec& er = ws.epochs[static_cast<std::size_t>(a.epoch)];
    switch (er.style) {
      case EpochStyle::Fence: return er.gen >= min_fence;
      case EpochStyle::Pscw: return er.gen >= min_pscw;
      case EpochStyle::Lock:
      case EpochStyle::LockAll:
        return er.open() || er.close_t + kPruneSlack >= t;
    }
    return true;
  });
}

std::vector<RaceAnalyzer::Group> RaceAnalyzer::groups() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Group> out;
  out.reserve(groups_.size());
  for (const auto& [k, iv] : groups_) {
    Group grp;
    grp.win_id = k.win_id;
    grp.target = k.target;
    grp.origin_a = k.origin_a;
    grp.origin_b = k.origin_b;
    grp.ranges = iv;
    out.push_back(std::move(grp));
  }
  return out;
}

bool RaceAnalyzer::flags(int win_id, int target, int origin_a, int origin_b,
                         std::size_t lo, std::size_t hi) const {
  std::lock_guard<std::mutex> g(mu_);
  GroupKey key{win_id, target, std::min(origin_a, origin_b),
               std::max(origin_a, origin_b)};
  auto it = groups_.find(key);
  if (it == groups_.end()) return false;
  for (const auto& [rlo, rhi] : it->second)
    if (rlo < hi && rhi > lo) return true;
  return false;
}

std::uint64_t RaceAnalyzer::conflict_pairs() const {
  std::lock_guard<std::mutex> g(mu_);
  return groups_.size();
}

std::uint64_t RaceAnalyzer::conflict_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  std::uint64_t n = 0;
  for (const auto& [k, iv] : groups_) {
    (void)k;
    for (const auto& [lo, hi] : iv) n += hi - lo;
  }
  return n;
}

void RaceAnalyzer::reset() {
  std::lock_guard<std::mutex> g(mu_);
  wins_.clear();
  groups_.clear();
  conflicts_.clear();
  conflict_events_ = 0;
  accesses_ = 0;
  epochs_opened_ = 0;
  unscoped_ = 0;
}

}  // namespace casper::check
