// Per-key linearizability checker for the RMA-backed KV store.
//
// The checker is a history log writer in the style of pmwcas's
// LinearCheckerLogWriter: it rides a run as a kv::HistorySink, recording one
// (invocation, response) virtual-time interval per completed GET / PUT /
// CAS-update, then — after the run — searches every per-key history for a
// legal linearization under sequential register semantics:
//
//   GET      returns the current value (0 = key absent);
//   PUT ok   sets the value; PUT !ok (bucket overflow) is legal only while
//            the key is absent and leaves the store untouched;
//   CASUPD   returns the old value, succeeds iff the key is present and the
//            old value equals `expected`, and on success installs `desired`.
//
// Search: Wing–Gong style backtracking over the partial order induced by the
// intervals (op A precedes op B iff resp_A < inv_B; overlapping ops commute).
// Two standard accelerations keep it fast on real histories:
//   * interval-order fast path — first try the single linearization that
//     orders ops by invocation time; contention-free histories (the vast
//     majority of keys) accept it immediately;
//   * minimal-candidate rule + memoization — only minimal undone ops are
//     candidates, and (done-set, register value) states that already failed
//     are pruned via an exact-equality memo (no lossy hashing: a hash
//     collision here would fabricate a violation verdict).
//
// Determinism: the history is canonically sorted by (key, inv, resp, client,
// cseq) before checking, so the verdict — and history_hash() — depend only
// on the set of recorded events, never on record() arrival order. That makes
// the checker verdict-invariant across fiber schedules and shard counts,
// which the determinism tests assert by exact-matching history_hash().
//
// The RmaObserver face is passive bookkeeping (commit / sync counts used by
// tests to prove the checker actually rode the run); record() is mutexed and
// the observer hooks touch only atomics, so the checker is concurrent_safe
// and may attach to sharded runs — unlike the shadow oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "kv/kv.hpp"
#include "mpi/observe.hpp"

namespace casper::obs {
class Recorder;
}

namespace casper::check {

class LinearChecker final : public mpi::RmaObserver, public kv::HistorySink {
 public:
  struct Violation {
    std::uint64_t key = 0;
    std::string diag;  ///< deterministic: canonical events + failure reason
  };

  // --- kv::HistorySink ------------------------------------------------------
  void record(const kv::KvEvent& e) override;

  // --- mpi::RmaObserver (passive ride-along bookkeeping) --------------------
  void on_win_register(mpi::WinImpl&) override {}
  void on_win_free(mpi::WinImpl&) override {}
  void on_op_commit(const mpi::AmOp&, sim::Time, int) override {
    commits_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_sync(mpi::WinImpl&, int, mpi::SyncKind, int, sim::Time) override {
    syncs_.fetch_add(1, std::memory_order_relaxed);
  }
  bool concurrent_safe() const override { return true; }

  // --- verdict --------------------------------------------------------------
  /// Run (or return the cached) per-key analysis over everything recorded.
  const std::vector<Violation>& check();
  bool clean() { return check().empty(); }

  std::size_t ops_recorded() const;
  std::uint64_t commits() const {
    return commits_.load(std::memory_order_relaxed);
  }
  std::uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

  /// FNV-1a over the canonically sorted history — equal hashes mean the runs
  /// produced the identical set of logical KV operations and outcomes.
  std::uint64_t history_hash();

  /// Optional: dump linear.* counters (ops/keys checked, violations) into
  /// `rec` at check() time.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

  void reset();

 private:
  void canonicalize();

  mutable std::mutex mu_;
  std::vector<kv::KvEvent> events_;
  bool sorted_ = false;
  bool checked_ = false;
  std::vector<Violation> violations_;
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> syncs_{0};
  obs::Recorder* rec_ = nullptr;
};

}  // namespace casper::check
