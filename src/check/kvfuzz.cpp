#include "check/kvfuzz.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "check/oracle.hpp"
#include "mpi/runtime.hpp"
#include "net/profile.hpp"
#include "obs/record.hpp"
#include "progress/progress.hpp"
#include "sim/rng.hpp"

namespace casper::check {

namespace {

constexpr const char* kKvReproHeader = "# casper kv repro v1";

const char* binding_name(core::Binding b) {
  return b == core::Binding::Segment ? "segment" : "rank";
}

}  // namespace

const char* to_string(KvMode m) {
  switch (m) {
    case KvMode::Original: return "original";
    case KvMode::Thread: return "thread";
    case KvMode::Casper: return "casper";
  }
  return "?";
}

KvCase make_kv_case(std::uint64_t seed, bool reduced, int ops_per_client) {
  sim::Rng rng(seed, 0x6b76);
  KvCase fc;
  fc.seed = seed;
  fc.nodes = 1 + static_cast<int>(rng.next_below(2));
  fc.users_per_node = 1 + static_cast<int>(rng.next_below(3));
  if (fc.nodes * fc.users_per_node < 2) fc.users_per_node = 2;
  fc.ghosts = 1 + static_cast<int>(rng.next_below(2));
  switch (rng.next_below(4)) {
    case 0: fc.mode = KvMode::Original; break;
    case 1: fc.mode = KvMode::Thread; break;
    default: fc.mode = KvMode::Casper; break;  // Casper twice as often
  }
  fc.binding =
      rng.next_below(2) ? core::Binding::Segment : core::Binding::Rank;
  switch (rng.next_below(4)) {
    case 0: fc.dynamic = core::DynamicLb::None; break;
    case 1: fc.dynamic = core::DynamicLb::Random; break;
    case 2: fc.dynamic = core::DynamicLb::OpCounting; break;
    default: fc.dynamic = core::DynamicLb::ByteCounting; break;
  }
  // Tiny tables keep every bucket hot: collisions, overflow PUTs, and lock
  // contention all happen at ctest scale.
  fc.store.nbuckets = 2 + static_cast<int>(rng.next_below(6));
  fc.store.assoc = 1 + static_cast<int>(rng.next_below(3));
  fc.store.lock = rng.next_below(2) ? kv::KvConfig::LockKind::FaoTicket
                                    : kv::KvConfig::LockKind::CasSpin;
  fc.traffic.nkeys = 2 + static_cast<int>(rng.next_below(14));
  switch (rng.next_below(4)) {
    case 0: fc.traffic.zipf_s = 0.0; break;
    case 1: fc.traffic.zipf_s = 0.6; break;
    case 2: fc.traffic.zipf_s = 0.99; break;
    default: fc.traffic.zipf_s = 1.2; break;
  }
  fc.traffic.read_pct = 20 + static_cast<int>(rng.next_below(70));
  const int room = 100 - fc.traffic.read_pct;
  fc.traffic.rmw_pct = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(room < 60 ? room : 60) + 1));
  // Always draw, then override: replays record the override and must not
  // shift the downstream draws relative to the original generation.
  const int drawn = reduced ? 6 + static_cast<int>(rng.next_below(10))
                            : 20 + static_cast<int>(rng.next_below(30));
  fc.traffic.ops_per_client = ops_per_client > 0 ? ops_per_client : drawn;
  fc.traffic.think_mean = sim::us(1 + rng.next_below(6));
  fc.traffic.seed = seed;
  fc.ops = kv::make_ops(fc.traffic, fc.nclients());
  return fc;
}

void add_kv_net_faults(KvCase& fc) {
  sim::Rng rng(fc.seed, 0xfa06b);
  fault::FaultPlan& fp = fc.fault_plan;
  fp.seed = fc.seed ^ 0x6b76a5a5a5a5a5a5ULL;
  fault::NetFaults& n = fp.net;
  const std::uint64_t mix = rng.next_below(8);
  if (mix == 0 || (mix & 1) != 0) n.drop_p = 0.02 + 0.13 * rng.next_double();
  if (mix == 1 || (mix & 2) != 0) n.dup_p = 0.02 + 0.13 * rng.next_double();
  if (mix == 2 || (mix & 4) != 0) {
    n.delay_p = 0.05 + 0.25 * rng.next_double();
    n.delay_min = sim::us(1);
    n.delay_max = sim::us(5 + rng.next_below(40));
  }
  if (rng.next_below(3) == 0) n.ack_drop_p = 0.02 + 0.10 * rng.next_double();
}

void add_kv_proof_faults(KvCase& fc) {
  sim::Rng rng(fc.seed, 0xbadf1);
  fault::FaultPlan& fp = fc.fault_plan;
  fp.seed = fc.seed ^ 0x9e3779b97f4a7c15ULL;
  // Heavy delay, nothing else: a jitter window much wider than the
  // PUT→release issue gap routinely commits the lock release before the
  // (unflushed, planted-bug) value PUT, so the next lock holder reads stale.
  fp.net.delay_p = 0.45 + 0.35 * rng.next_double();
  fp.net.delay_min = sim::us(2);
  fp.net.delay_max = sim::us(10 + rng.next_below(40));
}

std::vector<int> kv_ghost_ranks(const KvCase& fc) {
  if (fc.mode != KvMode::Casper) return {};
  net::Topology topo;
  topo.nodes = fc.nodes;
  topo.cores_per_node = fc.users_per_node + fc.ghosts;
  core::Config cc;
  cc.ghosts_per_node = fc.ghosts;
  std::vector<int> out;
  for (int w = 0; w < topo.nranks(); ++w) {
    if (core::is_ghost_rank(topo, cc, w)) out.push_back(w);
  }
  return out;
}

KvOutcome run_kv_case(const KvCase& fc, std::uint64_t perturb_seed,
                      int shards, std::size_t op_limit) {
  const bool sharded = shards > 1;
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = fc.nodes;
  rc.machine.topo.cores_per_node =
      fc.mode == KvMode::Casper ? fc.users_per_node + fc.ghosts
                                : fc.users_per_node;
  rc.seed = fc.seed;
  // Sharded engines reject perturb_seed and fault plans (runtime.hpp).
  rc.perturb_seed = sharded ? 0 : perturb_seed;
  rc.shards = shards;
  if (!sharded && fc.fault_plan.active()) rc.fault = &fc.fault_plan;
  if (fc.mode == KvMode::Thread) {
    rc.progress.kind = progress::Kind::Thread;
    rc.progress.oversubscribed = true;
  }

  obs::Recorder rec;
  if (obs::kTraceCompiled) {
    rc.recorder = &rec;
    if (sharded) rec.set_shards(shards);
  }

  kv::KvConfig store_cfg = fc.store;
  store_cfg.skip_unlock_flush = fc.broken_skip_flush;

  KvOutcome out;
  LinearChecker checker;
  ShadowOracle oracle;
  const std::vector<kv::KvOp>& ops = fc.ops;
  auto body = [&](mpi::Env& env) {
    mpi::Comm w = env.world();
    kv::KvStore store(env, store_cfg, w);
    store.set_sink(&checker);
    store.open();
    kv::run_ops(env, store, ops, op_limit, fc.traffic);
    store.close();
    if (env.rank(w) == 0) {
      out.end_time = env.now();
      out.fingerprint = store.fingerprint();
      out.stats = store.global_stats();
      out.acc_ops = store.acc_total(0);
    }
  };

  core::Config cc;
  cc.ghosts_per_node = fc.ghosts;
  cc.binding = fc.binding;
  cc.dynamic = fc.dynamic;
  mpi::Runtime rt(rc, body,
                  fc.mode == KvMode::Casper ? core::layer(cc)
                                            : mpi::LayerFactory{});
  // The oracle is not concurrent_safe; it only rides unsharded runs. The
  // checker is internally synchronized and rides every run.
  if (!sharded) rt.add_observer(&oracle);
  rt.add_observer(&checker);
  rt.run();

  if (obs::kTraceCompiled) {
    rec.merge_shards();
    checker.set_recorder(&rec);
  }
  out.violations = checker.check().size();
  for (const LinearChecker::Violation& v : checker.check()) {
    out.diags.push_back("key " + std::to_string(v.key) + ":\n" + v.diag);
    if (out.diags.size() >= 4) break;
  }
  out.history_hash = checker.history_hash();
  out.checker_ops = checker.ops_recorded();
  out.atomicity = rt.stats().get("atomicity_violations");
  out.run_stats = rt.stats().all();
  if (!sharded) out.divergences = oracle.divergences().size();
  if (obs::kTraceCompiled) {
    for (const auto& [key, val] : rec.metrics().counters()) {
      if (key.rfind("kv.", 0) == 0 || key.rfind("linear.", 0) == 0) {
        out.metrics[key] = val;
      }
    }
  }
  if (fc.fault_plan.active()) {
    for (const auto& [key, val] : rt.stats().all()) {
      if (key.rfind("fault.", 0) == 0 || key.rfind("recovery.", 0) == 0) {
        out.fault_stats[key] = val;
      }
    }
  }
  return out;
}

std::string write_kv_repro(const KvRepro& r, const KvCase& fc,
                           const KvOutcome& out, const std::string& dir) {
  char name[128];
  std::snprintf(name, sizeof(name),
                "casper_kv_repro_s%" PRIu64 "_p%" PRIu64 ".txt", r.seed,
                r.perturb);
  const std::string path = dir.empty() ? name : dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  std::fprintf(f, "%s\n", kKvReproHeader);
  std::fprintf(f, "# replay: fuzz_conformance --replay %s\n", path.c_str());
  std::fprintf(f, "kind %s\n", r.kind.c_str());
  std::fprintf(f, "seed %" PRIu64 "\n", r.seed);
  std::fprintf(f, "perturb %" PRIu64 "\n", r.perturb);
  std::fprintf(f, "prefix %d\n", r.prefix_ops);
  std::fprintf(f, "opsper %d\n", r.ops_per_client);
  std::fprintf(f, "reduced %d\n", r.reduced ? 1 : 0);
  std::fprintf(f, "broken %d\n", r.broken ? 1 : 0);
  if (r.plan.active()) {
    std::fprintf(f,
                 "netfault seed=%" PRIu64 " drop=%.17g dup=%.17g delay=%.17g "
                 "dmin=%" PRIu64 " dmax=%" PRIu64 " ackdrop=%.17g "
                 "rto=%" PRIu64 " maxretries=%d hb=%" PRIu64 "\n",
                 r.plan.seed, r.plan.net.drop_p, r.plan.net.dup_p,
                 r.plan.net.delay_p, r.plan.net.delay_min,
                 r.plan.net.delay_max, r.plan.net.ack_drop_p, r.plan.rto_base,
                 r.plan.max_retries, r.plan.heartbeat_period);
    for (const auto& k : r.plan.kills) {
      std::fprintf(f, "kill rank=%d at=%" PRIu64 "\n", k.world_rank, k.at);
    }
  }
  std::fprintf(
      f,
      "case mode=%s nodes=%d users_per_node=%d ghosts=%d binding=%s "
      "dynamic=%d nbuckets=%d assoc=%d lock=%d nkeys=%d zipf=%.3f "
      "read_pct=%d rmw_pct=%d ops_per_client=%d\n",
      to_string(fc.mode), fc.nodes, fc.users_per_node, fc.ghosts,
      binding_name(fc.binding), static_cast<int>(fc.dynamic),
      fc.store.nbuckets, fc.store.assoc, static_cast<int>(fc.store.lock),
      fc.traffic.nkeys, fc.traffic.zipf_s, fc.traffic.read_pct,
      fc.traffic.rmw_pct, fc.traffic.ops_per_client);
  const std::size_t nshow =
      r.prefix_ops > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(r.prefix_ops),
                                  fc.ops.size())
          : fc.ops.size();
  for (std::size_t i = 0; i < nshow && i < 256; ++i) {
    const kv::KvOp& op = fc.ops[i];
    std::fprintf(f,
                 "op %zu client=%d kind=%d key=%" PRIu64 " val=%lld "
                 "think=%" PRIu64 "\n",
                 i, op.client, op.kind, op.key,
                 static_cast<long long>(op.val), op.think);
  }
  for (const std::string& d : out.diags) {
    std::fprintf(f, "violation %s\n", d.c_str());
  }
  std::fprintf(f, "history_hash %" PRIu64 "\n", out.history_hash);
  std::fprintf(f, "checker_ops %zu\n", out.checker_ops);
  std::fclose(f);
  return path;
}

bool is_kv_repro(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[128] = {};
  const bool ok = std::fgets(line, sizeof line, f) != nullptr &&
                  std::strncmp(line, kKvReproHeader,
                               std::strlen(kKvReproHeader)) == 0;
  std::fclose(f);
  return ok;
}

bool parse_kv_repro(const std::string& path, KvRepro& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[512];
  bool have_seed = false, have_kind = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char kind[64];
    int b = 0;
    if (std::sscanf(line, "kind %63s", kind) == 1) {
      out.kind = kind;
      have_kind = true;
    } else if (std::sscanf(line, "seed %" SCNu64, &out.seed) == 1) {
      have_seed = true;
    } else if (std::sscanf(line, "perturb %" SCNu64, &out.perturb) == 1) {
    } else if (std::sscanf(line, "prefix %d", &out.prefix_ops) == 1) {
    } else if (std::sscanf(line, "opsper %d", &out.ops_per_client) == 1) {
    } else if (std::sscanf(line, "reduced %d", &b) == 1) {
      out.reduced = b != 0;
    } else if (std::sscanf(line, "broken %d", &b) == 1) {
      out.broken = b != 0;
    } else if (std::sscanf(line,
                           "netfault seed=%" SCNu64 " drop=%lg dup=%lg "
                           "delay=%lg dmin=%" SCNu64 " dmax=%" SCNu64
                           " ackdrop=%lg rto=%" SCNu64 " maxretries=%d "
                           "hb=%" SCNu64,
                           &out.plan.seed, &out.plan.net.drop_p,
                           &out.plan.net.dup_p, &out.plan.net.delay_p,
                           &out.plan.net.delay_min, &out.plan.net.delay_max,
                           &out.plan.net.ack_drop_p, &out.plan.rto_base,
                           &out.plan.max_retries,
                           &out.plan.heartbeat_period) == 10) {
    } else {
      fault::GhostKill k;
      if (std::sscanf(line, "kill rank=%d at=%" SCNu64, &k.world_rank,
                      &k.at) == 2) {
        out.plan.kills.push_back(k);
      }
    }
  }
  std::fclose(f);
  return have_seed && have_kind;
}

bool replay_kv(const KvRepro& r) {
  KvCase fc = make_kv_case(r.seed, r.reduced, r.ops_per_client);
  fc.broken_skip_flush = r.broken;
  if (r.plan.active()) fc.fault_plan = r.plan;
  const std::size_t limit =
      r.prefix_ops > 0 ? static_cast<std::size_t>(r.prefix_ops)
                       : ~std::size_t{0};
  const KvOutcome out = run_kv_case(fc, r.perturb, 1, limit);
  if (r.kind == "kv-violation" || r.kind == "kv-miss") {
    return out.violations > 0;
  }
  if (r.kind == "kv-oracle-divergence") {
    return out.divergences > 0 || out.atomicity > 0;
  }
  return !out.clean();
}

namespace {

/// Minimize + write the repro for one failing (case, schedule); `fails`
/// judges a truncated run.
Failure kv_failure(const KvCase& fc, std::uint64_t perturb,
                   const std::string& kind, const KvCampaignOptions& opt,
                   const std::function<bool(const KvOutcome&)>& fails) {
  const int k = minimize_prefix(
      static_cast<int>(fc.ops.size()), [&](int n) {
        return fails(
            run_kv_case(fc, perturb, 1, static_cast<std::size_t>(n)));
      });
  const KvOutcome rerun =
      run_kv_case(fc, perturb, 1, static_cast<std::size_t>(k));
  KvRepro rp;
  rp.seed = fc.seed;
  rp.perturb = perturb;
  rp.prefix_ops = k;
  rp.ops_per_client = fc.traffic.ops_per_client;
  rp.reduced = opt.reduced;
  rp.broken = fc.broken_skip_flush;
  rp.plan = fc.fault_plan;
  rp.kind = kind;
  Failure fl;
  fl.seed = fc.seed;
  fl.perturb = perturb;
  fl.kind = kind;
  fl.minimized_ops = k;
  fl.repro_path = write_kv_repro(rp, fc, rerun, opt.repro_dir);
  return fl;
}

}  // namespace

KvCampaignResult run_kv_campaign(const KvCampaignOptions& opt) {
  KvCampaignResult res;
  for (int c = 0; c < opt.cases; ++c) {
    const std::uint64_t seed = opt.base_seed + static_cast<std::uint64_t>(c);
    KvCase fc = make_kv_case(seed, opt.reduced);
    if (opt.net_faults) add_kv_net_faults(fc);
    ++res.cases_run;
    for (int s = 0; s < opt.schedules; ++s) {
      const std::uint64_t p = perturb_for(seed, s);
      const KvOutcome out = run_kv_case(fc, p);
      ++res.runs;
      res.total_ops += out.checker_ops;
      if (out.violations > 0) {
        res.failures.push_back(kv_failure(
            fc, p, "kv-violation", opt,
            [](const KvOutcome& o) { return o.violations > 0; }));
        break;
      }
      if (out.divergences > 0 || out.atomicity > 0) {
        res.failures.push_back(kv_failure(
            fc, p, "kv-oracle-divergence", opt, [](const KvOutcome& o) {
              return o.divergences > 0 || o.atomicity > 0;
            }));
        break;
      }
    }
    if (opt.verbose && (c + 1) % 50 == 0) {
      std::fprintf(stderr,
                   "kvfuzz: %d/%d cases, %d runs, %" PRIu64
                   " ops, %zu failure(s)\n",
                   c + 1, opt.cases, res.runs, res.total_ops,
                   res.failures.size());
    }
  }
  return res;
}

bool kv_proof(std::uint64_t base_seed, int schedules,
              const std::string& out_dir, bool verbose) {
  for (std::uint64_t seed = base_seed; seed < base_seed + 200; ++seed) {
    KvCase fc = make_kv_case(seed, /*reduced=*/true);
    // The bug needs contended writes: require some write traffic and at
    // least two clients hammering few keys.
    if (fc.traffic.read_pct > 80 || fc.nclients() < 2) continue;
    fc.broken_skip_flush = true;
    add_kv_proof_faults(fc);
    std::uint64_t bad_perturb = 0;
    bool caught = false;
    for (int s = 0; s < schedules; ++s) {
      const std::uint64_t p = perturb_for(seed, s);
      const KvOutcome out = run_kv_case(fc, p);
      if (out.violations > 0) {
        bad_perturb = p;
        caught = true;
        break;
      }
    }
    if (!caught) continue;
    if (verbose) {
      std::fprintf(stderr,
                   "kv_proof: planted bug caught at seed %" PRIu64 "\n",
                   seed);
    }
    // Minimize, write, re-parse, replay — the full repro pipeline must hold.
    const int k = minimize_prefix(
        static_cast<int>(fc.ops.size()), [&](int n) {
          return run_kv_case(fc, bad_perturb, 1,
                             static_cast<std::size_t>(n))
                     .violations > 0;
        });
    const KvOutcome rerun =
        run_kv_case(fc, bad_perturb, 1, static_cast<std::size_t>(k));
    if (rerun.violations == 0) return false;
    KvRepro rp;
    rp.seed = seed;
    rp.perturb = bad_perturb;
    rp.prefix_ops = k;
    rp.ops_per_client = fc.traffic.ops_per_client;
    rp.reduced = true;
    rp.broken = true;
    rp.plan = fc.fault_plan;
    rp.kind = "kv-violation";
    const std::string path = write_kv_repro(rp, fc, rerun, out_dir);
    if (path.empty()) return false;
    KvRepro parsed;
    if (!parse_kv_repro(path, parsed)) return false;
    if (!replay_kv(parsed)) return false;
    if (verbose) {
      std::fprintf(stderr, "kv_proof: minimized to %d ops, repro %s\n", k,
                   path.c_str());
    }
    return true;
  }
  return false;
}

}  // namespace casper::check
