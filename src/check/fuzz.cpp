#include "check/fuzz.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "mpi/datatype.hpp"
#include "mpi/runtime.hpp"
#include "obs/record.hpp"
#include "net/profile.hpp"
#include "sim/rng.hpp"

namespace casper::check {

using mpi::AccOp;
using mpi::Datatype;
using mpi::Dt;
using mpi::OpKind;

namespace {

const char* dt_name(Dt d) {
  switch (d) {
    case Dt::Byte: return "byte";
    case Dt::Int: return "int";
    case Dt::Double: return "double";
  }
  return "?";
}

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::Put: return "put";
    case OpKind::Get: return "get";
    case OpKind::Acc: return "acc";
    case OpKind::GetAcc: return "getacc";
    case OpKind::Fao: return "fao";
    case OpKind::Cas: return "cas";
    default: return "?";
  }
}

const char* aop_name(AccOp a) {
  switch (a) {
    case AccOp::Replace: return "replace";
    case AccOp::Sum: return "sum";
    case AccOp::Min: return "min";
    case AccOp::Max: return "max";
    case AccOp::NoOp: return "noop";
  }
  return "?";
}

std::uint64_t fnv1a(const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fill `n` basic elements of type `base` at `dst` with val, val+1, ...
void fill_elems(std::byte* dst, int n, Dt base, std::int64_t val) {
  for (int j = 0; j < n; ++j) {
    const std::int64_t v = val + j;
    switch (base) {
      case Dt::Byte: {
        dst[j] = static_cast<std::byte>(v & 0xff);
        break;
      }
      case Dt::Int: {
        const std::int32_t x = static_cast<std::int32_t>(v);
        std::memcpy(dst + 4 * j, &x, 4);
        break;
      }
      case Dt::Double: {
        const double x = static_cast<double>(v);
        std::memcpy(dst + 8 * j, &x, 8);
        break;
      }
    }
  }
}

/// Per-origin PUT datatype: fixed per origin so repeated puts to the same
/// slot bytes always use the same element layout.
Dt put_dt_of(int origin) {
  switch (origin % 3) {
    case 0: return Dt::Double;
    case 1: return Dt::Int;
    default: return Dt::Byte;
  }
}

/// Issues one op. Origin and result buffers are parked in `keep`: MPI origin
/// buffers must stay valid until the epoch's completing synchronization (the
/// runtime unpacks GET/GET_ACC/FAO/CAS results into them at completion time).
void issue_one(mpi::Env& env, const OpRec& op, const mpi::Win& win,
               std::vector<std::vector<std::byte>>& keep) {
  const std::size_t db = mpi::data_bytes(op.count, op.tdt);
  const int oc = op.count * op.tdt.blocklen;
  const Datatype odt = mpi::contig(op.tdt.base);
  keep.emplace_back(db);
  std::byte* buf = keep.back().data();
  keep.emplace_back(db);
  std::byte* res = keep.back().data();
  fill_elems(buf, oc, op.tdt.base, op.val);
  if (op.local) {
    // Racy mode: a direct load/store on the origin's own exposed segment,
    // observed by the race analyzer via the Env local-access hooks.
    if (op.kind == OpKind::Put) {
      env.local_store(buf, op.disp, db, win);
    } else {
      env.local_load(res, op.disp, db, win);
    }
    return;
  }
  switch (op.kind) {
    case OpKind::Put:
      env.put(buf, oc, odt, op.target, op.disp, op.count, op.tdt, win);
      break;
    case OpKind::Get:
      env.get(res, oc, odt, op.target, op.disp, op.count, op.tdt, win);
      break;
    case OpKind::Acc:
      env.accumulate(buf, oc, odt, op.target, op.disp, op.count, op.tdt,
                     op.aop, win);
      break;
    case OpKind::GetAcc:
      env.get_accumulate(buf, oc, odt, res, oc, odt, op.target, op.disp,
                         op.count, op.tdt, op.aop, win);
      break;
    case OpKind::Fao:
      env.fetch_and_op(buf, res, op.tdt.base, op.target, op.disp, op.aop,
                       win);
      break;
    case OpKind::Cas: {
      const std::size_t es = op.tdt.elem_size();
      keep.emplace_back(2 * es);
      std::byte* cd = keep.back().data();
      fill_elems(cd, 1, op.tdt.base, op.val & 0xff);
      fill_elems(cd + es, 1, op.tdt.base, (op.val >> 8) & 0xff);
      env.compare_and_swap(cd, cd + es, res, op.tdt.base, op.target, op.disp,
                           win);
      break;
    }
    default:
      break;
  }
}

void fuzz_body(mpi::Env& env, const FuzzCase& fc, RunOutcome& out) {
  mpi::Comm w = env.world();
  const int me = env.rank(w);
  const int p = env.size(w);
  mpi::Info info;
  if (fc.hint_exact) info.set(core::kEpochsUsedKey, to_string(fc.epoch));
  void* base = nullptr;
  mpi::Win win = env.win_allocate(fc.seg_bytes(), 1, info, w, &base);

  std::vector<int> everyone(static_cast<std::size_t>(p));
  std::iota(everyone.begin(), everyone.end(), 0);
  mpi::Group g(everyone);

  // Origin/result scratch buffers. MPI origin buffers must stay valid until
  // the epoch's completing synchronization, and under the fence style a
  // middle round is only completed by the NEXT round's fence call — so the
  // buffers live for the whole body, released after the final sync.
  std::vector<std::vector<std::byte>> keep;

  for (int r = 0; r < fc.rounds; ++r) {
    std::vector<const OpRec*> mine;
    for (const auto& op : fc.ops) {
      if (op.round == r && op.origin == me) mine.push_back(&op);
    }

    switch (fc.epoch) {
      case EpochStyle::Fence:
        // First fence opens with NOPRECEDE; middle fences close the previous
        // round and open the next in one call.
        env.win_fence(r == 0 ? mpi::kModeNoPrecede : 0u, win);
        break;
      case EpochStyle::Pscw: {
        const unsigned a = fc.pscw_nocheck ? mpi::kModeNoCheck : 0u;
        env.win_post(g, a, win);
        // NOCHECK is only legal when the post→start ordering is guaranteed
        // by other means; a barrier provides it.
        if (fc.pscw_nocheck) env.barrier(w);
        env.win_start(g, a, win);
        break;
      }
      case EpochStyle::Lock:
        for (int t = 0; t < p; ++t) {
          env.win_lock(mpi::LockType::Shared, t, 0, win);
        }
        break;
      case EpochStyle::LockAll:
        env.win_lock_all(0, win);
        break;
    }

    const std::size_t half = mine.size() / 2;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (fc.mid_flush && i == half && i != 0) {
        // Completes everything issued so far and (under a lock) opens the
        // static-binding-free interval dynamic binding needs (III.B.3).
        env.win_flush_all(win);
      }
      issue_one(env, *mine[i], win, keep);
    }

    switch (fc.epoch) {
      case EpochStyle::Fence:
        if (r == fc.rounds - 1) env.win_fence(mpi::kModeNoSucceed, win);
        break;
      case EpochStyle::Pscw:
        env.win_complete(win);
        env.win_wait(win);
        break;
      case EpochStyle::Lock:
        for (int t = 0; t < p; ++t) env.win_unlock(t, win);
        break;
      case EpochStyle::LockAll:
        env.win_unlock_all(win);
        break;
    }
  }

  env.barrier(w);
  out.content_hash[static_cast<std::size_t>(me)] =
      fnv1a(base, fc.seg_bytes());
  out.world_of[static_cast<std::size_t>(me)] = env.world_rank();
  env.win_free(win);
}

}  // namespace

FuzzCase make_case(std::uint64_t seed, bool reduced) {
  sim::Rng rng(seed, 0xfa22);
  FuzzCase fc;
  fc.seed = seed;
  fc.nodes = 1 + static_cast<int>(rng.next_below(2));
  fc.users_per_node = 1 + static_cast<int>(rng.next_below(3));
  if (fc.nodes * fc.users_per_node < 2) fc.users_per_node = 2;
  fc.ghosts = 1 + static_cast<int>(rng.next_below(2));
  fc.binding =
      rng.next_below(2) ? core::Binding::Segment : core::Binding::Rank;
  switch (rng.next_below(4)) {
    case 0: fc.dynamic = core::DynamicLb::None; break;
    case 1: fc.dynamic = core::DynamicLb::Random; break;
    case 2: fc.dynamic = core::DynamicLb::OpCounting; break;
    default: fc.dynamic = core::DynamicLb::ByteCounting; break;
  }
  fc.epoch = static_cast<EpochStyle>(rng.next_below(4));
  fc.rounds = 1 + static_cast<int>(rng.next_below(2));
  fc.mid_flush = (fc.epoch == EpochStyle::Lock ||
                  fc.epoch == EpochStyle::LockAll) &&
                 rng.next_below(2) != 0;
  fc.pscw_nocheck = fc.epoch == EpochStyle::Pscw && rng.next_below(4) == 0;
  fc.hint_exact = rng.next_below(2) != 0;
  fc.acc_dt = rng.next_below(2) ? Dt::Double : Dt::Int;
  switch (rng.next_below(3)) {
    case 0: fc.acc_op = AccOp::Sum; break;
    case 1: fc.acc_op = AccOp::Min; break;
    default: fc.acc_op = AccOp::Max; break;
  }
  fc.order_sensitive = rng.next_below(4) == 0;
  fc.slot_bytes = reduced ? 64 : 128;
  // Separate stream: toggling the controller into the config fuzz space must
  // not shift the 0xfa22 draws that shape the established seed corpus.
  fc.adaptive = sim::Rng(seed, 0xada7).next_below(4) == 0;

  const int nu = fc.nusers();
  const int per_origin =
      (reduced ? 2 : 4) + static_cast<int>(rng.next_below(reduced ? 4 : 6));
  const std::size_t acc_base =
      static_cast<std::size_t>(nu) * fc.slot_bytes;
  const std::size_t ro_base = acc_base + fc.slot_bytes;
  const std::size_t acc_es = dt_size(fc.acc_dt);
  const std::size_t acc_cap = fc.slot_bytes / acc_es;

  // Place an accumulate-class op into the shared acc region; returns it
  // fully resolved except kind (caller picks Acc / GetAcc / Fao / Cas).
  auto acc_shape = [&](OpRec& op) {
    bool strided = rng.next_below(4) == 0;
    int count = 1 + static_cast<int>(rng.next_below(4));
    std::size_t span_e =
        strided ? 2 * static_cast<std::size_t>(count) - 1
                : static_cast<std::size_t>(count);
    if (span_e > acc_cap) {
      strided = false;
      count = 1;
      span_e = 1;
    }
    const std::size_t idx = rng.next_below(acc_cap - span_e + 1);
    op.tdt = strided ? mpi::vector_of(fc.acc_dt, 1, 2)
                     : mpi::contig(fc.acc_dt);
    op.count = count;
    op.disp = acc_base + idx * acc_es;
    op.aop = fc.acc_op;
    switch (fc.acc_op) {
      case AccOp::Sum:
        op.val = 1 + static_cast<std::int64_t>(rng.next_below(4));
        break;
      case AccOp::Min:
        op.val = -1 - static_cast<std::int64_t>(rng.next_below(100));
        break;
      default:
        op.val = 1 + static_cast<std::int64_t>(rng.next_below(100));
        break;
    }
  };

  for (int r = 0; r < fc.rounds; ++r) {
    // Per-(origin, target) bump cursor keeps one round's puts from one
    // origin byte-disjoint (conflicting same-epoch puts are an MPI usage
    // error and would be order-sensitive anyway). Rounds are separated by a
    // completing sync, so the cursor resets.
    std::vector<std::size_t> cursor(
        static_cast<std::size_t>(nu) * static_cast<std::size_t>(nu), 0);
    for (int o = 0; o < nu; ++o) {
      for (int i = 0; i < per_origin; ++i) {
        OpRec op;
        op.origin = o;
        op.round = r;
        op.target = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(nu)));
        std::uint64_t roll = rng.next_below(100);
        if (fc.order_sensitive && rng.next_below(5) == 0) {
          // Order-sensitive spice: CAS or ACC-Replace on the acc region.
          acc_shape(op);
          if (rng.next_below(2) != 0) {
            op.kind = OpKind::Cas;
            op.count = 1;
            op.tdt = mpi::contig(fc.acc_dt);
            op.disp = acc_base;
            op.val = static_cast<std::int64_t>(rng.next_below(1 << 16));
          } else {
            op.kind = OpKind::Acc;
            op.aop = AccOp::Replace;
            op.val = static_cast<std::int64_t>(rng.next_below(256));
          }
          fc.ops.push_back(op);
          continue;
        }
        if (roll < 40) {
          // PUT into my exclusive slot on the target.
          const Dt pdt = put_dt_of(o);
          const std::size_t es = dt_size(pdt);
          const bool strided = rng.next_below(4) == 0;
          const int count = 1 + static_cast<int>(rng.next_below(4));
          const Datatype tdt =
              strided ? mpi::vector_of(pdt, 1, 2) : mpi::contig(pdt);
          const std::size_t span = mpi::span_bytes(count, tdt);
          const std::size_t span8 = (span + 7) & ~std::size_t{7};
          std::size_t& cur = cursor[static_cast<std::size_t>(o) *
                                        static_cast<std::size_t>(nu) +
                                    static_cast<std::size_t>(op.target)];
          if (cur + span8 <= fc.slot_bytes) {
            op.kind = OpKind::Put;
            op.tdt = tdt;
            op.count = count;
            op.disp = static_cast<std::size_t>(o) * fc.slot_bytes + cur;
            op.val = 16 * (o + 1) +
                     static_cast<std::int64_t>(rng.next_below(16));
            cur += span8;
            (void)es;
            fc.ops.push_back(op);
            continue;
          }
          roll = 50 + rng.next_below(50);  // slot full: fall through
        }
        if (roll < 55) {
          // GET from the never-written read-only slot.
          const bool strided = rng.next_below(4) == 0;
          const int count = 1 + static_cast<int>(rng.next_below(4));
          const Datatype tdt = strided ? mpi::vector_of(Dt::Double, 1, 2)
                                       : mpi::contig(Dt::Double);
          const std::size_t cap = fc.slot_bytes / 8;
          const std::size_t span_e =
              strided ? 2 * static_cast<std::size_t>(count) - 1
                      : static_cast<std::size_t>(count);
          const std::size_t idx =
              span_e >= cap ? 0 : rng.next_below(cap - span_e + 1);
          op.kind = OpKind::Get;
          op.tdt = tdt;
          op.count = span_e >= cap ? 1 : count;
          op.disp = ro_base + idx * 8;
          fc.ops.push_back(op);
          continue;
        }
        if (roll < 80) {
          acc_shape(op);
          op.kind = OpKind::Acc;
        } else if (roll < 90) {
          acc_shape(op);
          op.kind = OpKind::GetAcc;
        } else {
          acc_shape(op);
          op.kind = OpKind::Fao;
          op.count = 1;
          op.tdt = mpi::contig(fc.acc_dt);
        }
        fc.ops.push_back(op);
      }
    }
  }
  return fc;
}

FuzzCase make_racy_case(std::uint64_t seed, bool reduced, int races) {
  FuzzCase fc = make_case(seed, reduced);
  // Racing writes make final contents schedule-dependent; skip the
  // cross-schedule content comparison, keep everything else.
  fc.order_sensitive = true;
  sim::Rng rng(seed, 0xace5);
  const int nu = fc.nusers();
  for (int i = 0; i < races; ++i) {
    FuzzCase::PlantedRace pr;
    pr.target = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(nu)));
    const int round = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(fc.rounds)));
    // Variant 2 (local-store vs PUT) stores from the target rank itself, so
    // the remote writer must be someone else.
    const int variant = static_cast<int>(rng.next_below(3));
    int o1 = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nu)));
    if (variant == 2 && o1 == pr.target) o1 = (o1 + 1) % nu;
    int o2 = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nu - 1)));
    if (o2 >= o1) ++o2;
    // 8-aligned overlap range inside o1's put slot on the target. It may
    // also overlap o1's organic puts — extra true conflicts, all carrying
    // the same origin pair, so coverage checks are unaffected.
    const std::size_t cap8 = fc.slot_bytes / 8;
    const std::size_t len8 = 1 + rng.next_below(std::min<std::size_t>(cap8, 3));
    const std::size_t off8 = rng.next_below(cap8 - len8 + 1);
    pr.lo = static_cast<std::size_t>(o1) * fc.slot_bytes + off8 * 8;
    pr.hi = pr.lo + len8 * 8;

    OpRec a;
    a.round = round;
    a.target = pr.target;
    a.disp = pr.lo;
    a.count = static_cast<int>(pr.hi - pr.lo);
    a.tdt = mpi::contig(Dt::Byte);
    a.val = 0x40 + i;
    OpRec b = a;
    b.val = 0x80 + i;
    switch (variant) {
      case 0:  // PUT vs PUT
        a.kind = OpKind::Put;
        a.origin = o1;
        b.kind = OpKind::Put;
        b.origin = o2;
        break;
      case 1:  // PUT vs GET
        a.kind = OpKind::Put;
        a.origin = o1;
        b.kind = OpKind::Get;
        b.origin = o2;
        break;
      default:  // local store on the exposed segment vs a remote PUT
        a.kind = OpKind::Put;
        a.origin = pr.target;
        a.local = true;
        b.kind = OpKind::Put;
        b.origin = o1;
        break;
    }
    pr.origin_a = a.origin;
    pr.origin_b = b.origin;
    pr.op_a = static_cast<int>(fc.ops.size());
    fc.ops.push_back(a);
    pr.op_b = static_cast<int>(fc.ops.size());
    fc.ops.push_back(b);
    fc.planted.push_back(pr);
  }
  return fc;
}

bool planted_flagged(const RunOutcome& out, const FuzzCase::PlantedRace& pr) {
  const auto world = [&](int user_rank) {
    const auto i = static_cast<std::size_t>(user_rank);
    return i < out.world_of.size() ? out.world_of[i] : user_rank;
  };
  const int wa = std::min(world(pr.origin_a), world(pr.origin_b));
  const int wb = std::max(world(pr.origin_a), world(pr.origin_b));
  for (const RaceAnalyzer::Group& g : out.race_groups) {
    if (g.target != pr.target || g.origin_a != wa || g.origin_b != wb)
      continue;
    for (const auto& [lo, hi] : g.ranges) {
      if (lo < pr.hi && hi > pr.lo) return true;
    }
  }
  return false;
}

void add_net_faults(FuzzCase& fc) {
  sim::Rng rng(fc.seed, 0xfa0175);
  fault::FaultPlan& fp = fc.fault_plan;
  fp.seed = fc.seed ^ 0x9e3779b97f4a7c15ULL;
  fault::NetFaults& n = fp.net;
  // Always at least one fault class; higher rolls stack several so the
  // retry/dedup/reorder machinery gets exercised together.
  const std::uint64_t mix = rng.next_below(8);
  if (mix == 0 || (mix & 1) != 0) {
    n.drop_p = 0.02 + 0.18 * rng.next_double();
  }
  if (mix == 1 || (mix & 2) != 0) {
    n.dup_p = 0.02 + 0.18 * rng.next_double();
  }
  if (mix == 2 || (mix & 4) != 0) {
    // Delay doubles as reorder: a jitter window wider than the inter-op
    // issue gap makes later sends overtake earlier ones.
    n.delay_p = 0.05 + 0.35 * rng.next_double();
    n.delay_min = sim::us(1);
    n.delay_max = sim::us(5 + rng.next_below(60));
  }
  if (rng.next_below(3) == 0) {
    n.ack_drop_p = 0.02 + 0.13 * rng.next_double();
  }
}

RunOutcome run_case(const FuzzCase& fc, std::uint64_t perturb_seed,
                    bool inject_flip_fault) {
  mpi::RunConfig rc;
  rc.machine.profile = net::cray_xc30_regular();
  rc.machine.topo.nodes = fc.nodes;
  rc.machine.topo.cores_per_node = fc.users_per_node + fc.ghosts;
  rc.seed = fc.seed;
  rc.perturb_seed = perturb_seed;
  if (fc.fault_plan.active()) rc.fault = &fc.fault_plan;
  core::Config cc;
  cc.ghosts_per_node = fc.ghosts;
  cc.binding = fc.binding;
  cc.dynamic = fc.dynamic;
  cc.adaptive.enabled = fc.adaptive;
  cc.fault.flip_segment_binding = inject_flip_fault;

  // CASPER_TRACE=<anything but 0/off> attaches a recorder so repro files can
  // embed the tail of the virtual-time trace (see scripts/check.sh gate 4).
  const char* trace_env = std::getenv("CASPER_TRACE");
  const bool want_trace = obs::kTraceCompiled && trace_env != nullptr &&
                          std::strcmp(trace_env, "0") != 0 &&
                          std::strcmp(trace_env, "off") != 0;
  obs::Recorder rec;
  if (want_trace) rc.recorder = &rec;

  RunOutcome out;
  out.content_hash.assign(static_cast<std::size_t>(fc.nusers()), 0);
  out.world_of.assign(static_cast<std::size_t>(fc.nusers()), -1);
  ShadowOracle oracle;
  RaceAnalyzer race;
  if (want_trace) race.set_recorder(&rec);
  mpi::Runtime rt(
      rc, [&fc, &out](mpi::Env& env) { fuzz_body(env, fc, out); },
      core::layer(cc));
  rt.add_observer(&oracle);
  rt.add_observer(&race);
  rt.engine().set_schedule_trace(&out.trace);
  rt.run();
  out.atomicity_violations = rt.stats().get("atomicity_violations");
  out.divergences = oracle.divergences();
  out.commits = oracle.commits_seen();
  out.race_conflict_events = race.conflict_events();
  out.race_conflict_bytes = race.conflict_bytes();
  out.race_groups = race.groups();
  for (const RaceConflict& c : race.conflicts()) {
    out.race_diags.push_back(c.diag);
    if (out.race_diags.size() >= 8) break;
  }
  if (fc.fault_plan.active()) {
    for (const auto& [key, val] : rt.stats().all()) {
      if (key.rfind("fault.", 0) == 0 || key.rfind("recovery.", 0) == 0) {
        out.fault_stats[key] = val;
      }
    }
  }
  if (want_trace) out.trace_tail = rec.trace().tail_text(32);
  return out;
}

std::uint64_t perturb_for(std::uint64_t seed, int s) {
  if (s == 0) return 0;  // schedule 0 is always the classic order
  sim::Rng rng(seed, 0x5eed + static_cast<std::uint64_t>(s));
  const std::uint64_t v = rng.next_u64();
  return v == 0 ? 1 : v;
}

int minimize_prefix(int total, const std::function<bool(int)>& fails) {
  int lo = 1, hi = total;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // The bisection assumes failing prefixes stay failing when extended; the
  // final check catches the (rare) non-monotone case.
  return fails(lo) ? lo : total;
}

std::string write_repro(const Repro& r, const FuzzCase& fc,
                        const RunOutcome& out, const std::string& dir) {
  char name[128];
  std::snprintf(name, sizeof(name),
                "casper_repro_s%" PRIu64 "_p%" PRIu64 ".txt", r.seed,
                r.perturb);
  const std::string path = dir.empty() ? name : dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  std::fprintf(f, "# casper conformance repro v1\n");
  std::fprintf(f, "# replay: fuzz_conformance --replay %s\n", path.c_str());
  std::fprintf(f, "kind %s\n", r.kind.c_str());
  std::fprintf(f, "seed %" PRIu64 "\n", r.seed);
  std::fprintf(f, "perturb %" PRIu64 "\n", r.perturb);
  std::fprintf(f, "base_perturb %" PRIu64 "\n", r.base_perturb);
  std::fprintf(f, "prefix %d\n", r.prefix_ops);
  std::fprintf(f, "reduced %d\n", r.reduced ? 1 : 0);
  std::fprintf(f, "fault %d\n", r.fault ? 1 : 0);
  if (r.races > 0) std::fprintf(f, "races %d\n", r.races);
  if (r.plan.active()) {
    // Embed the triggering FaultPlan: replay must reproduce the exact
    // drop/dup/delay verdicts, so the plan travels with the repro instead
    // of being re-derived from conventions that may change.
    std::fprintf(f,
                 "netfault seed=%" PRIu64 " drop=%.17g dup=%.17g delay=%.17g "
                 "dmin=%" PRIu64 " dmax=%" PRIu64 " ackdrop=%.17g "
                 "rto=%" PRIu64 " maxretries=%d hb=%" PRIu64 "\n",
                 r.plan.seed, r.plan.net.drop_p, r.plan.net.dup_p,
                 r.plan.net.delay_p, r.plan.net.delay_min,
                 r.plan.net.delay_max, r.plan.net.ack_drop_p, r.plan.rto_base,
                 r.plan.max_retries, r.plan.heartbeat_period);
    for (const auto& k : r.plan.kills) {
      std::fprintf(f, "kill rank=%d at=%" PRIu64 "\n", k.world_rank, k.at);
    }
    for (const auto& s : r.plan.stalls) {
      std::fprintf(f, "stall rank=%d at=%" PRIu64 " dur=%" PRIu64 "\n",
                   s.world_rank, s.at, s.duration);
    }
  }
  std::fprintf(
      f,
      "case nodes=%d users_per_node=%d ghosts=%d binding=%s dynamic=%d "
      "epoch=%s rounds=%d mid_flush=%d pscw_nocheck=%d hint_exact=%d "
      "acc_dt=%s acc_op=%s order_sensitive=%d slot_bytes=%zu adaptive=%d\n",
      fc.nodes, fc.users_per_node, fc.ghosts,
      fc.binding == core::Binding::Segment ? "segment" : "rank",
      static_cast<int>(fc.dynamic), to_string(fc.epoch), fc.rounds,
      fc.mid_flush ? 1 : 0, fc.pscw_nocheck ? 1 : 0, fc.hint_exact ? 1 : 0,
      dt_name(fc.acc_dt), aop_name(fc.acc_op), fc.order_sensitive ? 1 : 0,
      fc.slot_bytes, fc.adaptive ? 1 : 0);
  const int nshow = std::min<int>(r.prefix_ops,
                                  static_cast<int>(fc.ops.size()));
  for (int i = 0; i < nshow; ++i) {
    const OpRec& op = fc.ops[static_cast<std::size_t>(i)];
    std::fprintf(f,
                 "op %d kind=%s aop=%s origin=%d target=%d round=%d "
                 "disp=%zu count=%d dt=%s blocklen=%d stride=%d val=%lld "
                 "local=%d\n",
                 i, kind_name(op.kind), aop_name(op.aop), op.origin,
                 op.target, op.round, op.disp, op.count, dt_name(op.tdt.base),
                 op.tdt.blocklen, op.tdt.stride,
                 static_cast<long long>(op.val), op.local ? 1 : 0);
  }
  for (const FuzzCase::PlantedRace& pr : fc.planted) {
    std::fprintf(f,
                 "planted origin_a=%d origin_b=%d target=%d lo=%zu hi=%zu "
                 "op_a=%d op_b=%d\n",
                 pr.origin_a, pr.origin_b, pr.target, pr.lo, pr.hi, pr.op_a,
                 pr.op_b);
  }
  for (const std::string& d : out.race_diags) {
    std::fprintf(f, "race %s\n", d.c_str());
  }
  for (const Divergence& d : out.divergences) {
    std::fprintf(f,
                 "divergence t=%.3fus where=\"%s\" win=%d span_off=%zu "
                 "real=0x%02x shadow=0x%02x nbytes=%zu\n",
                 sim::to_us(d.t), d.where.c_str(), d.win_id, d.span_off,
                 d.real, d.shadow, d.nbytes);
  }
  std::fprintf(f, "violations %" PRIu64 "\n", out.atomicity_violations);
  // Schedule-trace prefix: enough to show WHERE the failing interleaving
  // departs from the classic one.
  const std::size_t ntr = std::min<std::size_t>(out.trace.size(), 64);
  std::fprintf(f, "sched");
  for (std::size_t i = 0; i < ntr; ++i) {
    std::fprintf(f, " %.3f:%d", sim::to_us(out.trace[i].t),
                 out.trace[i].rank);
  }
  std::fprintf(f, "\n");
  // Obs-trace tail (present when the run had CASPER_TRACE set): the last
  // virtual-time events before the failure, in golden-trace text form.
  for (const std::string& line : out.trace_tail) {
    std::fprintf(f, "trace %s\n", line.c_str());
  }
  std::fclose(f);
  return path;
}

bool parse_repro(const std::string& path, Repro& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[512];
  bool have_seed = false, have_kind = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char kind[64];
    int b = 0;
    if (std::sscanf(line, "kind %63s", kind) == 1) {
      out.kind = kind;
      have_kind = true;
    } else if (std::sscanf(line, "seed %" SCNu64, &out.seed) == 1) {
      have_seed = true;
    } else if (std::sscanf(line, "perturb %" SCNu64, &out.perturb) == 1) {
    } else if (std::sscanf(line, "base_perturb %" SCNu64,
                           &out.base_perturb) == 1) {
    } else if (std::sscanf(line, "prefix %d", &out.prefix_ops) == 1) {
    } else if (std::sscanf(line, "reduced %d", &b) == 1) {
      out.reduced = b != 0;
    } else if (std::sscanf(line, "fault %d", &b) == 1) {
      out.fault = b != 0;
    } else if (std::sscanf(line, "races %d", &out.races) == 1) {
    } else if (std::sscanf(line,
                           "netfault seed=%" SCNu64 " drop=%lg dup=%lg "
                           "delay=%lg dmin=%" SCNu64 " dmax=%" SCNu64
                           " ackdrop=%lg rto=%" SCNu64 " maxretries=%d "
                           "hb=%" SCNu64,
                           &out.plan.seed, &out.plan.net.drop_p,
                           &out.plan.net.dup_p, &out.plan.net.delay_p,
                           &out.plan.net.delay_min, &out.plan.net.delay_max,
                           &out.plan.net.ack_drop_p, &out.plan.rto_base,
                           &out.plan.max_retries,
                           &out.plan.heartbeat_period) == 10) {
    } else {
      fault::GhostKill k;
      fault::GhostStall s;
      if (std::sscanf(line, "kill rank=%d at=%" SCNu64, &k.world_rank,
                      &k.at) == 2) {
        out.plan.kills.push_back(k);
      } else if (std::sscanf(line, "stall rank=%d at=%" SCNu64
                                   " dur=%" SCNu64,
                             &s.world_rank, &s.at, &s.duration) == 3) {
        out.plan.stalls.push_back(s);
      }
    }
  }
  std::fclose(f);
  return have_seed && have_kind;
}

bool replay(const Repro& r) {
  FuzzCase fc = r.races > 0 ? make_racy_case(r.seed, r.reduced, r.races)
                            : make_case(r.seed, r.reduced);
  if (r.plan.active()) fc.fault_plan = r.plan;
  if (r.prefix_ops > 0 &&
      r.prefix_ops < static_cast<int>(fc.ops.size())) {
    fc.ops.resize(static_cast<std::size_t>(r.prefix_ops));
  }
  const RunOutcome out = run_case(fc, r.perturb, r.fault);
  if (r.kind == "schedule-divergence") {
    const RunOutcome base = run_case(fc, r.base_perturb, r.fault);
    return out.content_hash != base.content_hash;
  }
  if (r.kind == "race-conflict") return !out.races_clean();
  if (r.kind == "race-miss") {
    const int n = static_cast<int>(fc.ops.size());
    for (const FuzzCase::PlantedRace& pr : fc.planted) {
      if (pr.op_a < n && pr.op_b < n && !planted_flagged(out, pr))
        return true;
    }
    return false;
  }
  return !out.oracle_clean();
}

CampaignResult run_campaign(const CampaignOptions& opt) {
  CampaignResult res;
  const bool racy = opt.planted_races > 0;
  for (int c = 0; c < opt.cases; ++c) {
    const std::uint64_t seed = opt.base_seed + static_cast<std::uint64_t>(c);
    FuzzCase fc = racy ? make_racy_case(seed, opt.reduced, opt.planted_races)
                       : make_case(seed, opt.reduced);
    if (opt.force_adaptive) fc.adaptive = true;
    if (opt.net_faults) add_net_faults(fc);
    ++res.cases_run;

    std::vector<RunOutcome> outs;
    outs.reserve(static_cast<std::size_t>(opt.schedules));
    int bad_schedule = -1;
    for (int s = 0; s < opt.schedules; ++s) {
      outs.push_back(run_case(fc, perturb_for(seed, s)));
      ++res.runs;
      res.total_commits += outs.back().commits;
      // Racy mode: planted racing writes legitimately diverge the oracle
      // and the content hashes; only analyzer coverage is judged.
      if (!racy && !outs.back().oracle_clean() && bad_schedule < 0)
        bad_schedule = s;
    }

    if (racy) {
      // Positive tests: every planted pair must be flagged in EVERY
      // schedule (verdicts are schedule-invariant by design).
      int miss_schedule = -1;
      for (int s = 0; s < opt.schedules && miss_schedule < 0; ++s) {
        for (const FuzzCase::PlantedRace& pr : fc.planted) {
          if (!planted_flagged(outs[static_cast<std::size_t>(s)], pr)) {
            miss_schedule = s;
            break;
          }
        }
      }
      if (miss_schedule >= 0) {
        const std::uint64_t p = perturb_for(seed, miss_schedule);
        const auto misses = [&](const FuzzCase& t, const RunOutcome& o) {
          const int n = static_cast<int>(t.ops.size());
          for (const FuzzCase::PlantedRace& pr : t.planted) {
            if (pr.op_a < n && pr.op_b < n && !planted_flagged(o, pr))
              return true;
          }
          return false;
        };
        const int k = minimize_prefix(
            static_cast<int>(fc.ops.size()), [&](int n) {
              FuzzCase t = fc;
              t.ops.resize(static_cast<std::size_t>(n));
              return misses(t, run_case(t, p));
            });
        FuzzCase t = fc;
        t.ops.resize(static_cast<std::size_t>(k));
        const RunOutcome rerun = run_case(t, p);
        Repro rp;
        rp.seed = seed;
        rp.perturb = p;
        rp.prefix_ops = k;
        rp.reduced = opt.reduced;
        rp.plan = fc.fault_plan;
        rp.races = opt.planted_races;
        rp.kind = "race-miss";
        Failure fl;
        fl.seed = seed;
        fl.perturb = p;
        fl.kind = rp.kind;
        fl.minimized_ops = k;
        fl.repro_path = write_repro(rp, fc, rerun, opt.repro_dir);
        res.failures.push_back(std::move(fl));
      }
      if (opt.verbose && (c + 1) % 50 == 0) {
        std::fprintf(stderr, "fuzz: %d/%d racy cases, %d runs, %zu miss(es)\n",
                     c + 1, opt.cases, res.runs, res.failures.size());
      }
      continue;
    }

    if (bad_schedule >= 0) {
      const std::uint64_t p = perturb_for(seed, bad_schedule);
      const int k = minimize_prefix(
          static_cast<int>(fc.ops.size()), [&](int n) {
            FuzzCase t = fc;
            t.ops.resize(static_cast<std::size_t>(n));
            return !run_case(t, p).oracle_clean();
          });
      FuzzCase t = fc;
      t.ops.resize(static_cast<std::size_t>(k));
      const RunOutcome rerun = run_case(t, p);
      Repro rp;
      rp.seed = seed;
      rp.perturb = p;
      rp.prefix_ops = k;
      rp.reduced = opt.reduced;
      rp.plan = fc.fault_plan;
      rp.kind = "oracle-divergence";
      Failure fl;
      fl.seed = seed;
      fl.perturb = p;
      fl.kind = rp.kind;
      fl.minimized_ops = k;
      fl.repro_path = write_repro(rp, fc, rerun, opt.repro_dir);
      res.failures.push_back(std::move(fl));
      continue;
    }

    // Clean corpus = negative tests for the analyzer: the generator promises
    // every case race-free, so any conflict is a false positive.
    {
      int fp_schedule = -1;
      for (int s = 0; s < opt.schedules; ++s) {
        if (!outs[static_cast<std::size_t>(s)].races_clean()) {
          fp_schedule = s;
          break;
        }
      }
      if (fp_schedule >= 0) {
        const std::uint64_t p = perturb_for(seed, fp_schedule);
        const int k = minimize_prefix(
            static_cast<int>(fc.ops.size()), [&](int n) {
              FuzzCase t = fc;
              t.ops.resize(static_cast<std::size_t>(n));
              return !run_case(t, p).races_clean();
            });
        FuzzCase t = fc;
        t.ops.resize(static_cast<std::size_t>(k));
        const RunOutcome rerun = run_case(t, p);
        Repro rp;
        rp.seed = seed;
        rp.perturb = p;
        rp.prefix_ops = k;
        rp.reduced = opt.reduced;
        rp.plan = fc.fault_plan;
        rp.kind = "race-conflict";
        Failure fl;
        fl.seed = seed;
        fl.perturb = p;
        fl.kind = rp.kind;
        fl.minimized_ops = k;
        fl.repro_path = write_repro(rp, fc, rerun, opt.repro_dir);
        res.failures.push_back(std::move(fl));
        continue;
      }
    }

    if (!fc.order_sensitive) {
      for (int s = 1; s < opt.schedules; ++s) {
        if (outs[static_cast<std::size_t>(s)].content_hash ==
            outs[0].content_hash) {
          continue;
        }
        const std::uint64_t p = perturb_for(seed, s);
        const int k = minimize_prefix(
            static_cast<int>(fc.ops.size()), [&](int n) {
              FuzzCase t = fc;
              t.ops.resize(static_cast<std::size_t>(n));
              return run_case(t, p).content_hash !=
                     run_case(t, 0).content_hash;
            });
        FuzzCase t = fc;
        t.ops.resize(static_cast<std::size_t>(k));
        const RunOutcome rerun = run_case(t, p);
        Repro rp;
        rp.seed = seed;
        rp.perturb = p;
        rp.prefix_ops = k;
        rp.reduced = opt.reduced;
        rp.plan = fc.fault_plan;
        rp.kind = "schedule-divergence";
        Failure fl;
        fl.seed = seed;
        fl.perturb = p;
        fl.kind = rp.kind;
        fl.minimized_ops = k;
        fl.repro_path = write_repro(rp, fc, rerun, opt.repro_dir);
        res.failures.push_back(std::move(fl));
        break;
      }
    }

    if (opt.verbose && (c + 1) % 50 == 0) {
      std::fprintf(stderr, "fuzz: %d/%d cases, %d runs, %" PRIu64
                           " commits, %zu failure(s)\n",
                   c + 1, opt.cases, res.runs, res.total_commits,
                   res.failures.size());
    }
  }
  return res;
}

}  // namespace casper::check
