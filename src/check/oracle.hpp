// Shadow-memory oracle: a sequentially consistent reference copy of every
// simulated window, validated against real window bytes at synchronization
// points.
//
// Key design decision — the shadow is keyed by PHYSICAL ADDRESS, not by
// window. Casper deliberately aliases memory: its internal windows (the
// per-local-user overlapping windows, the fence/pscw/lockall window, and the
// node shared-memory windows) expose the very same node buffers as the user
// window. A per-window shadow would diverge from itself the moment an op
// arrives through a different alias. Address-keyed spans see one byte of
// simulated memory exactly once, whatever window name an op used to reach it.
//
// Soundness argument (why a mismatch is always a real bug, never a false
// positive): real target memory and the shadow are both mutated at the same
// simulated instant — the runtime's commit (write phase / self-op execution)
// calls the observer synchronously right after writing real bytes. Both
// copies therefore step through identical states UNLESS the runtime's commit
// was computed from a stale read: the software path reads target memory at
// processing START and commits the derived value at processing END, so a
// different entity committing in between makes the real write clobber that
// update while the shadow (which applies the operation to its CURRENT state)
// keeps it. That read-at-start/write-at-end overlap between different
// processing entities is precisely the atomicity/ordering hazard the paper's
// static binding exists to prevent (Section III.B) — i.e. the oracle
// diverges exactly when MPI semantics were violated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpi/observe.hpp"
#include "sim/time.hpp"

namespace casper::check {

/// One detected mismatch between real window memory and the shadow copy.
struct Divergence {
  sim::Time t = 0;          ///< virtual time of the validating sync
  std::string where;        ///< e.g. "flush_all by world rank 3"
  int win_id = -1;          ///< a window whose registration covers the byte
  std::uintptr_t addr = 0;  ///< absolute address of first differing byte
  std::size_t span_off = 0; ///< offset of that byte inside its span
  std::uint8_t real = 0;
  std::uint8_t shadow = 0;
  std::size_t nbytes = 0;   ///< total differing bytes in the span
};

class ShadowOracle final : public mpi::RmaObserver {
 public:
  // ---- mpi::RmaObserver ---------------------------------------------------
  void on_win_register(mpi::WinImpl& win) override;
  void on_win_free(mpi::WinImpl& win) override;
  void on_op_commit(const mpi::AmOp& op, sim::Time t, int entity) override;
  void on_sync(mpi::WinImpl& win, int world_rank, mpi::SyncKind kind,
               int target, sim::Time t) override;
  /// Local stores mutate real window bytes outside the commit stream: mirror
  /// them into the shadow at the same instant so validation stays coherent.
  void on_local_access(mpi::WinImpl& win, int comm_rank, std::size_t offset,
                       std::size_t len, bool is_store, sim::Time t) override;

  /// Compare every registered byte against its shadow; returns the number of
  /// NEW divergences found (also appended to divergences(), capped).
  std::size_t validate(sim::Time t, const std::string& where);

  const std::vector<Divergence>& divergences() const { return divs_; }
  bool clean() const { return divs_.empty(); }

  std::uint64_t commits_seen() const { return commits_; }
  std::uint64_t syncs_seen() const { return syncs_; }
  std::uint64_t validations() const { return validations_; }
  std::uint64_t bytes_tracked() const;

  /// Drop all spans and recorded divergences (reuse across runs).
  void reset();

 private:
  /// A coalesced range of simulated memory with its reference copy. Spans
  /// never overlap; registration merges intersecting/adjacent ranges.
  struct Span {
    std::uintptr_t lo = 0;
    std::vector<std::byte> shadow;
    int win_id = -1;  ///< most recent window registering any part of it
    std::uintptr_t hi() const { return lo + shadow.size(); }
  };

  /// Register [lo, hi): merge with intersecting/adjacent spans and re-copy
  /// the merged range from real memory (window creation is collective and
  /// quiescent, so real == the correct reference state here; this also
  /// handles heap-address reuse after a window free).
  void add_range(std::uintptr_t lo, std::uintptr_t hi, int win_id);

  /// Shadow storage for [addr, addr+len), or nullptr when the range is not
  /// fully inside one registered span.
  std::byte* shadow_at(std::uintptr_t addr, std::size_t len);

  std::map<std::uintptr_t, Span> spans_;  // keyed by Span::lo
  std::vector<Divergence> divs_;
  std::uint64_t commits_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t validations_ = 0;

  static constexpr std::size_t kMaxRecorded = 32;
};

}  // namespace casper::check
