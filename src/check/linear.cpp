#include "check/linear.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "obs/record.hpp"

namespace casper::check {

namespace {

using kv::KvEvent;

/// Sequential register semantics: can `e` fire when the key holds `v`?
/// Returns {legal, value afterwards}.
std::pair<bool, std::int64_t> apply(const KvEvent& e, std::int64_t v) {
  switch (e.kind) {
    case KvEvent::Kind::Get:
      return {e.result == v, v};
    case KvEvent::Kind::Put:
      if (e.ok) return {true, e.arg1};
      // Overflow: only a bucket with no slot for the key rejects a PUT, so
      // the key must be absent; the store is untouched.
      return {v == 0, v};
    case KvEvent::Kind::CasUpd: {
      const bool should_ok = v != 0 && v == e.arg1;
      if (e.result != v || e.ok != should_ok) return {false, v};
      return {true, e.ok ? e.arg2 : v};
    }
  }
  return {false, v};
}

const char* kind_name(KvEvent::Kind k) {
  switch (k) {
    case KvEvent::Kind::Get: return "GET";
    case KvEvent::Kind::Put: return "PUT";
    case KvEvent::Kind::CasUpd: return "CAS";
  }
  return "?";
}

std::string format_event(const KvEvent& e) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "  %s key=%llu arg1=%lld arg2=%lld result=%lld ok=%d "
                "client=%d cseq=%llu [%llu, %llu]",
                kind_name(e.kind), static_cast<unsigned long long>(e.key),
                static_cast<long long>(e.arg1),
                static_cast<long long>(e.arg2),
                static_cast<long long>(e.result), e.ok ? 1 : 0, e.client,
                static_cast<unsigned long long>(e.cseq),
                static_cast<unsigned long long>(e.inv),
                static_cast<unsigned long long>(e.resp));
  return buf;
}

/// Exact-equality memo key for a search state: first undone index, the done
/// bitmap of the 64 ops starting there, and the register value. States with
/// a done op >= f+64 are simply not memoized (rare: needs >64-deep overlap).
struct MemoKey {
  std::uint64_t f;
  std::uint64_t mask;
  std::int64_t value;
  bool operator==(const MemoKey&) const = default;
};

struct MemoHash {
  std::size_t operator()(const MemoKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w :
         {k.f, k.mask, static_cast<std::uint64_t>(k.value)}) {
      h = (h ^ w) * 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

enum class SearchResult { Ok, Violation, Budget };

constexpr std::uint64_t kStepBudget = 10'000'000;

/// Wing–Gong backtracking search for one key's history (sorted by inv).
SearchResult search(const std::vector<KvEvent>& ev) {
  const std::size_t n = ev.size();
  if (n == 0) return SearchResult::Ok;

  // Interval-order fast path: try the invocation-order linearization.
  {
    std::int64_t v = 0;
    bool ok = true;
    for (const KvEvent& e : ev) {
      const auto [legal, nv] = apply(e, v);
      if (!legal) {
        ok = false;
        break;
      }
      v = nv;
    }
    if (ok) return SearchResult::Ok;
  }

  std::vector<char> done(n, 0);
  std::size_t ndone = 0;
  std::int64_t value = 0;
  std::size_t first_undone = 0;

  // Minimal candidates at the current state: undone j (in inv order from the
  // first undone op) with inv_j <= min resp over undone i scanned before j.
  // Later undone ops have inv >= inv_j, hence resp >= inv_j, so the forward
  // scan with an evolving minimum is exact.
  const auto candidates = [&] {
    std::vector<int> c;
    sim::Time m = ~sim::Time{0};
    for (std::size_t j = first_undone; j < n; ++j) {
      if (done[j]) continue;
      if (ev[j].inv > m) break;
      c.push_back(static_cast<int>(j));
      m = std::min(m, ev[j].resp);
    }
    return c;
  };

  const auto memo_key = [&]() -> std::pair<bool, MemoKey> {
    for (std::size_t j = first_undone + 64; j < n; ++j) {
      if (done[j]) return {false, {}};
    }
    std::uint64_t mask = 0;
    for (std::size_t b = 0; b < 64 && first_undone + b < n; ++b) {
      if (done[first_undone + b]) mask |= std::uint64_t{1} << b;
    }
    return {true, {first_undone, mask, value}};
  };

  struct Frame {
    std::vector<int> cands;
    std::size_t next = 0;
    int chosen = -1;  ///< op applied by the parent to enter this state
    std::int64_t prev_value = 0;
  };

  std::unordered_set<MemoKey, MemoHash> dead;
  std::vector<Frame> stk;
  stk.push_back({candidates(), 0, -1, 0});
  std::uint64_t steps = 0;

  while (!stk.empty()) {
    if (++steps > kStepBudget) return SearchResult::Budget;
    Frame& fr = stk.back();
    if (fr.next < fr.cands.size()) {
      const int j = fr.cands[fr.next++];
      const auto [legal, nv] = apply(ev[static_cast<std::size_t>(j)], value);
      if (!legal) continue;
      done[static_cast<std::size_t>(j)] = 1;
      ++ndone;
      if (ndone == n) return SearchResult::Ok;
      Frame child;
      child.chosen = j;
      child.prev_value = value;
      value = nv;
      const std::size_t prev_first = first_undone;
      while (first_undone < n && done[first_undone]) ++first_undone;
      const auto [has_key, key] = memo_key();
      if (has_key && dead.contains(key)) {
        done[static_cast<std::size_t>(j)] = 0;
        --ndone;
        value = child.prev_value;
        first_undone = prev_first;
        continue;
      }
      child.cands = candidates();
      stk.push_back(std::move(child));
    } else {
      // Every child failed: this (done-set, value) state is dead.
      const auto [has_key, key] = memo_key();
      if (has_key) dead.insert(key);
      const int j = fr.chosen;
      const std::int64_t pv = fr.prev_value;
      stk.pop_back();
      if (j >= 0) {
        done[static_cast<std::size_t>(j)] = 0;
        --ndone;
        value = pv;
        first_undone =
            std::min(first_undone, static_cast<std::size_t>(j));
      }
    }
  }
  return SearchResult::Violation;
}

}  // namespace

void LinearChecker::record(const kv::KvEvent& e) {
  std::lock_guard<std::mutex> g(mu_);
  events_.push_back(e);
  sorted_ = false;
  checked_ = false;
}

std::size_t LinearChecker::ops_recorded() const {
  std::lock_guard<std::mutex> g(mu_);
  return events_.size();
}

void LinearChecker::canonicalize() {
  if (sorted_) return;
  std::sort(events_.begin(), events_.end(),
            [](const kv::KvEvent& a, const kv::KvEvent& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.inv != b.inv) return a.inv < b.inv;
              if (a.resp != b.resp) return a.resp < b.resp;
              if (a.client != b.client) return a.client < b.client;
              return a.cseq < b.cseq;
            });
  sorted_ = true;
}

const std::vector<LinearChecker::Violation>& LinearChecker::check() {
  std::lock_guard<std::mutex> g(mu_);
  if (checked_) return violations_;
  canonicalize();
  violations_.clear();
  std::size_t nkeys = 0;
  for (std::size_t lo = 0; lo < events_.size();) {
    std::size_t hi = lo;
    while (hi < events_.size() && events_[hi].key == events_[lo].key) ++hi;
    ++nkeys;
    const std::vector<kv::KvEvent> hist(events_.begin() + lo,
                                        events_.begin() + hi);
    const SearchResult r = search(hist);
    if (r != SearchResult::Ok) {
      Violation v;
      v.key = hist.front().key;
      v.diag = r == SearchResult::Budget
                   ? "linearizability search budget exhausted (treated as a "
                     "violation)\n"
                   : "no legal linearization exists for this key's history\n";
      const std::size_t show = std::min<std::size_t>(hist.size(), 16);
      for (std::size_t i = 0; i < show; ++i) {
        v.diag += format_event(hist[i]);
        v.diag += '\n';
      }
      if (show < hist.size()) {
        v.diag += "  ... (" + std::to_string(hist.size() - show) +
                  " more events)\n";
      }
      violations_.push_back(std::move(v));
    }
    lo = hi;
  }
  checked_ = true;
  if (obs::on(rec_)) {
    obs::Metrics& m = rec_->metrics();
    m.counter("linear.ops_checked") += events_.size();
    m.counter("linear.keys_checked") += nkeys;
    m.counter("linear.violations") += violations_.size();
  }
  return violations_;
}

std::uint64_t LinearChecker::history_hash() {
  std::lock_guard<std::mutex> g(mu_);
  canonicalize();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const kv::KvEvent& e : events_) {
    mix(e.key);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(e.arg1));
    mix(static_cast<std::uint64_t>(e.arg2));
    mix(static_cast<std::uint64_t>(e.result));
    mix(e.ok ? 1 : 0);
    mix(static_cast<std::uint64_t>(e.client));
    mix(e.cseq);
    mix(e.inv);
    mix(e.resp);
  }
  return h;
}

void LinearChecker::reset() {
  std::lock_guard<std::mutex> g(mu_);
  events_.clear();
  violations_.clear();
  sorted_ = false;
  checked_ = false;
  commits_.store(0, std::memory_order_relaxed);
  syncs_.store(0, std::memory_order_relaxed);
}

}  // namespace casper::check
