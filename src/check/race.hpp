// Online RMA race analyzer: epoch-scoped access-pattern conflict detection.
//
// The shadow oracle (check/oracle.hpp) validates VALUE outcomes at sync
// points; races that happen to land on benign values (overlapping PUTs of
// equal bytes, a load racing a PUT that wrote what was already there) slip
// through it. This analyzer checks the ACCESS PATTERN itself against the
// MPI-3 RMA consistency rules, in the PARCOACH rma_analyzer shape: per
// window and per target rank it keeps an interval tree of byte-range
// accesses tagged {origin, kind, epoch, virtual time, per-origin sequence},
// and flags overlapping accesses that are illegal within an epoch.
//
// Placement — why the recorder sees PRE-redirection accesses: operations are
// recorded from RmaObserver::on_op_issue, which the Env call surface reports
// in program order before the interception layer runs. Casper's ghost
// routing therefore cannot mask a race (two user ops serialized by one ghost
// are still a program-level race) and cannot fabricate one (split/redirected
// internal ops are never reported as user accesses). Local load/store
// accesses enter through Env::local_load/local_store the same way.
//
// Legality matrix for two overlapping accesses in concurrent epochs
// (read = GET / local load; acc = ACC / GET_ACC / FAO / CAS):
//
//                read        put       acc          local store
//   read         legal       race      race[1]      race[2]
//   put           —          race      race         race
//   acc           —           —        legal[3]     race
//   local store   —           —         —           legal[2]
//
//   [1] GET vs acc is a race (only accumulate-class ops are atomic w.r.t.
//       each other); GET_ACC's read side rides the acc-class atomicity.
//   [2] local accesses only exist on the segment owner, so store-vs-store is
//       same-origin program order (legal); load-vs-remote-write is a race.
//   [3] accumulate-class ops on the same basic datatype are element-wise
//       atomic in this simulator (and under MPI-3 same_op_no_op semantics),
//       so they stay legal regardless of op by default; RaceOptions::
//       strict_same_op additionally requires the same op, mirroring the
//       letter of the MPI-3 default. Different basic datatypes = race.
//
// Same-origin accesses are ordered (hence legal) when they sit in different
// epochs or on different sides of a flush; within one epoch and flush
// generation only acc-vs-acc (accumulate ordering), read-vs-read and
// local-vs-local pairs are ordered.
//
// Epoch concurrency is decided schedule-invariantly:
//   * fence and PSCW epochs are collective — two different origins' epochs
//     are THE SAME epoch iff they have the same per-origin generation
//     number, so verdicts cannot depend on which rank's fence returned
//     first;
//   * passive epochs (lock / lock_all) genuinely overlap in virtual time or
//     not — the predicate is strict interval overlap of [open, close), with
//     the exception that a per-target EXCLUSIVE lock epoch is serialized by
//     the target's lock manager against every other passive epoch on that
//     target (delayed acquisition makes call-time intervals overlap even
//     though the critical sections never do);
//   * same-origin accesses are concurrent only within one epoch + flush
//     generation.
// Detection is eager and symmetric: each pair is checked exactly once, when
// the later-arriving access is inserted (an epoch's concurrency relation to
// every earlier epoch is already determined at that moment), so the verdict
// set is independent of host arrival order — sharded runs (the analyzer is
// concurrent_safe) and perturbed fiber schedules produce the same groups.
//
// Gating: the observation sites fold away under -DCASPER_RACE=0 and cost one
// emptiness test when compiled in but unattached (mpi/observe.hpp); the
// analyzer itself is ordinary library code in casper_check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "mpi/observe.hpp"
#include "obs/record.hpp"
#include "sim/time.hpp"

namespace casper::check {

/// Access kinds the analyzer distinguishes (the RMA op kinds plus the two
/// local flavors).
enum class AccessKind : std::uint8_t {
  LocalLoad,
  LocalStore,
  Put,
  Get,
  Acc,
  GetAcc,
  Fao,
  Cas,
};

const char* to_string(AccessKind k);

constexpr bool access_is_read(AccessKind k) {
  return k == AccessKind::Get || k == AccessKind::LocalLoad;
}
constexpr bool access_is_acc(AccessKind k) {
  return k == AccessKind::Acc || k == AccessKind::GetAcc ||
         k == AccessKind::Fao || k == AccessKind::Cas;
}
constexpr bool access_is_local(AccessKind k) {
  return k == AccessKind::LocalLoad || k == AccessKind::LocalStore;
}

/// Epoch styles tracked per (window, origin).
enum class EpochStyle : std::uint8_t { Fence, Pscw, Lock, LockAll };

const char* to_string(EpochStyle s);

/// One recorded byte-range access (one contiguous block; strided datatypes
/// expand to one entry per block).
struct Access {
  std::size_t lo = 0;  ///< byte range within the target's segment
  std::size_t hi = 0;
  int origin = -1;          ///< origin world rank
  std::uint64_t seq = 0;    ///< per-(window, origin) program-order number
  AccessKind kind = AccessKind::Put;
  mpi::AccOp op = mpi::AccOp::Replace;
  mpi::Dt dt = mpi::Dt::Byte;
  std::uint64_t flush_gen = 0;  ///< per-(origin, target) flush generation
  int epoch = -1;               ///< index into the window's epoch table
  sim::Time t = 0;              ///< issue virtual time
};

/// Interval tree of accesses over one (window, target-rank) byte space: a
/// deterministic treap keyed by (lo, priority) and augmented with subtree
/// max-hi for overlap queries. Priorities are a pure hash of the entry, so
/// the tree shape depends only on the entry SET, never on insertion order.
class IntervalTree {
 public:
  void insert(const Access& a);
  /// Merge `a` into an existing entry with identical identity (origin,
  /// epoch, kind, op, dt, flush generation) whose range overlaps or is
  /// adjacent; keeps the earliest seq / time. Returns false (and does not
  /// insert) when no such entry exists.
  bool coalesce(const Access& a);
  /// Visit every entry overlapping [lo, hi).
  template <typename F>
  void query(std::size_t lo, std::size_t hi, F&& f) const {
    query_node(root_, lo, hi, f);
  }
  /// Drop every entry failing `keep`; used by the analyzer to bound memory
  /// once an epoch can no longer conflict with any future access.
  template <typename P>
  void prune(P&& keep) {
    std::vector<Access> live;
    live.reserve(nodes_.size());
    collect(root_, keep, live);
    clear();
    for (const Access& a : live) insert(a);
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear();

 private:
  struct Node {
    Access a;
    std::uint64_t prio = 0;
    std::size_t max_hi = 0;
    int l = -1;
    int r = -1;
  };

  static std::uint64_t priority(const Access& a);
  bool key_less(int n, std::size_t lo, std::uint64_t prio) const;
  void pull(int n);
  int insert_node(int t, int n);
  void split(int t, std::size_t lo, std::uint64_t prio, int& l, int& r);
  int erase_node(int t, std::size_t lo, std::uint64_t prio);
  int merge_nodes(int a, int b);
  template <typename F>
  void query_node(int n, std::size_t lo, std::size_t hi, F& f) const {
    if (n < 0) return;
    const Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.max_hi <= lo) return;
    query_node(nd.l, lo, hi, f);
    if (nd.a.lo < hi && nd.a.hi > lo) f(nd.a);
    if (nd.a.lo < hi) query_node(nd.r, lo, hi, f);
  }
  template <typename P>
  void collect(int n, P& keep, std::vector<Access>& out) const {
    if (n < 0) return;
    const Node& nd = nodes_[static_cast<std::size_t>(n)];
    collect(nd.l, keep, out);
    if (keep(nd.a)) out.push_back(nd.a);
    collect(nd.r, keep, out);
  }

  std::vector<Node> nodes_;
  std::vector<int> free_;
  int root_ = -1;
  std::size_t size_ = 0;
};

/// One side of a reported conflict, with its epoch context.
struct ConflictSide {
  Access acc;
  EpochStyle style = EpochStyle::Fence;
  std::uint64_t gen = 0;
  sim::Time epoch_open = 0;
};

/// One detected conflict event (diagnostic record; capped — the invariant
/// aggregate lives in the group view).
struct RaceConflict {
  int win_id = -1;
  int target = -1;      ///< comm rank within the window
  std::size_t lo = 0;   ///< overlapping byte range
  std::size_t hi = 0;
  ConflictSide a;       ///< retained earlier access
  ConflictSide b;       ///< arriving access that completed the pair
  sim::Time t_detect = 0;
  std::string diag;     ///< one-line human-readable description
  /// Last trace lines at detection (export_text form, like fuzzer repros);
  /// present only when a recorder with tracing is attached.
  std::vector<std::string> trace_tail;
};

struct RaceOptions {
  /// Require identical ops for overlapping accumulate-class accesses (the
  /// letter of MPI-3's default same_op_no_op). Off: same basic datatype is
  /// enough, matching the simulator's element-wise atomicity guarantee.
  bool strict_same_op = false;
  std::size_t max_recorded = 64;  ///< diagnostic record cap
  std::size_t tail_lines = 32;    ///< trace-tail length per diagnostic
  /// Rebuild a (window, target) tree once it holds this many entries,
  /// dropping entries whose epoch can no longer conflict with any future
  /// access. Detection-neutral; purely a memory bound.
  std::size_t prune_threshold = 4096;
};

class RaceAnalyzer final : public mpi::RmaObserver {
 public:
  explicit RaceAnalyzer(RaceOptions opt = {}) : opt_(opt) {}

  /// Attach an obs recorder: race.* counters, race.conflict trace instants
  /// and per-diagnostic trace tails. Optional; the analyzer works without.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

  // ---- mpi::RmaObserver ---------------------------------------------------
  void on_win_register(mpi::WinImpl& win) override;
  void on_win_free(mpi::WinImpl& win) override;
  void on_op_commit(const mpi::AmOp& op, sim::Time t, int entity) override {
    (void)op;
    (void)t;
    (void)entity;  // the analyzer works on issues, not commits
  }
  void on_op_issue(const mpi::AmOp& op, sim::Time t) override;
  void on_epoch_begin(mpi::WinImpl& win, int world_rank, mpi::EpochEv kind,
                      int target, sim::Time t) override;
  void on_local_access(mpi::WinImpl& win, int comm_rank, std::size_t offset,
                       std::size_t len, bool is_store, sim::Time t) override;
  void on_sync(mpi::WinImpl& win, int world_rank, mpi::SyncKind kind,
               int target, sim::Time t) override;
  /// Every callback takes the internal mutex: safe under sharded engines.
  bool concurrent_safe() const override { return true; }

  // ---- results ------------------------------------------------------------
  /// Normalized conflict group: every conflicting byte between one origin
  /// pair on one (window, target), as a sorted disjoint interval union.
  /// This view is invariant across fiber schedules and shard counts.
  struct Group {
    int win_id = -1;
    int target = -1;
    int origin_a = -1;  ///< origin_a <= origin_b (world ranks)
    int origin_b = -1;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
  };
  std::vector<Group> groups() const;
  /// True when the pair {origin_a, origin_b} has a conflicting byte
  /// intersecting [lo, hi) on (win_id, target). Order of origins irrelevant.
  bool flags(int win_id, int target, int origin_a, int origin_b,
             std::size_t lo, std::size_t hi) const;

  const std::vector<RaceConflict>& conflicts() const { return conflicts_; }
  bool clean() const { return conflict_events_ == 0; }
  /// Raw detection events (can exceed conflicts().size(); with coalescing the
  /// exact count may vary across schedules — use the group view or
  /// conflict_bytes() for invariant comparisons).
  std::uint64_t conflict_events() const { return conflict_events_; }
  std::uint64_t conflict_pairs() const;
  std::uint64_t conflict_bytes() const;
  std::uint64_t accesses_recorded() const { return accesses_; }
  std::uint64_t epochs_opened() const { return epochs_opened_; }
  /// Accesses that arrived with no open epoch (recorded nowhere).
  std::uint64_t unscoped_accesses() const { return unscoped_; }

  /// Drop all state for reuse across runs.
  void reset();

 private:
  static constexpr sim::Time kOpen = std::numeric_limits<sim::Time>::max();

  struct EpochRec {
    EpochStyle style = EpochStyle::Fence;
    bool exclusive = false;
    int target = -1;  ///< locked comm rank (Lock style only)
    std::uint64_t gen = 0;
    sim::Time open_t = 0;
    sim::Time close_t = kOpen;
    bool open() const { return close_t == kOpen; }
  };

  struct OriginState {
    int fence_epoch = -1;
    int pscw_epoch = -1;
    int lockall_epoch = -1;
    std::map<int, int> lock_epochs;  ///< target comm rank -> epoch index
    std::uint64_t fence_gen = 0;     ///< next fence generation
    std::uint64_t pscw_gen = 0;
    std::uint64_t flush_all_gen = 0;
    std::map<int, std::uint64_t> flush_gen;  ///< per-target extra bumps
    std::uint64_t next_seq = 0;
  };

  struct WinState {
    int nranks = 0;  ///< comm size (expected epoch participants)
    std::vector<EpochRec> epochs;
    std::map<int, OriginState> origins;  ///< keyed by origin world rank
    std::map<int, IntervalTree> trees;   ///< keyed by target comm rank
  };

  struct GroupKey {
    int win_id;
    int target;
    int origin_a;  ///< normalized: origin_a <= origin_b
    int origin_b;
    bool operator<(const GroupKey& o) const {
      return std::tie(win_id, target, origin_a, origin_b) <
             std::tie(o.win_id, o.target, o.origin_a, o.origin_b);
    }
  };

  void record_access(mpi::WinImpl& win, int origin_world, int target_comm,
                     AccessKind kind, mpi::AccOp op, mpi::Dt dt,
                     std::size_t lo, std::size_t hi, sim::Time t);
  bool concurrent(const WinState& ws, const Access& a, const Access& b) const;
  bool legal(const Access& a, const Access& b) const;
  void report(WinState& ws, int win_id, int target, const Access& a,
              const Access& b, sim::Time t_now);
  std::uint64_t cur_flush_gen(const OriginState& os, int target) const;
  int current_epoch(const OriginState& os, int target) const;
  void close_epoch(WinState& ws, int& slot, sim::Time t);
  void maybe_prune(WinState& ws, int target, sim::Time t);
  /// Insert [lo, hi) into a sorted disjoint interval union; returns the
  /// number of newly covered bytes.
  static std::size_t union_insert(
      std::vector<std::pair<std::size_t, std::size_t>>& iv, std::size_t lo,
      std::size_t hi);

  RaceOptions opt_;
  obs::Recorder* rec_ = nullptr;
  mutable std::mutex mu_;
  std::map<int, WinState> wins_;  ///< keyed by window id
  std::map<GroupKey, std::vector<std::pair<std::size_t, std::size_t>>>
      groups_;
  std::vector<RaceConflict> conflicts_;
  std::uint64_t conflict_events_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t epochs_opened_ = 0;
  std::uint64_t unscoped_ = 0;
};

}  // namespace casper::check
