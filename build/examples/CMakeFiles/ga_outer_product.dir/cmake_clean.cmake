file(REMOVE_RECURSE
  "CMakeFiles/ga_outer_product.dir/ga_outer_product.cpp.o"
  "CMakeFiles/ga_outer_product.dir/ga_outer_product.cpp.o.d"
  "ga_outer_product"
  "ga_outer_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_outer_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
