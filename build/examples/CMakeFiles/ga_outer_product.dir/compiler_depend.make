# Empty compiler generated dependencies file for ga_outer_product.
# This may be replaced when dependencies are built.
