file(REMOVE_RECURSE
  "CMakeFiles/nwchem_ccsd_mini.dir/nwchem_ccsd_mini.cpp.o"
  "CMakeFiles/nwchem_ccsd_mini.dir/nwchem_ccsd_mini.cpp.o.d"
  "nwchem_ccsd_mini"
  "nwchem_ccsd_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwchem_ccsd_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
