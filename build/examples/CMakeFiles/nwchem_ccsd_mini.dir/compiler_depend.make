# Empty compiler generated dependencies file for nwchem_ccsd_mini.
# This may be replaced when dependencies are built.
