# Empty dependencies file for nwchem_ccsd_mini.
# This may be replaced when dependencies are built.
