file(REMOVE_RECURSE
  "libcasper_mpi.a"
)
