# Empty dependencies file for casper_mpi.
# This may be replaced when dependencies are built.
