
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/datatype.cpp" "src/mpi/CMakeFiles/casper_mpi.dir/datatype.cpp.o" "gcc" "src/mpi/CMakeFiles/casper_mpi.dir/datatype.cpp.o.d"
  "/root/repo/src/mpi/env.cpp" "src/mpi/CMakeFiles/casper_mpi.dir/env.cpp.o" "gcc" "src/mpi/CMakeFiles/casper_mpi.dir/env.cpp.o.d"
  "/root/repo/src/mpi/runtime_coll.cpp" "src/mpi/CMakeFiles/casper_mpi.dir/runtime_coll.cpp.o" "gcc" "src/mpi/CMakeFiles/casper_mpi.dir/runtime_coll.cpp.o.d"
  "/root/repo/src/mpi/runtime_core.cpp" "src/mpi/CMakeFiles/casper_mpi.dir/runtime_core.cpp.o" "gcc" "src/mpi/CMakeFiles/casper_mpi.dir/runtime_core.cpp.o.d"
  "/root/repo/src/mpi/runtime_win.cpp" "src/mpi/CMakeFiles/casper_mpi.dir/runtime_win.cpp.o" "gcc" "src/mpi/CMakeFiles/casper_mpi.dir/runtime_win.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/casper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/casper_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
