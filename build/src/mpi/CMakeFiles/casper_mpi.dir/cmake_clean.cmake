file(REMOVE_RECURSE
  "CMakeFiles/casper_mpi.dir/datatype.cpp.o"
  "CMakeFiles/casper_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/casper_mpi.dir/env.cpp.o"
  "CMakeFiles/casper_mpi.dir/env.cpp.o.d"
  "CMakeFiles/casper_mpi.dir/runtime_coll.cpp.o"
  "CMakeFiles/casper_mpi.dir/runtime_coll.cpp.o.d"
  "CMakeFiles/casper_mpi.dir/runtime_core.cpp.o"
  "CMakeFiles/casper_mpi.dir/runtime_core.cpp.o.d"
  "CMakeFiles/casper_mpi.dir/runtime_win.cpp.o"
  "CMakeFiles/casper_mpi.dir/runtime_win.cpp.o.d"
  "libcasper_mpi.a"
  "libcasper_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
