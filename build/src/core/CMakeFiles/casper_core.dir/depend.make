# Empty dependencies file for casper_core.
# This may be replaced when dependencies are built.
