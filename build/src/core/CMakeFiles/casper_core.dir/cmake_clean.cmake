file(REMOVE_RECURSE
  "CMakeFiles/casper_core.dir/layer_rma.cpp.o"
  "CMakeFiles/casper_core.dir/layer_rma.cpp.o.d"
  "CMakeFiles/casper_core.dir/layer_setup.cpp.o"
  "CMakeFiles/casper_core.dir/layer_setup.cpp.o.d"
  "CMakeFiles/casper_core.dir/layer_win.cpp.o"
  "CMakeFiles/casper_core.dir/layer_win.cpp.o.d"
  "libcasper_core.a"
  "libcasper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
