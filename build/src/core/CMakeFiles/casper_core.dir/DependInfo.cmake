
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/layer_rma.cpp" "src/core/CMakeFiles/casper_core.dir/layer_rma.cpp.o" "gcc" "src/core/CMakeFiles/casper_core.dir/layer_rma.cpp.o.d"
  "/root/repo/src/core/layer_setup.cpp" "src/core/CMakeFiles/casper_core.dir/layer_setup.cpp.o" "gcc" "src/core/CMakeFiles/casper_core.dir/layer_setup.cpp.o.d"
  "/root/repo/src/core/layer_win.cpp" "src/core/CMakeFiles/casper_core.dir/layer_win.cpp.o" "gcc" "src/core/CMakeFiles/casper_core.dir/layer_win.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/casper_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/casper_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/casper_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
